(* warpcc — command-line driver for the Warp parallel compiler.

     warpcc [--lint] [--verify-ir] [--Werror] prog.w2 [more.w2 ...]
         Static checks only: parse, semantic check, optional source
         lint and optional IR verification (every optimization pass is
         followed by an invariant check).  Nothing is written.

     warpcc compile prog.w2 [-O2] [--lint] [--verify-ir] [--Werror]
            [--dump-ir] [--dump-asm] [-o dir]
         Run the four compiler phases over a W2 module and write one
         download module (.wobj) plus one I/O driver (.drv) per section.

     warpcc run prog.w2 --entry main --args 1,2 [--input-x 1.0,2.0]
         Compile and execute an entry function on the cycle-accurate
         cell simulator (or the whole array with --array).

     warpcc simulate prog.w2 [--processors N] [--sched POLICY]
            [--no-absint] [--static-cost] [--deadline-factor F]
            [--retry-backoff S] [--spec-budget N] [--no-spec]
         Replay sequential and parallel compilation of the module on the
         simulated 1989 workstation network and report the speedup and
         overhead decomposition of the paper.

     warpcc analyze prog.w2 [--dot FILE] [--json FILE] [--sarif FILE]
            [--no-absint] [--absint-max-intervals N]
         Run the interprocedural dependence analyzer alone and print the
         per-section summaries, dependence edges, pruned edges and
         licensed-parallelism fraction (or emit Graphviz / JSON / SARIF).

     warpcc analyze --project dir/ [--dot FILE] [--json FILE]
            [--sarif FILE] [--Werror]
         Separately summarize every .w2 module in the directory against
         its import declarations only, then compose the summaries into
         the project-wide dependence DAG with the cross-module lints
         (W010 import mismatch, W011 cross-module global write, W012
         dead export).

   Exit codes (shared by every static path — check, compile, analyze):
     0    the module was accepted
     1    the module was rejected or compilation failed: parse or
          semantic errors, verifier findings, error-severity
          diagnostics, or any diagnostic at all under --Werror
     124+ command-line misuse (cmdliner's own codes)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every rejection path exits 1 — parse, semantic, lint-as-error and
   verifier failures alike — so scripts and CI can tell "module
   rejected" (1) apart from command-line misuse (cmdliner's 124+).
   Before this, `check` exited 1 but `compile --Werror` surfaced the
   same finding as cmdliner's generic 123. *)
let reject msg : (_, [ `Msg of string ]) result =
  prerr_endline ("warpcc: " ^ msg);
  exit 1

let or_compile_error f =
  try Ok (f ()) with
  | Driver.Compile.Compile_error msg -> reject msg
  | W2.Parser.Error (msg, loc) ->
    reject (Printf.sprintf "%s: %s" (W2.Loc.to_string loc) msg)
  | W2.Lexer.Error (msg, loc) ->
    reject (Printf.sprintf "%s: %s" (W2.Loc.to_string loc) msg)
  | Sys_error msg -> reject msg

(* --- shared diagnostic flags --- *)

let lint_flag =
  Arg.(value & flag
       & info [ "lint" ] ~doc:"Run the source linter (phase 1) and print its warnings")

let verify_ir_flag =
  Arg.(value & flag
       & info [ "verify-ir" ]
           ~doc:"Verify IR invariants after every optimization pass (-verify-each)")

let werror_flag =
  Arg.(value & flag & info [ "Werror" ] ~doc:"Treat lint warnings as errors")

(* Print diagnostics (promoting warnings under --Werror); returns true
   when anything of error severity was printed. *)
let emit_diags ~werror diags =
  let diags = if werror then W2.Diag.promote_warnings diags else diags in
  List.iter (fun d -> prerr_endline (W2.Diag.to_string d)) diags;
  W2.Diag.has_errors diags

(* --- compile --- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"W2 source module")
  in
  let level =
    Arg.(value & opt int 2 & info [ "O"; "opt-level" ] ~docv:"LEVEL"
           ~doc:"Optimization level (0-3)")
  in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized IR of every function")
  in
  let dump_asm =
    Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the scheduled wide code")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Directory for .wobj and .drv outputs")
  in
  let action file level lint verify_ir werror dump_ir dump_asm out_dir =
    or_compile_error (fun () ->
        let source = read_file file in
        (if dump_ir then begin
           let m = W2.Parser.module_of_string ~file source in
           W2.Semcheck.check_module_exn m;
           List.iter
             (fun sec ->
               List.iter
                 (fun f ->
                   ignore (Midend.Opt.optimize ~level ~verify_each:verify_ir f);
                   print_string (Midend.Ir.func_to_string f))
                 sec.Midend.Ir.funcs)
             (Midend.Lower.lower_module m)
         end);
        let mw =
          Driver.Compile.compile_source ~level ~verify_each:verify_ir ~file source
        in
        (if lint || werror then
           if emit_diags ~werror (Driver.Compile.all_diags mw) then
             raise
               (Driver.Compile.Compile_error
                  (if werror then "diagnostics treated as errors (--Werror)"
                   else "error diagnostics emitted")));
        List.iter
          (fun (sw : Driver.Compile.section_work) ->
            let base = Filename.concat out_dir (mw.Driver.Compile.mw_name ^ "." ^ sw.Driver.Compile.sw_name) in
            let obj = base ^ ".wobj" in
            let drv = base ^ ".drv" in
            let oc = open_out_bin obj in
            output_string oc (Warp.Asm.encode sw.Driver.Compile.sw_image);
            close_out oc;
            let oc = open_out drv in
            output_string oc (Warp.Iodriver.to_string sw.Driver.Compile.sw_driver);
            close_out oc;
            (if dump_asm then
               Array.iter
                 (fun f -> print_string (Warp.Mcode.mfunc_to_string f))
                 sw.Driver.Compile.sw_image.Warp.Mcode.funcs);
            (match Warp.Verify.image sw.Driver.Compile.sw_image with
            | [] -> ()
            | violations ->
              List.iter
                (fun v -> prerr_endline ("verifier: " ^ Warp.Verify.violation_to_string v))
                violations;
              raise (Driver.Compile.Compile_error "generated code failed verification"));
            Printf.printf "section %-12s %4d wides %6d bytes -> %s\n"
              sw.Driver.Compile.sw_name
              (Warp.Mcode.image_wide_count sw.Driver.Compile.sw_image)
              sw.Driver.Compile.sw_image_bytes obj)
          mw.Driver.Compile.mw_sections;
        List.iter
          (fun (fw : Driver.Compile.func_work) ->
            Printf.printf
              "  %-16s %4d loc  ir=%-5d opt-work=%-8d sched-work=%-8d wides=%-5d%s\n"
              fw.Driver.Compile.fw_name fw.Driver.Compile.fw_loc
              fw.Driver.Compile.fw_ir_instrs fw.Driver.Compile.fw_opt_work
              fw.Driver.Compile.fw_sched_work fw.Driver.Compile.fw_wides
              (if fw.Driver.Compile.fw_pipelined > 0 then "  [software-pipelined]" else ""))
          (Driver.Compile.all_funcs mw))
  in
  let term =
    Term.(
      term_result
        (const action $ file $ level $ lint_flag $ verify_ir_flag $ werror_flag
        $ dump_ir $ dump_asm $ out_dir))
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a W2 module to Warp download modules") term

(* --- check --- *)

(* Static checks for one file; returns false when anything failed.
   Shared by the `check` subcommand and the default (no-subcommand)
   invocation: warpcc [--lint] [--verify-ir] [--Werror] FILE... *)
let static_check ~lint ~verify_ir ~werror ~level file =
  let source = read_file file in
  let m = W2.Parser.module_of_string ~file source in
  match W2.Semcheck.check_module m with
  | _ :: _ as errors ->
    List.iter (fun e -> prerr_endline (W2.Semcheck.error_to_string e)) errors;
    false
  | [] ->
    (* One analyzer pass feeds both the coupling lints (W008/W009) and
       the summary-backed call checks below — the same single
       diagnostics channel Driver.Compile uses, so `check` and
       `compile` agree on what they report and nothing is printed
       twice. *)
    let analysis = if lint || verify_ir then Some (Analysis.Depan.analyze m) else None in
    let lint_failed =
      if lint then
        let coupling =
          match analysis with Some t -> Analysis.Depan.lint t | None -> []
        in
        emit_diags ~werror (W2.Diag.sort (coupling @ W2.Lint.lint_module m))
      else false
    in
    let violations =
      if verify_ir then
        let dp_sections =
          match analysis with
          | Some t -> List.map (fun si -> Some si) t.Analysis.Depan.dp_sections
          | None -> List.map (fun _ -> None) m.W2.Ast.sections
        in
        List.concat
          (List.map2
             (fun si sec ->
               try
                 ignore (Midend.Opt.optimize_section ~level ~verify_each:true sec);
                 (* The per-pass checks cover each function; what remains
                    is the cross-function call agreement, checked both
                    structurally and against the analyzer's call graph. *)
                 Midend.Irverify.check_calls sec
                 @ (match si with
                   | Some si -> Analysis.Depan.check_ir_calls si sec
                   | None -> [])
               with Midend.Irverify.Invalid violations -> violations)
             dp_sections
             (Midend.Lower.lower_module m))
      else []
    in
    List.iter
      (fun v ->
        prerr_endline ("verify-ir: " ^ Midend.Irverify.violation_to_string v))
      violations;
    if violations = [] && not lint_failed then begin
      Printf.printf "%s: %d section(s), %d function(s), %d line(s) — ok%s%s\n"
        m.W2.Ast.mname
        (List.length m.W2.Ast.sections)
        (W2.Ast.func_count m)
        (W2.Pretty.source_lines source)
        (if lint then " [lint]" else "")
        (if verify_ir then " [verify-ir]" else "");
      true
    end
    else false

let static_check_action files lint verify_ir werror level =
  or_compile_error (fun () ->
      if files = [] then
        raise (Driver.Compile.Compile_error "no input files (see warpcc --help)");
      let ok =
        List.fold_left
          (fun ok file -> static_check ~lint ~verify_ir ~werror ~level file && ok)
          true files
      in
      if not ok then exit 1)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"W2 source module")
  in
  let level =
    Arg.(value & opt int 2 & info [ "O"; "opt-level" ] ~docv:"LEVEL"
           ~doc:"Optimization level used by --verify-ir (0-3)")
  in
  let action file lint verify_ir werror level =
    static_check_action [ file ] lint verify_ir werror level
  in
  let term =
    Term.(
      term_result
        (const action $ file $ lint_flag $ verify_ir_flag $ werror_flag $ level))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the static checks (phase 1, plus --lint and --verify-ir)")
    term

(* --- analyze --- *)

(* Project mode: two passes so peak memory stays one module AST plus
   all interface summaries, no matter how many modules the project
   has.  Pass 1 parses every file but keeps only the module name and
   its import edges (the ASTs are dropped); pass 2 re-parses one file
   at a time in dependency order, checks it, distills the summary and
   drops the AST again before touching the next file. *)
let project_heads dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".w2")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then
    raise (Driver.Compile.Compile_error (dir ^ ": no .w2 files"));
  List.map
    (fun path ->
      let m = W2.Parser.module_of_string ~file:path (read_file path) in
      ( path,
        m.W2.Ast.mname,
        List.map (fun (im : W2.Ast.import_decl) -> im.W2.Ast.im_module) m.W2.Ast.imports ))
    files

(* Dependency order over the heads: providers first (Kahn), leftover
   members of import cycles appended in input order — [Modan.compose]
   reports the cycles themselves. *)
let project_order heads =
  let present = Hashtbl.create 16 in
  List.iter (fun (_, m, _) -> Hashtbl.replace present m ()) heads;
  let emitted = Hashtbl.create 16 in
  let result = ref [] in
  let rec sweep remaining =
    let ready, rest =
      List.partition
        (fun (_, _, imports) ->
          List.for_all
            (fun p -> (not (Hashtbl.mem present p)) || Hashtbl.mem emitted p)
            imports)
        remaining
    in
    if ready = [] then result := !result @ rest (* import cycle *)
    else begin
      List.iter (fun (_, m, _) -> Hashtbl.replace emitted m ()) ready;
      result := !result @ ready;
      if rest <> [] then sweep rest
    end
  in
  sweep heads;
  !result

let analyze_project ~dir ~sound ~max_tracked ~absint ~absint_max_intervals =
  let order = project_order (project_heads dir) in
  let summaries = ref [] in
  let module_diags = ref [] in
  List.iter
    (fun (path, _, _) ->
      let m = W2.Parser.module_of_string ~file:path (read_file path) in
      (match W2.Semcheck.check_module m with
      | [] -> ()
      | errors ->
        List.iter
          (fun e -> prerr_endline (W2.Semcheck.error_to_string e))
          errors;
        exit 1);
      let s =
        Analysis.Modan.summarize ~deps:!summaries ~sound ~max_tracked ~absint
          ~absint_max_intervals ~file:path m
      in
      (* Per-module source lints.  W007 ("never called from its
         section") is suppressed for exported functions: their callers
         live in other modules by design. *)
      let local =
        List.filter
          (fun (d : W2.Diag.t) ->
            not
              (d.W2.Diag.d_code = "W007"
              &&
              match d.W2.Diag.d_func with
              | Some f -> W2.Ast.exports_function m f
              | None -> false))
          (W2.Lint.lint_module m)
      in
      let couplings =
        Array.to_list s.Analysis.Modan.ms_funcs
        |> List.map (fun (w : Analysis.Modan.func_summary) ->
               {
                 W2.Lint.c_func = w.Analysis.Modan.ws_name;
                 c_loc = w.Analysis.Modan.ws_loc;
                 c_greads = w.Analysis.Modan.ws_direct.Analysis.Depan.greads;
                 c_gwrites = w.Analysis.Modan.ws_direct.Analysis.Depan.gwrites;
                 c_sends = w.Analysis.Modan.ws_direct.Analysis.Depan.sends;
                 c_recvs = w.Analysis.Modan.ws_direct.Analysis.Depan.recvs;
               })
      in
      let coupling =
        W2.Lint.coupling_warnings ~section:s.Analysis.Modan.ms_section
          ~cells:s.Analysis.Modan.ms_cells
          ~disjoint:s.Analysis.Modan.ms_disjoint couplings
      in
      module_diags := !module_diags @ local @ coupling;
      summaries := !summaries @ [ s ])
    order;
  let link = Analysis.Modan.compose !summaries in
  (link, W2.Diag.sort (!module_diags @ link.Analysis.Modan.lk_diags))

let analyze_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"W2 source module")
  in
  let project =
    Arg.(value & opt (some dir) None & info [ "project" ] ~docv:"DIR"
           ~doc:"Analyze a multi-module project: every .w2 file in DIR is \
                 separately summarized against its import declarations \
                 (peak memory is one module AST plus the interface \
                 summaries), then the summaries alone are composed into \
                 the project-wide dependence DAG with cross-module lints \
                 (W010-W012)")
  in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write the dependence DAG as Graphviz dot (\"-\" = stdout)")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the full analysis as JSON, schema $(b,warpcc-analyze/3) \
                 (\"-\" = stdout)")
  in
  let sarif_out =
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE"
           ~doc:"Write every diagnostic as a SARIF 2.1.0 log (\"-\" = stdout)")
  in
  let no_sound =
    Arg.(value & flag & info [ "no-sound" ]
           ~doc:"Drop the summary-limit edges added when an effect summary \
                 overflows --max-tracked (faster DAGs, no soundness promise)")
  in
  let max_tracked =
    Arg.(value & opt int 64 & info [ "max-tracked" ] ~docv:"N"
           ~doc:"Distinct globals tracked per effect-summary set before the \
                 summary is widened to \"anything\"")
  in
  let no_absint =
    Arg.(value & flag & info [ "no-absint" ]
           ~doc:"Skip the abstract-interpretation refinement (array regions, \
                 channel protocols, static costs); the result is bit-identical \
                 to the flow-insensitive analyzer")
  in
  let absint_max_intervals =
    Arg.(value & opt int Analysis.Absint.default_max_intervals
         & info [ "absint-max-intervals" ] ~docv:"N"
           ~doc:"Disjoint element-index slices tracked per array region before \
                 the region widens to the whole array")
  in
  let action file project dot_out json_out sarif_out no_sound max_tracked
      no_absint absint_max_intervals werror =
    or_compile_error (fun () ->
        let write what = function
          | None -> ()
          | Some "-" -> print_string what
          | Some path ->
            let oc = open_out path in
            output_string oc what;
            close_out oc;
            Printf.printf "wrote %s\n" path
        in
        let finish ~report ~dot ~json diags =
          (match (dot_out, json_out, sarif_out) with
          | None, None, None -> print_string (report ())
          | _ ->
            write (dot ()) dot_out;
            write (json ()) json_out;
            write (W2.Sarif.to_string diags) sarif_out);
          (* The analyzer's findings ride the same diagnostics channel
             as `check --lint`; under --Werror they reject the module
             with the shared exit code. *)
          if emit_diags ~werror diags then exit 1
        in
        match (project, file) with
        | Some _, Some _ ->
          prerr_endline "warpcc: analyze takes FILE or --project DIR, not both";
          exit 1
        | None, None ->
          prerr_endline "warpcc: analyze needs a FILE or --project DIR";
          exit 1
        | Some dir, None ->
          let link, diags =
            analyze_project ~dir ~sound:(not no_sound) ~max_tracked
              ~absint:(not no_absint) ~absint_max_intervals
          in
          finish
            ~report:(fun () -> Analysis.Modan.report link)
            ~dot:(fun () -> Analysis.Modan.to_dot link)
            ~json:(fun () -> Analysis.Modan.to_json link)
            diags
        | None, Some file ->
          let source = read_file file in
          let m = W2.Parser.module_of_string ~file source in
          (match W2.Semcheck.check_module m with
          | [] -> ()
          | errors ->
            List.iter
              (fun e -> prerr_endline (W2.Semcheck.error_to_string e))
              errors;
            exit 1);
          let t =
            Analysis.Depan.analyze ~sound:(not no_sound) ~max_tracked
              ~absint:(not no_absint) ~absint_max_intervals m
          in
          finish
            ~report:(fun () -> Analysis.Depan.report t)
            ~dot:(fun () -> Analysis.Depan.to_dot t)
            ~json:(fun () -> Analysis.Depan.to_json t)
            (Analysis.Depan.lint t))
  in
  let term =
    Term.(
      term_result
        (const action $ file $ project $ dot_out $ json_out $ sarif_out
        $ no_sound $ max_tracked $ no_absint $ absint_max_intervals
        $ werror_flag))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the interprocedural dependence analyzer (call graph, effect \
             summaries, dependence DAG)")
    term

(* --- run --- *)

let parse_values s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun tok ->
           let tok = String.trim tok in
           match int_of_string_opt tok with
           | Some n -> Midend.Ir_interp.Vi n
           | None -> Midend.Ir_interp.Vf (float_of_string tok))

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"W2 source module")
  in
  let entry =
    Arg.(required & opt (some string) None & info [ "entry" ] ~docv:"NAME"
           ~doc:"Entry function")
  in
  let args_str =
    Arg.(value & opt string "" & info [ "args" ] ~docv:"V,V,..."
           ~doc:"Comma-separated arguments (ints or floats)")
  in
  let input_x =
    Arg.(value & opt string "" & info [ "input-x" ] ~docv:"V,V,..."
           ~doc:"Values fed to the X channel")
  in
  let array =
    Arg.(value & flag & info [ "array" ] ~doc:"Run on the whole cell array (X flows host -> cell0 -> ... -> host)")
  in
  let level =
    Arg.(value & opt int 2 & info [ "O"; "opt-level" ] ~docv:"LEVEL" ~doc:"Optimization level")
  in
  let action file entry args_str input_x array level =
    or_compile_error (fun () ->
        let mw = Driver.Compile.compile_source ~level ~file (read_file file) in
        let sw =
          match
            List.find_opt
              (fun (sw : Driver.Compile.section_work) ->
                List.exists
                  (fun fw -> fw.Driver.Compile.fw_name = entry)
                  sw.Driver.Compile.sw_funcs)
              mw.Driver.Compile.mw_sections
          with
          | Some sw -> sw
          | None -> raise (Driver.Compile.Compile_error ("no function " ^ entry))
        in
        let image = sw.Driver.Compile.sw_image in
        let args = parse_values args_str in
        let inputs = parse_values input_x in
        if array then begin
          let result =
            Warp.Arraysim.run image ~name:entry ~args:(fun _ -> args) ~input_x:inputs ()
          in
          Printf.printf "cycles: %d\n" result.Warp.Arraysim.cycles;
          Array.iteri
            (fun i r ->
              Printf.printf "cell %d returned: %s\n" i
                (match r with
                | Some v -> Midend.Ir_interp.value_to_string v
                | None -> "(nothing)"))
            result.Warp.Arraysim.returns;
          List.iter
            (fun v -> Printf.printf "host X <- %s\n" (Midend.Ir_interp.value_to_string v))
            result.Warp.Arraysim.host_x
        end
        else begin
          let ports, outputs = Warp.Cellsim.script_ports ~input_x:inputs ~input_y:[] in
          let result, cycles = Warp.Cellsim.run ~ports image ~name:entry ~args in
          Printf.printf "cycles: %d\n" cycles;
          (match result with
          | Some v -> Printf.printf "result: %s\n" (Midend.Ir_interp.value_to_string v)
          | None -> print_endline "result: (nothing)");
          let out_x, out_y = outputs () in
          List.iter
            (fun v -> Printf.printf "X -> %s\n" (Midend.Ir_interp.value_to_string v))
            out_x;
          List.iter
            (fun v -> Printf.printf "Y -> %s\n" (Midend.Ir_interp.value_to_string v))
            out_y
        end)
  in
  let term =
    Term.(term_result (const action $ file $ entry $ args_str $ input_x $ array $ level))
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute on the cycle simulator") term

(* --- simulate --- *)

(* Replay arguments shared by [simulate] and [profile]. *)

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"W2 source module")

let processors =
  Arg.(value & opt (some int) None & info [ "processors"; "p" ] ~docv:"N"
         ~doc:"Workstations for function masters (default: one per function)")

let level =
  Arg.(value & opt int 2 & info [ "O"; "opt-level" ] ~docv:"LEVEL" ~doc:"Optimization level")

let fault_seed =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED"
         ~doc:"Seed of the injected fault plan (0 = no faults unless --fault-rate is set)")

let fault_rate =
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"RATE"
         ~doc:"Fault rate in [0,1]: fraction of pool stations hit by crashes/reclaims/slowdowns")

let retries =
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
         ~doc:"Re-dispatches per task before sequential fallback")

let deadline_factor =
  Arg.(value
       & opt float
           Parallel_cc.Config.default.Parallel_cc.Config.deadline_factor
       & info [ "deadline-factor" ] ~docv:"FACTOR"
           ~doc:"A dispatched task is presumed lost after FACTOR times its \
                 cost estimate and is re-dispatched (after the exponential \
                 backoff; past $(b,--retries) it falls back to the \
                 sequential path)")

let retry_backoff =
  Arg.(value
       & opt float
           Parallel_cc.Config.default.Parallel_cc.Config
           .retry_backoff_seconds
       & info [ "retry-backoff" ] ~docv:"SECONDS"
           ~doc:"Base of the exponential backoff before re-dispatching a \
                 timed-out task: the k-th re-dispatch of a task waits \
                 SECONDS times 2^k")

let spec_budget =
  Arg.(value
       & opt int Parallel_cc.Config.default.Parallel_cc.Config.spec_budget
       & info [ "spec-budget" ] ~docv:"N"
           ~doc:"Misspeculations (speculative-attempt aborts) per task \
                 before its speculative edges harden to gated dispatch \
                 under $(b,--sched dag+spec); 0 disables speculation, \
                 making the run bit-identical to $(b,--sched dag+lpt)")

let no_spec =
  Arg.(value & flag & info [ "no-spec" ]
         ~doc:"Disable speculative dispatch entirely; shorthand for \
               $(b,--spec-budget 0)")

let sched =
  let policies =
    List.map
      (fun p -> (Parallel_cc.Sched.policy_name p, p))
      Parallel_cc.Sched.all_policies
  in
  Arg.(value & opt (enum policies) Parallel_cc.Sched.Fcfs
       & info [ "sched" ] ~docv:"POLICY"
           ~doc:"Dispatch policy: $(b,fcfs) (the paper's first-come \
                 first-served order), $(b,lpt) (longest processing time \
                 first within each section), $(b,lpt+batch) (LPT plus \
                 batching of tiny functions into one dispatch unit), \
                 $(b,dag) (topological dispatch gated on the depan \
                 dependence DAG; identical to fcfs when the DAG has no \
                 edges), $(b,dag+lpt) (dag with LPT ordering and tiny \
                 batching inside each antichain level), or $(b,dag+spec) \
                 (dag+lpt that dispatches past speculative dependence \
                 edges immediately, staging outputs and committing or \
                 rolling back when the predecessors write back; see \
                 $(b,--spec-budget))")

let batch_threshold =
  Arg.(value & opt float Parallel_cc.Config.default.Parallel_cc.Config.batch_threshold
       & info [ "batch-threshold" ] ~docv:"SECONDS"
           ~doc:"Estimated phase-2+3 seconds below which a function counts \
                 as tiny for $(b,--sched lpt+batch)")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Replay one traced parallel run and write it as Chrome \
               trace-event JSON (load in Perfetto or chrome://tracing)")

let gantt =
  Arg.(value & flag & info [ "gantt" ]
         ~doc:"Print an ASCII Gantt timeline of the traced run")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the metrics registry and the trace-derived overhead \
               decomposition of the traced run")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the timings comparison as JSON (\"-\" = stdout)")

let no_absint =
  Arg.(value & flag & info [ "no-absint" ]
         ~doc:"Skip the abstract-interpretation refinement in the phase-1 \
               dependence analysis: the DAG keeps every flow-insensitive \
               edge and all timings are bit-identical to the pre-absint \
               compiler")

let static_cost =
  Arg.(value & flag & info [ "static-cost" ]
         ~doc:"Rank and batch tasks by the abstract interpretation's \
               statically bounded cost instead of the measured work units \
               (no effect under $(b,--sched fcfs))")

let gantt_width =
  Arg.(value & opt int 64 & info [ "gantt-width" ] ~docv:"COLS"
         ~doc:"Time buckets (columns) of the $(b,--gantt) timeline")

let use_cache =
  Arg.(value & flag & info [ "cache" ]
         ~doc:"After the comparison, replay a cold/warm/edited trio of \
               parallel runs against one content-addressed compile cache \
               (docs/CACHING.md) and print each run's hit/miss counters")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Force the compile cache off.  This is the default — the \
               standard pipeline never consults a cache, so every run \
               without $(b,--cache) is bit-identical to the pre-cache \
               compiler — but the flag overrides an earlier $(b,--cache)")

let cache_seed_edit =
  Arg.(value & opt (some string) None
       & info [ "cache-seed-edit" ] ~docv:"FUNC"
           ~doc:"Function the $(b,--cache) trio's third run edits (a \
                 semantics-neutral touch that changes the source hash \
                 but not the dependence DAG); default: the function \
                 whose edit invalidates the widest closure")

let simulate_cmd =
  let action file processors level fault_seed fault_rate retries sched
      batch_threshold no_absint static_cost deadline_factor retry_backoff
      spec_budget no_spec trace_out gantt gantt_width metrics json_out
      use_cache no_cache cache_seed_edit =
    or_compile_error (fun () ->
        let mw =
          Driver.Compile.compile_source ~level ~file ~absint:(not no_absint)
            (read_file file)
        in
        let open Parallel_cc in
        let base_cfg =
          {
            Config.default with
            Config.sched_policy = sched;
            batch_threshold;
            static_cost;
            deadline_factor;
            retry_backoff_seconds = retry_backoff;
            spec_budget = (if no_spec then 0 else spec_budget);
          }
        in
        let c = Experiment.measure ~cfg:base_cfg ?processors mw in
        Printf.printf "module %s: %d function(s), %d line(s)\n"
          mw.Driver.Compile.mw_name
          (List.length (Driver.Compile.all_funcs mw))
          mw.Driver.Compile.mw_loc;
        Printf.printf "sequential elapsed : %8.1f s\n" c.Timings.seq.Timings.elapsed;
        Printf.printf "parallel elapsed   : %8.1f s  (%d processors)\n"
          c.Timings.par.Timings.elapsed c.Timings.processors;
        Printf.printf "dispatch units     : %8d  (--sched %s)\n"
          c.Timings.par.Timings.dispatch_units (Sched.policy_name sched);
        (if Config.effective_policy base_cfg = Sched.Dag_spec then
           Printf.printf
             "speculation        : %8d dispatched, %d committed, %d rolled \
              back  (budget %d per task)\n"
             c.Timings.par.Timings.spec_dispatched
             c.Timings.par.Timings.spec_committed
             c.Timings.par.Timings.spec_rolled_back
             base_cfg.Config.spec_budget);
        Printf.printf "speedup            : %8.2f\n" c.Timings.speedup;
        Printf.printf "total overhead     : %8.1f s (%.1f%% of parallel elapsed)\n"
          c.Timings.total_overhead c.Timings.rel_total_overhead;
        Printf.printf "  implementation   : %8.1f s\n" c.Timings.impl_overhead;
        Printf.printf "  system           : %8.1f s (%.1f%%)\n" c.Timings.sys_overhead
          c.Timings.rel_sys_overhead;
        Printf.printf "per-station CPU (s): %s\n"
          (String.concat ", "
             (List.map (Printf.sprintf "%.0f") c.Timings.par.Timings.cpu_per_station));
        (match json_out with
        | Some "-" -> print_string (Timings.comparison_to_json c)
        | Some path ->
          let oc = open_out path in
          output_string oc (Timings.comparison_to_json c);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        (* The fault-injection replay and the traced replay share the
           plan choice and configuration of the comparison above. *)
        let plan, n_fm =
          match processors with
          | None ->
            let plan = Plan.one_per_station mw in
            (plan, Plan.task_count plan)
          | Some p -> (Plan.grouped mw ~processors:p, p)
        in
        let cfg =
          {
            base_cfg with
            Config.stations = n_fm + 1;
            noise_seed = 1 + (17 * n_fm);
            retry_budget = retries;
          }
        in
        let fault_requested = fault_seed <> 0 || fault_rate > 0.0 in
        let faults =
          if fault_requested then begin
            (* Fault-free run first, to size the fault horizon. *)
            let free = (Parrun.run cfg mw plan).Parrun.run in
            let faults =
              Netsim.Fault.random
                ~seed:(if fault_seed = 0 then 1 else fault_seed)
                ~stations:(n_fm + 1)
                ~rate:(if fault_rate > 0.0 then fault_rate else 0.5)
                ~horizon:(free.Timings.elapsed *. 1.5) ()
            in
            let faulty =
              (Parrun.run { cfg with Config.faults } mw plan).Parrun.run
            in
            Printf.printf "\nfault injection (seed %d):\n" fault_seed;
            List.iter
              (fun line -> Printf.printf "  %s\n" line)
              (Netsim.Fault.describe faults);
            Printf.printf "faulty elapsed     : %8.1f s  (%.2fx fault-free)\n"
              faulty.Timings.elapsed
              (faulty.Timings.elapsed /. free.Timings.elapsed);
            Printf.printf "retries            : %8d\n" faulty.Timings.retries;
            Printf.printf "stations lost      : %8d\n" faulty.Timings.stations_lost;
            Printf.printf "fallback tasks     : %8d  (budget %d per task)\n"
              faulty.Timings.fallback_tasks retries;
            Printf.printf "wasted CPU         : %8.1f s\n" faulty.Timings.wasted_cpu;
            faults
          end
          else Netsim.Fault.none
        in
        if trace_out <> None || gantt || metrics then begin
          (* One traced parallel run with the span sink wired in; the
             run itself asserts that the trace reproduces its counters. *)
          let tr = Trace.create () in
          let traced =
            (Parrun.run { cfg with Config.faults; trace = tr } mw plan).Parrun.run
          in
          (match trace_out with
          | Some path ->
            let oc = open_out path in
            output_string oc (Trace.to_chrome_json tr);
            close_out oc;
            Printf.printf "wrote %s (%d spans, %d instants, %d tracks)\n" path
              (Trace.span_count tr) (Trace.instant_count tr)
              (List.length (Trace.used_tracks tr))
          | None -> ());
          if gantt then begin
            print_newline ();
            Stats.Table.print (Trace.gantt ~width:gantt_width tr)
          end;
          if metrics then begin
            print_newline ();
            Stats.Table.print (Metrics.to_table (Metrics.of_trace tr));
            print_newline ();
            Stats.Table.print
              (Traceview.decomposition_table
                 (Traceview.decompose ~processors:n_fm
                    ~seq_elapsed:c.Timings.seq.Timings.elapsed tr));
            Printf.printf "traced elapsed     : %8.1f s\n" traced.Timings.elapsed
          end
        end;
        if use_cache && not no_cache then begin
          (* Cold/warm/one-edit trio against a single store; the runs
             above stay cache-free, so everything printed before this
             block is bit-identical with or without --cache. *)
          let store = Cache.create () in
          let ccfg = { cfg with Config.cache = Some store } in
          let play mw' =
            let plan' =
              match processors with
              | None -> Plan.one_per_station mw'
              | Some p -> Plan.grouped mw' ~processors:p
            in
            (Parrun.run ccfg mw' plan').Parrun.run
          in
          let cold = play mw in
          let warm = play mw in
          let edited =
            match cache_seed_edit with
            | Some f -> f
            | None -> Experiment.widest_edit mw
          in
          let edited_src =
            let m = W2.Parser.module_of_string ~file (read_file file) in
            match W2.Gen.touch_in m edited with
            | m' -> W2.Pretty.module_to_string m'
            | exception Invalid_argument msg ->
              raise (Driver.Compile.Compile_error msg)
          in
          let mw_edit =
            Driver.Compile.compile_source ~level ~file
              ~absint:(not no_absint) edited_src
          in
          let edit = play mw_edit in
          let closure =
            Experiment.edit_closure mw_edit.Driver.Compile.mw_analysis edited
          in
          let line name (r : Timings.run) extra =
            Printf.printf "%-19s: %8.1f s  hits=%d misses=%d invalidated=%d%s\n"
              name r.Timings.elapsed r.Timings.cache_hits
              r.Timings.cache_misses r.Timings.cache_invalidated extra
          in
          Printf.printf "\ncompile cache (one shared store; docs/CACHING.md):\n";
          line "cache cold" cold "";
          line "cache warm" warm
            (Printf.sprintf "  (%.2fx cold)"
               (cold.Timings.elapsed /. warm.Timings.elapsed));
          line "cache edit" edit
            (Printf.sprintf "  (edited %s, closure %d)" edited closure);
          Printf.printf "cache store        : %8d artifact(s), %.0f bytes\n"
            (Cache.size store)
            (List.fold_left (fun a (_, b) -> a +. b) 0.0 (Cache.entries store))
        end)
  in
  let term =
    Term.(
      term_result
        (const action $ file $ processors $ level $ fault_seed $ fault_rate
        $ retries $ sched $ batch_threshold $ no_absint $ static_cost
        $ deadline_factor $ retry_backoff $ spec_budget $ no_spec $ trace_out
        $ gantt $ gantt_width $ metrics $ json_out $ use_cache $ no_cache
        $ cache_seed_edit))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Replay sequential vs parallel compilation on the simulated network")
    term

(* --- profile --- *)

let profile_cmd =
  let top_k =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Rows of the bottleneck report")
  in
  let what_if =
    Arg.(value & flag & info [ "what-if" ]
           ~doc:"Print the what-if upper bounds (free comms, infinite \
                 stations, zero faults, perfect speculation) next to the \
                 dependence-DAG bound from the phase-1 analysis")
  in
  let prof_json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the profile as JSON, schema warpcc-profile/1 \
                 (\"-\" = stdout)")
  in
  let prof_trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the profiled run as Chrome trace-event JSON with the \
                 critical path rendered as flow arrows between tracks")
  in
  let action file processors level fault_seed fault_rate retries sched
      batch_threshold no_absint static_cost deadline_factor retry_backoff
      spec_budget no_spec top_k what_if prof_json prof_trace =
    or_compile_error (fun () ->
        let mw =
          Driver.Compile.compile_source ~level ~file ~absint:(not no_absint)
            (read_file file)
        in
        let open Parallel_cc in
        (* Same plan and configuration derivation as [simulate], so the
           profiled trace is the trace [simulate --trace] writes. *)
        let plan, n_fm =
          match processors with
          | None ->
            let plan = Plan.one_per_station mw in
            (plan, Plan.task_count plan)
          | Some p -> (Plan.grouped mw ~processors:p, p)
        in
        let cfg =
          {
            Config.default with
            Config.sched_policy = sched;
            batch_threshold;
            static_cost;
            deadline_factor;
            retry_backoff_seconds = retry_backoff;
            spec_budget = (if no_spec then 0 else spec_budget);
            stations = n_fm + 1;
            noise_seed = 1 + (17 * n_fm);
            retry_budget = retries;
          }
        in
        let fault_requested = fault_seed <> 0 || fault_rate > 0.0 in
        let faults =
          if fault_requested then
            (* Fault-free run first, to size the fault horizon. *)
            let free = (Parrun.run cfg mw plan).Parrun.run in
            Netsim.Fault.random
              ~seed:(if fault_seed = 0 then 1 else fault_seed)
              ~stations:(n_fm + 1)
              ~rate:(if fault_rate > 0.0 then fault_rate else 0.5)
              ~horizon:(free.Timings.elapsed *. 1.5) ()
          else Netsim.Fault.none
        in
        let tr = Trace.create () in
        let run =
          (Parrun.run { cfg with Config.faults; trace = tr } mw plan).Parrun.run
        in
        let splan =
          Sched.schedule ~static:cfg.Config.static_cost
            ~policy:(Config.effective_policy cfg) ~cost:cfg.Config.cost
            ~threshold:cfg.Config.batch_threshold ~stations:cfg.Config.stations
            plan
        in
        let p =
          Critpath.of_trace ~plan:splan ~elapsed:run.Timings.elapsed tr
        in
        Critpath.assert_exact p;
        let bound = Critpath.dag_bound ~cost:cfg.Config.cost mw in
        Printf.printf
          "module %s: %d function(s), %d dispatch task(s), %d station(s), \
           --sched %s\n"
          mw.Driver.Compile.mw_name
          (List.length (Driver.Compile.all_funcs mw))
          (Plan.task_count splan) (n_fm + 1) (Sched.policy_name sched);
        Printf.printf "elapsed            : %10.3f s  (%d critical-path segment(s))\n"
          p.Critpath.p_elapsed
          (List.length p.Critpath.p_segments);
        (if p.Critpath.p_dep_edges <> [] then
           Printf.printf "dependence edges   : %s\n"
             (String.concat ", "
                (List.map
                   (fun (a, b) -> a ^ " -> " ^ b)
                   p.Critpath.p_dep_edges)));
        print_newline ();
        Stats.Table.print (Critpath.bucket_table p);
        print_newline ();
        Stats.Table.print (Critpath.top_table ~k:top_k p);
        if what_if then begin
          print_newline ();
          Stats.Table.print (Critpath.whatif_table ~bound p)
        end;
        let json () =
          Critpath.to_json ~module_name:mw.Driver.Compile.mw_name
            ~policy:(Sched.policy_name sched) ~processors:n_fm ~top:top_k
            ~bound p
        in
        (match prof_json with
        | Some "-" -> print_string (json ())
        | Some path ->
          let oc = open_out path in
          output_string oc (json ());
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        match prof_trace with
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Trace.to_chrome_json ~flows:(Critpath.path_flows p) tr);
          close_out oc;
          Printf.printf "wrote %s (%d spans, %d instants, %d tracks)\n" path
            (Trace.span_count tr) (Trace.instant_count tr)
            (List.length (Trace.used_tracks tr))
        | None -> ())
  in
  let term =
    Term.(
      term_result
        (const action $ file $ processors $ level $ fault_seed $ fault_rate
        $ retries $ sched $ batch_threshold $ no_absint $ static_cost
        $ deadline_factor $ retry_backoff $ spec_budget $ no_spec $ top_k
        $ what_if $ prof_json $ prof_trace))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Replay one traced parallel run and attribute every second of \
             its elapsed time to a bottleneck bucket along the critical path")
    term

let () =
  let doc = "parallel compiler for a Warp-like systolic array" in
  let info = Cmd.info "warpcc" ~version:"1.0.0" ~doc in
  (* Without a subcommand, warpcc runs the static checks over any
     number of files: warpcc --verify-ir --lint examples/*.w2 *)
  let default =
    let files =
      Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"W2 source modules")
    in
    let level =
      Arg.(value & opt int 2 & info [ "O"; "opt-level" ] ~docv:"LEVEL"
             ~doc:"Optimization level used by --verify-ir (0-3)")
    in
    Term.(
      term_result
        (const static_check_action $ files $ lint_flag $ verify_ir_flag
        $ werror_flag $ level))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ check_cmd; compile_cmd; analyze_cmd; run_cmd; simulate_cmd; profile_cmd ]))
