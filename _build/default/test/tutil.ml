(* Shared helpers for the test suites. *)

(* Substring test (OCaml's stdlib has none). *)
let contains haystack needle =
  let nlen = String.length needle in
  let hlen = String.length haystack in
  if nlen = 0 then true
  else
    let rec scan i =
      if i + nlen > hlen then false
      else if String.sub haystack i nlen = needle then true
      else scan (i + 1)
    in
    scan 0

(* Compare two interpreter results for Alcotest. *)
let value_testable : W2.Interp.value Alcotest.testable =
  let rec eq a b =
    match (a, b) with
    | W2.Interp.Vint x, W2.Interp.Vint y -> x = y
    | W2.Interp.Vfloat x, W2.Interp.Vfloat y ->
      (Float.is_nan x && Float.is_nan y)
      || abs_float (x -. y) <= 1e-9 *. (1.0 +. abs_float x +. abs_float y)
    | W2.Interp.Vbool x, W2.Interp.Vbool y -> x = y
    | W2.Interp.Varray x, W2.Interp.Varray y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun a b -> eq a b) x y
    | _ -> false
  in
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (W2.Interp.value_to_string v))
    eq
