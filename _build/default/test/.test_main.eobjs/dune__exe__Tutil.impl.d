test/tutil.ml: Alcotest Array Float Format String W2
