test/test_fuzz.ml: Bytes Char Gen Lexer List Loc Midend Parser Pretty QCheck QCheck_alcotest Semcheck String W2 Warp
