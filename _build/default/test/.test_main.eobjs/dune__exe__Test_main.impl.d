test/test_main.ml: Alcotest Test_driver Test_fuzz Test_ifconv Test_inline Test_ir Test_netsim Test_parallel Test_stats Test_w2 Test_warp
