test/test_stats.ml: Alcotest Gen QCheck QCheck_alcotest Stats String Tutil
