test/test_warp.ml: Alcotest Array Counted Float Ir Ir_interp List Loops Lower Midend Opt Option Printf QCheck QCheck_alcotest String Tutil W2 Warp
