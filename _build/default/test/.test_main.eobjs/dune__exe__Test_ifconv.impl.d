test/test_ifconv.ml: Alcotest Array Cfg Ifconv Ir Ir_interp List Lower Midend Opt W2 Warp
