test/test_ir.ml: Alcotest Array Cfg Constfold Dce Dom Float Gcp Gcse Ir Ir_interp Licm List Loops Lower Lvn Midend Opt Option Printf QCheck QCheck_alcotest Queue Strength Unroll W2
