test/test_driver.ml: Alcotest Driver List Midend Printf String Tutil W2 Warp
