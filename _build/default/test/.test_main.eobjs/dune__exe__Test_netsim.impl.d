test/test_netsim.ml: Alcotest Des Gen Host List Net Netsim Printf QCheck QCheck_alcotest Sync
