test/test_w2.ml: Alcotest Ast Float Gen Interp Lexer List Loc Option Parser Pretty Printf QCheck QCheck_alcotest Semcheck String Token Tutil W2
