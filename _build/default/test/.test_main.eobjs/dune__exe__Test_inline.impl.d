test/test_inline.ml: Alcotest Ast Gen Inline Interp List Loc Option Parser Pretty QCheck QCheck_alcotest Semcheck Tutil W2
