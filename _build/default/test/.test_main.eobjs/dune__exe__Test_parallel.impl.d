test/test_parallel.ml: Alcotest Config Domains Driver Experiment List Makerun Midend Parallel_cc Parrun Plan Printf Seqrun Timings W2 Warp
