(* Tests for the compiler driver: the four-phase pipeline with work
   accounting, and the cost model. *)

let compile_size size =
  Driver.Compile.compile_module
    (W2.Gen.module_of_function (W2.Gen.sized_function ~name:(W2.Gen.size_name size) size))

let test_work_measured () =
  let mw = compile_size W2.Gen.Small in
  let fw = List.hd (Driver.Compile.all_funcs mw) in
  Alcotest.(check bool) "tokens" true (fw.Driver.Compile.fw_tokens > 0);
  Alcotest.(check bool) "opt work" true (fw.Driver.Compile.fw_opt_work > 0);
  Alcotest.(check bool) "sched work" true (fw.Driver.Compile.fw_sched_work > 0);
  Alcotest.(check bool) "wides" true (fw.Driver.Compile.fw_wides > 0);
  Alcotest.(check bool) "image bytes" true (Driver.Compile.total_image_bytes mw > 0)

let test_loc_matches_gen () =
  List.iter
    (fun size ->
      let mw = compile_size size in
      let fw = List.hd (Driver.Compile.all_funcs mw) in
      Alcotest.(check int)
        (W2.Gen.size_name size)
        (W2.Gen.size_lines size) fw.Driver.Compile.fw_loc)
    W2.Gen.all_sizes

let test_phase23_monotone_in_size () =
  (* Bigger functions must cost more in the simulated model — the
     property the whole reproduction rests on. *)
  let m = Driver.Cost.default in
  let times =
    List.map
      (fun size ->
        let mw = compile_size size in
        Driver.Cost.phase23_seconds m (List.hd (Driver.Compile.all_funcs mw)))
      W2.Gen.all_sizes
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool)
    (String.concat ", " (List.map (Printf.sprintf "%.0fs") times))
    true (increasing times)

let test_calibration_anchors () =
  (* Section 4.3: ~300-line functions compile in 19-22 minutes; 30-45
     line functions in 2-6 minutes.  Nominal times must land in a band
     around those anchors (memory slowdowns push them further up). *)
  let m = Driver.Cost.default in
  let mw = Driver.Compile.compile_module (W2.Gen.user_program ()) in
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      let t = Driver.Cost.phase23_seconds m fw in
      if fw.Driver.Compile.fw_loc >= 250 then
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d loc) = %.0fs in [600, 1500]" fw.Driver.Compile.fw_name
             fw.Driver.Compile.fw_loc t)
          true
          (t >= 600.0 && t <= 1500.0)
      else
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d loc) = %.0fs in [40, 420]" fw.Driver.Compile.fw_name
             fw.Driver.Compile.fw_loc t)
          true
          (t >= 40.0 && t <= 420.0))
    (Driver.Compile.all_funcs mw)

let test_parse_under_five_percent () =
  (* Section 3.4: a sequential compiler spends less than 5% of its time
     parsing. *)
  let m = Driver.Cost.default in
  List.iter
    (fun size ->
      let mw = compile_size size in
      let p1 = Driver.Cost.phase1_seconds m mw in
      let total =
        p1
        +. List.fold_left
             (fun acc fw -> acc +. Driver.Cost.phase23_seconds m fw)
             0.0 (Driver.Compile.all_funcs mw)
        +. Driver.Cost.phase4_seconds m mw
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: parse %.1f%%" (W2.Gen.size_name size) (100.0 *. p1 /. total))
        true
        (p1 /. total < 0.05))
    [ W2.Gen.Small; W2.Gen.Medium; W2.Gen.Large; W2.Gen.Huge ]

let test_slowdown_shape () =
  let m = Driver.Cost.default in
  let s p k = Driver.Cost.slowdown m ~pressure:p ~pagers:k in
  Alcotest.(check (float 1e-9)) "no pressure" 1.0 (s 0.3 1);
  Alcotest.(check bool) "gc region" true (s 0.8 1 > 1.0);
  Alcotest.(check bool) "paging worse than gc" true (s 1.2 1 > s 0.9 1);
  Alcotest.(check bool) "shared paging compounds" true (s 1.1 8 > s 1.1 1);
  Alcotest.(check bool) "capped" true (s 5.0 20 <= m.Driver.Cost.max_slowdown)

let test_sequential_mb_grows () =
  let m = Driver.Cost.default in
  let mw = compile_size W2.Gen.Medium in
  let early = Driver.Cost.sequential_mb m mw ~compiled_loc:0 ~current_loc:100 in
  let late = Driver.Cost.sequential_mb m mw ~compiled_loc:700 ~current_loc:100 in
  Alcotest.(check bool) "heap grows" true (late > early)

let test_compile_error_reported () =
  match Driver.Compile.compile_source "module m section s cells 1 end end" with
  | exception Driver.Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a compile error"

let test_semantic_error_reported () =
  let src =
    {|
module m
  section s cells 1
  function f() : int
  begin
    return x;
  end
  end
end
|}
  in
  match Driver.Compile.compile_source src with
  | exception Driver.Compile.Compile_error msg ->
    Alcotest.(check bool) "mentions x" true (Tutil.contains msg "undeclared variable 'x'")
  | _ -> Alcotest.fail "expected a semantic error"

let test_compiled_images_runnable () =
  (* The driver's output is a real image: run it. *)
  let mw = compile_size W2.Gen.Small in
  let sw = List.hd mw.Driver.Compile.mw_sections in
  let result, _ =
    Warp.Cellsim.run ~fuel:50_000_000 sw.Driver.Compile.sw_image ~name:"f_small"
      ~args:[ Midend.Ir_interp.Vi 3; Midend.Ir_interp.Vi 1 ]
  in
  match result with
  | Some (Midend.Ir_interp.Vf _) -> ()
  | _ -> Alcotest.fail "driver image did not produce a float"

let suites =
  [
    ( "driver.compile",
      [
        Alcotest.test_case "work measured" `Quick test_work_measured;
        Alcotest.test_case "loc matches" `Quick test_loc_matches_gen;
        Alcotest.test_case "images runnable" `Quick test_compiled_images_runnable;
        Alcotest.test_case "parse errors" `Quick test_compile_error_reported;
        Alcotest.test_case "semantic errors" `Quick test_semantic_error_reported;
      ] );
    ( "driver.cost",
      [
        Alcotest.test_case "monotone in size" `Quick test_phase23_monotone_in_size;
        Alcotest.test_case "calibration anchors" `Quick test_calibration_anchors;
        Alcotest.test_case "parse under 5%" `Quick test_parse_under_five_percent;
        Alcotest.test_case "slowdown shape" `Quick test_slowdown_shape;
        Alcotest.test_case "sequential heap grows" `Quick test_sequential_mb_grows;
      ] );
  ]
