(* Middle-end tests: lowering, CFG utilities, dominators, liveness,
   loops, and — most importantly — differential testing of every
   optimization level against the reference interpreter. *)

open Midend

let parse_module src =
  let m = W2.Parser.module_of_string src in
  W2.Semcheck.check_module_exn m;
  m

let lower_first src = List.hd (Lower.lower_module (parse_module src))

let sample =
  {|
module m
  section s cells 1
  function poly(x: int) : int
    var i : int;
    var acc : int;
  begin
    acc := 0;
    for i := 1 to x do
      acc := acc + i * 3;
    end;
    return acc * 1 + 0;
  end
  end
end
|}

(* --- lowering basics --- *)

let test_lower_shape () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  Alcotest.(check string) "name" "poly" f.Ir.name;
  Alcotest.(check bool) "has blocks" true (Array.length f.Ir.blocks >= 4);
  Alcotest.(check int) "one param" 1 (List.length f.Ir.params)

let test_lower_runs () =
  let sec = lower_first sample in
  match Ir_interp.run_function sec ~name:"poly" ~args:[ Ir_interp.Vi 4 ] with
  | Some (Ir_interp.Vi 30) -> ()
  | Some v -> Alcotest.failf "poly(4) = %s, wanted 30" (Ir_interp.value_to_string v)
  | None -> Alcotest.fail "poly returned nothing"

let test_lower_rejects_nothing_checked () =
  (* Lowering trusts the checker: a checked module never raises. *)
  let m = parse_module sample in
  ignore (Lower.lower_module m)

(* --- cfg --- *)

let test_unreachable_removal () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  (* Lowering a [return] mid-body leaves unreachable blocks in some
     shapes; force one artificially. *)
  ignore (Cfg.remove_unreachable f);
  let n = Array.length f.Ir.blocks in
  f.Ir.blocks <- Array.append f.Ir.blocks [| { Ir.instrs = []; term = Ir.Ret None } |];
  let removed = Cfg.remove_unreachable f in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "size restored" n (Array.length f.Ir.blocks)

let test_rpo_starts_at_entry () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  match Cfg.reverse_postorder f with
  | [] -> Alcotest.fail "empty RPO"
  | first :: _ -> Alcotest.(check int) "entry first" Ir.entry_block first

let test_preds_match_succs () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  let succs = Cfg.successors f in
  let preds = Cfg.predecessors f in
  Array.iteri
    (fun i ss ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%d in preds of %d" i s)
            true (List.mem i preds.(s)))
        ss)
    succs

(* --- dominators --- *)

let test_dominators () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  ignore (Cfg.remove_unreachable f);
  let dom = Dom.compute f in
  let n = Array.length f.Ir.blocks in
  for b = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "entry dominates %d" b)
      true
      (Dom.dominates dom Ir.entry_block b)
  done;
  Alcotest.(check bool) "self-domination" true (Dom.dominates dom 1 1)

(* --- loops --- *)

let test_loop_found () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  let loops = Loops.find f in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "header in body" true (Loops.Iset.mem l.Loops.header l.Loops.body);
  Alcotest.(check bool) "has exit" true (l.Loops.exits <> [])

let test_nesting_depth () =
  let nested =
    {|
module m
  section s cells 1
  function f() : int
    var i : int;
    var j : int;
    var s : int;
  begin
    s := 0;
    for i := 0 to 3 do
      for j := 0 to 3 do
        s := s + 1;
      end;
    end;
    return s;
  end
  end
end
|}
  in
  let f = List.hd (lower_first nested).Ir.funcs in
  Alcotest.(check int) "depth 2" 2 (Loops.nesting_depth f)

(* --- individual passes --- *)

let count_instrs f = Ir.instr_count f

let test_constfold_folds () =
  let sec = lower_first sample in
  let f = List.hd sec.Ir.funcs in
  (* [acc * 1 + 0] must disappear. *)
  let changed = Constfold.run f in
  Alcotest.(check bool) "folded something" true (changed > 0)

let test_dce_removes_dead () =
  let src =
    {|
module m
  section s cells 1
  function f(x: int) : int
    var dead : int;
  begin
    dead := x * 123;
    return x;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  let before = count_instrs f in
  let removed = Dce.run f in
  Alcotest.(check bool) "removed" true (removed >= 1);
  Alcotest.(check bool) "smaller" true (count_instrs f < before)

let test_lvn_cse () =
  let src =
    {|
module m
  section s cells 1
  function f(x: int) : int
    var a : int;
    var b : int;
  begin
    a := x * 7 + 1;
    b := x * 7 + 1;
    return a + b;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  let changed = Lvn.run f in
  Alcotest.(check bool) "cse fired" true (changed >= 1)

let test_licm_hoists () =
  let src =
    {|
module m
  section s cells 1
  function f(x: int) : int
    var i : int;
    var s : int;
  begin
    s := 0;
    for i := 0 to 9 do
      s := s + x * x;
    end;
    return s;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  ignore (Constfold.run f);
  ignore (Lvn.run f);
  let hoisted = Licm.run f in
  Alcotest.(check bool) "hoisted x*x" true (hoisted >= 1);
  (* Semantics preserved. *)
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:"f" ~args:[ Ir_interp.Vi 3 ]
  with
  | Some (Ir_interp.Vi 90) -> ()
  | other ->
    Alcotest.failf "f(3) after licm = %s"
      (match other with Some v -> Ir_interp.value_to_string v | None -> "none")

let test_strength_reduces () =
  let src =
    {|
module m
  section s cells 1
  function f(n: int) : int
    var i : int;
    var s : int;
  begin
    s := 0;
    for i := 0 to n do
      s := s + i * 12;
    end;
    return s;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  let reduced = Strength.run f in
  Alcotest.(check bool) "reduced" true (reduced >= 1);
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:"f" ~args:[ Ir_interp.Vi 5 ]
  with
  | Some (Ir_interp.Vi 180) -> ()
  | other ->
    Alcotest.failf "f(5) after strength reduction = %s"
      (match other with Some v -> Ir_interp.value_to_string v | None -> "none")

let test_unroll_flattens () =
  let src =
    {|
module m
  section s cells 1
  function f() : int
    var i : int;
    var s : int;
  begin
    s := 0;
    for i := 0 to 3 do
      s := s + 2;
    end;
    return s;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  (* Cleanup turns the limit into a recognisable constant. *)
  ignore (Constfold.run f);
  ignore (Lvn.run f);
  ignore (Gcp.run f);
  ignore (Dce.run f);
  ignore (Cfg.simplify f);
  let unrolled = Unroll.run f in
  Alcotest.(check bool) "unrolled" true (unrolled >= 1);
  Alcotest.(check int) "no loops left" 0 (List.length (Loops.find f));
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:"f" ~args:[]
  with
  | Some (Ir_interp.Vi 8) -> ()
  | other ->
    Alcotest.failf "f() after unroll = %s"
      (match other with Some v -> Ir_interp.value_to_string v | None -> "none")

let test_opt_levels_monotone_size () =
  let m = W2.Gen.module_of_function (W2.Gen.sized_function ~name:"f" W2.Gen.Medium) in
  let sizes =
    List.map
      (fun level ->
        let sec = List.hd (Lower.lower_module m) in
        List.iter (fun f -> ignore (Opt.optimize ~level f)) sec.Ir.funcs;
        List.fold_left (fun acc f -> acc + Ir.instr_count f) 0 sec.Ir.funcs)
      [ 0; 1 ]
  in
  match sizes with
  | [ s0; s1 ] -> Alcotest.(check bool) "level1 not larger" true (s1 <= s0)
  | _ -> assert false

(* --- differential testing --- *)

let value_of_w2 = function
  | W2.Interp.Vint n -> Some (Ir_interp.Vi n)
  | W2.Interp.Vfloat f -> Some (Ir_interp.Vf f)
  | W2.Interp.Vbool b -> Some (Ir_interp.Vi (if b then 1 else 0))
  | W2.Interp.Varray _ -> None

let values_close a b =
  match (a, b) with
  | Ir_interp.Vi x, Ir_interp.Vi y -> x = y
  | Ir_interp.Vf x, Ir_interp.Vf y ->
    (Float.is_nan x && Float.is_nan y)
    || abs_float (x -. y) <= 1e-9 *. (1.0 +. abs_float x +. abs_float y)
  | _ -> false

type outcome =
  | Value of Ir_interp.value option * Ir_interp.value list (* result, sent *)
  | Failed
  | Fuel

let run_source m ~args_int ~args_float ~inputs =
  let sec = List.hd m.W2.Ast.sections in
  let channels, outputs =
    W2.Interp.queue_channels
      ~input_x:(List.map (fun f -> W2.Interp.Vfloat f) inputs)
      ~input_y:[]
  in
  match
    W2.Interp.run_function ~fuel:400_000 ~channels sec ~name:"prop_f"
      ~args:[ W2.Interp.Vint args_int; W2.Interp.Vfloat args_float ]
  with
  | exception W2.Interp.Out_of_fuel -> Fuel
  | exception W2.Interp.Runtime_error _ -> Failed
  | result ->
    let out_x, out_y = outputs () in
    let sent =
      List.filter_map value_of_w2 (out_x @ out_y)
    in
    Value (Option.bind result value_of_w2, sent)

let run_ir sec ~level ~args_int ~args_float ~inputs =
  let sec =
    {
      sec with
      Ir.funcs =
        List.map
          (fun f ->
            (* Deep-copy blocks so each level optimizes fresh IR. *)
            let copy =
              {
                f with
                Ir.blocks = Array.map (fun b -> { b with Ir.instrs = b.Ir.instrs }) f.Ir.blocks;
                reg_ty = Array.copy f.Ir.reg_ty;
              }
            in
            ignore (Opt.optimize ~level copy);
            copy)
          sec.Ir.funcs;
    }
  in
  let sent = ref [] in
  let queue = Queue.of_seq (List.to_seq inputs) in
  let channels =
    {
      Ir_interp.recv =
        (fun _ ->
          if Queue.is_empty queue then raise (Ir_interp.Error "empty channel")
          else Ir_interp.Vf (Queue.pop queue));
      send = (fun _ v -> sent := v :: !sent);
    }
  in
  match
    Ir_interp.run_function ~fuel:2_000_000 ~channels sec ~name:"prop_f"
      ~args:[ Ir_interp.Vi args_int; Ir_interp.Vf args_float ]
  with
  | exception Ir_interp.Out_of_fuel -> Fuel
  | exception Ir_interp.Error _ -> Failed
  | result -> Value (result, List.rev !sent)

let outcomes_agree a b =
  match (a, b) with
  | Fuel, _ | _, Fuel -> true (* fuel budgets differ between interpreters *)
  | Failed, Failed -> true
  | Value (ra, sa), Value (rb, sb) ->
    let results_ok =
      match (ra, rb) with
      | None, None -> true
      | Some x, Some y -> values_close x y
      | _ -> false
    in
    results_ok
    && List.length sa = List.length sb
    && List.for_all2 values_close sa sb
  | Value _, Failed | Failed, Value _ -> false

let differential_prop ~level ~allow_channels =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "opt level %d preserves semantics%s" level
         (if allow_channels then " (with channels)" else ""))
    ~count:250
    QCheck.(triple small_nat small_nat (int_range 0 100))
    (fun (seed, size, input) ->
      let f = W2.Gen.random_function ~allow_channels ~seed ~size () in
      let m = W2.Gen.module_of_function f in
      (match W2.Semcheck.check_module m with
      | [] -> ()
      | e :: _ -> QCheck.Test.fail_reportf "gen produced unchecked code: %s"
                    (W2.Semcheck.error_to_string e));
      let sec = List.hd (Lower.lower_module m) in
      let args_int = input mod 23 in
      let args_float = 0.5 +. (0.25 *. float_of_int (input mod 7)) in
      let inputs = List.init 64 (fun i -> 0.125 *. float_of_int i) in
      let reference = run_source m ~args_int ~args_float ~inputs in
      let compiled = run_ir sec ~level ~args_int ~args_float ~inputs in
      if outcomes_agree reference compiled then true
      else
        QCheck.Test.fail_reportf
          "disagreement at level %d (seed=%d size=%d input=%d)" level seed size
          input)

let test_paper_benchmarks_compile_identically () =
  (* Each of the five paper functions compiles and produces the same
     value at every optimization level. *)
  List.iter
    (fun size ->
      let f = W2.Gen.sized_function ~name:"bench" size in
      let m = W2.Gen.module_of_function f in
      let reference =
        W2.Interp.run_function ~fuel:5_000_000 (List.hd m.W2.Ast.sections)
          ~name:"bench"
          ~args:[ W2.Interp.Vint 11; W2.Interp.Vint 2 ]
      in
      let expected = Option.bind reference value_of_w2 |> Option.get in
      List.iter
        (fun level ->
          let sec = List.hd (Lower.lower_module m) in
          List.iter (fun f -> ignore (Opt.optimize ~level f)) sec.Ir.funcs;
          match
            Ir_interp.run_function ~fuel:10_000_000 sec ~name:"bench"
              ~args:[ Ir_interp.Vi 11; Ir_interp.Vi 2 ]
          with
          | Some v when values_close v expected -> ()
          | Some v ->
            Alcotest.failf "%s level %d: %s <> %s" (W2.Gen.size_name size) level
              (Ir_interp.value_to_string v)
              (Ir_interp.value_to_string expected)
          | None -> Alcotest.failf "%s level %d returned nothing" (W2.Gen.size_name size) level)
        [ 0; 1; 2; 3 ])
    W2.Gen.all_sizes

let suites =
  [
    ( "ir.lower",
      [
        Alcotest.test_case "shape" `Quick test_lower_shape;
        Alcotest.test_case "executes" `Quick test_lower_runs;
        Alcotest.test_case "checked lowers" `Quick test_lower_rejects_nothing_checked;
      ] );
    ( "ir.cfg",
      [
        Alcotest.test_case "unreachable removal" `Quick test_unreachable_removal;
        Alcotest.test_case "rpo entry" `Quick test_rpo_starts_at_entry;
        Alcotest.test_case "preds/succs duality" `Quick test_preds_match_succs;
      ] );
    ("ir.dom", [ Alcotest.test_case "dominators" `Quick test_dominators ]);
    ( "ir.loops",
      [
        Alcotest.test_case "loop detection" `Quick test_loop_found;
        Alcotest.test_case "nesting depth" `Quick test_nesting_depth;
      ] );
    ( "ir.passes",
      [
        Alcotest.test_case "constfold" `Quick test_constfold_folds;
        Alcotest.test_case "dce" `Quick test_dce_removes_dead;
        Alcotest.test_case "lvn cse" `Quick test_lvn_cse;
        Alcotest.test_case "licm" `Quick test_licm_hoists;
        Alcotest.test_case "strength reduction" `Quick test_strength_reduces;
        Alcotest.test_case "unroll" `Quick test_unroll_flattens;
        Alcotest.test_case "sizes shrink" `Quick test_opt_levels_monotone_size;
        Alcotest.test_case "paper benchmarks" `Quick
          test_paper_benchmarks_compile_identically;
      ] );
    ( "ir.differential",
      [
        QCheck_alcotest.to_alcotest (differential_prop ~level:0 ~allow_channels:false);
        QCheck_alcotest.to_alcotest (differential_prop ~level:1 ~allow_channels:false);
        QCheck_alcotest.to_alcotest (differential_prop ~level:2 ~allow_channels:false);
        QCheck_alcotest.to_alcotest (differential_prop ~level:3 ~allow_channels:false);
        QCheck_alcotest.to_alcotest (differential_prop ~level:2 ~allow_channels:true);
        QCheck_alcotest.to_alcotest (differential_prop ~level:3 ~allow_channels:true);
      ] );
  ]

(* --- global CSE --- *)

let test_gcse_across_blocks () =
  (* The same pure expression recomputed in both branch arms (with a
     store in each arm so if-conversion does not fuse them first). *)
  let src =
    {|
module m
  section s cells 1
  function f(x: int, b: int) : int
    var a : array[8] of int;
    var r : int;
  begin
    r := x * 7 + 1;
    if b > 0 then
      a[0] := x * 7 + 1;
    else
      a[1] := x * 7 + 1;
    end;
    return r + a[0] + a[1];
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  ignore (Cfg.simplify f);
  ignore (Lvn.run f);
  let eliminated = Gcse.run f in
  Alcotest.(check bool) "eliminated cross-block duplicates" true (eliminated >= 2);
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:"f"
      ~args:[ Ir_interp.Vi 3; Ir_interp.Vi 1 ]
  with
  | Some (Ir_interp.Vi v) -> Alcotest.(check int) "value preserved" 44 v
  | _ -> Alcotest.fail "run failed"

let test_gcse_respects_redefinition () =
  (* The expression's operand is redefined between the two sites: the
     second computation must stay. *)
  let src =
    {|
module m
  section s cells 1
  function g(x: int) : int
    var y : int;
    var r : int;
  begin
    y := x;
    r := y * 3;
    y := y + 1;
    return r + y * 3;
  end
  end
end
|}
  in
  let f = List.hd (lower_first src).Ir.funcs in
  ignore (Cfg.simplify f);
  Alcotest.(check int) "multi-def operand untouched" 0 (Gcse.run f);
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:"g" ~args:[ Ir_interp.Vi 5 ]
  with
  | Some (Ir_interp.Vi v) -> Alcotest.(check int) "value" 33 v
  | _ -> Alcotest.fail "run failed"

let gcse_suites =
  [
    ( "ir.gcse",
      [
        Alcotest.test_case "across blocks" `Quick test_gcse_across_blocks;
        Alcotest.test_case "respects redefinition" `Quick test_gcse_respects_redefinition;
      ] );
  ]

let suites = suites @ gcse_suites
