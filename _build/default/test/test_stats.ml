let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "mean single" 5.0 (Stats.mean [ 5.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_stddev () =
  Alcotest.check feq "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "stddev constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ])

let test_within_fraction () =
  Alcotest.(check bool) "tight" true (Stats.within_fraction 0.1 [ 10.0; 10.5; 9.5 ]);
  Alcotest.(check bool) "loose" false (Stats.within_fraction 0.01 [ 10.0; 11.0 ]);
  Alcotest.(check bool) "empty" true (Stats.within_fraction 0.1 [])

let test_speedup () =
  Alcotest.check feq "speedup" 4.0 (Stats.speedup ~sequential:8.0 ~parallel:2.0);
  Alcotest.check_raises "zero parallel"
    (Invalid_argument "Stats.speedup: non-positive time") (fun () ->
      ignore (Stats.speedup ~sequential:1.0 ~parallel:0.0))

let test_percent () =
  Alcotest.check feq "percent" 25.0 (Stats.percent_of ~part:1.0 ~total:4.0);
  Alcotest.check feq "percent zero total" 0.0 (Stats.percent_of ~part:1.0 ~total:0.0)

let test_geomean () =
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ])

let test_min_max () =
  Alcotest.check feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_table_render () =
  let table =
    Stats.Table.make ~title:"t" ~columns:[ "x"; "y" ]
    |> fun t -> Stats.Table.add_row t [ "1"; "2.00" ]
  in
  let text = Stats.Table.render table in
  Alcotest.(check bool) "mentions title" true
    (String.length text > 0 && String.sub text 0 1 = "t");
  Alcotest.(check bool) "contains cell" true
    (Tutil.contains text "2.00")

let test_table_mismatch () =
  let table = Stats.Table.make ~title:"t" ~columns:[ "x"; "y" ] in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: cell count does not match column count")
    (fun () -> ignore (Stats.Table.add_row table [ "only one" ]))

let test_of_series () =
  let s1 = Stats.Table.series "a" [ (1.0, 2.0); (2.0, 4.0) ] in
  let s2 = Stats.Table.series "b" [ (1.0, 3.0); (2.0, 6.0) ] in
  let table = Stats.Table.of_series ~title:"fig" ~x_label:"n" [ s1; s2 ] in
  let text = Stats.Table.render table in
  Alcotest.(check bool) "has b column" true (Tutil.contains text "6.00")

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_speedup_inverse =
  QCheck.Test.make ~name:"speedup of equal times is 1" ~count:100
    QCheck.(float_range 0.001 1000.)
    (fun t -> abs_float (Stats.speedup ~sequential:t ~parallel:t -. 1.0) < 1e-9)

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "mean empty" `Quick test_mean_empty;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "within fraction" `Quick test_within_fraction;
        Alcotest.test_case "speedup" `Quick test_speedup;
        Alcotest.test_case "percent" `Quick test_percent;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "min max" `Quick test_min_max;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table mismatch" `Quick test_table_mismatch;
        Alcotest.test_case "table of series" `Quick test_of_series;
        QCheck_alcotest.to_alcotest prop_mean_bounds;
        QCheck_alcotest.to_alcotest prop_speedup_inverse;
      ] );
  ]
