(* If-conversion tests: diamonds and triangles become selects, unsafe
   arms are left alone, and loops whose bodies contained branches become
   software-pipelinable. *)

open Midend

let parse src =
  let m = W2.Parser.module_of_string src in
  W2.Semcheck.check_module_exn m;
  m

let lower_one src = List.hd (List.hd (Lower.lower_module (parse src))).Ir.funcs

let count_sels (f : Ir.func) =
  Array.fold_left
    (fun acc (b : Ir.block) ->
      acc
      + List.length
          (List.filter (fun i -> match i with Ir.Sel _ -> true | _ -> false) b.Ir.instrs))
    0 f.Ir.blocks

let count_branches (f : Ir.func) =
  Array.fold_left
    (fun acc (b : Ir.block) ->
      acc + match b.Ir.term with Ir.Branch _ -> 1 | _ -> 0)
    0 f.Ir.blocks

let diamond_src =
  {|
module m
  section s cells 1
  function pick(x: int) : int
    var r : int;
  begin
    if x > 10 then
      r := x * 2;
    else
      r := x + 100;
    end;
    return r;
  end
  end
end
|}

let run_int (f : Ir.func) arg =
  match
    Ir_interp.run_function
      { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
      ~name:f.Ir.name
      ~args:[ Ir_interp.Vi arg ]
  with
  | Some (Ir_interp.Vi n) -> n
  | _ -> Alcotest.fail "expected an int result"

let test_diamond_converted () =
  let f = lower_one diamond_src in
  ignore (Cfg.simplify f);
  let converted = Ifconv.run f in
  Alcotest.(check bool) "converted" true (converted >= 1);
  Alcotest.(check bool) "has sel" true (count_sels f >= 1);
  Alcotest.(check int) "no branches left" 0 (count_branches f);
  Alcotest.(check int) "then path" 30 (run_int f 15);
  Alcotest.(check int) "else path" 105 (run_int f 5)

let test_triangle_converted () =
  let src =
    {|
module m
  section s cells 1
  function clamp(x: int) : int
    var r : int;
  begin
    r := x;
    if x > 100 then
      r := 100;
    end;
    return r;
  end
  end
end
|}
  in
  let f = lower_one src in
  ignore (Cfg.simplify f);
  let converted = Ifconv.run f in
  Alcotest.(check bool) "converted" true (converted >= 1);
  Alcotest.(check int) "clamped" 100 (run_int f 200);
  Alcotest.(check int) "untouched" 42 (run_int f 42)

let test_side_effects_not_converted () =
  let src =
    {|
module m
  section s cells 1
  function guard(x: int) : int
    var a : array[4] of int;
  begin
    if x < 4 then
      a[x] := 1;
    end;
    return x;
  end
  end
end
|}
  in
  let f = lower_one src in
  ignore (Cfg.simplify f);
  Alcotest.(check int) "store arm stays branchy" 0 (Ifconv.run f)

let test_trap_not_converted () =
  let src =
    {|
module m
  section s cells 1
  function safe_div(x: int, y: int) : int
    var r : int;
  begin
    r := 0;
    if y <> 0 then
      r := x / y;
    end;
    return r;
  end
  end
end
|}
  in
  let f = lower_one src in
  ignore (Cfg.simplify f);
  Alcotest.(check int) "division stays guarded" 0 (Ifconv.run f);
  (* And the semantics indeed need the guard: *)
  Alcotest.(check int) "guarded zero" 0
    (match
       Ir_interp.run_function
         { Ir.sec_name = "s"; cells = 1; funcs = [ f ] }
         ~name:"safe_div"
         ~args:[ Ir_interp.Vi 7; Ir_interp.Vi 0 ]
     with
    | Some (Ir_interp.Vi n) -> n
    | _ -> -1)

let test_guarded_load_not_converted () =
  let src =
    {|
module m
  section s cells 1
  function peek(i: int) : float
    var a : array[4] of float;
    var r : float;
  begin
    r := 0.0;
    if i < 4 then
      r := a[i];
    end;
    return r;
  end
  end
end
|}
  in
  let f = lower_one src in
  ignore (Cfg.simplify f);
  Alcotest.(check int) "load stays guarded" 0 (Ifconv.run f)

let test_enables_pipelining () =
  (* A loop whose body contains a small if: after if-conversion the body
     is a single block and software pipelining fires. *)
  let src =
    {|
module m
  section s cells 1
  function rectify(n: int) : float
    var i : int;
    var acc : float;
    var x : float;
    var a : array[16] of float;
  begin
    for i := 0 to 15 do
      a[i] := float(i - 8) * 0.5;
    end;
    acc := 0.0;
    for i := 0 to 15 do
      x := a[i] * 0.25;
      if x < 0.0 then
        x := 0.0 - x;
      end;
      acc := acc + x;
    end;
    return acc;
  end
  end
end
|}
  in
  let sec = List.hd (Lower.lower_module (parse src)) in
  List.iter (fun f -> ignore (Opt.optimize ~level:2 f)) sec.Ir.funcs;
  let f = List.hd sec.Ir.funcs in
  let compiled = Warp.Codegen.compile_function f in
  Alcotest.(check bool) "pipelined after if-conversion" true
    (compiled.Warp.Codegen.pipelined >= 1);
  (* End-to-end value check through the cell simulator. *)
  let image = Warp.Link.link ~section:"s" ~cells:1 [ compiled.Warp.Codegen.mfunc ] in
  Alcotest.(check int) "verifier clean" 0 (List.length (Warp.Verify.image image));
  let reference =
    match
      W2.Interp.run_function
        (List.hd (parse src).W2.Ast.sections)
        ~name:"rectify"
        ~args:[ W2.Interp.Vint 0 ]
    with
    | Some (W2.Interp.Vfloat v) -> v
    | _ -> Alcotest.fail "reference failed"
  in
  match Warp.Cellsim.run image ~name:"rectify" ~args:[ Ir_interp.Vi 0 ] with
  | Some (Ir_interp.Vf v), _ ->
    Alcotest.(check (float 1e-9)) "value matches interpreter" reference v
  | _ -> Alcotest.fail "cell run failed"

let test_condition_clobber_safe () =
  (* An arm that redefines the condition register itself. *)
  let src =
    {|
module m
  section s cells 1
  function tricky(x: int) : int
    var c : bool;
    var r : int;
  begin
    c := x > 0;
    r := 1;
    if c then
      c := false;
      r := 2;
    else
      r := 3;
    end;
    return r;
  end
  end
end
|}
  in
  let f = lower_one src in
  ignore (Cfg.simplify f);
  ignore (Ifconv.run f);
  Alcotest.(check int) "positive" 2 (run_int f 5);
  Alcotest.(check int) "non-positive" 3 (run_int f (-5))

let suites =
  [
    ( "ir.ifconv",
      [
        Alcotest.test_case "diamond" `Quick test_diamond_converted;
        Alcotest.test_case "triangle" `Quick test_triangle_converted;
        Alcotest.test_case "side effects blocked" `Quick test_side_effects_not_converted;
        Alcotest.test_case "traps blocked" `Quick test_trap_not_converted;
        Alcotest.test_case "guarded loads blocked" `Quick test_guarded_load_not_converted;
        Alcotest.test_case "enables pipelining" `Quick test_enables_pipelining;
        Alcotest.test_case "condition clobber" `Quick test_condition_clobber_safe;
      ] );
  ]
