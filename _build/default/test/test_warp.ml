(* Back-end tests: register allocation, list scheduling, modulo
   scheduling (software pipelining), assembly round trips, the cell and
   array simulators — and end-to-end differential testing: compiled
   code executed on the cycle simulator must agree with the source
   interpreter at every optimization level. *)

open Midend

let parse_module src =
  let m = W2.Parser.module_of_string src in
  W2.Semcheck.check_module_exn m;
  m

(* Full compilation pipeline for the first section of a module. *)
let compile ?(level = 2) ?reg_limit ?pipeline (m : W2.Ast.modul) : Warp.Mcode.image =
  let sec = List.hd (Lower.lower_module m) in
  List.iter (fun f -> ignore (Opt.optimize ~level f)) sec.Ir.funcs;
  let compiled =
    List.map (fun f -> (Warp.Codegen.compile_function ?reg_limit ?pipeline f).Warp.Codegen.mfunc) sec.Ir.funcs
  in
  Warp.Link.link ~section:sec.Ir.sec_name ~cells:sec.Ir.cells compiled

let vi n = Ir_interp.Vi n
let vf f = Ir_interp.Vf f

let values_close a b =
  match (a, b) with
  | Ir_interp.Vi x, Ir_interp.Vi y -> x = y
  | Ir_interp.Vf x, Ir_interp.Vf y ->
    (Float.is_nan x && Float.is_nan y)
    || abs_float (x -. y) <= 1e-9 *. (1.0 +. abs_float x +. abs_float y)
  | _ -> false

let sample =
  {|
module m
  section s cells 2
  function helper(x: float) : float
  begin
    return x * 2.0 + 1.0;
  end
  function main(n: int) : float
    var i : int;
    var acc : float;
  begin
    acc := 0.0;
    for i := 1 to n do
      acc := acc + helper(float(i));
    end;
    return acc;
  end
  end
end
|}

(* --- regalloc --- *)

let first_func src = List.hd (List.hd (Lower.lower_module (parse_module src)) : Ir.section).Ir.funcs

let test_regalloc_bounds () =
  let f = first_func sample in
  let alloc = Warp.Regalloc.run f in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun instr ->
          List.iter
            (fun r ->
              Alcotest.(check bool) "phys reg" true (r >= 0 && r < Warp.Machine.num_regs))
            ((match Ir.def_of instr with Some d -> [ d ] | None -> []) @ Ir.uses_of instr))
        b.Ir.instrs)
    alloc.Warp.Regalloc.func.Ir.blocks

let test_regalloc_spills_under_pressure () =
  (* Allocate the medium benchmark with very few registers: spills must
     occur and the allocation must still succeed. *)
  let m = W2.Gen.module_of_function (W2.Gen.sized_function ~name:"big" W2.Gen.Medium) in
  let f = List.hd (List.hd (Lower.lower_module m)).Ir.funcs in
  let alloc = Warp.Regalloc.run ~reg_limit:6 f in
  Alcotest.(check bool) "spilled" true (alloc.Warp.Regalloc.spilled > 0)

(* --- list scheduler --- *)

let test_listsched_dependences () =
  (* r2 := r0 * r1 (fmul, lat 5); r3 := r2 + r0 (fadd): the consumer
     must issue at least 5 cycles later. *)
  let ops =
    [|
      Ir.Bin (Ir.Fmul, 2, Ir.Reg 0, Ir.Reg 1);
      Ir.Bin (Ir.Fadd, 3, Ir.Reg 2, Ir.Reg 0);
    |]
  in
  let s = Warp.Listsched.run ops in
  Alcotest.(check bool) "latency respected" true
    (s.Warp.Listsched.issue.(1) >= s.Warp.Listsched.issue.(0) + 5)

let test_listsched_parallel_issue () =
  (* Independent int and float ops can share a cycle. *)
  let ops =
    [|
      Ir.Bin (Ir.Iadd, 2, Ir.Reg 0, Ir.Imm_int 1);
      Ir.Bin (Ir.Fadd, 3, Ir.Reg 4, Ir.Reg 5);
    |]
  in
  let s = Warp.Listsched.run ops in
  Alcotest.(check int) "same cycle" s.Warp.Listsched.issue.(0) s.Warp.Listsched.issue.(1)

let test_listsched_fu_conflict () =
  (* Two independent ALU adds cannot share a cycle. *)
  let ops =
    [|
      Ir.Bin (Ir.Iadd, 2, Ir.Reg 0, Ir.Imm_int 1);
      Ir.Bin (Ir.Iadd, 3, Ir.Reg 1, Ir.Imm_int 1);
    |]
  in
  let s = Warp.Listsched.run ops in
  Alcotest.(check bool) "different cycles" true
    (s.Warp.Listsched.issue.(0) <> s.Warp.Listsched.issue.(1))

let test_listsched_pads_latency () =
  let ops = [| Ir.Bin (Ir.Fmul, 2, Ir.Reg 0, Ir.Reg 1) |] in
  let s = Warp.Listsched.run ops in
  Alcotest.(check int) "padded to write-back" 5 (Array.length s.Warp.Listsched.code)

(* --- modulo scheduler --- *)

let test_modsched_res_mii () =
  (* Memory-bound dot-product step: two loads share the MEM unit, so
     ResMII = 2, but the accumulation recurrence (fadd, latency 5)
     dominates: II = 5, well below the 13-cycle critical path. *)
  let ops =
    [|
      Ir.Load (1, "a", Ir.Reg 0);
      Ir.Load (2, "b", Ir.Reg 0);
      Ir.Bin (Ir.Fmul, 3, Ir.Reg 1, Ir.Reg 2);
      Ir.Bin (Ir.Fadd, 4, Ir.Reg 4, Ir.Reg 3);
      Ir.Bin (Ir.Iadd, 0, Ir.Reg 0, Ir.Imm_int 1);
    |]
  in
  let r = Warp.Modsched.run ops in
  Alcotest.(check int) "II = RecMII" 5 r.Warp.Modsched.ii

let test_modsched_recurrence () =
  (* acc := acc + x*y: the accumulator recurrence forces II >= 5 even
     though each functional unit is used once. *)
  let ops =
    [|
      Ir.Bin (Ir.Fmul, 2, Ir.Reg 0, Ir.Reg 1);
      Ir.Bin (Ir.Fadd, 3, Ir.Reg 3, Ir.Reg 2);
    |]
  in
  let r = Warp.Modsched.run ops in
  Alcotest.(check bool) "II >= latency" true (r.Warp.Modsched.ii >= 5)

let test_modsched_unprofitable_rejected () =
  (* Three independent single-cycle ALU ops: overlap cannot recover
     enough of the 1-cycle critical path, so the scheduler declines
     (list scheduling is already optimal there). *)
  let ops =
    [|
      Ir.Bin (Ir.Iadd, 1, Ir.Reg 0, Ir.Imm_int 1);
      Ir.Bin (Ir.Iadd, 2, Ir.Reg 0, Ir.Imm_int 2);
      Ir.Bin (Ir.Iadd, 3, Ir.Reg 0, Ir.Imm_int 3);
    |]
  in
  match Warp.Modsched.run ops with
  | exception Warp.Modsched.No_schedule _ -> ()
  | _ -> Alcotest.fail "expected the profitability cut-off to fire"

(* A classic pipelinable kernel: load, multiply, accumulate. *)
let dot_src =
  {|
module m
  section s cells 1
  function dot(n: int) : float
    var i : int;
    var acc : float;
    var a : array[16] of float;
  begin
    for i := 0 to 15 do
      a[i] := float(i) * 0.5;
    end;
    acc := 0.0;
    for i := 0 to 15 do
      acc := acc + a[i] * 0.25;
    end;
    return acc;
  end
  end
end
|}

let test_modsched_overlaps_kernel () =
  (* The accumulation kernel must pipeline with II well below the
     single-iteration critical path (load 3 + fmul 5 + fadd 5). *)
  let sec = List.hd (Lower.lower_module (parse_module dot_src)) in
  List.iter (fun f -> ignore (Opt.optimize ~level:2 f)) sec.Ir.funcs;
  let f = List.hd sec.Ir.funcs in
  let loops = Loops.innermost (Loops.find f) in
  let counted = List.filter_map (Counted.recognize f) loops in
  let alloc = Warp.Regalloc.run f in
  let fp = alloc.Warp.Regalloc.func in
  let best_ii =
    List.fold_left
      (fun acc (c : Counted.t) ->
        let ops = Array.of_list fp.Ir.blocks.(c.Counted.body_block).Ir.instrs in
        match Warp.Modsched.run ops with
        | r -> min acc r.Warp.Modsched.ii
        | exception Warp.Modsched.No_schedule _ -> acc)
      max_int counted
  in
  Alcotest.(check bool) "found a kernel" true (best_ii < max_int);
  Alcotest.(check bool)
    (Printf.sprintf "II (%d) < critical path (13)" best_ii)
    true (best_ii < 13)

let test_modsched_edges_hold () =
  (* Every dependence edge must hold in the computed schedule. *)
  let m = parse_module dot_src in
  let sec = List.hd (Lower.lower_module m) in
  List.iter (fun f -> ignore (Opt.optimize ~level:2 f)) sec.Ir.funcs;
  let f = List.hd sec.Ir.funcs in
  (* Loops are recognized on virtual registers; scheduling operates on
     the register-allocated body (block ids survive allocation). *)
  let alloc = Warp.Regalloc.run f in
  let fp = alloc.Warp.Regalloc.func in
  let checked = ref 0 in
  List.iter
    (fun l ->
      match Counted.recognize f l with
      | Some c ->
        Warp.Rename_locals.run fp c.Counted.body_block;
        let ops = Array.of_list fp.Ir.blocks.(c.Counted.body_block).Ir.instrs in
        if Array.length ops > 0 && not (Array.exists (function Ir.Call _ -> true | _ -> false) ops)
        then begin
          match Warp.Modsched.run ops with
          | r ->
            let g = Warp.Ddg.build ~loop:true ops in
            List.iter
              (fun (e : Warp.Ddg.edge) ->
                incr checked;
                Alcotest.(check bool)
                  (Printf.sprintf "edge %d->%d delay %d dist %d" e.src e.dst e.delay e.dist)
                  true
                  (r.Warp.Modsched.sigma.(e.dst)
                   >= r.Warp.Modsched.sigma.(e.src) + e.delay - (r.Warp.Modsched.ii * e.dist)))
              g.Warp.Ddg.edges
          | exception Warp.Modsched.No_schedule _ -> ()
        end
      | None -> ())
    (Loops.innermost (Loops.find f));
  Alcotest.(check bool) "checked some edges" true (!checked > 0)

(* --- end-to-end --- *)

let test_e2e_sample () =
  let m = parse_module sample in
  let image = compile m in
  let result, cycles = Warp.Cellsim.run image ~name:"main" ~args:[ vi 4 ] in
  (* sum_{i=1..4} (2i + 1) = 2*10 + 4 = 24 *)
  Alcotest.(check bool) "value" true (values_close (Option.get result) (vf 24.0));
  Alcotest.(check bool) "took cycles" true (cycles > 0)

let test_e2e_pipelining_fires () =
  let m = parse_module dot_src in
  let sec = List.hd (Lower.lower_module m) in
  List.iter (fun f -> ignore (Opt.optimize ~level:2 f)) sec.Ir.funcs;
  let compiled = List.map (fun f -> Warp.Codegen.compile_function f) sec.Ir.funcs in
  let pipelined = List.fold_left (fun acc c -> acc + c.Warp.Codegen.pipelined) 0 compiled in
  Alcotest.(check bool) "software pipelining fired" true (pipelined > 0);
  (* And the pipelined code computes the right dot product:
     sum_{i=0..15} (0.5 i * 0.25) = 0.125 * 120 = 15.0 *)
  let image = compile m in
  let result, _ = Warp.Cellsim.run image ~name:"dot" ~args:[ vi 0 ] in
  Alcotest.(check bool) "value" true (values_close (Option.get result) (vf 15.0))

let test_e2e_pipelined_beats_unpipelined_cycles () =
  (* Software pipelining must reduce the cycle count of the kernel. *)
  let cycles pipeline =
    let m = parse_module dot_src in
    let sec = List.hd (Lower.lower_module m) in
    List.iter (fun f -> ignore (Opt.optimize ~level:2 f)) sec.Ir.funcs;
    let compiled =
      List.map
        (fun f -> (Warp.Codegen.compile_function ~pipeline f).Warp.Codegen.mfunc)
        sec.Ir.funcs
    in
    let image = Warp.Link.link ~section:"s" ~cells:1 compiled in
    let _, cycles = Warp.Cellsim.run image ~name:"dot" ~args:[ vi 0 ] in
    cycles
  in
  let with_sp = cycles true and without_sp = cycles false in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined %d < unpipelined %d cycles" with_sp without_sp)
    true (with_sp < without_sp)

let test_e2e_channels () =
  let src =
    {|
module m
  section s cells 1
  function relay(n: int) : int
    var i : int;
    var x : float;
  begin
    for i := 1 to n do
      receive(X, x);
      send(X, x * 0.5 + 1.0);
    end;
    return n;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  let ports, outputs = Warp.Cellsim.script_ports ~input_x:[ vf 2.0; vf 6.0 ] ~input_y:[] in
  let result, _ = Warp.Cellsim.run ~ports image ~name:"relay" ~args:[ vi 2 ] in
  Alcotest.(check bool) "result" true (values_close (Option.get result) (vi 2));
  let out_x, _ = outputs () in
  (match out_x with
  | [ a; b ] ->
    Alcotest.(check bool) "first" true (values_close a (vf 2.0));
    Alcotest.(check bool) "second" true (values_close b (vf 4.0))
  | _ -> Alcotest.fail "expected two outputs")

let paper_levels = [ 0; 1; 2; 3 ]

let test_e2e_paper_benchmarks () =
  List.iter
    (fun size ->
      let f = W2.Gen.sized_function ~name:"bench" size in
      let m = W2.Gen.module_of_function f in
      let expected =
        match
          W2.Interp.run_function ~fuel:5_000_000 (List.hd m.W2.Ast.sections)
            ~name:"bench"
            ~args:[ W2.Interp.Vint 9; W2.Interp.Vint 2 ]
        with
        | Some (W2.Interp.Vfloat v) -> vf v
        | _ -> Alcotest.fail "reference failed"
      in
      List.iter
        (fun level ->
          let image = compile ~level m in
          let result, _ =
            Warp.Cellsim.run ~fuel:50_000_000 image ~name:"bench" ~args:[ vi 9; vi 2 ]
          in
          match result with
          | Some v when values_close v expected -> ()
          | Some v ->
            Alcotest.failf "%s level %d: %s <> %s" (W2.Gen.size_name size) level
              (Ir_interp.value_to_string v)
              (Ir_interp.value_to_string expected)
          | None -> Alcotest.failf "%s level %d: no result" (W2.Gen.size_name size) level)
        paper_levels)
    [ W2.Gen.Tiny; W2.Gen.Small; W2.Gen.Medium ]

let test_e2e_spilled_code_still_correct () =
  let m = W2.Gen.module_of_function (W2.Gen.sized_function ~name:"bench" W2.Gen.Small) in
  let expected =
    match
      W2.Interp.run_function ~fuel:5_000_000 (List.hd m.W2.Ast.sections) ~name:"bench"
        ~args:[ W2.Interp.Vint 5; W2.Interp.Vint 1 ]
    with
    | Some (W2.Interp.Vfloat v) -> vf v
    | _ -> Alcotest.fail "reference failed"
  in
  let image = compile ~reg_limit:8 m in
  let result, _ = Warp.Cellsim.run ~fuel:50_000_000 image ~name:"bench" ~args:[ vi 5; vi 1 ] in
  Alcotest.(check bool) "spilled run matches" true
    (values_close (Option.get result) expected)

let prop_e2e_random =
  QCheck.Test.make ~name:"compiled code matches interpreter (random programs)"
    ~count:60
    QCheck.(triple small_nat small_nat (int_range 0 60))
    (fun (seed, size, input) ->
      let f = W2.Gen.random_function ~allow_channels:true ~seed ~size () in
      let m = W2.Gen.module_of_function f in
      let args_int = input mod 17 in
      let args_float = 0.25 +. (0.5 *. float_of_int (input mod 5)) in
      let inputs = List.init 64 (fun i -> 0.25 *. float_of_int i) in
      (* Reference run. *)
      let reference =
        let channels, outputs =
          W2.Interp.queue_channels
            ~input_x:(List.map (fun v -> W2.Interp.Vfloat v) inputs)
            ~input_y:[]
        in
        match
          W2.Interp.run_function ~fuel:400_000 ~channels (List.hd m.W2.Ast.sections)
            ~name:"prop_f"
            ~args:[ W2.Interp.Vint args_int; W2.Interp.Vfloat args_float ]
        with
        | exception W2.Interp.Out_of_fuel -> `Fuel
        | exception W2.Interp.Runtime_error _ -> `Failed
        | r ->
          let out_x, out_y = outputs () in
          let conv = function
            | W2.Interp.Vint n -> vi n
            | W2.Interp.Vfloat v -> vf v
            | W2.Interp.Vbool b -> vi (if b then 1 else 0)
            | W2.Interp.Varray _ -> vi 0
          in
          `Value (Option.map conv r, List.map conv (out_x @ out_y))
      in
      match reference with
      | `Fuel -> true (* too long to compare meaningfully *)
      | `Failed -> true (* runtime errors covered by midend differential *)
      | `Value (expected, expected_out) -> (
        let image = compile ~level:2 m in
        let ports, outputs =
          Warp.Cellsim.script_ports ~input_x:(List.map (fun v -> vf v) inputs) ~input_y:[]
        in
        match Warp.Cellsim.run ~fuel:20_000_000 ~ports image ~name:"prop_f"
                ~args:[ vi args_int; vf args_float ]
        with
        | exception Warp.Cellsim.Fault reason ->
          QCheck.Test.fail_reportf "cell faulted (%s) on seed=%d size=%d" reason seed size
        | result, _ ->
          let out_x, out_y = outputs () in
          let got_out = out_x @ out_y in
          let ok_result =
            match (expected, result) with
            | None, None -> true
            | Some a, Some b -> values_close a b
            | _ -> false
          in
          if
            ok_result
            && List.length expected_out = List.length got_out
            && List.for_all2 values_close expected_out got_out
          then true
          else
            QCheck.Test.fail_reportf "mismatch on seed=%d size=%d input=%d" seed size input))

(* --- assembler --- *)

let test_asm_roundtrip () =
  let image = compile (parse_module sample) in
  let encoded = Warp.Asm.encode image in
  let decoded = Warp.Asm.decode encoded in
  Alcotest.(check bool) "round trip" true (decoded = image)

let test_asm_rejects_garbage () =
  (match Warp.Asm.decode "not an object" with
  | exception Warp.Asm.Bad_object _ -> ()
  | _ -> Alcotest.fail "accepted garbage");
  let image = compile (parse_module sample) in
  let encoded = Warp.Asm.encode image in
  let truncated = String.sub encoded 0 (String.length encoded / 2) in
  match Warp.Asm.decode truncated with
  | exception Warp.Asm.Bad_object _ -> ()
  | _ -> Alcotest.fail "accepted truncated module"

let test_decoded_image_runs () =
  let image = compile (parse_module sample) in
  let decoded = Warp.Asm.decode (Warp.Asm.encode image) in
  let a, _ = Warp.Cellsim.run image ~name:"main" ~args:[ vi 3 ] in
  let b, _ = Warp.Cellsim.run decoded ~name:"main" ~args:[ vi 3 ] in
  Alcotest.(check bool) "same result" true
    (values_close (Option.get a) (Option.get b))

(* --- linker --- *)

let test_link_undefined () =
  let src =
    {|
module m
  section s cells 1
  function f() : int
  begin
    return g();
  end
  function g() : int
  begin
    return 1;
  end
  end
end
|}
  in
  let sec = List.hd (Lower.lower_module (parse_module src)) in
  let compiled =
    List.map (fun f -> (Warp.Codegen.compile_function f).Warp.Codegen.mfunc) sec.Ir.funcs
  in
  (* Drop g: linking must fail. *)
  let broken = List.filter (fun (f : Warp.Mcode.mfunc) -> f.Warp.Mcode.mf_name <> "g") compiled in
  match Warp.Link.link ~section:"s" ~cells:1 broken with
  | exception Warp.Link.Undefined_symbol ("f", "g") -> ()
  | _ -> Alcotest.fail "expected undefined symbol"

(* --- io driver --- *)

let test_iodriver () =
  let image = compile (parse_module sample) in
  let driver = Warp.Iodriver.generate image in
  Alcotest.(check int) "cells" 2 driver.Warp.Iodriver.drv_cells;
  Alcotest.(check int) "entries" 2 (List.length driver.Warp.Iodriver.entries);
  Alcotest.(check bool) "bytes positive" true (driver.Warp.Iodriver.download_bytes > 0);
  let text = Warp.Iodriver.to_string driver in
  Alcotest.(check bool) "mentions wiring" true (Tutil.contains text "cell0.X -> cell1.X")

(* --- array simulator --- *)

let test_arraysim_pipeline () =
  (* Each cell adds 1.0 to everything flowing through on X; with 3
     cells the host sees +3.0. *)
  let src =
    {|
module m
  section pipe cells 3
  function stage(n: int) : int
    var i : int;
    var x : float;
  begin
    for i := 1 to n do
      receive(X, x);
      send(X, x + 1.0);
    end;
    return n;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  let result =
    Warp.Arraysim.run image ~name:"stage"
      ~args:(fun _ -> [ vi 3 ])
      ~input_x:[ vf 0.0; vf 10.0; vf 20.0 ]
      ()
  in
  Alcotest.(check int) "three outputs" 3 (List.length result.Warp.Arraysim.host_x);
  List.iter2
    (fun got want ->
      Alcotest.(check bool) "value" true (values_close got (vf want)))
    result.Warp.Arraysim.host_x [ 3.0; 13.0; 23.0 ];
  Array.iter
    (fun r -> Alcotest.(check bool) "cell returned" true (values_close (Option.get r) (vi 3)))
    result.Warp.Arraysim.returns

let test_arraysim_reverse_channel () =
  (* Y flows right to left. *)
  let src =
    {|
module m
  section pipe cells 2
  function stage(n: int) : int
    var x : float;
  begin
    receive(Y, x);
    send(Y, x * 2.0);
    return n;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  let result =
    Warp.Arraysim.run image ~name:"stage" ~args:(fun _ -> [ vi 1 ]) ~input_y:[ vf 3.0 ] ()
  in
  match result.Warp.Arraysim.host_y with
  | [ v ] -> Alcotest.(check bool) "doubled twice" true (values_close v (vf 12.0))
  | _ -> Alcotest.fail "expected one host Y output"

let test_arraysim_deadlock_detected () =
  let src =
    {|
module m
  section pipe cells 2
  function stage(n: int) : int
    var x : float;
  begin
    receive(X, x);
    return n;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  (* No host input: cell 0 blocks forever. *)
  match Warp.Arraysim.run image ~name:"stage" ~args:(fun _ -> [ vi 1 ]) () with
  | exception Warp.Arraysim.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

let suites =
  [
    ( "warp.regalloc",
      [
        Alcotest.test_case "physical bounds" `Quick test_regalloc_bounds;
        Alcotest.test_case "spills under pressure" `Quick test_regalloc_spills_under_pressure;
      ] );
    ( "warp.listsched",
      [
        Alcotest.test_case "latency" `Quick test_listsched_dependences;
        Alcotest.test_case "parallel issue" `Quick test_listsched_parallel_issue;
        Alcotest.test_case "fu conflict" `Quick test_listsched_fu_conflict;
        Alcotest.test_case "write-back padding" `Quick test_listsched_pads_latency;
      ] );
    ( "warp.modsched",
      [
        Alcotest.test_case "res mii" `Quick test_modsched_res_mii;
        Alcotest.test_case "kernel overlap" `Quick test_modsched_overlaps_kernel;
        Alcotest.test_case "recurrence bound" `Quick test_modsched_recurrence;
        Alcotest.test_case "unprofitable rejected" `Quick test_modsched_unprofitable_rejected;
        Alcotest.test_case "edges hold" `Quick test_modsched_edges_hold;
      ] );
    ( "warp.e2e",
      [
        Alcotest.test_case "sample with calls" `Quick test_e2e_sample;
        Alcotest.test_case "pipelining fires" `Quick test_e2e_pipelining_fires;
        Alcotest.test_case "pipelining saves cycles" `Quick test_e2e_pipelined_beats_unpipelined_cycles;
        Alcotest.test_case "channels" `Quick test_e2e_channels;
        Alcotest.test_case "paper benchmarks all levels" `Slow test_e2e_paper_benchmarks;
        Alcotest.test_case "spilled code correct" `Quick test_e2e_spilled_code_still_correct;
        QCheck_alcotest.to_alcotest prop_e2e_random;
      ] );
    ( "warp.asm",
      [
        Alcotest.test_case "round trip" `Quick test_asm_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_asm_rejects_garbage;
        Alcotest.test_case "decoded image runs" `Quick test_decoded_image_runs;
      ] );
    ("warp.link", [ Alcotest.test_case "undefined symbol" `Quick test_link_undefined ]);
    ("warp.iodriver", [ Alcotest.test_case "driver" `Quick test_iodriver ]);
    ( "warp.arraysim",
      [
        Alcotest.test_case "pipeline" `Quick test_arraysim_pipeline;
        Alcotest.test_case "reverse channel" `Quick test_arraysim_reverse_channel;
        Alcotest.test_case "deadlock detection" `Quick test_arraysim_deadlock_detected;
      ] );
  ]

(* --- static verifier --- *)

let test_verify_accepts_compiled_code () =
  List.iter
    (fun size ->
      List.iter
        (fun level ->
          let m = W2.Gen.module_of_function (W2.Gen.sized_function ~name:"b" size) in
          let image = compile ~level m in
          match Warp.Verify.image image with
          | [] -> ()
          | v :: _ ->
            Alcotest.failf "%s level %d: %s" (W2.Gen.size_name size) level
              (Warp.Verify.violation_to_string v))
        [ 0; 2; 3 ])
    W2.Gen.all_sizes

let test_verify_accepts_spilled_and_called_code () =
  let image = compile ~reg_limit:8 (parse_module sample) in
  Alcotest.(check int) "no violations" 0 (List.length (Warp.Verify.image image))

let corrupt_first_op (image : Warp.Mcode.image) ~f =
  (* Rewrite the first occupied slot of the first non-empty block. *)
  let copied =
    {
      image with
      Warp.Mcode.funcs =
        Array.map
          (fun (mf : Warp.Mcode.mfunc) ->
            { mf with Warp.Mcode.mblocks = Array.map (fun b -> b) mf.Warp.Mcode.mblocks })
          image.Warp.Mcode.funcs;
    }
  in
  (try
     Array.iter
       (fun (mf : Warp.Mcode.mfunc) ->
         Array.iteri
           (fun bi (b : Warp.Mcode.mblock) ->
             Array.iteri
               (fun wi wide ->
                 match Warp.Mcode.ops_of wide with
                 | op :: _ ->
                   let fu = Warp.Machine.fu_of op in
                   let wide' = Warp.Mcode.with_slot wide fu (f op) in
                   let code = Array.copy b.Warp.Mcode.code in
                   code.(wi) <- wide';
                   mf.Warp.Mcode.mblocks.(bi) <- { b with Warp.Mcode.code = code };
                   raise Exit
                 | [] -> ())
               b.Warp.Mcode.code)
           mf.Warp.Mcode.mblocks)
       copied.Warp.Mcode.funcs
   with Exit -> ());
  copied

let test_verify_rejects_bad_register () =
  let image = compile (parse_module dot_src) in
  let broken =
    corrupt_first_op image ~f:(fun op ->
        match op with
        | Ir.Bin (o, _, x, y) -> Ir.Bin (o, 999, x, y)
        | Ir.Un (o, _, x) -> Ir.Un (o, 999, x)
        | Ir.Mov (_, x) -> Ir.Mov (999, x)
        | Ir.Load (_, a, i) -> Ir.Load (999, a, i)
        | other -> other)
  in
  Alcotest.(check bool) "violation reported" true (Warp.Verify.image broken <> [])

let test_verify_rejects_undeclared_array () =
  let image = compile (parse_module dot_src) in
  let broken =
    corrupt_first_op image ~f:(fun op ->
        match op with
        | Ir.Load (d, _, i) -> Ir.Load (d, "phantom", i)
        | Ir.Store (_, i, v) -> Ir.Store ("phantom", i, v)
        | other -> (
          (* ensure at least one memory op gets corrupted somewhere:
             fall back to turning this op into a load of a phantom *)
          match Ir.def_of other with
          | Some d -> Ir.Load (d, "phantom", Ir.Imm_int 0)
          | None -> other))
  in
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (fun v -> Tutil.contains (Warp.Verify.violation_to_string v) "phantom")
       (Warp.Verify.image broken))

let verify_suites =
  [
    ( "warp.verify",
      [
        Alcotest.test_case "accepts all compiled code" `Slow test_verify_accepts_compiled_code;
        Alcotest.test_case "accepts spilled code" `Quick test_verify_accepts_spilled_and_called_code;
        Alcotest.test_case "rejects bad register" `Quick test_verify_rejects_bad_register;
        Alcotest.test_case "rejects undeclared array" `Quick test_verify_rejects_undeclared_array;
      ] );
  ]

let suites = suites @ verify_suites

(* --- machine semantics details --- *)

let test_register_windows_preserve_caller () =
  (* A callee that computes a lot must not disturb the caller's live
     registers: windows isolate activations. *)
  let src =
    {|
module m
  section s cells 1
  function noisy(x: int) : int
    var i : int;
    var s : int;
  begin
    s := 0;
    for i := 0 to 9 do
      s := s + i * x;
    end;
    return s;
  end
  function main(n: int) : int
    var a : int;
    var b : int;
    var c : int;
  begin
    a := n * 3;
    b := n + 17;
    c := noisy(n);
    return a + b + c;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  match Warp.Cellsim.run image ~name:"main" ~args:[ vi 4 ] with
  | Some (Ir_interp.Vi got), _ ->
    (* a=12 b=21 c=45*4=180 -> 213 *)
    Alcotest.(check int) "windows preserved" 213 got
  | _ -> Alcotest.fail "run failed"

let test_arraysim_backpressure () =
  (* A producer that sends far more than the queue capacity while the
     consumer drains slowly: flow control must stall, not lose data. *)
  let src =
    {|
module m
  section pipe cells 2
  function stage(id: int) : int
    var i : int;
    var x : float;
    var acc : float;
  begin
    if id = 0 then
      for i := 1 to 100 do
        send(X, float(i));
      end;
    else
      acc := 0.0;
      for i := 1 to 100 do
        receive(X, x);
        acc := acc + x;
      end;
      send(X, acc);
    end;
    return id;
  end
  end
end
|}
  in
  let image = compile (parse_module src) in
  let result =
    Warp.Arraysim.run ~fuel:1_000_000 image ~name:"stage" ~args:(fun i -> [ vi i ]) ()
  in
  match result.Warp.Arraysim.host_x with
  | [ Ir_interp.Vf total ] ->
    Alcotest.(check (float 1e-9)) "all 100 values arrive" 5050.0 total
  | _ -> Alcotest.fail "expected exactly one aggregated output"

let machine_suites =
  [
    ( "warp.machine-semantics",
      [
        Alcotest.test_case "register windows" `Quick test_register_windows_preserve_caller;
        Alcotest.test_case "queue backpressure" `Quick test_arraysim_backpressure;
      ] );
  ]

let suites = suites @ machine_suites
