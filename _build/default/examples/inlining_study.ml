(* Section 5.1: procedure inlining and parallel compilation.

   The paper observes that parallel compilation is of marginal value for
   small functions, and proposes inlining as the fix: it both improves
   the generated code and increases the grain of the parallel tasks.

   This example compiles a program of many small helper functions twice
   — as written, and after inlining the helpers into their callers — and
   compares the simulated parallel compilation.

     dune exec examples/inlining_study.exe
*)

open Parallel_cc

let () =
  let study = Experiment.run_inlining_study () in
  Printf.printf "program: %d functions; after inlining %d call sites: %d functions\n\n"
    study.Experiment.baseline_functions study.Experiment.calls_inlined
    study.Experiment.inlined_functions;
  let row name (c : Timings.comparison) table =
    Stats.Table.add_float_row table ~label:name
      [
        float_of_int c.Timings.processors;
        c.Timings.seq.Timings.elapsed /. 60.0;
        c.Timings.par.Timings.elapsed /. 60.0;
        c.Timings.speedup;
        c.Timings.rel_total_overhead;
      ]
  in
  let table =
    Stats.Table.make ~title:"Inlining as grain coarsening"
      ~columns:[ "variant"; "processors"; "seq (min)"; "par (min)"; "speedup"; "overhead %" ]
    |> row "as written (small functions)" study.Experiment.baseline
    |> row "after inlining + pruning" study.Experiment.inlined
  in
  Stats.Table.print table;
  print_newline ();
  print_endline
    "Inlining duplicates work (the inlined program costs more to compile";
  print_endline
    "sequentially) yet the parallel compilation gets faster: fewer Lisp";
  print_endline
    "process startups, bigger tasks per function master — exactly the";
  print_endline "trade-off section 5.1 describes.";
  if
    study.Experiment.inlined.Timings.par.Timings.elapsed
    < study.Experiment.baseline.Timings.par.Timings.elapsed
  then print_endline "RESULT: inlining wins"
  else print_endline "RESULT: inlining did not pay off at this configuration"
