(* Parallel versus sequential compilation on the simulated 1989 host:
   a compact version of the paper's figures 3-6, for one size.

     dune exec examples/parallel_compile.exe
*)

open Parallel_cc

let () =
  Printf.printf
    "Compiling S_n programs (n copies of f_medium, %d lines each) on the\n\
     simulated Ethernet of diskless workstations...\n\n"
    (W2.Gen.size_lines W2.Gen.Medium);
  let table =
    Stats.Table.make ~title:"f_medium: sequential vs parallel compilation"
      ~columns:
        [
          "functions";
          "seq elapsed (min)";
          "par elapsed (min)";
          "speedup";
          "total ov %";
          "sys ov %";
        ]
  in
  let table =
    List.fold_left
      (fun table n ->
        let mw = Experiment.s_program_work ~size:W2.Gen.Medium ~count:n () in
        let c = Experiment.measure mw in
        Stats.Table.add_float_row table ~label:(string_of_int n)
          [
            c.Timings.seq.Timings.elapsed /. 60.0;
            c.Timings.par.Timings.elapsed /. 60.0;
            c.Timings.speedup;
            c.Timings.rel_total_overhead;
            c.Timings.rel_sys_overhead;
          ])
      table [ 1; 2; 4; 8 ]
  in
  Stats.Table.print table;
  print_newline ();
  print_endline
    "Note the negative system overhead at n=1: the sequential Lisp compiler";
  print_endline
    "pays more for GC than the parallel compiler's processes, which each work";
  print_endline "on a smaller subproblem (the paper's figure 9).";
  print_newline ();
  (* Show where function masters landed. *)
  let mw = Experiment.s_program_work ~size:W2.Gen.Medium ~count:4 () in
  let plan = Plan.one_per_station mw in
  let outcome = Parrun.run { Config.default with Config.stations = 5 } mw plan in
  print_endline "placements (function master -> workstation):";
  List.iter
    (fun (name, station) -> Printf.printf "  %-12s -> ws%d\n" name station)
    outcome.Parrun.station_of_task
