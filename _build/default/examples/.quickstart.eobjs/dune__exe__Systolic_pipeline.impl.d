examples/systolic_pipeline.ml: Driver List Midend Printf Stats Warp
