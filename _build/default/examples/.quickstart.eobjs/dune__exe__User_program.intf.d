examples/user_program.mli:
