examples/inlining_study.ml: Experiment Parallel_cc Printf Stats Timings
