examples/systolic_pipeline.mli:
