examples/inlining_study.mli:
