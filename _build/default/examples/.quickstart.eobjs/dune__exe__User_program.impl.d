examples/user_program.ml: Driver Experiment List Parallel_cc Plan Printf Stats String Timings
