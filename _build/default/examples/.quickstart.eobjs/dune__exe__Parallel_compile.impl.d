examples/parallel_compile.ml: Config Experiment List Parallel_cc Parrun Plan Printf Stats Timings W2
