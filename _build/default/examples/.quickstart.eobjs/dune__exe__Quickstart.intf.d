examples/quickstart.mli:
