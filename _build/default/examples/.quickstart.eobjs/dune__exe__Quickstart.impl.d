examples/quickstart.ml: Driver List Midend Printf String W2 Warp
