examples/parallel_compile.mli:
