(* Quickstart: compile a W2 module through all four phases and execute
   the generated code on the cycle-accurate cell simulator.

     dune exec examples/quickstart.exe
*)

let source =
  {|
module quickstart
  section sec1 cells 1
  function weight(x: float) : float
  begin
    return x * 0.75 + 0.5;
  end
  function smooth(n: int) : float
    var i : int;
    var acc : float;
    var window : array[8] of float;
  begin
    for i := 0 to 7 do
      window[i] := float(i) * 0.25;
    end;
    acc := 0.0;
    for i := 0 to 7 do
      acc := acc + weight(window[i]);
    end;
    return acc / float(n);
  end
  end
end
|}

let () =
  (* Phase 1: parse and check. *)
  let m = W2.Parser.module_of_string ~file:"quickstart.w2" source in
  (match W2.Semcheck.check_module m with
  | [] -> print_endline "phase 1: parsed and checked"
  | errors ->
    List.iter (fun e -> prerr_endline (W2.Semcheck.error_to_string e)) errors;
    exit 1);

  (* Phases 2-4 with work accounting: the driver runs lowering, the
     optimizer, software pipelining + code generation, assembly and
     linking. *)
  let mw = Driver.Compile.compile_source ~file:"quickstart.w2" source in
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      Printf.printf
        "phase 2+3: %-8s %3d lines -> %4d IR instrs, %4d wide instrs%s\n"
        fw.Driver.Compile.fw_name fw.Driver.Compile.fw_loc
        fw.Driver.Compile.fw_ir_instrs fw.Driver.Compile.fw_wides
        (if fw.Driver.Compile.fw_pipelined > 0 then " (software-pipelined)" else ""))
    (Driver.Compile.all_funcs mw);
  let sw = List.hd mw.Driver.Compile.mw_sections in
  Printf.printf "phase 4: download module is %d bytes\n\n"
    sw.Driver.Compile.sw_image_bytes;

  (* A peek at the generated wide code. *)
  let image = sw.Driver.Compile.sw_image in
  (match Warp.Mcode.find_func image "weight" with
  | Some f -> print_string (Warp.Mcode.mfunc_to_string f)
  | None -> ());
  print_newline ();

  (* Execute on the cycle simulator and cross-check against the
     reference interpreter. *)
  let compiled, cycles =
    Warp.Cellsim.run image ~name:"smooth" ~args:[ Midend.Ir_interp.Vi 2 ]
  in
  let reference =
    W2.Interp.run_function (List.hd m.W2.Ast.sections) ~name:"smooth"
      ~args:[ W2.Interp.Vint 2 ]
  in
  (match (compiled, reference) with
  | Some (Midend.Ir_interp.Vf got), Some (W2.Interp.Vfloat want) ->
    Printf.printf "cell simulator: smooth(2) = %.6f in %d cycles\n" got cycles;
    Printf.printf "interpreter   : smooth(2) = %.6f\n" want;
    if abs_float (got -. want) < 1e-9 then print_endline "MATCH"
    else begin
      print_endline "MISMATCH";
      exit 1
    end
  | _ ->
    prerr_endline "unexpected results";
    exit 1);

  (* And the assembler round trip. *)
  let encoded = Warp.Asm.encode image in
  let decoded = Warp.Asm.decode encoded in
  Printf.printf "assembler round trip: %s (%d bytes)\n"
    (if decoded = image then "ok" else "BROKEN")
    (String.length encoded)
