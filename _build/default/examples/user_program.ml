(* The mechanical-engineering application of section 4.3: three section
   programs with three functions each — one of ~300 lines (about 20
   simulated minutes of sequential compilation) and two small ones.

   Compiled on 2, 3, 5 and 9 processors with the paper's load-balancing
   heuristic (estimate by lines of code and structure, pack longest
   first).

     dune exec examples/user_program.exe
*)

open Parallel_cc

let () =
  let mw = Experiment.user_program_work () in
  Printf.printf "user program: %d lines, %d functions in %d sections\n\n"
    mw.Driver.Compile.mw_loc
    (List.length (Driver.Compile.all_funcs mw))
    (List.length mw.Driver.Compile.mw_sections);
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      Printf.printf "  %-10s %-8s %3d lines  (~%4.1f min sequential)\n"
        fw.Driver.Compile.fw_name fw.Driver.Compile.fw_section
        fw.Driver.Compile.fw_loc
        (Driver.Cost.phase23_seconds Driver.Cost.default fw /. 60.0))
    (Driver.Compile.all_funcs mw);
  print_newline ();

  (* The grouping the heuristic chooses for five processors. *)
  let plan = Plan.grouped mw ~processors:5 in
  print_endline "task grouping for 5 processors (LoC-based estimate, LPT):";
  List.iter
    (fun (section, tasks) ->
      List.iter
        (fun (t : Plan.task) ->
          Printf.printf "  %-8s [%s] (%d lines)\n" section
            (String.concat ", "
               (List.map (fun fw -> fw.Driver.Compile.fw_name) t.Plan.t_funcs))
            (Plan.task_loc t))
        tasks)
    plan.Plan.tasks_per_section;
  print_newline ();

  let table =
    Stats.Table.make ~title:"Figure 11 reproduction: speedup vs processors"
      ~columns:[ "processors"; "seq (min)"; "par (min)"; "speedup" ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.point) ->
        let c = p.Experiment.comparison in
        Stats.Table.add_float_row table
          ~label:(string_of_int p.Experiment.n_functions)
          [
            c.Timings.seq.Timings.elapsed /. 60.0;
            c.Timings.par.Timings.elapsed /. 60.0;
            c.Timings.speedup;
          ])
      table (Experiment.user_program ())
  in
  Stats.Table.print table;
  print_newline ();
  print_endline
    "The 2-processor speedup approaches 2 despite the serial phases: the";
  print_endline
    "sequential compiler swaps on the whole module while each function master";
  print_endline
    "fits its subproblem in memory (the paper measured 2.16).  Five processors";
  print_endline "come close to nine: grouping the small functions wastes no stations."
