(* A systolic signal-processing pipeline — the kind of workload the
   Warp array was built for (and whose per-cell programs motivated the
   parallel compiler in the first place).

   Four cells run the same three-tap smoothing filter; samples flow
   left-to-right through the X channel, so four filter passes are
   applied by the time a sample reaches the host.

     dune exec examples/systolic_pipeline.exe
*)

let source =
  {|
module pipeline
  section filterbank cells 4
  function filter(n: int) : int
    var i : int;
    var prev1 : float;
    var prev2 : float;
    var x : float;
    var y : float;
  begin
    prev1 := 0.0;
    prev2 := 0.0;
    for i := 1 to n do
      receive(X, x);
      -- three-tap smoothing kernel
      y := x * 0.5 + prev1 * 0.3 + prev2 * 0.2;
      send(X, y);
      prev2 := prev1;
      prev1 := x;
    end;
    return n;
  end
  end
end
|}

let () =
  let mw = Driver.Compile.compile_source ~file:"pipeline.w2" source in
  let sw = List.hd mw.Driver.Compile.mw_sections in
  let image = sw.Driver.Compile.sw_image in
  print_string (Warp.Iodriver.to_string sw.Driver.Compile.sw_driver);
  print_newline ();

  (* A noisy step signal: 16 samples. *)
  let samples =
    List.init 16 (fun i ->
        let step = if i < 8 then 1.0 else 4.0 in
        let noise = if i mod 2 = 0 then 0.4 else -0.4 in
        step +. noise)
  in
  let result =
    Warp.Arraysim.run image ~name:"filter"
      ~args:(fun _ -> [ Midend.Ir_interp.Vi (List.length samples) ])
      ~input_x:(List.map (fun v -> Midend.Ir_interp.Vf v) samples)
      ()
  in
  Printf.printf "4-cell pipeline processed %d samples in %d cycles\n\n"
    (List.length samples) result.Warp.Arraysim.cycles;
  Printf.printf "%-6s %10s %10s\n" "sample" "input" "filtered";
  List.iteri
    (fun i (input, output) ->
      match output with
      | Midend.Ir_interp.Vf out -> Printf.printf "%-6d %10.3f %10.3f\n" i input out
      | Midend.Ir_interp.Vi _ -> ())
    (List.combine samples result.Warp.Arraysim.host_x);
  (* The pipeline smooths: the output's jitter must be well below the
     input's. *)
  let jitter xs =
    let rec pairs = function
      | a :: (b :: _ as rest) -> abs_float (b -. a) :: pairs rest
      | _ -> []
    in
    Stats.mean (pairs xs)
  in
  let outputs =
    List.filter_map
      (function Midend.Ir_interp.Vf v -> Some v | Midend.Ir_interp.Vi _ -> None)
      result.Warp.Arraysim.host_x
  in
  Printf.printf "\nmean sample-to-sample jitter: input %.3f, output %.3f\n"
    (jitter samples) (jitter outputs);
  if jitter outputs < jitter samples then print_endline "smoothing works"
  else begin
    print_endline "pipeline failed to smooth";
    exit 1
  end
