lib/netsim/host.mli: Des Net Queue Sync
