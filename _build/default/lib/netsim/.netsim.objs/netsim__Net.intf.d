lib/netsim/net.mli: Des Sync
