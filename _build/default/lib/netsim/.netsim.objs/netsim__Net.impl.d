lib/netsim/net.ml: Des Sync
