lib/netsim/des.ml: Array Effect Option
