lib/netsim/des.mli:
