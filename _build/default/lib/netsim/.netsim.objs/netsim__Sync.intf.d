lib/netsim/sync.mli: Des Queue
