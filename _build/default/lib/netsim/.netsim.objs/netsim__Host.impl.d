lib/netsim/host.ml: Array Des List Net Queue Sync
