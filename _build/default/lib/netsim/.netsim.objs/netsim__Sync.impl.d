lib/netsim/sync.ml: Des Queue
