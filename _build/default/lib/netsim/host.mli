(** Workstations and the cluster pool.

    A workstation has one CPU (FCFS) and a fixed amount of physical
    memory; processes register their working sets so that CPU work can
    be slowed down by a caller-supplied factor reflecting paging and
    garbage collection (the cost model lives with the compiler driver —
    the host only tracks residency). *)

type workstation = {
  ws_id : int;
  cpu : Sync.resource;
  mem_mb : float;
  mutable resident_mb : float;
  mutable busy_seconds : float;
      (** accumulated CPU time: the paper's per-processor "CPU time" *)
}

val workstation : id:int -> mem_mb:float -> workstation

val memory_pressure : workstation -> float
(** Residency divided by physical memory (1.0 = full). *)

val add_resident : workstation -> float -> unit
val remove_resident : workstation -> float -> unit

val compute :
  ?slice:float ->
  Des.t ->
  workstation ->
  factor:(workstation -> float) ->
  seconds:float ->
  unit
(** Run [seconds] of nominal CPU work.  The work executes in slices;
    before each slice [factor] is consulted (e.g. the GC/paging model
    given current residency), so the effective time adapts as other
    processes come and go.  @raise Invalid_argument on negative work. *)

type cluster = {
  stations : workstation array;
  ether : Net.ethernet;
  fs : Net.fileserver;
  free : int Queue.t;
  pool_waiters : (int -> unit) Queue.t;
}
(** The workstation pool the section masters draw from, with the shared
    Ethernet and file server. *)

val cluster :
  ?mem_mb:float ->
  ?ether:Net.ethernet ->
  ?fs:Net.fileserver ->
  stations:int ->
  unit ->
  cluster

val claim : cluster -> workstation
(** Take a free workstation, blocking FCFS while none is available —
    the paper's first-come-first-served task distribution. *)

val release_station : cluster -> workstation -> unit

val cpu_times : cluster -> float list
(** Busy seconds of every station that did any work. *)
