(* Workstations and the cluster.

   A workstation has one CPU (FCFS) and a fixed amount of physical
   memory; processes register their working sets so that CPU work can
   be slowed down by a caller-supplied factor reflecting paging and
   garbage collection (the cost model lives with the compiler driver —
   the host only tracks residency).

   The cluster is the pool of workstations the section masters draw
   from (first-come-first-served, per section 3.3). *)

type workstation = {
  ws_id : int;
  cpu : Sync.resource;
  mem_mb : float;
  mutable resident_mb : float;
  mutable busy_seconds : float; (* accumulated CPU time: the paper's
                                   per-processor "CPU time" metric *)
}

let workstation ~id ~mem_mb =
  { ws_id = id; cpu = Sync.resource 1; mem_mb; resident_mb = 0.0; busy_seconds = 0.0 }

(* Occupancy ratio used by paging models. *)
let memory_pressure ws = ws.resident_mb /. ws.mem_mb

let add_resident ws mb = ws.resident_mb <- ws.resident_mb +. mb
let remove_resident ws mb = ws.resident_mb <- max 0.0 (ws.resident_mb -. mb)

(* Run [seconds] of nominal CPU work on [ws].  The work is executed in
   slices; before each slice [factor] is consulted (e.g. paging or GC
   overhead given current residency), so the effective time adapts as
   other processes come and go. *)
let compute ?(slice = 1.0) sim ws ~factor ~seconds =
  if seconds < 0.0 then invalid_arg "Host.compute: negative work";
  let remaining = ref seconds in
  while !remaining > 0.0 do
    let nominal = min slice !remaining in
    let f = max 1.0 (factor ws) in
    let actual = nominal *. f in
    Sync.use sim ws.cpu actual;
    ws.busy_seconds <- ws.busy_seconds +. actual;
    remaining := !remaining -. nominal
  done

type cluster = {
  stations : workstation array;
  ether : Net.ethernet;
  fs : Net.fileserver;
  free : int Queue.t; (* workstation pool, FCFS *)
  pool_waiters : (int -> unit) Queue.t;
}

let cluster ?(mem_mb = 16.0) ?ether ?fs ~stations () =
  let ether = match ether with Some e -> e | None -> Net.ethernet () in
  let fs = match fs with Some f -> f | None -> Net.fileserver () in
  let ws = Array.init stations (fun id -> workstation ~id ~mem_mb) in
  let free = Queue.create () in
  Array.iter (fun w -> Queue.push w.ws_id free) ws;
  { stations = ws; ether; fs; free; pool_waiters = Queue.create () }

(* Claim a free workstation (FCFS), blocking while none is available —
   the paper's first-come-first-served task distribution. *)
let claim (c : cluster) : workstation =
  match Queue.take_opt c.free with
  | Some id -> c.stations.(id)
  | None ->
    let id = Des.suspend (fun wake -> Queue.push wake c.pool_waiters) in
    c.stations.(id)

let release_station (c : cluster) (ws : workstation) =
  match Queue.take_opt c.pool_waiters with
  | Some wake -> wake ws.ws_id
  | None -> Queue.push ws.ws_id c.free

(* Aggregate CPU seconds per station (only stations that worked). *)
let cpu_times (c : cluster) : float list =
  Array.to_list c.stations
  |> List.filter_map (fun w -> if w.busy_seconds > 0.0 then Some w.busy_seconds else None)
