lib/stats/stats.mli:
