lib/stats/stats.ml: List Table
