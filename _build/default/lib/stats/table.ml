(* ASCII rendering of the tables and series that the benchmark harness
   prints.  Every figure of the paper is reproduced as a table whose rows
   are the x-axis points (number of functions, processors, or lines of
   code) and whose columns are the measured series. *)

type t = {
  title : string;
  columns : string list;
  rows : string list list; (* each row has [List.length columns] cells *)
}

let make ~title ~columns = { title; columns; rows = [] }

let add_row table cells =
  if List.length cells <> List.length table.columns then
    invalid_arg "Table.add_row: cell count does not match column count";
  { table with rows = table.rows @ [ cells ] }

let add_float_row table ~label cells =
  add_row table (label :: List.map (fun x -> Printf.sprintf "%.2f" x) cells)

let column_widths table =
  let update widths cells =
    List.map2 (fun w c -> max w (String.length c)) widths cells
  in
  let init = List.map String.length table.columns in
  List.fold_left update init table.rows

let render table =
  let widths = column_widths table in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let hline () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let row cells =
    List.iter2
      (fun c w -> Buffer.add_string buf ("| " ^ pad c w ^ " "))
      cells widths;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf (table.title ^ "\n");
  hline ();
  row table.columns;
  hline ();
  List.iter row table.rows;
  hline ();
  Buffer.contents buf

let print table = print_string (render table)

(* A labelled series: one (x, y) sequence per named line of a figure. *)
type series = { name : string; points : (float * float) list }

let series name points = { name; points }

(* Render several series sharing the same x points as one table. *)
let of_series ~title ~x_label all =
  let xs =
    match all with
    | [] -> []
    | s :: _ -> List.map fst s.points
  in
  let columns = x_label :: List.map (fun s -> s.name) all in
  let table = make ~title ~columns in
  List.fold_left
    (fun table x ->
      let cells =
        List.map
          (fun s ->
            match List.assoc_opt x s.points with
            | Some y -> Printf.sprintf "%.2f" y
            | None -> "-")
          all
      in
      add_row table (Printf.sprintf "%g" x :: cells))
    table xs
