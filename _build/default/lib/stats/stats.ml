(* Small statistics helpers shared by the benchmark harness, the examples
   and the experiment driver.  The paper (section 4.2) reports the
   arithmetic mean of repeated measurements and notes that individual
   deviations stay within 10% of the average; [mean], [stddev] and
   [within_fraction] implement exactly the checks we need to mirror
   that protocol. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sq /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

(* True when every sample lies within [frac] of the mean, the paper's
   acceptance criterion for a measurement series. *)
let within_fraction frac xs =
  match xs with
  | [] -> true
  | _ ->
    let m = mean xs in
    if m = 0.0 then List.for_all (fun x -> x = 0.0) xs
    else List.for_all (fun x -> abs_float (x -. m) /. abs_float m <= frac) xs

let minimum xs =
  match xs with
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left min x rest

let maximum xs =
  match xs with
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left max x rest

(* Speedup of a parallel run over a sequential baseline. *)
let speedup ~sequential ~parallel =
  if parallel <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  sequential /. parallel

(* Relative overhead as a percentage of the parallel elapsed time, the
   unit of figures 8-10. *)
let percent_of ~part ~total =
  if total = 0.0 then 0.0 else 100.0 *. part /. total

(* Geometric mean, used to summarise speedups across programs. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    let logs = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logs /. float_of_int (List.length xs))

(* Linear interpolation helper for calibration sweeps. *)
let lerp a b t = a +. ((b -. a) *. t)
module Table = Table
