(** Small statistics helpers shared by the benchmark harness, the
    examples and the experiment driver.

    The paper (section 4.2) reports the arithmetic mean of repeated
    measurements and notes that individual deviations stay within 10%
    of the average; {!mean}, {!stddev} and {!within_fraction} implement
    exactly the checks needed to mirror that protocol. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on the empty list. *)

val variance : float list -> float
(** Sample variance (n-1 denominator); [0.] for fewer than two samples. *)

val stddev : float list -> float
(** Sample standard deviation. *)

val within_fraction : float -> float list -> bool
(** [within_fraction frac xs] is [true] when every sample lies within
    [frac] (relative) of the mean — the paper's acceptance criterion
    for a measurement series. *)

val minimum : float list -> float
(** Smallest element.  @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** Largest element.  @raise Invalid_argument on the empty list. *)

val speedup : sequential:float -> parallel:float -> float
(** Speedup of a parallel run over a sequential baseline.
    @raise Invalid_argument when [parallel <= 0.]. *)

val percent_of : part:float -> total:float -> float
(** [percent_of ~part ~total] is [100 * part / total] ([0.] when
    [total = 0.]) — the unit of the paper's figures 8-10. *)

val geomean : float list -> float
(** Geometric mean, used to summarise speedups across programs.
    @raise Invalid_argument on the empty list. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] is the linear interpolation [a + (b - a) * t]. *)

(** ASCII tables and labelled series for the benchmark output. *)
module Table : sig
  type t
  (** A table under construction: a title, a header row and data rows. *)

  val make : title:string -> columns:string list -> t
  (** An empty table with the given title and column headers. *)

  val add_row : t -> string list -> t
  (** Append a row of cells.
      @raise Invalid_argument if the cell count differs from the
      column count. *)

  val add_float_row : t -> label:string -> float list -> t
  (** Append a row whose first cell is [label] and whose remaining
      cells are the values formatted with two decimals. *)

  val render : t -> string
  (** The table as boxed ASCII art, title first. *)

  val print : t -> unit
  (** [print t] writes {!render}[ t] to standard output. *)

  type series = { name : string; points : (float * float) list }
  (** One named line of a figure: (x, y) pairs. *)

  val series : string -> (float * float) list -> series

  val of_series : title:string -> x_label:string -> series list -> t
  (** Merge several series sharing x points into one table, one column
      per series (missing points render as ["-"]). *)
end
