(* If-conversion: turn small branch diamonds into straight-line selects.

   A diamond

       h:  ... branch c, t, e
       t:  <pure instrs>  jump j        (single predecessor h)
       e:  <pure instrs>  jump j        (single predecessor h)
       j:  ...

   (or a triangle, where one arm is [j] itself) becomes

       h:  ... <t-instrs'> <e-instrs'> d := sel c ? dt : de ...  jump j

   Arm instructions are rewritten to fresh destination registers, so
   executing both arms unconditionally clobbers nothing; one [Sel] per
   register the arms define merges the outcomes.

   Eligible arms are short and contain only pure, non-trapping,
   non-memory instructions: loads are excluded because speculating a
   guarded out-of-bounds access would introduce a fault the original
   program did not have.

   The payoff is not the branch itself but downstream: a loop body that
   becomes a single block is a candidate for software pipelining. *)

let max_arm_instrs = 8

let arm_convertible (instrs : Ir.instr list) =
  List.length instrs <= max_arm_instrs
  && List.for_all
       (fun instr ->
         (not (Ir.has_side_effect instr))
         && (not (Ir.may_trap instr))
         && match instr with Ir.Load _ -> false | _ -> true)
       instrs

let fresh_reg (f : Ir.func) ty =
  let r = Array.length f.reg_ty in
  f.reg_ty <- Array.append f.reg_ty [| ty |];
  r

(* Rewrite an arm's instructions onto fresh destinations; returns the
   rewritten instructions (in order) and the final substitution
   original-reg -> fresh-reg. *)
let rename_arm (f : Ir.func) (instrs : Ir.instr list) =
  let subst = Hashtbl.create 8 in
  let use_of r = match Hashtbl.find_opt subst r with Some n -> n | None -> r in
  let operand = function
    | Ir.Reg r -> Ir.Reg (use_of r)
    | (Ir.Imm_int _ | Ir.Imm_float _) as imm -> imm
  in
  let rewritten =
    List.map
      (fun instr ->
        (* Operands first (they read the pre-instruction state). *)
        let instr' =
          match instr with
          | Ir.Bin (op, d, x, y) ->
            let x = operand x and y = operand y in
            Ir.Bin (op, d, x, y)
          | Ir.Un (op, d, x) -> Ir.Un (op, d, operand x)
          | Ir.Mov (d, x) -> Ir.Mov (d, operand x)
          | Ir.Sel (d, c, a, b) ->
            let c = operand c and a = operand a and b = operand b in
            Ir.Sel (d, c, a, b)
          | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Send _ | Ir.Recv _ ->
            assert false (* excluded by [arm_convertible] *)
        in
        match Ir.def_of instr' with
        | None -> instr'
        | Some d ->
          let d' = fresh_reg f f.Ir.reg_ty.(d) in
          Hashtbl.replace subst d d';
          (match instr' with
          | Ir.Bin (op, _, x, y) -> Ir.Bin (op, d', x, y)
          | Ir.Un (op, _, x) -> Ir.Un (op, d', x)
          | Ir.Mov (_, x) -> Ir.Mov (d', x)
          | Ir.Sel (_, c, a, b) -> Ir.Sel (d', c, a, b)
          | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Send _ | Ir.Recv _ ->
            assert false))
      instrs
  in
  (rewritten, subst)

(* Registers defined by an instruction list, in first-def order. *)
let defs_in_order instrs =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun instr ->
      match Ir.def_of instr with
      | Some d when not (Hashtbl.mem seen d) ->
        Hashtbl.replace seen d ();
        Some d
      | Some _ | None -> None)
    instrs

(* Try to convert the branch ending block [h]; true on success. *)
let try_convert (f : Ir.func) preds h : bool =
  match f.Ir.blocks.(h).Ir.term with
  | Ir.Branch (cond, bt, be) when bt <> be && bt <> h && be <> h -> (
    let arm b =
      (* An arm is a dedicated forwarding block of the diamond. *)
      let blk = f.Ir.blocks.(b) in
      match blk.Ir.term with
      | Ir.Jump j when preds.(b) = [ h ] && arm_convertible blk.Ir.instrs ->
        Some (blk.Ir.instrs, j)
      | _ -> None
    in
    let finish ~then_instrs ~else_instrs ~join =
      let t', subst_t = rename_arm f then_instrs in
      let e', subst_e = rename_arm f else_instrs in
      let merged = defs_in_order (then_instrs @ else_instrs) in
      (* The condition must survive until the selects; if an arm defines
         the condition register, snapshot it first. *)
      let cond_regs = match cond with Ir.Reg r -> [ r ] | _ -> [] in
      let cond, snapshot =
        if List.exists (fun r -> List.mem r merged) cond_regs then begin
          match cond with
          | Ir.Reg r ->
            let c' = fresh_reg f f.Ir.reg_ty.(r) in
            (Ir.Reg c', [ Ir.Mov (c', Ir.Reg r) ])
          | _ -> (cond, [])
        end
        else (cond, [])
      in
      let value_in subst d =
        match Hashtbl.find_opt subst d with
        | Some d' -> Ir.Reg d'
        | None -> Ir.Reg d
      in
      let sels =
        List.map
          (fun d -> Ir.Sel (d, cond, value_in subst_t d, value_in subst_e d))
          merged
      in
      let hb = f.Ir.blocks.(h) in
      f.Ir.blocks.(h) <-
        {
          Ir.instrs = hb.Ir.instrs @ snapshot @ t' @ e' @ sels;
          term = Ir.Jump join;
        };
      true
    in
    match (arm bt, arm be) with
    | Some (ti, jt), Some (ei, je) when jt = je && jt <> bt && jt <> be ->
      (* Diamond. *)
      finish ~then_instrs:ti ~else_instrs:ei ~join:jt
    | Some (ti, jt), None when jt = be ->
      (* Triangle: else-arm is the join itself. *)
      finish ~then_instrs:ti ~else_instrs:[] ~join:be
    | None, Some (ei, je) when je = bt ->
      (* Triangle, inverted. *)
      finish ~then_instrs:[] ~else_instrs:ei ~join:bt
    | _ -> false)
  | Ir.Branch _ | Ir.Jump _ | Ir.Ret _ -> false

(* Convert diamonds to a fixpoint; returns the number of conversions. *)
let run (f : Ir.func) : int =
  let converted = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Cfg.predecessors f in
    let n = Array.length f.Ir.blocks in
    let rec scan h =
      if h < n then
        if try_convert f preds h then begin
          incr converted;
          ignore (Cfg.simplify f);
          continue_ := true
        end
        else scan (h + 1)
    in
    scan 0
  done;
  !converted
