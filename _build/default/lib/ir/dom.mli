(** Dominator computation (iterative Cooper–Harvey–Kennedy).  Used by
    the loop analysis to find back edges and by the code-motion passes
    to reason about execution order. *)

type t

val compute : Ir.func -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does block [a] dominate block [b]?  Unreachable
    blocks dominate nothing. *)

val immediate_dominator : t -> int -> int
(** The entry maps to itself; unreachable blocks map to [-1]. *)
