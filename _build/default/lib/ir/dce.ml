(* Global dead-code elimination based on liveness.

   A pure instruction whose destination is dead immediately after it is
   removed.  Stores, calls, sends and receives always stay (calls can
   carry channel traffic; a receive consumes queue data even if the
   value is unused). *)

let run (f : Ir.func) : int =
  let removed = ref 0 in
  let liveness = Liveness.compute f in
  Array.iteri
    (fun i (b : Ir.block) ->
      let after = Liveness.per_instr liveness f i in
      let keep = ref [] in
      List.iteri
        (fun k instr ->
          let dead =
            (not (Ir.has_side_effect instr))
            &&
            match Ir.def_of instr with
            | Some d -> not (Liveness.Rset.mem d after.(k))
            | None -> false
          in
          if dead then incr removed else keep := instr :: !keep)
        b.instrs;
      f.blocks.(i) <- { b with Ir.instrs = List.rev !keep })
    f.blocks;
  !removed
