(* Global constant and copy propagation for single-definition registers.

   If a register has exactly one definition in the whole function and
   that definition is [Mov d, imm], every use dominated by the
   definition can read the immediate directly.  (Single-definition
   copies from registers are not propagated globally: the source
   register may be redefined between the copy and the use; immediates
   cannot.) *)

let run (f : Ir.func) : int =
  let n = Array.length f.blocks in
  (* Count definitions and record the unique Mov-immediate defs along
     with their position. *)
  let def_count = Array.make (Ir.num_regs f) 0 in
  let def_site = Hashtbl.create 32 in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iteri
        (fun k instr ->
          match Ir.def_of instr with
          | Some d ->
            def_count.(d) <- def_count.(d) + 1;
            (match instr with
            | Ir.Mov (_, (Ir.Imm_int _ | Ir.Imm_float _ as imm)) ->
              Hashtbl.replace def_site d (i, k, imm)
            | _ -> ())
          | None -> ())
        b.instrs)
    f.blocks;
  let dom = Dom.compute f in
  let reachable = Cfg.reachable f in
  let subst_of ~block ~index r =
    if def_count.(r) <> 1 then None
    else
      match Hashtbl.find_opt def_site r with
      | Some (db, dk, imm) ->
        let dominated =
          if db = block then dk < index
          else reachable.(block) && reachable.(db) && Dom.dominates dom db block
        in
        if dominated then Some imm else None
      | None -> None
  in
  let changed = ref 0 in
  let rewrite_operand ~block ~index operand =
    match operand with
    | Ir.Reg r -> (
      match subst_of ~block ~index r with
      | Some imm ->
        incr changed;
        imm
      | None -> operand)
    | Ir.Imm_int _ | Ir.Imm_float _ -> operand
  in
  for i = 0 to n - 1 do
    let b = f.blocks.(i) in
    let instrs =
      List.mapi
        (fun k instr ->
          let rw = rewrite_operand ~block:i ~index:k in
          match instr with
          | Ir.Bin (op, d, x, y) -> Ir.Bin (op, d, rw x, rw y)
          | Ir.Un (op, d, x) -> Ir.Un (op, d, rw x)
          | Ir.Mov (d, x) -> Ir.Mov (d, rw x)
          | Ir.Sel (d, c, a, b) -> Ir.Sel (d, rw c, rw a, rw b)
          | Ir.Load (d, a, idx) -> Ir.Load (d, a, rw idx)
          | Ir.Store (a, idx, v) -> Ir.Store (a, rw idx, rw v)
          | Ir.Call (d, name, args) -> Ir.Call (d, name, List.map rw args)
          | Ir.Send (c, v) -> Ir.Send (c, rw v)
          | Ir.Recv _ -> instr)
        b.instrs
    in
    (* Terminator uses sit after every instruction of the block. *)
    let rw = rewrite_operand ~block:i ~index:(List.length instrs) in
    let term =
      match b.term with
      | Ir.Branch (c, t, e) -> Ir.Branch (rw c, t, e)
      | Ir.Ret (Some v) -> Ir.Ret (Some (rw v))
      | (Ir.Jump _ | Ir.Ret None) as t -> t
    in
    f.blocks.(i) <- { Ir.instrs; term }
  done;
  !changed
