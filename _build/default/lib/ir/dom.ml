(* Dominator computation (iterative Cooper–Harvey–Kennedy algorithm).
   Used by the loop analysis to find back edges and by loop-invariant
   code motion to reason about loop exits. *)

type t = {
  idom : int array; (* immediate dominator; entry maps to itself *)
  rpo_index : int array;
}

let compute (f : Ir.func) : t =
  let n = Array.length f.blocks in
  let rpo = Cfg.reverse_postorder f in
  let rpo_index = Array.make n max_int in
  List.iteri (fun k b -> rpo_index.(b) <- k) rpo;
  let preds = Cfg.predecessors f in
  let idom = Array.make n (-1) in
  idom.(Ir.entry_block) <- Ir.entry_block;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> Ir.entry_block then begin
          let processed =
            List.filter (fun p -> idom.(p) >= 0) preds.(b)
          in
          match processed with
          | [] -> () (* unreachable *)
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; rpo_index }

(* Does [a] dominate [b]?  Unreachable blocks dominate nothing and are
   dominated by everything that matters; callers only ask about
   reachable blocks. *)
let dominates t a b =
  let rec walk b = if b = a then true else if b = Ir.entry_block then false else walk t.idom.(b) in
  if t.idom.(b) < 0 then false else walk b

let immediate_dominator t b = t.idom.(b)
