(* Full unrolling of constant-trip innermost loops.

   Handles the canonical shape produced by lowering a [for] loop with
   constant bounds (after constant propagation):

     pre:  ... v := lo ... [limit := hi] ...  jump h
     h:    c := icmp.le v, limit              branch c, bb, exit
     bb:   <body including v := v + 1>        jump h

   with body = {h, bb}.  The body block is replicated trip-count times
   (keeping the increments, so [v]'s final value is preserved) and the
   loop becomes straight-line code.  Registers need no renaming: the
   copies execute sequentially with exactly the per-iteration register
   semantics of the original loop. *)

module Iset = Loops.Iset

let max_trip = 16
let max_growth = 512

(* Last definition of [r] in a block, as an optional instruction. *)
let last_def_in (b : Ir.block) r =
  List.fold_left
    (fun acc instr -> if Ir.def_of instr = Some r then Some instr else acc)
    None b.instrs

let uses_outside_branch (f : Ir.func) ~header c =
  let used = ref false in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter
        (fun instr -> if List.mem c (Ir.uses_of instr) then used := true)
        b.instrs;
      if i <> header && List.mem c (Ir.term_uses b.term) then used := true)
    f.blocks;
  !used

let try_unroll (f : Ir.func) (l : Loops.loop) : bool =
  match Iset.elements l.body with
  | [ a; b ] -> (
    let h = l.header in
    let bb = if a = h then b else a in
    let header_block = f.blocks.(h) in
    let body_block = f.blocks.(bb) in
    let preds = Cfg.predecessors f in
    match (header_block.instrs, header_block.term, body_block.term) with
    | ( [ Ir.Bin (Ir.Icmp Ir.Cle, c, Ir.Reg v, lim_op) ],
        Ir.Branch (Ir.Reg c', bt, exit),
        Ir.Jump back )
      when c = c' && bt = bb && back = h
           && (not (Iset.mem exit l.body))
           && preds.(bb) = [ h ]
           && not (uses_outside_branch f ~header:h c) -> (
      (* v's definitions in the body: exactly one increment by one. *)
      let v_defs =
        List.filter (fun i -> Ir.def_of i = Some v) body_block.instrs
      in
      let step_ok =
        match v_defs with
        | [ Ir.Bin (Ir.Iadd, _, Ir.Reg v', Ir.Imm_int 1) ] -> v' = v
        | _ -> false
      in
      if not step_ok then false
      else
        (* Constant bounds from the preheader. *)
        let outside = List.filter (fun p -> not (Iset.mem p l.body)) preds.(h) in
        match outside with
        | [ pre ] -> (
          let pre_block = f.blocks.(pre) in
          let lo =
            match last_def_in pre_block v with
            | Some (Ir.Mov (_, Ir.Imm_int lo)) -> Some lo
            | _ -> None
          in
          let hi =
            match lim_op with
            | Ir.Imm_int hi -> Some hi
            | Ir.Reg limit -> (
              (* The limit must be loop-invariant and constant. *)
              let defined_in_loop =
                List.exists
                  (fun i -> Ir.def_of i = Some limit)
                  body_block.instrs
              in
              if defined_in_loop then None
              else
                match last_def_in pre_block limit with
                | Some (Ir.Mov (_, Ir.Imm_int hi)) -> Some hi
                | _ -> None)
            | Ir.Imm_float _ -> None
          in
          match (lo, hi) with
          | Some lo, Some hi ->
            let trip = max 0 (hi - lo + 1) in
            let growth = trip * List.length body_block.instrs in
            if trip > max_trip || growth > max_growth then false
            else begin
              if trip = 0 then begin
                f.blocks.(h) <- { Ir.instrs = []; term = Ir.Jump exit }
              end
              else begin
                let copies =
                  List.concat (List.init trip (fun _ -> body_block.instrs))
                in
                f.blocks.(h) <- { Ir.instrs = []; term = Ir.Jump bb };
                f.blocks.(bb) <- { Ir.instrs = copies; term = Ir.Jump exit }
              end;
              true
            end
          | _ -> false)
        | _ -> false)
    | _ -> false)
  | _ -> false

let run (f : Ir.func) : int =
  let unrolled = ref 0 in
  let rec go budget =
    if budget > 0 then begin
      let loops = Loops.innermost (Loops.find f) in
      if List.exists (fun l -> try_unroll f l) loops then begin
        incr unrolled;
        ignore (Cfg.simplify f);
        go (budget - 1)
      end
    end
  in
  go 8;
  !unrolled
