(* Induction-variable strength reduction.

   A basic induction variable is a register [v] whose only definition
   inside a loop is [v := v + s] for a constant [s].  A multiplication
   [d := v * c] (constant [c]) inside the loop is then replaced by a
   move from a new register [t] that tracks v*c incrementally:

     preheader:              t := v * c
     after  v := v + s:      t := t + s*c
     at the multiply site:   d := t

   On a machine whose integer multiply is slower than its add (Warp's
   ALU), this converts a per-iteration multiply into an add. *)

module Iset = Loops.Iset

(* The unique [v := v + s] definition of each basic IV of the loop. *)
let basic_ivs (f : Ir.func) (l : Loops.loop) =
  let defs = Hashtbl.create 8 in
  (* reg -> (block, index, step) option; None marks disqualified. *)
  Iset.iter
    (fun bi ->
      List.iteri
        (fun k instr ->
          match Ir.def_of instr with
          | None -> ()
          | Some d -> (
            match Hashtbl.find_opt defs d with
            | Some _ -> Hashtbl.replace defs d None (* multiple defs *)
            | None -> (
              match instr with
              | Ir.Bin (Ir.Iadd, v, Ir.Reg v', Ir.Imm_int s) when v = v' ->
                Hashtbl.replace defs d (Some (bi, k, s))
              | Ir.Bin (Ir.Iadd, v, Ir.Imm_int s, Ir.Reg v') when v = v' ->
                Hashtbl.replace defs d (Some (bi, k, s))
              | _ -> Hashtbl.replace defs d None)))
        f.blocks.(bi).instrs)
    l.body;
  Hashtbl.fold
    (fun r site acc -> match site with Some s -> (r, s) :: acc | None -> acc)
    defs []

let fresh_reg (f : Ir.func) ty =
  let r = Array.length f.reg_ty in
  f.reg_ty <- Array.append f.reg_ty [| ty |];
  r

(* Rewrite one multiply; returns true on success. *)
let reduce_one (f : Ir.func) (l : Loops.loop) =
  let ivs = basic_ivs f l in
  let found = ref None in
  Iset.iter
    (fun bi ->
      if !found = None then
        List.iteri
          (fun k instr ->
            if !found = None then
              match instr with
              | Ir.Bin (Ir.Imul, d, Ir.Reg v, Ir.Imm_int c)
              | Ir.Bin (Ir.Imul, d, Ir.Imm_int c, Ir.Reg v) -> (
                match List.assoc_opt v ivs with
                | Some (ib, ik, s) when d <> v -> found := Some (bi, k, d, v, c, ib, ik, s)
                | Some _ | None -> ())
              | _ -> ())
          f.blocks.(bi).instrs)
    l.body;
  match !found with
  | None -> false
  | Some (bi, k, d, v, c, ib, ik, s) ->
    let t = fresh_reg f Ir.Int in
    let pre = Licm.ensure_preheader f l in
    (* preheader: t := v * c *)
    let pb = f.blocks.(pre) in
    f.blocks.(pre) <-
      { pb with Ir.instrs = pb.instrs @ [ Ir.Bin (Ir.Imul, t, Ir.Reg v, Ir.Imm_int c) ] };
    (* after the IV increment: t := t + s*c *)
    let inc_block = f.blocks.(ib) in
    let update = Ir.Bin (Ir.Iadd, t, Ir.Reg t, Ir.Imm_int (s * c)) in
    let instrs =
      List.concat
        (List.mapi
           (fun j instr -> if j = ik then [ instr; update ] else [ instr ])
           inc_block.instrs)
    in
    f.blocks.(ib) <- { inc_block with Ir.instrs };
    (* the multiply becomes a move (note: if bi = ib and k > ik the
       indices shifted by one) *)
    let k = if bi = ib && k > ik then k + 1 else k in
    let mb = f.blocks.(bi) in
    let instrs =
      List.mapi
        (fun j instr -> if j = k then Ir.Mov (d, Ir.Reg t) else instr)
        mb.instrs
    in
    f.blocks.(bi) <- { mb with Ir.instrs };
    true

let run (f : Ir.func) : int =
  let reduced = ref 0 in
  let rec go budget =
    if budget > 0 then begin
      let loops = Loops.innermost (Loops.find f) in
      let changed = List.exists (fun l -> reduce_one f l) loops in
      if changed then begin
        incr reduced;
        go (budget - 1)
      end
    end
  in
  go 16;
  !reduced
