(** Induction-variable strength reduction: [d := v * c] inside a loop,
    where [v] is a basic induction variable and [c] a constant, becomes
    a move from a register updated incrementally by [step * c] — a
    per-iteration add instead of a multiply (which the Warp ALU makes
    worthwhile). *)

val run : Ir.func -> int
(** Returns the number of multiplications reduced. *)
