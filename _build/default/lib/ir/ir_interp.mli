(** IR interpreter.

    Executes an {!Ir.section} with the same observable semantics as
    {!W2.Interp} runs the source: same results, same channel traffic,
    same error conditions.  Every optimization pass is
    differential-tested by comparing the two on random programs. *)

type value = Vi of int | Vf of float

exception Error of string
exception Out_of_fuel

type channels = {
  recv : W2.Ast.channel -> value;
  send : W2.Ast.channel -> value -> unit;
}

val null_channels : channels

val of_w2_channels : W2.Interp.channels -> channels
(** Adapt source-interpreter channels so one scripted queue can drive
    both interpreters in a differential test. *)

val value_to_string : value -> string

val eval_bin : Ir.binop -> value -> value -> value
(** Dynamic semantics of a binary operation (shared with the cell
    simulator).  @raise Error on type or arithmetic faults. *)

val eval_un : Ir.unop -> value -> value

val run_function :
  ?fuel:int ->
  ?channels:channels ->
  Ir.section ->
  name:string ->
  args:value list ->
  value option
(** Run one function; [fuel] bounds executed instructions.
    @raise Out_of_fuel / @raise Error as the names suggest. *)
