(** Three-address intermediate representation.

    Phase 2 of the compiler (flowgraph construction, local
    optimization, global dependency computation) operates on this IR;
    phase 3 (software pipelining and code generation) consumes it.
    Registers are mutable virtual registers — deliberately not SSA, in
    keeping with the era of the paper's compiler.

    Arrays live in per-function (per-activation) local memory and are
    referred to by name; the language has no aliasing, so a store can
    only interfere with loads of the same array, and a callee can never
    touch the caller's arrays. *)

type reg = int

type ty = Int | Float | Bool

type operand = Reg of reg | Imm_int of int | Imm_float of float

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type binop =
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Imod
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Icmp of cmp
  | Fcmp of cmp
  | Band (** non-short-circuit boolean and (0/1 integers) *)
  | Bor
  | Imin
  | Imax
  | Fmin
  | Fmax

type unop = Ineg | Fneg | Bnot | Itof | Ftoi | Fsqrt | Fabs | Iabs

type instr =
  | Bin of binop * reg * operand * operand
  | Un of unop * reg * operand
  | Mov of reg * operand
  | Sel of reg * operand * operand * operand
      (** [d := if cond <> 0 then a else b] — produced by if-conversion *)
  | Load of reg * string * operand (** dst, array, index *)
  | Store of string * operand * operand (** array, index, value *)
  | Call of reg option * string * operand list
  | Send of W2.Ast.channel * operand
  | Recv of W2.Ast.channel * reg

type term =
  | Jump of int (** block index *)
  | Branch of operand * int * int (** condition (≠0), then, else *)
  | Ret of operand option

type block = { mutable instrs : instr list; mutable term : term }

type func = {
  name : string;
  params : (string * ty * reg) list;
  arrays : (string * int * ty) list; (** name, size, element type *)
  mutable blocks : block array;
  mutable reg_ty : ty array; (** type of each virtual register *)
  ret_ty : ty option;
}

type section = { sec_name : string; cells : int; funcs : func list }
(** A lowered section: the unit whose functions share a call graph. *)

val entry_block : int
(** Always [0]. *)

val num_regs : func -> int

val def_of : instr -> reg option
(** The register an instruction writes, if any. *)

val uses_of : instr -> reg list
(** Registers an instruction reads (with multiplicity). *)

val term_uses : term -> reg list

val successors : term -> int list
(** Successor block indices (deduplicated). *)

val has_side_effect : instr -> bool
(** Instructions that must not be removed even when their result is
    dead (stores, calls, channel operations). *)

val may_trap : instr -> bool
(** Instructions that can fault at runtime (division by a possibly-zero
    operand, square root) and therefore must not be speculated. *)

val cmp_to_string : cmp -> string
val binop_to_string : binop -> string
val unop_to_string : unop -> string
val operand_to_string : operand -> string
val instr_to_string : instr -> string
val term_to_string : term -> string
val func_to_string : func -> string

val instr_count : func -> int
(** Instructions plus terminators: the basic size metric of the
    compilation cost model. *)
