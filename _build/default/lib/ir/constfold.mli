(** Constant folding and algebraic simplification (part of the "local
    optimization" of phase 2).

    Folds operations on immediates, applies identities exact for the
    represented values ([x*1], [x/1], [x+0], [x-0]; [x*0] only for
    integers), and turns branches on constants into jumps.  Division
    and mod by a constant zero are never folded: they keep their
    runtime-error semantics. *)

val run : Ir.func -> int
(** One folding sweep; returns the number of rewrites. *)
