(* Constant folding and algebraic simplification.

   Folds operations on immediates, applies exact algebraic identities,
   and turns branches on constants into jumps (unlocking unreachable-
   block removal).  Division and mod by constant zero are never folded:
   they keep their runtime-error semantics.

   Float identities are restricted to those exact for finite values
   (x*1, x/1, x+0, x-0); x*0 is not folded (NaN/infinity). *)

let fold_bin op x y =
  match (op, x, y) with
  | Ir.Iadd, Ir.Imm_int a, Ir.Imm_int b -> Some (Ir.Imm_int (a + b))
  | Ir.Isub, Ir.Imm_int a, Ir.Imm_int b -> Some (Ir.Imm_int (a - b))
  | Ir.Imul, Ir.Imm_int a, Ir.Imm_int b -> Some (Ir.Imm_int (a * b))
  | Ir.Idiv, Ir.Imm_int a, Ir.Imm_int b when b <> 0 -> Some (Ir.Imm_int (a / b))
  | Ir.Imod, Ir.Imm_int a, Ir.Imm_int b when b <> 0 -> Some (Ir.Imm_int (a mod b))
  | Ir.Fadd, Ir.Imm_float a, Ir.Imm_float b -> Some (Ir.Imm_float (a +. b))
  | Ir.Fsub, Ir.Imm_float a, Ir.Imm_float b -> Some (Ir.Imm_float (a -. b))
  | Ir.Fmul, Ir.Imm_float a, Ir.Imm_float b -> Some (Ir.Imm_float (a *. b))
  | Ir.Fdiv, Ir.Imm_float a, Ir.Imm_float b when b <> 0.0 ->
    Some (Ir.Imm_float (a /. b))
  | Ir.Icmp c, Ir.Imm_int a, Ir.Imm_int b ->
    let r =
      match c with
      | Ir.Ceq -> a = b
      | Ir.Cne -> a <> b
      | Ir.Clt -> a < b
      | Ir.Cle -> a <= b
      | Ir.Cgt -> a > b
      | Ir.Cge -> a >= b
    in
    Some (Ir.Imm_int (if r then 1 else 0))
  | Ir.Fcmp c, Ir.Imm_float a, Ir.Imm_float b ->
    let r =
      match c with
      | Ir.Ceq -> a = b
      | Ir.Cne -> a <> b
      | Ir.Clt -> a < b
      | Ir.Cle -> a <= b
      | Ir.Cgt -> a > b
      | Ir.Cge -> a >= b
    in
    Some (Ir.Imm_int (if r then 1 else 0))
  | Ir.Band, Ir.Imm_int a, Ir.Imm_int b ->
    Some (Ir.Imm_int (if a <> 0 && b <> 0 then 1 else 0))
  | Ir.Bor, Ir.Imm_int a, Ir.Imm_int b ->
    Some (Ir.Imm_int (if a <> 0 || b <> 0 then 1 else 0))
  | Ir.Imin, Ir.Imm_int a, Ir.Imm_int b -> Some (Ir.Imm_int (min a b))
  | Ir.Imax, Ir.Imm_int a, Ir.Imm_int b -> Some (Ir.Imm_int (max a b))
  | Ir.Fmin, Ir.Imm_float a, Ir.Imm_float b -> Some (Ir.Imm_float (min a b))
  | Ir.Fmax, Ir.Imm_float a, Ir.Imm_float b -> Some (Ir.Imm_float (max a b))
  | _ -> None

(* Algebraic identities returning the operand the result equals. *)
let identity op x y =
  match (op, x, y) with
  | Ir.Iadd, v, Ir.Imm_int 0 | Ir.Iadd, Ir.Imm_int 0, v -> Some v
  | Ir.Isub, v, Ir.Imm_int 0 -> Some v
  | Ir.Imul, v, Ir.Imm_int 1 | Ir.Imul, Ir.Imm_int 1, v -> Some v
  | Ir.Imul, _, Ir.Imm_int 0 | Ir.Imul, Ir.Imm_int 0, _ -> Some (Ir.Imm_int 0)
  | Ir.Idiv, v, Ir.Imm_int 1 -> Some v
  | Ir.Fadd, v, Ir.Imm_float 0.0 | Ir.Fadd, Ir.Imm_float 0.0, v -> Some v
  | Ir.Fsub, v, Ir.Imm_float 0.0 -> Some v
  | Ir.Fmul, v, Ir.Imm_float 1.0 | Ir.Fmul, Ir.Imm_float 1.0, v -> Some v
  | Ir.Fdiv, v, Ir.Imm_float 1.0 -> Some v
  | Ir.Band, v, Ir.Imm_int 1 | Ir.Band, Ir.Imm_int 1, v -> Some v
  | Ir.Band, _, Ir.Imm_int 0 | Ir.Band, Ir.Imm_int 0, _ -> Some (Ir.Imm_int 0)
  | Ir.Bor, v, Ir.Imm_int 0 | Ir.Bor, Ir.Imm_int 0, v -> Some v
  | Ir.Bor, _, Ir.Imm_int n when n <> 0 -> Some (Ir.Imm_int 1)
  | _ -> None

let fold_un op x =
  match (op, x) with
  | Ir.Ineg, Ir.Imm_int n -> Some (Ir.Imm_int (-n))
  | Ir.Fneg, Ir.Imm_float f -> Some (Ir.Imm_float (-.f))
  | Ir.Bnot, Ir.Imm_int n -> Some (Ir.Imm_int (if n = 0 then 1 else 0))
  | Ir.Itof, Ir.Imm_int n -> Some (Ir.Imm_float (float_of_int n))
  | Ir.Ftoi, Ir.Imm_float f -> Some (Ir.Imm_int (int_of_float f))
  | Ir.Fsqrt, Ir.Imm_float f when f >= 0.0 -> Some (Ir.Imm_float (sqrt f))
  | Ir.Fabs, Ir.Imm_float f -> Some (Ir.Imm_float (abs_float f))
  | Ir.Iabs, Ir.Imm_int n -> Some (Ir.Imm_int (abs n))
  | _ -> None

(* One folding sweep; returns the number of rewrites. *)
let run (f : Ir.func) : int =
  let changed = ref 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      let instrs =
        List.filter_map
          (fun instr ->
            match instr with
            | Ir.Bin (op, d, x, y) -> (
              match fold_bin op x y with
              | Some v ->
                incr changed;
                Some (Ir.Mov (d, v))
              | None -> (
                match identity op x y with
                | Some v ->
                  incr changed;
                  Some (Ir.Mov (d, v))
                | None -> Some instr))
            | Ir.Un (op, d, x) -> (
              match fold_un op x with
              | Some v ->
                incr changed;
                Some (Ir.Mov (d, v))
              | None -> Some instr)
            | Ir.Mov (d, Ir.Reg s) when d = s ->
              incr changed;
              None
            | Ir.Sel (d, Ir.Imm_int c, a, b) ->
              incr changed;
              Some (Ir.Mov (d, if c <> 0 then a else b))
            | Ir.Sel (d, Ir.Imm_float c, a, b) ->
              incr changed;
              Some (Ir.Mov (d, if c <> 0.0 then a else b))
            | Ir.Sel (d, Ir.Reg _, a, b) when a = b ->
              incr changed;
              Some (Ir.Mov (d, a))
            | Ir.Sel _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ | Ir.Call _
            | Ir.Send _ | Ir.Recv _ ->
              Some instr)
          b.instrs
      in
      let term =
        match b.term with
        | Ir.Branch (Ir.Imm_int c, t, e) ->
          incr changed;
          Ir.Jump (if c <> 0 then t else e)
        | Ir.Branch (Ir.Imm_float c, t, e) ->
          incr changed;
          Ir.Jump (if c <> 0.0 then t else e)
        | other -> other
      in
      f.blocks.(i) <- { Ir.instrs; term })
    f.blocks;
  !changed
