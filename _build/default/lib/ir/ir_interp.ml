(* IR interpreter.

   Executes an [Ir.section] with the same observable semantics as
   [W2.Interp] runs the source: same results, same channel traffic, same
   error conditions.  Every optimization pass is differential-tested by
   comparing the two on random programs. *)

type value = Vi of int | Vf of float

exception Error of string
exception Out_of_fuel

type channels = { recv : W2.Ast.channel -> value; send : W2.Ast.channel -> value -> unit }

let null_channels =
  {
    recv = (fun _ -> raise (Error "receive on unconnected channel"));
    send = (fun _ _ -> ());
  }

(* Adapt the source-interpreter channels so that one scripted queue can
   drive both interpreters in differential tests. *)
let of_w2_channels (ch : W2.Interp.channels) =
  let to_w2 = function Vi n -> W2.Interp.Vint n | Vf f -> W2.Interp.Vfloat f in
  let of_w2 = function
    | W2.Interp.Vint n -> Vi n
    | W2.Interp.Vfloat f -> Vf f
    | W2.Interp.Vbool b -> Vi (if b then 1 else 0)
    | W2.Interp.Varray _ -> raise (Error "array on channel")
  in
  {
    recv = (fun c -> of_w2 (ch.recv c));
    send = (fun c v -> ch.send c (to_w2 v));
  }

let value_to_string = function
  | Vi n -> string_of_int n
  | Vf f -> Printf.sprintf "%.6g" f

let as_int = function Vi n -> n | Vf _ -> raise (Error "int expected")
let as_float = function Vf f -> f | Vi _ -> raise (Error "float expected")
let truthy = function Vi n -> n <> 0 | Vf f -> f <> 0.0

type state = {
  funcs : (string, Ir.func) Hashtbl.t;
  channels : channels;
  mutable fuel : int;
}

let default_value = function
  | Ir.Int | Ir.Bool -> Vi 0
  | Ir.Float -> Vf 0.0

let eval_cmp c a b =
  let r =
    match c with
    | Ir.Ceq -> a = b
    | Ir.Cne -> a <> b
    | Ir.Clt -> a < b
    | Ir.Cle -> a <= b
    | Ir.Cgt -> a > b
    | Ir.Cge -> a >= b
  in
  Vi (if r then 1 else 0)

let eval_bin op x y =
  match op with
  | Ir.Iadd -> Vi (as_int x + as_int y)
  | Ir.Isub -> Vi (as_int x - as_int y)
  | Ir.Imul -> Vi (as_int x * as_int y)
  | Ir.Idiv ->
    let d = as_int y in
    if d = 0 then raise (Error "division by zero");
    Vi (as_int x / d)
  | Ir.Imod ->
    let d = as_int y in
    if d = 0 then raise (Error "mod by zero");
    Vi (as_int x mod d)
  | Ir.Fadd -> Vf (as_float x +. as_float y)
  | Ir.Fsub -> Vf (as_float x -. as_float y)
  | Ir.Fmul -> Vf (as_float x *. as_float y)
  | Ir.Fdiv ->
    let d = as_float y in
    if d = 0.0 then raise (Error "division by zero");
    Vf (as_float x /. d)
  | Ir.Icmp c -> eval_cmp c (as_int x) (as_int y)
  | Ir.Fcmp c -> eval_cmp c (as_float x) (as_float y)
  | Ir.Band -> Vi (if truthy x && truthy y then 1 else 0)
  | Ir.Bor -> Vi (if truthy x || truthy y then 1 else 0)
  | Ir.Imin -> Vi (min (as_int x) (as_int y))
  | Ir.Imax -> Vi (max (as_int x) (as_int y))
  | Ir.Fmin -> Vf (min (as_float x) (as_float y))
  | Ir.Fmax -> Vf (max (as_float x) (as_float y))

let eval_un op x =
  match op with
  | Ir.Ineg -> Vi (-as_int x)
  | Ir.Fneg -> Vf (-.as_float x)
  | Ir.Bnot -> Vi (if truthy x then 0 else 1)
  | Ir.Itof -> Vf (float_of_int (as_int x))
  | Ir.Ftoi -> Vi (int_of_float (as_float x))
  | Ir.Fsqrt ->
    let f = as_float x in
    if f < 0.0 then raise (Error "sqrt of negative value");
    Vf (sqrt f)
  | Ir.Fabs -> Vf (abs_float (as_float x))
  | Ir.Iabs -> Vi (abs (as_int x))

let rec call state (f : Ir.func) (args : value list) : value option =
  let regs = Array.init (Ir.num_regs f) (fun r -> default_value f.reg_ty.(r)) in
  let params = List.map (fun (_, _, r) -> r) f.params in
  (if List.length params <> List.length args then
     raise (Error ("arity mismatch calling " ^ f.name)));
  List.iter2 (fun r v -> regs.(r) <- v) params args;
  let arrays = Hashtbl.create 4 in
  List.iter
    (fun (name, size, ty) ->
      Hashtbl.replace arrays name (Array.make size (default_value ty)))
    f.arrays;
  let operand = function
    | Ir.Reg r -> regs.(r)
    | Ir.Imm_int n -> Vi n
    | Ir.Imm_float v -> Vf v
  in
  let array_of name =
    match Hashtbl.find_opt arrays name with
    | Some a -> a
    | None -> raise (Error ("unknown array " ^ name))
  in
  let exec_instr = function
    | Ir.Bin (op, d, x, y) -> regs.(d) <- eval_bin op (operand x) (operand y)
    | Ir.Un (op, d, x) -> regs.(d) <- eval_un op (operand x)
    | Ir.Mov (d, x) -> regs.(d) <- operand x
    | Ir.Sel (d, c, a, b) ->
      regs.(d) <- (if truthy (operand c) then operand a else operand b)
    | Ir.Load (d, a, i) ->
      let arr = array_of a in
      let i = as_int (operand i) in
      if i < 0 || i >= Array.length arr then
        raise (Error (Printf.sprintf "index %d out of bounds" i));
      regs.(d) <- arr.(i)
    | Ir.Store (a, i, v) ->
      let arr = array_of a in
      let i = as_int (operand i) in
      if i < 0 || i >= Array.length arr then
        raise (Error (Printf.sprintf "index %d out of bounds" i));
      arr.(i) <- operand v
    | Ir.Call (dst, name, args) -> (
      let callee =
        match Hashtbl.find_opt state.funcs name with
        | Some f -> f
        | None -> raise (Error ("undefined function " ^ name))
      in
      let result = call state callee (List.map operand args) in
      match (dst, result) with
      | None, _ -> ()
      | Some d, Some v -> regs.(d) <- v
      | Some _, None -> raise (Error (name ^ " returned no value")))
    | Ir.Send (c, v) -> state.channels.send c (operand v)
    | Ir.Recv (c, d) -> regs.(d) <- state.channels.recv c
  in
  let rec run_block label : value option =
    if state.fuel <= 0 then raise Out_of_fuel;
    state.fuel <- state.fuel - 1;
    let b = f.blocks.(label) in
    List.iter
      (fun instr ->
        if state.fuel <= 0 then raise Out_of_fuel;
        state.fuel <- state.fuel - 1;
        exec_instr instr)
      b.instrs;
    match b.term with
    | Ir.Jump l -> run_block l
    | Ir.Branch (c, t, e) -> run_block (if truthy (operand c) then t else e)
    | Ir.Ret None -> None
    | Ir.Ret (Some v) -> Some (operand v)
  in
  run_block Ir.entry_block

(* Run [name] from [section].  [fuel] bounds executed instructions. *)
let run_function ?(fuel = 10_000_000) ?(channels = null_channels)
    (section : Ir.section) ~name ~args : value option =
  let funcs = Hashtbl.create 8 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.name f) section.funcs;
  let state = { funcs; channels; fuel } in
  match Hashtbl.find_opt funcs name with
  | Some f -> call state f args
  | None -> raise (Error ("undefined function " ^ name))
