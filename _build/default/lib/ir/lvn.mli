(** Local value numbering — the local CSE / copy- and constant-
    propagation half of phase 2's "local optimization".

    Within each basic block, operands are canonicalized to the current
    representative of their value number and redundant pure
    computations — including loads with no intervening store to the
    same array — become moves.  Calls define fresh values but do not
    invalidate array loads: the language has no aliasing. *)

val run : Ir.func -> int
(** One sweep over all blocks; returns the number of rewrites. *)
