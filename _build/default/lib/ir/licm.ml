(* Loop-invariant code motion.

   An instruction is hoisted to the loop preheader when:
   - it is pure and cannot trap (it will execute speculatively on the
     zero-trip path);
   - all register operands have no definition inside the loop;
   - its destination has exactly one definition inside the loop;
   - its destination is not live into the header (no value from before
     the loop is being overwritten) and not live into any exit target
     (the zero-trip path never exposes the speculated value).

   Loads additionally require that no store to the same array occurs
   anywhere in the loop.  Calls never move. *)

module Iset = Loops.Iset

(* Find or create a preheader: the unique block outside the loop that
   jumps to the header.  If the outside predecessors are several, or
   reach the header through a branch, a fresh forwarding block is
   spliced in front of the header.  Returns its index. *)
let ensure_preheader (f : Ir.func) (l : Loops.loop) : int =
  let preds = Cfg.predecessors f in
  let outside = List.filter (fun p -> not (Iset.mem p l.body)) preds.(l.header) in
  match outside with
  | [ p ] when (match f.blocks.(p).term with Ir.Jump _ -> true | _ -> false) -> p
  | _ ->
    let fresh = Array.length f.blocks in
    let pre = { Ir.instrs = []; term = Ir.Jump l.header } in
    f.blocks <- Array.append f.blocks [| pre |];
    List.iter
      (fun p ->
        let b = f.blocks.(p) in
        let redirect label = if label = l.header then fresh else label in
        f.blocks.(p) <- { b with Ir.term = Cfg.map_term_labels redirect b.term })
      outside;
    fresh

(* Definition counts per register within the loop body. *)
let loop_def_counts (f : Ir.func) (l : Loops.loop) =
  let counts = Hashtbl.create 32 in
  Iset.iter
    (fun bi ->
      List.iter
        (fun instr ->
          match Ir.def_of instr with
          | Some d ->
            Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
          | None -> ())
        f.blocks.(bi).instrs)
    l.body;
  counts

let stores_and_calls (f : Ir.func) (l : Loops.loop) =
  let stored = Hashtbl.create 4 in
  Iset.iter
    (fun bi ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Store (arr, _, _) -> Hashtbl.replace stored arr ()
          | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Sel _ | Ir.Load _ | Ir.Call _
          | Ir.Send _ | Ir.Recv _ ->
            ())
        f.blocks.(bi).instrs)
    l.body;
  stored

(* Hoist from one loop until fixpoint; returns hoist count. *)
let hoist_loop (f : Ir.func) (l : Loops.loop) : int =
  let hoisted = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let liveness = Liveness.compute f in
    let def_counts = loop_def_counts f l in
    let stored = stores_and_calls f l in
    let invariant_operand = function
      | Ir.Imm_int _ | Ir.Imm_float _ -> true
      | Ir.Reg r -> not (Hashtbl.mem def_counts r)
    in
    let live_in_blocks =
      l.header :: List.map snd l.exits
    in
    let dst_blocked d =
      List.exists
        (fun b -> Liveness.Rset.mem d liveness.Liveness.live_in.(b))
        live_in_blocks
    in
    let candidate instr =
      (not (Ir.has_side_effect instr))
      && (not (Ir.may_trap instr))
      && List.for_all invariant_operand
           (List.map (fun r -> Ir.Reg r) (Ir.uses_of instr))
      &&
      match Ir.def_of instr with
      | Some d -> Hashtbl.find_opt def_counts d = Some 1 && not (dst_blocked d)
      | None -> false
    in
    let load_safe = function
      | Ir.Load (_, arr, _) -> not (Hashtbl.mem stored arr)
      | _ -> true
    in
    (* Find the first hoistable instruction in the loop. *)
    let found = ref None in
    Iset.iter
      (fun bi ->
        if !found = None then
          List.iteri
            (fun k instr ->
              if !found = None && candidate instr && load_safe instr then
                found := Some (bi, k))
            f.blocks.(bi).instrs)
      l.body;
    match !found with
    | None -> ()
    | Some (bi, k) ->
      let pre = ensure_preheader f l in
      let b = f.blocks.(bi) in
      let instr = List.nth b.instrs k in
      f.blocks.(bi) <-
        { b with Ir.instrs = List.filteri (fun j _ -> j <> k) b.instrs };
      let pb = f.blocks.(pre) in
      f.blocks.(pre) <- { pb with Ir.instrs = pb.instrs @ [ instr ] };
      incr hoisted;
      continue_ := true
  done;
  !hoisted

(* Hoist across all loops, innermost first. *)
let run (f : Ir.func) : int =
  let total = ref 0 in
  let rec go budget =
    if budget > 0 then begin
      let loops = Loops.find f in
      let before = !total in
      List.iter (fun l -> total := !total + hoist_loop f l) loops;
      (* [ensure_preheader] may have renumbered nothing but appended
         blocks; loop structures are stale after hoisting, so recompute
         and retry until stable. *)
      if !total > before then go (budget - 1)
    end
  in
  go 4;
  !total
