(* Backward liveness dataflow over virtual registers.  Drives dead-code
   elimination, the loop-invariant safety checks and, in the back end,
   live-interval construction for register allocation. *)

module Rset = Set.Make (Int)

type t = {
  live_in : Rset.t array;
  live_out : Rset.t array;
}

(* use/def of a whole block, computed backwards. *)
let block_use_def (b : Ir.block) =
  let use = ref Rset.empty and def = ref Rset.empty in
  let step_instr instr =
    (* Backward: a def kills earlier uses... but we scan forward, so an
       upward-exposed use is one not preceded by a def. *)
    List.iter
      (fun r -> if not (Rset.mem r !def) then use := Rset.add r !use)
      (Ir.uses_of instr);
    match Ir.def_of instr with
    | Some d -> def := Rset.add d !def
    | None -> ()
  in
  List.iter step_instr b.instrs;
  List.iter
    (fun r -> if not (Rset.mem r !def) then use := Rset.add r !use)
    (Ir.term_uses b.term);
  (!use, !def)

let compute (f : Ir.func) : t =
  let n = Array.length f.blocks in
  let use = Array.make n Rset.empty and def = Array.make n Rset.empty in
  Array.iteri
    (fun i b ->
      let u, d = block_use_def b in
      use.(i) <- u;
      def.(i) <- d)
    f.blocks;
  let live_in = Array.make n Rset.empty in
  let live_out = Array.make n Rset.empty in
  let succs = Cfg.successors f in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in reverse block order as a cheap approximation of
       postorder; convergence does not depend on it. *)
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Rset.union acc live_in.(s))
          Rset.empty succs.(i)
      in
      let inn = Rset.union use.(i) (Rset.diff out def.(i)) in
      if not (Rset.equal out live_out.(i) && Rset.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

(* Liveness at each instruction boundary within a block:
   [per_instr liveness f i] returns an array where slot [k] is the set of
   registers live immediately *after* instruction [k] of block [i]
   (slot [length instrs] would be the block's live-out; the terminator's
   uses are already included in the last slot). *)
let per_instr t (f : Ir.func) i =
  let b = f.blocks.(i) in
  let instrs = Array.of_list b.instrs in
  let n = Array.length instrs in
  let after = Array.make n Rset.empty in
  let live = ref (Rset.union t.live_out.(i) (Rset.of_list (Ir.term_uses b.term))) in
  (* [live_out] already contains the terminator uses via block use sets
     only when they flow out; add them explicitly to be safe. *)
  for k = n - 1 downto 0 do
    after.(k) <- !live;
    let instr = instrs.(k) in
    (match Ir.def_of instr with
    | Some d -> live := Rset.remove d !live
    | None -> ());
    List.iter (fun r -> live := Rset.add r !live) (Ir.uses_of instr)
  done;
  after
