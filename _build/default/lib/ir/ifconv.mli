(** If-conversion: small branch diamonds (and triangles) become
    straight-line code ending in [Sel] instructions, one per register
    the arms define.  Arms must be short, pure, non-trapping and
    load-free (speculating a guarded out-of-bounds access would add a
    fault).  The payoff is downstream: loop bodies that become single
    blocks are candidates for software pipelining. *)

val max_arm_instrs : int

val run : Ir.func -> int
(** Convert to a fixpoint; returns the number of conversions. *)
