(** Global dead-code elimination based on liveness.

    A pure instruction whose destination is dead immediately after it
    is removed.  Stores, calls, sends and receives always stay (calls
    can carry channel traffic; a receive consumes queue data even if
    the value is unused). *)

val run : Ir.func -> int
(** Returns the number of instructions removed. *)
