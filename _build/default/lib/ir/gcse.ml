(* Global common-subexpression elimination, single-definition variant.

   Without SSA, proving that two syntactically equal expressions compute
   the same value requires that none of the involved registers was
   redefined in between.  A sound special case needs no path analysis:

   - the expression is pure, non-trapping and reads no memory;
   - its destination has exactly one definition in the function;
   - every register operand has exactly one definition, and that
     definition dominates the expression
     (so every dominated read observes the same value);

   then any dominated re-computation of the same expression can become
   a move from the first destination.  Local value numbering already
   covers the within-block cases; this pass catches repeats across
   blocks — typically address or bound computations rematerialized in
   several branches. *)

type site = { s_block : int; s_index : int }

(* Does the definition at [def] dominate the use at [use]? *)
let site_dominates dom (def : site) (use : site) =
  if def.s_block = use.s_block then def.s_index < use.s_index
  else Dom.dominates dom def.s_block use.s_block

type key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Kun of Ir.unop * Ir.operand
  | Ksel of Ir.operand * Ir.operand * Ir.operand

let commutative = function
  | Ir.Iadd | Ir.Imul | Ir.Fadd | Ir.Fmul | Ir.Band | Ir.Bor | Ir.Imin
  | Ir.Imax | Ir.Fmin | Ir.Fmax
  | Ir.Icmp (Ir.Ceq | Ir.Cne)
  | Ir.Fcmp (Ir.Ceq | Ir.Cne) ->
    true
  | Ir.Isub | Ir.Idiv | Ir.Imod | Ir.Fsub | Ir.Fdiv
  | Ir.Icmp (Ir.Clt | Ir.Cle | Ir.Cgt | Ir.Cge)
  | Ir.Fcmp (Ir.Clt | Ir.Cle | Ir.Cgt | Ir.Cge) ->
    false

let key_of = function
  | Ir.Bin (op, _, x, y) ->
    let x, y = if commutative op && x > y then (y, x) else (x, y) in
    Some (Kbin (op, x, y))
  | Ir.Un (op, _, x) -> Some (Kun (op, x))
  | Ir.Sel (_, c, a, b) -> Some (Ksel (c, a, b))
  | Ir.Mov _ | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Send _ | Ir.Recv _ ->
    None

let run (f : Ir.func) : int =
  let n = Array.length f.Ir.blocks in
  (* Definition counts and single-def sites; parameters count as defined
     at function entry (before every instruction). *)
  let nregs = Ir.num_regs f in
  let def_count = Array.make nregs 0 in
  let def_site : site option array = Array.make nregs None in
  List.iter
    (fun (_, _, r) ->
      def_count.(r) <- 1;
      def_site.(r) <- Some { s_block = Ir.entry_block; s_index = -1 })
    f.Ir.params;
  Array.iteri
    (fun bi (b : Ir.block) ->
      List.iteri
        (fun k instr ->
          match Ir.def_of instr with
          | Some d ->
            def_count.(d) <- def_count.(d) + 1;
            def_site.(d) <- Some { s_block = bi; s_index = k }
          | None -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  let single r = def_count.(r) = 1 in
  let dom = Dom.compute f in
  let reachable = Cfg.reachable f in
  (* First sweep: record each eligible expression's first dominating
     definition.  Sweep in reverse postorder so dominators come first. *)
  let table = Hashtbl.create 64 in
  let order = Cfg.reverse_postorder f in
  List.iter
    (fun bi ->
      List.iteri
        (fun k instr ->
          match (key_of instr, Ir.def_of instr) with
          | Some key, Some d
            when single d
                 && (not (Ir.may_trap instr))
                 && List.for_all
                      (fun r ->
                        single r
                        &&
                        match def_site.(r) with
                        | Some s -> site_dominates dom s { s_block = bi; s_index = k }
                        | None -> false)
                      (Ir.uses_of instr) ->
            if not (Hashtbl.mem table key) then
              Hashtbl.replace table key (d, { s_block = bi; s_index = k })
          | _ -> ())
        f.Ir.blocks.(bi).Ir.instrs)
    order;
  (* Second sweep: rewrite dominated duplicates. *)
  let changed = ref 0 in
  for bi = 0 to n - 1 do
    if reachable.(bi) then begin
      let b = f.Ir.blocks.(bi) in
      let instrs =
        List.mapi
          (fun k instr ->
            match (key_of instr, Ir.def_of instr) with
            | Some key, Some d -> (
              match Hashtbl.find_opt table key with
              | Some (rep, def)
                when rep <> d
                     && site_dominates dom def { s_block = bi; s_index = k } ->
                incr changed;
                Ir.Mov (d, Ir.Reg rep)
              | Some (rep, def)
                when rep = d
                     && not (def.s_block = bi && def.s_index = k) ->
                (* A re-definition of the representative itself cannot
                   happen (single-def), so this is the recording site. *)
                instr
              | _ -> instr)
            | _ -> instr)
          b.Ir.instrs
      in
      f.Ir.blocks.(bi) <- { b with Ir.instrs }
    end
  done;
  !changed
