(* Local value numbering: the "local optimization" half of phase 2.

   Within each basic block, operands are canonicalized to the current
   representative of their value number (which performs local copy and
   constant propagation), and redundant pure computations — including
   loads with no intervening store to the same array — are replaced by
   moves from the register already holding the value (local CSE).

   Calls define fresh values but do *not* invalidate array loads: the
   language has no aliasing, so a callee can never write the caller's
   arrays. *)

type key =
  | Kbin of Ir.binop * int * int
  | Kun of Ir.unop * int
  | Ksel of int * int * int
  | Kload of string * int * int (* array, index vn, memory generation *)
  | Kimm_int of int
  | Kimm_float of float

let commutative = function
  | Ir.Iadd | Ir.Imul | Ir.Fadd | Ir.Fmul | Ir.Band | Ir.Bor | Ir.Imin
  | Ir.Imax | Ir.Fmin | Ir.Fmax
  | Ir.Icmp (Ir.Ceq | Ir.Cne)
  | Ir.Fcmp (Ir.Ceq | Ir.Cne) ->
    true
  | Ir.Isub | Ir.Idiv | Ir.Imod | Ir.Fsub | Ir.Fdiv
  | Ir.Icmp (Ir.Clt | Ir.Cle | Ir.Cgt | Ir.Cge)
  | Ir.Fcmp (Ir.Clt | Ir.Cle | Ir.Cgt | Ir.Cge) ->
    false

type state = {
  mutable next_vn : int;
  reg_vn : (Ir.reg, int) Hashtbl.t; (* current value number of a register *)
  expr_vn : (key, int) Hashtbl.t; (* value number of an expression *)
  rep : (int, Ir.operand) Hashtbl.t; (* representative operand of a vn *)
  mem_gen : (string, int) Hashtbl.t; (* store generation per array *)
}

let fresh st =
  let v = st.next_vn in
  st.next_vn <- v + 1;
  v

let vn_of_reg st r =
  match Hashtbl.find_opt st.reg_vn r with
  | Some v -> v
  | None ->
    let v = fresh st in
    Hashtbl.replace st.reg_vn r v;
    Hashtbl.replace st.rep v (Ir.Reg r);
    v

let vn_of_operand st = function
  | Ir.Reg r -> vn_of_reg st r
  | Ir.Imm_int n -> (
    let k = Kimm_int n in
    match Hashtbl.find_opt st.expr_vn k with
    | Some v -> v
    | None ->
      let v = fresh st in
      Hashtbl.replace st.expr_vn k v;
      Hashtbl.replace st.rep v (Ir.Imm_int n);
      v)
  | Ir.Imm_float f -> (
    let k = Kimm_float f in
    match Hashtbl.find_opt st.expr_vn k with
    | Some v -> v
    | None ->
      let v = fresh st in
      Hashtbl.replace st.expr_vn k v;
      Hashtbl.replace st.rep v (Ir.Imm_float f);
      v)

(* The representative of [vn], if it is still valid: an immediate always
   is; a register only while its current vn is unchanged. *)
let valid_rep st vn =
  match Hashtbl.find_opt st.rep vn with
  | Some (Ir.Reg r) ->
    if Hashtbl.find_opt st.reg_vn r = Some vn then Some (Ir.Reg r) else None
  | Some imm -> Some imm
  | None -> None

let canon st changed operand =
  let vn = vn_of_operand st operand in
  match valid_rep st vn with
  | Some rep when rep <> operand ->
    incr changed;
    rep
  | Some _ | None -> operand

let define st d vn =
  Hashtbl.replace st.reg_vn d vn;
  (* Prefer register representatives only if none exists (an immediate
     representative is strictly better). *)
  match Hashtbl.find_opt st.rep vn with
  | Some (Ir.Reg r) when Hashtbl.find_opt st.reg_vn r <> Some vn ->
    Hashtbl.replace st.rep vn (Ir.Reg d)
  | None -> Hashtbl.replace st.rep vn (Ir.Reg d)
  | Some _ -> ()

let define_fresh st d =
  let v = fresh st in
  Hashtbl.replace st.reg_vn d v;
  Hashtbl.replace st.rep v (Ir.Reg d)

let gen_of st arr =
  match Hashtbl.find_opt st.mem_gen arr with Some g -> g | None -> 0

let run_block st (b : Ir.block) changed =
  let instrs =
    List.map
      (fun instr ->
        match instr with
        | Ir.Bin (op, d, x, y) -> (
          let x = canon st changed x and y = canon st changed y in
          let vx = vn_of_operand st x and vy = vn_of_operand st y in
          let vx, vy =
            if commutative op && vx > vy then (vy, vx) else (vx, vy)
          in
          let k = Kbin (op, vx, vy) in
          match Option.bind (Hashtbl.find_opt st.expr_vn k) (valid_rep st) with
          | Some rep ->
            incr changed;
            let vn = Hashtbl.find st.expr_vn k in
            define st d vn;
            Ir.Mov (d, rep)
          | None ->
            let vn = fresh st in
            Hashtbl.replace st.expr_vn k vn;
            Hashtbl.replace st.reg_vn d vn;
            Hashtbl.replace st.rep vn (Ir.Reg d);
            Ir.Bin (op, d, x, y))
        | Ir.Un (op, d, x) -> (
          let x = canon st changed x in
          let k = Kun (op, vn_of_operand st x) in
          match Option.bind (Hashtbl.find_opt st.expr_vn k) (valid_rep st) with
          | Some rep ->
            incr changed;
            let vn = Hashtbl.find st.expr_vn k in
            define st d vn;
            Ir.Mov (d, rep)
          | None ->
            let vn = fresh st in
            Hashtbl.replace st.expr_vn k vn;
            Hashtbl.replace st.reg_vn d vn;
            Hashtbl.replace st.rep vn (Ir.Reg d);
            Ir.Un (op, d, x))
        | Ir.Mov (d, x) ->
          let x = canon st changed x in
          let vn = vn_of_operand st x in
          define st d vn;
          Ir.Mov (d, x)
        | Ir.Sel (d, c, a, b) -> (
          let c = canon st changed c
          and a = canon st changed a
          and b = canon st changed b in
          let k = Ksel (vn_of_operand st c, vn_of_operand st a, vn_of_operand st b) in
          match Option.bind (Hashtbl.find_opt st.expr_vn k) (valid_rep st) with
          | Some rep ->
            incr changed;
            let vn = Hashtbl.find st.expr_vn k in
            define st d vn;
            Ir.Mov (d, rep)
          | None ->
            let vn = fresh st in
            Hashtbl.replace st.expr_vn k vn;
            Hashtbl.replace st.reg_vn d vn;
            Hashtbl.replace st.rep vn (Ir.Reg d);
            Ir.Sel (d, c, a, b))
        | Ir.Load (d, arr, idx) -> (
          let idx = canon st changed idx in
          let k = Kload (arr, vn_of_operand st idx, gen_of st arr) in
          match Option.bind (Hashtbl.find_opt st.expr_vn k) (valid_rep st) with
          | Some rep ->
            incr changed;
            let vn = Hashtbl.find st.expr_vn k in
            define st d vn;
            Ir.Mov (d, rep)
          | None ->
            let vn = fresh st in
            Hashtbl.replace st.expr_vn k vn;
            Hashtbl.replace st.reg_vn d vn;
            Hashtbl.replace st.rep vn (Ir.Reg d);
            Ir.Load (d, arr, idx))
        | Ir.Store (arr, idx, v) ->
          let idx = canon st changed idx and v = canon st changed v in
          Hashtbl.replace st.mem_gen arr (gen_of st arr + 1);
          Ir.Store (arr, idx, v)
        | Ir.Call (d, name, args) ->
          let args = List.map (canon st changed) args in
          Option.iter (define_fresh st) d;
          Ir.Call (d, name, args)
        | Ir.Send (c, v) -> Ir.Send (c, canon st changed v)
        | Ir.Recv (c, d) ->
          define_fresh st d;
          Ir.Recv (c, d))
      b.instrs
  in
  let term =
    match b.term with
    | Ir.Branch (c, t, e) -> Ir.Branch (canon st changed c, t, e)
    | Ir.Ret (Some v) -> Ir.Ret (Some (canon st changed v))
    | (Ir.Jump _ | Ir.Ret None) as t -> t
  in
  { Ir.instrs; term }

(* One sweep over all blocks; local state is reset per block. *)
let run (f : Ir.func) : int =
  let changed = ref 0 in
  Array.iteri
    (fun i b ->
      let st =
        {
          next_vn = 0;
          reg_vn = Hashtbl.create 64;
          expr_vn = Hashtbl.create 64;
          rep = Hashtbl.create 64;
          mem_gen = Hashtbl.create 4;
        }
      in
      f.blocks.(i) <- run_block st b changed)
    f.blocks;
  !changed
