(* Three-address intermediate representation.

   Phase 2 of the compiler (flowgraph construction, local optimization,
   global dependency computation) operates on this IR; phase 3 (software
   pipelining and code generation) consumes it.  Registers are mutable
   virtual registers — the representation is deliberately not SSA, in
   keeping with the era of the paper's compiler.

   Arrays live in per-function local memory and are referred to by name;
   the language has no aliasing (no pointers, no array parameters), so a
   store can only interfere with loads of the same array. *)

type reg = int

type ty = Int | Float | Bool

type operand = Reg of reg | Imm_int of int | Imm_float of float

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type binop =
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Imod
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Icmp of cmp
  | Fcmp of cmp
  | Band (* boolean and, non-short-circuit form used after lowering *)
  | Bor
  | Imin
  | Imax
  | Fmin
  | Fmax

type unop = Ineg | Fneg | Bnot | Itof | Ftoi | Fsqrt | Fabs | Iabs

type instr =
  | Bin of binop * reg * operand * operand
  | Un of unop * reg * operand
  | Mov of reg * operand
  | Sel of reg * operand * operand * operand
    (* d := if cond <> 0 then a else b — produced by if-conversion *)
  | Load of reg * string * operand (* dst, array, index *)
  | Store of string * operand * operand (* array, index, value *)
  | Call of reg option * string * operand list
  | Send of W2.Ast.channel * operand
  | Recv of W2.Ast.channel * reg

type term =
  | Jump of int (* block index *)
  | Branch of operand * int * int (* condition, then-block, else-block *)
  | Ret of operand option

type block = {
  mutable instrs : instr list;
  mutable term : term;
}

type func = {
  name : string;
  params : (string * ty * reg) list;
  arrays : (string * int * ty) list; (* name, size, element type *)
  mutable blocks : block array;
  mutable reg_ty : ty array; (* type of each virtual register *)
  ret_ty : ty option;
}

(* A compiled section: all functions share a channel interface. *)
type section = { sec_name : string; cells : int; funcs : func list }

let entry_block = 0

(* --- small accessors --- *)

let num_regs f = Array.length f.reg_ty

let def_of = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mov (d, _) | Sel (d, _, _, _)
  | Load (d, _, _) | Recv (_, d) ->
    Some d
  | Call (d, _, _) -> d
  | Store _ | Send _ -> None

let uses_of instr =
  let of_operand acc = function Reg r -> r :: acc | Imm_int _ | Imm_float _ -> acc in
  match instr with
  | Bin (_, _, a, b) -> of_operand (of_operand [] a) b
  | Sel (_, c, a, b) -> of_operand (of_operand (of_operand [] c) a) b
  | Un (_, _, a) | Mov (_, a) -> of_operand [] a
  | Load (_, _, i) -> of_operand [] i
  | Store (_, i, v) -> of_operand (of_operand [] i) v
  | Call (_, _, args) -> List.fold_left of_operand [] args
  | Send (_, v) -> of_operand [] v
  | Recv _ -> []

let term_uses = function
  | Jump _ | Ret None -> []
  | Branch (Reg r, _, _) -> [ r ]
  | Branch (_, _, _) -> []
  | Ret (Some (Reg r)) -> [ r ]
  | Ret (Some _) -> []

let successors = function
  | Jump l -> [ l ]
  | Branch (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ -> []

(* Side effects: instructions that cannot be removed even if their result
   is dead.  Loads are treated as pure (indices are checker-verified or
   runtime-trapping in the interpreter only). *)
let has_side_effect = function
  | Store _ | Call _ | Send _ | Recv _ -> true
  | Bin _ | Un _ | Mov _ | Sel _ | Load _ -> false

(* Instructions that may trap and therefore must not be speculated
   (hoisted above a guard). *)
let may_trap = function
  | Bin ((Idiv | Imod | Fdiv), _, _, Imm_int 0) -> true
  | Bin ((Idiv | Imod), _, _, (Reg _ | Imm_float _)) -> true
  | Bin (Fdiv, _, _, (Reg _ | Imm_int _)) -> true
  | Bin (Fdiv, _, _, Imm_float f) -> f = 0.0
  | Bin ((Idiv | Imod), _, _, Imm_int _) -> false (* non-zero constant *)
  | Un (Fsqrt, _, _) -> true (* sqrt of negative reports an error *)
  | Bin _ | Un _ | Mov _ | Sel _ | Load _ | Store _ | Call _ | Send _ | Recv _ ->
    false

(* --- printing --- *)

let cmp_to_string = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Clt -> "lt"
  | Cle -> "le"
  | Cgt -> "gt"
  | Cge -> "ge"

let binop_to_string = function
  | Iadd -> "iadd"
  | Isub -> "isub"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Imod -> "imod"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Icmp c -> "icmp." ^ cmp_to_string c
  | Fcmp c -> "fcmp." ^ cmp_to_string c
  | Band -> "band"
  | Bor -> "bor"
  | Imin -> "imin"
  | Imax -> "imax"
  | Fmin -> "fmin"
  | Fmax -> "fmax"

let unop_to_string = function
  | Ineg -> "ineg"
  | Fneg -> "fneg"
  | Bnot -> "bnot"
  | Itof -> "itof"
  | Ftoi -> "ftoi"
  | Fsqrt -> "fsqrt"
  | Fabs -> "fabs"
  | Iabs -> "iabs"

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm_int n -> string_of_int n
  | Imm_float f -> Printf.sprintf "%g" f

let instr_to_string instr =
  let op = operand_to_string in
  match instr with
  | Bin (b, d, x, y) ->
    Printf.sprintf "r%d := %s %s, %s" d (binop_to_string b) (op x) (op y)
  | Un (u, d, x) -> Printf.sprintf "r%d := %s %s" d (unop_to_string u) (op x)
  | Mov (d, x) -> Printf.sprintf "r%d := %s" d (op x)
  | Sel (d, c, a, b) -> Printf.sprintf "r%d := sel %s ? %s : %s" d (op c) (op a) (op b)
  | Load (d, a, i) -> Printf.sprintf "r%d := %s[%s]" d a (op i)
  | Store (a, i, v) -> Printf.sprintf "%s[%s] := %s" a (op i) (op v)
  | Call (None, f, args) ->
    Printf.sprintf "call %s(%s)" f (String.concat ", " (List.map op args))
  | Call (Some d, f, args) ->
    Printf.sprintf "r%d := call %s(%s)" d f (String.concat ", " (List.map op args))
  | Send (c, v) -> Printf.sprintf "send %s, %s" (W2.Ast.channel_to_string c) (op v)
  | Recv (c, d) -> Printf.sprintf "r%d := recv %s" d (W2.Ast.channel_to_string c)

let term_to_string = function
  | Jump l -> Printf.sprintf "jump L%d" l
  | Branch (c, t, e) ->
    Printf.sprintf "branch %s, L%d, L%d" (operand_to_string c) t e
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)

let func_to_string f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s)\n" f.name
       (String.concat ", "
          (List.map (fun (n, _, r) -> Printf.sprintf "%s=r%d" n r) f.params)));
  Array.iteri
    (fun i b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" i);
      List.iter
        (fun ins -> Buffer.add_string buf ("  " ^ instr_to_string ins ^ "\n"))
        b.instrs;
      Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

(* Total instruction count (including terminators): the basic size metric
   used by the compilation cost model. *)
let instr_count f =
  Array.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks
