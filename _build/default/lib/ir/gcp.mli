(** Global constant propagation for single-definition registers: a
    register defined exactly once, by a move of an immediate, is
    replaced by that immediate at every dominated use. *)

val run : Ir.func -> int
(** Returns the number of operands rewritten. *)
