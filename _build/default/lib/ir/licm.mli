(** Loop-invariant code motion.

    Hoists pure, non-trapping instructions with loop-invariant operands
    to the loop preheader, provided the destination is defined exactly
    once in the loop and is not live into the header or into any exit
    target (so the zero-trip path never observes the speculated
    value).  Loads additionally require the array to be store-free in
    the loop. *)

val ensure_preheader : Ir.func -> Loops.loop -> int
(** Find or create the unique outside block that jumps to the header;
    returns its index.  (Shared with {!Strength}.) *)

val run : Ir.func -> int
(** Hoist across all loops to a fixpoint; returns the hoist count. *)
