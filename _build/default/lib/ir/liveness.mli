(** Backward liveness dataflow over virtual registers.  Drives
    dead-code elimination, the loop-invariant safety checks and, in the
    back end, live-interval construction for register allocation. *)

module Rset : Set.S with type elt = int

type t = {
  live_in : Rset.t array; (** registers live at each block entry *)
  live_out : Rset.t array; (** registers live at each block exit *)
}

val compute : Ir.func -> t

val per_instr : t -> Ir.func -> int -> Rset.t array
(** [per_instr t f b] — slot [k] is the set of registers live
    immediately {e after} instruction [k] of block [b] (terminator uses
    included). *)
