(* Natural-loop detection from back edges.

   A back edge is an edge n -> h where h dominates n; the natural loop of
   that edge is h plus every block that can reach n without passing
   through h.  Loops keep the header, the body set, the latch blocks and
   the exit edges; [innermost] filters loops containing no other loop. *)

module Iset = Set.Make (Int)

type loop = {
  header : int;
  body : Iset.t; (* includes the header *)
  latches : int list; (* sources of the back edges *)
  exits : (int * int) list; (* (from-block-in-loop, to-block-outside) *)
}

let natural_loop (f : Ir.func) preds ~header ~latch =
  let body = ref (Iset.of_list [ header; latch ]) in
  let rec pull n =
    if n <> header then
      List.iter
        (fun p ->
          if not (Iset.mem p !body) then begin
            body := Iset.add p !body;
            pull p
          end)
        preds.(n)
  in
  pull latch;
  let exits = ref [] in
  Iset.iter
    (fun b ->
      List.iter
        (fun s -> if not (Iset.mem s !body) then exits := (b, s) :: !exits)
        (Ir.successors f.blocks.(b).term))
    !body;
  { header; body = !body; latches = [ latch ]; exits = !exits }

let find (f : Ir.func) : loop list =
  let dom = Dom.compute f in
  let preds = Cfg.predecessors f in
  let reachable = Cfg.reachable f in
  let raw = ref [] in
  Array.iteri
    (fun n (b : Ir.block) ->
      if reachable.(n) then
        List.iter
          (fun h -> if Dom.dominates dom h n then raw := (h, n) :: !raw)
          (Ir.successors b.term))
    f.blocks;
  (* Merge loops sharing a header. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (h, n) ->
      let l = natural_loop f preds ~header:h ~latch:n in
      match Hashtbl.find_opt tbl h with
      | None -> Hashtbl.replace tbl h l
      | Some prev ->
        Hashtbl.replace tbl h
          {
            header = h;
            body = Iset.union prev.body l.body;
            latches = l.latches @ prev.latches;
            exits = [];
          })
    !raw;
  (* Recompute exits after merging. *)
  let loops =
    Hashtbl.fold
      (fun _ l acc ->
        let exits = ref [] in
        Iset.iter
          (fun b ->
            List.iter
              (fun s -> if not (Iset.mem s l.body) then exits := (b, s) :: !exits)
              (Ir.successors f.blocks.(b).term))
          l.body;
        { l with exits = !exits } :: acc)
      tbl []
  in
  (* Sort by body size so that inner loops come first. *)
  List.sort (fun a b -> compare (Iset.cardinal a.body) (Iset.cardinal b.body)) loops

let innermost (loops : loop list) : loop list =
  List.filter
    (fun l ->
      not
        (List.exists
           (fun other ->
             other.header <> l.header
             && Iset.subset other.body l.body)
           loops))
    loops

(* Maximum loop-nesting depth of the function: how many loop bodies
   contain each block, maximised.  Feeds the cost model (deeper nests
   make phases 2 and 3 work harder) and the scheduling heuristics. *)
let nesting_depth (f : Ir.func) : int =
  let loops = find f in
  let n = Array.length f.blocks in
  let depth = Array.make n 0 in
  List.iter
    (fun l -> Iset.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    loops;
  Array.fold_left max 0 depth
