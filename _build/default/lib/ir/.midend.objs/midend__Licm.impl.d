lib/ir/licm.ml: Array Cfg Hashtbl Ir List Liveness Loops Option
