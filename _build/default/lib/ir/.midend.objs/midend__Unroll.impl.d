lib/ir/unroll.ml: Array Cfg Ir List Loops
