lib/ir/counted.mli: Ir Loops
