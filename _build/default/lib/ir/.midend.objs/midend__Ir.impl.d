lib/ir/ir.ml: Array Buffer List Printf String W2
