lib/ir/ifconv.mli: Ir
