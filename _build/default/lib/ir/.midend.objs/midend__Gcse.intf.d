lib/ir/gcse.mli: Ir
