lib/ir/lower.mli: Hashtbl Ir W2
