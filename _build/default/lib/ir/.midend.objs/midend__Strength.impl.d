lib/ir/strength.ml: Array Hashtbl Ir Licm List Loops
