lib/ir/lvn.ml: Array Hashtbl Ir List Option
