lib/ir/counted.ml: Array Cfg Ir List Loops
