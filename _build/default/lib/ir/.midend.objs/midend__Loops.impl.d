lib/ir/loops.ml: Array Cfg Dom Hashtbl Int Ir List Set
