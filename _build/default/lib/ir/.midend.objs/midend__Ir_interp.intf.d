lib/ir/ir_interp.mli: Ir W2
