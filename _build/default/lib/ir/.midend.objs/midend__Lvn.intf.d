lib/ir/lvn.mli: Ir
