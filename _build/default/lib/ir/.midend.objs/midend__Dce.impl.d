lib/ir/dce.ml: Array Ir List Liveness
