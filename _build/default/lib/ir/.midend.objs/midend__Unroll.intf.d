lib/ir/unroll.mli: Ir
