lib/ir/ir_interp.ml: Array Hashtbl Ir List Printf W2
