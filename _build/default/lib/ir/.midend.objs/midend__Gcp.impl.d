lib/ir/gcp.ml: Array Cfg Dom Hashtbl Ir List
