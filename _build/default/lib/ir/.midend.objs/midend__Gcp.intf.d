lib/ir/gcp.mli: Ir
