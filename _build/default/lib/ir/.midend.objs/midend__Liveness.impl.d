lib/ir/liveness.ml: Array Cfg Int Ir List Set
