lib/ir/opt.ml: Cfg Constfold Dce Gcp Gcse Ifconv Ir Licm List Lvn Printf Strength Unroll
