lib/ir/lower.ml: Array Hashtbl Ir List Option W2
