lib/ir/liveness.mli: Ir Set
