lib/ir/gcse.ml: Array Cfg Dom Hashtbl Ir List
