lib/ir/ifconv.ml: Array Cfg Hashtbl Ir List
