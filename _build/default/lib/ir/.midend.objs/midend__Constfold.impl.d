lib/ir/constfold.ml: Array Ir List
