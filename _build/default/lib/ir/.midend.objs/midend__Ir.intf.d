lib/ir/ir.mli: W2
