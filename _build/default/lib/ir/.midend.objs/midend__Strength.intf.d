lib/ir/strength.mli: Ir
