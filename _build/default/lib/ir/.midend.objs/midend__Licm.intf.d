lib/ir/licm.mli: Ir Loops
