lib/ir/constfold.mli: Ir
