(* Recognizer for canonical counted loops — the shape produced by
   lowering a [for] loop:

     pre:  ... v := lo ...            jump h
     h:    c := icmp.le v, limit      branch c, bb, exit
     bb:   <body, v := v + 1 once>    jump h

   with loop body {h, bb} and the comparison register used nowhere else.
   Both the unroller and the software pipeliner key on this shape; the
   bounds are reported when they are compile-time constants. *)

module Iset = Loops.Iset

type t = {
  header : int;
  body_block : int;
  exit : int;
  preheader : int;
  var : Ir.reg;
  cmp_reg : Ir.reg;
  lo : int option; (* constant initial value, if recognizable *)
  hi : int option; (* constant bound, if recognizable *)
}

let trip t =
  match (t.lo, t.hi) with
  | Some lo, Some hi -> Some (max 0 (hi - lo + 1))
  | _ -> None

let last_def_in (b : Ir.block) r =
  List.fold_left
    (fun acc instr -> if Ir.def_of instr = Some r then Some instr else acc)
    None b.instrs

let cmp_reg_used_elsewhere (f : Ir.func) ~header c =
  let used = ref false in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter
        (fun instr -> if List.mem c (Ir.uses_of instr) then used := true)
        b.instrs;
      if i <> header && List.mem c (Ir.term_uses b.term) then used := true)
    f.blocks;
  !used

let recognize (f : Ir.func) (l : Loops.loop) : t option =
  match Iset.elements l.body with
  | [ a; b ] -> (
    let h = l.header in
    let bb = if a = h then b else a in
    let header_block = f.blocks.(h) in
    let body_block = f.blocks.(bb) in
    let preds = Cfg.predecessors f in
    match (header_block.instrs, header_block.term, body_block.term) with
    | ( [ Ir.Bin (Ir.Icmp Ir.Cle, c, Ir.Reg v, lim_op) ],
        Ir.Branch (Ir.Reg c', bt, exit),
        Ir.Jump back )
      when c = c' && bt = bb && back = h
           && (not (Iset.mem exit l.body))
           && preds.(bb) = [ h ]
           && not (cmp_reg_used_elsewhere f ~header:h c) -> (
      let v_defs = List.filter (fun i -> Ir.def_of i = Some v) body_block.instrs in
      let step_ok =
        match v_defs with
        | [ Ir.Bin (Ir.Iadd, _, Ir.Reg v', Ir.Imm_int 1) ] -> v' = v
        | _ -> false
      in
      if not step_ok then None
      else
        match List.filter (fun p -> not (Iset.mem p l.body)) preds.(h) with
        | [ pre ] ->
          let pre_block = f.blocks.(pre) in
          let lo =
            match last_def_in pre_block v with
            | Some (Ir.Mov (_, Ir.Imm_int lo)) -> Some lo
            | _ -> None
          in
          let hi =
            match lim_op with
            | Ir.Imm_int hi -> Some hi
            | Ir.Reg limit ->
              let defined_in_loop =
                List.exists (fun i -> Ir.def_of i = Some limit) body_block.instrs
              in
              if defined_in_loop then None
              else (
                match last_def_in pre_block limit with
                | Some (Ir.Mov (_, Ir.Imm_int hi)) -> Some hi
                | _ -> None)
            | Ir.Imm_float _ -> None
          in
          Some { header = h; body_block = bb; exit; preheader = pre; var = v; cmp_reg = c; lo; hi }
        | _ -> None)
    | _ -> None)
  | _ -> None
