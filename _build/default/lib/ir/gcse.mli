(** Global common-subexpression elimination (single-definition variant):
    a pure, non-trapping, memory-free expression whose destination and
    register operands all have unique, dominating definitions can
    replace every dominated re-computation of the same expression by a
    move.  Complements the block-local value numbering of {!Lvn}. *)

val run : Ir.func -> int
(** Returns the number of re-computations eliminated. *)
