(** Recognizer for canonical counted loops — the shape {!Lower}
    produces for a [for] loop:

    {v
    pre:  ... v := lo ...            jump h
    h:    c := icmp.le v, limit      branch c, bb, exit
    bb:   <body, v := v + 1 once>    jump h
    v}

    with loop body [{h, bb}] and the comparison register used nowhere
    else.  Both the unroller and the software pipeliner key on this
    shape. *)

type t = {
  header : int;
  body_block : int;
  exit : int;
  preheader : int;
  var : Ir.reg; (** the induction variable *)
  cmp_reg : Ir.reg; (** the guard condition (dead outside the branch) *)
  lo : int option; (** constant initial value, when recognizable *)
  hi : int option; (** constant bound, when recognizable *)
}

val trip : t -> int option
(** [max 0 (hi - lo + 1)] when both bounds are constant. *)

val recognize : Ir.func -> Loops.loop -> t option
