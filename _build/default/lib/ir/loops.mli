(** Natural-loop detection from back edges.

    A back edge is an edge [n -> h] where [h] dominates [n]; the
    natural loop of that edge is [h] plus every block that can reach
    [n] without passing through [h].  Loops sharing a header are
    merged. *)

module Iset : Set.S with type elt = int

type loop = {
  header : int;
  body : Iset.t; (** includes the header *)
  latches : int list; (** sources of the back edges *)
  exits : (int * int) list; (** (block in loop, target outside) *)
}

val find : Ir.func -> loop list
(** All natural loops, smaller bodies first. *)

val innermost : loop list -> loop list
(** Loops containing no other loop. *)

val nesting_depth : Ir.func -> int
(** Maximum number of loops containing any one block — an input to the
    compilation cost model and scheduling heuristics. *)
