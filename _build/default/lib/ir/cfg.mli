(** Control-flow-graph utilities over {!Ir.func}: successor/predecessor
    maps, reachability, unreachable-block elimination and jump
    threading.  Passes renumber blocks, so indices are only stable
    between passes. *)

val successors : Ir.func -> int list array
val predecessors : Ir.func -> int list array

val reachable : Ir.func -> bool array
(** Blocks reachable from the entry. *)

val map_term_labels : (int -> int) -> Ir.term -> Ir.term
(** Apply a relabeling to a terminator's targets. *)

val remove_unreachable : Ir.func -> int
(** Drop unreachable blocks and renumber; returns how many were
    removed. *)

val thread_jumps : Ir.func -> int
(** Bypass empty forwarding blocks; returns rewritten edge count. *)

val merge_straightline : Ir.func -> int
(** Merge blocks into unique jumping predecessors; returns merge
    count. *)

val simplify : Ir.func -> int
(** {!thread_jumps} + {!remove_unreachable} + {!merge_straightline};
    the normalization run between optimization passes. *)

val reverse_postorder : Ir.func -> int list
(** Reverse postorder of the reachable blocks, entry first. *)
