(** Full unrolling of constant-trip innermost counted loops (the
    optimization the paper names among those that "increase the size of
    the program to be compiled").

    Registers need no renaming: the copies execute sequentially with
    exactly the per-iteration register semantics of the original loop,
    and the increments are kept so the loop variable's final value is
    preserved. *)

val max_trip : int
val max_growth : int

val run : Ir.func -> int
(** Returns the number of loops unrolled. *)
