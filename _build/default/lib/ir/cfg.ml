(* Control-flow-graph utilities over [Ir.func]: successor/predecessor
   maps, reachability, unreachable-block elimination and jump threading.
   Passes renumber blocks, so indices are only stable between passes. *)

let successors (f : Ir.func) : int list array =
  Array.map (fun (b : Ir.block) -> Ir.successors b.term) f.blocks

let predecessors (f : Ir.func) : int list array =
  let preds = Array.make (Array.length f.blocks) [] in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Ir.successors b.term))
    f.blocks;
  Array.map List.rev preds

let reachable (f : Ir.func) : bool array =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit (Ir.successors f.blocks.(i).term)
    end
  in
  if n > 0 then visit Ir.entry_block;
  seen

let map_term_labels g = function
  | Ir.Jump l -> Ir.Jump (g l)
  | Ir.Branch (c, t, e) -> Ir.Branch (c, g t, g e)
  | Ir.Ret v -> Ir.Ret v

(* Remove unreachable blocks and renumber.  Returns the number of blocks
   removed. *)
let remove_unreachable (f : Ir.func) : int =
  let seen = reachable f in
  let n = Array.length f.blocks in
  let alive = Array.to_list (Array.mapi (fun i s -> (i, s)) seen) in
  let kept = List.filter_map (fun (i, s) -> if s then Some i else None) alive in
  let removed = n - List.length kept in
  if removed > 0 then begin
    let remap = Array.make n (-1) in
    List.iteri (fun fresh old -> remap.(old) <- fresh) kept;
    let blocks =
      List.map
        (fun old ->
          let b = f.blocks.(old) in
          { b with Ir.term = map_term_labels (fun l -> remap.(l)) b.term })
        kept
    in
    f.blocks <- Array.of_list blocks
  end;
  removed

(* Collapse chains of empty forwarding blocks: a block consisting of a
   lone [Jump l] can be bypassed by its predecessors.  Returns the number
   of edges rewritten. *)
let thread_jumps (f : Ir.func) : int =
  let n = Array.length f.blocks in
  (* Resolve the final target of a forwarding chain, guarding against
     cycles of empty blocks. *)
  let resolve l =
    let rec chase l hops =
      if hops > n then l
      else
        match f.blocks.(l) with
        | { Ir.instrs = []; term = Ir.Jump next } when next <> l ->
          chase next (hops + 1)
        | _ -> l
    in
    chase l 0
  in
  let changed = ref 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      let rewrite l =
        let target = resolve l in
        if target <> l then incr changed;
        target
      in
      let term = map_term_labels rewrite b.term in
      (* A branch whose arms now coincide is a jump. *)
      let term =
        match term with
        | Ir.Branch (_, t, e) when t = e -> Ir.Jump t
        | other -> other
      in
      f.blocks.(i) <- { b with Ir.term })
    f.blocks;
  !changed

(* Merge a block into its unique predecessor when that predecessor jumps
   straight to it.  Returns the number of merges. *)
let merge_straightline (f : Ir.func) : int =
  let merged = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = predecessors f in
    let n = Array.length f.blocks in
    (try
       for i = 0 to n - 1 do
         match f.blocks.(i).term with
         | Ir.Jump j
           when j <> i && j <> Ir.entry_block
                && (match preds.(j) with [ p ] -> p = i | _ -> false)
                && not (List.mem j (Ir.successors f.blocks.(j).term)) ->
           let a = f.blocks.(i) and b = f.blocks.(j) in
           f.blocks.(i) <-
             { Ir.instrs = a.instrs @ b.instrs; term = b.term };
           f.blocks.(j) <- { Ir.instrs = []; term = Ir.Jump i };
           (* The forwarding stub left at [j] is unreachable now. *)
           ignore (remove_unreachable f);
           incr merged;
           continue_ := true;
           raise Exit
         | _ -> ()
       done
     with Exit -> ())
  done;
  !merged

(* Normalization run between optimization passes. *)
let simplify (f : Ir.func) : int =
  let a = thread_jumps f in
  let b = remove_unreachable f in
  let c = merge_straightline f in
  a + b + c

(* Reverse postorder of the reachable blocks: the iteration order used by
   forward dataflow problems. *)
let reverse_postorder (f : Ir.func) : int list =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit (Ir.successors f.blocks.(i).term);
      order := i :: !order
    end
  in
  if n > 0 then visit Ir.entry_block;
  !order
