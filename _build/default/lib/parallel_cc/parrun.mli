(** The parallel compiler on the simulated host (paper, section 3.2):
    master → section masters → function masters, with FCFS workstation
    claiming, per-process Lisp startup, source re-parsing, result
    combining and the sequential phases 1 and 4 in the master.

    With {!Config.t.fine_grained} set, each task splits into a phase-2
    and a phase-3 task connected by an IR file on the server — the
    "finer grain parallelism" the paper's section 5 anticipates. *)

type outcome = {
  run : Timings.run;
  station_of_task : (string * int) list;
      (** head function of each task → workstation id *)
}

type stats = {
  mutable master_cpu : float;
  mutable section_cpu : float;
  mutable extra_parse_cpu : float;
  mutable placements : (string * int) list;
}

val master_process :
  Config.t ->
  Netsim.Des.t ->
  Netsim.Host.cluster ->
  noise:(int -> float) ->
  salt:int ->
  Driver.Compile.module_work ->
  Plan.t ->
  stats:stats ->
  on_finish:(float -> unit) ->
  unit ->
  unit
(** The spawnable master body; several can share a cluster (the
    combined strategy of the parallel-make study). *)

val run : Config.t -> Driver.Compile.module_work -> Plan.t -> outcome
(** One parallel compilation on a fresh cluster. *)
