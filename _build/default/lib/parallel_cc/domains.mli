(** Real multicore execution of the master / section-master /
    function-master hierarchy using OCaml domains.

    The discrete-event simulation reproduces the paper's measurements
    on a period-accurate host; this driver demonstrates that the same
    orchestration runs the {e actual} compiler in parallel on today's
    hardware: one domain per function master, FCFS over a bounded pool,
    sections independent, phases 1 and 4 sequential — the structure of
    the paper's figure 2. *)

type result = {
  images : (string * Warp.Mcode.image) list; (** per section *)
  functions_compiled : int;
  wall_seconds : float;
}

val compile_parallel :
  ?workers:int -> ?level:int -> W2.Ast.modul -> result
(** Compile with up to [workers] function masters running as domains.
    @raise Driver.Compile.Compile_error on phase-1 failure. *)
