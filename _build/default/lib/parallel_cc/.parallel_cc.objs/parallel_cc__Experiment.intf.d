lib/parallel_cc/experiment.mli: Config Driver Makerun Timings W2
