lib/parallel_cc/config.mli: Driver Netsim
