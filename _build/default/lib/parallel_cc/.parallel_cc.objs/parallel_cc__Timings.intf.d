lib/parallel_cc/timings.mli:
