lib/parallel_cc/domains.mli: W2 Warp
