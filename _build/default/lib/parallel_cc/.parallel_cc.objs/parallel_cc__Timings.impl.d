lib/parallel_cc/timings.ml: Stats
