lib/parallel_cc/makerun.mli: Config Driver
