lib/parallel_cc/makerun.ml: Config Driver List Netsim Parrun Plan Seqrun
