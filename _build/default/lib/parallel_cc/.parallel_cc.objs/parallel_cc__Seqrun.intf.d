lib/parallel_cc/seqrun.mli: Config Driver Netsim Timings
