lib/parallel_cc/seqrun.ml: Config Driver List Netsim Timings
