lib/parallel_cc/parrun.ml: Config Driver List Netsim Plan Seqrun Timings
