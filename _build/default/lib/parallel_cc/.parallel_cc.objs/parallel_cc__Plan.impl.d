lib/parallel_cc/plan.ml: Array Driver Float List
