lib/parallel_cc/config.ml: Array Driver Netsim
