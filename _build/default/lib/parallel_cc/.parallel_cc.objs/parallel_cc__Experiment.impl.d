lib/parallel_cc/experiment.ml: Config Driver Hashtbl List Makerun Parrun Plan Printf Seqrun Stats String Timings W2
