lib/parallel_cc/plan.mli: Driver
