lib/parallel_cc/parrun.mli: Config Driver Netsim Plan Timings
