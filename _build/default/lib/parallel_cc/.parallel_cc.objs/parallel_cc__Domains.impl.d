lib/parallel_cc/domains.ml: Array Atomic Condition Domain Driver List Mutex Option Queue String Sys W2 Warp
