lib/driver/compile.mli: Hashtbl Midend W2 Warp
