lib/driver/cost.mli: Compile
