lib/driver/compile.ml: Hashtbl List Midend Option Printf String W2 Warp
