lib/driver/cost.ml: Compile List
