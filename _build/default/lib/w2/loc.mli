(** Source locations.  Every token, AST node and diagnostic carries one,
    so per-function diagnostics can be merged back into file order by
    the section masters. *)

type t = { file : string; line : int; col : int }

val make : file:string -> line:int -> col:int -> t

val dummy : t
(** The location of synthesized code. *)

val to_string : t -> string
(** ["file:line:col"]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Order by file, then position. *)
