(** Recursive-descent parser for the W2-flavoured language.

    Grammar sketch:
    {v
    module   ::= "module" ID section+ "end"
    section  ::= "section" ID "cells" INT function+ "end"
    function ::= "function" ID "(" params? ")" [":" type]
                 decl* "begin" stmt* "end"
    stmt     ::= lvalue ":=" expr ";" | "if" ... | "while" ... |
                 "for" ID ":=" expr "to" expr "do" ... "end" ";" |
                 "send" "(" chan "," expr ")" ";" |
                 "receive" "(" chan "," lvalue ")" ";" |
                 "return" [expr] ";" | ID "(" args ")" ";"
    v}
    Expression precedence: [or < and < comparison < additive <
    multiplicative < unary < primary]. *)

exception Error of string * Loc.t

val module_of_string : ?file:string -> string -> Ast.modul
(** Parse a complete module.  @raise Error on syntax errors. *)

val function_of_string : ?file:string -> string -> Ast.func
(** Parse a single function definition (test/tool helper). *)

val expr_of_string : ?file:string -> string -> Ast.expr
(** Parse a single expression (test helper). *)
