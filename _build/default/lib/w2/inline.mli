(** Procedure inlining (the paper's section 5.1) and call-graph
    pruning.

    A callee is inlinable when it is small, has no calls of its own,
    declares no array locals, and returns only as its last statement.
    A call site is expanded when its evaluation point is unconditional
    within its statement — not under the short-circuit right operand of
    [and]/[or] and not in a [while] condition.  Expansion preserves
    semantics exactly (argument evaluation order, channel traffic,
    fresh zero-initialized locals per activation). *)

type stats = {
  mutable inlined : int; (** call sites expanded *)
  mutable skipped : int; (** call sites left alone *)
}

val default_max_lines : int
(** Size threshold below which a function is considered "small" (45,
    the upper end of the user program's small functions). *)

val inlinable : max_lines:int -> Ast.func -> bool

val expand_section : ?max_lines:int -> Ast.section -> Ast.section * stats
(** Expand eligible call sites throughout one section.  Inlined callees
    are kept (they may still be called from skipped sites or serve as
    entry points); see {!prune_section}. *)

val expand_module : ?max_lines:int -> Ast.modul -> Ast.modul * stats

val prune_section : roots:string list -> Ast.section -> Ast.section
(** Drop functions unreachable (by direct calls) from [roots] — the
    grain-coarsening companion of {!expand_section}. *)
