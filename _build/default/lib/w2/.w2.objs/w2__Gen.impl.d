lib/w2/gen.ml: Ast Hashtbl List Loc Pretty Printf
