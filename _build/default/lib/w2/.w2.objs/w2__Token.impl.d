lib/w2/token.ml:
