lib/w2/semcheck.ml: Ast Hashtbl List Loc Printf
