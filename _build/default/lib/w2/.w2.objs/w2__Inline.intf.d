lib/w2/inline.mli: Ast
