lib/w2/token.mli:
