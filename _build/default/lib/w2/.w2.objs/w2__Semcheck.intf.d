lib/w2/semcheck.mli: Ast Loc
