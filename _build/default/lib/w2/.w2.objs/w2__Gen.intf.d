lib/w2/gen.mli: Ast
