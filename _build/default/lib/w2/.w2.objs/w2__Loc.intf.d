lib/w2/loc.mli: Format
