lib/w2/pretty.mli: Ast Format
