lib/w2/inline.ml: Ast Hashtbl List Loc Option Printf
