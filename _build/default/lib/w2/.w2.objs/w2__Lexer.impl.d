lib/w2/lexer.ml: List Loc Printf String Token
