lib/w2/pretty.ml: Ast Float Format List Printf String
