lib/w2/lexer.mli: Loc Token
