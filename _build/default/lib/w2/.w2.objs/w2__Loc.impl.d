lib/w2/loc.ml: Format Printf String
