lib/w2/ast.ml: List Loc Option Printf
