lib/w2/interp.ml: Array Ast Hashtbl List Loc Option Printf Queue
