lib/w2/interp.mli: Ast Loc
