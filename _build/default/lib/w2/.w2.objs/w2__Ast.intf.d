lib/w2/ast.mli: Loc
