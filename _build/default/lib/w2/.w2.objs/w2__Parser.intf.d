lib/w2/parser.mli: Ast Loc
