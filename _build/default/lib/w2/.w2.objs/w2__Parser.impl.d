lib/w2/parser.ml: Ast Lexer List Loc Printf String Token
