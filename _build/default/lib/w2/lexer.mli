(** Hand-written lexer for the W2-flavoured language.

    Comments run from ["--"] to end of line.  Numbers are decimal; a
    number containing ['.'] or an exponent is a float literal.
    Keywords are case-insensitive. *)

exception Error of string * Loc.t

type t
(** Lexer state over one in-memory source buffer. *)

val create : ?file:string -> string -> t
(** [create ~file source] starts lexing [source]; [file] names it in
    locations (default ["<string>"]). *)

val next : t -> Token.t * Loc.t
(** The next token and the location of its first character; returns
    {!Token.EOF} at the end (repeatedly).  @raise Error on malformed
    input. *)

val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
(** The whole token stream, EOF included.  Used by tests and by the
    cost model, which charges phase 1 per token. *)
