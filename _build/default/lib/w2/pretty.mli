(** Pretty printer producing valid W2 source.

    Round-tripping through {!Parser.module_of_string} is a test
    invariant, and the line count of the rendered text is the "lines of
    code" metric of the paper's section 4.1. *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_stmts : indent:int -> Format.formatter -> Ast.stmt list -> unit
val pp_func : indent:int -> Format.formatter -> Ast.func -> unit
val pp_section : Format.formatter -> Ast.section -> unit
val pp_module : Format.formatter -> Ast.modul -> unit

val module_to_string : Ast.modul -> string
val func_to_string : Ast.func -> string
val expr_to_string : Ast.expr -> string

val source_lines : string -> int
(** Physical line count of rendered source — the paper's LoC metric. *)

val module_loc : Ast.modul -> int
(** Lines of the module as this printer renders it. *)

val func_loc : Ast.func -> int
(** Lines of the function as this printer renders it. *)
