(* Source locations.  Every token, AST node and diagnostic carries one so
   that the section masters can merge per-function diagnostics back into
   file order, as the paper's section masters do for compiler output. *)

type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let dummy = { file = "<none>"; line = 0; col = 0 }
let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col
let pp fmt loc = Format.pp_print_string fmt (to_string loc)

(* Order by position within one file; used to sort merged diagnostics. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c
