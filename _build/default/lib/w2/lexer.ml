(* Hand-written lexer for the W2-flavoured language.

   Comments run from "--" to end of line.  Numbers are decimal; a number
   containing '.' or an exponent is a float literal. *)

exception Error of string * Loc.t

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1; bol = 0 }

let location lexer =
  Loc.make ~file:lexer.file ~line:lexer.line ~col:(lexer.pos - lexer.bol + 1)

let error lexer msg = raise (Error (msg, location lexer))
let at_end lexer = lexer.pos >= String.length lexer.src
let peek lexer = if at_end lexer then '\000' else lexer.src.[lexer.pos]

let peek2 lexer =
  if lexer.pos + 1 >= String.length lexer.src then '\000'
  else lexer.src.[lexer.pos + 1]

let advance lexer =
  (if peek lexer = '\n' then begin
     lexer.line <- lexer.line + 1;
     lexer.bol <- lexer.pos + 1
   end);
  lexer.pos <- lexer.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_trivia lexer =
  match peek lexer with
  | ' ' | '\t' | '\r' | '\n' ->
    advance lexer;
    skip_trivia lexer
  | '-' when peek2 lexer = '-' ->
    while (not (at_end lexer)) && peek lexer <> '\n' do
      advance lexer
    done;
    skip_trivia lexer
  | _ -> ()

let lex_number lexer =
  let start = lexer.pos in
  while is_digit (peek lexer) do
    advance lexer
  done;
  let is_float = ref false in
  (if peek lexer = '.' && is_digit (peek2 lexer) then begin
     is_float := true;
     advance lexer;
     while is_digit (peek lexer) do
       advance lexer
     done
   end);
  (if peek lexer = 'e' || peek lexer = 'E' then begin
     is_float := true;
     advance lexer;
     if peek lexer = '+' || peek lexer = '-' then advance lexer;
     if not (is_digit (peek lexer)) then error lexer "malformed exponent";
     while is_digit (peek lexer) do
       advance lexer
     done
   end);
  let text = String.sub lexer.src start (lexer.pos - start) in
  if !is_float then Token.FLOAT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Token.INT n
    | None -> error lexer ("integer literal out of range: " ^ text)

let lex_ident lexer =
  let start = lexer.pos in
  while is_alnum (peek lexer) do
    advance lexer
  done;
  let text = String.sub lexer.src start (lexer.pos - start) in
  match List.assoc_opt (String.lowercase_ascii text) Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT text

(* Return the next token together with the location of its first
   character. *)
let next lexer =
  skip_trivia lexer;
  let loc = location lexer in
  let single tok =
    advance lexer;
    tok
  in
  let tok =
    if at_end lexer then Token.EOF
    else
      match peek lexer with
      | c when is_digit c -> lex_number lexer
      | c when is_alpha c -> lex_ident lexer
      | '(' -> single Token.LPAREN
      | ')' -> single Token.RPAREN
      | '[' -> single Token.LBRACKET
      | ']' -> single Token.RBRACKET
      | ',' -> single Token.COMMA
      | ';' -> single Token.SEMI
      | '+' -> single Token.PLUS
      | '-' -> single Token.MINUS
      | '*' -> single Token.STAR
      | '/' -> single Token.SLASH
      | '=' -> single Token.EQ
      | ':' ->
        advance lexer;
        if peek lexer = '=' then begin
          advance lexer;
          Token.ASSIGN
        end
        else Token.COLON
      | '<' ->
        advance lexer;
        (match peek lexer with
        | '=' ->
          advance lexer;
          Token.LE
        | '>' ->
          advance lexer;
          Token.NE
        | _ -> Token.LT)
      | '>' ->
        advance lexer;
        if peek lexer = '=' then begin
          advance lexer;
          Token.GE
        end
        else Token.GT
      | c -> error lexer (Printf.sprintf "unexpected character %C" c)
  in
  (tok, loc)

(* Tokenize a whole string; used by tests and by the cost model, which
   charges phase 1 per token. *)
let tokenize ?file src =
  let lexer = create ?file src in
  let rec loop acc =
    let tok, loc = next lexer in
    if tok = Token.EOF then List.rev ((tok, loc) :: acc)
    else loop ((tok, loc) :: acc)
  in
  loop []
