(** Reference interpreter for W2 functions.

    It defines the semantics against which every later stage is tested:
    the IR after each optimization pass and the code executed by the
    Warp cell simulator must agree with this interpreter on all inputs.

    Channels are provided by the caller, so a function can be run
    either stand-alone (with scripted channel data) or as one cell of a
    systolic array. *)

type value = Vint of int | Vfloat of float | Vbool of bool | Varray of value array

exception Runtime_error of string * Loc.t
exception Out_of_fuel

type channels = {
  recv : Ast.channel -> value; (** may raise to model an empty input *)
  send : Ast.channel -> value -> unit;
}

val null_channels : channels
(** Sends vanish; receives raise {!Runtime_error}. *)

val queue_channels :
  input_x:value list -> input_y:value list ->
  channels * (unit -> value list * value list)
(** Channels backed by queues: scripted input, recorded output.  The
    second component returns the (X, Y) output recorded so far. *)

val value_to_string : value -> string

val default_value : Ast.ty -> value
(** The zero value of a type — what locals start as. *)

val run_function :
  ?fuel:int ->
  ?channels:channels ->
  Ast.section ->
  name:string ->
  args:value list ->
  value option
(** Run one function of a (checked) section with the given arguments;
    intra-section calls are resolved against the section.  [fuel]
    bounds executed statements (default two million).
    @raise Out_of_fuel when the budget runs out.
    @raise Runtime_error on dynamic errors (division by zero,
    out-of-bounds indices, empty channels, ...). *)
