lib/warp/verify.ml: Array Ddg Hashtbl List Machine Mcode Midend Printf
