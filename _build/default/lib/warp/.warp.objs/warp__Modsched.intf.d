lib/warp/modsched.mli: Ddg Mcode Midend
