lib/warp/codegen.ml: Array Counted Hashtbl Ir List Listsched Loops Mcode Midend Modsched Regalloc Rename_locals
