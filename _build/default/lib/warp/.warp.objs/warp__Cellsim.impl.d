lib/warp/cellsim.ml: Array Hashtbl Ir Ir_interp List Machine Mcode Midend Option Printf Queue W2
