lib/warp/arraysim.ml: Array Cellsim List Machine Mcode Queue W2
