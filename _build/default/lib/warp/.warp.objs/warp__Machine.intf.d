lib/warp/machine.mli: Midend
