lib/warp/asm.mli: Mcode
