lib/warp/mcode.ml: Array Buffer List Machine Midend Printf String
