lib/warp/link.ml: Array List Mcode
