lib/warp/rename_locals.ml: Array Hashtbl Ir List Liveness Machine Midend Option Queue
