lib/warp/ddg.ml: Array Ir List Machine Midend
