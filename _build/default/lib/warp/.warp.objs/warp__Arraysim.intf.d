lib/warp/arraysim.mli: Cellsim Mcode
