lib/warp/codegen.mli: Mcode Midend
