lib/warp/iodriver.ml: Array Asm Buffer List Mcode Printf
