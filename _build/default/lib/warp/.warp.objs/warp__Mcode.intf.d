lib/warp/mcode.mli: Machine Midend
