lib/warp/asm.ml: Array Buffer Char Int64 List Machine Mcode Midend Printf String W2
