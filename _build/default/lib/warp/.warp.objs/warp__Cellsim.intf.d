lib/warp/cellsim.mli: Mcode Midend W2
