lib/warp/rename_locals.mli: Midend
