lib/warp/listsched.mli: Mcode Midend
