lib/warp/regalloc.mli: Midend
