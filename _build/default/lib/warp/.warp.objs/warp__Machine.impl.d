lib/warp/machine.ml: Midend
