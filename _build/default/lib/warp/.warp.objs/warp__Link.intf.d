lib/warp/link.mli: Mcode
