lib/warp/modsched.ml: Array Ddg Hashtbl Ir List Machine Mcode Midend Option
