lib/warp/listsched.ml: Array Ddg Fun Ir List Machine Mcode Midend
