lib/warp/regalloc.ml: Array Hashtbl Ir List Liveness Machine Midend Option Queue
