lib/warp/iodriver.mli: Mcode
