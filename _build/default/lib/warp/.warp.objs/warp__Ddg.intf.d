lib/warp/ddg.mli: Midend
