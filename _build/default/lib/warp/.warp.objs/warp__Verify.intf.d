lib/warp/verify.mli: Mcode
