(** Data-dependence graphs over the operations of one basic block.

    Edges carry (delay, distance): a dependence from [a] to [b] with
    distance [d] means instance (b, iteration k+d) must issue no
    earlier than issue(a, iteration k) + delay.  Distance-0 edges order
    operations of one iteration; distance-1 edges wrap around the loop
    (any pair, either program order, self-edges included) and are what
    the modulo scheduler prices. *)

type edge = { src : int; dst : int; delay : int; dist : int }

type t = {
  ops : Midend.Ir.instr array;
  edges : edge list;
  succs : (int * int * int) list array; (** (dst, delay, dist) *)
  preds : (int * int * int) list array; (** (src, delay, dist) *)
}

val hazard_delay : Midend.Ir.instr -> Midend.Ir.instr -> int option
(** Maximum delay of the register/memory/queue hazards between a first
    and a second operation; [None] when independent. *)

val build : ?loop:bool -> Midend.Ir.instr array -> t
(** [build ~loop:true] adds the wrapped distance-1 edges. *)

val heights : t -> int array
(** Critical-path height over distance-0 edges — the scheduling
    priority. *)
