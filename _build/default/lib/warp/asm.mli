(** Assembler — phase 4.

    Encodes a linked image into the binary download-module format and
    decodes it back (the decoder doubles as the loader).  The format is
    deliberately simple: length-prefixed strings, 8-byte big-endian
    words, one tag byte per field group. *)

exception Bad_object of string

val encode : Mcode.image -> string
val decode : string -> Mcode.image
(** Inverse of {!encode}.  @raise Bad_object on malformed input. *)

val encoded_size : Mcode.image -> int
(** Bytes of the download module; drives the network cost of program
    download in the host simulation. *)
