(** Static verifier for linked images.

    Validates the invariants the rest of the system relies on: physical
    register bounds, slot/functional-unit agreement, calls only as
    terminators, resolvable call targets with matching arity, declared
    arrays, in-range branch targets — and dependence legality of every
    non-pipelined block's schedule (hazard pairs separated by their
    delays).  Flat-emitted pipelined blocks interleave iterations, so
    they are checked for write-back well-definedness instead. *)

type violation = { v_func : string; v_block : int; v_message : string }

val violation_to_string : violation -> string

val image : Mcode.image -> violation list
(** All violations; [[]] means the image is valid. *)
