(* Modulo-friendly renaming of block-local temporaries.

   After whole-function register allocation, a loop body reuses a small
   set of physical registers at short distances.  Each reuse adds a
   wrapped anti-dependence [use -> next def, distance 1] that caps how
   far iterations may overlap, often forcing the initiation interval up
   to the full critical path — destroying software pipelining.

   This pass rewrites one block: every definition whose value dies
   inside the block (not live-out, not used by the terminator) is moved
   onto a register drawn FIFO from the pool of registers the block does
   not otherwise touch.  FIFO recycling maximizes reuse distance, so the
   surviving anti-dependences are slack.  Values that are live-in,
   live-out or used by the terminator keep their registers, preserving
   the interface of the block.  The rewrite is purely local and
   semantics-preserving. *)

open Midend

module Rset = Liveness.Rset

(* All registers mentioned by the block (defs, uses, terminator). *)
let mentioned (b : Ir.block) =
  let acc = ref Rset.empty in
  let add r = acc := Rset.add r !acc in
  List.iter
    (fun instr ->
      List.iter add (Ir.uses_of instr);
      match Ir.def_of instr with Some d -> add d | None -> ())
    b.instrs;
  List.iter add (Ir.term_uses b.term);
  !acc

(* Uses must be rewritten against the substitution as of *before* the
   instruction, so operands are computed strictly before [def_to] (which
   mutates the substitution — think [acc := acc + x]). *)
let rewrite_instr ~use_of ~def_to instr =
  let operand = function
    | Ir.Reg r -> Ir.Reg (use_of r)
    | (Ir.Imm_int _ | Ir.Imm_float _) as imm -> imm
  in
  match instr with
  | Ir.Bin (op, d, x, y) ->
    let x = operand x and y = operand y in
    Ir.Bin (op, def_to d, x, y)
  | Ir.Un (op, d, x) ->
    let x = operand x in
    Ir.Un (op, def_to d, x)
  | Ir.Mov (d, x) ->
    let x = operand x in
    Ir.Mov (def_to d, x)
  | Ir.Sel (d, c, a, b) ->
    let c = operand c and a = operand a and b = operand b in
    Ir.Sel (def_to d, c, a, b)
  | Ir.Load (d, a, i) ->
    let i = operand i in
    Ir.Load (def_to d, a, i)
  | Ir.Store (a, i, v) -> Ir.Store (a, operand i, operand v)
  | Ir.Call (d, name, args) ->
    let args = List.map operand args in
    Ir.Call (Option.map def_to d, name, args)
  | Ir.Send (c, v) -> Ir.Send (c, operand v)
  | Ir.Recv (c, d) -> Ir.Recv (c, def_to d)

(* Rename block [bi] of [f] in place. *)
let run (f : Ir.func) bi =
  let liveness = Liveness.compute f in
  let b = f.Ir.blocks.(bi) in
  let live_in = liveness.Liveness.live_in.(bi) in
  let live_out = liveness.Liveness.live_out.(bi) in
  let term_used = Rset.of_list (Ir.term_uses b.Ir.term) in
  let keep = Rset.union live_out term_used in
  let pool =
    (* Ring registers must be untouched by the block AND hold no value
       that lives into or out of it — a register can carry a live value
       straight through a block without being mentioned by it. *)
    let off_limits =
      Rset.union (mentioned b) (Rset.union live_in (Rset.union live_out term_used))
    in
    let rec collect r acc =
      if r < 0 then acc
      else collect (r - 1) (if Rset.mem r off_limits then acc else r :: acc)
    in
    Queue.of_seq (List.to_seq (collect (Machine.num_regs - 1) []))
  in
  (* Forward scan with an active substitution for uses.  When a def is
     renameable, its ring register is reserved until the next def of the
     original register (the end of this value's uses); rings freed at
     that point go to the back of the queue. *)
  let subst = Hashtbl.create 16 in (* original reg -> ring reg *)
  let owner = Hashtbl.create 16 in (* ring reg -> original reg *)
  let use_of r = match Hashtbl.find_opt subst r with Some n -> n | None -> r in
  let instrs =
    List.map
      (fun instr ->
        (* Rewrite uses against the substitution as of *before* this
           instruction, then retire/install the def's mapping. *)
        let def = Ir.def_of instr in
        let def_to d =
          (* The previous value of [d] dies here; its ring register (if
             any) becomes reusable. *)
          (match Hashtbl.find_opt subst d with
          | Some ring ->
            Hashtbl.remove subst d;
            Hashtbl.remove owner ring;
            Queue.push ring pool
          | None -> ());
          if Rset.mem d keep then d
          else
            match Queue.take_opt pool with
            | Some ring ->
              Hashtbl.replace subst d ring;
              Hashtbl.replace owner ring d;
              ring
            | None -> d
        in
        ignore def;
        rewrite_instr ~use_of ~def_to instr)
      b.Ir.instrs
  in
  f.Ir.blocks.(bi) <- { b with Ir.instrs }
