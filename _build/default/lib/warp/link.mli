(** Linking — part of phase 4: combine the compiled functions of one
    section into a downloadable cell image, assigning function indices,
    building the symbol table and checking that every call target
    resolves with the right arity. *)

exception Undefined_symbol of string * string
(** Caller and callee names. *)

exception Arity_mismatch of string * string * int * int
(** Caller, callee, expected argument count, actual argument count. *)

val link : section:string -> cells:int -> Mcode.mfunc list -> Mcode.image
