(* Linear-scan register allocation (Poletto/Sarkar style).

   Virtual registers get single conservative live intervals over a
   linearization of the blocks (intervals are extended over whole blocks
   where the register is live-in/live-out, which makes interval overlap
   a sound approximation of interference under any control flow).

   When pressure exceeds the allocatable registers, the active interval
   with the furthest end is spilled to a per-activation array [$spill];
   spill code uses the reserved scratch registers.  Allocation restarts
   after rewriting, and terminates because every restart strictly grows
   the spill set. *)

open Midend

type result = {
  func : Ir.func; (* registers are physical: < Machine.num_regs *)
  param_locs : int list;
  spilled : int; (* total spill slots *)
}

exception Too_many_params of string

let spill_array = "$spill"

(* --- live intervals --- *)

type interval = {
  vreg : int;
  mutable lo : int;
  mutable hi : int; (* half open: [lo, hi) *)
  is_param : bool;
}

let intervals_of (f : Ir.func) : interval list =
  let nregs = Ir.num_regs f in
  let params = List.map (fun (_, _, r) -> r) f.params in
  let table = Hashtbl.create 64 in
  let touch r pos =
    match Hashtbl.find_opt table r with
    | Some itv ->
      itv.lo <- min itv.lo pos;
      itv.hi <- max itv.hi (pos + 1)
    | None ->
      Hashtbl.replace table r
        { vreg = r; lo = pos; hi = pos + 1; is_param = List.mem r params }
  in
  let liveness = Liveness.compute f in
  let pos = ref 0 in
  Array.iteri
    (fun bi (b : Ir.block) ->
      let block_start = !pos in
      List.iter
        (fun instr ->
          List.iter (fun r -> touch r !pos) (Ir.uses_of instr);
          (match Ir.def_of instr with Some d -> touch d !pos | None -> ());
          incr pos)
        b.instrs;
      (* terminator position *)
      List.iter (fun r -> touch r !pos) (Ir.term_uses b.term);
      let block_end = !pos in
      incr pos;
      Liveness.Rset.iter
        (fun r -> touch r block_start)
        liveness.Liveness.live_in.(bi);
      Liveness.Rset.iter
        (fun r -> touch r block_end)
        liveness.Liveness.live_out.(bi))
    f.blocks;
  (* Parameters are live from function entry. *)
  List.iter
    (fun r ->
      match Hashtbl.find_opt table r with
      | Some itv -> itv.lo <- 0
      | None -> Hashtbl.replace table r { vreg = r; lo = 0; hi = 1; is_param = true })
    params;
  ignore nregs;
  Hashtbl.fold (fun _ itv acc -> itv :: acc) table []
  |> List.sort (fun a b -> compare (a.lo, a.vreg) (b.lo, b.vreg))

(* --- one allocation attempt --- *)

type attempt = Assigned of (int, int) Hashtbl.t | Spill of int list

let try_allocate ~reg_limit (f : Ir.func) : attempt =
  let intervals = intervals_of f in
  let assignment = Hashtbl.create 64 in
  let free = Queue.create () in
  for r = 0 to reg_limit - 1 do
    Queue.push r free
  done;
  let active = ref [] in (* sorted by hi ascending *)
  let to_spill = ref [] in
  let expire pos =
    let expired, still = List.partition (fun itv -> itv.hi <= pos) !active in
    List.iter
      (fun itv -> Queue.push (Hashtbl.find assignment itv.vreg) free)
      expired;
    active := still
  in
  List.iter
    (fun itv ->
      expire itv.lo;
      if Queue.is_empty free then begin
        (* Spill the non-param interval with the furthest end. *)
        let candidates =
          List.filter (fun a -> not a.is_param) (itv :: !active)
        in
        match
          List.sort (fun a b -> compare b.hi a.hi) candidates
        with
        | [] -> raise (Too_many_params f.Ir.name)
        | victim :: _ ->
          to_spill := victim.vreg :: !to_spill;
          if victim.vreg <> itv.vreg then begin
            (* Steal the victim's register for the new interval. *)
            let preg = Hashtbl.find assignment victim.vreg in
            Hashtbl.remove assignment victim.vreg;
            Hashtbl.replace assignment itv.vreg preg;
            active := itv :: List.filter (fun a -> a.vreg <> victim.vreg) !active;
            active := List.sort (fun a b -> compare a.hi b.hi) !active
          end
      end
      else begin
        Hashtbl.replace assignment itv.vreg (Queue.pop free);
        active := List.sort (fun a b -> compare a.hi b.hi) (itv :: !active)
      end)
    intervals;
  if !to_spill = [] then Assigned assignment else Spill !to_spill

(* --- spill-code insertion --- *)

(* Rewrite [f] so that every access to a register of [spills] goes
   through the spill array.  [slot_of] maps a spilled vreg to its slot.
   Scratch registers are fresh *virtual* registers here (they get
   allocated in the next attempt — they have tiny intervals). *)
let insert_spill_code (f : Ir.func) spills slot_of =
  let fresh ty =
    let r = Array.length f.Ir.reg_ty in
    f.Ir.reg_ty <- Array.append f.Ir.reg_ty [| ty |];
    r
  in
  let is_spilled r = List.mem r spills in
  Array.iteri
    (fun bi (b : Ir.block) ->
      let out = ref [] in
      let emit i = out := i :: !out in
      let reload_operand = function
        | Ir.Reg r when is_spilled r ->
          let t = fresh f.Ir.reg_ty.(r) in
          emit (Ir.Load (t, spill_array, Ir.Imm_int (slot_of r)));
          Ir.Reg t
        | other -> other
      in
      let rewrite_def instr =
        match Ir.def_of instr with
        | Some d when is_spilled d ->
          let t = fresh f.Ir.reg_ty.(d) in
          let instr' =
            match instr with
            | Ir.Bin (op, _, x, y) -> Ir.Bin (op, t, x, y)
            | Ir.Un (op, _, x) -> Ir.Un (op, t, x)
            | Ir.Mov (_, x) -> Ir.Mov (t, x)
            | Ir.Sel (_, c, a, b) -> Ir.Sel (t, c, a, b)
            | Ir.Load (_, a, i) -> Ir.Load (t, a, i)
            | Ir.Recv (c, _) -> Ir.Recv (c, t)
            | Ir.Call (Some _, name, args) -> Ir.Call (Some t, name, args)
            | Ir.Call (None, _, _) | Ir.Store _ | Ir.Send _ -> instr
          in
          emit instr';
          emit (Ir.Store (spill_array, Ir.Imm_int (slot_of d), Ir.Reg t))
        | _ -> emit instr
      in
      List.iter
        (fun instr ->
          let instr =
            match instr with
            | Ir.Bin (op, d, x, y) -> Ir.Bin (op, d, reload_operand x, reload_operand y)
            | Ir.Un (op, d, x) -> Ir.Un (op, d, reload_operand x)
            | Ir.Mov (d, x) -> Ir.Mov (d, reload_operand x)
            | Ir.Sel (d, c, a, b) ->
              Ir.Sel (d, reload_operand c, reload_operand a, reload_operand b)
            | Ir.Load (d, a, i) -> Ir.Load (d, a, reload_operand i)
            | Ir.Store (a, i, v) -> Ir.Store (a, reload_operand i, reload_operand v)
            | Ir.Call (d, name, args) -> Ir.Call (d, name, List.map reload_operand args)
            | Ir.Send (c, v) -> Ir.Send (c, reload_operand v)
            | Ir.Recv _ -> instr
          in
          rewrite_def instr)
        b.instrs;
      let term =
        match b.term with
        | Ir.Branch (c, t, e) -> Ir.Branch (reload_operand c, t, e)
        | Ir.Ret (Some v) -> Ir.Ret (Some (reload_operand v))
        | (Ir.Jump _ | Ir.Ret None) as t -> t
      in
      f.Ir.blocks.(bi) <- { Ir.instrs = List.rev !out; term })
    f.blocks

(* --- renaming to physical registers --- *)

let rename (f : Ir.func) assignment =
  let map r =
    match Hashtbl.find_opt assignment r with
    | Some p -> p
    | None -> 0 (* register never touched: dead, any physical reg works *)
  in
  let operand = function
    | Ir.Reg r -> Ir.Reg (map r)
    | imm -> imm
  in
  Array.iteri
    (fun bi (b : Ir.block) ->
      let instrs =
        List.map
          (fun instr ->
            match instr with
            | Ir.Bin (op, d, x, y) -> Ir.Bin (op, map d, operand x, operand y)
            | Ir.Un (op, d, x) -> Ir.Un (op, map d, operand x)
            | Ir.Mov (d, x) -> Ir.Mov (map d, operand x)
            | Ir.Sel (d, c, a, b) -> Ir.Sel (map d, operand c, operand a, operand b)
            | Ir.Load (d, a, i) -> Ir.Load (map d, a, operand i)
            | Ir.Store (a, i, v) -> Ir.Store (a, operand i, operand v)
            | Ir.Call (d, name, args) ->
              Ir.Call (Option.map map d, name, List.map operand args)
            | Ir.Send (c, v) -> Ir.Send (c, operand v)
            | Ir.Recv (c, d) -> Ir.Recv (c, map d))
          b.instrs
      in
      let term =
        match b.term with
        | Ir.Branch (c, t, e) -> Ir.Branch (operand c, t, e)
        | Ir.Ret (Some v) -> Ir.Ret (Some (operand v))
        | (Ir.Jump _ | Ir.Ret None) as t -> t
      in
      f.Ir.blocks.(bi) <- { Ir.instrs; term })
    f.blocks

let copy_func (f : Ir.func) =
  {
    f with
    Ir.blocks = Array.map (fun b -> { Ir.instrs = b.Ir.instrs; term = b.Ir.term }) f.Ir.blocks;
    reg_ty = Array.copy f.Ir.reg_ty;
  }

let run ?(reg_limit = Machine.num_allocatable) (fin : Ir.func) : result =
  if reg_limit < 4 then invalid_arg "Regalloc.run: need at least 4 registers";
  let f = copy_func fin in
  let spill_slots = Hashtbl.create 8 in
  let next_slot = ref 0 in
  let rec attempt budget =
    if budget = 0 then failwith ("Regalloc.run: spilling does not converge in " ^ f.Ir.name);
    match try_allocate ~reg_limit f with
    | Assigned assignment -> assignment
    | Spill regs ->
      List.iter
        (fun r ->
          if not (Hashtbl.mem spill_slots r) then begin
            Hashtbl.replace spill_slots r !next_slot;
            incr next_slot
          end)
        regs;
      insert_spill_code f regs (Hashtbl.find spill_slots);
      attempt (budget - 1)
  in
  let assignment = attempt 64 in
  let param_locs =
    List.map (fun (_, _, r) -> Hashtbl.find assignment r) f.Ir.params
  in
  rename f assignment;
  let arrays =
    if !next_slot > 0 then f.Ir.arrays @ [ (spill_array, !next_slot, Ir.Int) ]
    else f.Ir.arrays
  in
  let func =
    {
      f with
      Ir.arrays = arrays;
      (* After renaming, registers are physical; the per-register type
         table no longer applies (a physical register is retyped
         dynamically), so it is collapsed. *)
      reg_ty = Array.make Machine.num_regs Ir.Int;
    }
  in
  { func; param_locs; spilled = !next_slot }
