(** Linear-scan register allocation (Poletto/Sarkar style).

    Virtual registers get single conservative live intervals over a
    linearization of the blocks; interval overlap soundly approximates
    interference under any control flow.  Under pressure, the active
    interval with the furthest end is spilled to a per-activation
    [$spill] array; allocation restarts after rewriting and terminates
    because every restart strictly grows the spill set. *)

type result = {
  func : Midend.Ir.func; (** registers now physical *)
  param_locs : int list; (** where this function's arguments arrive *)
  spilled : int; (** spill slots allocated *)
}

exception Too_many_params of string

val spill_array : string
(** The reserved array name spill slots live in. *)

val copy_func : Midend.Ir.func -> Midend.Ir.func
(** Structural copy (blocks and register table); allocation mutates its
    input copy, never the caller's function. *)

val run : ?reg_limit:int -> Midend.Ir.func -> result
(** Allocate; [reg_limit] defaults to {!Machine.num_allocatable} (low
    values exercise spilling).
    @raise Too_many_params if parameters alone exceed the registers. *)
