(* Phase 3: code generation.

   Pipeline per function:
     1. find software-pipelining candidates (canonical counted loops
        with constant trip counts and call-free single-block bodies);
     2. register allocation (virtual -> physical, with spilling);
     3. split blocks at calls (calls become block terminators);
     4. schedule every block: modulo scheduling + flat emission for the
        pipelined loop bodies, list scheduling elsewhere.

   The returned statistics feed the compilation cost model: [sched_work]
   counts placement attempts, [pipelined]/[ii_total] describe the
   software pipelining outcome. *)

open Midend

type compiled = {
  mfunc : Mcode.mfunc;
  sched_work : int;
  spilled : int;
  pipelined : int; (* loops software-pipelined *)
  ii_total : int; (* sum of achieved initiation intervals *)
  wide_count : int;
}

let max_pipeline_trip = 64
let max_pipeline_ops = 512

(* Counted loops eligible for software pipelining. *)
let pipeline_candidates (f : Ir.func) =
  Loops.innermost (Loops.find f)
  |> List.filter_map (fun l ->
         match Counted.recognize f l with
         | Some c -> (
           match Counted.trip c with
           | Some trip
             when trip >= 2 && trip <= max_pipeline_trip
                  && (not
                        (List.exists
                           (fun i -> match i with Ir.Call _ -> true | _ -> false)
                           f.blocks.(c.body_block).instrs))
                  && List.length f.blocks.(c.body_block).instrs <= max_pipeline_ops ->
             Some (c, trip)
           | _ -> None)
         | None -> None)

(* Split blocks so that every call ends its block: a block with calls
   becomes a chain whose links end in a trailing [Ir.Call] marker that
   [translate_term] converts into a [Tcall] terminator. *)
let split_calls (f : Ir.func) =
  let extra = ref [] in (* appended blocks, reversed; ids follow array *)
  let next = ref (Array.length f.blocks) in
  let mkcall (dst, name, args) = Ir.Call (dst, name, args) in
  let split_block (b : Ir.block) : Ir.block =
    (* Cut the instruction list at every call. *)
    let rec segments acc current = function
      | [] -> List.rev ((List.rev current, None) :: acc)
      | (Ir.Call (dst, name, args)) :: rest ->
        segments ((List.rev current, Some (dst, name, args)) :: acc) [] rest
      | instr :: rest -> segments acc (instr :: current) rest
    in
    match segments [] [] b.instrs with
    | [ (_, None) ] -> b (* no calls *)
    | (first_instrs, Some call0) :: rest ->
      let rec alloc = function
        | [ (instrs, None) ] ->
          let id = !next in
          incr next;
          extra := { Ir.instrs; term = b.term } :: !extra;
          id
        | (instrs, Some call) :: more ->
          let cont = alloc more in
          let id = !next in
          incr next;
          extra := { Ir.instrs = instrs @ [ mkcall call ]; term = Ir.Jump cont } :: !extra;
          id
        | [] | (_, None) :: _ :: _ -> assert false
      in
      let cont = alloc rest in
      { Ir.instrs = first_instrs @ [ mkcall call0 ]; term = Ir.Jump cont }
    | [] | (_, None) :: _ :: _ -> assert false
  in
  let main = Array.map split_block f.blocks in
  (* The ids handed out by [alloc] are taken immediately before each
     push, so reversing the accumulator restores id order. *)
  f.blocks <- Array.append main (Array.of_list (List.rev !extra))

let term_of = function
  | Ir.Jump l -> Mcode.Tjump l
  | Ir.Branch (c, t, e) -> Mcode.Tbranch (c, t, e)
  | Ir.Ret v -> Mcode.Tret v

(* After [split_calls], a block contains at most one call, and it is the
   last instruction; translate it to a [Tcall] terminator. *)
let translate_term (b : Ir.block) : Ir.instr array * Mcode.mterm =
  let instrs = Array.of_list b.instrs in
  let n = Array.length instrs in
  if n > 0 then
    match instrs.(n - 1) with
    | Ir.Call (dst, name, args) ->
      let cont = match b.term with Ir.Jump l -> l | _ -> assert false in
      (Array.sub instrs 0 (n - 1), Mcode.Tcall { callee = name; args; dst; cont })
    | _ -> (instrs, term_of b.term)
  else (instrs, term_of b.term)

let compile_function ?(pipeline = true) ?reg_limit (fin : Ir.func) : compiled =
  (* Candidates are found on virtual registers (the dead-comparison
     check needs unaliased names); block ids survive allocation and
     call-splitting (both only rewrite instructions or append blocks). *)
  let candidates = if pipeline then pipeline_candidates fin else [] in
  let alloc = Regalloc.run ?reg_limit fin in
  let f = alloc.Regalloc.func in
  split_calls f;
  let sched_work = ref 0 in
  let pipelined = ref 0 in
  let ii_total = ref 0 in
  let n = Array.length f.blocks in
  let mblocks =
    Array.make n { Mcode.code = [||]; mterm = Mcode.Tret None; mb_pipelined = false }
  in
  (* Pipelined loops: header forwards straight to the flattened body. *)
  let header_of = Hashtbl.create 4 in (* header -> (body, exit, trip) *)
  List.iter
    (fun ((c : Counted.t), trip) ->
      Hashtbl.replace header_of c.Counted.header (c.Counted.body_block, c.Counted.exit, trip))
    candidates;
  let flattened = Hashtbl.create 4 in (* body block -> (wides, exit) *)
  Hashtbl.iter
    (fun _header (bb, exit, trip) ->
      (* Candidates were checked call-free, so every instruction is a
         schedulable FU operation.  Block-local temporaries get spread
         over the registers the block does not touch, which relaxes the
         wrapped anti-dependences and lets iterations overlap. *)
      Rename_locals.run f bb;
      let ops = Array.of_list f.blocks.(bb).instrs in
      match Modsched.run ops with
      | result ->
        sched_work := !sched_work + result.Modsched.attempts;
        incr pipelined;
        ii_total := !ii_total + result.Modsched.ii;
        let code = Modsched.emit_flat ops result ~trip in
        Hashtbl.replace flattened bb (code, exit)
      | exception Modsched.No_schedule w -> sched_work := !sched_work + w)
    header_of;
  for i = 0 to n - 1 do
    match Hashtbl.find_opt flattened i with
    | Some (code, exit) ->
      mblocks.(i) <- { Mcode.code; mterm = Mcode.Tjump exit; mb_pipelined = true }
    | None ->
      let is_pipelined_header =
        match Hashtbl.find_opt header_of i with
        | Some (bb, _, _) -> Hashtbl.mem flattened bb
        | None -> false
      in
      if is_pipelined_header then begin
        (* Comparison dropped: the trip count is a known constant >= 1,
           so the guard always falls through on entry; the back edge has
           been replaced by the flat schedule. *)
        let bb, _, _ = Hashtbl.find header_of i in
        mblocks.(i) <- { Mcode.code = [||]; mterm = Mcode.Tjump bb; mb_pipelined = false }
      end
      else begin
        let instrs, mterm = translate_term f.blocks.(i) in
        let sched = Listsched.run instrs in
        sched_work := !sched_work + sched.Listsched.attempts;
        mblocks.(i) <- { Mcode.code = sched.Listsched.code; mterm; mb_pipelined = false }
      end
  done;
  let mfunc =
    {
      Mcode.mf_name = f.Ir.name;
      param_locs = alloc.Regalloc.param_locs;
      mf_arrays = f.Ir.arrays;
      mblocks;
    }
  in
  {
    mfunc;
    sched_work = !sched_work;
    spilled = alloc.Regalloc.spilled;
    pipelined = !pipelined;
    ii_total = !ii_total;
    wide_count = Mcode.wide_count mfunc;
  }
