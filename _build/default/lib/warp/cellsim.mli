(** Cycle-level simulator for one Warp-like cell.

    Executes a linked image with the pipeline semantics the schedulers
    assume: operations read registers at issue and write them
    [latency] cycles later; one operation per functional unit per
    cycle; stores become visible to the next cycle's loads; a block's
    terminator executes one cycle after its last wide instruction.

    Queue operations go through {!type:ports}; a wide instruction whose
    queue operation cannot proceed stalls the whole cell for that
    cycle.  Calls push a fresh register window and fresh local arrays,
    so they clobber nothing in the caller. *)

type value = Midend.Ir_interp.value

exception Fault of string

type ports = {
  recv : W2.Ast.channel -> value option; (** [None]: would block *)
  send : W2.Ast.channel -> value -> bool; (** [false]: would block *)
}

val closed_ports : ports
(** Sends vanish; receives fault. *)

val script_ports :
  input_x:value list ->
  input_y:value list ->
  ports * (unit -> value list * value list)
(** Scripted input queues and recorded output; the second component
    returns the (X, Y) output so far. *)

type status = Running | Blocked | Halted

type t = {
  image : Mcode.image;
  ports : ports;
  mutable stack : frame list;
  mutable cycle : int;
  mutable result : value option;
  mutable status : status;
}

and frame

val create : ?ports:ports -> Mcode.image -> name:string -> args:value list -> t

val step : t -> status
(** Execute one cycle. *)

val run :
  ?fuel:int ->
  ?ports:ports ->
  Mcode.image ->
  name:string ->
  args:value list ->
  value option * int
(** Run to completion; returns the result and the cycle count.
    @raise Fault on runtime errors, deadlock, or fuel exhaustion. *)
