(* Data-dependence graphs over the operations of one basic block.

   Edges carry (delay, distance): a dependence from [a] to [b] with
   distance d means instance (b, iteration k+d) must issue no earlier
   than issue(a, iteration k) + delay.  Distance-0 edges order
   operations of one iteration (used by both schedulers); distance-1
   edges wrap around the loop (used by the modulo scheduler and valid
   for any pair, in either program order, including self-edges).

   Delay rules (results are written at issue + latency and read at
   issue; local-memory stores are visible one cycle after issue, loads
   read at issue; queue operations act in issue order):
     true (def -> use)        latency(def)
     anti (use -> def)        1 - latency(def')   (write lands after read)
     output (def -> def)      latency(first) - latency(second) + 1
     store -> load            1
     load -> store            0
     store -> store           1
     queue op -> queue op     1                    (strict queue order)
*)

open Midend

type edge = { src : int; dst : int; delay : int; dist : int }

type t = {
  ops : Ir.instr array;
  edges : edge list;
  succs : (int * int * int) list array; (* dst, delay, dist *)
  preds : (int * int * int) list array; (* src, delay, dist *)
}

let regs_def instr = match Ir.def_of instr with Some d -> [ d ] | None -> []
let regs_use instr = Ir.uses_of instr

let touched_array = function
  | Ir.Load (_, a, _) -> Some (a, `Load)
  | Ir.Store (a, _, _) -> Some (a, `Store)
  | _ -> None

let is_qio = function Ir.Send _ | Ir.Recv _ -> true | _ -> false

(* Maximum delay of the hazards between [a] (first) and [b] (second);
   None when independent. *)
let hazard_delay a b : int option =
  let lat = Machine.latency in
  let delays = ref [] in
  let add d = delays := d :: !delays in
  let da = regs_def a and ua = regs_use a in
  let db = regs_def b and ub = regs_use b in
  List.iter (fun r -> if List.mem r ub then add (lat a)) da; (* true *)
  List.iter (fun r -> if List.mem r db then add (1 - lat b)) ua; (* anti *)
  List.iter (fun r -> if List.mem r db then add (lat a - lat b + 1)) da; (* output *)
  (match (touched_array a, touched_array b) with
  | Some (arr_a, ka), Some (arr_b, kb) when arr_a = arr_b -> (
    match (ka, kb) with
    | `Store, `Load -> add 1
    | `Load, `Store -> add 0
    | `Store, `Store -> add 1
    | `Load, `Load -> ())
  | _ -> ());
  if is_qio a && is_qio b then add 1;
  match !delays with [] -> None | ds -> Some (List.fold_left max min_int ds)

(* Build the graph.  [loop] adds the wrap-around distance-1 edges. *)
let build ?(loop = false) (ops : Ir.instr array) : t =
  let n = Array.length ops in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match hazard_delay ops.(i) ops.(j) with
      | Some delay -> edges := { src = i; dst = j; delay; dist = 0 } :: !edges
      | None -> ()
    done
  done;
  if loop then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        (* (i, iter k) happens before (j, iter k+1) for every pair. *)
        match hazard_delay ops.(i) ops.(j) with
        | Some delay -> edges := { src = i; dst = j; delay; dist = 1 } :: !edges
        | None -> ()
      done
    done;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- (e.dst, e.delay, e.dist) :: succs.(e.src);
      preds.(e.dst) <- (e.src, e.delay, e.dist) :: preds.(e.dst))
    !edges;
  { ops; edges = !edges; succs; preds }

(* Critical-path height over distance-0 edges: the scheduling priority.
   The height of an op is its latency plus the maximum height reachable
   through its same-iteration successors. *)
let heights (g : t) : int array =
  let n = Array.length g.ops in
  let height = Array.make n (-1) in
  let rec compute i =
    if height.(i) >= 0 then height.(i)
    else begin
      (* Mark to guard against cycles (distance-0 edges are acyclic by
         construction: they all go forward in program order). *)
      let best = ref (Machine.latency g.ops.(i)) in
      List.iter
        (fun (j, delay, dist) ->
          if dist = 0 then best := max !best (delay + compute j))
        g.succs.(i);
      height.(i) <- !best;
      !best
    end
  in
  for i = 0 to n - 1 do
    ignore (compute i)
  done;
  height
