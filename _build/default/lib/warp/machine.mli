(** Machine description of one Warp-like processing element.

    The cell is a wide-instruction-word machine: one operation may
    issue per functional unit per cycle.  Units are pipelined — an
    operation issued at cycle [t] writes its result register at
    [t + latency], and a new operation may issue on the same unit at
    [t + 1].  Control (branches, calls, returns) occupies the cycle
    after a block's last wide instruction; the schedule pads each block
    so all writes have landed before control transfers.

    Registers form one windowed file: a call pushes a fresh window (the
    hardware analogue of the Lisp compiler's caller-save-everything
    convention), so calls clobber nothing. *)

type fu = ALU | FALU | FMUL | MEM | QIO

val all_fus : fu list
val fu_to_string : fu -> string

val num_regs : int
(** 64 general registers per window. *)

val num_scratch_regs : int
val num_allocatable : int
(** [num_regs - num_scratch_regs]; the allocator's default budget. *)

val scratch_reg : int -> int

val queue_capacity : int
(** Entries per inter-cell queue. *)

val fu_of : Midend.Ir.instr -> fu
(** The unit an operation issues on.
    @raise Invalid_argument for calls (control, not an FU op). *)

val latency : Midend.Ir.instr -> int
(** Cycles from issue to write-back: ALU 1 (imul 4, idiv/imod 12),
    FALU 5, FMUL 5 (fdiv 12, fsqrt 15), load 3, store 1, queue ops 1. *)
