(* Iterative modulo scheduling — the software-pipelining heart of
   phase 3 (Rau's IMS, simplified: no backtracking; on failure the
   initiation interval is increased).

   The operations of a single-block loop body are placed at times σ(op)
   such that for every dependence edge (a → b, delay, dist):

       σ(b) ≥ σ(a) + delay − II·dist

   and no functional unit is used twice at the same time modulo II.
   Because registers are physical (allocation happens before
   scheduling), the wrap-around anti-dependences automatically bound
   every lifetime by II — no modulo variable expansion is needed and the
   kernel is valid with the original register names.

   The overlapped schedule for a loop with a compile-time-constant trip
   count [n] is emitted flat: op of iteration j at σ(op) + II·j; total
   length (n−1)·II + makespan.  Flatness is resource-legal because two
   instances on one unit at the same time would need σ₁ ≡ σ₂ (mod II),
   which the modulo reservation table excludes. *)

open Midend

type result = {
  ii : int;
  sigma : int array;
  makespan : int;
  attempts : int; (* placement trials: phase-3 work units *)
}

let res_mii (ops : Ir.instr array) : int =
  let counts = Hashtbl.create 5 in
  Array.iter
    (fun op ->
      let fu = Machine.fu_of op in
      Hashtbl.replace counts fu (1 + Option.value ~default:0 (Hashtbl.find_opt counts fu)))
    ops;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 1

(* Lower bound from self-edges (a → a, delay, 1): II ≥ delay. *)
let self_rec_mii (g : Ddg.t) : int =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      if e.src = e.dst && e.dist = 1 then max acc e.delay else acc)
    1 g.edges

(* Is [ii] consistent with every dependence cycle?  With edge weights
   delay − II·dist, a schedule exists iff the graph has no positive
   cycle (Bellman–Ford).  This exact recurrence test lets the search
   skip infeasible IIs without running the expensive placement loop. *)
let feasible_ii (g : Ddg.t) ~ii : bool =
  let n = Array.length g.ops in
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (e : Ddg.edge) ->
        let w = e.delay - (ii * e.dist) in
        if dist.(e.src) + w > dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + w;
          changed := true
        end)
      g.edges
  done;
  not !changed

(* One scheduling attempt at a given II: iterative modulo scheduling
   with ejection (Rau).  When no slot in the window [estart, estart+II)
   is conflict-free, the op is force-placed and the conflicting ops —
   the occupant of its reservation slot and any scheduled successors
   whose dependence the placement violates — are ejected back onto the
   worklist.  A per-op "no earlier than last time + 1" rule plus a
   global budget guarantee termination. *)
let attempt (g : Ddg.t) ~ii ~height ~attempts : int array option =
  let n = Array.length g.ops in
  let sigma = Array.make n (-1) in
  let prev = Array.make n (-1) in
  let table = Hashtbl.create 16 in (* (fu, slot mod ii) -> occupant op *)
  let scheduled = Array.make n false in
  let remaining = ref n in
  let budget = ref (20 * n * (1 + (n / 16))) in
  let eject i =
    if scheduled.(i) then begin
      scheduled.(i) <- false;
      remaining := !remaining + 1;
      Hashtbl.remove table (Machine.fu_of g.ops.(i), sigma.(i) mod ii);
      sigma.(i) <- -1
    end
  in
  let place i t =
    sigma.(i) <- t;
    prev.(i) <- t;
    scheduled.(i) <- true;
    remaining := !remaining - 1;
    Hashtbl.replace table (Machine.fu_of g.ops.(i), t mod ii) i
  in
  let pick () =
    (* Highest critical-path height among unscheduled ops. *)
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if not scheduled.(i) then
        if !best < 0 || height.(i) > height.(!best) then best := i
    done;
    !best
  in
  while !remaining > 0 && !budget > 0 do
    decr budget;
    let i = pick () in
    let fu = Machine.fu_of g.ops.(i) in
    let estart =
      List.fold_left
        (fun acc (p, delay, dist) ->
          if scheduled.(p) then max acc (sigma.(p) + delay - (ii * dist)) else acc)
        0 g.preds.(i)
    in
    let ok t =
      incr attempts;
      (not (Hashtbl.mem table (fu, t mod ii)))
      && List.for_all
           (fun (s, delay, dist) ->
             (not scheduled.(s)) || sigma.(s) >= t + delay - (ii * dist))
           g.succs.(i)
    in
    let found = ref (-1) in
    let t = ref estart in
    while !found < 0 && !t < estart + ii do
      if ok !t then found := !t else incr t
    done;
    if !found >= 0 then place i !found
    else begin
      (* Force placement and eject whoever is in the way. *)
      let t = max estart (prev.(i) + 1) in
      (match Hashtbl.find_opt table (fu, t mod ii) with
      | Some occupant -> eject occupant
      | None -> ());
      List.iter
        (fun (s, delay, dist) ->
          if scheduled.(s) && sigma.(s) < t + delay - (ii * dist) then eject s)
        g.succs.(i);
      (* A forced slot may also break constraints of scheduled
         predecessors (wrapped edges can point backwards). *)
      List.iter
        (fun (p, delay, dist) ->
          if scheduled.(p) && t < sigma.(p) + delay - (ii * dist) then eject p)
        g.preds.(i);
      place i t
    end
  done;
  if !remaining = 0 then Some sigma else None

let max_ii_slack = 32

(* No schedule found; the payload is the work spent trying (it still
   counts as phase-3 compilation time). *)
exception No_schedule of int

(* Modulo-schedule [ops]; raises [No_schedule] if no II up to
   MII + slack succeeds (callers fall back to list scheduling).

   When the resource bound already reaches the critical path of one
   iteration, overlapping iterations cannot improve throughput over
   list scheduling, so the search is skipped — wide loop bodies
   saturate the functional units on their own. *)
let run (ops : Ir.instr array) : result =
  let g = Ddg.build ~loop:true ops in
  let height = Ddg.heights g in
  let critical_path = Array.fold_left max 0 height in
  let attempts = ref 0 in
  let nedges = List.length g.edges in
  (* Exact MII: raise the resource/self-edge lower bound until the
     recurrence test passes.  Each Bellman–Ford run is charged as work. *)
  let lower = max (res_mii ops) (self_rec_mii g) in
  let rec tighten ii =
    if ii > lower + max_ii_slack then raise (No_schedule !attempts)
    else begin
      attempts := !attempts + (nedges / 8) + 1;
      if feasible_ii g ~ii then ii else tighten (ii + 1)
    end
  in
  let mii = tighten lower in
  (* Overlap can shrink the per-iteration time from the critical path
     towards MII; if less than half the path can be recovered the
     (expensive) search is not worth running — a profitability cut-off
     in the spirit of the production compiler's heuristics. *)
  if 2 * mii > critical_path then raise (No_schedule !attempts);
  (* Bound the total search effort: scheduling is allowed to be the
     expensive phase, not an unbounded one. *)
  let max_total_attempts = 300_000 in
  let rec search ii =
    if ii > mii + max_ii_slack || !attempts > max_total_attempts then
      raise (No_schedule !attempts)
    else
      match attempt g ~ii ~height ~attempts with
      | Some sigma ->
        let makespan =
          Array.to_list (Array.mapi (fun i op -> sigma.(i) + Machine.latency op) ops)
          |> List.fold_left max ii
        in
        { ii; sigma; makespan; attempts = !attempts }
      | None -> search (ii + 1)
  in
  search mii

(* Flat emission: the full overlapped schedule for [trip] iterations. *)
let emit_flat (ops : Ir.instr array) (r : result) ~trip : Mcode.wide array =
  assert (trip >= 1);
  let total = ((trip - 1) * r.ii) + r.makespan in
  let code = Array.make total Mcode.empty_wide in
  for j = 0 to trip - 1 do
    Array.iteri
      (fun i op ->
        let t = r.sigma.(i) + (r.ii * j) in
        let fu = Machine.fu_of op in
        assert (Mcode.slot code.(t) fu = None);
        code.(t) <- Mcode.with_slot code.(t) fu op)
      ops
  done;
  code
