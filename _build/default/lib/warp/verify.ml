(* Static verifier for linked images.

   Checks the invariants the rest of the system relies on:
   - every register index is physical (within the window);
   - every occupied slot holds an operation for that functional unit;
   - no call appears inside wide code (calls are terminators);
   - terminator targets and call continuations are in range, callees
     resolve with matching arity, and argument/parameter registers are
     physical;
   - loads and stores reference declared arrays;
   - every non-pipelined block's schedule is dependence-legal: any
     hazard pair is separated by at least its delay, and same-cycle
     pairs have a delay-free direction (which the hardware's
     reads-before-writes order realizes);
   - flat-emitted software-pipelined blocks (whose wide order
     interleaves loop iterations, so per-iteration delays do not apply
     pairwise) are checked for write-back well-definedness instead. *)

type violation = {
  v_func : string;
  v_block : int;
  v_message : string;
}

let violation_to_string v =
  Printf.sprintf "%s/B%d: %s" v.v_func v.v_block v.v_message

let check_reg out ~ctx r =
  if r < 0 || r >= Machine.num_regs then
    out (Printf.sprintf "%s: register r%d outside the window" ctx r)

let check_operand out ~ctx = function
  | Midend.Ir.Reg r -> check_reg out ~ctx r
  | Midend.Ir.Imm_int _ | Midend.Ir.Imm_float _ -> ()

let check_block (image : Mcode.image) (f : Mcode.mfunc) bi
    (violations : violation list ref) =
  let out msg =
    violations := { v_func = f.Mcode.mf_name; v_block = bi; v_message = msg } :: !violations
  in
  let b = f.Mcode.mblocks.(bi) in
  let nblocks = Array.length f.Mcode.mblocks in
  let array_declared name =
    List.exists (fun (a, _, _) -> a = name) f.Mcode.mf_arrays
  in
  (* Slot and operand sanity; collect (cycle, op) in issue order. *)
  let timed = ref [] in
  Array.iteri
    (fun cycle wide ->
      List.iter
        (fun fu ->
          match Mcode.slot wide fu with
          | None -> ()
          | Some op ->
            let ctx = Printf.sprintf "cycle %d (%s)" cycle (Machine.fu_to_string fu) in
            (match op with
            | Midend.Ir.Call _ -> out (ctx ^ ": call inside wide code")
            | _ ->
              if Machine.fu_of op <> fu then
                out
                  (Printf.sprintf "%s: operation belongs on %s" ctx
                     (Machine.fu_to_string (Machine.fu_of op)));
              (match Midend.Ir.def_of op with
              | Some d -> check_reg out ~ctx d
              | None -> ());
              List.iter (fun r -> check_reg out ~ctx r) (Midend.Ir.uses_of op);
              (match op with
              | Midend.Ir.Load (_, a, _) | Midend.Ir.Store (a, _, _) ->
                if not (array_declared a) then
                  out (Printf.sprintf "%s: undeclared array %s" ctx a)
              | _ -> ());
              timed := (cycle, op) :: !timed))
        Machine.all_fus)
    b.Mcode.code;
  (* Dependence legality.

     Non-pipelined blocks are single-instance straight-line schedules:
     every hazard pair must be separated by its delay (same-cycle pairs
     need at least one delay-free direction — the hardware's
     reads-before-writes order realizes it).

     Flat-emitted pipelined blocks interleave loop iterations, so the
     per-iteration delays do not apply pairwise; for them only
     well-definedness is checked: no two writes to one register may
     land on the same cycle. *)
  let ops = Array.of_list (List.rev !timed) in
  let n = Array.length ops in
  if not b.Mcode.mb_pipelined then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let ci, oi = ops.(i) and cj, oj = ops.(j) in
        if ci = cj then begin
          let fwd = Ddg.hazard_delay oi oj in
          let bwd = Ddg.hazard_delay oj oi in
          let ok = function None -> true | Some d -> d <= 0 in
          if not (ok fwd || ok bwd) then
            out
              (Printf.sprintf "cycle %d: irreconcilable same-cycle hazard (%s | %s)"
                 ci
                 (Midend.Ir.instr_to_string oi)
                 (Midend.Ir.instr_to_string oj))
        end
        else
          match Ddg.hazard_delay oi oj with
          | Some d when cj < ci + d ->
            out
              (Printf.sprintf
                 "dependence violated: %s @%d -> %s @%d needs delay %d"
                 (Midend.Ir.instr_to_string oi) ci (Midend.Ir.instr_to_string oj) cj d)
          | Some _ | None -> ()
      done
    done
  else begin
    (* Well-definedness: writes to one register land at distinct
       cycles. *)
    let landings = Hashtbl.create 32 in
    Array.iter
      (fun (cycle, op) ->
        match Midend.Ir.def_of op with
        | Some d ->
          let key = (d, cycle + Machine.latency op) in
          if Hashtbl.mem landings key then
            out
              (Printf.sprintf "ambiguous write-back: two writes to r%d land at %d"
                 d (cycle + Machine.latency op))
          else Hashtbl.replace landings key ()
        | None -> ())
      ops
  end;
  (* Terminator sanity. *)
  let check_target l = if l < 0 || l >= nblocks then out (Printf.sprintf "branch target B%d out of range" l) in
  match b.Mcode.mterm with
  | Mcode.Tjump l -> check_target l
  | Mcode.Tbranch (c, a, b') ->
    check_operand out ~ctx:"branch" c;
    check_target a;
    check_target b'
  | Mcode.Tret (Some v) -> check_operand out ~ctx:"ret" v
  | Mcode.Tret None -> ()
  | Mcode.Tcall { callee; args; dst; cont } -> (
    check_target cont;
    List.iter (check_operand out ~ctx:"call argument") args;
    (match dst with Some d -> check_reg out ~ctx:"call result" d | None -> ());
    match Mcode.find_func image callee with
    | None -> out (Printf.sprintf "call to unresolved %s" callee)
    | Some target ->
      if List.length target.Mcode.param_locs <> List.length args then
        out (Printf.sprintf "arity mismatch calling %s" callee))

let check_func image (f : Mcode.mfunc) violations =
  List.iter
    (fun loc ->
      if loc < 0 || loc >= Machine.num_regs then
        violations :=
          {
            v_func = f.Mcode.mf_name;
            v_block = -1;
            v_message = Printf.sprintf "parameter register r%d outside the window" loc;
          }
          :: !violations)
    f.Mcode.param_locs;
  Array.iteri (fun bi _ -> check_block image f bi violations) f.Mcode.mblocks

(* All violations in an image ([] = valid). *)
let image (img : Mcode.image) : violation list =
  let violations = ref [] in
  Array.iter (fun f -> check_func img f violations) img.Mcode.funcs;
  List.rev !violations
