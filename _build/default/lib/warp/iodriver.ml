(* I/O driver generation — the last piece of phase 4.

   The Warp host needs, for every downloadable section image, a driver
   describing what to download where, how the queues are wired, and how
   to invoke each entry point.  We generate that description from the
   linked image; the benchmark host (and [Arraysim]) consume it, and its
   size participates in the phase-4 cost accounting. *)

type entry = {
  entry_name : string;
  arg_count : int;
  returns_value : bool; (* heuristic: any block returns an operand *)
  code_words : int; (* wide instructions *)
}

type t = {
  drv_section : string;
  drv_cells : int;
  download_bytes : int; (* size of the encoded module *)
  wiring : string list; (* one line per queue link *)
  entries : entry list;
}

let generate (image : Mcode.image) : t =
  let n = max 1 image.Mcode.img_cells in
  let wiring =
    List.concat
      [
        [ "host.X -> cell0.X" ];
        List.init (n - 1) (fun i -> Printf.sprintf "cell%d.X -> cell%d.X" i (i + 1));
        [ Printf.sprintf "cell%d.X -> host.X" (n - 1) ];
        [ Printf.sprintf "host.Y -> cell%d.Y" (n - 1) ];
        List.init (n - 1) (fun i -> Printf.sprintf "cell%d.Y -> cell%d.Y" (i + 1) i);
        [ "cell0.Y -> host.Y" ];
      ]
  in
  let entries =
    Array.to_list
      (Array.map
         (fun (f : Mcode.mfunc) ->
           let returns_value =
             Array.exists
               (fun (b : Mcode.mblock) ->
                 match b.Mcode.mterm with Mcode.Tret (Some _) -> true | _ -> false)
               f.Mcode.mblocks
           in
           {
             entry_name = f.Mcode.mf_name;
             arg_count = List.length f.Mcode.param_locs;
             returns_value;
             code_words = Mcode.wide_count f;
           })
         image.Mcode.funcs)
  in
  {
    drv_section = image.Mcode.img_section;
    drv_cells = n;
    download_bytes = Asm.encoded_size image;
    wiring;
    entries;
  }

let to_string (d : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "-- I/O driver for section %s (%d cells, %d bytes)\n"
       d.drv_section d.drv_cells d.download_bytes);
  Buffer.add_string buf "-- queue wiring:\n";
  List.iter (fun w -> Buffer.add_string buf ("--   " ^ w ^ "\n")) d.wiring;
  Buffer.add_string buf "-- entry points:\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "--   %s/%d%s (%d words)\n" e.entry_name e.arg_count
           (if e.returns_value then " -> value" else "")
           e.code_words))
    d.entries;
  Buffer.contents buf
