(** List scheduling of one basic block onto the wide-instruction cell:
    greedy cycle-by-cycle placement of ready operations in decreasing
    critical-path height, padded so every result is written before the
    terminator executes. *)

type schedule = {
  code : Mcode.wide array;
  issue : int array; (** issue cycle per op *)
  attempts : int; (** placement trials: phase-3 work units *)
}

val run : Midend.Ir.instr array -> schedule
