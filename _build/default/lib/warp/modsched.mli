(** Iterative modulo scheduling — the software-pipelining heart of
    phase 3 (Rau's IMS with ejection).

    Operations of a single-block loop body are placed at times σ(op)
    such that every dependence edge (a → b, delay, dist) satisfies
    σ(b) ≥ σ(a) + delay − II·dist, with one operation per functional
    unit per II-slot.  Registers are physical (allocation happens
    first), so the wrapped anti-dependences bound every lifetime by II:
    the kernel is valid with the original register names, and the
    overlapped schedule of a constant-trip loop can be emitted flat.

    The search computes the exact recurrence-constrained MII with a
    Bellman–Ford feasibility test, applies a profitability cut-off
    (overlap must be able to recover at least half the critical path),
    and bounds its total effort. *)

type result = {
  ii : int; (** achieved initiation interval *)
  sigma : int array; (** issue time of each op within one iteration *)
  makespan : int; (** σ + latency, maximised *)
  attempts : int; (** placement trials: phase-3 work units *)
}

exception No_schedule of int
(** No schedule found (profitability cut, II range exhausted, or budget
    spent); the payload is the work spent trying — it still counts as
    compilation time. *)

val res_mii : Midend.Ir.instr array -> int
(** Resource-constrained lower bound on II. *)

val self_rec_mii : Ddg.t -> int
(** Self-edge recurrence lower bound. *)

val feasible_ii : Ddg.t -> ii:int -> bool
(** Exact recurrence test: no positive cycle under weights
    delay − II·dist. *)

val max_ii_slack : int

val run : Midend.Ir.instr array -> result
(** @raise No_schedule as described above. *)

val emit_flat : Midend.Ir.instr array -> result -> trip:int -> Mcode.wide array
(** The full overlapped schedule for [trip] iterations: op of iteration
    [j] at σ(op) + II·j.  Resource-legal by construction. *)
