(* Machine code: scheduled wide instructions over physical registers.

   Operations reuse the [Midend.Ir.instr] shape — after register
   allocation every register index is a physical register below
   [Machine.num_regs].  A wide instruction carries at most one operation
   per functional unit.  Control flow lives in block terminators; blocks
   containing calls have been split so that a call is always a
   terminator. *)

type wide = {
  alu : Midend.Ir.instr option;
  falu : Midend.Ir.instr option;
  fmul : Midend.Ir.instr option;
  mem : Midend.Ir.instr option;
  qio : Midend.Ir.instr option;
}

let empty_wide = { alu = None; falu = None; fmul = None; mem = None; qio = None }

let slot w (fu : Machine.fu) =
  match fu with
  | Machine.ALU -> w.alu
  | Machine.FALU -> w.falu
  | Machine.FMUL -> w.fmul
  | Machine.MEM -> w.mem
  | Machine.QIO -> w.qio

let with_slot w (fu : Machine.fu) op =
  match fu with
  | Machine.ALU -> { w with alu = Some op }
  | Machine.FALU -> { w with falu = Some op }
  | Machine.FMUL -> { w with fmul = Some op }
  | Machine.MEM -> { w with mem = Some op }
  | Machine.QIO -> { w with qio = Some op }

let ops_of w =
  List.filter_map
    (fun fu -> slot w fu)
    Machine.all_fus

let is_empty w = ops_of w = []

type mterm =
  | Tjump of int
  | Tbranch of Midend.Ir.operand * int * int
  | Tret of Midend.Ir.operand option
  (* Call [callee] with argument operands; on return, the result is
     written to [dst] (if any) and control continues at block [cont]. *)
  | Tcall of { callee : string; args : Midend.Ir.operand list; dst : int option; cont : int }

type mblock = { code : wide array; mterm : mterm; mb_pipelined : bool }

type mfunc = {
  mf_name : string;
  (* Physical registers in which this function expects its arguments. *)
  param_locs : int list;
  (* Local arrays instantiated per activation: name, size, element type. *)
  mf_arrays : (string * int * Midend.Ir.ty) list;
  mblocks : mblock array;
}

(* A linked per-cell image: the code for one section, downloadable to
   every cell of the section's group. *)
type image = {
  img_section : string;
  img_cells : int;
  funcs : mfunc array;
  (* function name -> index, resolved by the linker *)
  symbols : (string * int) list;
}

let find_func image name =
  match List.assoc_opt name image.symbols with
  | Some i -> Some image.funcs.(i)
  | None -> None

(* --- size metrics (feed phase-4 cost accounting) --- *)

let wide_count (f : mfunc) =
  Array.fold_left (fun acc b -> acc + Array.length b.code) 0 f.mblocks

let image_wide_count (img : image) =
  Array.fold_left (fun acc f -> acc + wide_count f) 0 img.funcs

(* --- printing --- *)

let wide_to_string w =
  let cell fu =
    match slot w fu with
    | Some op -> Printf.sprintf "%s: %s" (Machine.fu_to_string fu) (Midend.Ir.instr_to_string op)
    | None -> ""
  in
  let cells = List.filter (fun s -> s <> "") (List.map cell Machine.all_fus) in
  "[" ^ String.concat " | " cells ^ "]"

let mterm_to_string = function
  | Tjump l -> Printf.sprintf "jump B%d" l
  | Tbranch (c, t, e) ->
    Printf.sprintf "branch %s, B%d, B%d" (Midend.Ir.operand_to_string c) t e
  | Tret None -> "ret"
  | Tret (Some v) -> Printf.sprintf "ret %s" (Midend.Ir.operand_to_string v)
  | Tcall { callee; args; dst; cont } ->
    Printf.sprintf "%scall %s(%s) then B%d"
      (match dst with Some d -> Printf.sprintf "r%d := " d | None -> "")
      callee
      (String.concat ", " (List.map Midend.Ir.operand_to_string args))
      cont

let mfunc_to_string f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "mfunc %s params=[%s]\n" f.mf_name
    (String.concat "," (List.map string_of_int f.param_locs)));
  Array.iteri
    (fun i b ->
      Buffer.add_string buf (Printf.sprintf "B%d:\n" i);
      Array.iter
        (fun w -> Buffer.add_string buf ("  " ^ wide_to_string w ^ "\n"))
        b.code;
      Buffer.add_string buf ("  " ^ mterm_to_string b.mterm ^ "\n"))
    f.mblocks;
  Buffer.contents buf
