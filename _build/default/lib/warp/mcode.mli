(** Machine code: scheduled wide instructions over physical registers.

    Operations reuse the {!Midend.Ir.instr} shape — after register
    allocation every register index is physical (< {!Machine.num_regs}).
    A wide instruction carries at most one operation per functional
    unit.  Control flow lives in block terminators; blocks containing
    calls have been split so a call is always a terminator. *)

type wide = {
  alu : Midend.Ir.instr option;
  falu : Midend.Ir.instr option;
  fmul : Midend.Ir.instr option;
  mem : Midend.Ir.instr option;
  qio : Midend.Ir.instr option;
}

val empty_wide : wide
val slot : wide -> Machine.fu -> Midend.Ir.instr option
val with_slot : wide -> Machine.fu -> Midend.Ir.instr -> wide
val ops_of : wide -> Midend.Ir.instr list
val is_empty : wide -> bool

type mterm =
  | Tjump of int
  | Tbranch of Midend.Ir.operand * int * int
  | Tret of Midend.Ir.operand option
  | Tcall of {
      callee : string;
      args : Midend.Ir.operand list;
      dst : int option; (** receives the return value *)
      cont : int; (** block to continue at after the return *)
    }

type mblock = {
  code : wide array;
  mterm : mterm;
  mb_pipelined : bool;
      (** flat-emitted software-pipelined kernel: wide order interleaves
          iterations, so per-iteration dependence checks do not apply *)
}

type mfunc = {
  mf_name : string;
  param_locs : int list;
      (** physical registers in which arguments arrive *)
  mf_arrays : (string * int * Midend.Ir.ty) list;
      (** local arrays instantiated per activation *)
  mblocks : mblock array;
}

type image = {
  img_section : string;
  img_cells : int;
  funcs : mfunc array;
  symbols : (string * int) list; (** linker-resolved name -> index *)
}
(** A linked per-cell image: the code of one section, downloadable to
    every cell of the section's group. *)

val find_func : image -> string -> mfunc option

val wide_count : mfunc -> int
val image_wide_count : image -> int

val wide_to_string : wide -> string
val mterm_to_string : mterm -> string
val mfunc_to_string : mfunc -> string
