(* Cycle-level simulator for one Warp-like cell.

   Executes a linked [Mcode.image] with the pipeline semantics the
   schedulers assume: operations read registers at issue and write them
   [latency] cycles later; one operation per functional unit per cycle;
   memory stores become visible to the next cycle's loads; a block's
   terminator executes one cycle after its last wide instruction, by
   which time the schedule guarantees all writes have landed.

   Queue operations go through [ports].  A wide instruction whose queue
   operation cannot proceed (empty input or full output) stalls the
   whole cell for that cycle — the hardware's flow control.

   Calls push a fresh register window and fresh local arrays; returns
   pop them, so calls clobber nothing in the caller. *)

open Midend

type value = Ir_interp.value

exception Fault of string

type ports = {
  recv : W2.Ast.channel -> value option; (* None: would block *)
  send : W2.Ast.channel -> value -> bool; (* false: would block *)
}

let closed_ports =
  { recv = (fun _ -> raise (Fault "receive on unconnected channel"));
    send = (fun _ _ -> true) }

(* Ports over scripted input queues, recording output. *)
let script_ports ~input_x ~input_y =
  let qx = Queue.of_seq (List.to_seq input_x) in
  let qy = Queue.of_seq (List.to_seq input_y) in
  let out_x = Queue.create () in
  let out_y = Queue.create () in
  let recv = function
    | W2.Ast.Chan_x -> Queue.take_opt qx
    | W2.Ast.Chan_y -> Queue.take_opt qy
  in
  let send c v =
    (match c with
    | W2.Ast.Chan_x -> Queue.push v out_x
    | W2.Ast.Chan_y -> Queue.push v out_y);
    true
  in
  let outputs () =
    (List.of_seq (Queue.to_seq out_x), List.of_seq (Queue.to_seq out_y))
  in
  ({ recv; send }, outputs)

type frame = {
  func : Mcode.mfunc;
  regs : value array;
  arrays : (string, value array) Hashtbl.t;
  mutable block : int;
  mutable wide_idx : int;
  mutable pending : (int * int * value) list; (* due cycle, reg, value *)
  ret_dst : int option;
  ret_block : int; (* block to resume in the caller *)
}

type status = Running | Blocked | Halted

type t = {
  image : Mcode.image;
  ports : ports;
  mutable stack : frame list;
  mutable cycle : int;
  mutable result : value option;
  mutable status : status;
}

let default_value (ty : Ir.ty) : value =
  match ty with Ir.Int | Ir.Bool -> Ir_interp.Vi 0 | Ir.Float -> Ir_interp.Vf 0.0

let new_frame (func : Mcode.mfunc) ~ret_dst ~ret_block : frame =
  let arrays = Hashtbl.create 4 in
  List.iter
    (fun (name, size, ty) -> Hashtbl.replace arrays name (Array.make size (default_value ty)))
    func.Mcode.mf_arrays;
  {
    func;
    regs = Array.make Machine.num_regs (Ir_interp.Vi 0);
    arrays;
    block = 0;
    wide_idx = 0;
    pending = [];
    ret_dst;
    ret_block;
  }

let create ?(ports = closed_ports) (image : Mcode.image) ~name ~args : t =
  match Mcode.find_func image name with
  | None -> raise (Fault ("undefined function " ^ name))
  | Some func ->
    let frame = new_frame func ~ret_dst:None ~ret_block:0 in
    (if List.length args <> List.length func.Mcode.param_locs then
       raise (Fault ("arity mismatch calling " ^ name)));
    List.iter2 (fun loc v -> frame.regs.(loc) <- v) func.Mcode.param_locs args;
    { image; ports; stack = [ frame ]; cycle = 0; result = None; status = Running }

let operand_value (frame : frame) = function
  | Ir.Reg r -> frame.regs.(r)
  | Ir.Imm_int n -> Ir_interp.Vi n
  | Ir.Imm_float f -> Ir_interp.Vf f

let truthy = function Ir_interp.Vi n -> n <> 0 | Ir_interp.Vf f -> f <> 0.0

let array_of frame name =
  match Hashtbl.find_opt frame.arrays name with
  | Some a -> a
  | None -> raise (Fault ("unknown array " ^ name))

let apply_due_writes (frame : frame) cycle =
  let due, still = List.partition (fun (c, _, _) -> c <= cycle) frame.pending in
  (* Earlier-issued writes to the same register land first; apply in due
     order so the later write wins. *)
  List.iter
    (fun (_, r, v) -> frame.regs.(r) <- v)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) due);
  frame.pending <- still

let flush_writes (frame : frame) = apply_due_writes frame max_int

(* Execute one cycle.  Returns the new status. *)
let step (cell : t) : status =
  match cell.stack with
  | [] ->
    cell.status <- Halted;
    Halted
  | frame :: rest -> (
    apply_due_writes frame cell.cycle;
    let block = frame.func.Mcode.mblocks.(frame.block) in
    if frame.wide_idx < Array.length block.Mcode.code then begin
      let wide = block.Mcode.code.(frame.wide_idx) in
      let ops = Mcode.ops_of wide in
      (* Receive phase: a wide instruction has at most one QIO slot, so
         consuming the receive before deciding to stall is safe — a
         stall can only be caused by that same receive. *)
      let recv_ops =
        List.filter_map (function Ir.Recv (c, d) -> Some (c, d) | _ -> None) ops
      in
      let recv_values =
        List.map (fun (c, d) -> (c, d, cell.ports.recv c)) recv_ops
      in
      if List.exists (fun (_, _, v) -> v = None) recv_values then begin
        (* The ports contract: a [recv] returning [Some] has consumed the
           element, so a stalling wide instruction must have at most one
           receive (guaranteed: one QIO slot). *)
        cell.cycle <- cell.cycle + 1;
        cell.status <- Blocked;
        Blocked
      end
      else begin
        (* Read phase. *)
        let reads = Hashtbl.create 8 in
        List.iter
          (fun op ->
            List.iter
              (fun r -> Hashtbl.replace reads r frame.regs.(r))
              (Ir.uses_of op))
          ops;
        let read_operand = function
          | Ir.Reg r -> Hashtbl.find reads r
          | Ir.Imm_int n -> Ir_interp.Vi n
          | Ir.Imm_float f -> Ir_interp.Vf f
        in
        let sent_ok = ref true in
        let writes = ref [] in
        let stores = ref [] in
        List.iter
          (fun op ->
            let lat = Machine.latency op in
            match op with
            | Ir.Bin (bop, d, x, y) ->
              let v =
                try Ir_interp.eval_bin bop (read_operand x) (read_operand y)
                with Ir_interp.Error msg -> raise (Fault msg)
              in
              writes := (cell.cycle + lat, d, v) :: !writes
            | Ir.Un (uop, d, x) ->
              let v =
                try Ir_interp.eval_un uop (read_operand x)
                with Ir_interp.Error msg -> raise (Fault msg)
              in
              writes := (cell.cycle + lat, d, v) :: !writes
            | Ir.Mov (d, x) -> writes := (cell.cycle + lat, d, read_operand x) :: !writes
            | Ir.Sel (d, c, a, b) ->
              let v = if truthy (read_operand c) then read_operand a else read_operand b in
              writes := (cell.cycle + lat, d, v) :: !writes
            | Ir.Load (d, a, i) -> (
              let arr = array_of frame a in
              match read_operand i with
              | Ir_interp.Vi idx when idx >= 0 && idx < Array.length arr ->
                writes := (cell.cycle + lat, d, arr.(idx)) :: !writes
              | Ir_interp.Vi idx ->
                raise (Fault (Printf.sprintf "index %d out of bounds" idx))
              | Ir_interp.Vf _ -> raise (Fault "float array index"))
            | Ir.Store (a, i, v) -> (
              let arr = array_of frame a in
              match read_operand i with
              | Ir_interp.Vi idx when idx >= 0 && idx < Array.length arr ->
                stores := (arr, idx, read_operand v) :: !stores
              | Ir_interp.Vi idx ->
                raise (Fault (Printf.sprintf "index %d out of bounds" idx))
              | Ir_interp.Vf _ -> raise (Fault "float array index"))
            | Ir.Send (c, v) ->
              if not (cell.ports.send c (read_operand v)) then sent_ok := false
            | Ir.Recv (c, d) -> (
              match List.find_opt (fun (c', d', _) -> c = c' && d = d') recv_values with
              | Some (_, _, Some v) -> writes := (cell.cycle + lat, d, v) :: !writes
              | Some (_, _, None) | None -> assert false)
            | Ir.Call _ -> raise (Fault "call inside a wide instruction"))
          ops;
        if not !sent_ok then begin
          (* A full output queue: the send has been lost by the port, so
             ports must only refuse when nothing was consumed.  The
             arraysim's ports never refuse mid-instruction. *)
          cell.cycle <- cell.cycle + 1;
          cell.status <- Blocked;
          Blocked
        end
        else begin
          List.iter (fun (arr, i, v) -> arr.(i) <- v) !stores;
          frame.pending <- !writes @ frame.pending;
          frame.wide_idx <- frame.wide_idx + 1;
          cell.cycle <- cell.cycle + 1;
          cell.status <- Running;
          Running
        end
      end
    end
    else begin
      (* Terminator cycle: all writes have landed by schedule
         construction; flush defensively. *)
      flush_writes frame;
      (match block.Mcode.mterm with
      | Mcode.Tjump l ->
        frame.block <- l;
        frame.wide_idx <- 0
      | Mcode.Tbranch (c, t, e) ->
        frame.block <- (if truthy (operand_value frame c) then t else e);
        frame.wide_idx <- 0
      | Mcode.Tret v ->
        let result = Option.map (operand_value frame) v in
        cell.stack <- rest;
        (match cell.stack with
        | [] ->
          cell.result <- result;
          cell.status <- Halted
        | caller :: _ -> (
          caller.block <- frame.ret_block;
          caller.wide_idx <- 0;
          match (frame.ret_dst, result) with
          | Some d, Some v -> caller.regs.(d) <- v
          | Some _, None -> raise (Fault "void return into a register")
          | None, _ -> ()))
      | Mcode.Tcall { callee; args; dst; cont } -> (
        match Mcode.find_func cell.image callee with
        | None -> raise (Fault ("undefined function " ^ callee))
        | Some func ->
          let arg_values = List.map (operand_value frame) args in
          let callee_frame = new_frame func ~ret_dst:dst ~ret_block:cont in
          (if List.length arg_values <> List.length func.Mcode.param_locs then
             raise (Fault ("arity mismatch calling " ^ callee)));
          List.iter2
            (fun loc v -> callee_frame.regs.(loc) <- v)
            func.Mcode.param_locs arg_values;
          cell.stack <- callee_frame :: cell.stack));
      cell.cycle <- cell.cycle + 1;
      if cell.status <> Halted then cell.status <- Running;
      cell.status
    end)

(* Run to completion with scripted ports. *)
let run ?(fuel = 10_000_000) ?ports (image : Mcode.image) ~name ~args :
    value option * int =
  let cell = create ?ports image ~name ~args in
  let budget = ref fuel in
  let rec loop () =
    if !budget <= 0 then raise (Fault "out of fuel")
    else begin
      decr budget;
      match step cell with
      | Halted -> (cell.result, cell.cycle)
      | Blocked -> raise (Fault "deadlock: cell blocked on a queue")
      | Running -> loop ()
    end
  in
  loop ()
