(** Lockstep simulator for a linear array of cells — the target of one
    section program.

    Every cell runs the same entry function (SPMD; per-cell arguments
    differentiate by position).  Channel X flows left to right, Y right
    to left, with the host feeding and collecting the array ends.
    Queues hold {!Machine.queue_capacity} entries; sends become visible
    to the neighbour at the next cycle, so the outcome does not depend
    on stepping order. *)

type value = Cellsim.value

exception Deadlock of int (** cycle at which no cell could progress *)

type result = {
  returns : value option array; (** per-cell return value *)
  host_x : value list; (** X output of the last cell *)
  host_y : value list; (** Y output of cell 0 *)
  cycles : int;
}

val run :
  ?fuel:int ->
  Mcode.image ->
  name:string ->
  args:(int -> value list) ->
  ?input_x:value list ->
  ?input_y:value list ->
  unit ->
  result
