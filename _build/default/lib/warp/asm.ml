(* Assembler — phase 4.

   Encodes a linked image into the binary download-module format and
   decodes it back (the decoder doubles as the loader).  The format is
   deliberately simple: length-prefixed strings, 8-byte big-endian
   words, one tag byte per field group.

   Layout:
     magic "WOBJ1\n"
     section name, cell count
     function count, then per function:
       name, param locations, array table (name, size, elem ty)
       block count, then per block:
         wide count, 5 slots per wide (tagged), terminator
*)

exception Bad_object of string

(* --- encoding --- *)

let add_u8 buf n = Buffer.add_uint8 buf (n land 0xff)
let add_i64 buf n = Buffer.add_int64_be buf (Int64.of_int n)
let add_f64 buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let add_string buf s =
  add_i64 buf (String.length s);
  Buffer.add_string buf s

let binop_code (op : Midend.Ir.binop) =
  match op with
  | Iadd -> 0
  | Isub -> 1
  | Imul -> 2
  | Idiv -> 3
  | Imod -> 4
  | Fadd -> 5
  | Fsub -> 6
  | Fmul -> 7
  | Fdiv -> 8
  | Icmp Ceq -> 9
  | Icmp Cne -> 10
  | Icmp Clt -> 11
  | Icmp Cle -> 12
  | Icmp Cgt -> 13
  | Icmp Cge -> 14
  | Fcmp Ceq -> 15
  | Fcmp Cne -> 16
  | Fcmp Clt -> 17
  | Fcmp Cle -> 18
  | Fcmp Cgt -> 19
  | Fcmp Cge -> 20
  | Band -> 21
  | Bor -> 22
  | Imin -> 23
  | Imax -> 24
  | Fmin -> 25
  | Fmax -> 26

let binop_of_code = function
  | 0 -> Midend.Ir.Iadd
  | 1 -> Midend.Ir.Isub
  | 2 -> Midend.Ir.Imul
  | 3 -> Midend.Ir.Idiv
  | 4 -> Midend.Ir.Imod
  | 5 -> Midend.Ir.Fadd
  | 6 -> Midend.Ir.Fsub
  | 7 -> Midend.Ir.Fmul
  | 8 -> Midend.Ir.Fdiv
  | 9 -> Midend.Ir.Icmp Midend.Ir.Ceq
  | 10 -> Midend.Ir.Icmp Midend.Ir.Cne
  | 11 -> Midend.Ir.Icmp Midend.Ir.Clt
  | 12 -> Midend.Ir.Icmp Midend.Ir.Cle
  | 13 -> Midend.Ir.Icmp Midend.Ir.Cgt
  | 14 -> Midend.Ir.Icmp Midend.Ir.Cge
  | 15 -> Midend.Ir.Fcmp Midend.Ir.Ceq
  | 16 -> Midend.Ir.Fcmp Midend.Ir.Cne
  | 17 -> Midend.Ir.Fcmp Midend.Ir.Clt
  | 18 -> Midend.Ir.Fcmp Midend.Ir.Cle
  | 19 -> Midend.Ir.Fcmp Midend.Ir.Cgt
  | 20 -> Midend.Ir.Fcmp Midend.Ir.Cge
  | 21 -> Midend.Ir.Band
  | 22 -> Midend.Ir.Bor
  | 23 -> Midend.Ir.Imin
  | 24 -> Midend.Ir.Imax
  | 25 -> Midend.Ir.Fmin
  | 26 -> Midend.Ir.Fmax
  | n -> raise (Bad_object (Printf.sprintf "binop code %d" n))

let unop_code (op : Midend.Ir.unop) =
  match op with
  | Ineg -> 0
  | Fneg -> 1
  | Bnot -> 2
  | Itof -> 3
  | Ftoi -> 4
  | Fsqrt -> 5
  | Fabs -> 6
  | Iabs -> 7

let unop_of_code = function
  | 0 -> Midend.Ir.Ineg
  | 1 -> Midend.Ir.Fneg
  | 2 -> Midend.Ir.Bnot
  | 3 -> Midend.Ir.Itof
  | 4 -> Midend.Ir.Ftoi
  | 5 -> Midend.Ir.Fsqrt
  | 6 -> Midend.Ir.Fabs
  | 7 -> Midend.Ir.Iabs
  | n -> raise (Bad_object (Printf.sprintf "unop code %d" n))

let chan_code = function W2.Ast.Chan_x -> 0 | W2.Ast.Chan_y -> 1

let chan_of_code = function
  | 0 -> W2.Ast.Chan_x
  | 1 -> W2.Ast.Chan_y
  | n -> raise (Bad_object (Printf.sprintf "channel code %d" n))

let ty_code (ty : Midend.Ir.ty) =
  match ty with Int -> 0 | Float -> 1 | Bool -> 2

let ty_of_code = function
  | 0 -> Midend.Ir.Int
  | 1 -> Midend.Ir.Float
  | 2 -> Midend.Ir.Bool
  | n -> raise (Bad_object (Printf.sprintf "type code %d" n))

let add_operand buf = function
  | Midend.Ir.Reg r ->
    add_u8 buf 0;
    add_i64 buf r
  | Midend.Ir.Imm_int n ->
    add_u8 buf 1;
    add_i64 buf n
  | Midend.Ir.Imm_float f ->
    add_u8 buf 2;
    add_f64 buf f

let add_instr buf ~array_index (instr : Midend.Ir.instr) =
  match instr with
  | Bin (op, d, x, y) ->
    add_u8 buf 0;
    add_u8 buf (binop_code op);
    add_i64 buf d;
    add_operand buf x;
    add_operand buf y
  | Un (op, d, x) ->
    add_u8 buf 1;
    add_u8 buf (unop_code op);
    add_i64 buf d;
    add_operand buf x
  | Mov (d, x) ->
    add_u8 buf 2;
    add_i64 buf d;
    add_operand buf x
  | Load (d, a, i) ->
    add_u8 buf 3;
    add_i64 buf d;
    add_i64 buf (array_index a);
    add_operand buf i
  | Store (a, i, v) ->
    add_u8 buf 4;
    add_i64 buf (array_index a);
    add_operand buf i;
    add_operand buf v
  | Send (c, v) ->
    add_u8 buf 5;
    add_u8 buf (chan_code c);
    add_operand buf v
  | Recv (c, d) ->
    add_u8 buf 6;
    add_u8 buf (chan_code c);
    add_i64 buf d
  | Sel (d, c, a, b) ->
    add_u8 buf 7;
    add_i64 buf d;
    add_operand buf c;
    add_operand buf a;
    add_operand buf b
  | Call _ -> raise (Bad_object "call op inside wide instruction")

let add_mterm buf ~symbol_index (t : Mcode.mterm) =
  match t with
  | Mcode.Tjump l ->
    add_u8 buf 0;
    add_i64 buf l
  | Mcode.Tbranch (c, a, b) ->
    add_u8 buf 1;
    add_operand buf c;
    add_i64 buf a;
    add_i64 buf b
  | Mcode.Tret None -> add_u8 buf 2
  | Mcode.Tret (Some v) ->
    add_u8 buf 3;
    add_operand buf v
  | Mcode.Tcall { callee; args; dst; cont } ->
    add_u8 buf 4;
    add_i64 buf (symbol_index callee);
    add_i64 buf (List.length args);
    List.iter (add_operand buf) args;
    (match dst with
    | None -> add_u8 buf 0
    | Some d ->
      add_u8 buf 1;
      add_i64 buf d);
    add_i64 buf cont

let magic = "WOBJ1\n"

let encode (image : Mcode.image) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_string buf image.Mcode.img_section;
  add_i64 buf image.Mcode.img_cells;
  add_i64 buf (Array.length image.Mcode.funcs);
  let symbol_index name =
    match List.assoc_opt name image.Mcode.symbols with
    | Some i -> i
    | None -> raise (Bad_object ("unresolved symbol " ^ name))
  in
  Array.iter
    (fun (f : Mcode.mfunc) ->
      add_string buf f.Mcode.mf_name;
      add_i64 buf (List.length f.Mcode.param_locs);
      List.iter (add_i64 buf) f.Mcode.param_locs;
      add_i64 buf (List.length f.Mcode.mf_arrays);
      List.iter
        (fun (name, size, ty) ->
          add_string buf name;
          add_i64 buf size;
          add_u8 buf (ty_code ty))
        f.Mcode.mf_arrays;
      let array_index a =
        let rec find i = function
          | [] -> raise (Bad_object ("unknown array " ^ a))
          | (name, _, _) :: rest -> if name = a then i else find (i + 1) rest
        in
        find 0 f.Mcode.mf_arrays
      in
      add_i64 buf (Array.length f.Mcode.mblocks);
      Array.iter
        (fun (b : Mcode.mblock) ->
          add_u8 buf (if b.Mcode.mb_pipelined then 1 else 0);
          add_i64 buf (Array.length b.Mcode.code);
          Array.iter
            (fun w ->
              List.iter
                (fun fu ->
                  match Mcode.slot w fu with
                  | None -> add_u8 buf 0
                  | Some op ->
                    add_u8 buf 1;
                    add_instr buf ~array_index op)
                Machine.all_fus)
            b.Mcode.code;
          add_mterm buf ~symbol_index b.Mcode.mterm)
        f.Mcode.mblocks)
    image.Mcode.funcs;
  Buffer.contents buf

(* --- decoding --- *)

type reader = { data : string; mutable pos : int }

let read_u8 r =
  if r.pos >= String.length r.data then raise (Bad_object "truncated");
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_i64 r =
  if r.pos + 8 > String.length r.data then raise (Bad_object "truncated");
  let v = Int64.to_int (String.get_int64_be r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let read_f64 r =
  if r.pos + 8 > String.length r.data then raise (Bad_object "truncated");
  let v = Int64.float_of_bits (String.get_int64_be r.data r.pos) in
  r.pos <- r.pos + 8;
  v

(* Counts read from untrusted input: negative or absurd values are
   malformed, not allocation requests. *)
let read_count ?(max = 1_000_000) r =
  let n = read_i64 r in
  if n < 0 || n > max then raise (Bad_object (Printf.sprintf "bad count %d" n));
  n

let read_string r =
  let n = read_count r in
  if r.pos + n > String.length r.data then raise (Bad_object "truncated");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_operand r =
  match read_u8 r with
  | 0 -> Midend.Ir.Reg (read_i64 r)
  | 1 -> Midend.Ir.Imm_int (read_i64 r)
  | 2 -> Midend.Ir.Imm_float (read_f64 r)
  | n -> raise (Bad_object (Printf.sprintf "operand kind %d" n))

let read_instr r ~array_name : Midend.Ir.instr =
  match read_u8 r with
  | 0 ->
    let op = binop_of_code (read_u8 r) in
    let d = read_i64 r in
    let x = read_operand r in
    let y = read_operand r in
    Bin (op, d, x, y)
  | 1 ->
    let op = unop_of_code (read_u8 r) in
    let d = read_i64 r in
    let x = read_operand r in
    Un (op, d, x)
  | 2 ->
    let d = read_i64 r in
    let x = read_operand r in
    Mov (d, x)
  | 3 ->
    let d = read_i64 r in
    let a = array_name (read_i64 r) in
    let i = read_operand r in
    Load (d, a, i)
  | 4 ->
    let a = array_name (read_i64 r) in
    let i = read_operand r in
    let v = read_operand r in
    Store (a, i, v)
  | 5 ->
    let c = chan_of_code (read_u8 r) in
    let v = read_operand r in
    Send (c, v)
  | 6 ->
    let c = chan_of_code (read_u8 r) in
    let d = read_i64 r in
    Recv (c, d)
  | 7 ->
    let d = read_i64 r in
    let c = read_operand r in
    let a = read_operand r in
    let b = read_operand r in
    Sel (d, c, a, b)
  | n -> raise (Bad_object (Printf.sprintf "instr kind %d" n))

let read_mterm r ~symbol_name : Mcode.mterm =
  match read_u8 r with
  | 0 -> Mcode.Tjump (read_i64 r)
  | 1 ->
    let c = read_operand r in
    let a = read_i64 r in
    let b = read_i64 r in
    Mcode.Tbranch (c, a, b)
  | 2 -> Mcode.Tret None
  | 3 -> Mcode.Tret (Some (read_operand r))
  | 4 ->
    let callee = symbol_name (read_i64 r) in
    let nargs = read_count ~max:256 r in
    let args = List.init nargs (fun _ -> read_operand r) in
    let dst = match read_u8 r with 0 -> None | _ -> Some (read_i64 r) in
    let cont = read_i64 r in
    Mcode.Tcall { callee; args; dst; cont }
  | n -> raise (Bad_object (Printf.sprintf "terminator kind %d" n))

let decode (data : string) : Mcode.image =
  let r = { data; pos = 0 } in
  let m = String.length magic in
  if String.length data < m || String.sub data 0 m <> magic then
    raise (Bad_object "bad magic");
  r.pos <- m;
  let section = read_string r in
  let cells = read_i64 r in
  let nfuncs = read_count ~max:100_000 r in
  (* Function names appear in declaration order, which is the symbol
     table order produced by the linker. *)
  let funcs = ref [] in
  let names = ref [] in
  for _ = 1 to nfuncs do
    let name = read_string r in
    names := name :: !names;
    let nparams = read_count ~max:256 r in
    let param_locs = List.init nparams (fun _ -> read_i64 r) in
    let narrays = read_count ~max:4096 r in
    let arrays =
      List.init narrays (fun _ ->
          let a = read_string r in
          let size = read_i64 r in
          let ty = ty_of_code (read_u8 r) in
          (a, size, ty))
    in
    let array_name i =
      if i < 0 then raise (Bad_object "array index out of range")
      else
        match List.nth_opt arrays i with
        | Some (a, _, _) -> a
        | None -> raise (Bad_object "array index out of range")
    in
    let nblocks = read_count ~max:1_000_000 r in
    let blocks =
      Array.init nblocks (fun _ ->
          let mb_pipelined = read_u8 r <> 0 in
          let ncode = read_count ~max:10_000_000 r in
          let code =
            Array.init ncode (fun _ ->
                List.fold_left
                  (fun w fu ->
                    match read_u8 r with
                    | 0 -> w
                    | 1 -> Mcode.with_slot w fu (read_instr r ~array_name)
                    | n -> raise (Bad_object (Printf.sprintf "slot tag %d" n)))
                  Mcode.empty_wide Machine.all_fus)
          in
          (* Terminators may reference symbols by index; patch later. *)
          let mterm = read_mterm r ~symbol_name:(fun i -> "#" ^ string_of_int i) in
          { Mcode.code; mterm; mb_pipelined })
    in
    funcs := (name, param_locs, arrays, blocks) :: !funcs
  done;
  let ordered = List.rev !funcs in
  let symbol_names = Array.of_list (List.rev !names) in
  let resolve = function
    | name when String.length name > 1 && name.[0] = '#' ->
      let i = int_of_string (String.sub name 1 (String.length name - 1)) in
      if i < 0 || i >= Array.length symbol_names then
        raise (Bad_object "symbol index out of range");
      symbol_names.(i)
    | name -> name
  in
  let mfuncs =
    List.map
      (fun (name, param_locs, arrays, blocks) ->
        let mblocks =
          Array.map
            (fun (b : Mcode.mblock) ->
              match b.Mcode.mterm with
              | Mcode.Tcall c ->
                { b with Mcode.mterm = Mcode.Tcall { c with callee = resolve c.callee } }
              | Mcode.Tjump _ | Mcode.Tbranch _ | Mcode.Tret _ -> b)
            blocks
        in
        { Mcode.mf_name = name; param_locs; mf_arrays = arrays; mblocks })
      ordered
  in
  let arr = Array.of_list mfuncs in
  let symbols = Array.to_list (Array.mapi (fun i (f : Mcode.mfunc) -> (f.Mcode.mf_name, i)) arr) in
  { Mcode.img_section = section; img_cells = cells; funcs = arr; symbols }

(* Size of the download module in bytes; drives the network cost of
   program download in the host simulation. *)
let encoded_size image = String.length (encode image)
