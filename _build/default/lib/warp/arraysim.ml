(* Lockstep simulator for a linear array of cells — the target of one
   section program.

   Every cell runs the same entry function of the section image (the
   usual SPMD arrangement; per-cell arguments let a program
   differentiate by position).  Channel X flows left to right: cell i's
   sends on X feed cell i+1's receives on X, with the host feeding cell
   0 and collecting from the last cell.  Channel Y flows right to left
   symmetrically.

   Queues have [Machine.queue_capacity] entries; cells stall when
   receiving from an empty queue or sending into a full one.  Sends
   become visible to the neighbour at the next cycle (staged commits),
   so the outcome does not depend on the order cells are stepped in. *)

type value = Cellsim.value

exception Deadlock of int (* cycle *)

type result = {
  returns : value option array; (* per-cell return value *)
  host_x : value list; (* X output of the last cell *)
  host_y : value list; (* Y output of cell 0 *)
  cycles : int;
}

let run ?(fuel = 10_000_000) (image : Mcode.image) ~name ~(args : int -> value list)
    ?(input_x = []) ?(input_y = []) () : result =
  let n = max 1 image.Mcode.img_cells in
  (* x_in.(i) feeds cell i's X receives; x_in.(0) is host input.
     y_in.(i) feeds cell i's Y receives; y_in.(n-1) is host input. *)
  let x_in = Array.init n (fun _ -> Queue.create ()) in
  let y_in = Array.init n (fun _ -> Queue.create ()) in
  List.iter (fun v -> Queue.push v x_in.(0)) input_x;
  List.iter (fun v -> Queue.push v y_in.(n - 1)) input_y;
  let host_x = Queue.create () in
  let host_y = Queue.create () in
  let staged = ref [] in (* (queue, value) committed after the cycle *)
  let queue_room q =
    (* Count both committed and staged entries toward capacity. *)
    let pending = List.length (List.filter (fun (q', _) -> q' == q) !staged) in
    Queue.length q + pending < Machine.queue_capacity
  in
  let ports i =
    let recv (c : W2.Ast.channel) =
      match c with
      | W2.Ast.Chan_x -> Queue.take_opt x_in.(i)
      | W2.Ast.Chan_y -> Queue.take_opt y_in.(i)
    in
    let send (c : W2.Ast.channel) v =
      match c with
      | W2.Ast.Chan_x ->
        if i = n - 1 then begin
          Queue.push v host_x;
          true
        end
        else if queue_room x_in.(i + 1) then begin
          staged := (x_in.(i + 1), v) :: !staged;
          true
        end
        else false
      | W2.Ast.Chan_y ->
        if i = 0 then begin
          Queue.push v host_y;
          true
        end
        else if queue_room y_in.(i - 1) then begin
          staged := (y_in.(i - 1), v) :: !staged;
          true
        end
        else false
    in
    { Cellsim.recv; send }
  in
  let cells =
    Array.init n (fun i -> Cellsim.create ~ports:(ports i) image ~name ~args:(args i))
  in
  let cycle = ref 0 in
  let finished () =
    Array.for_all (fun c -> c.Cellsim.status = Cellsim.Halted) cells
  in
  while (not (finished ())) && !cycle < fuel do
    let progressed = ref false in
    Array.iter
      (fun cell ->
        if cell.Cellsim.status <> Cellsim.Halted then
          match Cellsim.step cell with
          | Cellsim.Running | Cellsim.Halted -> progressed := true
          | Cellsim.Blocked -> ())
      cells;
    (* Commit this cycle's sends, preserving send order. *)
    let commits = List.rev !staged in
    staged := [];
    List.iter (fun (q, v) -> Queue.push v q) commits;
    if commits <> [] then progressed := true;
    if not !progressed then raise (Deadlock !cycle);
    incr cycle
  done;
  if not (finished ()) then raise (Deadlock !cycle);
  {
    returns = Array.map (fun c -> c.Cellsim.result) cells;
    host_x = List.of_seq (Queue.to_seq host_x);
    host_y = List.of_seq (Queue.to_seq host_y);
    cycles = !cycle;
  }
