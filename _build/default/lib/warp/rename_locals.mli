(** Modulo-friendly renaming of block-local temporaries.

    After whole-function register allocation, a loop body reuses a
    small set of physical registers at short distances; each reuse adds
    a wrapped anti-dependence that caps how far iterations can overlap.
    This pass moves every definition whose value dies inside the block
    onto a register drawn FIFO from the pool of registers the block
    does not otherwise touch and through which no live value passes —
    maximising reuse distance while preserving the block's interface
    exactly. *)

val run : Midend.Ir.func -> int -> unit
(** [run f b] rewrites block [b] of [f] in place. *)
