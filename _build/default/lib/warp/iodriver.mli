(** I/O driver generation — the last piece of phase 4: a host-side
    description of one downloadable section image (queue wiring, entry
    points, download size). *)

type entry = {
  entry_name : string;
  arg_count : int;
  returns_value : bool;
  code_words : int;
}

type t = {
  drv_section : string;
  drv_cells : int;
  download_bytes : int;
  wiring : string list; (** one line per queue link *)
  entries : entry list;
}

val generate : Mcode.image -> t
val to_string : t -> string
