(* List scheduling of one basic block onto the wide-instruction cell.

   Greedy cycle-by-cycle: at each cycle the ready operations (all
   distance-0 predecessors scheduled and their delays elapsed) are
   placed into free functional-unit slots in decreasing critical-path
   height.  The block is padded so that every result has been written by
   the time the terminator executes (clean block boundaries).

   Returns the wide code and the number of placement attempts, which
   feeds the phase-3 cost model. *)

open Midend

type schedule = {
  code : Mcode.wide array;
  issue : int array; (* issue cycle per op *)
  attempts : int; (* work units *)
}

let run (ops : Ir.instr array) : schedule =
  let n = Array.length ops in
  if n = 0 then { code = [||]; issue = [||]; attempts = 0 }
  else begin
    let g = Ddg.build ~loop:false ops in
    let height = Ddg.heights g in
    let issue = Array.make n (-1) in
    let scheduled = ref 0 in
    let attempts = ref 0 in
    let wides = ref [] in (* reversed *)
    let cycle = ref 0 in
    while !scheduled < n do
      (* Ready ops: unscheduled, all preds done with delays satisfied. *)
      let ready =
        List.filter
          (fun i ->
            issue.(i) < 0
            && List.for_all
                 (fun (p, delay, dist) ->
                   dist > 0 || (issue.(p) >= 0 && !cycle >= issue.(p) + delay))
                 g.preds.(i))
          (List.init n Fun.id)
        |> List.sort (fun a b -> compare (height.(b), a) (height.(a), b))
      in
      let wide = ref Mcode.empty_wide in
      List.iter
        (fun i ->
          incr attempts;
          let fu = Machine.fu_of ops.(i) in
          if Mcode.slot !wide fu = None then begin
            wide := Mcode.with_slot !wide fu ops.(i);
            issue.(i) <- !cycle;
            incr scheduled
          end)
        ready;
      wides := !wide :: !wides;
      incr cycle
    done;
    (* Pad so every write has landed before the terminator. *)
    let finish =
      Array.to_list (Array.mapi (fun i op -> issue.(i) + Machine.latency op) ops)
      |> List.fold_left max !cycle
    in
    let code = Array.make finish Mcode.empty_wide in
    List.iteri
      (fun k w -> code.(!cycle - 1 - k) <- w)
      !wides;
    { code; issue; attempts = !attempts }
  end
