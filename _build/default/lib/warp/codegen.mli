(** Phase 3: code generation.

    Per function: find software-pipelining candidates (canonical
    counted loops with constant trips and call-free single-block
    bodies); allocate registers; split blocks at calls (calls become
    block terminators); then schedule — modulo scheduling with flat
    emission for the pipelined bodies, list scheduling elsewhere. *)

type compiled = {
  mfunc : Mcode.mfunc;
  sched_work : int; (** placement attempts (phase-3 work units) *)
  spilled : int;
  pipelined : int; (** loops software-pipelined *)
  ii_total : int; (** sum of achieved initiation intervals *)
  wide_count : int; (** code size *)
}

val max_pipeline_trip : int
val max_pipeline_ops : int

val pipeline_candidates :
  Midend.Ir.func -> (Midend.Counted.t * int) list
(** Counted loops eligible for software pipelining, with their trip
    counts.  Found on virtual registers (the dead-guard check needs
    unaliased names); block ids survive allocation and call
    splitting. *)

val compile_function :
  ?pipeline:bool -> ?reg_limit:int -> Midend.Ir.func -> compiled
(** [pipeline:false] disables software pipelining (ablation);
    [reg_limit] exercises spilling.  The input is copied, never
    mutated. *)
