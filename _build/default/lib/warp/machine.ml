(* Machine description of one Warp-like processing element.

   The cell is a wide-instruction-word machine: one operation may issue
   per functional unit per cycle.  Functional units are pipelined — an
   operation issued at cycle t writes its result register at t + latency,
   and a new operation may issue on the same unit at t + 1.

   Units:
     ALU    integer arithmetic, comparisons, moves       (latency 1;
            integer multiply 4, divide/mod 12 — making the strength
            reduction of the optimizer worthwhile)
     FALU   float add/sub/compare/min/max/abs/neg, conversions (latency 5)
     FMUL   float multiply (5), divide (12), square root (15)
     MEM    local-memory load (3) and store (1)
     QIO    systolic queue send/receive (1)

   Control (branches, calls, returns) occupies the final instruction of
   a block; the schedule pads each block so that all writes have landed
   before control transfers (the classic "clean block boundary" model).

   Registers: one windowed file of [num_regs] general registers.  A call
   pushes a fresh window (the hardware equivalent of the Lisp compiler's
   caller-save-everything convention), so calls clobber nothing. *)

type fu = ALU | FALU | FMUL | MEM | QIO

let all_fus = [ ALU; FALU; FMUL; MEM; QIO ]

let fu_to_string = function
  | ALU -> "alu"
  | FALU -> "falu"
  | FMUL -> "fmul"
  | MEM -> "mem"
  | QIO -> "qio"

let num_regs = 64

(* Registers reserved for spill-code temporaries. *)
let num_scratch_regs = 4
let num_allocatable = num_regs - num_scratch_regs
let scratch_reg i = num_allocatable + i

(* Capacity of the inter-cell queues (Warp's queues were small). *)
let queue_capacity = 32

(* Functional unit and latency of each (register-allocated) IR
   instruction.  Calls are control, not FU operations. *)
let fu_of (instr : Midend.Ir.instr) : fu =
  match instr with
  | Midend.Ir.Bin ((Fadd | Fsub | Fmin | Fmax), _, _, _) -> FALU
  | Midend.Ir.Bin (Fcmp _, _, _, _) -> FALU
  | Midend.Ir.Bin ((Fmul | Fdiv), _, _, _) -> FMUL
  | Midend.Ir.Bin ((Iadd | Isub | Imul | Idiv | Imod | Band | Bor | Imin | Imax), _, _, _)
  | Midend.Ir.Bin (Icmp _, _, _, _) ->
    ALU
  | Midend.Ir.Un ((Fneg | Fabs | Itof | Ftoi), _, _) -> FALU
  | Midend.Ir.Un (Fsqrt, _, _) -> FMUL
  | Midend.Ir.Un ((Ineg | Bnot | Iabs), _, _) -> ALU
  | Midend.Ir.Mov _ | Midend.Ir.Sel _ -> ALU
  | Midend.Ir.Load _ | Midend.Ir.Store _ -> MEM
  | Midend.Ir.Send _ | Midend.Ir.Recv _ -> QIO
  | Midend.Ir.Call _ -> invalid_arg "Machine.fu_of: calls are control flow"

let latency (instr : Midend.Ir.instr) : int =
  match instr with
  | Midend.Ir.Bin ((Iadd | Isub | Band | Bor | Imin | Imax), _, _, _) -> 1
  | Midend.Ir.Bin (Icmp _, _, _, _) -> 1
  | Midend.Ir.Bin (Imul, _, _, _) -> 4
  | Midend.Ir.Bin ((Idiv | Imod), _, _, _) -> 12
  | Midend.Ir.Bin ((Fadd | Fsub | Fmin | Fmax), _, _, _) -> 5
  | Midend.Ir.Bin (Fcmp _, _, _, _) -> 5
  | Midend.Ir.Bin (Fmul, _, _, _) -> 5
  | Midend.Ir.Bin (Fdiv, _, _, _) -> 12
  | Midend.Ir.Un ((Ineg | Bnot | Iabs), _, _) -> 1
  | Midend.Ir.Un ((Fneg | Fabs), _, _) -> 5
  | Midend.Ir.Un ((Itof | Ftoi), _, _) -> 5
  | Midend.Ir.Un (Fsqrt, _, _) -> 15
  | Midend.Ir.Mov _ | Midend.Ir.Sel _ -> 1
  | Midend.Ir.Load _ -> 3
  | Midend.Ir.Store _ -> 1
  | Midend.Ir.Send _ | Midend.Ir.Recv _ -> 1
  | Midend.Ir.Call _ -> invalid_arg "Machine.latency: calls are control flow"
