(* Linking — part of phase 4.

   Combines the compiled functions of one section into a downloadable
   cell image: assigns function indices, builds the symbol table and
   checks that every call target resolves and agrees in arity. *)

exception Undefined_symbol of string * string (* caller, callee *)
exception Arity_mismatch of string * string * int * int

let link ~section ~cells (funcs : Mcode.mfunc list) : Mcode.image =
  let arr = Array.of_list funcs in
  let symbols =
    Array.to_list (Array.mapi (fun i (f : Mcode.mfunc) -> (f.Mcode.mf_name, i)) arr)
  in
  let image = { Mcode.img_section = section; img_cells = cells; funcs = arr; symbols } in
  (* Resolve and check every call site. *)
  Array.iter
    (fun (f : Mcode.mfunc) ->
      Array.iter
        (fun (b : Mcode.mblock) ->
          match b.Mcode.mterm with
          | Mcode.Tcall { callee; args; _ } -> (
            match Mcode.find_func image callee with
            | None -> raise (Undefined_symbol (f.Mcode.mf_name, callee))
            | Some target ->
              let expected = List.length target.Mcode.param_locs in
              let got = List.length args in
              if expected <> got then
                raise (Arity_mismatch (f.Mcode.mf_name, callee, expected, got)))
          | Mcode.Tjump _ | Mcode.Tbranch _ | Mcode.Tret _ -> ())
        f.Mcode.mblocks)
    arr;
  image
