(* Timing results of one (simulated) compilation run, and the overhead
   decomposition of section 4.2.3.

   Elapsed ("user") time is the wall-clock the user waits; CPU time is
   reported per processor, as in the paper's figures.  The
   implementation overhead is the extra work the parallel compiler does
   compared to the sequential one: the master's setup parse and
   scheduling, the section masters (startup, directive interpretation,
   combining results and diagnostics), and the function masters'
   re-parsing of their share of the source.  The system overhead is the
   remainder of the total overhead — process startup, network and file
   server load, GC and paging. *)

type run = {
  elapsed : float;
  cpu_per_station : float list; (* busy seconds of each station used *)
  master_cpu : float; (* setup parse + scheduling *)
  section_cpu : float; (* section-master work *)
  extra_parse_cpu : float; (* function masters re-parsing *)
  stations_used : int;
  dispatch_units : int; (* function-master tasks actually launched
                           (after batching; 1 for a sequential run) *)
  retries : int; (* task re-dispatches after crash or timeout *)
  stations_lost : int; (* stations crashed or reclaimed by run's end *)
  fallback_tasks : int; (* tasks finished sequentially on the master *)
  wasted_cpu : float; (* CPU burned by attempts whose output was lost *)
  spec_dispatched : int; (* attempts launched past a speculative edge *)
  spec_committed : int; (* speculative attempts whose staged output
                           won the commit check *)
  spec_rolled_back : int; (* speculative attempts aborted by the commit
                             oracle (charged to wasted_cpu) *)
  cache_hits : int; (* functions whose phase-2/3 artifact came from the
                       compile cache (compute skipped) *)
  cache_misses : int; (* functions looked up but computed; includes the
                         invalidated ones *)
  cache_invalidated : int; (* misses whose owner previously published a
                              different key: dependency-aware
                              invalidations, a subset of cache_misses *)
}

type comparison = {
  processors : int; (* function masters running in parallel *)
  seq : run;
  par : run;
  speedup : float; (* sequential elapsed / parallel elapsed *)
  total_overhead : float; (* parallel elapsed - ideal *)
  impl_overhead : float;
  sys_overhead : float;
  rel_total_overhead : float; (* percent of parallel elapsed *)
  rel_sys_overhead : float;
}

(* Ideal parallel time: perfect division of the sequential elapsed time
   over the processors that carry function masters. *)
let ideal_time ~(seq : run) ~processors =
  seq.elapsed /. float_of_int (max 1 processors)

let compare_runs ~processors ~(seq : run) ~(par : run) : comparison =
  let ideal = ideal_time ~seq ~processors in
  let total_overhead = par.elapsed -. ideal in
  let impl_overhead = par.master_cpu +. par.section_cpu +. par.extra_parse_cpu in
  let sys_overhead = total_overhead -. impl_overhead in
  {
    processors;
    seq;
    par;
    speedup = Stats.speedup ~sequential:seq.elapsed ~parallel:par.elapsed;
    total_overhead;
    impl_overhead;
    sys_overhead;
    rel_total_overhead = Stats.percent_of ~part:total_overhead ~total:par.elapsed;
    rel_sys_overhead = Stats.percent_of ~part:sys_overhead ~total:par.elapsed;
  }

let max_cpu (r : run) =
  match r.cpu_per_station with [] -> 0.0 | l -> Stats.maximum l

(* Machine-readable comparison, in the style of BENCH_parallel.json
   (hand-rolled: everything here is numbers, so no escaping needed).
   Floats are printed with %.17g so they round-trip exactly. *)
let comparison_to_json (c : comparison) : string =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let f = Printf.sprintf "%.17g" in
  let run_json indent (r : run) =
    pr "%s{\n" indent;
    pr "%s  \"elapsed\": %s,\n" indent (f r.elapsed);
    pr "%s  \"master_cpu\": %s,\n" indent (f r.master_cpu);
    pr "%s  \"section_cpu\": %s,\n" indent (f r.section_cpu);
    pr "%s  \"extra_parse_cpu\": %s,\n" indent (f r.extra_parse_cpu);
    pr "%s  \"stations_used\": %d,\n" indent r.stations_used;
    pr "%s  \"dispatch_units\": %d,\n" indent r.dispatch_units;
    pr "%s  \"retries\": %d,\n" indent r.retries;
    pr "%s  \"stations_lost\": %d,\n" indent r.stations_lost;
    pr "%s  \"fallback_tasks\": %d,\n" indent r.fallback_tasks;
    pr "%s  \"wasted_cpu\": %s,\n" indent (f r.wasted_cpu);
    pr "%s  \"spec_dispatched\": %d,\n" indent r.spec_dispatched;
    pr "%s  \"spec_committed\": %d,\n" indent r.spec_committed;
    pr "%s  \"spec_rolled_back\": %d,\n" indent r.spec_rolled_back;
    pr "%s  \"cache_hits\": %d,\n" indent r.cache_hits;
    pr "%s  \"cache_misses\": %d,\n" indent r.cache_misses;
    pr "%s  \"cache_invalidated\": %d,\n" indent r.cache_invalidated;
    pr "%s  \"cpu_per_station\": [%s]\n" indent
      (String.concat ", " (List.map f r.cpu_per_station));
    pr "%s}" indent
  in
  pr "{\n";
  pr "  \"schema\": \"warpcc-simulate/3\",\n";
  pr "  \"processors\": %d,\n" c.processors;
  pr "  \"speedup\": %s,\n" (f c.speedup);
  pr "  \"total_overhead\": %s,\n" (f c.total_overhead);
  pr "  \"impl_overhead\": %s,\n" (f c.impl_overhead);
  pr "  \"sys_overhead\": %s,\n" (f c.sys_overhead);
  pr "  \"rel_total_overhead\": %s,\n" (f c.rel_total_overhead);
  pr "  \"rel_sys_overhead\": %s,\n" (f c.rel_sys_overhead);
  pr "  \"seq\":\n";
  run_json "  " c.seq;
  pr ",\n  \"par\":\n";
  run_json "  " c.par;
  pr "\n}\n";
  Buffer.contents b
