(* Timing results of one (simulated) compilation run, and the overhead
   decomposition of section 4.2.3.

   Elapsed ("user") time is the wall-clock the user waits; CPU time is
   reported per processor, as in the paper's figures.  The
   implementation overhead is the extra work the parallel compiler does
   compared to the sequential one: the master's setup parse and
   scheduling, the section masters (startup, directive interpretation,
   combining results and diagnostics), and the function masters'
   re-parsing of their share of the source.  The system overhead is the
   remainder of the total overhead — process startup, network and file
   server load, GC and paging. *)

type run = {
  elapsed : float;
  cpu_per_station : float list; (* busy seconds of each station used *)
  master_cpu : float; (* setup parse + scheduling *)
  section_cpu : float; (* section-master work *)
  extra_parse_cpu : float; (* function masters re-parsing *)
  stations_used : int;
  retries : int; (* task re-dispatches after crash or timeout *)
  stations_lost : int; (* stations crashed or reclaimed by run's end *)
  fallback_tasks : int; (* tasks finished sequentially on the master *)
  wasted_cpu : float; (* CPU burned by attempts whose output was lost *)
}

type comparison = {
  processors : int; (* function masters running in parallel *)
  seq : run;
  par : run;
  speedup : float; (* sequential elapsed / parallel elapsed *)
  total_overhead : float; (* parallel elapsed - ideal *)
  impl_overhead : float;
  sys_overhead : float;
  rel_total_overhead : float; (* percent of parallel elapsed *)
  rel_sys_overhead : float;
}

(* Ideal parallel time: perfect division of the sequential elapsed time
   over the processors that carry function masters. *)
let ideal_time ~(seq : run) ~processors =
  seq.elapsed /. float_of_int (max 1 processors)

let compare_runs ~processors ~(seq : run) ~(par : run) : comparison =
  let ideal = ideal_time ~seq ~processors in
  let total_overhead = par.elapsed -. ideal in
  let impl_overhead = par.master_cpu +. par.section_cpu +. par.extra_parse_cpu in
  let sys_overhead = total_overhead -. impl_overhead in
  {
    processors;
    seq;
    par;
    speedup = Stats.speedup ~sequential:seq.elapsed ~parallel:par.elapsed;
    total_overhead;
    impl_overhead;
    sys_overhead;
    rel_total_overhead = Stats.percent_of ~part:total_overhead ~total:par.elapsed;
    rel_sys_overhead = Stats.percent_of ~part:sys_overhead ~total:par.elapsed;
  }

let max_cpu (r : run) =
  match r.cpu_per_station with [] -> 0.0 | l -> Stats.maximum l
