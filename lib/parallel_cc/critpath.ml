(* Critical-path profiling over a finished trace.

   The DES gives every span exact timestamps and exact causality:
   causally adjacent events share the very same float (a store's disk
   operation starts at the transfer's end bit, a dependent task's claim
   request is its predecessor's write-back end bit, a grant is the
   previous occupant's release bit).  That lets us reconstruct the
   blocking graph — what each span's start was waiting on — by walking
   backward from [Trace.end_time]: at every cut we ask "what finished
   exactly here?", consume that span, and continue from its start.
   Whenever nothing finishes at the cut, the machine was waiting on an
   untraced delay (a retry backoff window, the master's fork/orchestra-
   tion serialization, a dependence release) and we close the gap to
   the latest earlier finisher.

   The walk yields a chain of segments that tiles [0, end_time] with
   shared boundary floats — no epsilons anywhere — and attributes every
   second of elapsed time to exactly one bucket:

     cpu              compute on the critical path, split by phase tag
     dependence_wait  dispatch released by a Plan.func_deps edge whose
                      predecessor published before the claim (rare: a
                      gated successor usually chains straight into its
                      predecessor's write-back, which is the honest
                      attribution — the edge is recorded either way)
     pool_wait        claim-to-grant on a contended workstation pool
     ether / fs       Ethernet transfers / file-server operations
     backoff          retry backoff windows (crash or timeout recovery)
     rollback         speculation abort protocol windows
     master_serial    untraced master work: forks, process startups,
                      mailbox hops, dispatch serialization

   Priority at a cut matters: pool grants outrank the unrelated
   activity that happens to finish at the same instant (the grant *is*
   the release of the station's previous occupant, so contention gets
   the blame and the dominant bottleneck shifts with pool size), the
   spec-abort protocol window outranks the store it wraps, compute
   outranks network.  Task-category wrapper spans never compete — they
   cover the primitive cpu/net/pool spans the walk consumes.

   Exactness.  Per-bucket sums re-associate the walk's additions, so a
   naive fold can drift a few ulp from [Trace.end_time].  The published
   invariant — fold the buckets in canonical order, get elapsed, as
   floats — is restored by letting the dominant bucket absorb the
   reassociation residue (an iterated ulp-nudge), cross-checked against
   its raw sum at rounding scale (1e-9 relative) so the nudge can never
   hide an attribution bug.  [assert_exact] checks the invariant, the
   tiling, and bucket non-negativity in the spirit of
   [Traceview.assert_matches_run].

   Everything here only reads a finished trace: profiling can never
   perturb a timing. *)

type bucket =
  | Cpu
  | Dependence_wait
  | Pool_wait
  | Ether
  | Fs
  | Backoff
  | Rollback
  | Master_serial

let bucket_name = function
  | Cpu -> "cpu"
  | Dependence_wait -> "dependence_wait"
  | Pool_wait -> "pool_wait"
  | Ether -> "ether"
  | Fs -> "fs"
  | Backoff -> "backoff"
  | Rollback -> "rollback"
  | Master_serial -> "master_serial"

(* The canonical bucket order of the exact-sum invariant and of every
   exporter (tables, JSON, BENCH artifacts). *)
let bucket_order =
  [ Cpu; Dependence_wait; Pool_wait; Ether; Fs; Backoff; Rollback; Master_serial ]

let bucket_names = List.map bucket_name bucket_order

type segment = {
  g_t0 : float;
  g_t1 : float;
  g_bucket : bucket;
  g_track : int;
  g_detail : string; (* phase tag, span name, or gap reason *)
  g_task : string option; (* enclosing task label, when attributable *)
}

type profile = {
  p_elapsed : float;
  p_segments : segment list; (* ascending; tiles [0, p_elapsed] exactly *)
  p_buckets : (string * float) list; (* canonical order; folds to p_elapsed *)
  p_cpu_by_tag : (string * float) list; (* raw path sums, largest first *)
  p_dep_edges : (string * string) list; (* plan edges crossed on the path *)
}

let fail fmt = Printf.ksprintf (fun m -> failwith ("Critpath: " ^ m)) fmt

let bucket_index = function
  | Cpu -> 0
  | Dependence_wait -> 1
  | Pool_wait -> 2
  | Ether -> 3
  | Fs -> 4
  | Backoff -> 5
  | Rollback -> 6
  | Master_serial -> 7

(* --- the backward chain walk --- *)

let of_trace ?plan ?elapsed (tr : Trace.t) : profile =
  let elapsed =
    match elapsed with Some e -> e | None -> Trace.end_time tr
  in
  let spans =
    List.filter (fun (s : Trace.span) -> s.Trace.cat <> "fault") (Trace.spans tr)
  in
  (* Walk candidates: the primitive resource spans ending inside the
     profiled window.  Under timeouts a superseded attempt's queued
     claim can be granted after the run already completed by other
     means and execute to its natural end as pure wasted work; an
     [~elapsed] anchor at [Timings.elapsed] keeps those stragglers off
     the path.  Task-category wrappers are excluded — they cover the
     cpu/net/pool spans the walk consumes — except spec-abort, the
     rollback window, which must outrank the store it wraps. *)
  let candidate (s : Trace.span) =
    s.Trace.t1 > s.Trace.t0
    && s.Trace.t1 <= elapsed
    &&
    match s.Trace.cat with
    | "cpu" | "net" | "pool" -> true
    | "task" -> s.Trace.name = "spec-abort"
    | _ -> false
  in
  let cands = List.filter candidate spans in
  let ends_at : (float, Trace.span list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (s : Trace.span) ->
      let prev =
        match Hashtbl.find_opt ends_at s.Trace.t1 with Some l -> l | None -> []
      in
      Hashtbl.replace ends_at s.Trace.t1 (s :: prev))
    cands;
  let end_times =
    Array.of_list
      (List.sort_uniq compare (List.map (fun (s : Trace.span) -> s.Trace.t1) cands))
  in
  (* Largest candidate end strictly below [t]; 0 when none. *)
  let prev_end t =
    let lo = ref 0 and hi = ref (Array.length end_times) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if end_times.(mid) < t then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then 0.0 else end_times.(!lo - 1)
  in
  (* Blame priority at a cut (see the header). *)
  let rank (s : Trace.span) =
    match s.Trace.cat with
    | "pool" -> 0
    | "task" -> 1 (* spec-abort *)
    | "cpu" -> 2
    | _ -> if s.Trace.track = Trace.fs_track then 3 else 4
  in
  let pick t =
    match Hashtbl.find_opt ends_at t with
    | None -> None
    | Some ss ->
      let better (a : Trace.span) (b : Trace.span) =
        let ra = rank a and rb = rank b in
        if ra <> rb then ra < rb
        else if a.Trace.t0 <> b.Trace.t0 then a.Trace.t0 > b.Trace.t0
        else a.Trace.track < b.Trace.track
      in
      List.fold_left
        (fun best s ->
          match best with
          | None -> Some s
          | Some b -> if better s b then Some s else best)
        None ss
  in
  (* Task labels by containment: the innermost task-lifecycle wrapper
     covering a segment names the task it served (net segments live on
     the infrastructure tracks, so containment is checked across all
     tracks and the tightest wrapper wins). *)
  let task_spans =
    List.filter
      (fun (s : Trace.span) ->
        s.Trace.cat = "task" && List.mem_assoc "task" s.Trace.args)
      spans
  in
  let label_for ~t0 ~t1 =
    List.fold_left
      (fun best (s : Trace.span) ->
        if s.Trace.t0 <= t0 && t1 <= s.Trace.t1 then
          match best with
          | Some (b : Trace.span)
            when b.Trace.t1 -. b.Trace.t0 <= s.Trace.t1 -. s.Trace.t0 ->
            best
          | _ -> Some s
        else best)
      None task_spans
    |> fun o -> Option.bind o (fun s -> List.assoc_opt "task" s.Trace.args)
  in
  (* Plan context: function-level dependence edges projected to task
     labels (head function of each task), for gap classification and
     for naming the edges the path crosses.  Pass the *scheduled* plan:
     batching merges tasks and the labels must match the dispatched
     queues (same convention as Traceview.race_check). *)
  let preds_of : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  (match plan with
  | None -> ()
  | Some (p : Plan.t) ->
    List.iter
      (fun (section, tasks) ->
        let owner = Hashtbl.create 16 in
        List.iter
          (fun (t : Plan.task) ->
            match t.Plan.t_funcs with
            | [] -> ()
            | head :: _ ->
              List.iter
                (fun (fw : Driver.Compile.func_work) ->
                  Hashtbl.replace owner fw.Driver.Compile.fw_name
                    head.Driver.Compile.fw_name)
                t.Plan.t_funcs)
          tasks;
        let edges =
          match List.assoc_opt section p.Plan.func_deps with
          | Some e -> e
          | None -> []
        in
        List.iter
          (fun (a, b) ->
            match (Hashtbl.find_opt owner a, Hashtbl.find_opt owner b) with
            | Some la, Some lb when la <> lb ->
              let prev =
                match Hashtbl.find_opt preds_of lb with Some l -> l | None -> []
              in
              if not (List.mem la prev) then Hashtbl.replace preds_of lb (la :: prev)
            | _ -> ())
          edges)
      p.Plan.tasks_per_section);
  (* Gap context: retry instants mark backoff-window ends (the instant
     is emitted at the relaunch's own DES time); claim-span starts name
     the task whose dispatch the gap released. *)
  let retry_at = Hashtbl.create 16 in
  List.iter
    (fun (i : Trace.instant) ->
      if i.Trace.i_cat = "task" && i.Trace.i_name = "retry" then
        Hashtbl.replace retry_at i.Trace.at ())
    (Trace.instants tr);
  let claim_label_at = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.cat = "task" && s.Trace.name = "claim" then
        match List.assoc_opt "task" s.Trace.args with
        | Some l -> Hashtbl.replace claim_label_at s.Trace.t0 l
        | None -> ())
    spans;
  let classify_gap t =
    if Hashtbl.mem retry_at t then (Backoff, "retry backoff", None)
    else
      match Hashtbl.find_opt claim_label_at t with
      | Some l -> (
        match Hashtbl.find_opt preds_of l with
        | Some preds ->
          ( Dependence_wait,
            Printf.sprintf "released by %s" (String.concat "," (List.sort compare preds)),
            Some l )
        | None -> (Master_serial, "dispatch of " ^ l, Some l))
      | None -> (Master_serial, "master orchestration", None)
  in
  (* The walk itself.  The cut strictly decreases (a picked span is
     nonzero; a gap target is strictly earlier), so it terminates, and
     each segment's boundaries are floats the trace already contained —
     the tiling is exact by construction. *)
  let segs = ref [] in
  let cut = ref elapsed in
  while !cut > 0.0 do
    match pick !cut with
    | Some s ->
      let bucket, detail =
        match s.Trace.cat with
        | "pool" -> (Pool_wait, "pool-wait")
        | "task" -> (Rollback, "spec-abort")
        | "cpu" ->
          let tag =
            match List.assoc_opt "tag" s.Trace.args with Some t -> t | None -> "cpu"
          in
          (Cpu, tag)
        | _ ->
          if s.Trace.track = Trace.fs_track then (Fs, s.Trace.name)
          else (Ether, s.Trace.name)
      in
      segs :=
        {
          g_t0 = s.Trace.t0;
          g_t1 = !cut;
          g_bucket = bucket;
          g_track = s.Trace.track;
          g_detail = detail;
          g_task = label_for ~t0:s.Trace.t0 ~t1:!cut;
        }
        :: !segs;
      cut := s.Trace.t0
    | None ->
      let t' = prev_end !cut in
      let bucket, detail, task = classify_gap !cut in
      segs :=
        { g_t0 = t'; g_t1 = !cut; g_bucket = bucket; g_track = 0;
          g_detail = detail; g_task = task }
        :: !segs;
      cut := t'
  done;
  let segments = !segs in
  (* Raw bucket sums, accumulated in path order. *)
  let raw = Array.make 8 0.0 in
  let tags : (string * float ref) list ref = ref [] in
  List.iter
    (fun g ->
      let d = g.g_t1 -. g.g_t0 in
      let i = bucket_index g.g_bucket in
      raw.(i) <- raw.(i) +. d;
      if g.g_bucket = Cpu then
        match List.assoc_opt g.g_detail !tags with
        | Some r -> r := !r +. d
        | None -> tags := !tags @ [ (g.g_detail, ref d) ])
    segments;
  (* Restore the exact-sum invariant (see the header): one bucket
     absorbs the canonical fold's reassociation residue.  First choice
     is the dominant bucket (the residue then lands where it is
     relatively smallest); because round-to-even can make the canonical
     fold skip [elapsed] as that bucket varies, the naive nudge loop is
     backed by an ulp-by-ulp neighbourhood scan, and failing that the
     residue moves to the last nonzero bucket — every later fold stage
     is [+. 0.0], which is exact on nonnegative values, so that solve
     is effectively single-stage and cannot skip. *)
  let fold_with k x =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. (if i = k then x else v)) raw;
    !acc
  in
  let solve k =
    let fitted = ref raw.(k) in
    let steps = ref 0 in
    while fold_with k !fitted <> elapsed && !steps < 64 do
      fitted := !fitted +. (elapsed -. fold_with k !fitted);
      incr steps
    done;
    if fold_with k !fitted = elapsed then Some !fitted
    else begin
      let up = ref !fitted and down = ref !fitted in
      let found = ref None in
      let n = ref 0 in
      while !found = None && !n < 4096 do
        up := Float.succ !up;
        down := Float.pred !down;
        if fold_with k !up = elapsed then found := Some !up
        else if fold_with k !down = elapsed then found := Some !down;
        incr n
      done;
      !found
    end
  in
  let dominant = ref 0 in
  Array.iteri (fun i v -> if v > raw.(!dominant) then dominant := i) raw;
  let last_nonzero = ref !dominant in
  Array.iteri (fun i v -> if v > 0.0 then last_nonzero := i) raw;
  let k, fitted =
    match solve !dominant with
    | Some x -> (!dominant, x)
    | None -> (
      match solve !last_nonzero with
      | Some x when x >= 0.0 -> (!last_nonzero, x)
      | _ ->
        fail "bucket fold %.17g cannot be reconciled with elapsed %.17g"
          (fold_with !dominant raw.(!dominant))
          elapsed)
  in
  if Float.abs (fitted -. raw.(k)) > 1e-9 *. Float.max 1.0 elapsed then
    fail "reassociation residue %.17g on %s exceeds rounding scale"
      (fitted -. raw.(k))
      (bucket_name (List.nth bucket_order k));
  raw.(k) <- fitted;
  (* Dependence edges crossed: a boundary where the path hands over
     from predecessor to successor task across a plan edge, plus every
     edge a dependence-wait gap named. *)
  let dep_edges = ref [] in
  let add_edge e = if not (List.mem e !dep_edges) then dep_edges := e :: !dep_edges in
  let rec cross = function
    | a :: (b :: _ as rest) ->
      (match (a.g_task, b.g_task) with
      | Some la, Some lb when la <> lb -> (
        match Hashtbl.find_opt preds_of lb with
        | Some preds when List.mem la preds -> add_edge (la, lb)
        | _ -> ())
      | _ -> ());
      (match b.g_bucket with
      | Dependence_wait -> (
        match b.g_task with
        | Some lb -> (
          match Hashtbl.find_opt preds_of lb with
          | Some preds -> List.iter (fun la -> add_edge (la, lb)) preds
          | None -> ())
        | None -> ())
      | _ -> ());
      cross rest
    | _ -> ()
  in
  cross segments;
  {
    p_elapsed = elapsed;
    p_segments = segments;
    p_buckets = List.map (fun b -> (bucket_name b, raw.(bucket_index b))) bucket_order;
    p_cpu_by_tag =
      List.map (fun (t, r) -> (t, !r)) !tags
      |> List.sort (fun (_, a) (_, b) -> compare b a);
    p_dep_edges = List.sort compare !dep_edges;
  }

(* --- the exactness oracle --- *)

let assert_exact (p : profile) : unit =
  let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 p.p_buckets in
  if sum <> p.p_elapsed then
    fail "bucket sum %.17g <> elapsed %.17g" sum p.p_elapsed;
  List.iter
    (fun (n, v) -> if not (v >= 0.0) then fail "bucket %s negative: %.17g" n v)
    p.p_buckets;
  match p.p_segments with
  | [] -> if p.p_elapsed <> 0.0 then fail "empty path but elapsed %.17g" p.p_elapsed
  | first :: _ ->
    if first.g_t0 <> 0.0 then fail "path starts at %.17g, not 0" first.g_t0;
    let last =
      List.fold_left
        (fun prev g ->
          if g.g_t0 <> prev then
            fail "path is not a tiling: segment starts at %.17g, previous ended %.17g"
              g.g_t0 prev;
          if g.g_t1 < g.g_t0 then fail "negative segment at %.17g" g.g_t0;
          g.g_t1)
        first.g_t0 p.p_segments
    in
    if last <> p.p_elapsed then
      fail "path ends at %.17g, not elapsed %.17g" last p.p_elapsed

let bucket p name =
  match List.assoc_opt name p.p_buckets with Some v -> v | None -> 0.0

(* --- what-if upper bounds --- *)

type whatif = {
  w_name : string;
  w_removed : float; (* critical-path seconds the scenario deletes *)
  w_elapsed : float; (* projected elapsed: p_elapsed - w_removed *)
  w_speedup : float; (* p_elapsed / w_elapsed (upper bound) *)
}

(* Re-walk the critical path with one cost class free.  Deleting a
   class only from the recorded path is optimistic — the real schedule
   would reroute onto a second-longest path at least this long to
   compute — so each projection is a sound upper bound on what fixing
   that class alone could buy. *)
let what_ifs (p : profile) : whatif list =
  let mk name removed =
    let removed = Float.min removed p.p_elapsed in
    let e = p.p_elapsed -. removed in
    {
      w_name = name;
      w_removed = removed;
      w_elapsed = e;
      w_speedup = (if e > 0.0 then p.p_elapsed /. e else Float.infinity);
    }
  in
  [
    mk "free-comms" (bucket p "ether" +. bucket p "fs");
    mk "infinite-stations" (bucket p "pool_wait");
    mk "zero-faults" (bucket p "backoff" +. bucket p "rollback");
    mk "perfect-speculation" (bucket p "rollback");
  ]

(* --- the Depan DAG bound (si_levels) --- *)

type dag_bound = {
  db_max_levels : int; (* deepest section chain; 1 = edge-free *)
  db_serial : float; (* sum of per-function phase-2+3 estimates *)
  db_chain : float; (* per-section sum over levels of the level max *)
  db_speedup : float; (* serial / chain: the analysis-side bound *)
}

let dag_bound ~cost (mw : Driver.Compile.module_work) : dag_bound =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      Hashtbl.replace by_name fw.Driver.Compile.fw_name fw)
    (Driver.Compile.all_funcs mw);
  let fw_seconds (fi : Analysis.Depan.func_info) =
    match Hashtbl.find_opt by_name fi.Analysis.Depan.fi_name with
    | Some fw -> Driver.Cost.phase23_seconds cost fw
    | None -> 0.0
  in
  let serial = ref 0.0 and chain = ref 0.0 and max_levels = ref 1 in
  List.iter
    (fun (si : Analysis.Depan.section_info) ->
      max_levels := max !max_levels (List.length si.Analysis.Depan.si_levels);
      List.iter
        (fun level ->
          let m =
            List.fold_left
              (fun m i -> Float.max m (fw_seconds si.Analysis.Depan.si_funcs.(i)))
              0.0 level
          in
          chain := !chain +. m)
        si.Analysis.Depan.si_levels;
      Array.iter
        (fun fi -> serial := !serial +. fw_seconds fi)
        si.Analysis.Depan.si_funcs)
    mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections;
  {
    db_max_levels = !max_levels;
    db_serial = !serial;
    db_chain = !chain;
    db_speedup = (if !chain > 0.0 then !serial /. !chain else 1.0);
  }

(* --- top-k bottlenecks --- *)

type hotspot = {
  h_label : string; (* task label, or the segment detail off-task *)
  h_bucket : string;
  h_reason : string; (* blocking reason: the dominant segment detail *)
  h_track : int; (* track of the largest contributing segment *)
  h_seconds : float;
  h_share : float; (* of elapsed *)
}

let top ?(k = 10) (p : profile) : hotspot list =
  let groups : ((string * string), float ref * (float * int * string) ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun g ->
      let label = match g.g_task with Some l -> l | None -> g.g_detail in
      let key = (label, bucket_name g.g_bucket) in
      let d = g.g_t1 -. g.g_t0 in
      match Hashtbl.find_opt groups key with
      | Some (sum, best) ->
        sum := !sum +. d;
        let bd, _, _ = !best in
        if d > bd then best := (d, g.g_track, g.g_detail)
      | None -> Hashtbl.replace groups key (ref d, ref (d, g.g_track, g.g_detail)))
    p.p_segments;
  let all =
    Hashtbl.fold
      (fun (label, bname) (sum, best) acc ->
        let _, track, reason = !best in
        {
          h_label = label;
          h_bucket = bname;
          h_reason = reason;
          h_track = track;
          h_seconds = !sum;
          h_share = (if p.p_elapsed > 0.0 then !sum /. p.p_elapsed else 0.0);
        }
        :: acc)
      groups []
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.h_seconds a.h_seconds with
        | 0 -> compare (a.h_label, a.h_bucket) (b.h_label, b.h_bucket)
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted

(* --- flow arrows for the Chrome exporter --- *)

(* Consecutive path segments on different tracks: where the critical
   path hops between machines.  Rendered by [Trace.to_chrome_json] as
   s/f flow-event pairs so Perfetto draws the path. *)
let path_flows (p : profile) : (int * float * int * float) list =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if a.g_track <> b.g_track then (a.g_track, a.g_t1, b.g_track, b.g_t0) :: acc
        else acc
      in
      go acc rest
    | _ -> List.rev acc
  in
  go [] p.p_segments

(* --- renderers --- *)

let bucket_table (p : profile) : Stats.Table.t =
  let table =
    Stats.Table.make
      ~title:
        (Printf.sprintf "Critical-path attribution, %.1f s elapsed (exact sum)"
           p.p_elapsed)
      ~columns:[ "bucket"; "seconds"; "share" ]
  in
  let table =
    List.fold_left
      (fun table (name, v) ->
        Stats.Table.add_row table
          [
            name;
            Printf.sprintf "%.1f" v;
            Printf.sprintf "%.1f%%"
              (if p.p_elapsed > 0.0 then 100.0 *. v /. p.p_elapsed else 0.0);
          ])
      table p.p_buckets
  in
  List.fold_left
    (fun table (tag, v) ->
      Stats.Table.add_row table
        [
          "  cpu." ^ tag;
          Printf.sprintf "%.1f" v;
          Printf.sprintf "%.1f%%"
            (if p.p_elapsed > 0.0 then 100.0 *. v /. p.p_elapsed else 0.0);
        ])
    table p.p_cpu_by_tag

let top_table ?k (p : profile) : Stats.Table.t =
  let table =
    Stats.Table.make ~title:"Top bottlenecks on the critical path"
      ~columns:[ "task/phase"; "bucket"; "blocking reason"; "track"; "seconds"; "share" ]
  in
  List.fold_left
    (fun table h ->
      Stats.Table.add_row table
        [
          h.h_label;
          h.h_bucket;
          h.h_reason;
          Trace.track_name h.h_track;
          Printf.sprintf "%.1f" h.h_seconds;
          Printf.sprintf "%.1f%%" (100.0 *. h.h_share);
        ])
    table (top ?k p)

let whatif_table ?bound (p : profile) : Stats.Table.t =
  let table =
    Stats.Table.make ~title:"What-if upper bounds (one cost class zeroed)"
      ~columns:[ "scenario"; "removed s"; "projected s"; "speedup <=" ]
  in
  let table =
    List.fold_left
      (fun table w ->
        Stats.Table.add_row table
          [
            w.w_name;
            Printf.sprintf "%.1f" w.w_removed;
            Printf.sprintf "%.1f" w.w_elapsed;
            Printf.sprintf "%.2f" w.w_speedup;
          ])
      table (what_ifs p)
  in
  match bound with
  | None -> table
  | Some b ->
    Stats.Table.add_row table
      [
        Printf.sprintf "depan dag bound (%d level%s)" b.db_max_levels
          (if b.db_max_levels = 1 then "" else "s");
        "-";
        Printf.sprintf "%.1f" b.db_chain;
        Printf.sprintf "%.2f" b.db_speedup;
      ]

(* --- JSON (schema warpcc-profile/1) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Buckets and elapsed print with %.17g so the exact-sum invariant
   survives the round-trip: a consumer can re-add the buckets in schema
   order and compare bit for bit (CI's profile-smoke job does). *)
let to_json ?(module_name = "") ?(policy = "") ?(processors = 0) ?top:(k = 10)
    ?bound (p : profile) : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let f = Printf.sprintf "%.17g" in
  pr "{\n";
  pr "  \"schema\": \"warpcc-profile/1\",\n";
  pr "  \"module\": \"%s\",\n" (json_escape module_name);
  pr "  \"policy\": \"%s\",\n" (json_escape policy);
  pr "  \"processors\": %d,\n" processors;
  pr "  \"elapsed\": %s,\n" (f p.p_elapsed);
  pr "  \"buckets\": {\n";
  List.iteri
    (fun i (name, v) ->
      pr "    \"%s\": %s%s\n" name (f v)
        (if i = List.length p.p_buckets - 1 then "" else ","))
    p.p_buckets;
  pr "  },\n";
  pr "  \"cpu_by_tag\": {\n";
  let n_tags = List.length p.p_cpu_by_tag in
  List.iteri
    (fun i (tag, v) ->
      pr "    \"%s\": %s%s\n" (json_escape tag) (f v)
        (if i = n_tags - 1 then "" else ","))
    p.p_cpu_by_tag;
  pr "  },\n";
  pr "  \"critical_path\": [\n";
  let n_segs = List.length p.p_segments in
  List.iteri
    (fun i g ->
      pr
        "    {\"t0\": %s, \"t1\": %s, \"bucket\": \"%s\", \"track\": %d, \
         \"detail\": \"%s\", \"task\": %s}%s\n"
        (f g.g_t0) (f g.g_t1)
        (bucket_name g.g_bucket)
        g.g_track (json_escape g.g_detail)
        (match g.g_task with
        | Some l -> Printf.sprintf "\"%s\"" (json_escape l)
        | None -> "null")
        (if i = n_segs - 1 then "" else ","))
    p.p_segments;
  pr "  ],\n";
  pr "  \"dep_edges\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun (a, c) ->
            Printf.sprintf "[\"%s\", \"%s\"]" (json_escape a) (json_escape c))
          p.p_dep_edges));
  pr "  \"top\": [\n";
  let hs = top ~k p in
  let n_hs = List.length hs in
  List.iteri
    (fun i h ->
      pr
        "    {\"label\": \"%s\", \"bucket\": \"%s\", \"reason\": \"%s\", \
         \"track\": %d, \"seconds\": %s, \"share\": %s}%s\n"
        (json_escape h.h_label) h.h_bucket (json_escape h.h_reason) h.h_track
        (f h.h_seconds) (f h.h_share)
        (if i = n_hs - 1 then "" else ","))
    hs;
  pr "  ],\n";
  pr "  \"what_if\": {\n";
  let ws = what_ifs p in
  let n_ws = List.length ws in
  List.iteri
    (fun i w ->
      pr "    \"%s\": {\"removed\": %s, \"elapsed\": %s, \"speedup\": %s}%s\n"
        (json_escape w.w_name) (f w.w_removed) (f w.w_elapsed)
        (if Float.is_finite w.w_speedup then f w.w_speedup else "null")
        (if i = n_ws - 1 then "" else ","))
    ws;
  pr "  }";
  (match bound with
  | None -> ()
  | Some d ->
    pr ",\n  \"dag_bound\": {\"max_levels\": %d, \"serial\": %s, \"chain\": %s, \
        \"speedup\": %s}"
      d.db_max_levels (f d.db_serial) (f d.db_chain) (f d.db_speedup));
  pr "\n}\n";
  Buffer.contents b
