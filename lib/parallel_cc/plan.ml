(* Partitioning and load balancing.

   The master's setup parse yields the module structure; tasks are the
   per-function phase-2/3 jobs.  Two placement policies:

   - [one_per_station]: the paper's default — first come, first served,
     one function master per workstation;
   - [grouped ~processors]: the section-4.3 heuristic — estimate each
     function's compile time from lines of code and loop nesting, then
     pack functions onto the available processors (longest processing
     time first), so that several small functions share one function
     master. *)

type task = {
  t_section : string;
  t_funcs : Driver.Compile.func_work list; (* compiled together, in order *)
}

type t = {
  tasks_per_section : (string * task list) list;
  estimate_used : bool;
  func_deps : (string * (string * string) list) list;
  (* per section: the analyzer's function-level dependence edges,
     (compile-first, compile-second) by name.  FCFS/LPT policies ignore
     them; the DAG-aware policies in [Sched] order and gate by them. *)
  spec_edges : (string * (string * string) list) list;
  (* the speculative subset of [func_deps]: edges whose only reasons
     are data over-approximations.  [dag+spec] dispatches past them
     under the commit protocol; every other policy treats them exactly
     like the rest of [func_deps]. *)
  hot_edges : (string * (string * string) list) list;
  (* the subset of [spec_edges] whose endpoints the uncapped analysis
     proves really share state: speculating past one of these aborts
     when the attempt overlapped its predecessor. *)
}

(* The dependence edges come straight from the phase-1 analysis the
   driver already ran; deriving them here keeps every plan carrying its
   DAG without a separate wiring step. *)
let deps_of (mw : Driver.Compile.module_work) :
    (string * (string * string) list) list =
  List.map
    (fun si ->
      ( si.Analysis.Depan.si_name,
        List.map
          (fun (from_name, to_name, _) -> (from_name, to_name))
          (Analysis.Depan.edges_by_name si) ))
    mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections

let spec_deps_of (mw : Driver.Compile.module_work) :
    (string * (string * string) list) list =
  List.map
    (fun si ->
      (si.Analysis.Depan.si_name, Analysis.Depan.spec_edges_by_name si))
    mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections

let hot_deps_of (mw : Driver.Compile.module_work) :
    (string * (string * string) list) list =
  List.map
    (fun si ->
      let hot = Analysis.Depan.hot_pairs_by_name si in
      ( si.Analysis.Depan.si_name,
        List.filter (fun e -> List.mem e hot)
          (Analysis.Depan.spec_edges_by_name si) ))
    mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections

let proven_deps (plan : t) : (string * (string * string) list) list =
  List.map
    (fun (sec, edges) ->
      let spec =
        match List.assoc_opt sec plan.spec_edges with
        | Some s -> s
        | None -> []
      in
      (sec, List.filter (fun e -> not (List.mem e spec)) edges))
    plan.func_deps

(* The paper's proxy for compile time: "a combination of lines of code
   and loop nesting". *)
let estimate (fw : Driver.Compile.func_work) : float =
  let loc = float_of_int fw.Driver.Compile.fw_loc in
  (* Nesting is reflected in the optimizer work the function generates;
     the scheduler proxy only sees static structure, so weight lines by
     a density factor derived from instructions per line. *)
  let density =
    float_of_int fw.Driver.Compile.fw_ir_instrs /. float_of_int (max 1 fw.Driver.Compile.fw_loc)
  in
  loc *. (1.0 +. (0.15 *. density))

let one_per_station (mw : Driver.Compile.module_work) : t =
  {
    tasks_per_section =
      List.map
        (fun (sw : Driver.Compile.section_work) ->
          ( sw.Driver.Compile.sw_name,
            List.map
              (fun fw -> { t_section = sw.Driver.Compile.sw_name; t_funcs = [ fw ] })
              sw.Driver.Compile.sw_funcs ))
        mw.Driver.Compile.mw_sections;
    estimate_used = false;
    func_deps = deps_of mw;
    spec_edges = spec_deps_of mw;
    hot_edges = hot_deps_of mw;
  }

(* LPT bin packing of all functions of one section onto [bins]
   processors. *)
let pack_section (sw : Driver.Compile.section_work) ~bins : task list =
  let sorted =
    List.sort
      (fun a b -> compare (estimate b) (estimate a))
      sw.Driver.Compile.sw_funcs
  in
  let loads = Array.make (max 1 bins) 0.0 in
  let contents = Array.make (max 1 bins) [] in
  List.iter
    (fun fw ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
      loads.(!best) <- loads.(!best) +. estimate fw;
      contents.(!best) <- fw :: contents.(!best))
    sorted;
  Array.to_list contents
  |> List.filter_map (fun funcs ->
         match funcs with
         | [] -> None
         | _ ->
           Some { t_section = sw.Driver.Compile.sw_name; t_funcs = List.rev funcs })

(* Distribute [processors] function masters over the sections in
   proportion to their estimated work (at least one each). *)
let grouped (mw : Driver.Compile.module_work) ~processors : t =
  let sections = mw.Driver.Compile.mw_sections in
  let weights =
    List.map
      (fun (sw : Driver.Compile.section_work) ->
        List.fold_left (fun acc fw -> acc +. estimate fw) 0.0 sw.Driver.Compile.sw_funcs)
      sections
  in
  let total = List.fold_left ( +. ) 0.0 weights in
  let n_sections = List.length sections in
  let bins_per_section =
    List.map
      (fun w ->
        let share = w /. total *. float_of_int processors in
        max 1 (int_of_float (Float.round share)))
      weights
  in
  (* Trim so the total does not exceed the processor count (keep at
     least one per section). *)
  let rec trim bins =
    let sum = List.fold_left ( + ) 0 bins in
    if sum <= max processors n_sections then bins
    else
      (* shrink the largest allocation *)
      let largest = List.fold_left max 1 bins in
      let shrunk = ref false in
      let bins =
        List.map
          (fun b ->
            if (not !shrunk) && b = largest && b > 1 then begin
              shrunk := true;
              b - 1
            end
            else b)
          bins
      in
      if !shrunk then trim bins else bins
  in
  let bins_per_section = trim bins_per_section in
  {
    tasks_per_section =
      List.map2
        (fun (sw : Driver.Compile.section_work) bins ->
          (sw.Driver.Compile.sw_name, pack_section sw ~bins))
        sections bins_per_section;
    estimate_used = true;
    func_deps = deps_of mw;
    spec_edges = spec_deps_of mw;
    hot_edges = hot_deps_of mw;
  }

let task_count (plan : t) =
  List.fold_left (fun acc (_, tasks) -> acc + List.length tasks) 0 plan.tasks_per_section

let task_loc (task : task) =
  List.fold_left (fun acc fw -> acc + fw.Driver.Compile.fw_loc) 0 task.t_funcs
