(* Configuration of one simulated compilation run: the cost model, the
   cluster, and the toggles used by the ablation benchmarks. *)

type t = {
  cost : Driver.Cost.model;
  stations : int; (* workstation pool size (including the master's) *)
  memory_model : bool; (* GC/paging slowdowns (ablation: off = 1.0) *)
  core_download : bool; (* Lisp core image fetched over the network *)
  ideal_network : bool; (* no Ethernet contention, instant file server *)
  fine_grained : bool; (* split phases 2 and 3 into separate tasks *)
  opt_level : int;
  noise_seed : int; (* 0 = no measurement noise *)
  noise_amplitude : float; (* +/- fraction on CPU times *)
  sched_policy : Sched.policy; (* dispatch order/batching; [Fcfs] =
                                  the paper's behaviour, bit-identical *)
  batch_threshold : float; (* tasks under this many estimated seconds
                              are batched by [Sched.Lpt_batch] *)
  static_cost : bool; (* rank/batch by the absint statement-execution
                         bound instead of measured work units *)
  faults : Netsim.Fault.plan; (* station crashes etc.; [none] = ideal *)
  deadline_factor : float; (* task deadline = factor * cost estimate *)
  retry_budget : int; (* re-dispatches before sequential fallback *)
  retry_backoff_seconds : float; (* base of the exponential backoff *)
  spec_budget : int; (* misspeculations per task before its speculative
                        edges harden to gated; 0 disables speculation
                        entirely (dag+spec degrades to dag+lpt) *)
  cache : Cache.t option; (* content-addressed compile cache shared
                             across runs; None (the default) charges no
                             lookups and skips nothing — bit-identical
                             to a cacheless build.  Coarse grain only:
                             fine_grained runs bypass it. *)
  trace : Trace.t; (* span sink wired into the cluster; [Trace.none] =
                      no recording, zero overhead *)
}

let default =
  {
    cost = Driver.Cost.default;
    stations = 16;
    memory_model = true;
    core_download = true;
    ideal_network = false;
    fine_grained = false;
    opt_level = 2;
    noise_seed = 0;
    noise_amplitude = 0.04;
    (* FCFS keeps the paper's timings; 60 s separates f_tiny/f_small
       tasks (≈10/78 estimated seconds) from everything the paper
       calls worth a processor of its own. *)
    sched_policy = Sched.Fcfs;
    batch_threshold = 60.0;
    static_cost = false;
    faults = Netsim.Fault.none;
    deadline_factor = 6.0;
    retry_budget = 2;
    retry_backoff_seconds = 30.0;
    spec_budget = 2;
    cache = None;
    trace = Trace.none;
  }

(* The policy the runner actually executes: dag+spec with a zero (or
   negative) misspeculation budget cannot speculate at all, so it IS
   dag+lpt — mapping it here, before scheduling, makes `--spec-budget
   0` bit-identical to dag+lpt by construction. *)
let effective_policy (cfg : t) : Sched.policy =
  match cfg.sched_policy with
  | Sched.Dag_spec when cfg.spec_budget <= 0 -> Sched.Dag_lpt
  | p -> p

(* Exponential backoff before re-dispatching a timed-out attempt:
   [step] counts prior re-dispatches of the task (0 for the first
   retry). *)
let backoff_delay (cfg : t) ~step =
  cfg.retry_backoff_seconds *. (2.0 ** float_of_int step)

(* Deterministic multiplicative noise, mirroring the paper's repeated
   measurements (individual runs deviate a few percent; section 4.2). *)
let noise (cfg : t) : int -> float =
  if cfg.noise_seed = 0 then fun _ -> 1.0
  else begin
    let state = ref (cfg.noise_seed land 0x3FFFFFFF) in
    fun _salt ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      let u = float_of_int !state /. 1073741824.0 in
      1.0 +. (cfg.noise_amplitude *. ((2.0 *. u) -. 1.0))
  end

let cluster (cfg : t) : Netsim.Host.cluster =
  let ether =
    if cfg.ideal_network then
      Netsim.Net.ethernet ~bytes_per_sec:1e12 ~contention_alpha:0.0 ()
    else Netsim.Net.ethernet ()
  in
  let fs =
    if cfg.ideal_network then
      Netsim.Net.fileserver ~seek_seconds:0.0 ~disk_bytes_per_sec:1e12 ()
    else Netsim.Net.fileserver ()
  in
  Netsim.Host.cluster ~mem_mb:cfg.cost.Driver.Cost.workstation_mb ~ether ~fs
    ~faults:cfg.faults ~trace:cfg.trace ~stations:cfg.stations ()

(* Memory-pressure slowdown for a station, honouring the ablation.  The
   paging term is coupled to the whole cluster: diskless stations page
   through the shared file server. *)
let cluster_slowdown (cfg : t) (cluster : Netsim.Host.cluster)
    (ws : Netsim.Host.workstation) =
  if not cfg.memory_model then 1.0
  else begin
    let pagers =
      Array.fold_left
        (fun acc w -> if Netsim.Host.memory_pressure w > 1.0 then acc + 1 else acc)
        0 cluster.Netsim.Host.stations
    in
    Driver.Cost.slowdown cfg.cost
      ~pressure:(Netsim.Host.memory_pressure ws)
      ~pagers
  end
