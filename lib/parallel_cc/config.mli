(** Configuration of one simulated compilation run: the cost model, the
    cluster, and the toggles used by the ablation benchmarks. *)

type t = {
  cost : Driver.Cost.model;
  stations : int; (** workstation pool size, master's included *)
  memory_model : bool; (** GC/paging slowdowns (ablation: off = 1.0) *)
  core_download : bool; (** Lisp core image fetched over the network *)
  ideal_network : bool; (** no contention, instant file server *)
  fine_grained : bool; (** split phases 2 and 3 into separate tasks *)
  opt_level : int;
  noise_seed : int; (** 0 = no measurement noise *)
  noise_amplitude : float; (** +/- fraction on CPU times *)
  sched_policy : Sched.policy;
      (** dispatch scheduling applied to the plan before the section
          masters fork ({!Sched.Fcfs}, the default, keeps the paper's
          event schedule bit-identical) *)
  batch_threshold : float;
      (** {!Sched.Lpt_batch}'s cut-off: tasks estimated under this many
          phase-2+3 seconds are merged into shared dispatch units
          (default 60.0) *)
  static_cost : bool;
      (** rank and batch by the abstract interpretation's statically
          bounded cost ({!Sched.task_cost} with [~static:true]) instead
          of the measured work units (default [false]; meaningless
          under [Fcfs], which never consults the signal) *)
  faults : Netsim.Fault.plan;
      (** fault schedule wired into the cluster ({!Netsim.Fault.none} =
          the ideal host; anything else enables supervision in
          {!Parrun}) *)
  deadline_factor : float;
      (** a task is presumed lost after [factor × cost estimate] *)
  retry_budget : int; (** re-dispatches before sequential fallback *)
  retry_backoff_seconds : float; (** base of the exponential backoff *)
  spec_budget : int;
      (** misspeculations (speculative-attempt aborts) per task before
          the task's speculative edges harden to gated dispatch
          (default 2).  [0] disables speculation: {!effective_policy}
          maps [Sched.Dag_spec] to [Sched.Dag_lpt], so such runs are
          bit-identical to [dag+lpt]. *)
  cache : Cache.t option;
      (** content-addressed compile cache ({!Cache}) shared across runs
          — pass the same store to successive runs to memoize phase-2/3
          artifacts by function content.  [None] (the default) charges
          no lookups and skips nothing, so the event schedule is
          bit-identical to a cacheless build.  Coarse grain only:
          [fine_grained] runs bypass the cache entirely (their split
          phase-2/phase-3 tasks do not produce whole-function
          artifacts). *)
  trace : Trace.t;
      (** span sink wired into the cluster and consulted by the runners
          ({!Trace.none} = no recording: emits are no-ops and the event
          schedule is untouched, so timings are bit-identical to an
          untraced build) *)
}

val default : t

val effective_policy : t -> Sched.policy
(** The policy the runner actually executes: [sched_policy], except
    {!Sched.Dag_spec} with [spec_budget <= 0] degrades to
    {!Sched.Dag_lpt} before any scheduling happens.  Both {!Parrun} and
    its trace oracles consult this, never [sched_policy] directly. *)

val backoff_delay : t -> step:int -> float
(** Exponential backoff before re-dispatching a timed-out attempt:
    [retry_backoff_seconds × 2{^step}], where [step] counts the task's
    prior re-dispatches.  Monotone non-decreasing in [step] for any
    non-negative base. *)

val noise : t -> int -> float
(** Deterministic multiplicative noise stream, mirroring the paper's
    repeated measurements (§4.2); the argument salts the sequence. *)

val cluster : t -> Netsim.Host.cluster
(** A fresh cluster per the configuration. *)

val cluster_slowdown : t -> Netsim.Host.cluster -> Netsim.Host.workstation -> float
(** Memory-pressure slowdown of one station, honouring the ablation
    toggles; the paging term is coupled to the whole cluster (diskless
    stations page through the shared file server). *)
