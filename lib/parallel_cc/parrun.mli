(** The parallel compiler on the simulated host (paper, section 3.2):
    master → section masters → function masters, with FCFS workstation
    claiming, per-process Lisp startup, source re-parsing, result
    combining and the sequential phases 1 and 4 in the master.

    The plan is passed through {!Sched.schedule} before the section
    masters fork: {!Config.t.sched_policy} selects FCFS dispatch (the
    paper's behaviour, event schedule bit-identical), LPT ordering, or
    LPT with tiny-function batching, and on retries under a non-FCFS
    policy the re-dispatch prefers — and skips re-downloads on — a
    station that already holds the task's bytes ({!Netsim.Net.cached}).

    With {!Config.t.fine_grained} set, each task splits into a phase-2
    and a phase-3 task connected by an IR file on the server — the
    "finer grain parallelism" the paper's section 5 anticipates.

    When {!Config.t.faults} is non-empty, every task runs under a
    supervisor in its section master: per-attempt deadlines from the
    cost model, crash/timeout detection, FCFS re-dispatch with
    exponential backoff up to {!Config.t.retry_budget}, idempotent
    write-back, and — once the budget is exhausted — sequential
    fallback in the master's own Lisp, so the compilation terminates
    with identical output no matter the fault plan.  With an empty
    plan the legacy unsupervised schedule runs bit-for-bit.

    Under {!Sched.Dag_spec} (as resolved by {!Config.effective_policy})
    tasks also run supervised, fault plan or not: an attempt whose
    speculative predecessors are not all durably complete at claim time
    stages its output in a versioned buffer on the file server instead
    of writing back, and a commit protocol rules on it — commit (a
    version-pointer flip promotes the staged artifact, exactly once)
    when no genuinely conflicting ("hot") predecessor was pending,
    abort (quarantine the stale version, charge the attempt's CPU to
    [wasted_cpu], re-dispatch) at the first hot predecessor's
    write-back.  After {!Config.t.spec_budget} aborts a task hardens:
    further launches gate on every speculative edge, dag+lpt style. *)

type outcome = {
  run : Timings.run;
  station_of_task : (string * int) list;
      (** head function of each task → workstation id; fine-grained
          phase-3 placements appear as ["name#p3"] *)
}

type stats = {
  mutable master_cpu : float;
  mutable section_cpu : float;
  mutable extra_parse_cpu : float;
  mutable placements : (string * int) list;
  mutable dispatch_units : int;
      (** tasks launched after scheduling (batching merges tasks, so
          this can be below the input plan's task count) *)
  mutable retries : int;
  mutable fallback_tasks : int;
  mutable wasted_cpu : float;
  mutable spec_dispatched : int;
  mutable spec_committed : int;
  mutable spec_rolled_back : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_invalidated : int;
      (** compile-cache tallies ({!Config.t.cache}); invalidated is the
          subset of misses whose function had published a different key *)
}
(** Mutable counters one or more master processes accumulate into;
    {!run} folds them into the {!Timings.run}. *)

val fresh_stats : unit -> stats

val master_process :
  Config.t ->
  Netsim.Des.t ->
  Netsim.Host.cluster ->
  noise:(int -> float) ->
  salt:int ->
  Driver.Compile.module_work ->
  Plan.t ->
  stats:stats ->
  on_finish:(float -> unit) ->
  unit ->
  unit
(** The spawnable master body; several can share a cluster (the
    combined strategy of the parallel-make study). *)

val run : Config.t -> Driver.Compile.module_work -> Plan.t -> outcome
(** One parallel compilation on a fresh cluster. *)
