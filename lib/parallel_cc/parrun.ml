(* The parallel compiler on the simulated host (section 3.2).

   Process hierarchy:
     master        one C process + a Lisp process for phase 1 and the
                   setup parse; spawns the section masters; performs
                   phase 4 after they finish.
     section       one C process per section, running on the master's
     masters       workstation; start one function master per task,
                   drawing workstations from the pool FCFS; combine
                   results and diagnostics when their functions finish.
     function      one Lisp process per task on its own workstation:
     masters       core-image download, initialization, re-parse of its
                   share of the source, then phases 2+3 for each of its
                   functions, then output write-back.

   The only communication is parent<->child messages (modelled by join
   counters), as in the paper.

   With [Config.fine_grained] set, each task is split into a phase-2
   task and a phase-3 task connected by an IR file on the server (the
   "finer grain parallelism" the paper's section 5 anticipates): the
   phase-2 master releases its workstation before the phase-3 master
   claims one, so stages of different tasks pipeline through a small
   pool — at the price of a second Lisp startup and the IR shipping. *)

let set_resident = Seqrun.set_resident

type outcome = {
  run : Timings.run;
  station_of_task : (string * int) list; (* task head function -> station *)
}

type stats = {
  mutable master_cpu : float;
  mutable section_cpu : float;
  mutable extra_parse_cpu : float;
  mutable placements : (string * int) list;
}

(* The master process body; spawnable so that several modules can be
   compiled concurrently on one cluster (the parallel-make study). *)
let master_process (cfg : Config.t) sim (cluster : Netsim.Host.cluster) ~noise
    ~salt (mw : Driver.Compile.module_work) (plan : Plan.t) ~(stats : stats)
    ~on_finish () =
  let cost = cfg.Config.cost in
  let fetch bytes =
    Netsim.Net.fetch sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether ~bytes
  in
  let store bytes =
    Netsim.Net.store sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether ~bytes
  in
  let ws_m = Netsim.Host.claim cluster in
  let factor w = Config.cluster_slowdown cfg cluster w in
  let compute_m seconds salt' =
    Netsim.Host.compute sim ws_m ~factor ~seconds:(seconds *. noise (salt + salt'))
  in
  (* C master: cheap startup, then read the source. *)
  Netsim.Des.delay cost.Driver.Cost.c_process_seconds;
  fetch (Driver.Cost.source_bytes cost mw.Driver.Compile.mw_loc);
  (* The master's Lisp process: phase 1 proper plus the extra
     structure-discovering parse (the latter is implementation
     overhead). *)
  (if cfg.Config.core_download then fetch cost.Driver.Cost.lisp_core_bytes);
  let ast_mb =
    cost.Driver.Cost.ast_mb_per_loc *. float_of_int mw.Driver.Compile.mw_loc
  in
  set_resident ws_m (cost.Driver.Cost.lisp_core_mb +. ast_mb);
  compute_m cost.Driver.Cost.lisp_init_seconds 11;
  compute_m (Driver.Cost.phase1_seconds cost mw) 12;
  let setup = Driver.Cost.setup_parse_seconds cost mw *. noise (salt + 13) in
  Netsim.Host.compute sim ws_m ~factor ~seconds:setup;
  stats.master_cpu <- stats.master_cpu +. setup;
  (* Scheduling: derive the task placement directives. *)
  let sched = 0.1 *. float_of_int (Plan.task_count plan) *. noise (salt + 14) in
  Netsim.Host.compute sim ws_m ~factor ~seconds:sched;
  stats.master_cpu <- stats.master_cpu +. sched;
  (* Fork the section masters. *)
  let sections_done = Netsim.Sync.join (List.length plan.Plan.tasks_per_section) in
  List.iteri
    (fun si (section_name, tasks) ->
      Netsim.Des.spawn sim (fun () ->
          (* Section masters are C processes on the master's host. *)
          Netsim.Des.delay cost.Driver.Cost.c_process_seconds;
          let interpret =
            0.05 *. float_of_int (List.length tasks) *. noise (salt + 20 + si)
          in
          Netsim.Host.compute sim ws_m ~factor ~seconds:interpret;
          stats.section_cpu <- stats.section_cpu +. interpret;
          let tasks_done = Netsim.Sync.join (List.length tasks) in
          List.iteri
            (fun ti (task : Plan.task) ->
              (* Remote process creation is serialized in the forking
                 parent (rsh-style), a real cost of UNIX process
                 hierarchies the paper complains about. *)
              Netsim.Des.delay cost.Driver.Cost.fm_fork_seconds;
              Netsim.Des.spawn sim (fun () ->
                  let compute_f w seconds salt' =
                    Netsim.Host.compute sim w ~factor
                      ~seconds:(seconds *. noise (salt + salt'))
                  in
                  (* --- the function master proper --- *)
                  let ws = Netsim.Host.claim cluster in
                  (match task.Plan.t_funcs with
                  | fw :: _ ->
                    stats.placements <-
                      (fw.Driver.Compile.fw_name, ws.Netsim.Host.ws_id)
                      :: stats.placements
                  | [] -> ());
                  (* Lisp startup: every function master downloads the
                     core image and initializes. *)
                  (if cfg.Config.core_download then
                     fetch cost.Driver.Cost.lisp_core_bytes);
                  set_resident ws cost.Driver.Cost.lisp_core_mb;
                  compute_f ws cost.Driver.Cost.lisp_init_seconds (100 + ti);
                  (* Read and re-parse its share of the source. *)
                  let task_loc = Plan.task_loc task in
                  fetch (Driver.Cost.source_bytes cost task_loc);
                  let task_tokens =
                    List.fold_left
                      (fun acc fw -> acc + fw.Driver.Compile.fw_tokens)
                      0 task.Plan.t_funcs
                  in
                  let reparse =
                    cost.Driver.Cost.sec_per_token *. float_of_int task_tokens
                    *. noise (salt + 200 + ti)
                  in
                  Netsim.Host.compute sim ws ~factor ~seconds:reparse;
                  stats.extra_parse_cpu <- stats.extra_parse_cpu +. reparse;
                  let out_wides =
                    List.fold_left
                      (fun acc fw -> acc + fw.Driver.Compile.fw_wides)
                      0 task.Plan.t_funcs
                  in
                  (* Write-back: code, fixed framing, and the rendered
                     diagnostics the section master will combine. *)
                  let output_bytes =
                    (16.0 *. float_of_int out_wides)
                    +. cost.Driver.Cost.diagnostic_bytes
                    +. Driver.Cost.task_diag_bytes task.Plan.t_funcs
                  in
                  if not cfg.Config.fine_grained then begin
                    (* Coarse grain (the paper): phases 2+3 together. *)
                    List.iteri
                      (fun fi (fw : Driver.Compile.func_work) ->
                        set_resident ws (Driver.Cost.function_master_mb cost fw);
                        compute_f ws
                          (Driver.Cost.phase23_seconds cost fw)
                          (300 + (31 * ti) + fi))
                      task.Plan.t_funcs;
                    store output_bytes;
                    set_resident ws 0.0;
                    Netsim.Host.release_station cluster ws;
                    Netsim.Sync.signal tasks_done
                  end
                  else begin
                    (* Fine grain: phase 2 here, then hand the IR to a
                       phase-3 master on a (possibly different) pool
                       station. *)
                    List.iteri
                      (fun fi (fw : Driver.Compile.func_work) ->
                        set_resident ws (Driver.Cost.function_master_mb cost fw);
                        compute_f ws
                          (Driver.Cost.phase2_seconds cost fw)
                          (300 + (31 * ti) + fi))
                      task.Plan.t_funcs;
                    let ir_bytes =
                      List.fold_left
                        (fun acc fw -> acc +. Driver.Cost.ir_bytes fw)
                        0.0 task.Plan.t_funcs
                    in
                    store ir_bytes;
                    set_resident ws 0.0;
                    Netsim.Host.release_station cluster ws;
                    (* Phase-3 master: a fresh Lisp on a pool station. *)
                    let ws3 = Netsim.Host.claim cluster in
                    (if cfg.Config.core_download then
                       fetch cost.Driver.Cost.lisp_core_bytes);
                    set_resident ws3 cost.Driver.Cost.lisp_core_mb;
                    compute_f ws3 cost.Driver.Cost.lisp_init_seconds (400 + ti);
                    fetch ir_bytes;
                    List.iteri
                      (fun fi (fw : Driver.Compile.func_work) ->
                        set_resident ws3 (Driver.Cost.function_master_mb cost fw);
                        compute_f ws3
                          (Driver.Cost.phase3_seconds cost fw)
                          (500 + (31 * ti) + fi))
                      task.Plan.t_funcs;
                    store output_bytes;
                    set_resident ws3 0.0;
                    Netsim.Host.release_station cluster ws3;
                    Netsim.Sync.signal tasks_done
                  end))
            tasks;
          Netsim.Sync.wait tasks_done;
          (* Combine per-function results and diagnostics. *)
          let sw =
            List.find
              (fun (s : Driver.Compile.section_work) ->
                s.Driver.Compile.sw_name = section_name)
              mw.Driver.Compile.mw_sections
          in
          let combine = Driver.Cost.combine_seconds sw *. noise (salt + 40 + si) in
          Netsim.Host.compute sim ws_m ~factor ~seconds:combine;
          stats.section_cpu <- stats.section_cpu +. combine;
          Netsim.Sync.signal sections_done))
    plan.Plan.tasks_per_section;
  Netsim.Sync.wait sections_done;
  (* Phase 4 back in the master's Lisp process. *)
  set_resident ws_m
    (cost.Driver.Cost.lisp_core_mb +. ast_mb
    +. (cost.Driver.Cost.retained_mb_per_loc *. float_of_int mw.Driver.Compile.mw_loc));
  compute_m (Driver.Cost.phase4_seconds cost mw) 50;
  store (float_of_int (Driver.Compile.total_image_bytes mw));
  set_resident ws_m 0.0;
  Netsim.Host.release_station cluster ws_m;
  on_finish (Netsim.Des.now sim)

let run (cfg : Config.t) (mw : Driver.Compile.module_work) (plan : Plan.t) : outcome =
  let sim = Netsim.Des.create () in
  let cluster = Config.cluster cfg in
  let noise = Config.noise cfg in
  let finish = ref 0.0 in
  let stats =
    { master_cpu = 0.0; section_cpu = 0.0; extra_parse_cpu = 0.0; placements = [] }
  in
  Netsim.Des.spawn sim
    (master_process cfg sim cluster ~noise ~salt:0 mw plan ~stats
       ~on_finish:(fun t -> finish := t));
  ignore (Netsim.Des.run sim);
  let cpu = Netsim.Host.cpu_times cluster in
  {
    run =
      {
        Timings.elapsed = !finish;
        cpu_per_station = cpu;
        master_cpu = stats.master_cpu;
        section_cpu = stats.section_cpu;
        extra_parse_cpu = stats.extra_parse_cpu;
        stations_used = List.length cpu;
      };
    station_of_task = List.rev stats.placements;
  }
