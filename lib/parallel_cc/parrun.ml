(* The parallel compiler on the simulated host (section 3.2).

   Process hierarchy:
     master        one C process + a Lisp process for phase 1 and the
                   setup parse; spawns the section masters; performs
                   phase 4 after they finish.
     section       one C process per section, running on the master's
     masters       workstation; start one function master per task,
                   drawing workstations from the pool FCFS; combine
                   results and diagnostics when their functions finish.
     function      one Lisp process per task on its own workstation:
     masters       core-image download, initialization, re-parse of its
                   share of the source, then phases 2+3 for each of its
                   functions, then output write-back.

   The only communication is parent<->child messages (modelled by join
   counters), as in the paper.

   Scheduling.  Before the section masters fork, the plan passes
   through [Sched.schedule]: [Config.sched_policy] selects the paper's
   FCFS dispatch (plan physically unchanged, timings bit-identical),
   LPT ordering, or LPT with tiny-function batching.  On a retry under
   a non-FCFS policy, re-dispatch is locality-aware: the claim prefers
   a pool station that already holds the module's source bytes or the
   core image (the Ethernet's transfer history), and the granted
   station skips re-downloading whatever it holds.

   With [Config.fine_grained] set, each task is split into a phase-2
   task and a phase-3 task connected by an IR file on the server (the
   "finer grain parallelism" the paper's section 5 anticipates): the
   phase-2 master releases its workstation before the phase-3 master
   claims one, so stages of different tasks pipeline through a small
   pool — at the price of a second Lisp startup and the IR shipping.

   Fault tolerance.  When the configuration carries a fault plan, each
   task runs under a supervisor: the section master gives every attempt
   a deadline (Config.deadline_factor times the cost-model estimate),
   detects crashes ([Fault.Station_failed] from the attempt) and
   timeouts (a watchdog process), and re-dispatches the task FCFS to
   another pool station with exponential backoff, up to
   [Config.retry_budget] times.  Write-back is idempotent: a
   [completed] token makes the first finishing attempt win; stragglers
   only add to the wasted-CPU account.  When the budget is exhausted
   the task degrades to a sequential compile in the master's own Lisp
   (whose workstation is never faulted), so every compilation
   terminates with the same output — only slower.  With an empty fault
   plan the legacy unsupervised code path runs, preserving today's
   event schedule (and therefore timings) bit for bit. *)

let set_resident = Seqrun.set_resident

type outcome = {
  run : Timings.run;
  station_of_task : (string * int) list; (* task head function -> station *)
}

type stats = {
  mutable master_cpu : float;
  mutable section_cpu : float;
  mutable extra_parse_cpu : float;
  mutable placements : (string * int) list;
  mutable dispatch_units : int;
  mutable retries : int;
  mutable fallback_tasks : int;
  mutable wasted_cpu : float;
  mutable spec_dispatched : int;
  mutable spec_committed : int;
  mutable spec_rolled_back : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_invalidated : int;
}

let fresh_stats () =
  {
    master_cpu = 0.0;
    section_cpu = 0.0;
    extra_parse_cpu = 0.0;
    placements = [];
    dispatch_units = 0;
    retries = 0;
    fallback_tasks = 0;
    wasted_cpu = 0.0;
    spec_dispatched = 0;
    spec_committed = 0;
    spec_rolled_back = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidated = 0;
  }

(* A function-master attempt lost its station.  Raised and caught
   within the same simulated process — it never escapes the DES. *)
exception Lost of Netsim.Fault.failure

let check = function
  | Netsim.Fault.Completed -> ()
  | Netsim.Fault.Station_failed f -> raise (Lost f)

(* Supervision messages; attempt-numbered so a supervisor can ignore
   verdicts about attempts it has already given up on.  [Msg_aborted]
   is the commit oracle's verdict on a speculative attempt: the staged
   output read stale state and was quarantined. *)
type sup_msg =
  | Msg_completed
  | Msg_failed of int
  | Msg_timed_out of int
  | Msg_aborted of int

(* Bytes of the version-pointer flip that commits a staged artifact
   (or quarantines an aborted one) on the file server: metadata only,
   the staged payload itself was already charged at staging time. *)
let spec_meta_bytes = 256.0

(* The master process body; spawnable so that several modules can be
   compiled concurrently on one cluster (the parallel-make study). *)
let master_process (cfg : Config.t) sim (cluster : Netsim.Host.cluster) ~noise
    ~salt (mw : Driver.Compile.module_work) (plan : Plan.t) ~(stats : stats)
    ~on_finish () =
  let cost = cfg.Config.cost in
  (* Apply the dispatch policy.  A pure plan-to-plan transformation:
     [Sched.Fcfs] (the default) returns the plan physically unchanged,
     so the event schedule below is bit-identical to the unscheduled
     compiler.  Applied here rather than in [run] so the parallel-make
     study (which spawns master processes directly) is scheduled
     too. *)
  let policy = Config.effective_policy cfg in
  let plan =
    Sched.schedule ~static:cfg.Config.static_cost ~policy ~cost
      ~threshold:cfg.Config.batch_threshold ~stations:cfg.Config.stations plan
  in
  stats.dispatch_units <- stats.dispatch_units + Plan.task_count plan;
  (* Under a DAG policy each task gets a one-shot completion event;
     dependent tasks await their predecessors' events before claiming
     a station.  Everything is a no-op for edge-free sections (and for
     the non-DAG policies, whose dependence lists are empty): awaiting
     an already-set event never suspends and setting an event nobody
     awaits schedules nothing, so the event schedule is untouched.

     Under [Dag_spec] only the PROVEN edges gate; attempts dispatched
     past speculative edges stage their write-back and run the commit
     protocol below.  Speculation needs the supervisor even on a
     fault-free host (aborted attempts re-dispatch through it). *)
  let gated = Sched.dag_gated policy in
  let spec_mode = policy = Sched.Dag_spec in
  let supervised =
    (not (Netsim.Fault.is_none cfg.Config.faults)) || spec_mode
  in
  let tr = cfg.Config.trace in
  let ether = cluster.Netsim.Host.ether in
  (* Fetches identify the client station and a file label so the
     Ethernet keeps a transfer history ([Net.cached]); recording is
     bookkeeping only, but the locality-aware re-dispatch below reads
     it back on retries. *)
  let fetch ?client ?file bytes =
    Netsim.Net.fetch ?client ?file sim cluster.Netsim.Host.fs ether ~bytes
  in
  let store bytes =
    Netsim.Net.store sim cluster.Netsim.Host.fs ether ~bytes
  in
  (* The content-addressed compile cache, when one is configured —
     coarse grain only: the fine-grained split tasks hand IR between
     two masters and never produce a whole-function artifact, so they
     bypass the store.  [None] makes every lookup and publication below
     evaporate, leaving the event schedule bit-identical to a cacheless
     build. *)
  let cache =
    match cfg.Config.cache with
    | Some c when not cfg.Config.fine_grained -> Some c
    | _ -> None
  in
  (* File labels of the shared Lisp core image and this module's
     source. *)
  let core_file = "core" in
  let src_file = "src:" ^ mw.Driver.Compile.mw_name in
  let ws_m = Netsim.Host.claim sim cluster in
  let factor w = Config.cluster_slowdown cfg cluster w in
  (* The master's workstation is never faulted (Host wires station 0
     out of the plan); anything else is a simulation bug. *)
  let must = function
    | Netsim.Fault.Completed -> ()
    | Netsim.Fault.Station_failed f ->
      failwith
        (Printf.sprintf "Parrun: master workstation %d failed at %.1fs"
           f.Netsim.Fault.failed_station f.Netsim.Fault.failed_at)
  in
  let compute_m ?tag seconds salt' =
    must
      (Netsim.Host.compute sim ws_m ~factor ?tag
         ~seconds:(seconds *. noise (salt + salt')))
  in
  (* C master: cheap startup, then read the source. *)
  Netsim.Des.delay cost.Driver.Cost.c_process_seconds;
  fetch ~client:ws_m.Netsim.Host.ws_id ~file:src_file
    (Driver.Cost.source_bytes cost mw.Driver.Compile.mw_loc);
  (* The master's Lisp process: phase 1 proper plus the extra
     structure-discovering parse (the latter is implementation
     overhead). *)
  (if cfg.Config.core_download then
     fetch ~client:ws_m.Netsim.Host.ws_id ~file:core_file
       cost.Driver.Cost.lisp_core_bytes);
  let ast_mb =
    cost.Driver.Cost.ast_mb_per_loc *. float_of_int mw.Driver.Compile.mw_loc
  in
  set_resident ws_m (cost.Driver.Cost.lisp_core_mb +. ast_mb);
  compute_m ~tag:"lisp-init" cost.Driver.Cost.lisp_init_seconds 11;
  compute_m ~tag:"phase1" (Driver.Cost.phase1_seconds cost mw) 12;
  let setup = Driver.Cost.setup_parse_seconds cost mw *. noise (salt + 13) in
  must (Netsim.Host.compute sim ws_m ~factor ~tag:"setup-parse" ~seconds:setup);
  stats.master_cpu <- stats.master_cpu +. setup;
  (* Scheduling: derive the task placement directives. *)
  let sched = 0.1 *. float_of_int (Plan.task_count plan) *. noise (salt + 14) in
  must (Netsim.Host.compute sim ws_m ~factor ~tag:"sched" ~seconds:sched);
  stats.master_cpu <- stats.master_cpu +. sched;
  (* Fork the section masters. *)
  let sections_done = Netsim.Sync.join (List.length plan.Plan.tasks_per_section) in
  List.iteri
    (fun si (section_name, tasks) ->
      Netsim.Des.spawn sim (fun () ->
          (* Section masters are C processes on the master's host. *)
          Netsim.Des.delay cost.Driver.Cost.c_process_seconds;
          let interpret =
            0.05 *. float_of_int (List.length tasks) *. noise (salt + 20 + si)
          in
          must
            (Netsim.Host.compute sim ws_m ~factor ~tag:"sect-interpret"
               ~seconds:interpret);
          stats.section_cpu <- stats.section_cpu +. interpret;
          let tasks_done = Netsim.Sync.join (List.length tasks) in
          (* [deps] gates dispatch.  Under [Dag_spec] only the proven
             edges gate; the speculative remainder ([spec_deps]) is
             checked by the commit protocol instead, and its hot subset
             ([hot_deps]) — pairs the uncapped analysis proves really
             share state — is what forces an abort. *)
          let deps =
            if gated then
              Sched.task_deps
                ~func_deps:
                  (if spec_mode then Plan.proven_deps plan
                   else plan.Plan.func_deps)
                ~section:section_name tasks
            else Array.make (List.length tasks) []
          in
          let spec_deps, hot_deps =
            if spec_mode then
              ( Array.mapi
                  (fun i full ->
                    List.filter (fun d -> not (List.mem d deps.(i))) full)
                  (Sched.task_deps ~func_deps:plan.Plan.func_deps
                     ~section:section_name tasks),
                Sched.task_deps ~func_deps:plan.Plan.hot_edges
                  ~section:section_name tasks )
            else
              ( Array.make (List.length tasks) [],
                Array.make (List.length tasks) [] )
          in
          let completion =
            Array.init (List.length tasks) (fun _ -> Netsim.Sync.event ())
          in
          List.iteri
            (fun ti (task : Plan.task) ->
              (* Remote process creation is serialized in the forking
                 parent (rsh-style), a real cost of UNIX process
                 hierarchies the paper complains about. *)
              Netsim.Des.delay cost.Driver.Cost.fm_fork_seconds;
              (* Per-task quantities (pure, shared by every attempt). *)
              let head_name =
                match task.Plan.t_funcs with
                | fw :: _ -> Some fw.Driver.Compile.fw_name
                | [] -> None
              in
              let task_loc = Plan.task_loc task in
              let task_tokens =
                List.fold_left
                  (fun acc fw -> acc + fw.Driver.Compile.fw_tokens)
                  0 task.Plan.t_funcs
              in
              let out_wides =
                List.fold_left
                  (fun acc fw -> acc + fw.Driver.Compile.fw_wides)
                  0 task.Plan.t_funcs
              in
              (* Write-back: code, fixed framing, and the rendered
                 diagnostics the section master will combine. *)
              let output_bytes =
                (16.0 *. float_of_int out_wides)
                +. cost.Driver.Cost.diagnostic_bytes
                +. Driver.Cost.task_diag_bytes task.Plan.t_funcs
              in
              let task_label =
                match head_name with Some name -> name | None -> "<empty>"
              in
              (* Task-lifecycle span: recorded on the executing
                 station's track so Gantt/Chrome views show the
                 claim → write-back chain per attempt. *)
              let lspan ws ~name ~attempt_n ~t0 =
                if Trace.enabled tr then
                  Trace.span tr ~track:ws.Netsim.Host.ws_id ~cat:"task" ~name
                    ~args:
                      [ ("task", task_label); ("attempt", string_of_int attempt_n) ]
                    ~t0 ~t1:(Netsim.Des.now sim) ()
              in
              let linstant ~name ~attempt_n ?(extra = []) () =
                if Trace.enabled tr then
                  Trace.instant tr ~track:ws_m.Netsim.Host.ws_id ~cat:"task"
                    ~name
                    ~args:
                      (("task", task_label)
                      :: ("attempt", string_of_int attempt_n)
                      :: extra)
                    ~at:(Netsim.Des.now sim) ()
              in
              (* Compile-cache bookkeeping for this task.  Index events
                 live in their own "cache" category (the "cache-hit"
                 instant under "task" above is the unrelated byte-level
                 locality cache) and are emitted 1:1 with the counter
                 increments, so the trace recovery stays exact. *)
              let cache_instant ~name (fw : Driver.Compile.func_work) ~key
                  ~extra =
                if Trace.enabled tr then
                  Trace.instant tr ~track:ws_m.Netsim.Host.ws_id ~cat:"cache"
                    ~name
                    ~args:
                      (("task", task_label)
                      :: ("func", fw.Driver.Compile.fw_name)
                      :: ("key", key) :: extra)
                    ~at:(Netsim.Des.now sim) ()
              in
              let cache_owner (fw : Driver.Compile.func_work) =
                Cache.owner ~modul:mw.Driver.Compile.mw_name
                  ~section:section_name ~func:fw.Driver.Compile.fw_name
              in
              (* Durable publication of this task's artifacts into the
                 compile cache.  Called exactly where the task's output
                 becomes durable — the unsupervised attempt's return,
                 the winning supervised attempt, a speculative commit,
                 the sequential fallback — and never for a superseded
                 straggler or a quarantined speculative artifact, so
                 each key is stored at most once.  Only newly stored
                 artifacts cost anything: one store of payload+index
                 bytes, alongside the durable copy already written. *)
              let cache_publish () =
                match cache with
                | None -> ()
                | Some c ->
                  let stored =
                    List.fold_left
                      (fun acc (fw : Driver.Compile.func_work) ->
                        match fw.Driver.Compile.fw_key with
                        | None -> acc
                        | Some key ->
                          let bytes = Cache.artifact_bytes fw in
                          if Cache.populate c ~owner:(cache_owner fw) ~key ~bytes
                          then begin
                            cache_instant ~name:"cache-store" fw ~key ~extra:[];
                            acc +. bytes +. Cache.meta_bytes
                          end
                          else acc)
                      0.0 task.Plan.t_funcs
                  in
                  if stored > 0.0 then store stored
              in
              (* --- one function-master attempt ---
                 [note] records a placement; [spent] accumulates the
                 CPU this attempt burned (for the wasted-work account
                 if its output is lost).  [Lost] is raised when the
                 attempt's station crashes (checked by [compute] during
                 CPU work and explicitly after network operations,
                 which do not touch the station's CPU).  On the
                 fault-free path every check is a no-op, so the event
                 schedule is exactly the pre-fault-tolerance one.

                 [hardened] suppresses speculation for this attempt
                 (its task exhausted [Config.spec_budget]); [staged]
                 tells the watchdog a speculative attempt has parked
                 its output on the server and is merely awaiting the
                 commit verdict; [spec_pending] reports back which
                 speculative predecessors were still incomplete when
                 the attempt claimed its station — empty means the
                 attempt wrote back durably, non-empty means the
                 caller must run the commit protocol.  On every policy
                 but dag+spec [spec_deps] is all-empty, so the pending
                 set is always empty and none of this executes. *)
              let attempt ~note ~spent ~attempt_n ~hardened ~staged
                  ~spec_pending () =
                let alive ws =
                  match Netsim.Host.crashed ws ~now:(Netsim.Des.now sim) with
                  | Some f -> raise (Lost f)
                  | None -> ()
                in
                let lspan ws ~name ~t0 = lspan ws ~name ~attempt_n ~t0 in
                (* Pool stations are held exclusively, so the
                   busy-seconds delta around one compute call is
                   exactly this attempt's CPU (partial work of a
                   crashed slice included). *)
                let charged w thunk =
                  let before = w.Netsim.Host.busy_seconds in
                  let r = thunk () in
                  spent := !spent +. (w.Netsim.Host.busy_seconds -. before);
                  check r
                in
                let compute_f ?tag w seconds salt' =
                  charged w (fun () ->
                      Netsim.Host.compute sim w ~factor ?tag
                        ~seconds:(seconds *. noise (salt + salt')))
                in
                (* Locality-aware re-dispatch: on a retry under a
                   non-FCFS policy, prefer a pool station that already
                   holds this module's source bytes (then one holding
                   the core image), and skip the re-download of
                   whatever the granted station has.  First attempts
                   and the FCFS policy never reach these branches, so
                   their schedule is untouched. *)
                let locality = attempt_n > 1 && policy <> Sched.Fcfs in
                let has w file =
                  Netsim.Net.cached ether ~client:w.Netsim.Host.ws_id ~file
                in
                let cache_hit ws file =
                  let hit = locality && has ws file in
                  if hit then
                    linstant ~name:"cache-hit" ~attempt_n
                      ~extra:[ ("file", file); ("station", string_of_int ws.Netsim.Host.ws_id) ]
                      ();
                  hit
                in
                (* --- the function master proper --- *)
                let t_claim = Netsim.Des.now sim in
                let ws =
                  if locality then
                    Netsim.Host.claim_prefer sim cluster ~rank:(fun w ->
                        (if has w src_file then 2 else 0)
                        + (if has w core_file then 1 else 0))
                  else Netsim.Host.claim sim cluster
                in
                lspan ws ~name:"claim" ~t0:t_claim;
                (match head_name with
                | Some name -> note name ws.Netsim.Host.ws_id
                | None -> ());
                (* Speculation decision, made once the station is
                   granted: any speculative predecessor not yet durably
                   complete makes this attempt speculative — its output
                   will be staged, not written back, and the commit
                   oracle rules at predecessor write-back time. *)
                let pending =
                  if spec_mode && not hardened then
                    List.filter
                      (fun d -> not (Netsim.Sync.is_set completion.(d)))
                      spec_deps.(ti)
                  else []
                in
                spec_pending := pending;
                let speculative = pending <> [] in
                if speculative then begin
                  stats.spec_dispatched <- stats.spec_dispatched + 1;
                  linstant ~name:"spec-dispatch" ~attempt_n ()
                end;
                (* Lisp startup: every function master downloads the
                   core image and initializes (a warm station maps the
                   image it already holds: same resident set, no
                   wire). *)
                (if cfg.Config.core_download && not (cache_hit ws core_file)
                 then begin
                   let t0 = Netsim.Des.now sim in
                   fetch ~client:ws.Netsim.Host.ws_id ~file:core_file
                     cost.Driver.Cost.lisp_core_bytes;
                   lspan ws ~name:"transfer" ~t0
                 end);
                alive ws;
                set_resident ws cost.Driver.Cost.lisp_core_mb;
                compute_f ~tag:"lisp-init" ws cost.Driver.Cost.lisp_init_seconds
                  (100 + ti);
                (* Read and re-parse its share of the source. *)
                let t_parse = Netsim.Des.now sim in
                (if not (cache_hit ws src_file) then
                   fetch ~client:ws.Netsim.Host.ws_id ~file:src_file
                     (Driver.Cost.source_bytes cost task_loc));
                alive ws;
                let reparse =
                  cost.Driver.Cost.sec_per_token *. float_of_int task_tokens
                  *. noise (salt + 200 + ti)
                in
                charged ws (fun () ->
                    Netsim.Host.compute sim ws ~factor ~tag:"reparse"
                      ~seconds:reparse);
                lspan ws ~name:"parse" ~t0:t_parse;
                stats.extra_parse_cpu <- stats.extra_parse_cpu +. reparse;
                if not cfg.Config.fine_grained then begin
                  (* Coarse grain (the paper): phases 2+3 together.
                     With the compile cache on, each function is first
                     looked up by content key: a hit transfers the
                     memoized artifact — free when this station's byte
                     cache still holds it — instead of computing. *)
                  let t_p23 = Netsim.Des.now sim in
                  List.iteri
                    (fun fi (fw : Driver.Compile.func_work) ->
                      let hit =
                        match (cache, fw.Driver.Compile.fw_key) with
                        | Some c, Some key -> (
                          match Cache.find c ~owner:(cache_owner fw) ~key with
                          | Cache.Hit e ->
                            stats.cache_hits <- stats.cache_hits + 1;
                            cache_instant ~name:"cache-hit" fw ~key ~extra:[];
                            let file = "art:" ^ key in
                            (if not (has ws file) then
                               fetch ~client:ws.Netsim.Host.ws_id ~file
                                 (Cache.meta_bytes +. e.Cache.e_bytes));
                            alive ws;
                            true
                          | Cache.Miss { stale } ->
                            stats.cache_misses <- stats.cache_misses + 1;
                            if stale then
                              stats.cache_invalidated <-
                                stats.cache_invalidated + 1;
                            cache_instant ~name:"cache-miss" fw ~key
                              ~extra:
                                [ ("invalidated", if stale then "1" else "0") ];
                            false)
                        | _ -> false
                      in
                      if not hit then begin
                        set_resident ws (Driver.Cost.function_master_mb cost fw);
                        compute_f ~tag:"phase23" ws
                          (Driver.Cost.phase23_seconds cost fw)
                          (300 + (31 * ti) + fi)
                      end)
                    task.Plan.t_funcs;
                  lspan ws ~name:"phase23" ~t0:t_p23;
                  let t_wb = Netsim.Des.now sim in
                  store output_bytes;
                  alive ws;
                  if speculative then begin
                    (* Stage into a versioned buffer and release the
                       station immediately: the commit verdict is
                       awaited off-station, so speculation never holds
                       a pool slot hostage. *)
                    lspan ws ~name:"stage" ~t0:t_wb;
                    staged := true;
                    lspan ws ~name:"spec-attempt" ~t0:t_claim
                  end
                  else lspan ws ~name:"write-back" ~t0:t_wb;
                  set_resident ws 0.0;
                  Netsim.Host.release_station sim cluster ws
                end
                else begin
                  (* Fine grain: phase 2 here, then hand the IR to a
                     phase-3 master on a (possibly different) pool
                     station. *)
                  let t_p2 = Netsim.Des.now sim in
                  List.iteri
                    (fun fi (fw : Driver.Compile.func_work) ->
                      set_resident ws (Driver.Cost.function_master_mb cost fw);
                      compute_f ~tag:"phase2" ws
                        (Driver.Cost.phase2_seconds cost fw)
                        (300 + (31 * ti) + fi))
                    task.Plan.t_funcs;
                  lspan ws ~name:"phase2" ~t0:t_p2;
                  let ir_bytes =
                    List.fold_left
                      (fun acc fw -> acc +. Driver.Cost.ir_bytes fw)
                      0.0 task.Plan.t_funcs
                  in
                  let t_ir = Netsim.Des.now sim in
                  store ir_bytes;
                  alive ws;
                  lspan ws ~name:"write-ir" ~t0:t_ir;
                  set_resident ws 0.0;
                  Netsim.Host.release_station sim cluster ws;
                  (* Phase-3 master: a fresh Lisp on a pool station
                     (on a locality retry, preferably one that held
                     this task's IR or the core image before). *)
                  let ir_file = "ir:" ^ task_label in
                  let t_claim3 = Netsim.Des.now sim in
                  let ws3 =
                    if locality then
                      Netsim.Host.claim_prefer sim cluster ~rank:(fun w ->
                          (if has w ir_file then 2 else 0)
                          + (if has w core_file then 1 else 0))
                    else Netsim.Host.claim sim cluster
                  in
                  lspan ws3 ~name:"claim" ~t0:t_claim3;
                  (match head_name with
                  | Some name -> note (name ^ "#p3") ws3.Netsim.Host.ws_id
                  | None -> ());
                  (if cfg.Config.core_download && not (cache_hit ws3 core_file)
                   then begin
                     let t0 = Netsim.Des.now sim in
                     fetch ~client:ws3.Netsim.Host.ws_id ~file:core_file
                       cost.Driver.Cost.lisp_core_bytes;
                     lspan ws3 ~name:"transfer" ~t0
                   end);
                  alive ws3;
                  set_resident ws3 cost.Driver.Cost.lisp_core_mb;
                  compute_f ~tag:"lisp-init" ws3 cost.Driver.Cost.lisp_init_seconds
                    (400 + ti);
                  let t_fir = Netsim.Des.now sim in
                  (if not (cache_hit ws3 ir_file) then
                     fetch ~client:ws3.Netsim.Host.ws_id ~file:ir_file ir_bytes);
                  alive ws3;
                  lspan ws3 ~name:"fetch-ir" ~t0:t_fir;
                  let t_p3 = Netsim.Des.now sim in
                  List.iteri
                    (fun fi (fw : Driver.Compile.func_work) ->
                      set_resident ws3 (Driver.Cost.function_master_mb cost fw);
                      compute_f ~tag:"phase3" ws3
                        (Driver.Cost.phase3_seconds cost fw)
                        (500 + (31 * ti) + fi))
                    task.Plan.t_funcs;
                  lspan ws3 ~name:"phase3" ~t0:t_p3;
                  let t_wb = Netsim.Des.now sim in
                  store output_bytes;
                  alive ws3;
                  if speculative then begin
                    lspan ws3 ~name:"stage" ~t0:t_wb;
                    staged := true;
                    lspan ws3 ~name:"spec-attempt" ~t0:t_claim
                  end
                  else lspan ws3 ~name:"write-back" ~t0:t_wb;
                  set_resident ws3 0.0;
                  Netsim.Host.release_station sim cluster ws3
                end
              in
              (* Dependence gating happens inside the spawned process,
                 so the section master keeps forking the rest of its
                 queue while a gated task parks. *)
              let await_deps () =
                List.iter (fun d -> Netsim.Sync.await completion.(d)) deps.(ti)
              in
              if not supervised then
                (* Legacy path: no supervisor, no watchdog — the exact
                   event schedule (and timings) of the fault-free
                   compiler. *)
                Netsim.Des.spawn sim (fun () ->
                    await_deps ();
                    attempt
                      ~note:(fun name id ->
                        stats.placements <- (name, id) :: stats.placements)
                      ~spent:(ref 0.0) ~attempt_n:1 ~hardened:true
                      ~staged:(ref false) ~spec_pending:(ref []) ();
                    cache_publish ();
                    Netsim.Sync.set completion.(ti);
                    Netsim.Sync.signal tasks_done)
              else begin
                (* Supervised path: attempts run under a deadline and a
                   retry budget, then the task falls back to the
                   master's own Lisp. *)
                let work_estimate =
                  cost.Driver.Cost.lisp_init_seconds
                  +. (cost.Driver.Cost.sec_per_token *. float_of_int task_tokens)
                  +. Driver.Cost.task_phase23_seconds cost task.Plan.t_funcs
                  +. (if cfg.Config.fine_grained then
                        cost.Driver.Cost.lisp_init_seconds
                      else 0.0)
                  +. 60.0 (* grace for downloads and queueing *)
                in
                let deadline = cfg.Config.deadline_factor *. work_estimate in
                let sup : sup_msg Netsim.Sync.mailbox = Netsim.Sync.mailbox () in
                let completed = ref false in
                let attempt_no = ref 0 in
                (* Commit-oracle state: aborts so far, and whether the
                   task's speculative edges have hardened to gated. *)
                let spec_fails = ref 0 in
                let hardened = ref false in
                let launch () =
                  incr attempt_no;
                  let n = !attempt_no in
                  let staged = ref false in
                  (* Watchdog: the section master presumes the attempt
                     lost if it has not reported by the deadline.  A
                     staged speculative attempt is off-station merely
                     awaiting its commit verdict — the oracle, not the
                     clock, rules on it. *)
                  Netsim.Des.spawn sim (fun () ->
                      Netsim.Des.delay deadline;
                      if (not !completed) && not !staged then begin
                        linstant ~name:"timeout" ~attempt_n:n ();
                        Netsim.Sync.send sup (Msg_timed_out n)
                      end);
                  let noted = ref [] in
                  let spent = ref 0.0 in
                  let spec_pending = ref [] in
                  let note name id = noted := (name, id) :: !noted in
                  let wasted () =
                    stats.wasted_cpu <- stats.wasted_cpu +. !spent;
                    linstant ~name:"wasted" ~attempt_n:n
                      ~extra:[ ("cpu", Trace.farg !spent) ]
                      ()
                  in
                  let win () =
                    completed := true;
                    cache_publish ();
                    stats.placements <- !noted @ stats.placements;
                    Netsim.Sync.send sup Msg_completed
                  in
                  Netsim.Des.spawn sim (fun () ->
                      match
                        attempt ~note ~spent ~attempt_n:n
                          ~hardened:!hardened ~staged ~spec_pending ()
                      with
                      | () -> (
                        match !spec_pending with
                        | [] ->
                          (* Durable write-back already happened inside
                             the attempt. *)
                          if !completed then
                            (* A re-dispatch beat this straggler: its
                               write-back is superseded, not
                               repeated. *)
                            wasted ()
                          else win ()
                        | pending -> (
                          (* Commit protocol, off-station.  The online
                             race check is per involved edge: a pending
                             predecessor the attempt overlapped is a
                             race exactly when the pair really shares
                             state (hot); cold edges are conservative
                             artifacts and commit without waiting. *)
                          match
                            List.filter
                              (fun d -> List.mem d hot_deps.(ti))
                              pending
                          with
                          | d :: _ ->
                            (* Conflict: rule at predecessor write-back
                               time, then quarantine the stale staged
                               artifact (a version-pointer flip on the
                               file server) and surrender the attempt's
                               CPU to the wasted account. *)
                            Netsim.Sync.await completion.(d);
                            if !completed then wasted ()
                            else begin
                              let t_ab = Netsim.Des.now sim in
                              store spec_meta_bytes;
                              stats.spec_rolled_back <-
                                stats.spec_rolled_back + 1;
                              lspan ws_m ~name:"spec-abort" ~attempt_n:n
                                ~t0:t_ab;
                              wasted ();
                              Netsim.Sync.send sup (Msg_aborted n)
                            end
                          | [] ->
                            if !completed then wasted ()
                            else begin
                              (* Commit: claim the completion token
                                 before the pointer flip yields, so the
                                 staged artifact becomes the durable
                                 write-back exactly once. *)
                              completed := true;
                              let t_cm = Netsim.Des.now sim in
                              store spec_meta_bytes;
                              stats.spec_committed <-
                                stats.spec_committed + 1;
                              lspan ws_m ~name:"spec-commit" ~attempt_n:n
                                ~t0:t_cm;
                              cache_publish ();
                              stats.placements <- !noted @ stats.placements;
                              Netsim.Sync.send sup Msg_completed
                            end))
                      | exception Lost _ ->
                        linstant ~name:"attempt-lost" ~attempt_n:n ();
                        wasted ();
                        Netsim.Sync.send sup (Msg_failed n))
                in
                let fallback () =
                  (* Budget exhausted: compile the task in the master's
                     Lisp, which already holds the parsed module — the
                     sequential degradation rung.  Claim the completion
                     token first so any straggler counts as wasted. *)
                  completed := true;
                  stats.fallback_tasks <- stats.fallback_tasks + 1;
                  let t_fb = Netsim.Des.now sim in
                  List.iteri
                    (fun fi (fw : Driver.Compile.func_work) ->
                      let mb =
                        cost.Driver.Cost.data_mb_per_loc
                        *. float_of_int fw.Driver.Compile.fw_loc
                      in
                      Netsim.Host.add_resident ws_m mb;
                      must
                        (Netsim.Host.compute sim ws_m ~factor
                           ~tag:"fallback-phase23"
                           ~seconds:
                             (Driver.Cost.phase23_seconds cost fw
                             *. noise (salt + 600 + (31 * ti) + fi)));
                      Netsim.Host.remove_resident ws_m mb)
                    task.Plan.t_funcs;
                  store output_bytes;
                  cache_publish ();
                  lspan ws_m ~name:"fallback" ~attempt_n:(!attempt_no + 1)
                    ~t0:t_fb;
                  match head_name with
                  | Some name ->
                    stats.placements <-
                      (name, ws_m.Netsim.Host.ws_id) :: stats.placements
                  | None -> ()
                in
                Netsim.Des.spawn sim (fun () ->
                    await_deps ();
                    launch ();
                    let rec await budget =
                      match Netsim.Sync.recv sup with
                      | Msg_completed -> ()
                      | (Msg_failed n | Msg_timed_out n)
                        when n = !attempt_no && not !completed ->
                        if budget > 0 then begin
                          let step = cfg.Config.retry_budget - budget in
                          Netsim.Des.delay (Config.backoff_delay cfg ~step);
                          (* A straggler may have finished during the
                             backoff; its Msg_completed is queued. *)
                          if !completed then ()
                          else begin
                            stats.retries <- stats.retries + 1;
                            linstant ~name:"retry" ~attempt_n:(!attempt_no + 1) ();
                            launch ();
                            await (budget - 1)
                          end
                        end
                        else fallback ()
                      | Msg_aborted n when n = !attempt_no && not !completed ->
                        (* Misspeculation.  The conflicting predecessor
                           just wrote back durably, so an immediate
                           relaunch cannot re-conflict on it: no
                           backoff, and the retry budget (which pays for
                           faults, not oracle verdicts) is untouched.
                           Past the speculation budget the task hardens:
                           further launches gate on every erstwhile
                           speculative edge, which is the dag+lpt
                           discipline for this task. *)
                        spec_fails := !spec_fails + 1;
                        if !spec_fails >= cfg.Config.spec_budget then begin
                          hardened := true;
                          List.iter
                            (fun d -> Netsim.Sync.await completion.(d))
                            spec_deps.(ti)
                        end;
                        launch ();
                        await budget
                      | Msg_failed _ | Msg_timed_out _ | Msg_aborted _ ->
                        (* Stale attempt, or the task completed since
                           this verdict was posted. *)
                        await budget
                    in
                    await cfg.Config.retry_budget;
                    (* The task's output is durably written back —
                       whether by a surviving attempt or the fallback —
                       only here, so the completion event fires exactly
                       once per task, after the write that dependents
                       are allowed to read. *)
                    Netsim.Sync.set completion.(ti);
                    Netsim.Sync.signal tasks_done)
              end)
            tasks;
          Netsim.Sync.wait tasks_done;
          (* Combine per-function results and diagnostics. *)
          let sw =
            match
              List.find_opt
                (fun (s : Driver.Compile.section_work) ->
                  s.Driver.Compile.sw_name = section_name)
                mw.Driver.Compile.mw_sections
            with
            | Some sw -> sw
            | None ->
              failwith
                (Printf.sprintf
                   "Parrun: plan names section %S, but module %s only has: %s"
                   section_name mw.Driver.Compile.mw_name
                   (String.concat ", "
                      (List.map
                         (fun (s : Driver.Compile.section_work) ->
                           s.Driver.Compile.sw_name)
                         mw.Driver.Compile.mw_sections)))
          in
          let combine = Driver.Cost.combine_seconds sw *. noise (salt + 40 + si) in
          must
            (Netsim.Host.compute sim ws_m ~factor ~tag:"combine"
               ~seconds:combine);
          stats.section_cpu <- stats.section_cpu +. combine;
          Netsim.Sync.signal sections_done))
    plan.Plan.tasks_per_section;
  Netsim.Sync.wait sections_done;
  (* Phase 4 back in the master's Lisp process. *)
  set_resident ws_m
    (cost.Driver.Cost.lisp_core_mb +. ast_mb
    +. (cost.Driver.Cost.retained_mb_per_loc *. float_of_int mw.Driver.Compile.mw_loc));
  compute_m ~tag:"phase4" (Driver.Cost.phase4_seconds cost mw) 50;
  store (float_of_int (Driver.Compile.total_image_bytes mw));
  set_resident ws_m 0.0;
  Netsim.Host.release_station sim cluster ws_m;
  on_finish (Netsim.Des.now sim)

let run (cfg : Config.t) (mw : Driver.Compile.module_work) (plan : Plan.t) : outcome =
  let sim = Netsim.Des.create () in
  (* When this run starts on an empty trace, the recorded spans must
     reproduce the mutable-counter bookkeeping exactly — checked below
     (the check is skipped for traces shared across runs, e.g. the
     parallel-make study). *)
  let tr = cfg.Config.trace in
  let fresh_trace =
    Trace.enabled tr && Trace.span_count tr = 0 && Trace.instant_count tr = 0
  in
  let cluster = Config.cluster cfg in
  let noise = Config.noise cfg in
  let finish = ref 0.0 in
  let stats = fresh_stats () in
  Netsim.Des.spawn sim
    (master_process cfg sim cluster ~noise ~salt:0 mw plan ~stats
       ~on_finish:(fun t -> finish := t));
  ignore (Netsim.Des.run sim);
  let cpu = Netsim.Host.cpu_times cluster in
  let run =
    {
      Timings.elapsed = !finish;
      cpu_per_station = cpu;
      master_cpu = stats.master_cpu;
      section_cpu = stats.section_cpu;
      extra_parse_cpu = stats.extra_parse_cpu;
      stations_used = List.length cpu;
      dispatch_units = stats.dispatch_units;
      retries = stats.retries;
      stations_lost = Netsim.Host.lost_stations cluster ~now:!finish;
      fallback_tasks = stats.fallback_tasks;
      wasted_cpu = stats.wasted_cpu;
      spec_dispatched = stats.spec_dispatched;
      spec_committed = stats.spec_committed;
      spec_rolled_back = stats.spec_rolled_back;
      cache_hits = stats.cache_hits;
      cache_misses = stats.cache_misses;
      cache_invalidated = stats.cache_invalidated;
    }
  in
  if fresh_trace then begin
    Traceview.assert_matches_run tr run;
    (* Under a DAG policy the schedule promises dependence order; let
       the trace prove it kept that promise.  [Sched.schedule] is pure
       and deterministic, so re-deriving the scheduled plan here sees
       exactly the task queues the master dispatched.  dag+spec makes a
       weaker promise — proven edges ordered, speculative edges ordered
       only for the winning attempt of genuinely conflicting pairs —
       checked by the speculation-aware oracle. *)
    let policy = Config.effective_policy cfg in
    if Sched.dag_gated policy then begin
      let scheduled =
        Sched.schedule ~static:cfg.Config.static_cost ~policy
          ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold
          ~stations:cfg.Config.stations plan
      in
      if policy = Sched.Dag_spec then
        Traceview.assert_race_free_spec tr ~plan:scheduled
      else Traceview.assert_race_free tr ~plan:scheduled
    end
  end;
  {
    run;
    (* Placements report in (task, station) order rather than
       completion order, which under supervision depends on the racing
       attempts — sorted output is stable across fault plans. *)
    station_of_task = List.sort compare stats.placements;
  }
