(** Critical-path profiling over a finished trace.

    From a traced run (plus, optionally, the scheduled {!Plan.t}) the
    profiler reconstructs the blocking graph — every span's start was
    caused by exactly one of a predecessor's write-back, a pool grant,
    an Ethernet/file-server delay, a retry backoff window, or a
    speculation rollback — by walking backward from {!Trace.end_time}
    along the DES's exact shared timestamps.  The result is the
    end-to-end critical path as a chain of {!segment}s that tiles
    [0, end_time] exactly, with every second attributed to one
    {!bucket}; {!assert_exact} checks the float-exact sum invariant in
    the spirit of [Traceview.assert_matches_run].

    On top of the path: {!what_ifs} projects upper-bound speedups with
    one cost class zeroed, {!dag_bound} computes the analysis-side
    bound from the Depan antichain levels, and {!top} names the tasks
    and phases holding the run back.  Everything here only reads a
    finished trace, so profiling can never perturb a timing. *)

type bucket =
  | Cpu  (** compute on the path; split by phase tag in the profile *)
  | Dependence_wait
      (** dispatch released by a [Plan.func_deps] edge whose
          predecessor published strictly before the claim.  Rare by
          construction: a gated successor usually chains straight into
          its predecessor's write-back, which then carries the blame
          (the crossed edge is recorded in [p_dep_edges] either way). *)
  | Pool_wait  (** claim-to-grant on a contended workstation pool *)
  | Ether  (** Ethernet transfers on the path *)
  | Fs  (** file-server operations on the path *)
  | Backoff  (** retry backoff windows (crash/timeout recovery) *)
  | Rollback  (** speculation abort protocol windows *)
  | Master_serial
      (** untraced master work: forks, per-process startups, mailbox
          hops, dispatch serialization *)

val bucket_name : bucket -> string
val bucket_order : bucket list
(** The canonical order of the exact-sum invariant and every exporter:
    cpu, dependence_wait, pool_wait, ether, fs, backoff, rollback,
    master_serial. *)

val bucket_names : string list

type segment = {
  g_t0 : float;
  g_t1 : float;
  g_bucket : bucket;
  g_track : int;
  g_detail : string; (** phase tag, span name, or gap reason *)
  g_task : string option; (** enclosing task label, when attributable *)
}

type profile = {
  p_elapsed : float;
      (** the profiled window: the [~elapsed] anchor when given, else
          {!Trace.end_time} of the trace *)
  p_segments : segment list;
      (** the critical path, ascending; consecutive boundaries are the
          {e same} floats, first starts at 0, last ends at [p_elapsed] *)
  p_buckets : (string * float) list;
      (** per-bucket seconds in canonical order; folding them left to
          right yields [p_elapsed] {e exactly} (float equality) *)
  p_cpu_by_tag : (string * float) list; (** raw path sums, largest first *)
  p_dep_edges : (string * string) list;
      (** plan dependence edges the path crossed (task labels) *)
}

val of_trace : ?plan:Plan.t -> ?elapsed:float -> Trace.t -> profile
(** Profile a finished trace.  [plan] — the {e scheduled} plan, i.e.
    after {!Sched.schedule}, so task labels match the dispatched
    queues — enables dependence-edge naming and dependence-wait gap
    classification; without it those default to master-serial.
    [elapsed] anchors the walk (default {!Trace.end_time}): pass
    [Timings.elapsed] when you hold the run, because under timeouts a
    superseded attempt's queued claim can be granted {e after} the run
    completed by other means and record spans past the useful end —
    pure wasted work that must not masquerade as the critical path.
    @raise Failure when the bucket sums cannot be reconciled with the
    anchor beyond rounding scale (an attribution bug). *)

val assert_exact : profile -> unit
(** Check the invariants: buckets fold to [p_elapsed] exactly, every
    bucket is non-negative, and the segments tile [0, p_elapsed] with
    bit-identical shared boundaries.  @raise Failure on any breach. *)

(** {1 What-if upper bounds} *)

type whatif = {
  w_name : string;
      (** [free-comms], [infinite-stations], [zero-faults],
          [perfect-speculation] *)
  w_removed : float; (** critical-path seconds the scenario deletes *)
  w_elapsed : float; (** projected elapsed *)
  w_speedup : float; (** upper bound on the scenario's speedup *)
}

val what_ifs : profile -> whatif list
(** Re-walk the critical path with one cost class zeroed.  Deleting a
    class only from the recorded path is optimistic (the schedule would
    reroute onto a second-longest path), so each projection is a sound
    upper bound on what fixing that class alone could buy. *)

type dag_bound = {
  db_max_levels : int; (** deepest section chain; 1 = edge-free *)
  db_serial : float; (** sum of per-function phase-2+3 estimates *)
  db_chain : float; (** per-section sum over levels of the level max *)
  db_speedup : float; (** serial / chain: the analysis-side bound *)
}

val dag_bound : cost:Driver.Cost.model -> Driver.Compile.module_work -> dag_bound
(** The Depan bound from [si_levels]: with unlimited stations and free
    communication, elapsed compute cannot beat the sum over antichain
    levels of each level's longest function.  On edge-free programs
    ([db_max_levels = 1]) it agrees with the profile's view: the path
    crosses no dependence edge and carries no dependence-wait, so the
    infinite-stations what-if is limited by compute alone. *)

(** {1 Bottleneck report} *)

type hotspot = {
  h_label : string; (** task label, or the segment detail off-task *)
  h_bucket : string;
  h_reason : string; (** dominant blocking reason within the group *)
  h_track : int; (** track of the largest contributing segment *)
  h_seconds : float;
  h_share : float; (** of elapsed *)
}

val top : ?k:int -> profile -> hotspot list
(** The [k] (default 10) largest (task, bucket) contributions on the
    path, largest first. *)

val path_flows : profile -> (int * float * int * float) list
(** [(from_track, from_t, to_track, to_t)] for every hop of the path
    between tracks — feed to [Trace.to_chrome_json ~flows] so Perfetto
    draws the critical path as flow arrows. *)

(** {1 Renderers} *)

val bucket_table : profile -> Stats.Table.t
val top_table : ?k:int -> profile -> Stats.Table.t
val whatif_table : ?bound:dag_bound -> profile -> Stats.Table.t

val to_json :
  ?module_name:string ->
  ?policy:string ->
  ?processors:int ->
  ?top:int ->
  ?bound:dag_bound ->
  profile ->
  string
(** The profile as JSON, schema ["warpcc-profile/1"].  [elapsed] and
    the buckets print with [%.17g], so a consumer can re-fold the
    buckets in schema order and reproduce [elapsed] bit for bit (CI's
    profile-smoke job does exactly that). *)
