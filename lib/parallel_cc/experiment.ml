(* Drivers for every experiment in the paper's evaluation (section 4).

   Each driver compiles the test programs with the real compiler (work
   measurement), then plays the sequential and parallel compilations on
   the simulated 1989 host, repeating each measurement with the noise
   model and averaging — the paper's protocol (section 4.2). *)

type point = {
  n_functions : int;
  comparison : Timings.comparison;
}

(* --- compilation cache: measuring work is deterministic, do it once --- *)

let cache : (string, Driver.Compile.module_work) Hashtbl.t = Hashtbl.create 32

let s_program_work ?(level = 2) ~size ~count () : Driver.Compile.module_work =
  let key = Printf.sprintf "s:%s:%d:%d" (W2.Gen.size_name size) count level in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let mw = Driver.Compile.compile_module ~level (W2.Gen.s_program ~size ~count ()) in
    Hashtbl.replace cache key mw;
    mw

let user_program_work ?(level = 2) () : Driver.Compile.module_work =
  let key = Printf.sprintf "user:%d" level in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let mw = Driver.Compile.compile_module ~level (W2.Gen.user_program ()) in
    Hashtbl.replace cache key mw;
    mw

(* --- one measurement (sequential vs parallel), repeated and averaged --- *)

let repetitions = 3

let average xs = Stats.mean xs

let measure ?(cfg = Config.default) ?processors (mw : Driver.Compile.module_work) :
    Timings.comparison =
  (* [processors] is the number of workstations available to function
     masters; with fewer processors than tasks, tasks queue FCFS. *)
  let plan, n_fm =
    match processors with
    | None ->
      let plan = Plan.one_per_station mw in
      (plan, Plan.task_count plan)
    | Some p ->
      let plan = Plan.grouped mw ~processors:p in
      (plan, p)
  in
  let runs =
    List.init repetitions (fun i ->
        let seed = 1 + (1000 * i) + (17 * n_fm) in
        let cfg_run = { cfg with Config.noise_seed = seed } in
        let seq =
          Seqrun.run { cfg_run with Config.stations = 1 } mw
        in
        let par =
          (Parrun.run
             { cfg_run with Config.stations = n_fm + 1 }
             mw plan)
            .Parrun.run
        in
        (seq, par))
  in
  let avg_run (projection : (Timings.run * Timings.run) -> Timings.run) =
    let sample = projection (List.hd runs) in
    {
      sample with
      Timings.elapsed = average (List.map (fun r -> (projection r).Timings.elapsed) runs);
      master_cpu = average (List.map (fun r -> (projection r).Timings.master_cpu) runs);
      section_cpu = average (List.map (fun r -> (projection r).Timings.section_cpu) runs);
      extra_parse_cpu =
        average (List.map (fun r -> (projection r).Timings.extra_parse_cpu) runs);
    }
  in
  let seq = avg_run fst and par = avg_run snd in
  Timings.compare_runs ~processors:n_fm ~seq ~par

(* --- the paper's experiments --- *)

let function_counts = [ 1; 2; 4; 8 ]

(* Figures 3, 4, 5, 12, 13: total execution times (elapsed and
   per-processor CPU, sequential vs parallel) for one function size. *)
let size_series ?(cfg = Config.default) (size : W2.Gen.size) : point list =
  List.map
    (fun count ->
      let mw = s_program_work ~level:cfg.Config.opt_level ~size ~count () in
      { n_functions = count; comparison = measure ~cfg mw })
    function_counts

(* Figures 6 and 7: speedup for every size and function count. *)
let speedup_matrix ?(cfg = Config.default) () : (W2.Gen.size * point list) list =
  List.map (fun size -> (size, size_series ~cfg size)) W2.Gen.all_sizes

(* Figures 8-10 and 14-16 reuse the size series: overheads are already
   part of each comparison. *)

(* Figure 11: the mechanical-engineering user program (three sections
   of three functions), compiled on 2, 3, 5 and 9 processors with the
   load-balancing heuristic. *)
let user_program ?(cfg = Config.default) () : point list =
  let mw = user_program_work ~level:cfg.Config.opt_level () in
  List.map
    (fun p ->
      let total_functions = List.length (Driver.Compile.all_funcs mw) in
      let comparison =
        if p >= total_functions then measure ~cfg mw
        else measure ~cfg ~processors:p mw
      in
      { n_functions = p; comparison })
    [ 2; 3; 5; 9 ]

(* Section 4.2.2 (comparison with Katseff's parallel assembler):
   saturation — elapsed time of the 8-function program as the
   workstation pool grows; past 8 stations nothing improves. *)
let saturation ?(cfg = Config.default) ?(size = W2.Gen.Medium) () :
    (int * float) list =
  let mw = s_program_work ~level:cfg.Config.opt_level ~size ~count:8 () in
  let plan = Plan.one_per_station mw in
  List.map
    (fun stations ->
      let cfg_run = { cfg with Config.stations = stations + 1; noise_seed = 7 } in
      let par = (Parrun.run cfg_run mw plan).Parrun.run in
      (stations, par.Timings.elapsed))
    [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ]

(* --- ablations (DESIGN.md section 5) --- *)

type ablation = {
  ab_name : string;
  ab_cfg : Config.t;
}

let ablations =
  [
    { ab_name = "baseline"; ab_cfg = Config.default };
    { ab_name = "no-memory-model"; ab_cfg = { Config.default with Config.memory_model = false } };
    { ab_name = "no-core-download"; ab_cfg = { Config.default with Config.core_download = false } };
    { ab_name = "ideal-network"; ab_cfg = { Config.default with Config.ideal_network = true } };
  ]

(* --- section 5.1: procedure inlining as grain coarsening --- *)

type inlining_study = {
  baseline : Timings.comparison;
  inlined : Timings.comparison;
  baseline_functions : int;
  inlined_functions : int;
  calls_inlined : int;
}

(* Compile the many-small-functions program as-is, then again after
   inlining the helpers into their drivers (pruning helpers that are no
   longer called).  The paper's claim: "the increase in size of each
   function operated upon will also improve the speedup obtained by the
   parallel compiler". *)
let run_inlining_study ?(cfg = Config.default) () : inlining_study =
  let m = W2.Gen.helper_program () in
  let baseline_mw = Driver.Compile.compile_module ~level:cfg.Config.opt_level m in
  let expanded, stats = W2.Inline.expand_module m in
  let roots =
    List.concat_map
      (fun (sec : W2.Ast.section) ->
        List.filter_map
          (fun (f : W2.Ast.func) ->
            if String.length f.W2.Ast.fname >= 6
               && String.sub f.W2.Ast.fname 0 6 = "driver"
            then Some f.W2.Ast.fname
            else None)
          sec.W2.Ast.funcs)
      expanded.W2.Ast.sections
  in
  let pruned =
    {
      expanded with
      W2.Ast.sections =
        List.map (W2.Inline.prune_section ~roots) expanded.W2.Ast.sections;
    }
  in
  let inlined_mw = Driver.Compile.compile_module ~level:cfg.Config.opt_level pruned in
  {
    baseline = measure ~cfg baseline_mw;
    inlined = measure ~cfg inlined_mw;
    baseline_functions = List.length (Driver.Compile.all_funcs baseline_mw);
    inlined_functions = List.length (Driver.Compile.all_funcs inlined_mw);
    calls_inlined = stats.W2.Inline.inlined;
  }

(* --- section 3.4: parallel make coexistence --- *)

(* A small "system": several independent modules of mixed sizes, like a
   makefile with independent targets. *)
let make_modules ?(level = 2) () : Driver.Compile.module_work list =
  List.map
    (fun (size, count, tag) ->
      let key = Printf.sprintf "make:%s:%d:%d" (W2.Gen.size_name size) count level in
      match Hashtbl.find_opt cache key with
      | Some mw -> mw
      | None ->
        let m = W2.Gen.s_program ~name:tag ~size ~count () in
        let mw = Driver.Compile.compile_module ~level m in
        Hashtbl.replace cache key mw;
        mw)
    [
      (W2.Gen.Medium, 3, "libA");
      (W2.Gen.Small, 4, "libB");
      (W2.Gen.Medium, 2, "libC");
      (W2.Gen.Large, 1, "app");
    ]

(* Compare the four build strategies of [Makerun] on the mixed system. *)
let run_make_study ?(cfg = Config.default) ?(stations = 10) () :
    Makerun.result list =
  let modules = make_modules ~level:cfg.Config.opt_level () in
  Makerun.run_all { cfg with Config.noise_seed = 5 } ~stations modules

(* --- section 5: finer-grain parallelism (phase pipelining) --- *)

type grain_point = {
  gp_stations : int;
  coarse : float; (* elapsed, phases 2+3 fused (the paper's design) *)
  fine : float; (* elapsed, phases 2 and 3 as separate tasks *)
}

(* Throughput of the two granularities as the pool shrinks below the
   task count: fine grain pipelines phase-2 and phase-3 stages of
   different functions through the pool, at the price of extra Lisp
   startups and IR shipping. *)
let run_grain_study ?(cfg = Config.default) ?(size = W2.Gen.Medium) ?(count = 8) ()
    : grain_point list =
  let mw = s_program_work ~level:cfg.Config.opt_level ~size ~count () in
  let plan = Plan.one_per_station mw in
  List.map
    (fun stations ->
      let elapsed fine_grained =
        let cfg_run =
          { cfg with Config.stations; fine_grained; noise_seed = 9 }
        in
        (Parrun.run cfg_run mw plan).Parrun.run.Timings.elapsed
      in
      { gp_stations = stations; coarse = elapsed false; fine = elapsed true })
    [ 3; 5; 9 ]

(* --- fault tolerance: elapsed-time inflation under faults --- *)

type fault_point = {
  fp_stations : int;
  fp_rate : float;
  fp_elapsed : float;
  fp_inflation : float; (* elapsed / fault-free elapsed *)
  fp_retries : int;
  fp_fallbacks : int;
  fp_lost : int;
  fp_wasted_cpu : float;
}

let fault_rates = [ 0.0; 0.25; 0.5; 1.0 ]

(* In the spirit of the paper's S_n series: the same module compiled on
   pools of 2/4/8/16 stations while the crash rate grows.  The plan for
   one pool size is drawn once per rate from the same seed, so a higher
   rate strictly adds faults; the fault horizon is 1.5x the fault-free
   elapsed time, placing every event inside (or near) the useful part
   of the run. *)
let fault_sweep ?(cfg = Config.default) ?(size = W2.Gen.Medium) ?(count = 8) ()
    : fault_point list =
  let mw = s_program_work ~level:cfg.Config.opt_level ~size ~count () in
  let plan = Plan.one_per_station mw in
  List.concat_map
    (fun pool ->
      let base =
        { cfg with Config.stations = pool + 1; noise_seed = 3; faults = Netsim.Fault.none }
      in
      let free = (Parrun.run base mw plan).Parrun.run.Timings.elapsed in
      List.map
        (fun rate ->
          let faults =
            if rate <= 0.0 then Netsim.Fault.none
            else
              Netsim.Fault.random ~seed:(41 + pool) ~stations:(pool + 1) ~rate
                ~horizon:(free *. 1.5) ()
          in
          let r = (Parrun.run { base with Config.faults } mw plan).Parrun.run in
          {
            fp_stations = pool;
            fp_rate = rate;
            fp_elapsed = r.Timings.elapsed;
            fp_inflation = r.Timings.elapsed /. free;
            fp_retries = r.Timings.retries;
            fp_fallbacks = r.Timings.fallback_tasks;
            fp_lost = r.Timings.stations_lost;
            fp_wasted_cpu = r.Timings.wasted_cpu;
          })
        fault_rates)
    [ 2; 4; 8; 16 ]

(* --- scheduling policies: FCFS vs LPT vs LPT + tiny batching --- *)

type sched_point = {
  sp_series : string;
  sp_policy : Sched.policy;
  sp_pool : int;
  sp_units : int;
  sp_elapsed : float;
  sp_speedup_vs_fcfs : float;
}

(* The points where scheduling can matter: pools smaller than the task
   count, so dispatch units queue.  With a pool per task (the paper's
   main configuration) every policy degenerates to FCFS, and batching
   tiny functions LOSES elapsed time — it serializes work onto one
   station while the others idle; the sweep therefore stresses the
   oversubscribed regime.  [user4] is the section-4.3 program, whose
   sections hold one task each — a witness that per-section reordering
   is a no-op there. *)
let sched_series ?(level = 2) () =
  [
    ("tiny4p2", s_program_work ~level ~size:W2.Gen.Tiny ~count:4 (), 2);
    ("tiny8p2", s_program_work ~level ~size:W2.Gen.Tiny ~count:8 (), 2);
    ("tiny8p4", s_program_work ~level ~size:W2.Gen.Tiny ~count:8 (), 4);
    ("tiny16p4", s_program_work ~level ~size:W2.Gen.Tiny ~count:16 (), 4);
    ("small8p4", s_program_work ~level ~size:W2.Gen.Small ~count:8 (), 4);
    ("large8p4", s_program_work ~level ~size:W2.Gen.Large ~count:8 (), 4);
    ("huge8p4", s_program_work ~level ~size:W2.Gen.Huge ~count:8 (), 4);
    ("user4", user_program_work ~level (), 4);
  ]

let sched_sweep ?(cfg = Config.default) () : sched_point list =
  List.concat_map
    (fun (name, mw, pool) ->
      let plan = Plan.one_per_station mw in
      let play policy =
        let cfg_run =
          {
            cfg with
            Config.stations = pool + 1;
            noise_seed = 3;
            sched_policy = policy;
          }
        in
        (Parrun.run cfg_run mw plan).Parrun.run
      in
      let fcfs = play Sched.Fcfs in
      List.map
        (fun policy ->
          let r = if policy = Sched.Fcfs then fcfs else play policy in
          {
            sp_series = name;
            sp_policy = policy;
            sp_pool = pool;
            sp_units = r.Timings.dispatch_units;
            sp_elapsed = r.Timings.elapsed;
            sp_speedup_vs_fcfs = fcfs.Timings.elapsed /. r.Timings.elapsed;
          })
        Sched.all)
    (sched_series ~level:cfg.Config.opt_level ())

(* --- dependence-aware dispatch: FCFS vs DAG vs DAG + LPT --- *)

type dag_point = {
  dg_series : string;
  dg_policy : Sched.policy;
  dg_pool : int;
  dg_units : int;
  dg_elapsed : float;
  dg_speedup_vs_fcfs : float;
  dg_edges : int;
  dg_licensed : float;
}

let module_edges (t : Analysis.Depan.t) =
  List.fold_left
    (fun n si -> n + List.length si.Analysis.Depan.si_edges)
    0 t.Analysis.Depan.dp_sections

(* Pairs-weighted mean of the per-section licensed fractions: the
   fraction of same-section function pairs the analyzer lets the
   scheduler overlap.  An edge-free module scores 1.0. *)
let module_licensed (t : Analysis.Depan.t) =
  let pairs, licensed =
    List.fold_left
      (fun (p, l) si ->
        let n = Array.length si.Analysis.Depan.si_funcs in
        let np = float_of_int (n * (n - 1) / 2) in
        (p +. np, l +. (np *. Analysis.Depan.licensed_fraction si)))
      (0.0, 0.0) t.Analysis.Depan.dp_sections
  in
  if pairs = 0.0 then 1.0 else licensed /. pairs

let helper_program_work ?(level = 2) () : Driver.Compile.module_work =
  let key = Printf.sprintf "helpers:%d" level in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let mw = Driver.Compile.compile_module ~level (W2.Gen.helper_program ()) in
    Hashtbl.replace cache key mw;
    mw

(* Three regimes for the dependence-aware policies: an edge-free S_n
   (the DAG is a no-op and must cost nothing), the helper program
   (whose call graph the analyzer turns into inline_of edges, the
   paper's section 5.1 coupling), and the section-4.3 user program. *)
let dag_series ?(level = 2) () =
  [
    ("tiny8p4", s_program_work ~level ~size:W2.Gen.Tiny ~count:8 (), 4);
    ("small8p4", s_program_work ~level ~size:W2.Gen.Small ~count:8 (), 4);
    ("helpers4", helper_program_work ~level (), 4);
    ("user4", user_program_work ~level (), 4);
  ]

let dag_sweep ?(cfg = Config.default) () : dag_point list =
  List.concat_map
    (fun (name, (mw : Driver.Compile.module_work), pool) ->
      let analysis = mw.Driver.Compile.mw_analysis in
      let plan = Plan.one_per_station mw in
      let play policy =
        let cfg_run =
          {
            cfg with
            Config.stations = pool + 1;
            noise_seed = 3;
            sched_policy = policy;
          }
        in
        (Parrun.run cfg_run mw plan).Parrun.run
      in
      let fcfs = play Sched.Fcfs in
      List.map
        (fun policy ->
          let r = if policy = Sched.Fcfs then fcfs else play policy in
          {
            dg_series = name;
            dg_policy = policy;
            dg_pool = pool;
            dg_units = r.Timings.dispatch_units;
            dg_elapsed = r.Timings.elapsed;
            dg_speedup_vs_fcfs = fcfs.Timings.elapsed /. r.Timings.elapsed;
            dg_edges = module_edges analysis;
            dg_licensed = module_licensed analysis;
          })
        (Sched.Fcfs :: Sched.dag_policies))
    (dag_series ~level:cfg.Config.opt_level ())

(* --- section 6: how far does this scale? --- *)

(* "For the style of parallelism exploited by this compiler, on the
   order of 8 to 16 processors can be used comfortably.  For our domain
   of application programs, extending the number of processors beyond
   this range is unlikely to yield any additional speedup." *)
let run_scaling_study ?(cfg = Config.default) ?(size = W2.Gen.Large)
    ?max_stations () : point list =
  List.map
    (fun count ->
      let mw = s_program_work ~level:cfg.Config.opt_level ~size ~count () in
      let comparison =
        match max_stations with
        | Some cap when count > cap -> measure ~cfg ~processors:cap mw
        | Some _ | None -> measure ~cfg mw
      in
      { n_functions = count; comparison })
    [ 1; 2; 4; 8; 12; 16; 24; 32 ]

(* --- abstract-interpretation refinement: pruned edges, end to end --- *)

type absint_point = {
  ap_series : string;
  ap_functions : int;
  ap_edges_off : int; (* dependence edges, base analysis *)
  ap_edges_on : int; (* after the absint refinement *)
  ap_pruned : int; (* edge reasons refuted (region + protocol) *)
  ap_licensed_off : float;
  ap_licensed_on : float;
  ap_elapsed_off : float; (* dag+lpt elapsed on the unpruned DAG *)
  ap_elapsed_on : float; (* dag+lpt elapsed on the pruned DAG *)
  ap_speedup : float; (* off / on: what the pruning buys *)
  ap_race_violations : int;
      (* dynamic oracle over the pruned run's trace: dependence edges
         dispatched out of order.  Soundness means this is always 0 *)
}

let absint_series () =
  [
    ("partitioned", fun () -> W2.Gen.partitioned_program ());
    ("histogram", fun () -> W2.Gen.histogram_program ());
    ("deadchan", fun () -> W2.Gen.deadchan_program ());
    (* witness: every edge here is inline_of/sig_agreement, which the
       refinement never touches — the point must be a no-op *)
    ("helpers4", fun () -> W2.Gen.helper_program ~drivers:4 ());
  ]

let absint_program_work ?(level = 2) ~absint ~name (make : unit -> W2.Ast.modul)
    : Driver.Compile.module_work =
  let key = Printf.sprintf "absint:%s:%d:%b" name level absint in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let mw =
      Driver.Compile.compile_source ~level ~absint
        (W2.Pretty.module_to_string (make ()))
    in
    Hashtbl.replace cache key mw;
    mw

let module_pruned (t : Analysis.Depan.t) =
  List.fold_left
    (fun n si -> n + List.length si.Analysis.Depan.si_pruned)
    0 t.Analysis.Depan.dp_sections

(* Each program is compiled twice — refinement off and on — and both
   DAGs are played under dag+lpt on a 4-station pool with the race
   oracle armed: the pruned schedule must be faster (or at worst equal)
   and every surviving edge must still be honoured dynamically. *)
let absint_sweep ?(cfg = Config.default) ?(pool = 4) () : absint_point list =
  List.map
    (fun (name, make) ->
      let level = cfg.Config.opt_level in
      let off = absint_program_work ~level ~absint:false ~name make in
      let on = absint_program_work ~level ~absint:true ~name make in
      let play (mw : Driver.Compile.module_work) =
        let plan = Plan.one_per_station mw in
        let tr = Trace.create () in
        let cfg_run =
          {
            cfg with
            Config.stations = pool + 1;
            noise_seed = 3;
            sched_policy = Sched.Dag_lpt;
            trace = tr;
          }
        in
        let r = (Parrun.run cfg_run mw plan).Parrun.run in
        let scheduled =
          Sched.schedule ~static:cfg.Config.static_cost ~policy:Sched.Dag_lpt
            ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold
            ~stations:(pool + 1) plan
        in
        (r.Timings.elapsed, List.length (Traceview.race_check tr ~plan:scheduled))
      in
      let elapsed_off, _ = play off in
      let elapsed_on, violations = play on in
      {
        ap_series = name;
        ap_functions = List.length (Driver.Compile.all_funcs on);
        ap_edges_off = module_edges off.Driver.Compile.mw_analysis;
        ap_edges_on = module_edges on.Driver.Compile.mw_analysis;
        ap_pruned = module_pruned on.Driver.Compile.mw_analysis;
        ap_licensed_off = module_licensed off.Driver.Compile.mw_analysis;
        ap_licensed_on = module_licensed on.Driver.Compile.mw_analysis;
        ap_elapsed_off = elapsed_off;
        ap_elapsed_on = elapsed_on;
        ap_speedup = elapsed_off /. elapsed_on;
        ap_race_violations = violations;
      })
    (absint_series ())

(* --- speculative dispatch (dag+spec) --- *)

type spec_point = {
  zp_series : string;
  zp_functions : int;
  zp_spec_edges : int; (* speculative edges in the plan *)
  zp_hot_edges : int; (* genuinely conflicting speculative edges *)
  zp_elapsed_lpt : float; (* dag+lpt elapsed (every edge gated) *)
  zp_elapsed_spec : float; (* dag+spec elapsed *)
  zp_speedup : float; (* lpt / spec: what speculation buys *)
  zp_dispatched : int;
  zp_committed : int;
  zp_rolled_back : int;
  zp_race_violations : int;
}

(* The "blinded" programs are dynamically independent but compiled with
   the abstract interpretation off and the summary tracking cap below
   the write fan-out, so the analyzer pins every pair with
   summary_limit — the conservative-analysis regime speculation is for.
   The racy program is the adversarial control: its conflicts are real,
   so dag+spec must roll attempts back and still finish correctly. *)
let spec_series () =
  [
    ( "blinded4",
      (fun () -> W2.Gen.speculative_program ~workers:4 ~fanout:24 ()),
      Some 8,
      false,
      4 );
    ( "blinded8",
      (fun () -> W2.Gen.speculative_program ~workers:8 ~fanout:24 ()),
      Some 8,
      false,
      8 );
    ("racy3", (fun () -> W2.Gen.racy_program ~scatters:3 ()), None, true, 3);
  ]

let spec_program_work ?(level = 2) ?max_tracked ~absint ~name
    (make : unit -> W2.Ast.modul) : Driver.Compile.module_work =
  let key =
    Printf.sprintf "spec:%s:%d:%b:%d" name level absint
      (Option.value ~default:(-1) max_tracked)
  in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let mw =
      Driver.Compile.compile_source ~level ?max_tracked ~absint
        (W2.Pretty.module_to_string (make ()))
    in
    Hashtbl.replace cache key mw;
    mw

(* Each program is played under dag+lpt (every dependence edge gated)
   and dag+spec (speculative edges overlapped under the commit
   protocol) on a pool matching its width, traced, with the
   speculation-aware race oracle counting violations on the dag+spec
   trace.  [Parrun.run] already asserts both runs race-free; the
   explicit count lands in the benchmark artifact. *)
let spec_sweep ?(cfg = Config.default) () : spec_point list =
  List.map
    (fun (name, make, max_tracked, absint, pool) ->
      let mw =
        spec_program_work ~level:cfg.Config.opt_level ?max_tracked ~absint
          ~name make
      in
      let plan = Plan.one_per_station mw in
      let play policy =
        let tr = Trace.create () in
        let cfg_run =
          {
            cfg with
            Config.stations = pool + 1;
            noise_seed = 3;
            sched_policy = policy;
            trace = tr;
          }
        in
        let r = (Parrun.run cfg_run mw plan).Parrun.run in
        let scheduled =
          Sched.schedule ~static:cfg.Config.static_cost ~policy
            ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold
            ~stations:(pool + 1) plan
        in
        let violations =
          if policy = Sched.Dag_spec then
            List.length (Traceview.race_check_spec tr ~plan:scheduled)
          else List.length (Traceview.race_check tr ~plan:scheduled)
        in
        (r, violations)
      in
      let lpt, _ = play Sched.Dag_lpt in
      let spec, violations = play Sched.Dag_spec in
      {
        zp_series = name;
        zp_functions = List.length (Driver.Compile.all_funcs mw);
        zp_spec_edges =
          List.fold_left
            (fun n (_, es) -> n + List.length es)
            0 plan.Plan.spec_edges;
        zp_hot_edges =
          List.fold_left
            (fun n (_, es) -> n + List.length es)
            0 plan.Plan.hot_edges;
        zp_elapsed_lpt = lpt.Timings.elapsed;
        zp_elapsed_spec = spec.Timings.elapsed;
        zp_speedup = lpt.Timings.elapsed /. spec.Timings.elapsed;
        zp_dispatched = spec.Timings.spec_dispatched;
        zp_committed = spec.Timings.spec_committed;
        zp_rolled_back = spec.Timings.spec_rolled_back;
        zp_race_violations = violations;
      })
    (spec_series ())

(* --- critical-path profile sweep --- *)

type profile_point = {
  fp_series : string;
  fp_policy : Sched.policy;
  fp_pool : int;
  fp_elapsed : float;
  fp_buckets : (string * float) list; (* canonical order, exact sum *)
  fp_dominant : string;
  fp_segments : int;
}

(* Three bottleneck regimes: the overhead-dominated tiny S_8, the
   dependence-coupled helper program, and the speculation-exercising
   blinded program.  One function master per function on pools smaller
   than the task count, so shrinking the pool turns compute time into
   pool-wait time and the dominant bucket shifts. *)
let profile_series ?(level = 2) () =
  [
    ("tiny8", s_program_work ~level ~size:W2.Gen.Tiny ~count:8 ());
    ("helpers", helper_program_work ~level ());
    ( "blinded8",
      spec_program_work ~level ~max_tracked:8 ~absint:false ~name:"blinded8"
        (fun () -> W2.Gen.speculative_program ~workers:8 ~fanout:24 ()) );
  ]

let profile_pools = [ 2; 4; 8 ]
let profile_policies = [ Sched.Fcfs; Sched.Dag_lpt; Sched.Dag_spec ]

let profile_sweep ?(cfg = Config.default) () : profile_point list =
  List.concat_map
    (fun (name, mw) ->
      let plan = Plan.one_per_station mw in
      List.concat_map
        (fun pool ->
          List.map
            (fun policy ->
              let tr = Trace.create () in
              let cfg_run =
                {
                  cfg with
                  Config.stations = pool + 1;
                  noise_seed = 3;
                  sched_policy = policy;
                  trace = tr;
                }
              in
              let r = (Parrun.run cfg_run mw plan).Parrun.run in
              let scheduled =
                Sched.schedule ~static:cfg.Config.static_cost ~policy
                  ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold
                  ~stations:(pool + 1) plan
              in
              let p =
                Critpath.of_trace ~plan:scheduled ~elapsed:r.Timings.elapsed
                  tr
              in
              Critpath.assert_exact p;
              let dominant =
                fst
                  (List.fold_left
                     (fun (bn, bv) (n, v) ->
                       if v > bv then (n, v) else (bn, bv))
                     ("", neg_infinity) p.Critpath.p_buckets)
              in
              {
                fp_series = name;
                fp_policy = policy;
                fp_pool = pool;
                fp_elapsed = p.Critpath.p_elapsed;
                fp_buckets = p.Critpath.p_buckets;
                fp_dominant = dominant;
                fp_segments = List.length p.Critpath.p_segments;
              })
            profile_policies)
        profile_pools)
    (profile_series ())

(* --- content-addressed compile cache: cold / warm / one-edit --- *)

type cache_point = {
  cp_series : string;
  cp_pool : int;
  cp_functions : int;
  cp_edited : string;
  cp_closure : int;
  cp_cold_elapsed : float;
  cp_warm_elapsed : float;
  cp_edit_elapsed : float;
  cp_warm_speedup : float;
  cp_cold_hits : int;
  cp_cold_misses : int;
  cp_warm_hits : int;
  cp_warm_misses : int;
  cp_edit_hits : int;
  cp_edit_misses : int;
  cp_edit_invalidated : int;
}

(* The invalidation closure of editing [name]: the function itself plus
   every transitive dependent in the analyzer's dependence DAG — by the
   key construction ([Analysis.Depan.cache_keys] folds predecessor keys
   in), exactly the set whose keys change, hence exactly the set an
   incremental rebuild recompiles. *)
let edit_closure (t : Analysis.Depan.t) name : int =
  List.fold_left
    (fun acc (si : Analysis.Depan.section_info) ->
      if
        Array.exists
          (fun fi -> fi.Analysis.Depan.fi_name = name)
          si.Analysis.Depan.si_funcs
      then begin
        let edges = Analysis.Depan.edges_by_name si in
        let reached = Hashtbl.create 8 in
        let rec go n =
          if not (Hashtbl.mem reached n) then begin
            Hashtbl.replace reached n ();
            List.iter (fun (f, t', _) -> if f = n then go t') edges
          end
        in
        go name;
        acc + Hashtbl.length reached
      end
      else acc)
    0 t.Analysis.Depan.dp_sections

(* The most coupled function of the module: editing it invalidates the
   largest closure, the sweep's most interesting (and still
   deterministic) incremental edit. *)
let widest_edit (mw : Driver.Compile.module_work) : string =
  let best = ref ("", 0) in
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      let c = edit_closure mw.Driver.Compile.mw_analysis fw.Driver.Compile.fw_name in
      if c > snd !best then best := (fw.Driver.Compile.fw_name, c))
    (Driver.Compile.all_funcs mw);
  fst !best

(* An edge-free point (closure of any edit = 1), the inline-coupled
   helper program (editing a shared helper invalidates its drivers),
   and the section-4.3 user program. *)
let cache_series () =
  [
    ("medium8", (fun () -> W2.Gen.s_program ~size:W2.Gen.Medium ~count:8 ()), 4);
    ("helpers", (fun () -> W2.Gen.helper_program ()), 4);
    ("user", (fun () -> W2.Gen.user_program ()), 4);
  ]

let cache_program_work ?(level = 2) ~name ?edit (make : unit -> W2.Ast.modul) :
    Driver.Compile.module_work =
  let key =
    Printf.sprintf "cachebench:%s:%d:%s" name level
      (Option.value ~default:"" edit)
  in
  match Hashtbl.find_opt cache key with
  | Some mw -> mw
  | None ->
    let m = make () in
    let m = match edit with None -> m | Some f -> W2.Gen.touch_in m f in
    let mw = Driver.Compile.compile_module ~level m in
    Hashtbl.replace cache key mw;
    mw

(* Cold, warm and one-edit runs against a single store, dag+lpt on a
   small pool.  The cold run populates (every lookup misses), the warm
   run must hit on every function, and the edit run must recompile
   exactly the edited function's closure — each such miss flagged as an
   invalidation — while hitting on everything else. *)
let cache_sweep ?(cfg = Config.default) () : cache_point list =
  List.map
    (fun (name, make, pool) ->
      let level = cfg.Config.opt_level in
      let mw = cache_program_work ~level ~name make in
      let edited = widest_edit mw in
      let mw_edit = cache_program_work ~level ~name ~edit:edited make in
      let store = Cache.create () in
      let play (mw' : Driver.Compile.module_work) =
        let plan = Plan.one_per_station mw' in
        let cfg_run =
          {
            cfg with
            Config.stations = pool + 1;
            noise_seed = 3;
            sched_policy = Sched.Dag_lpt;
            cache = Some store;
          }
        in
        (Parrun.run cfg_run mw' plan).Parrun.run
      in
      let cold = play mw in
      let warm = play mw in
      let edit = play mw_edit in
      {
        cp_series = name;
        cp_pool = pool;
        cp_functions = List.length (Driver.Compile.all_funcs mw);
        cp_edited = edited;
        cp_closure = edit_closure mw_edit.Driver.Compile.mw_analysis edited;
        cp_cold_elapsed = cold.Timings.elapsed;
        cp_warm_elapsed = warm.Timings.elapsed;
        cp_edit_elapsed = edit.Timings.elapsed;
        cp_warm_speedup = cold.Timings.elapsed /. warm.Timings.elapsed;
        cp_cold_hits = cold.Timings.cache_hits;
        cp_cold_misses = cold.Timings.cache_misses;
        cp_warm_hits = warm.Timings.cache_hits;
        cp_warm_misses = warm.Timings.cache_misses;
        cp_edit_hits = edit.Timings.cache_hits;
        cp_edit_misses = edit.Timings.cache_misses;
        cp_edit_invalidated = edit.Timings.cache_invalidated;
      })
    (cache_series ())

(* --- modular cross-module analysis: compose from summaries, then
   schedule the whole link as one project --- *)

type link_compose_point = {
  lc_shape : string;
  lc_modules : int;
  lc_functions : int;
  lc_edges : int;
  lc_cross_edges : int;
  lc_levels : int;
  lc_module_levels : int;
  lc_licensed : float;
  lc_missing : int;
  lc_diags : (string * int) list;
}

type link_sched_point = {
  lp_shape : string;
  lp_modules : int;
  lp_functions : int;
  lp_policy : Sched.policy;
  lp_pool : int;
  lp_units : int;
  lp_elapsed : float;
  lp_speedup_vs_fcfs : float;
  lp_cross_edges : int;
  lp_spec_edges : int;
  lp_race_violations : int;
}

let link_compose_sizes = [ 100; 200; 400 ]
let link_sched_sizes = [ 24; 48 ]
let link_pool = 8

(* Summarize each module separately (providers accumulate as [deps]
   for the cross-module content keys), then force every summary
   through the .wsi artifact: composition must see exactly what a
   separate build persists, nothing more. *)
let link_summaries (mods : W2.Ast.modul list) : Analysis.Modan.module_summary list =
  List.rev
    (List.fold_left
       (fun acc m ->
         let s = Analysis.Modan.summarize ~deps:acc m in
         Analysis.Modan.of_artifact (Analysis.Modan.to_artifact s) :: acc)
       [] mods)

let link_cross_edges (link : Analysis.Modan.link) =
  List.length
    (List.filter
       (fun (e : Analysis.Modan.xedge) ->
         e.Analysis.Modan.x_from_module <> e.Analysis.Modan.x_to_module)
       link.Analysis.Modan.lk_edges)

let link_compose_sweep () : link_compose_point list =
  List.concat_map
    (fun shape ->
      List.map
        (fun n ->
          let mods = W2.Gen.project_program ~modules:n ~seed:1 ~shape () in
          let link = Analysis.Modan.compose (link_summaries mods) in
          let diags =
            List.sort compare
              (List.fold_left
                 (fun acc (d : W2.Diag.t) ->
                   let c = d.W2.Diag.d_code in
                   match List.assoc_opt c acc with
                   | Some k -> (c, k + 1) :: List.remove_assoc c acc
                   | None -> (c, 1) :: acc)
                 [] link.Analysis.Modan.lk_diags)
          in
          {
            lc_shape = W2.Gen.shape_name shape;
            lc_modules = n;
            lc_functions = List.length link.Analysis.Modan.lk_funcs;
            lc_edges = List.length link.Analysis.Modan.lk_edges;
            lc_cross_edges = link_cross_edges link;
            lc_levels = List.length link.Analysis.Modan.lk_levels;
            lc_module_levels = List.length link.Analysis.Modan.lk_module_levels;
            lc_licensed = link.Analysis.Modan.lk_licensed;
            lc_missing = List.length link.Analysis.Modan.lk_missing;
            lc_diags = diags;
          })
        link_compose_sizes)
    W2.Gen.all_shapes

let link_cache :
    (string, Driver.Compile.module_work * Analysis.Modan.link) Hashtbl.t =
  Hashtbl.create 8

let link_program_work ?(level = 2) ~shape ~modules () :
    Driver.Compile.module_work * Analysis.Modan.link =
  let key =
    Printf.sprintf "link:%s:%d:%d" (W2.Gen.shape_name shape) modules level
  in
  match Hashtbl.find_opt link_cache key with
  | Some r -> r
  | None ->
    let mods = W2.Gen.project_program ~modules ~seed:1 ~shape () in
    let link = Analysis.Modan.compose (link_summaries mods) in
    let merged = Analysis.Modan.inline_project mods in
    let mw =
      Driver.Compile.compile_source ~level (W2.Pretty.module_to_string merged)
    in
    Hashtbl.replace link_cache key (mw, link);
    (mw, link)

(* The project plan: one master per function over the inlined program,
   with the whole-program DAG replaced by the composed one.  The
   composed edge set is a superset of what the whole-program analyzer
   finds (the modan soundness theorem), so gating on it stays
   conservative; hot edges keep the merged analysis's proof of real
   sharing, restricted to pairs the composed DAG still speculates
   past. *)
let link_plan (mw : Driver.Compile.module_work) (link : Analysis.Modan.link) :
    Plan.t =
  let plan = Plan.one_per_station mw in
  let deps = Analysis.Modan.func_deps link in
  let specs = Analysis.Modan.spec_deps link in
  let spec_set = Hashtbl.create (1 + List.length specs) in
  List.iter (fun p -> Hashtbl.replace spec_set p ()) specs;
  let hot =
    List.map
      (fun (s, es) -> (s, List.filter (Hashtbl.mem spec_set) es))
      plan.Plan.hot_edges
  in
  {
    plan with
    Plan.func_deps = List.map (fun (s, _) -> (s, deps)) plan.Plan.func_deps;
    spec_edges = List.map (fun (s, _) -> (s, specs)) plan.Plan.spec_edges;
    hot_edges = hot;
  }

let link_sched_sweep ?(cfg = Config.default) () : link_sched_point list =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun modules ->
          let mw, link =
            link_program_work ~level:cfg.Config.opt_level ~shape ~modules ()
          in
          let plan = link_plan mw link in
          let pool = link_pool in
          let play policy =
            let tr = Trace.create () in
            let cfg_run =
              {
                cfg with
                Config.stations = pool + 1;
                noise_seed = 3;
                sched_policy = policy;
                trace = tr;
              }
            in
            let r = (Parrun.run cfg_run mw plan).Parrun.run in
            let violations =
              if policy = Sched.Fcfs then 0
                (* FCFS ignores the DAG; the oracle only judges the
                   DAG-gated policies *)
              else
                let scheduled =
                  Sched.schedule ~static:cfg.Config.static_cost ~policy
                    ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold
                    ~stations:(pool + 1) plan
                in
                if policy = Sched.Dag_spec then
                  List.length (Traceview.race_check_spec tr ~plan:scheduled)
                else List.length (Traceview.race_check tr ~plan:scheduled)
            in
            (r, violations)
          in
          let fcfs, _ = play Sched.Fcfs in
          let spec_edge_count =
            List.fold_left
              (fun n (_, es) -> n + List.length es)
              0 plan.Plan.spec_edges
          in
          List.map
            (fun policy ->
              let r, violations =
                if policy = Sched.Fcfs then (fcfs, 0) else play policy
              in
              {
                lp_shape = W2.Gen.shape_name shape;
                lp_modules = modules;
                lp_functions = List.length (Driver.Compile.all_funcs mw);
                lp_policy = policy;
                lp_pool = pool;
                lp_units = r.Timings.dispatch_units;
                lp_elapsed = r.Timings.elapsed;
                lp_speedup_vs_fcfs =
                  fcfs.Timings.elapsed /. r.Timings.elapsed;
                lp_cross_edges = link_cross_edges link;
                lp_spec_edges = spec_edge_count;
                lp_race_violations = violations;
              })
            [ Sched.Fcfs; Sched.Dag_lpt; Sched.Dag_spec ])
        link_sched_sizes)
    W2.Gen.all_shapes
