(* Real multicore execution of the master / section-master /
   function-master hierarchy using OCaml domains.

   The discrete-event simulation reproduces the paper's measurements on
   a period-accurate host; this driver demonstrates that the same
   orchestration runs the *actual* compiler in parallel on today's
   hardware: one domain per function master, FCFS over a bounded pool,
   sections independent, phase 1 and phase 4 sequential — exactly the
   structure of figure 2.

   Wall-clock speedups obviously depend on available cores; the driver
   reports them but the tests only check functional equivalence. *)

type result = {
  images : (string * Warp.Mcode.image) list; (* per section *)
  functions_compiled : int;
  wall_seconds : float;
}

(* A bounded pool of worker domains processing thunks FCFS — the analog
   of the workstation pool. *)
module Pool = struct
  type task = Task of (unit -> unit) | Stop

  type t = {
    queue : task Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    domains : unit Domain.t list;
  }

  let worker pool () =
    let rec loop () =
      Mutex.lock pool.mutex;
      let rec take () =
        match Queue.take_opt pool.queue with
        | Some task -> task
        | None ->
          Condition.wait pool.nonempty pool.mutex;
          take ()
      in
      let task = take () in
      Mutex.unlock pool.mutex;
      match task with
      | Stop -> ()
      | Task f ->
        f ();
        loop ()
    in
    loop ()

  let rec create n =
    let pool =
      {
        queue = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        domains = [];
      }
    in
    if n < 1 then create 1
    else { pool with domains = List.init n (fun _ -> Domain.spawn (worker pool)) }

  let submit pool f =
    Mutex.lock pool.mutex;
    Queue.push (Task f) pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.mutex

  let shutdown pool =
    Mutex.lock pool.mutex;
    List.iter (fun _ -> Queue.push Stop pool.queue) pool.domains;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains
end

(* Compile [m] with up to [workers] function masters running as domains.
   Raises [Driver.Compile.Compile_error] on phase-1 failure, like the
   sequential master. *)
let compile_parallel ?(workers = 4) ?(level = 2) (m : W2.Ast.modul) : result =
  let t0 = Sys.time () in
  (* Phase 1: sequential master. *)
  (match W2.Semcheck.check_module m with
  | [] -> ()
  | errors ->
    raise
      (Driver.Compile.Compile_error
         (String.concat "\n" (List.map W2.Semcheck.error_to_string errors))));
  let pool = Pool.create workers in
  (* Section masters fork function masters; results are collected in
     per-function slots (no ordering dependence). *)
  let sections =
    List.map
      (fun (sec : W2.Ast.section) ->
        let funcs = Array.of_list sec.W2.Ast.funcs in
        let slots = Array.make (Array.length funcs) None in
        let outstanding = Atomic.make (Array.length funcs) in
        let func_rets = Driver.Compile.func_rets_of sec in
        Array.iteri
          (fun i f ->
            Pool.submit pool (fun () ->
                let _work, mfunc, _ir =
                  Driver.Compile.compile_function ~level
                    ~globals:sec.W2.Ast.globals ~func_rets
                    ~section:sec.W2.Ast.sname f
                in
                slots.(i) <- Some mfunc;
                Atomic.decr outstanding))
          funcs;
        (sec, slots, outstanding))
      m.W2.Ast.sections
  in
  (* The master waits for all section masters. *)
  List.iter
    (fun (_, _, outstanding) ->
      while Atomic.get outstanding > 0 do
        Domain.cpu_relax ()
      done)
    sections;
  Pool.shutdown pool;
  (* Phase 4: sequential assembly and linking. *)
  let images =
    List.map
      (fun ((sec : W2.Ast.section), slots, _) ->
        let mfuncs = Array.to_list slots |> List.map Option.get in
        ( sec.W2.Ast.sname,
          Warp.Link.link ~section:sec.W2.Ast.sname ~cells:sec.W2.Ast.cells mfuncs ))
      sections
  in
  {
    images;
    functions_compiled = W2.Ast.func_count m;
    wall_seconds = Sys.time () -. t0;
  }
