(** Timing results of one simulated compilation and the overhead
    decomposition of the paper's section 4.2.3. *)

type run = {
  elapsed : float; (** wall-clock ("user") time *)
  cpu_per_station : float list; (** busy seconds of each station used *)
  master_cpu : float; (** setup parse + scheduling *)
  section_cpu : float; (** section-master work *)
  extra_parse_cpu : float; (** function masters re-parsing *)
  stations_used : int;
  dispatch_units : int;
      (** function-master tasks actually launched — after any
          {!Sched.Lpt_batch} merging, so under batching this is less
          than the plan's task count; 1 for a sequential run *)
  retries : int; (** task re-dispatches after crash or timeout *)
  stations_lost : int; (** stations crashed or reclaimed by run's end *)
  fallback_tasks : int; (** tasks finished sequentially on the master *)
  wasted_cpu : float;
      (** CPU seconds burned by attempts whose output was lost (crashed,
          superseded by a re-dispatch, or rolled back by the
          speculation commit oracle) *)
  spec_dispatched : int;
      (** attempts launched past a speculative dependence edge
          ([dag+spec] only; 0 everywhere else) *)
  spec_committed : int;
      (** speculative attempts whose staged output won the commit
          check and became the durable write-back *)
  spec_rolled_back : int;
      (** speculative attempts the commit oracle aborted; their CPU is
          charged to [wasted_cpu] and the task re-dispatches *)
  cache_hits : int;
      (** functions whose phase-2/3 artifact came from the compile
          cache ({!Config.t.cache}): their compute was skipped and an
          artifact transfer charged instead; 0 when the cache is off *)
  cache_misses : int;
      (** functions looked up in the compile cache but computed —
          includes the invalidated ones *)
  cache_invalidated : int;
      (** misses whose function previously published a {e different}
          key: dependency-aware invalidations after an edit, a subset
          of [cache_misses] *)
}

type comparison = {
  processors : int; (** stations available to function masters *)
  seq : run;
  par : run;
  speedup : float;
  total_overhead : float; (** parallel elapsed − ideal *)
  impl_overhead : float;
      (** master + section masters + re-parses (CPU) *)
  sys_overhead : float; (** total − implementation *)
  rel_total_overhead : float; (** percent of parallel elapsed *)
  rel_sys_overhead : float;
}

val ideal_time : seq:run -> processors:int -> float
(** Perfect division of the sequential elapsed time over the
    processors carrying function masters. *)

val compare_runs : processors:int -> seq:run -> par:run -> comparison

val max_cpu : run -> float
(** The busiest station's CPU seconds — the per-processor CPU time the
    paper's figures report. *)

val comparison_to_json : comparison -> string
(** The comparison as a JSON document (schema ["warpcc-simulate/3"]:
    /2 plus the three compile-cache counters per run), with both runs
    inlined and floats printed to round-trip exactly — the
    machine-readable face of [warpcc simulate --json]. *)
