(* The sequential compiler on the simulated host: one workstation, one
   Common-Lisp process doing all four phases in order.

   Its Lisp heap holds the whole module — the parsed program, everything
   retained from already-compiled functions, and the live data of the
   function at hand — so memory pressure grows as compilation proceeds
   (this is the swapping/GC behaviour the paper blames for the
   sequential compiler's own system overhead).

   [compile_process] is the spawnable body, reused by the parallel-make
   study where several sequential compilations share the cluster. *)

let set_resident ws mb =
  Netsim.Host.remove_resident ws ws.Netsim.Host.resident_mb;
  Netsim.Host.add_resident ws mb

(* Compile-cache tallies of one sequential compilation; the caller
   owns the record so [run] can fold them into the timings while the
   parallel-make study, which spawns [compile_process] directly, can
   ignore them. *)
type cache_counters = {
  mutable cc_hits : int;
  mutable cc_misses : int;
  mutable cc_invalidated : int;
}

let fresh_counters () = { cc_hits = 0; cc_misses = 0; cc_invalidated = 0 }

(* One sequential compilation of [mw]: claims a workstation, runs the
   four phases, releases the station and reports its completion time.
   [salt] decorrelates the noise of concurrent instances. *)
let compile_process ?(counters = fresh_counters ()) (cfg : Config.t) sim
    (cluster : Netsim.Host.cluster) ~noise ~salt
    (mw : Driver.Compile.module_work) ~on_finish () =
  let cost = cfg.Config.cost in
  let tr = cfg.Config.trace in
  (* The compile cache memoizes whole-function artifacts, which the
     sequential compiler produces too — one Lisp recompiling a module
     it compiled before skips the unchanged functions' phase 2+3 just
     like the parallel one.  Disabled at fine grain for symmetry with
     [Parrun], so a seq/par comparison is never half-cached. *)
  let cache =
    match cfg.Config.cache with
    | Some c when not cfg.Config.fine_grained -> Some c
    | _ -> None
  in
  let cache_instant ~ws ~name (fw : Driver.Compile.func_work) ~key ~extra =
    if Trace.enabled tr then
      Trace.instant tr ~track:ws.Netsim.Host.ws_id ~cat:"cache" ~name
        ~args:
          (("task", mw.Driver.Compile.mw_name)
          :: ("func", fw.Driver.Compile.fw_name)
          :: ("key", key) :: extra)
        ~at:(Netsim.Des.now sim) ()
  in
  let owner_of (fw : Driver.Compile.func_work) =
    Cache.owner ~modul:mw.Driver.Compile.mw_name
      ~section:fw.Driver.Compile.fw_section ~func:fw.Driver.Compile.fw_name
  in
  let t_claim = Netsim.Des.now sim in
  let ws = Netsim.Host.claim sim cluster in
  let lspan ~name ~t0 =
    if Trace.enabled tr then
      Trace.span tr ~track:ws.Netsim.Host.ws_id ~cat:"task" ~name
        ~args:[ ("task", mw.Driver.Compile.mw_name); ("attempt", "1") ]
        ~t0 ~t1:(Netsim.Des.now sim) ()
  in
  lspan ~name:"claim" ~t0:t_claim;
  let factor w = Config.cluster_slowdown cfg cluster w in
  (* The sequential compiler has no recovery protocol: it is only run
     on fault-free stations (fault plans are a Parrun concern). *)
  let compute ?tag seconds salt' =
    match
      Netsim.Host.compute sim ws ~factor ?tag
        ~seconds:(seconds *. noise (salt + salt'))
    with
    | Netsim.Fault.Completed -> ()
    | Netsim.Fault.Station_failed f ->
      failwith
        (Printf.sprintf "Seqrun: workstation %d failed at %.1fs"
           f.Netsim.Fault.failed_station f.Netsim.Fault.failed_at)
  in
  (* Lisp startup: core image download plus initialization. *)
  (if cfg.Config.core_download then begin
     let t0 = Netsim.Des.now sim in
     Netsim.Net.fetch sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether
       ~bytes:cost.Driver.Cost.lisp_core_bytes;
     lspan ~name:"transfer" ~t0
   end);
  set_resident ws cost.Driver.Cost.lisp_core_mb;
  compute ~tag:"lisp-init" cost.Driver.Cost.lisp_init_seconds 1;
  (* Read the source from the file server. *)
  let t_parse = Netsim.Des.now sim in
  Netsim.Net.fetch sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether
    ~bytes:(Driver.Cost.source_bytes cost mw.Driver.Compile.mw_loc);
  (* Phase 1 over the whole module. *)
  let ast_mb =
    cost.Driver.Cost.ast_mb_per_loc *. float_of_int mw.Driver.Compile.mw_loc
  in
  set_resident ws (cost.Driver.Cost.lisp_core_mb +. ast_mb);
  compute ~tag:"phase1" (Driver.Cost.phase1_seconds cost mw) 2;
  lspan ~name:"parse" ~t0:t_parse;
  (* Phases 2+3, function after function; the heap never shrinks. *)
  let t_p23 = Netsim.Des.now sim in
  let compiled_loc = ref 0 in
  List.iter
    (fun (sw : Driver.Compile.section_work) ->
      List.iter
        (fun (fw : Driver.Compile.func_work) ->
          (* The heap retains the function's data whether it was
             recompiled or its artifact fetched, so residency grows
             identically on both paths — only the compute is skipped. *)
          set_resident ws
            (Driver.Cost.sequential_mb cost mw ~compiled_loc:!compiled_loc
               ~current_loc:fw.Driver.Compile.fw_loc);
          let hit =
            match (cache, fw.Driver.Compile.fw_key) with
            | Some c, Some key -> (
              match Cache.find c ~owner:(owner_of fw) ~key with
              | Cache.Hit e ->
                counters.cc_hits <- counters.cc_hits + 1;
                cache_instant ~ws ~name:"cache-hit" fw ~key ~extra:[];
                Netsim.Net.fetch ~client:ws.Netsim.Host.ws_id
                  ~file:("art:" ^ key) sim cluster.Netsim.Host.fs
                  cluster.Netsim.Host.ether
                  ~bytes:(Cache.meta_bytes +. e.Cache.e_bytes);
                true
              | Cache.Miss { stale } ->
                counters.cc_misses <- counters.cc_misses + 1;
                if stale then
                  counters.cc_invalidated <- counters.cc_invalidated + 1;
                cache_instant ~ws ~name:"cache-miss" fw ~key
                  ~extra:[ ("invalidated", if stale then "1" else "0") ];
                false)
            | _ -> false
          in
          if not hit then
            compute ~tag:"phase23"
              (Driver.Cost.phase23_seconds cost fw)
              (3 + !compiled_loc);
          compiled_loc := !compiled_loc + fw.Driver.Compile.fw_loc)
        sw.Driver.Compile.sw_funcs)
    mw.Driver.Compile.mw_sections;
  lspan ~name:"phase23" ~t0:t_p23;
  (* Phase 4: assembly, linking, drivers; then write the outputs. *)
  set_resident ws
    (Driver.Cost.sequential_mb cost mw ~compiled_loc:!compiled_loc ~current_loc:0);
  compute ~tag:"phase4" (Driver.Cost.phase4_seconds cost mw) 99;
  let t_wb = Netsim.Des.now sim in
  Netsim.Net.store sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether
    ~bytes:(float_of_int (Driver.Compile.total_image_bytes mw));
  (* Durable publication: the sequential compiler's outputs all become
     durable here, so this is where newly computed artifacts enter the
     compile cache (already-durable keys are skipped and free). *)
  (match cache with
  | None -> ()
  | Some c ->
    let stored =
      List.fold_left
        (fun acc (fw : Driver.Compile.func_work) ->
          match fw.Driver.Compile.fw_key with
          | None -> acc
          | Some key ->
            let bytes = Cache.artifact_bytes fw in
            if Cache.populate c ~owner:(owner_of fw) ~key ~bytes then begin
              cache_instant ~ws ~name:"cache-store" fw ~key ~extra:[];
              acc +. bytes +. Cache.meta_bytes
            end
            else acc)
        0.0
        (Driver.Compile.all_funcs mw)
    in
    if stored > 0.0 then
      Netsim.Net.store sim cluster.Netsim.Host.fs cluster.Netsim.Host.ether
        ~bytes:stored);
  lspan ~name:"write-back" ~t0:t_wb;
  set_resident ws 0.0;
  Netsim.Host.release_station sim cluster ws;
  on_finish (Netsim.Des.now sim)

let run (cfg : Config.t) (mw : Driver.Compile.module_work) : Timings.run =
  let sim = Netsim.Des.create () in
  let cluster = Config.cluster cfg in
  let noise = Config.noise cfg in
  let finish = ref 0.0 in
  let counters = fresh_counters () in
  Netsim.Des.spawn sim
    (compile_process ~counters cfg sim cluster ~noise ~salt:0 mw
       ~on_finish:(fun t -> finish := t));
  ignore (Netsim.Des.run sim);
  {
    Timings.elapsed = !finish;
    cpu_per_station = Netsim.Host.cpu_times cluster;
    master_cpu = 0.0;
    section_cpu = 0.0;
    extra_parse_cpu = 0.0;
    stations_used = 1;
    dispatch_units = 1;
    retries = 0;
    stations_lost = 0;
    fallback_tasks = 0;
    wasted_cpu = 0.0;
    spec_dispatched = 0;
    spec_committed = 0;
    spec_rolled_back = 0;
    cache_hits = counters.cc_hits;
    cache_misses = counters.cc_misses;
    cache_invalidated = counters.cc_invalidated;
  }
