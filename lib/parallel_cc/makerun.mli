(** Parallel make versus the parallel compiler (paper, section 3.4):
    four build strategies for a system of independent modules sharing
    one cluster. *)

type strategy =
  | Sequential (** one workstation, modules in order *)
  | Parallel_make (** concurrent modules, sequential compiler each *)
  | Parallel_cc (** modules in order, each compiled in parallel *)
  | Combined (** concurrent modules, each compiled in parallel *)

val strategy_name : strategy -> string
(** Human-readable label, e.g. ["parallel make"]. *)

type result = {
  strategy : strategy;
  elapsed : float; (** simulated seconds for the whole system build *)
  stations_used : int;
}

val run :
  Config.t -> stations:int -> Driver.Compile.module_work list -> strategy -> result
(** Build the module list on one fresh [stations]-sized cluster under
    the given strategy. *)

val run_all :
  Config.t -> stations:int -> Driver.Compile.module_work list -> result list
(** All four strategies, in declaration order. *)
