(* Content-addressed compile cache: the store half of function-level
   memoization (ROADMAP item 1, the parasolc/ACL2 lesson that skipping
   redundant work beats adding CPUs).

   The store lives on the simulated file server and survives across
   simulated runs — that is the whole point: a cold run populates it,
   a warm re-run of the same module hits it, an edited module hits it
   everywhere except the edited function and its transitive dependents.
   The keys ([Analysis.Depan.cache_keys]) are content-addressed and
   closed over the dependence ancestry, so invalidation needs no
   bookkeeping here: a changed input produces a different key, which
   simply misses.

   What this module itself holds is pure bookkeeping — which keys are
   durable, how many payload bytes each artifact occupies, and which
   key each function name last published.  The simulated COSTS of
   consulting or populating the store (index fetches, artifact
   transfers, store writes) are charged by the runners through
   [Netsim.Net] at the simulated moment they happen; nothing in here
   touches the event schedule.

   Population discipline (exactly-once): only a durable publication may
   populate — the winning attempt's write-back, a speculative commit,
   or the master's sequential fallback.  Superseded stragglers and
   quarantined speculative artifacts never reach [populate], so a key
   is stored at most once; [populate] additionally refuses to re-add a
   key that is already durable (a fallback republishing a task after a
   partial failure), keeping the per-key store count at exactly one. *)

type entry = { e_bytes : float }

type lookup = Hit of entry | Miss of { stale : bool }

type t = {
  entries : (string, entry) Hashtbl.t; (* durable artifacts by key *)
  owners : (string, string) Hashtbl.t; (* function identity -> the key
                                          it last published (stale-miss
                                          attribution only) *)
  store_log : (string, int) Hashtbl.t; (* key -> times populated *)
}

(* Bytes of one content-index record (key, payload pointer, salt tag):
   what a hit fetches in addition to the artifact payload, and what a
   population writes in addition to the payload copy. *)
let meta_bytes = 160.0

let create () =
  {
    entries = Hashtbl.create 64;
    owners = Hashtbl.create 64;
    store_log = Hashtbl.create 64;
  }

let owner ~modul ~section ~func =
  String.concat "/" [ modul; section; func ]

let artifact_bytes (fw : Driver.Compile.func_work) =
  16.0 *. float_of_int fw.Driver.Compile.fw_wides

let find (t : t) ~owner ~key : lookup =
  match Hashtbl.find_opt t.entries key with
  | Some e -> Hit e
  | None ->
    let stale =
      match Hashtbl.find_opt t.owners owner with
      | Some previous -> previous <> key
      | None -> false
    in
    Miss { stale }

let populate (t : t) ~owner ~key ~bytes : bool =
  Hashtbl.replace t.owners owner key;
  if Hashtbl.mem t.entries key then false
  else begin
    Hashtbl.replace t.entries key { e_bytes = bytes };
    Hashtbl.replace t.store_log key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.store_log key));
    true
  end

let mem (t : t) key = Hashtbl.mem t.entries key
let size (t : t) = Hashtbl.length t.entries

let store_count (t : t) key =
  Option.value ~default:0 (Hashtbl.find_opt t.store_log key)

let entries (t : t) : (string * float) list =
  Hashtbl.fold (fun key e acc -> (key, e.e_bytes) :: acc) t.entries []
  |> List.sort compare
