(* Pluggable dispatch scheduling (cf. section 4.3 and ComPar).

   The paper's host distributes tasks first come, first served; section
   4.2.3 measures why that leaves speedup on the table: per-task
   overhead (core-image download, Lisp init, re-parse, write-back) is
   up to 70 % of elapsed time for tiny functions, and the longest
   function bounds the critical path.  This module turns the cost
   model's phase-2+3 estimate into a placement policy applied to a
   [Plan.t] before the section masters fork:

   - [Fcfs]      the paper's behaviour.  The plan is returned
                 physically unchanged, so the event schedule (and
                 timings) stay bit-identical.
   - [Lpt]       longest processing time first: each section's task
                 queue is stably sorted by descending cost estimate, so
                 the longest function starts first and stops dominating
                 the tail.
   - [Lpt_batch] LPT after tiny-function batching: tasks whose
                 estimated phase-2+3 cost falls below a threshold are
                 clustered into one dispatch unit per workstation
                 (first-fit decreasing into bins of the threshold's
                 capacity), amortizing the claim/transfer/write-back
                 overhead over several functions.

   Everything here is a pure plan-to-plan function: fault supervision,
   exactly-once write-back and tracing in [Parrun] see the scheduled
   plan and work unchanged. *)

type policy = Fcfs | Lpt | Lpt_batch

let all = [ Fcfs; Lpt; Lpt_batch ]

let policy_name = function
  | Fcfs -> "fcfs"
  | Lpt -> "lpt"
  | Lpt_batch -> "lpt+batch"

let policy_of_string = function
  | "fcfs" -> Some Fcfs
  | "lpt" -> Some Lpt
  | "lpt+batch" | "lpt-batch" -> Some Lpt_batch
  | _ -> None

(* The scheduler's cost signal: estimated phases-2+3 seconds of one
   task (summed in function order, so bit-stable across plans). *)
let task_cost (cost : Driver.Cost.model) (t : Plan.task) =
  Driver.Cost.task_phase23_seconds cost t.Plan.t_funcs

(* Stable sort by descending cost: equal-cost tasks (e.g. the S_n
   series' identical functions) keep their FCFS order, so LPT on a
   uniform plan is the identity permutation. *)
let order_lpt cost tasks =
  List.stable_sort
    (fun a b -> compare (task_cost cost b) (task_cost cost a))
    tasks

(* First-fit decreasing of the tiny tasks into bins of [threshold]
   estimated seconds, at most [max_bins] bins (one dispatch unit per
   pool workstation); once the bin budget is reached, remaining tasks
   spill into the least-loaded bin (LPT packing).  Tasks at or above
   the threshold pass through untouched. *)
let batch_tiny cost ~threshold ~max_bins (tasks : Plan.task list) :
    Plan.task list =
  let tiny, big =
    List.partition (fun t -> task_cost cost t < threshold) tasks
  in
  match tiny with
  | [] | [ _ ] -> tasks (* nothing to merge *)
  | _ ->
    let max_bins = max 1 max_bins in
    let sorted =
      List.stable_sort
        (fun a b -> compare (task_cost cost b) (task_cost cost a))
        tiny
    in
    (* bins: (load, tasks in reverse arrival order) *)
    let bins : (float * Plan.task list) array ref = ref [||] in
    let place t =
      let c = task_cost cost t in
      let n = Array.length !bins in
      let fits = ref (-1) in
      Array.iteri
        (fun i (load, _) ->
          if !fits < 0 && load +. c <= threshold then fits := i)
        !bins;
      match !fits with
      | i when i >= 0 ->
        let load, ts = !bins.(i) in
        !bins.(i) <- (load +. c, t :: ts)
      | _ when n < max_bins -> bins := Array.append !bins [| (c, [ t ]) |]
      | _ ->
        (* budget reached: least-loaded bin takes the spill *)
        let least = ref 0 in
        Array.iteri
          (fun i (load, _) -> if load < fst !bins.(!least) then least := i)
          !bins;
        let load, ts = !bins.(!least) in
        !bins.(!least) <- (load +. c, t :: ts)
    in
    List.iter place sorted;
    let merged =
      Array.to_list !bins
      |> List.map (fun (_, ts) ->
             match List.rev ts with
             | [] -> assert false
             | first :: _ as ts ->
               {
                 Plan.t_section = first.Plan.t_section;
                 t_funcs = List.concat_map (fun t -> t.Plan.t_funcs) ts;
               })
    in
    big @ merged

let schedule ~policy ~(cost : Driver.Cost.model) ~threshold ~stations
    (plan : Plan.t) : Plan.t =
  match policy with
  | Fcfs -> plan (* physically unchanged: timings stay bit-identical *)
  | Lpt ->
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) -> (s, order_lpt cost tasks))
          plan.Plan.tasks_per_section;
    }
  | Lpt_batch ->
    (* One dispatch unit per pool station at most ([stations] counts
       the master's own machine, which carries no function masters). *)
    let max_bins = max 1 (stations - 1) in
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) ->
            (s, order_lpt cost (batch_tiny cost ~threshold ~max_bins tasks)))
          plan.Plan.tasks_per_section;
    }
