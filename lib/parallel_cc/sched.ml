(* Pluggable dispatch scheduling (cf. section 4.3 and ComPar).

   The paper's host distributes tasks first come, first served; section
   4.2.3 measures why that leaves speedup on the table: per-task
   overhead (core-image download, Lisp init, re-parse, write-back) is
   up to 70 % of elapsed time for tiny functions, and the longest
   function bounds the critical path.  This module turns the cost
   model's phase-2+3 estimate into a placement policy applied to a
   [Plan.t] before the section masters fork:

   - [Fcfs]      the paper's behaviour.  The plan is returned
                 physically unchanged, so the event schedule (and
                 timings) stay bit-identical.
   - [Lpt]       longest processing time first: each section's task
                 queue is stably sorted by descending cost estimate, so
                 the longest function starts first and stops dominating
                 the tail.
   - [Lpt_batch] LPT after tiny-function batching: tasks whose
                 estimated phase-2+3 cost falls below a threshold are
                 clustered into one dispatch unit per workstation
                 (first-fit decreasing into bins of the threshold's
                 capacity), amortizing the claim/transfer/write-back
                 overhead over several functions.

   Everything here is a pure plan-to-plan function: fault supervision,
   exactly-once write-back and tracing in [Parrun] see the scheduled
   plan and work unchanged. *)

type policy = Fcfs | Lpt | Lpt_batch | Dag | Dag_lpt | Dag_spec

let all = [ Fcfs; Lpt; Lpt_batch ]
let dag_policies = [ Dag; Dag_lpt ]
let all_policies = all @ dag_policies @ [ Dag_spec ]

let dag_gated = function
  | Dag | Dag_lpt | Dag_spec -> true
  | Fcfs | Lpt | Lpt_batch -> false

let policy_name = function
  | Fcfs -> "fcfs"
  | Lpt -> "lpt"
  | Lpt_batch -> "lpt+batch"
  | Dag -> "dag"
  | Dag_lpt -> "dag+lpt"
  | Dag_spec -> "dag+spec"

let policy_of_string = function
  | "fcfs" -> Some Fcfs
  | "lpt" -> Some Lpt
  | "lpt+batch" | "lpt-batch" -> Some Lpt_batch
  | "dag" -> Some Dag
  | "dag+lpt" | "dag-lpt" -> Some Dag_lpt
  | "dag+spec" | "dag-spec" -> Some Dag_spec
  | _ -> None

(* The scheduler's cost signal: estimated phases-2+3 seconds of one
   task (summed in function order, so bit-stable across plans).  With
   [static] the measured work units are replaced by the abstract
   interpretation's statement-execution bound, priced by the same
   model — the signal available before any function has compiled. *)
let task_cost ?(static = false) (cost : Driver.Cost.model) (t : Plan.task) =
  if static then Driver.Cost.static_task_seconds cost t.Plan.t_funcs
  else Driver.Cost.task_phase23_seconds cost t.Plan.t_funcs

(* Descending cost with an explicit total tie-break: equal-cost tasks
   (e.g. the S_n series' identical functions) are ordered by their
   original queue position — which within a section is the source
   order of their head functions — so LPT on a uniform plan is the
   identity permutation and the result never depends on the sort
   algorithm's stability. *)
let order_lpt costf tasks =
  List.mapi (fun i t -> (i, t)) tasks
  |> List.sort (fun (ia, a) (ib, b) ->
         match compare (costf b) (costf a) with
         | 0 -> compare ia ib
         | c -> c)
  |> List.map snd

(* First-fit decreasing of the tiny tasks into bins of [threshold]
   estimated seconds, at most [max_bins] bins (one dispatch unit per
   pool workstation); once the bin budget is reached, remaining tasks
   spill into the least-loaded bin (LPT packing).  Tasks at or above
   the threshold pass through untouched. *)
let batch_tiny costf ~threshold ~max_bins (tasks : Plan.task list) :
    Plan.task list =
  let tiny, big = List.partition (fun t -> costf t < threshold) tasks in
  match tiny with
  | [] | [ _ ] -> tasks (* nothing to merge *)
  | _ ->
    let max_bins = max 1 max_bins in
    let sorted =
      List.stable_sort (fun a b -> compare (costf b) (costf a)) tiny
    in
    (* bins: (load, tasks in reverse arrival order) *)
    let bins : (float * Plan.task list) array ref = ref [||] in
    let place t =
      let c = costf t in
      let n = Array.length !bins in
      let fits = ref (-1) in
      Array.iteri
        (fun i (load, _) ->
          if !fits < 0 && load +. c <= threshold then fits := i)
        !bins;
      match !fits with
      | i when i >= 0 ->
        let load, ts = !bins.(i) in
        !bins.(i) <- (load +. c, t :: ts)
      | _ when n < max_bins -> bins := Array.append !bins [| (c, [ t ]) |]
      | _ ->
        (* budget reached: least-loaded bin takes the spill *)
        let least = ref 0 in
        Array.iteri
          (fun i (load, _) -> if load < fst !bins.(!least) then least := i)
          !bins;
        let load, ts = !bins.(!least) in
        !bins.(!least) <- (load +. c, t :: ts)
    in
    List.iter place sorted;
    let merged =
      Array.to_list !bins
      |> List.map (fun (_, ts) ->
             match List.rev ts with
             | [] -> assert false
             | first :: _ as ts ->
               {
                 Plan.t_section = first.Plan.t_section;
                 t_funcs = List.concat_map (fun t -> t.Plan.t_funcs) ts;
               })
    in
    big @ merged

(* --- DAG-aware dispatch --- *)

(* Task-level dependence adjacency for one section's task queue,
   projected from the plan's function-level edges: task B depends on
   task A when some function of A must compile before some function of
   B.  Edges between functions of the same task vanish (a function
   master compiles its functions sequentially, in order). *)
let task_deps ~(func_deps : (string * (string * string) list) list) ~section
    (tasks : Plan.task list) : int list array =
  let edges =
    match List.assoc_opt section func_deps with Some e -> e | None -> []
  in
  let arr = Array.of_list tasks in
  let owner = Hashtbl.create 32 in
  Array.iteri
    (fun i (t : Plan.task) ->
      List.iter
        (fun (fw : Driver.Compile.func_work) ->
          Hashtbl.replace owner fw.Driver.Compile.fw_name i)
        t.Plan.t_funcs)
    arr;
  let deps = Array.make (Array.length arr) [] in
  List.iter
    (fun (a, b) ->
      match (Hashtbl.find_opt owner a, Hashtbl.find_opt owner b) with
      | Some i, Some j when i <> j -> deps.(j) <- i :: deps.(j)
      | _ -> ())
    edges;
  Array.map (List.sort_uniq compare) deps

(* Order a task's functions so every function-level edge inside the
   task points forward (stable Kahn; ties keep the existing order).
   Needed after merging: batching can put a dependent pair into one
   dispatch unit, and the unit must compile them dependence-first. *)
let order_funcs_by_deps (edges : (string * string) list)
    (funcs : Driver.Compile.func_work list) : Driver.Compile.func_work list =
  let arr = Array.of_list funcs in
  let n = Array.length arr in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i fw -> Hashtbl.replace index fw.Driver.Compile.fw_name i)
    arr;
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
      match (Hashtbl.find_opt index a, Hashtbl.find_opt index b) with
      | Some i, Some j when i <> j ->
        succs.(i) <- j :: succs.(i);
        indeg.(j) <- indeg.(j) + 1
      | _ -> ())
    edges;
  let emitted = ref [] in
  let remaining = ref n in
  let taken = Array.make n false in
  while !remaining > 0 do
    (* smallest-index ready function first: a no-op permutation when
       the task is already in dependence order *)
    let next = ref (-1) in
    for i = n - 1 downto 0 do
      if (not taken.(i)) && indeg.(i) = 0 then next := i
    done;
    (* cycle-free by construction (the analysis emits a DAG), but stay
       total: break a residual tie by taking the first unemitted *)
    if !next < 0 then
      for i = n - 1 downto 0 do
        if not taken.(i) then next := i
      done;
    taken.(!next) <- true;
    List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(!next);
    emitted := arr.(!next) :: !emitted;
    decr remaining
  done;
  List.rev !emitted

(* Merge task-level dependence cycles into single dispatch units.  A
   grouped plan can pack coupled functions apart (f with h, g alone,
   edges f->g->h), creating a cycle between tasks even though the
   function-level graph is a DAG; merging the strongly connected tasks
   (functions concatenated in task order, then re-ordered by the
   function-level edges) restores an acyclic task graph. *)
let merge_task_cycles (edges : (string * string) list)
    (deps : int list array) (tasks : Plan.task list) : Plan.task list =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  (* successor lists from the dependence lists *)
  let succs = Array.make n [] in
  Array.iteri (fun j ds -> List.iter (fun i -> succs.(i) <- j :: succs.(i)) ds) deps;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  (* Tarjan, deterministic by index order. *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let scc = Array.make n (-1) in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  let rec visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun u ->
        if index.(u) < 0 then begin
          visit u;
          lowlink.(v) <- min lowlink.(v) lowlink.(u)
        end
        else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          on_stack.(u) <- false;
          scc.(u) <- !next_scc;
          if u <> v then pop ()
      in
      pop ();
      incr next_scc
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  (* Emit one task per SCC, at the position of its first member. *)
  let seen = Hashtbl.create 8 in
  List.concat
    (List.init n (fun i ->
         let s = scc.(i) in
         if Hashtbl.mem seen s then []
         else begin
           Hashtbl.replace seen s ();
           let members =
             List.filter (fun j -> scc.(j) = s) (List.init n (fun j -> j))
           in
           match members with
           | [ j ] -> [ arr.(j) ]
           | _ ->
             let funcs =
               List.concat_map (fun j -> arr.(j).Plan.t_funcs) members
             in
             [
               {
                 Plan.t_section = arr.(i).Plan.t_section;
                 t_funcs = order_funcs_by_deps edges funcs;
               };
             ]
         end))

(* Stable topological FCFS: repeatedly dispatch the smallest-index
   ready task.  On an edge-free section this is the identity
   permutation, so the plan — and with it the whole event schedule —
   matches FCFS bit for bit. *)
let topo_fcfs (deps : int list array) (tasks : Plan.task list) :
    Plan.task list =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iteri
    (fun j ds ->
      List.iter
        (fun i ->
          succs.(i) <- j :: succs.(i);
          indeg.(j) <- indeg.(j) + 1)
        ds)
    deps;
  let taken = Array.make n false in
  let out = ref [] in
  for _ = 1 to n do
    let next = ref (-1) in
    for i = n - 1 downto 0 do
      if (not taken.(i)) && indeg.(i) = 0 then next := i
    done;
    if !next < 0 then
      (* unreachable once cycles are merged; stay total anyway *)
      for i = n - 1 downto 0 do
        if not taken.(i) then next := i
      done;
    taken.(!next) <- true;
    List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(!next);
    out := arr.(!next) :: !out
  done;
  List.rev !out

(* Antichain levels of the task graph (longest-path depth).  Tasks in
   one level are pairwise independent, so LPT ordering and tiny-task
   batching may permute and merge freely inside a level without
   breaking dependence order. *)
let task_levels (deps : int list array) : int list list =
  let n = Array.length deps in
  let depth = Array.make n (-1) in
  let rec depth_of i =
    if depth.(i) >= 0 then depth.(i)
    else begin
      (* longest path over predecessors; deps form a DAG here *)
      let d =
        List.fold_left (fun acc j -> max acc (depth_of j + 1)) 0 deps.(i)
      in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (depth_of i)
  done;
  let max_depth = Array.fold_left max 0 depth in
  List.init (max_depth + 1) (fun d ->
      List.filter (fun i -> depth.(i) = d) (List.init n (fun i -> i)))
  |> List.filter (fun l -> l <> [])

(* The [Dag] policy: merge task cycles, then dispatch in stable
   topological FCFS order.  [Dag_lpt] additionally applies LPT and
   tiny-task batching within each antichain level, composing the
   overhead amortization of [Lpt_batch] with dependence safety.

   [level_func_deps] narrows the edge set used for levelling (and the
   topological order) without touching the cycle merge: [Dag_spec]
   passes the proven-only edges here, so speculative successors land in
   the same level as their predecessors and dispatch immediately, while
   cycles are still merged over the FULL edge set — scheduling past a
   speculative edge whose reverse is proven would otherwise deadlock
   the commit protocol (the attempt awaits a predecessor that gates on
   the attempt's own completion). *)
let schedule_dag ~lpt ~costf ~threshold ~max_bins ?level_func_deps
    ~(func_deps : (string * (string * string) list) list) ~section tasks =
  let edges =
    match List.assoc_opt section func_deps with Some e -> e | None -> []
  in
  let tasks =
    merge_task_cycles edges (task_deps ~func_deps ~section tasks) tasks
  in
  let level_func_deps =
    match level_func_deps with Some d -> d | None -> func_deps
  in
  let deps = task_deps ~func_deps:level_func_deps ~section tasks in
  if not lpt then topo_fcfs deps tasks
  else
    let arr = Array.of_list tasks in
    task_levels deps
    |> List.concat_map (fun level ->
           let level_tasks = List.map (fun i -> arr.(i)) level in
           order_lpt costf (batch_tiny costf ~threshold ~max_bins level_tasks)
           |> List.map (fun (t : Plan.task) ->
                  { t with Plan.t_funcs = order_funcs_by_deps edges t.Plan.t_funcs }))

let schedule ?(static = false) ~policy ~(cost : Driver.Cost.model) ~threshold
    ~stations (plan : Plan.t) : Plan.t =
  let costf = task_cost ~static cost in
  match policy with
  | Fcfs -> plan (* physically unchanged: timings stay bit-identical *)
  | Lpt ->
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) -> (s, order_lpt costf tasks))
          plan.Plan.tasks_per_section;
    }
  | Lpt_batch ->
    (* One dispatch unit per pool station at most ([stations] counts
       the master's own machine, which carries no function masters). *)
    let max_bins = max 1 (stations - 1) in
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) ->
            (s, order_lpt costf (batch_tiny costf ~threshold ~max_bins tasks)))
          plan.Plan.tasks_per_section;
    }
  | Dag ->
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) ->
            ( s,
              schedule_dag ~lpt:false ~costf ~threshold ~max_bins:1
                ~func_deps:plan.Plan.func_deps ~section:s tasks ))
          plan.Plan.tasks_per_section;
    }
  | Dag_lpt ->
    let max_bins = max 1 (stations - 1) in
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) ->
            ( s,
              schedule_dag ~lpt:true ~costf ~threshold ~max_bins
                ~func_deps:plan.Plan.func_deps ~section:s tasks ))
          plan.Plan.tasks_per_section;
    }
  | Dag_spec ->
    let max_bins = max 1 (stations - 1) in
    let proven = Plan.proven_deps plan in
    {
      plan with
      Plan.tasks_per_section =
        List.map
          (fun (s, tasks) ->
            ( s,
              schedule_dag ~lpt:true ~costf ~threshold ~max_bins
                ~level_func_deps:proven ~func_deps:plan.Plan.func_deps
                ~section:s tasks ))
          plan.Plan.tasks_per_section;
    }
