(** Partitioning and load balancing.

    The master's setup parse yields the module structure; tasks are the
    per-function phase-2/3 jobs.  Two placement policies: the paper's
    default (first come, first served, one function master per
    workstation) and the section-4.3 heuristic (estimate compile time
    from lines of code and structure, pack longest-first onto the
    available processors so several small functions share one function
    master). *)

type task = {
  t_section : string;
  t_funcs : Driver.Compile.func_work list; (** compiled together, in order *)
}

type t = {
  tasks_per_section : (string * task list) list;
  estimate_used : bool;
  func_deps : (string * (string * string) list) list;
      (** per section: the phase-1 analyzer's function-level dependence
          edges by name — compile the first before the second.  Both
          plan constructors copy them from
          {!Driver.Compile.module_work.mw_analysis}, so every plan
          carries its DAG; FCFS/LPT ignore it, the DAG-aware policies
          in {!Sched} order and gate dispatch by it. *)
  spec_edges : (string * (string * string) list) list;
      (** the {!Analysis.Depan.Speculative} subset of [func_deps]:
          edges whose only reasons are data over-approximations.  The
          [dag+spec] policy dispatches past them under the commit
          protocol; every other policy gates on them as usual. *)
  hot_edges : (string * (string * string) list) list;
      (** the subset of [spec_edges] whose endpoints the uncapped
          analysis proves really share state — speculating past one
          aborts whenever the attempt overlapped its predecessor *)
}

val proven_deps : t -> (string * (string * string) list) list
(** [func_deps] minus [spec_edges]: the edges [dag+spec] still gates
    on. *)

val estimate : Driver.Compile.func_work -> float
(** The paper's compile-time proxy: lines of code weighted by
    structure. *)

val one_per_station : Driver.Compile.module_work -> t
(** The paper's default: one task per function, dispatched FCFS. *)

val grouped : Driver.Compile.module_work -> processors:int -> t
(** Distribute ~[processors] function masters over the sections in
    proportion to estimated work (at least one per section), packing
    each section's functions longest-processing-time-first. *)

val task_count : t -> int
(** Total tasks across all sections. *)

val task_loc : task -> int
(** Lines of code a task compiles (summed over its functions). *)
