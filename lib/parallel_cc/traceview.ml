(* Trace-derived views of a parallel run.

   [recover] recomputes the [Timings.run] recovery bookkeeping (master/
   section/re-parse CPU, retries, fallbacks, wasted CPU, lost stations)
   purely from the recorded spans, and [assert_matches_run] checks the
   two agree — the spans carry their nominal seconds formatted to
   round-trip exactly ([Trace.farg]) and are summed in emission order,
   which is also the order the mutable counters accumulated in, so the
   float sums must match bit for bit.  Any divergence means an emit
   site and a counter site fell out of step.

   [decompose] then rebuilds the paper's section 4.2.3 overhead
   decomposition (Figures 8-10) from the trace alone, mirroring
   [Timings.compare_runs] formula for formula. *)

type recovered = {
  r_master_cpu : float; (* setup parse + scheduling *)
  r_section_cpu : float; (* directive interpretation + combining *)
  r_extra_parse_cpu : float; (* function masters re-parsing *)
  r_retries : int;
  r_timeouts : int;
  r_attempts_lost : int;
  r_fallback_tasks : int;
  r_wasted_cpu : float;
  r_stations_lost : int;
  r_spec_dispatched : int; (* "spec-dispatch" instants *)
  r_spec_committed : int; (* "spec-commit" spans *)
  r_spec_rolled_back : int; (* "spec-abort" spans *)
  r_cache_hits : int; (* "cache"/"cache-hit" instants *)
  r_cache_misses : int; (* "cache"/"cache-miss" instants *)
  r_cache_invalidated : int; (* the misses flagged invalidated=1 *)
  r_cache_stores : int; (* "cache"/"cache-store" instants; no run
                           counter — the store itself is the ledger
                           ([Cache.store_count]) *)
}

let span_tag (s : Trace.span) =
  match List.assoc_opt "tag" s.Trace.args with Some t -> t | None -> "cpu"

let span_ok (s : Trace.span) =
  match List.assoc_opt "outcome" s.Trace.args with
  | Some "ok" -> true
  | _ -> false

let nominal (s : Trace.span) =
  match Trace.arg_float "nominal" s.Trace.args with Some v -> v | None -> 0.0

let recover ?elapsed (tr : Trace.t) : recovered =
  let elapsed =
    match elapsed with Some e -> e | None -> Trace.end_time tr
  in
  let master = ref 0.0 and section = ref 0.0 and parse = ref 0.0 in
  let fallbacks = ref 0 in
  let commits = ref 0 and aborts = ref 0 in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.cat with
      | "cpu" when span_ok s -> (
        (* Only completed computes reach the counters: a crashed slice
           is charged to busy seconds but not to the overhead account. *)
        match span_tag s with
        | "setup-parse" | "sched" -> master := !master +. nominal s
        | "sect-interpret" | "combine" -> section := !section +. nominal s
        | "reparse" -> parse := !parse +. nominal s
        | _ -> ())
      | "task" when s.Trace.name = "fallback" -> incr fallbacks
      | "task" when s.Trace.name = "spec-commit" -> incr commits
      | "task" when s.Trace.name = "spec-abort" -> incr aborts
      | _ -> ())
    (Trace.spans tr);
  let retries = ref 0 and timeouts = ref 0 and lost_attempts = ref 0 in
  let dispatched = ref 0 in
  let wasted = ref 0.0 in
  let hits = ref 0 and misses = ref 0 and invalidated = ref 0 in
  let stores = ref 0 in
  let lost = Hashtbl.create 8 in
  List.iter
    (fun (i : Trace.instant) ->
      match (i.Trace.i_cat, i.Trace.i_name) with
      | "task", "retry" -> incr retries
      | "task", "timeout" -> incr timeouts
      | "task", "attempt-lost" -> incr lost_attempts
      | "task", "spec-dispatch" -> incr dispatched
      | "task", "wasted" -> (
        match Trace.arg_float "cpu" i.Trace.i_args with
        | Some v -> wasted := !wasted +. v
        | None -> ())
      | "cache", "cache-hit" -> incr hits
      | "cache", "cache-miss" ->
        incr misses;
        if List.assoc_opt "invalidated" i.Trace.i_args = Some "1" then
          incr invalidated
      | "cache", "cache-store" -> incr stores
      | "fault", ("crash" | "reclaim") ->
        if i.Trace.at <= elapsed then Hashtbl.replace lost i.Trace.i_track ()
      | _ -> ())
    (Trace.instants tr);
  {
    r_master_cpu = !master;
    r_section_cpu = !section;
    r_extra_parse_cpu = !parse;
    r_retries = !retries;
    r_timeouts = !timeouts;
    r_attempts_lost = !lost_attempts;
    r_fallback_tasks = !fallbacks;
    r_wasted_cpu = !wasted;
    r_stations_lost = Hashtbl.length lost;
    r_spec_dispatched = !dispatched;
    r_spec_committed = !commits;
    r_spec_rolled_back = !aborts;
    r_cache_hits = !hits;
    r_cache_misses = !misses;
    r_cache_invalidated = !invalidated;
    r_cache_stores = !stores;
  }

let assert_matches_run (tr : Trace.t) (run : Timings.run) : unit =
  let r = recover ~elapsed:run.Timings.elapsed tr in
  let fail what expected got =
    failwith
      (Printf.sprintf
         "Traceview: trace-derived %s = %s disagrees with run counter %s" what
         got expected)
  in
  let check_f what expected got =
    if got <> expected then
      fail what (Printf.sprintf "%.17g" expected) (Printf.sprintf "%.17g" got)
  in
  let check_i what expected got =
    if got <> expected then
      fail what (string_of_int expected) (string_of_int got)
  in
  check_f "master CPU" run.Timings.master_cpu r.r_master_cpu;
  check_f "section CPU" run.Timings.section_cpu r.r_section_cpu;
  check_f "extra-parse CPU" run.Timings.extra_parse_cpu r.r_extra_parse_cpu;
  check_f "wasted CPU" run.Timings.wasted_cpu r.r_wasted_cpu;
  check_i "retries" run.Timings.retries r.r_retries;
  check_i "fallback tasks" run.Timings.fallback_tasks r.r_fallback_tasks;
  check_i "stations lost" run.Timings.stations_lost r.r_stations_lost;
  check_i "speculative dispatches" run.Timings.spec_dispatched
    r.r_spec_dispatched;
  check_i "speculative commits" run.Timings.spec_committed r.r_spec_committed;
  check_i "speculative rollbacks" run.Timings.spec_rolled_back
    r.r_spec_rolled_back;
  check_i "cache hits" run.Timings.cache_hits r.r_cache_hits;
  check_i "cache misses" run.Timings.cache_misses r.r_cache_misses;
  check_i "cache invalidations" run.Timings.cache_invalidated
    r.r_cache_invalidated

type decomposition = {
  d_processors : int;
  d_elapsed : float; (* latest non-fault span end *)
  d_ideal : float;
  d_total_overhead : float;
  d_impl_overhead : float;
  d_sys_overhead : float;
  d_rel_total_overhead : float;
  d_rel_sys_overhead : float;
}

let decompose ~processors ~seq_elapsed (tr : Trace.t) : decomposition =
  let elapsed = Trace.end_time tr in
  let r = recover ~elapsed tr in
  let ideal = seq_elapsed /. float_of_int (max 1 processors) in
  let total = elapsed -. ideal in
  let impl = r.r_master_cpu +. r.r_section_cpu +. r.r_extra_parse_cpu in
  let sys = total -. impl in
  {
    d_processors = processors;
    d_elapsed = elapsed;
    d_ideal = ideal;
    d_total_overhead = total;
    d_impl_overhead = impl;
    d_sys_overhead = sys;
    d_rel_total_overhead = Stats.percent_of ~part:total ~total:elapsed;
    d_rel_sys_overhead = Stats.percent_of ~part:sys ~total:elapsed;
  }

let decomposition_table (d : decomposition) : Stats.Table.t =
  let table =
    Stats.Table.make ~title:"Trace-derived overhead decomposition"
      ~columns:[ "quantity"; "seconds" ]
  in
  List.fold_left
    (fun table (label, v) ->
      Stats.Table.add_row table [ label; Printf.sprintf "%.2f" v ])
    table
    [
      ("elapsed", d.d_elapsed);
      ("ideal", d.d_ideal);
      ("total overhead", d.d_total_overhead);
      ("implementation overhead", d.d_impl_overhead);
      ("system overhead", d.d_sys_overhead);
      ("total overhead %", d.d_rel_total_overhead);
      ("system overhead %", d.d_rel_sys_overhead);
    ]

(* --- dependence-order oracle --- *)

(* The DAG policies promise that a task claims its station only after
   every predecessor's output is durably written back.  This oracle
   re-derives that ordering from the span store alone: each task gets a
   logical clock that ticks at its first claim and at its earliest
   durable write-back (the winning attempt's — superseded stragglers
   write back later and are ignored, exactly as their outputs are), and
   each promised edge demands finish(before) <= start(after).  Because
   the only cross-task edges the schedule promises are the analyzer's,
   this is a two-entry vector clock per edge; anything richer would
   re-verify the DES itself. *)

type ordering_violation = {
  ov_section : string;
  ov_before : string;
  ov_after : string;
  ov_finish : float; (* earliest durable write-back of [ov_before] *)
  ov_start : float; (* first claim of [ov_after] *)
}

let violation_to_string (v : ordering_violation) =
  Printf.sprintf
    "section %s: task '%s' claimed at %.6f before its dependence '%s' \
     wrote back at %.6f"
    v.ov_section v.ov_after v.ov_start v.ov_before v.ov_finish

(* Span args identify tasks by head-function label only, so a label
   reused across sections cannot be attributed; skip such edges rather
   than report phantom races. *)
let label_of (t : Plan.task) =
  match t.Plan.t_funcs with
  | fw :: _ -> Some fw.Driver.Compile.fw_name
  | [] -> None

let unambiguous_labels (plan : Plan.t) =
  let owners = Hashtbl.create 32 in
  List.iter
    (fun (_, tasks) ->
      List.iter
        (fun t ->
          match label_of t with
          | Some l ->
            Hashtbl.replace owners l
              (1 + Option.value ~default:0 (Hashtbl.find_opt owners l))
          | None -> ())
        tasks)
    plan.Plan.tasks_per_section;
  fun l -> Hashtbl.find_opt owners l = Some 1

(* Per-label marks recovered from the span store: the first claim over
   all attempts, the first claim of each particular attempt, and the
   earliest durable publication (write-back, fallback, or speculative
   commit — a committed stage IS the durable artifact, its quarantined
   sibling never becomes readable) together with the attempt that won
   it. *)
type marks = {
  m_first_claim : (string, float) Hashtbl.t;
  m_claim_of_attempt : (string * string, float) Hashtbl.t;
  m_durable : (string, float * string) Hashtbl.t;
}

let collect_marks (tr : Trace.t) : marks =
  let m =
    {
      m_first_claim = Hashtbl.create 32;
      m_claim_of_attempt = Hashtbl.create 32;
      m_durable = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.cat = "task" then
        match List.assoc_opt "task" s.Trace.args with
        | None -> ()
        | Some label -> (
          let attempt =
            Option.value ~default:"" (List.assoc_opt "attempt" s.Trace.args)
          in
          match s.Trace.name with
          | "claim" ->
            let t0 = s.Trace.t0 in
            (match Hashtbl.find_opt m.m_first_claim label with
            | Some t when t <= t0 -> ()
            | _ -> Hashtbl.replace m.m_first_claim label t0);
            (match Hashtbl.find_opt m.m_claim_of_attempt (label, attempt) with
            | Some t when t <= t0 -> ()
            | _ -> Hashtbl.replace m.m_claim_of_attempt (label, attempt) t0)
          | "write-back" | "fallback" | "spec-commit" ->
            let t1 = s.Trace.t1 in
            (match Hashtbl.find_opt m.m_durable label with
            | Some (t, _) when t <= t1 -> ()
            | _ -> Hashtbl.replace m.m_durable label (t1, attempt))
          | _ -> ()))
    (Trace.spans tr);
  m

(* Check every [func_deps] edge of [plan] as finish(before) <=
   start(after), where the successor's start is chosen by [start_of]
   (first claim for gated edges; the winning attempt's claim for
   speculative ones). *)
let edge_violations (m : marks) ~(plan : Plan.t) ~func_deps ~start_of :
    ordering_violation list =
  let unambiguous = unambiguous_labels plan in
  let violations = ref [] in
  List.iter
    (fun (section, tasks) ->
      let deps = Sched.task_deps ~func_deps ~section tasks in
      let arr = Array.of_list tasks in
      Array.iteri
        (fun j ds ->
          List.iter
            (fun i ->
              match (label_of arr.(i), label_of arr.(j)) with
              | Some before, Some after
                when unambiguous before && unambiguous after -> (
                match
                  ( Hashtbl.find_opt m.m_durable before,
                    start_of m after )
                with
                | Some (finish, _), Some start when start < finish ->
                  violations :=
                    {
                      ov_section = section;
                      ov_before = before;
                      ov_after = after;
                      ov_finish = finish;
                      ov_start = start;
                    }
                    :: !violations
                | _ -> ())
              | _ -> ())
            ds)
        deps)
    plan.Plan.tasks_per_section;
  List.rev !violations

let first_claim (m : marks) label = Hashtbl.find_opt m.m_first_claim label

(* The claim of the attempt whose publication became durable.  A task
   finished by the master's sequential fallback has no claim span for
   the winning "attempt"; the fallback runs in the master's own Lisp
   over the already-parsed module, so such edges are vacuous and the
   lookup's [None] skips them. *)
let winning_claim (m : marks) label =
  match Hashtbl.find_opt m.m_durable label with
  | None -> None
  | Some (_, attempt) -> Hashtbl.find_opt m.m_claim_of_attempt (label, attempt)

let race_check (tr : Trace.t) ~(plan : Plan.t) : ordering_violation list =
  edge_violations (collect_marks tr) ~plan ~func_deps:plan.Plan.func_deps
    ~start_of:first_claim

(* The dag+spec promise is weaker than the gated one, and different per
   edge class:
   - proven edges are still gated: no attempt of the successor may
     claim before the predecessor's durable publication;
   - hot speculative edges (pairs the uncapped effect summaries show
     really conflict) may be overlapped by attempts that lose, but the
     WINNING attempt — the one whose output readers see — must have
     claimed after the predecessor published;
   - cold speculative edges (conservative analysis artifacts between
     pairs that share no state) are unconstrained. *)
let race_check_spec (tr : Trace.t) ~(plan : Plan.t) : ordering_violation list =
  let m = collect_marks tr in
  edge_violations m ~plan ~func_deps:(Plan.proven_deps plan)
    ~start_of:first_claim
  @ edge_violations m ~plan ~func_deps:plan.Plan.hot_edges
      ~start_of:winning_claim

let assert_race_free (tr : Trace.t) ~(plan : Plan.t) : unit =
  match race_check tr ~plan with
  | [] -> ()
  | vs ->
    failwith
      ("Traceview.race_check: dependence-order violation(s):\n"
      ^ String.concat "\n" (List.map violation_to_string vs))

let assert_race_free_spec (tr : Trace.t) ~(plan : Plan.t) : unit =
  match race_check_spec tr ~plan with
  | [] -> ()
  | vs ->
    failwith
      ("Traceview.race_check_spec: dependence-order violation(s):\n"
      ^ String.concat "\n" (List.map violation_to_string vs))
