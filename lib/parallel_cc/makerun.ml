(* Parallel make versus the parallel compiler (section 3.4).

   "While in parallel make several modules are compiled concurrently
   with a sequential compiler, our system compiles a single module with
   a parallel compiler. ... In practice, both approaches could coexist,
   with the parallel compiler speeding up the individual translations,
   and the parallel make system organizing the system generation
   effort."

   Four strategies over a system of several modules, sharing one
   cluster:

     sequential      one workstation compiles the modules in order
     parallel make   one sequential compilation per module, all
                     concurrent (Baalbergen's [1])
     parallel cc     modules in order, each compiled by the parallel
                     compiler (this paper)
     combined        concurrent modules, each compiled in parallel *)

type strategy = Sequential | Parallel_make | Parallel_cc | Combined

let strategy_name = function
  | Sequential -> "sequential"
  | Parallel_make -> "parallel make"
  | Parallel_cc -> "parallel compiler"
  | Combined -> "make + parallel compiler"

type result = {
  strategy : strategy;
  elapsed : float;
  stations_used : int;
}

(* Run [modules] under [strategy] on a cluster of [stations].  Modules
   are treated as independent (an empty makefile dependency list — the
   favourable case for parallel make). *)
let run (cfg : Config.t) ~stations (modules : Driver.Compile.module_work list)
    (strategy : strategy) : result =
  let cfg = { cfg with Config.stations } in
  let sim = Netsim.Des.create () in
  let cluster = Config.cluster cfg in
  let noise = Config.noise cfg in
  let finish = ref 0.0 in
  let done_count = ref 0 in
  let total = List.length modules in
  let on_finish t =
    incr done_count;
    if !done_count = total then finish := t
  in
  let stats = Parrun.fresh_stats () in
  (* One ["make"] span per module compilation on track 0, so a traced
     study shows the per-module schedule of each strategy. *)
  let traced (mw : Driver.Compile.module_work) body () =
    let tr = cfg.Config.trace in
    let t0 = Netsim.Des.now sim in
    body ();
    if Trace.enabled tr then
      Trace.span tr ~track:0 ~cat:"make"
        ~name:("module " ^ mw.Driver.Compile.mw_name)
        ~args:[ ("strategy", strategy_name strategy) ]
        ~t0 ~t1:(Netsim.Des.now sim) ()
  in
  let seq_body ~salt mw =
    traced mw (Seqrun.compile_process cfg sim cluster ~noise ~salt mw ~on_finish)
  in
  let par_body ~salt mw =
    traced mw
      (Parrun.master_process cfg sim cluster ~noise ~salt mw
         (Plan.one_per_station mw) ~stats ~on_finish)
  in
  (match strategy with
  | Sequential ->
    (* One process runs the modules back to back. *)
    Netsim.Des.spawn sim (fun () ->
        List.iteri (fun i mw -> seq_body ~salt:(1000 * i) mw ()) modules)
  | Parallel_make ->
    List.iteri
      (fun i mw -> Netsim.Des.spawn sim (seq_body ~salt:(1000 * i) mw))
      modules
  | Parallel_cc ->
    Netsim.Des.spawn sim (fun () ->
        List.iteri (fun i mw -> par_body ~salt:(1000 * i) mw ()) modules)
  | Combined ->
    List.iteri
      (fun i mw -> Netsim.Des.spawn sim (par_body ~salt:(1000 * i) mw))
      modules);
  ignore (Netsim.Des.run sim);
  {
    strategy;
    elapsed = !finish;
    stations_used = List.length (Netsim.Host.cpu_times cluster);
  }

let run_all (cfg : Config.t) ~stations modules : result list =
  List.map
    (run cfg ~stations modules)
    [ Sequential; Parallel_make; Parallel_cc; Combined ]
