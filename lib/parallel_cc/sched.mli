(** Pluggable dispatch scheduling for the parallel compiler.

    The paper distributes tasks first come, first served and measures
    the consequences (§4.2.3): per-task overhead — core-image download,
    Lisp init, re-parse, write-back — reaches 70 % of elapsed time for
    tiny functions, and the longest function bounds the critical path.
    This module turns {!Driver.Cost.task_phase23_seconds} into a
    placement policy applied to a {!Plan.t} before the section masters
    fork; supervision, exactly-once write-back and tracing in
    {!Parrun} operate on the scheduled plan unchanged. *)

type policy =
  | Fcfs  (** the paper's first-come-first-served dispatch.
              {!schedule} returns the plan physically unchanged, so the
              event schedule — and therefore every timing — is
              bit-identical to the unscheduled compiler. *)
  | Lpt  (** longest processing time first: each section's task queue
             is stably sorted by descending cost estimate, so the
             longest function starts first and stops dominating the
             makespan tail.  Equal-cost tasks keep their FCFS order. *)
  | Lpt_batch
      (** LPT after tiny-function batching: tasks whose estimated
          phase-2+3 cost falls below the threshold are clustered into
          one dispatch unit per pool workstation (first-fit decreasing,
          spilling into the least-loaded unit once every station has
          one), amortizing the per-task overhead the paper measured. *)
  | Dag
      (** dependence-aware FCFS: task-level cycles induced by packing
          are merged, then tasks dispatch in stable topological order
          (smallest original position among the ready tasks first), and
          {!Parrun} gates each function master on its predecessors'
          completion events.  On an edge-free section this is the
          identity transformation: same order, no gating waits, every
          timing bit-identical to [Fcfs]. *)
  | Dag_lpt
      (** [Dag] composed with [Lpt_batch]: within each antichain level
          of the task DAG — whose members are pairwise independent —
          tasks are LPT-ordered and tiny ones batched, so overhead
          amortization never violates dependence order. *)
  | Dag_spec
      (** [Dag_lpt] with optimistic dispatch past
          {!Analysis.Depan.Speculative} edges: levelling uses only the
          proven edges (task cycles are still merged over the full
          set), so speculative successors dispatch immediately and
          {!Parrun} runs them under a staged write-back/commit/abort
          protocol bounded by {!Config.t.spec_budget}.  Worst case —
          every speculation aborts — degrades to [Dag_lpt] behaviour. *)

val all : policy list
(** The classic dispatch policies, in ascending sophistication:
    [Fcfs; Lpt; Lpt_batch] — the set swept by
    {!Experiment.sched_sweep} (kept stable so its bench artifact
    schema is, too). *)

val dag_policies : policy list
(** [[Dag; Dag_lpt]] — swept by {!Experiment.dag_sweep} (kept stable so
    its bench artifact schema is, too; [Dag_spec] is swept separately
    by {!Experiment.spec_sweep}). *)

val all_policies : policy list
(** [all @ dag_policies @ [Dag_spec]], the full CLI choice set. *)

val dag_gated : policy -> bool
(** Does the policy require {!Parrun} to gate dispatch on task
    completion events? *)

val policy_name : policy -> string
(** ["fcfs"], ["lpt"], ["lpt+batch"], ["dag"], ["dag+lpt"],
    ["dag+spec"] — the names used by [warpcc simulate --sched] and the
    bench tables. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name} (also accepts ["lpt-batch"],
    ["dag-lpt"] and ["dag-spec"]). *)

val task_cost : ?static:bool -> Driver.Cost.model -> Plan.task -> float
(** Estimated phases-2+3 seconds of one task — the signal every policy
    ranks and batches by.  With [~static:true] the measured work units
    are replaced by {!Driver.Cost.static_task_seconds}, the abstract
    interpretation's statically derived bound (default [false]). *)

val task_deps :
  func_deps:(string * (string * string) list) list ->
  section:string ->
  Plan.task list ->
  int list array
(** Task-level dependence adjacency for one section's task queue,
    projected from the plan's function-level edges: entry [j] lists
    the task indices that must complete before task [j] may start.
    Edges between functions of the same task vanish.  {!Parrun} uses
    this on the scheduled plan to gate dispatch under the DAG
    policies. *)

val schedule :
  ?static:bool ->
  policy:policy ->
  cost:Driver.Cost.model ->
  threshold:float ->
  stations:int ->
  Plan.t ->
  Plan.t
(** Apply [policy] to a plan.  [static] selects the statically bounded
    cost signal (see {!task_cost}).  [threshold] is the batching
    cut-off in
    estimated seconds (tasks strictly below it are merged);
    [stations] is the cluster size including the master's own machine,
    capping batched dispatch units at one per pool station.  Function
    multisets per section are preserved by construction: scheduling
    permutes and merges tasks, it never drops or duplicates a
    function. *)
