(** Pluggable dispatch scheduling for the parallel compiler.

    The paper distributes tasks first come, first served and measures
    the consequences (§4.2.3): per-task overhead — core-image download,
    Lisp init, re-parse, write-back — reaches 70 % of elapsed time for
    tiny functions, and the longest function bounds the critical path.
    This module turns {!Driver.Cost.task_phase23_seconds} into a
    placement policy applied to a {!Plan.t} before the section masters
    fork; supervision, exactly-once write-back and tracing in
    {!Parrun} operate on the scheduled plan unchanged. *)

type policy =
  | Fcfs  (** the paper's first-come-first-served dispatch.
              {!schedule} returns the plan physically unchanged, so the
              event schedule — and therefore every timing — is
              bit-identical to the unscheduled compiler. *)
  | Lpt  (** longest processing time first: each section's task queue
             is stably sorted by descending cost estimate, so the
             longest function starts first and stops dominating the
             makespan tail.  Equal-cost tasks keep their FCFS order. *)
  | Lpt_batch
      (** LPT after tiny-function batching: tasks whose estimated
          phase-2+3 cost falls below the threshold are clustered into
          one dispatch unit per pool workstation (first-fit decreasing,
          spilling into the least-loaded unit once every station has
          one), amortizing the per-task overhead the paper measured. *)

val all : policy list
(** Every policy, in ascending sophistication: [Fcfs; Lpt; Lpt_batch]. *)

val policy_name : policy -> string
(** ["fcfs"], ["lpt"], ["lpt+batch"] — the names used by
    [warpcc simulate --sched] and the bench tables. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name} (also accepts ["lpt-batch"]). *)

val task_cost : Driver.Cost.model -> Plan.task -> float
(** Estimated phases-2+3 seconds of one task — the signal every policy
    ranks and batches by. *)

val schedule :
  policy:policy ->
  cost:Driver.Cost.model ->
  threshold:float ->
  stations:int ->
  Plan.t ->
  Plan.t
(** Apply [policy] to a plan.  [threshold] is the batching cut-off in
    estimated seconds (tasks strictly below it are merged);
    [stations] is the cluster size including the master's own machine,
    capping batched dispatch units at one per pool station.  Function
    multisets per section are preserved by construction: scheduling
    permutes and merges tasks, it never drops or duplicates a
    function. *)
