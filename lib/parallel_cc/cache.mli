(** Content-addressed compile cache on the simulated file server:
    function-level memoization of phase-2/3 artifacts.

    One {!t} persists across simulated runs (that is the point: a cold
    run populates it, a warm run hits it).  Keys come from
    {!Analysis.Depan.cache_keys} — salted with the optimization
    configuration and closed over the dependence ancestry — so
    invalidation is purely content-addressed: an edit changes the keys
    of exactly the edited function and its transitive [func_deps]
    dependents, and changed keys simply miss.

    This module is bookkeeping only.  The simulated costs of consulting
    and populating the store are charged by {!Parrun}/{!Seqrun} through
    {!Netsim.Net} at the simulated moment they occur; nothing here
    touches the event schedule, so a configuration whose
    {!Config.t.cache} is [None] is bit-identical to a build without the
    cache. *)

type entry = { e_bytes : float  (** artifact payload bytes on the server *) }

type lookup =
  | Hit of entry  (** the key is durable: skip phase 2/3, transfer the
                      artifact (free when the station's local byte
                      cache already holds it — {!Netsim.Net.cached}) *)
  | Miss of { stale : bool }
      (** no durable artifact under this key.  [stale] means the same
          function previously published a {e different} key — a
          dependency-aware invalidation (the function or an ancestor
          was edited), counted separately from cold misses *)

type t

val create : unit -> t
(** An empty store. *)

val meta_bytes : float
(** Bytes of one content-index record: fetched (on top of the payload)
    by a remote hit, written (on top of the payload copy) by each
    population. *)

val owner : modul:string -> section:string -> func:string -> string
(** The stable identity of a function across edits — what attributes a
    miss to invalidation rather than cold start. *)

val artifact_bytes : Driver.Compile.func_work -> float
(** Payload size of one function's phase-2/3 artifact: its code in wide
    instructions, 16 bytes each — the same accounting the runners use
    for output write-back. *)

val find : t -> owner:string -> key:string -> lookup
(** Consult the index.  Pure bookkeeping: callers charge the simulated
    lookup/transfer costs themselves. *)

val populate : t -> owner:string -> key:string -> bytes:float -> bool
(** Publish a durable artifact under [key], recording [owner] as its
    publisher.  Returns [false] (and stores nothing) when the key is
    already durable, so the per-key store count stays at one; callers
    must only invoke this from a durable publication site (winning
    write-back, speculative commit, sequential fallback) — never for a
    superseded straggler or a quarantined speculative artifact. *)

val mem : t -> string -> bool
val size : t -> int
(** Durable artifacts currently stored. *)

val store_count : t -> string -> int
(** How many times [populate] actually stored the key — the
    exactly-once discipline makes this 0 or 1; the chaos tests assert
    it. *)

val entries : t -> (string * float) list
(** (key, payload bytes) of every durable artifact, sorted by key —
    lets tests compare cold-run and warm-run artifact bytes for
    identity. *)
