(** The sequential compiler on the simulated host: one workstation, one
    Common-Lisp process doing all four phases in order; its heap holds
    the whole module, so memory pressure grows as compilation proceeds
    (the paper's explanation of the sequential compiler's own system
    overhead). *)

val set_resident : Netsim.Host.workstation -> float -> unit
(** Replace a station's resident set (helper shared with {!Parrun}). *)

type cache_counters = {
  mutable cc_hits : int;
  mutable cc_misses : int;
  mutable cc_invalidated : int;
}
(** Compile-cache tallies of one sequential compilation (see
    {!Config.t.cache}); all zero when no cache is configured. *)

val fresh_counters : unit -> cache_counters

val compile_process :
  ?counters:cache_counters ->
  Config.t ->
  Netsim.Des.t ->
  Netsim.Host.cluster ->
  noise:(int -> float) ->
  salt:int ->
  Driver.Compile.module_work ->
  on_finish:(float -> unit) ->
  unit ->
  unit
(** The spawnable body of one sequential compilation: claims a
    workstation, runs the four phases, releases it, and reports its
    completion time.  Reused by the parallel-make study, where several
    instances share a cluster ([salt] decorrelates their noise).
    [counters] receives the compile-cache tallies; omit it to discard
    them. *)

val run : Config.t -> Driver.Compile.module_work -> Timings.run
(** One sequential compilation on a fresh cluster. *)
