(** Drivers for every experiment in the paper's evaluation (section 4)
    plus the extension studies.

    Each driver compiles the test programs with the real compiler (work
    measurement, cached — it is deterministic), then plays sequential
    and parallel compilation on the simulated 1989 host, repeating each
    measurement under the noise model and averaging (the paper's
    protocol, section 4.2). *)

type point = { n_functions : int; comparison : Timings.comparison }

val s_program_work :
  ?level:int -> size:W2.Gen.size -> count:int -> unit -> Driver.Compile.module_work
(** The compiled-and-measured S_n program (cached). *)

val user_program_work : ?level:int -> unit -> Driver.Compile.module_work

val repetitions : int
(** Measurements averaged per point (3). *)

val measure :
  ?cfg:Config.t -> ?processors:int -> Driver.Compile.module_work ->
  Timings.comparison
(** One sequential-versus-parallel comparison.  Without [processors]:
    one function master per workstation.  With [processors]: the
    grouped plan of section 4.3 on a pool of that size (tasks queue
    FCFS when they outnumber stations). *)

val function_counts : int list
(** The paper's x axis: 1, 2, 4, 8. *)

val size_series : ?cfg:Config.t -> W2.Gen.size -> point list
(** Figures 3-5/12-13 (times) and the rows of 6-10/14-16. *)

val speedup_matrix : ?cfg:Config.t -> unit -> (W2.Gen.size * point list) list
(** Figures 6 and 7. *)

val user_program : ?cfg:Config.t -> unit -> point list
(** Figure 11: 2, 3, 5 and 9 processors on the section-4.3 program. *)

val saturation :
  ?cfg:Config.t -> ?size:W2.Gen.size -> unit -> (int * float) list
(** Section 4.2.2: parallel elapsed time versus pool size for S_8. *)

(** {1 Ablations (DESIGN.md section 5)} *)

type ablation = { ab_name : string; ab_cfg : Config.t }

val ablations : ablation list
(** baseline / no-memory-model / no-core-download / ideal-network. *)

(** {1 Section 5.1: procedure inlining} *)

type inlining_study = {
  baseline : Timings.comparison;
  inlined : Timings.comparison;
  baseline_functions : int;
  inlined_functions : int;
  calls_inlined : int;
}

val run_inlining_study : ?cfg:Config.t -> unit -> inlining_study
(** The many-small-functions program, compiled as written and after
    inlining + pruning. *)

(** {1 Section 3.4: parallel make coexistence} *)

val make_modules : ?level:int -> unit -> Driver.Compile.module_work list
(** A mixed 4-module "system" (independent makefile targets). *)

val run_make_study : ?cfg:Config.t -> ?stations:int -> unit -> Makerun.result list

(** {1 Section 5: finer-grain parallelism} *)

type grain_point = {
  gp_stations : int;
  coarse : float; (** elapsed, phases 2+3 fused (the paper's design) *)
  fine : float; (** elapsed, phases 2 and 3 as separate tasks *)
}

val run_grain_study :
  ?cfg:Config.t -> ?size:W2.Gen.size -> ?count:int -> unit -> grain_point list

(** {1 Fault tolerance} *)

type fault_point = {
  fp_stations : int; (** pool size available to function masters *)
  fp_rate : float; (** crash rate fed to {!Netsim.Fault.random} *)
  fp_elapsed : float;
  fp_inflation : float; (** elapsed / fault-free elapsed (1.0 = free) *)
  fp_retries : int;
  fp_fallbacks : int;
  fp_lost : int; (** stations crashed or reclaimed *)
  fp_wasted_cpu : float;
}

val fault_rates : float list
(** 0, 0.25, 0.5, 1.0. *)

val fault_sweep :
  ?cfg:Config.t -> ?size:W2.Gen.size -> ?count:int -> unit -> fault_point list
(** Elapsed-time inflation, recovery work and wasted CPU of the
    parallel compiler on 2/4/8/16-station pools as the fault rate
    grows; seeded, so the series is reproducible. *)

(** {1 Scheduling policies} *)

type sched_point = {
  sp_series : string; (** e.g. ["tiny8p4"] = S_8 of tiny functions, pool of 4 *)
  sp_policy : Sched.policy;
  sp_pool : int; (** stations available to function masters *)
  sp_units : int; (** dispatch units launched (after any batching) *)
  sp_elapsed : float;
  sp_speedup_vs_fcfs : float;
      (** FCFS elapsed / this elapsed on the same point (1.0 for FCFS) *)
}

val sched_series :
  ?level:int -> unit -> (string * Driver.Compile.module_work * int) list
(** The sweep's (name, module, pool) points: tiny/small/large/huge S_n
    programs and the user program on pools smaller than the task count,
    the regime where scheduling order and batching can matter. *)

val sched_sweep : ?cfg:Config.t -> unit -> sched_point list
(** Every {!sched_series} point under every {!Sched.policy}, with
    [cfg]'s batch threshold; seeded (noise seed 3), so reproducible. *)

(** {1 Dependence-aware dispatch} *)

type dag_point = {
  dg_series : string;
  dg_policy : Sched.policy; (** [Fcfs] baseline, [Dag] or [Dag_lpt] *)
  dg_pool : int;
  dg_units : int;
  dg_elapsed : float;
  dg_speedup_vs_fcfs : float; (** 1.0 for the baseline row *)
  dg_edges : int; (** dependence edges over the whole module *)
  dg_licensed : float; (** pairs-weighted licensed-parallelism fraction *)
}

val helper_program_work : ?level:int -> unit -> Driver.Compile.module_work
(** The section-5.1 helper program (cached) — the sweep's coupled
    module: its call graph becomes inline_of dependence edges. *)

val dag_series :
  ?level:int -> unit -> (string * Driver.Compile.module_work * int) list
(** (name, module, pool) points spanning licensed fractions: edge-free
    S_8 programs (DAG dispatch must be free), the helper program, and
    the user program. *)

val dag_sweep : ?cfg:Config.t -> unit -> dag_point list
(** Every {!dag_series} point under FCFS and both {!Sched.dag_policies};
    seeded (noise seed 3), so reproducible.  On the edge-free points the
    [dag] rows reproduce the FCFS elapsed times bit for bit. *)

(** {1 Section 6: scaling limit} *)

val run_scaling_study :
  ?cfg:Config.t -> ?size:W2.Gen.size -> ?max_stations:int -> unit -> point list
(** Speedup for 1..32 equal functions.  Without [max_stations], one
    processor per function (efficiency decays past 8-16); with it, the
    paper's environment ("the number of processors that can be used in
    parallel is limited to 10-15", §3.3), where speedup plateaus. *)

(** {1 Abstract-interpretation refinement} *)

type absint_point = {
  ap_series : string;
  ap_functions : int;
  ap_edges_off : int; (** dependence edges, base (flow-insensitive) analysis *)
  ap_edges_on : int; (** after the {!Analysis.Absint} refinement *)
  ap_pruned : int; (** edge reasons refuted (region + protocol) *)
  ap_licensed_off : float;
  ap_licensed_on : float; (** pairs-weighted licensed fractions *)
  ap_elapsed_off : float; (** dag+lpt elapsed on the unpruned DAG *)
  ap_elapsed_on : float; (** dag+lpt elapsed on the pruned DAG *)
  ap_speedup : float; (** off / on — what the pruning buys *)
  ap_race_violations : int;
      (** {!Traceview.race_check} violations on the pruned run's trace;
          soundness of the refutations means this is always 0 *)
}

val absint_series : unit -> (string * (unit -> W2.Ast.modul)) list
(** The sweep's programs: the partitioned lattice, the histogram and
    the dead-channel program (each with refutable couplings) plus the
    4-driver helper program as a no-op witness (all of its edges are
    inline/signature edges, which the refinement never touches). *)

val absint_sweep : ?cfg:Config.t -> ?pool:int -> unit -> absint_point list
(** Each program compiled with the refinement off and on, both DAGs
    played under dag+lpt on a [pool]-station cluster (default 4) with
    the race oracle armed; seeded (noise seed 3), so reproducible. *)

(** {1 Speculative dispatch (dag+spec)} *)

type spec_point = {
  zp_series : string;
  zp_functions : int;
  zp_spec_edges : int; (** speculative edges in the plan *)
  zp_hot_edges : int; (** genuinely conflicting speculative edges *)
  zp_elapsed_lpt : float; (** dag+lpt elapsed (every edge gated) *)
  zp_elapsed_spec : float; (** dag+spec elapsed *)
  zp_speedup : float; (** lpt / spec — what speculation buys *)
  zp_dispatched : int; (** speculative attempts launched *)
  zp_committed : int; (** staged outputs promoted to durable *)
  zp_rolled_back : int; (** staged outputs quarantined *)
  zp_race_violations : int;
      (** {!Traceview.race_check_spec} violations on the dag+spec
          trace; the commit protocol's soundness means this is 0 *)
}

val spec_series :
  unit -> (string * (unit -> W2.Ast.modul) * int option * bool * int) list
(** The sweep's (name, program, max_tracked, absint, pool) points: two
    "blinded" programs — dynamically independent but compiled with the
    refinement off and the tracking cap below their write fan-out, so
    every pair is pinned by [summary_limit] — plus the deliberately
    racy scatter program whose conflicts are real. *)

val spec_program_work :
  ?level:int ->
  ?max_tracked:int ->
  absint:bool ->
  name:string ->
  (unit -> W2.Ast.modul) ->
  Driver.Compile.module_work
(** Compile one sweep program (cached on every knob that shapes the
    analysis, [max_tracked] and [absint] included). *)

val spec_sweep : ?cfg:Config.t -> unit -> spec_point list
(** Each program played under dag+lpt and dag+spec on a pool matching
    its width, traced, with the speculation-aware race oracle armed;
    seeded (noise seed 3), so reproducible.  On the blinded points
    every speculation commits and dag+spec beats dag+lpt; on the racy
    point attempts roll back and the run still terminates with every
    task written back exactly once. *)

(** {1 Critical-path profile sweep} *)

type profile_point = {
  fp_series : string;
  fp_policy : Sched.policy;
  fp_pool : int;
  fp_elapsed : float;
  fp_buckets : (string * float) list;
      (** {!Critpath.bucket_names} order; folds to [fp_elapsed] exactly *)
  fp_dominant : string; (** largest bucket — the bottleneck regime *)
  fp_segments : int;
}

val profile_series :
  ?level:int -> unit -> (string * Driver.Compile.module_work) list
(** Three bottleneck regimes: the overhead-dominated tiny S_8, the
    dependence-coupled helper program, and the speculation-exercising
    blinded program. *)

val profile_pools : int list
val profile_policies : Sched.policy list

val profile_sweep : ?cfg:Config.t -> unit -> profile_point list
(** Every {!profile_series} program, one master per function, on each
    pool size under each policy, traced and profiled with
    {!Critpath.of_trace} ({!Critpath.assert_exact} armed); seeded
    (noise seed 3), so reproducible.  Shrinking the pool below the task
    count shifts the dominant bucket from compute/overhead toward
    pool-wait — the bottleneck-migration story the artifact records. *)

(** {1 Content-addressed compile cache} *)

type cache_point = {
  cp_series : string;
  cp_pool : int;
  cp_functions : int;
  cp_edited : string; (** the function the one-edit run touched *)
  cp_closure : int;
      (** edited function + transitive dependence dependents: the set
          whose keys change, hence the expected recompile count *)
  cp_cold_elapsed : float; (** empty store: every lookup misses *)
  cp_warm_elapsed : float; (** same module again: every lookup hits *)
  cp_edit_elapsed : float; (** after {!W2.Gen.touch_in} on [cp_edited] *)
  cp_warm_speedup : float; (** cold / warm — what memoization buys *)
  cp_cold_hits : int;
  cp_cold_misses : int;
  cp_warm_hits : int;
  cp_warm_misses : int;
  cp_edit_hits : int;
  cp_edit_misses : int; (** = [cp_closure] when the cache is correct *)
  cp_edit_invalidated : int; (** misses attributed to the edit; = misses *)
}

val edit_closure : Analysis.Depan.t -> string -> int
(** Size of the named function's invalidation closure (itself plus
    transitive dependents over the dependence edges). *)

val widest_edit : Driver.Compile.module_work -> string
(** The function whose edit invalidates the largest closure — the
    sweep's deterministic "programmer edit" target. *)

val cache_series :
  unit -> (string * (unit -> W2.Ast.modul) * int) list
(** (name, program, pool): an edge-free S_8 (closure 1), the
    inline-coupled helper program, and the user program. *)

val cache_program_work :
  ?level:int ->
  name:string ->
  ?edit:string ->
  (unit -> W2.Ast.modul) ->
  Driver.Compile.module_work
(** Compile one sweep program (cached), optionally after
    {!W2.Gen.touch_in} on [edit]. *)

val cache_sweep : ?cfg:Config.t -> unit -> cache_point list
(** Cold, warm and one-edit runs of each {!cache_series} point against
    a single {!Cache.t}, dag+lpt on the point's pool; seeded (noise
    seed 3), so reproducible.  Warm elapsed is strictly below cold on
    every point, and the edit run recompiles exactly the closure. *)

(** {1 Modular cross-module analysis (link-time composition)} *)

type link_compose_point = {
  lc_shape : string; (** {!W2.Gen.shape_name} *)
  lc_modules : int;
  lc_functions : int;
  lc_edges : int; (** composed dependence edges, intra + cross *)
  lc_cross_edges : int; (** edges whose endpoints live in different modules *)
  lc_levels : int; (** function antichains of the composed DAG *)
  lc_module_levels : int; (** antichains of the module condensation *)
  lc_licensed : float; (** project-wide licensed-parallelism fraction *)
  lc_missing : int; (** imported calls no module of the link defines *)
  lc_diags : (string * int) list; (** cross-module lints, counted by code *)
}

type link_sched_point = {
  lp_shape : string;
  lp_modules : int;
  lp_functions : int;
  lp_policy : Sched.policy; (** [Fcfs] baseline, [Dag_lpt] or [Dag_spec] *)
  lp_pool : int;
  lp_units : int;
  lp_elapsed : float;
  lp_speedup_vs_fcfs : float; (** 1.0 for the baseline row *)
  lp_cross_edges : int;
  lp_spec_edges : int; (** speculative edges in the composed plan *)
  lp_race_violations : int;
      (** race-oracle violations on the DAG-gated policies' traces;
          the composed DAG's superset property means this is 0 *)
}

val link_compose_sizes : int list
(** 100, 200, 400 modules — the summary-space composition axis. *)

val link_sched_sizes : int list
(** 24, 48 modules — the end-to-end project-scheduling axis. *)

val link_pool : int
(** Stations available to function masters in the scheduling sweep
    (8). *)

val link_summaries :
  W2.Ast.modul list -> Analysis.Modan.module_summary list
(** Separately summarize each module (accumulating provider summaries
    for the cross-module content keys) and round-trip every summary
    through the [.wsi] artifact, so composition sees exactly what a
    separate build persists. *)

val link_compose_sweep : unit -> link_compose_point list
(** Every {!W2.Gen.shape} at every {!link_compose_sizes} count,
    composed from summaries alone — no source text or AST crosses the
    module boundary after summarization.  Deterministic (seed 1). *)

val link_program_work :
  ?level:int ->
  shape:W2.Gen.shape ->
  modules:int ->
  unit ->
  Driver.Compile.module_work * Analysis.Modan.link
(** The inlined whole-program compile of a generated project (cached)
    plus its summary-composed link. *)

val link_plan :
  Driver.Compile.module_work -> Analysis.Modan.link -> Plan.t
(** One master per function with [Plan.func_deps] / [spec_edges]
    replaced by the composed {!Analysis.Modan.func_deps} /
    {!Analysis.Modan.spec_deps}; hot edges keep the merged analysis's
    proven-sharing pairs restricted to edges the composed DAG still
    speculates past (so hot ⊆ spec is preserved). *)

val link_sched_sweep : ?cfg:Config.t -> unit -> link_sched_point list
(** Every shape at every {!link_sched_sizes} count played under FCFS,
    dag+lpt and dag+spec on a {!link_pool}-station pool, traced, with
    the race oracle armed on the DAG-gated policies; seeded (noise
    seed 3), so reproducible. *)
