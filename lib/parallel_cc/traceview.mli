(** Trace-derived views of a parallel run: the recovery bookkeeping
    recomputed from spans, an equivalence check against the
    {!Timings.run} counters, and the paper's section 4.2.3 overhead
    decomposition rebuilt from the trace alone. *)

type recovered = {
  r_master_cpu : float; (** setup parse + scheduling *)
  r_section_cpu : float; (** directive interpretation + combining *)
  r_extra_parse_cpu : float; (** function masters re-parsing *)
  r_retries : int;
  r_timeouts : int;
  r_attempts_lost : int;
  r_fallback_tasks : int;
  r_wasted_cpu : float;
  r_stations_lost : int;
  r_spec_dispatched : int; (** "spec-dispatch" instants *)
  r_spec_committed : int; (** "spec-commit" spans *)
  r_spec_rolled_back : int; (** "spec-abort" spans *)
  r_cache_hits : int; (** "cache"/"cache-hit" instants *)
  r_cache_misses : int; (** "cache"/"cache-miss" instants *)
  r_cache_invalidated : int; (** the misses flagged [invalidated=1] *)
  r_cache_stores : int;
      (** "cache"/"cache-store" instants — checked against the store's
          own ledger by the tests, not against {!Timings.run} (which
          has no store counter) *)
}

val recover : ?elapsed:float -> Trace.t -> recovered
(** Recompute the bookkeeping from recorded spans and instants.
    Nominal CPU seconds are summed in emission order — the same order
    the mutable counters accumulated in — so with {!Trace.farg}'s exact
    round-trip the sums are bit-identical to the counters.  [elapsed]
    (default {!Trace.end_time}) bounds which fault events count as lost
    stations. *)

val assert_matches_run : Trace.t -> Timings.run -> unit
(** Check that {!recover} reproduces the run's counters exactly; any
    divergence (an emit site out of step with a counter site) raises
    [Failure].  Called by {!Parrun.run} whenever a run starts on an
    empty trace. *)

type decomposition = {
  d_processors : int;
  d_elapsed : float; (** latest non-fault span end *)
  d_ideal : float; (** sequential elapsed / processors *)
  d_total_overhead : float;
  d_impl_overhead : float;
  d_sys_overhead : float;
  d_rel_total_overhead : float; (** percent of elapsed *)
  d_rel_sys_overhead : float;
}

val decompose : processors:int -> seq_elapsed:float -> Trace.t -> decomposition
(** Rebuild the Figures 8-10 decomposition from the trace, mirroring
    {!Timings.compare_runs} formula for formula. *)

val decomposition_table : decomposition -> Stats.Table.t

(** {1 Dependence-order oracle} *)

type ordering_violation = {
  ov_section : string;
  ov_before : string; (** task that had to complete first *)
  ov_after : string; (** task that claimed too early *)
  ov_finish : float; (** earliest durable write-back of [ov_before] *)
  ov_start : float; (** first claim of [ov_after] *)
}

val violation_to_string : ordering_violation -> string

val race_check : Trace.t -> plan:Plan.t -> ordering_violation list
(** Check, from the span store alone, that every dependence edge of
    the (scheduled) plan was honoured by the recorded execution: for
    each task-level edge, the predecessor's earliest durable
    write-back — the winning attempt's; superseded stragglers are
    ignored exactly as their outputs are — must not be later than the
    successor's first station claim.  Task labels reused across
    sections cannot be attributed to spans and are skipped.  Only the
    DAG policies promise this ordering; {!Parrun.run} auto-runs the
    oracle on every fresh traced run under those policies. *)

val assert_race_free : Trace.t -> plan:Plan.t -> unit
(** @raise Failure listing every {!race_check} violation. *)

val race_check_spec : Trace.t -> plan:Plan.t -> ordering_violation list
(** The dag+spec variant of {!race_check}, enforcing the weaker
    per-edge-class promise: proven edges are checked like {!race_check}
    (no claim of the successor before the predecessor's durable
    publication, which now includes speculative commits); hot
    speculative edges — pairs whose uncapped effect summaries really
    conflict — require only that the {e winning} attempt (the one whose
    output became durable) claimed after the predecessor published,
    since losing overlapped attempts are rolled back unread; cold
    speculative edges (conservative analysis artifacts) are
    unconstrained.  Tasks finished by the sequential fallback have no
    winning claim span and their incoming speculative edges are vacuous
    (the fallback reruns in the master's own Lisp). *)

val assert_race_free_spec : Trace.t -> plan:Plan.t -> unit
(** @raise Failure listing every {!race_check_spec} violation. *)
