(* Optimization pipeline for phase 2.

   Runs local cleanup (constant folding, local value numbering, global
   constant propagation, dead-code elimination, CFG simplification) to a
   fixpoint, then the loop optimizations (invariant code motion,
   strength reduction and—at the highest level—full unrolling),
   followed by a final cleanup round.

   Levels:
     0  no optimization (flowgraph construction only)
     1  local cleanup
     2  + loop-invariant code motion and strength reduction  (default)
     3  + loop unrolling

   The [stats] record both describes what happened and feeds the
   compilation cost model: [work] counts instruction visits, which is
   the deterministic work-unit measure used to derive simulated
   compilation times. *)

type stats = {
  mutable rounds : int;
  mutable folded : int;
  mutable numbered : int;
  mutable propagated : int;
  mutable cse_global : int;
  mutable eliminated : int;
  mutable simplified : int;
  mutable if_converted : int;
  mutable hoisted : int;
  mutable reduced : int;
  mutable unrolled : int;
  mutable work : int; (* instruction visits across all passes *)
}

let empty_stats () =
  {
    rounds = 0;
    folded = 0;
    numbered = 0;
    propagated = 0;
    cse_global = 0;
    eliminated = 0;
    simplified = 0;
    if_converted = 0;
    hoisted = 0;
    reduced = 0;
    unrolled = 0;
    work = 0;
  }

let total_changes s =
  s.folded + s.numbered + s.propagated + s.cse_global + s.eliminated
  + s.simplified + s.if_converted + s.hoisted + s.reduced + s.unrolled

let max_rounds = 12

(* With [verify_each], re-verify the IR after every pass and attribute a
   violation to the pass that introduced it (LLVM's -verify-each). *)
let verify_after ~verify_each pass (f : Ir.func) =
  if verify_each then
    match Irverify.check_func ~pass f with
    | [] -> ()
    | violations -> raise (Irverify.Invalid violations)

let cleanup_round ?(verify_each = false) (f : Ir.func) (s : stats) : int =
  let charge pass =
    s.work <- s.work + Ir.instr_count f;
    verify_after ~verify_each pass f
  in
  let c1 = Constfold.run f in
  charge "constfold";
  let c2 = Lvn.run f in
  charge "lvn";
  let c3 = Gcp.run f in
  charge "gcp";
  let c3b = Gcse.run f in
  charge "gcse";
  let c4 = Dce.run f in
  charge "dce";
  let c5 = Cfg.simplify f in
  charge "cfg-simplify";
  s.folded <- s.folded + c1;
  s.numbered <- s.numbered + c2;
  s.propagated <- s.propagated + c3;
  s.cse_global <- s.cse_global + c3b;
  s.eliminated <- s.eliminated + c4;
  s.simplified <- s.simplified + c5;
  c1 + c2 + c3 + c3b + c4 + c5

let cleanup_fixpoint ?(verify_each = false) (f : Ir.func) (s : stats) =
  let rec loop budget =
    if budget > 0 then begin
      s.rounds <- s.rounds + 1;
      if cleanup_round ~verify_each f s > 0 then loop (budget - 1)
    end
  in
  loop max_rounds

let optimize ?(level = 2) ?(verify_each = false) (f : Ir.func) : stats =
  let s = empty_stats () in
  verify_after ~verify_each "lower" f;
  if level >= 1 then begin
    cleanup_fixpoint ~verify_each f s;
    if level >= 2 then begin
      s.if_converted <- s.if_converted + Ifconv.run f;
      s.work <- s.work + Ir.instr_count f;
      verify_after ~verify_each "ifconv" f;
      cleanup_fixpoint ~verify_each f s;
      s.hoisted <- s.hoisted + Licm.run f;
      s.work <- s.work + (2 * Ir.instr_count f);
      verify_after ~verify_each "licm" f;
      s.reduced <- s.reduced + Strength.run f;
      s.work <- s.work + Ir.instr_count f;
      verify_after ~verify_each "strength" f;
      cleanup_fixpoint ~verify_each f s;
      if level >= 3 then begin
        s.unrolled <- s.unrolled + Unroll.run f;
        s.work <- s.work + (2 * Ir.instr_count f);
        verify_after ~verify_each "unroll" f;
        cleanup_fixpoint ~verify_each f s
      end
    end
  end;
  s

let optimize_section ?(level = 2) ?(verify_each = false) (sec : Ir.section) :
    stats list =
  List.map (optimize ~level ~verify_each) sec.funcs

let stats_to_string s =
  Printf.sprintf
    "rounds=%d fold=%d lvn=%d gcp=%d gcse=%d dce=%d cfg=%d ifc=%d licm=%d sr=%d \
     unroll=%d work=%d"
    s.rounds s.folded s.numbered s.propagated s.cse_global s.eliminated
    s.simplified s.if_converted s.hoisted s.reduced s.unrolled s.work
