(** IR invariant verifier, in the spirit of LLVM's [-verify-each].

    The driver runs {!check_func} once at the end of phase 2
    unconditionally; [Opt.optimize ~verify_each:true] re-runs it after
    every pass so a violation names the pass that introduced it.

    Checked invariants: CFG well-formedness (non-empty block array,
    terminator targets in range), register sanity (indices within
    [reg_ty], operand/def classes agreeing with [reg_ty],
    [Sel]/[Icmp]/[Branch] condition typing), def-before-use via a
    forward may-be-uninitialized dataflow, declared arrays with
    constant indices in bounds, and — per section — call
    arity/argument/result agreement. *)

type violation = {
  vi_func : string;
  vi_block : int; (** [-1] for function-level findings *)
  vi_pass : string option; (** the pass after which the check failed *)
  vi_msg : string;
}

exception Invalid of violation list
(** Raised by [Opt.optimize ~verify_each:true] when a pass breaks an
    invariant. *)

val violation_to_string : violation -> string

val check_func : ?pass:string -> Ir.func -> violation list
(** All violations in one function ([[]] = valid). *)

val check_calls : Ir.section -> violation list
(** Cross-function call-signature agreement within a section. *)

val check_section : Ir.section -> violation list
(** {!check_func} on every function plus {!check_calls}. *)

val to_diags : violation list -> W2.Diag.t list
(** Structured findings for the diagnostics spine (severity
    {!W2.Diag.Error}, attributed by function name). *)
