(** Lowering from the W2 AST to the three-address IR — the front half
    of phase 2 (flowgraph construction).

    Input must have passed {!W2.Semcheck}.  Booleans become 0/1 integer
    registers; [and]/[or] lower to short-circuit control flow; a
    counted [for] loop becomes the canonical init / guarded header /
    body-with-increment shape that {!Counted.recognize} detects. *)

exception Unsupported of string
(** Raised on constructs the backend has no story for (these are also
    rejected by the checker; the exception guards against unchecked
    input). *)

val lower_function :
  func_rets:(string, Ir.ty option) Hashtbl.t ->
  ?globals:W2.Ast.decl list ->
  W2.Ast.func ->
  Ir.func
(** Lower one function given the return types of every function of its
    section (needed to type intra-section call results).  [globals] are
    the section's global declarations; the ones the body mentions are
    localized into per-activation storage (registers or arrays),
    default-initialized like locals. *)

val lower_section : W2.Ast.section -> Ir.section
val lower_module : W2.Ast.modul -> Ir.section list
