(* Lowering from the W2 AST to the three-address IR.

   This is the front half of phase 2: it builds the flowgraph.  The
   input must have passed [W2.Semcheck], so types are trusted here.

   Booleans are lowered to integer 0/1 registers; [and]/[or] are lowered
   to short-circuit control flow (their right operands may contain calls
   with channel effects). *)

exception Unsupported of string

type builder = {
  mutable finished : (int * Ir.block) list;
  mutable current : Ir.instr list; (* reversed *)
  mutable current_label : int;
  mutable next_label : int;
  mutable regs : Ir.ty list; (* reversed *)
  mutable nregs : int;
  vars : (string, Ir.reg) Hashtbl.t;
  var_tys : (string, W2.Ast.ty) Hashtbl.t;
  func_rets : (string, Ir.ty option) Hashtbl.t;
}

let ir_ty_of = function
  | W2.Ast.Tint -> Ir.Int
  | W2.Ast.Tfloat -> Ir.Float
  | W2.Ast.Tbool -> Ir.Bool
  | W2.Ast.Tarray _ -> raise (Unsupported "array value in scalar position")

let fresh_reg b ty =
  let r = b.nregs in
  b.nregs <- r + 1;
  b.regs <- ty :: b.regs;
  r

let emit b instr = b.current <- instr :: b.current

let new_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let terminate b term =
  b.finished <- (b.current_label, { Ir.instrs = List.rev b.current; term }) :: b.finished;
  b.current <- []

let begin_block b label = b.current_label <- label

(* --- expression types (input is checked, so this cannot fail) --- *)

let rec expr_ty b (expr : W2.Ast.expr) : Ir.ty =
  match expr.e with
  | W2.Ast.Int_lit _ -> Ir.Int
  | W2.Ast.Float_lit _ -> Ir.Float
  | W2.Ast.Bool_lit _ -> Ir.Bool
  | W2.Ast.Var name -> ir_ty_of (Hashtbl.find b.var_tys name)
  | W2.Ast.Index (name, _) -> (
    match Hashtbl.find b.var_tys name with
    | W2.Ast.Tarray (_, elt) -> ir_ty_of elt
    | _ -> raise (Unsupported "indexing a scalar"))
  | W2.Ast.Unary (W2.Ast.Neg, operand) -> expr_ty b operand
  | W2.Ast.Unary (W2.Ast.Not, _) -> Ir.Bool
  | W2.Ast.Binary ((Add | Sub | Mul | Div), left, _) -> expr_ty b left
  | W2.Ast.Binary (Mod, _, _) -> Ir.Int
  | W2.Ast.Binary ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Ir.Bool
  | W2.Ast.Call (name, _) -> (
    match List.assoc_opt name W2.Ast.builtins with
    | Some (_, ret) -> ir_ty_of ret
    | None -> (
      match Hashtbl.find_opt b.func_rets name with
      | Some (Some ty) -> ty
      | Some None -> raise (Unsupported ("void call to " ^ name ^ " in expression"))
      | None -> raise (Unsupported ("unknown function " ^ name))))

(* --- expressions --- *)

let builtin_unop = function
  | "sqrt" -> Some Ir.Fsqrt
  | "abs" -> Some Ir.Fabs
  | "iabs" -> Some Ir.Iabs
  | "float" -> Some Ir.Itof
  | "trunc" -> Some Ir.Ftoi
  | _ -> None

let builtin_binop = function
  | "min" -> Some Ir.Fmin
  | "max" -> Some Ir.Fmax
  | "imin" -> Some Ir.Imin
  | "imax" -> Some Ir.Imax
  | _ -> None

let rec lower_expr b (expr : W2.Ast.expr) : Ir.operand =
  match expr.e with
  | W2.Ast.Int_lit n -> Ir.Imm_int n
  | W2.Ast.Float_lit f -> Ir.Imm_float f
  | W2.Ast.Bool_lit v -> Ir.Imm_int (if v then 1 else 0)
  | W2.Ast.Var name -> Ir.Reg (Hashtbl.find b.vars name)
  | W2.Ast.Index (name, index) ->
    let idx = lower_expr b index in
    let dst = fresh_reg b (expr_ty b expr) in
    emit b (Ir.Load (dst, name, idx));
    Ir.Reg dst
  | W2.Ast.Unary (W2.Ast.Neg, operand) ->
    let x = lower_expr b operand in
    let ty = expr_ty b operand in
    let dst = fresh_reg b ty in
    emit b (Ir.Un ((if ty = Ir.Float then Ir.Fneg else Ir.Ineg), dst, x));
    Ir.Reg dst
  | W2.Ast.Unary (W2.Ast.Not, operand) ->
    let x = lower_expr b operand in
    let dst = fresh_reg b Ir.Bool in
    emit b (Ir.Un (Ir.Bnot, dst, x));
    Ir.Reg dst
  | W2.Ast.Binary (W2.Ast.And, left, right) ->
    lower_short_circuit b ~is_and:true left right
  | W2.Ast.Binary (W2.Ast.Or, left, right) ->
    lower_short_circuit b ~is_and:false left right
  | W2.Ast.Binary (op, left, right) ->
    let operand_ty = expr_ty b left in
    let x = lower_expr b left in
    let y = lower_expr b right in
    let is_float = operand_ty = Ir.Float in
    let binop =
      match op with
      | W2.Ast.Add -> if is_float then Ir.Fadd else Ir.Iadd
      | W2.Ast.Sub -> if is_float then Ir.Fsub else Ir.Isub
      | W2.Ast.Mul -> if is_float then Ir.Fmul else Ir.Imul
      | W2.Ast.Div -> if is_float then Ir.Fdiv else Ir.Idiv
      | W2.Ast.Mod -> Ir.Imod
      | W2.Ast.Eq -> if is_float then Ir.Fcmp Ir.Ceq else Ir.Icmp Ir.Ceq
      | W2.Ast.Ne -> if is_float then Ir.Fcmp Ir.Cne else Ir.Icmp Ir.Cne
      | W2.Ast.Lt -> if is_float then Ir.Fcmp Ir.Clt else Ir.Icmp Ir.Clt
      | W2.Ast.Le -> if is_float then Ir.Fcmp Ir.Cle else Ir.Icmp Ir.Cle
      | W2.Ast.Gt -> if is_float then Ir.Fcmp Ir.Cgt else Ir.Icmp Ir.Cgt
      | W2.Ast.Ge -> if is_float then Ir.Fcmp Ir.Cge else Ir.Icmp Ir.Cge
      | W2.Ast.And | W2.Ast.Or -> assert false
    in
    let result_ty = expr_ty b expr in
    let dst = fresh_reg b result_ty in
    emit b (Ir.Bin (binop, dst, x, y));
    Ir.Reg dst
  | W2.Ast.Call (name, args) -> (
    let arg_ops () = List.map (lower_expr b) args in
    match (builtin_unop name, builtin_binop name, arg_ops ()) with
    | Some unop, _, [ x ] ->
      let dst = fresh_reg b (expr_ty b expr) in
      emit b (Ir.Un (unop, dst, x));
      Ir.Reg dst
    | _, Some binop, [ x; y ] ->
      let dst = fresh_reg b (expr_ty b expr) in
      emit b (Ir.Bin (binop, dst, x, y));
      Ir.Reg dst
    | None, None, ops ->
      let dst = fresh_reg b (expr_ty b expr) in
      emit b (Ir.Call (Some dst, name, ops));
      Ir.Reg dst
    | _ -> raise (Unsupported ("bad builtin arity for " ^ name)))

and lower_short_circuit b ~is_and left right =
  let result = fresh_reg b Ir.Bool in
  let l_rhs = new_label b in
  let l_const = new_label b in
  let l_join = new_label b in
  let cond = lower_expr b left in
  (if is_and then terminate b (Ir.Branch (cond, l_rhs, l_const))
   else terminate b (Ir.Branch (cond, l_const, l_rhs)));
  begin_block b l_rhs;
  let rhs = lower_expr b right in
  emit b (Ir.Mov (result, rhs));
  terminate b (Ir.Jump l_join);
  begin_block b l_const;
  emit b (Ir.Mov (result, Ir.Imm_int (if is_and then 0 else 1)));
  terminate b (Ir.Jump l_join);
  begin_block b l_join;
  Ir.Reg result

(* --- statements --- *)

let lower_lvalue_store b lv value =
  match lv with
  | W2.Ast.Lvar name -> emit b (Ir.Mov (Hashtbl.find b.vars name, value))
  | W2.Ast.Lindex (name, index) ->
    let idx = lower_expr b index in
    emit b (Ir.Store (name, idx, value))

let rec lower_stmt b (stmt : W2.Ast.stmt) =
  match stmt.s with
  | W2.Ast.Assign (lv, value) ->
    (* The reference interpreter evaluates the right-hand side before
       the index of an indexed target; match that order (both sides can
       reach channel effects through calls). *)
    (match lv with
    | W2.Ast.Lvar name ->
      let v = lower_expr b value in
      emit b (Ir.Mov (Hashtbl.find b.vars name, v))
    | W2.Ast.Lindex (name, index) ->
      let v = lower_expr b value in
      let idx = lower_expr b index in
      emit b (Ir.Store (name, idx, v)))
  | W2.Ast.If (cond, then_branch, else_branch) ->
    let c = lower_expr b cond in
    let l_then = new_label b in
    let l_else = new_label b in
    let l_join = new_label b in
    terminate b (Ir.Branch (c, l_then, l_else));
    begin_block b l_then;
    List.iter (lower_stmt b) then_branch;
    terminate b (Ir.Jump l_join);
    begin_block b l_else;
    List.iter (lower_stmt b) else_branch;
    terminate b (Ir.Jump l_join);
    begin_block b l_join
  | W2.Ast.While (cond, body) ->
    let l_head = new_label b in
    let l_body = new_label b in
    let l_exit = new_label b in
    terminate b (Ir.Jump l_head);
    begin_block b l_head;
    let c = lower_expr b cond in
    terminate b (Ir.Branch (c, l_body, l_exit));
    begin_block b l_body;
    List.iter (lower_stmt b) body;
    terminate b (Ir.Jump l_head);
    begin_block b l_exit
  | W2.Ast.For (var, lo, hi, body) ->
    let v = Hashtbl.find b.vars var in
    let lo_op = lower_expr b lo in
    emit b (Ir.Mov (v, lo_op));
    let hi_op = lower_expr b hi in
    (* Bind the bound to a register so that it is evaluated once. *)
    let limit = fresh_reg b Ir.Int in
    emit b (Ir.Mov (limit, hi_op));
    let l_head = new_label b in
    let l_body = new_label b in
    let l_exit = new_label b in
    terminate b (Ir.Jump l_head);
    begin_block b l_head;
    let c = fresh_reg b Ir.Bool in
    emit b (Ir.Bin (Ir.Icmp Ir.Cle, c, Ir.Reg v, Ir.Reg limit));
    terminate b (Ir.Branch (Ir.Reg c, l_body, l_exit));
    begin_block b l_body;
    List.iter (lower_stmt b) body;
    emit b (Ir.Bin (Ir.Iadd, v, Ir.Reg v, Ir.Imm_int 1));
    terminate b (Ir.Jump l_head);
    begin_block b l_exit
  | W2.Ast.Send (chan, value) ->
    let v = lower_expr b value in
    emit b (Ir.Send (chan, v))
  | W2.Ast.Receive (chan, target) ->
    let ty =
      match target with
      | W2.Ast.Lvar name -> ir_ty_of (Hashtbl.find b.var_tys name)
      | W2.Ast.Lindex (name, _) -> (
        match Hashtbl.find b.var_tys name with
        | W2.Ast.Tarray (_, elt) -> ir_ty_of elt
        | _ -> raise (Unsupported "receive into scalar index"))
    in
    let tmp = fresh_reg b ty in
    emit b (Ir.Recv (chan, tmp));
    lower_lvalue_store b target (Ir.Reg tmp)
  | W2.Ast.Return None ->
    terminate b (Ir.Ret None);
    begin_block b (new_label b)
  | W2.Ast.Return (Some value) ->
    let v = lower_expr b value in
    terminate b (Ir.Ret (Some v));
    begin_block b (new_label b)
  | W2.Ast.Call_stmt (name, args) -> (
    let ops = List.map (lower_expr b) args in
    match (builtin_unop name, builtin_binop name, ops) with
    | Some unop, _, [ x ] ->
      let dst = fresh_reg b Ir.Float in
      emit b (Ir.Un (unop, dst, x))
    | _, Some binop, [ x; y ] ->
      let dst = fresh_reg b Ir.Float in
      emit b (Ir.Bin (binop, dst, x, y))
    | None, None, ops -> emit b (Ir.Call (None, name, ops))
    | _ -> raise (Unsupported ("bad builtin arity for " ^ name)))

(* --- functions and sections --- *)

let scalar_default = Ir.Imm_int 0

(* Variable names a function body mentions; used to decide which section
   globals it localizes. *)
let referenced_names (f : W2.Ast.func) =
  let names = Hashtbl.create 16 in
  let add n = Hashtbl.replace names n () in
  let rec expr (e : W2.Ast.expr) =
    match e.e with
    | W2.Ast.Var v -> add v
    | W2.Ast.Index (v, i) ->
      add v;
      expr i
    | W2.Ast.Unary (_, x) -> expr x
    | W2.Ast.Binary (_, a, b) ->
      expr a;
      expr b
    | W2.Ast.Call (_, args) -> List.iter expr args
    | W2.Ast.Int_lit _ | W2.Ast.Float_lit _ | W2.Ast.Bool_lit _ -> ()
  and lvalue = function
    | W2.Ast.Lvar v -> add v
    | W2.Ast.Lindex (v, i) ->
      add v;
      expr i
  and stmt (s : W2.Ast.stmt) =
    match s.s with
    | W2.Ast.Assign (lv, e) ->
      lvalue lv;
      expr e
    | W2.Ast.If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | W2.Ast.While (c, b) ->
      expr c;
      List.iter stmt b
    | W2.Ast.For (v, lo, hi, b) ->
      add v;
      expr lo;
      expr hi;
      List.iter stmt b
    | W2.Ast.Send (_, e) -> expr e
    | W2.Ast.Receive (_, lv) -> lvalue lv
    | W2.Ast.Return (Some e) -> expr e
    | W2.Ast.Return None -> ()
    | W2.Ast.Call_stmt (_, args) -> List.iter expr args
  in
  List.iter stmt f.body;
  names

let lower_function ~func_rets ?(globals = []) (f : W2.Ast.func) : Ir.func =
  let b =
    {
      finished = [];
      current = [];
      current_label = 0;
      next_label = 1;
      regs = [];
      nregs = 0;
      vars = Hashtbl.create 32;
      var_tys = Hashtbl.create 32;
      func_rets;
    }
  in
  (* Parameters first: calling convention binds them to r0, r1, ... *)
  let params =
    List.map
      (fun (p : W2.Ast.param) ->
        let ty = ir_ty_of p.pty in
        let r = fresh_reg b ty in
        Hashtbl.replace b.vars p.pname r;
        Hashtbl.replace b.var_tys p.pname p.pty;
        (p.pname, ty, r))
      f.params
  in
  let arrays = ref [] in
  let declare_storage (d : W2.Ast.decl) =
    Hashtbl.replace b.var_tys d.dname d.dty;
    match d.dty with
    | W2.Ast.Tarray (n, elt) -> arrays := (d.dname, n, ir_ty_of elt) :: !arrays
    | W2.Ast.Tint | W2.Ast.Tfloat | W2.Ast.Tbool ->
      let r = fresh_reg b (ir_ty_of d.dty) in
      Hashtbl.replace b.vars d.dname r;
      (* Locals start at zero, matching the reference interpreter. *)
      emit b
        (Ir.Mov
           (r, if d.dty = W2.Ast.Tfloat then Ir.Imm_float 0.0 else scalar_default))
  in
  (* Section globals the body mentions are localized: each activation
     gets its own default-initialized storage, matching the reference
     interpreter and the cell simulator's register-window model. *)
  (let used = referenced_names f in
   List.iter
     (fun (d : W2.Ast.decl) ->
       if Hashtbl.mem used d.dname then declare_storage d)
     globals);
  List.iter declare_storage f.locals;
  List.iter (lower_stmt b) f.body;
  terminate b (Ir.Ret None);
  let blocks = Array.make b.next_label { Ir.instrs = []; term = Ir.Ret None } in
  let seen = Array.make b.next_label false in
  List.iter
    (fun (label, block) ->
      assert (not seen.(label));
      seen.(label) <- true;
      blocks.(label) <- block)
    b.finished;
  assert (Array.for_all (fun x -> x) seen);
  {
    Ir.name = f.fname;
    params;
    arrays = List.rev !arrays;
    blocks;
    reg_ty = Array.of_list (List.rev b.regs);
    ret_ty = Option.map ir_ty_of f.ret;
  }

let lower_section (sec : W2.Ast.section) : Ir.section =
  let func_rets = Hashtbl.create 8 in
  List.iter
    (fun (f : W2.Ast.func) ->
      Hashtbl.replace func_rets f.fname (Option.map ir_ty_of f.ret))
    sec.funcs;
  {
    Ir.sec_name = sec.sname;
    cells = sec.cells;
    funcs = List.map (lower_function ~func_rets ~globals:sec.globals) sec.funcs;
  }

let lower_module (m : W2.Ast.modul) : Ir.section list =
  List.map lower_section m.sections
