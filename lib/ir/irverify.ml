(* IR invariant verifier, in the spirit of LLVM's -verify-each.

   Every optimization pass must preserve these invariants; the driver
   runs the verifier once at the end of phase 2 unconditionally, and
   [Opt.optimize ~verify_each:true] re-runs it after every pass so a
   violation names the pass that introduced it.

   Checked invariants:
   - the block array is non-empty and every terminator target is a
     valid block index (entry is block 0 by convention);
   - every register index (defs, operand uses, terminator uses) is
     within [reg_ty];
   - operand and destination types agree with [reg_ty] up to the
     int/bool register class (booleans are 0/1 integer registers after
     lowering, so Int and Bool share a class; Float is its own);
     [Sel]/[Icmp]/[Branch] conditions must be of the int class;
   - no register is used on a path along which it may be uninitialized
     (a forward may-be-uninitialized dataflow from the entry block;
     parameters start initialized);
   - loads and stores reference declared arrays, and constant indices
     are within the declared bounds;
   - within a section, calls resolve to a section function with
     matching arity, matching argument classes, and result/return
     agreement. *)

type violation = {
  vi_func : string;
  vi_block : int; (* -1 for function-level findings *)
  vi_pass : string option; (* the pass after which the check failed *)
  vi_msg : string;
}

exception Invalid of violation list

let violation_to_string v =
  Printf.sprintf "%s%s/B%d: %s"
    (match v.vi_pass with Some p -> "[after " ^ p ^ "] " | None -> "")
    v.vi_func v.vi_block v.vi_msg

(* Register classes: Int and Bool coincide (booleans are 0/1 integers
   after lowering and passes freely mix them); Float is separate. *)
type cls = KInt | KFloat

let cls_of = function Ir.Int | Ir.Bool -> KInt | Ir.Float -> KFloat
let cls_to_string = function KInt -> "int" | KFloat -> "float"

let binop_sig = function
  | Ir.Iadd | Ir.Isub | Ir.Imul | Ir.Idiv | Ir.Imod | Ir.Band | Ir.Bor
  | Ir.Imin | Ir.Imax ->
    (KInt, KInt)
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv | Ir.Fmin | Ir.Fmax -> (KFloat, KFloat)
  | Ir.Icmp _ -> (KInt, KInt)
  | Ir.Fcmp _ -> (KFloat, KInt)

let unop_sig = function
  | Ir.Ineg | Ir.Bnot | Ir.Iabs -> (KInt, KInt)
  | Ir.Fneg | Ir.Fsqrt | Ir.Fabs -> (KFloat, KFloat)
  | Ir.Itof -> (KInt, KFloat)
  | Ir.Ftoi -> (KFloat, KInt)

let check_func ?pass (f : Ir.func) : violation list =
  let violations = ref [] in
  let out bi msg =
    violations :=
      { vi_func = f.Ir.name; vi_block = bi; vi_pass = pass; vi_msg = msg }
      :: !violations
  in
  let nregs = Ir.num_regs f in
  let nblocks = Array.length f.Ir.blocks in
  if nblocks = 0 then begin
    out (-1) "function has no blocks (entry block 0 is required)";
    List.rev !violations
  end
  else begin
    let reg_ok r = r >= 0 && r < nregs in
    let check_reg bi ~ctx r =
      if not (reg_ok r) then
        out bi (Printf.sprintf "%s: register r%d outside reg_ty (%d registers)" ctx r nregs)
    in
    (* Class of an operand, when it is checkable: immediates fix their
       own class; an out-of-range register has none. *)
    let operand_cls = function
      | Ir.Reg r -> if reg_ok r then Some (cls_of f.Ir.reg_ty.(r)) else None
      | Ir.Imm_int _ -> Some KInt
      | Ir.Imm_float _ -> Some KFloat
    in
    let check_operand bi ~ctx ~want op =
      (match op with Ir.Reg r -> check_reg bi ~ctx r | _ -> ());
      match operand_cls op with
      | Some k when k <> want ->
        out bi
          (Printf.sprintf "%s: operand %s has class %s but %s was expected" ctx
             (Ir.operand_to_string op) (cls_to_string k) (cls_to_string want))
      | Some _ | None -> ()
    in
    let check_def bi ~ctx ~want d =
      check_reg bi ~ctx d;
      if reg_ok d && cls_of f.Ir.reg_ty.(d) <> want then
        out bi
          (Printf.sprintf "%s: destination r%d has class %s but the result is %s" ctx
             d (cls_to_string (cls_of f.Ir.reg_ty.(d))) (cls_to_string want))
    in
    let array_decl name = List.find_opt (fun (a, _, _) -> a = name) f.Ir.arrays in
    let check_instr bi instr =
      let ctx = Ir.instr_to_string instr in
      match instr with
      | Ir.Bin (op, d, a, b) ->
        let want_in, want_out = binop_sig op in
        check_operand bi ~ctx ~want:want_in a;
        check_operand bi ~ctx ~want:want_in b;
        check_def bi ~ctx ~want:want_out d
      | Ir.Un (op, d, a) ->
        let want_in, want_out = unop_sig op in
        check_operand bi ~ctx ~want:want_in a;
        check_def bi ~ctx ~want:want_out d
      | Ir.Mov (d, a) -> (
        check_reg bi ~ctx d;
        match (operand_cls a, reg_ok d) with
        | Some k, true ->
          if cls_of f.Ir.reg_ty.(d) <> k then
            out bi
              (Printf.sprintf "%s: moving a %s value into %s register r%d" ctx
                 (cls_to_string k)
                 (cls_to_string (cls_of f.Ir.reg_ty.(d)))
                 d)
        | _ -> ())
      | Ir.Sel (d, c, a, b) ->
        check_operand bi ~ctx:(ctx ^ " condition") ~want:KInt c;
        check_reg bi ~ctx d;
        if reg_ok d then begin
          let want = cls_of f.Ir.reg_ty.(d) in
          check_operand bi ~ctx ~want a;
          check_operand bi ~ctx ~want b
        end
      | Ir.Load (d, name, index) -> (
        check_reg bi ~ctx d;
        (match array_decl name with
        | None -> out bi (Printf.sprintf "%s: undeclared array '%s'" ctx name)
        | Some (_, size, elt) ->
          (if reg_ok d && cls_of f.Ir.reg_ty.(d) <> cls_of elt then
             out bi
               (Printf.sprintf "%s: loading %s element into %s register r%d" ctx
                  (cls_to_string (cls_of elt))
                  (cls_to_string (cls_of f.Ir.reg_ty.(d)))
                  d));
          match index with
          | Ir.Imm_int n when n < 0 || n >= size ->
            out bi
              (Printf.sprintf "%s: constant index %d out of bounds for '%s' (size %d)"
                 ctx n name size)
          | _ -> ());
        check_operand bi ~ctx:(ctx ^ " index") ~want:KInt index)
      | Ir.Store (name, index, v) -> (
        (match array_decl name with
        | None -> out bi (Printf.sprintf "%s: undeclared array '%s'" ctx name)
        | Some (_, size, elt) ->
          check_operand bi ~ctx ~want:(cls_of elt) v;
          (match index with
          | Ir.Imm_int n when n < 0 || n >= size ->
            out bi
              (Printf.sprintf "%s: constant index %d out of bounds for '%s' (size %d)"
                 ctx n name size)
          | _ -> ()));
        check_operand bi ~ctx:(ctx ^ " index") ~want:KInt index)
      | Ir.Call (d, _, args) ->
        (* Signature agreement is a section-level check; here only the
           register indices can be validated. *)
        (match d with Some d -> check_reg bi ~ctx d | None -> ());
        List.iter
          (function Ir.Reg r -> check_reg bi ~ctx r | _ -> ())
          args
      | Ir.Send (_, v) -> (
        match v with Ir.Reg r -> check_reg bi ~ctx r | _ -> ())
      | Ir.Recv (_, d) -> check_reg bi ~ctx d
    in
    Array.iteri
      (fun bi (b : Ir.block) ->
        List.iter (check_instr bi) b.Ir.instrs;
        let check_target l =
          if l < 0 || l >= nblocks then
            out bi (Printf.sprintf "terminator target L%d out of range (%d blocks)" l nblocks)
        in
        match b.Ir.term with
        | Ir.Jump l -> check_target l
        | Ir.Branch (c, t, e) ->
          check_operand bi ~ctx:"branch condition" ~want:KInt c;
          check_target t;
          check_target e
        | Ir.Ret None ->
          ()
        | Ir.Ret (Some v) -> (
          (match v with Ir.Reg r -> check_reg bi ~ctx:"ret" r | _ -> ());
          match (f.Ir.ret_ty, operand_cls v) with
          | Some ty, Some k when cls_of ty <> k ->
            out bi
              (Printf.sprintf "ret: returning a %s value from a %s function"
                 (cls_to_string k)
                 (cls_to_string (cls_of ty)))
          | _ -> ()))
      f.Ir.blocks;
    (* Def-before-use: forward may-be-uninitialized dataflow.  A
       register is maybe-uninitialized at a point if some path from the
       entry reaches the point without passing a definition.  Parameters
       are defined on entry.  Only reachable blocks participate, so dead
       code cannot produce findings.

       [Ifconv] rewrites a conditionally-assigned register as
       [d := sel c ? v : d].  The identity arm only propagates the old
       value — it is selected exactly when the original branch would not
       have assigned — so for this analysis it is neither a use of [d]
       nor an initializing definition. *)
    if !violations = [] && nregs > 0 then begin
      let uninit_uses instr =
        match instr with
        | Ir.Sel (d, c, a, b) ->
          let arms = List.filter (fun o -> o <> Ir.Reg d) [ a; b ] in
          List.filter_map
            (function Ir.Reg r -> Some r | _ -> None)
            (c :: arms)
        | _ -> Ir.uses_of instr
      in
      let uninit_def instr =
        match instr with
        | Ir.Sel (d, _, a, b) when a = Ir.Reg d || b = Ir.Reg d -> None
        | _ -> Ir.def_of instr
      in
      let reachable = Cfg.reachable f in
      let param_regs = List.map (fun (_, _, r) -> r) f.Ir.params in
      let top () =
        let m = Array.make nregs true in
        List.iter (fun r -> m.(r) <- false) param_regs;
        m
      in
      (* IN[entry] = all non-params maybe-uninit; IN[b] = union of OUT
         of reachable predecessors (start from the empty set). *)
      let in_sets =
        Array.init nblocks (fun i ->
            if i = Ir.entry_block then top () else Array.make nregs false)
      in
      let transfer src =
        let m = Array.copy src in
        fun (b : Ir.block) ->
          List.iter
            (fun instr ->
              match uninit_def instr with
              | Some d when reg_ok d -> m.(d) <- false
              | Some _ | None -> ())
            b.Ir.instrs;
          m
      in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun i (b : Ir.block) ->
            if reachable.(i) then begin
              let out_set = (transfer in_sets.(i)) b in
              List.iter
                (fun s ->
                  let dst = in_sets.(s) in
                  Array.iteri
                    (fun r v ->
                      if v && not dst.(r) then begin
                        dst.(r) <- true;
                        changed := true
                      end)
                    out_set)
                (Ir.successors b.Ir.term)
            end)
          f.Ir.blocks
      done;
      Array.iteri
        (fun bi (b : Ir.block) ->
          if reachable.(bi) then begin
            let m = Array.copy in_sets.(bi) in
            let use ctx r =
              if reg_ok r && m.(r) then
                out bi
                  (Printf.sprintf "%s: use of possibly-uninitialized register r%d"
                     ctx r)
            in
            List.iter
              (fun instr ->
                List.iter (use (Ir.instr_to_string instr)) (uninit_uses instr);
                match uninit_def instr with
                | Some d when reg_ok d -> m.(d) <- false
                | Some _ | None -> ())
              b.Ir.instrs;
            List.iter (use (Ir.term_to_string b.Ir.term)) (Ir.term_uses b.Ir.term)
          end)
        f.Ir.blocks
    end;
    List.rev !violations
  end

(* Call-signature agreement across the functions of one section.  After
   lowering, builtins have become [Un]/[Bin] instructions, so every
   remaining [Call] must resolve to a function of the same section. *)
let check_calls (sec : Ir.section) : violation list =
  let violations = ref [] in
  let sigs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace sigs f.Ir.name
        (List.map (fun (_, ty, _) -> ty) f.Ir.params, f.Ir.ret_ty))
    sec.Ir.funcs;
  List.iter
    (fun (f : Ir.func) ->
      let out bi msg =
        violations :=
          { vi_func = f.Ir.name; vi_block = bi; vi_pass = None; vi_msg = msg }
          :: !violations
      in
      let operand_cls = function
        | Ir.Reg r ->
          if r >= 0 && r < Ir.num_regs f then Some (cls_of f.Ir.reg_ty.(r)) else None
        | Ir.Imm_int _ -> Some KInt
        | Ir.Imm_float _ -> Some KFloat
      in
      Array.iteri
        (fun bi (b : Ir.block) ->
          List.iter
            (fun instr ->
              match instr with
              | Ir.Call (dst, callee, args) -> (
                let ctx = Ir.instr_to_string instr in
                match Hashtbl.find_opt sigs callee with
                | None ->
                  out bi
                    (Printf.sprintf "%s: call to '%s', which is not a function of section '%s'"
                       ctx callee sec.Ir.sec_name)
                | Some (param_tys, ret_ty) ->
                  if List.length param_tys <> List.length args then
                    out bi
                      (Printf.sprintf "%s: '%s' takes %d argument(s) but %d given" ctx
                         callee (List.length param_tys) (List.length args))
                  else
                    List.iteri
                      (fun i (pty, arg) ->
                        match operand_cls arg with
                        | Some k when k <> cls_of pty ->
                          out bi
                            (Printf.sprintf
                               "%s: argument %d of '%s' has class %s but %s was expected"
                               ctx (i + 1) callee (cls_to_string k)
                               (cls_to_string (cls_of pty)))
                        | Some _ | None -> ())
                      (List.combine param_tys args);
                  (match (dst, ret_ty) with
                  | Some _, None ->
                    out bi
                      (Printf.sprintf "%s: '%s' returns no value but the result is used"
                         ctx callee)
                  | Some d, Some rty
                    when d >= 0 && d < Ir.num_regs f
                         && cls_of f.Ir.reg_ty.(d) <> cls_of rty ->
                    out bi
                      (Printf.sprintf
                         "%s: result register r%d has class %s but '%s' returns %s" ctx
                         d
                         (cls_to_string (cls_of f.Ir.reg_ty.(d)))
                         callee
                         (cls_to_string (cls_of rty)))
                  | _ -> ()))
              | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    sec.Ir.funcs;
  List.rev !violations

(* All violations in a section: per-function invariants plus the
   cross-function call agreement. *)
let check_section (sec : Ir.section) : violation list =
  List.concat_map check_func sec.Ir.funcs @ check_calls sec

(* Structured findings for the diagnostics spine.  The IR carries no
   source locations, so findings are attributed by function name. *)
let to_diags violations : W2.Diag.t list =
  List.map
    (fun v ->
      W2.Diag.make ~func:v.vi_func ~code:"V100" ~severity:W2.Diag.Error
        ~loc:W2.Loc.dummy
        (violation_to_string v))
    violations
