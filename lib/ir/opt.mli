(** Optimization pipeline for phase 2.

    Runs local cleanup (constant folding, local value numbering, global
    constant propagation, dead-code elimination, CFG simplification) to
    a fixpoint, then the loop optimizations (invariant code motion,
    strength reduction and — at the highest level — full unrolling),
    followed by a final cleanup round.

    Levels:
    - [0] no optimization (flowgraph construction only)
    - [1] local cleanup
    - [2] + if-conversion, loop-invariant code motion and strength
      reduction (default)
    - [3] + loop unrolling *)

type stats = {
  mutable rounds : int;
  mutable folded : int;
  mutable numbered : int; (** LVN rewrites *)
  mutable propagated : int; (** global constant propagation *)
  mutable cse_global : int; (** cross-block CSE rewrites *)
  mutable eliminated : int; (** dead instructions *)
  mutable simplified : int; (** CFG edits *)
  mutable if_converted : int; (** branch diamonds turned into selects *)
  mutable hoisted : int;
  mutable reduced : int; (** strength reductions *)
  mutable unrolled : int;
  mutable work : int;
      (** instruction visits across all passes — the deterministic
          work-unit measure the compilation cost model converts to
          simulated seconds *)
}

val empty_stats : unit -> stats
val total_changes : stats -> int

val optimize : ?level:int -> ?verify_each:bool -> Ir.func -> stats
(** Optimize in place.  With [~verify_each:true], {!Irverify.check_func}
    runs on the input and again after every pass.
    @raise Irverify.Invalid naming the pass that broke an invariant. *)

val optimize_section :
  ?level:int -> ?verify_each:bool -> Ir.section -> stats list

val stats_to_string : stats -> string
