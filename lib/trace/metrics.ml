(* Metrics registry over the span store.

   Counters, gauges and histograms keyed by name, with a standard
   derivation [of_trace] that recomputes operational metrics (pool wait
   time, queue depth, per-phase CPU, paging-slowdown distribution,
   recovery counters) purely from the recorded spans — nothing is
   accumulated twice.  [Parallel_cc.Traceview] asserts that the derived
   recovery counters agree with the [Timings] bookkeeping. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_rev_values : float list; (* newest first, for quantiles *)
}

type t = {
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let incr t name ?(by = 1.0) () =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r +. by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity; h_rev_values = [] }
      in
      Hashtbl.replace t.histograms name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_min <- Float.min h.h_min v;
  h.h_max <- Float.max h.h_max v;
  h.h_rev_values <- v :: h.h_rev_values

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.0

let gauge t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.gauges name)

let histogram t name = Hashtbl.find_opt t.histograms name

let mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* Nearest-rank quantile over the observed values. *)
let quantile h q =
  match List.sort compare h.h_rev_values with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank =
      min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
    in
    List.nth sorted rank

let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let to_table t =
  let table =
    Stats.Table.make ~title:"Metrics registry"
      ~columns:[ "metric"; "kind"; "value"; "count"; "min"; "mean"; "max" ]
  in
  let table =
    List.fold_left
      (fun table name ->
        Stats.Table.add_row table
          [ name; "counter"; Printf.sprintf "%.3f" (counter t name); "-"; "-"; "-"; "-" ])
      table (names t.counters)
  in
  let table =
    List.fold_left
      (fun table name ->
        Stats.Table.add_row table
          [
            name; "gauge";
            (match gauge t name with Some v -> Printf.sprintf "%.3f" v | None -> "-");
            "-"; "-"; "-"; "-";
          ])
      table (names t.gauges)
  in
  List.fold_left
    (fun table name ->
      match histogram t name with
      | None -> table
      | Some h ->
        Stats.Table.add_row table
          [
            name; "histogram";
            Printf.sprintf "%.3f" h.h_sum;
            string_of_int h.h_count;
            Printf.sprintf "%.3f" (if h.h_count = 0 then 0.0 else h.h_min);
            Printf.sprintf "%.3f" (mean h);
            Printf.sprintf "%.3f" (if h.h_count = 0 then 0.0 else h.h_max);
          ])
    table (names t.histograms)

(* --- the standard derivation from a trace --- *)

(* Maximum overlap of a set of intervals: the deepest the pool-wait
   queue ever got. *)
let max_overlap intervals =
  let edges =
    List.concat_map (fun (t0, t1) -> [ (t0, 1); (t1, -1) ]) intervals
    (* ends sort before starts at equal times: touching intervals do
       not overlap *)
    |> List.sort (fun (a, da) (b, db) -> compare (a, da) (b, db))
  in
  let depth = ref 0 and best = ref 0 in
  List.iter
    (fun (_, d) ->
      depth := !depth + d;
      if !depth > !best then best := !depth)
    edges;
  !best

let of_trace (tr : Trace.t) : t =
  let m = create () in
  let elapsed = Trace.end_time tr in
  set_gauge m "elapsed_seconds" elapsed;
  set_gauge m "tracks" (float_of_int (List.length (Trace.used_tracks tr)));
  incr m "spans" ~by:(float_of_int (Trace.span_count tr)) ();
  incr m "instants" ~by:(float_of_int (Trace.instant_count tr)) ();
  let pool_waits = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      let dur = s.Trace.t1 -. s.Trace.t0 in
      match s.Trace.cat with
      | "cpu" ->
        let tag =
          match List.assoc_opt "tag" s.Trace.args with Some t -> t | None -> "cpu"
        in
        let nominal_done =
          match Trace.arg_float "done" s.Trace.args with Some v -> v | None -> 0.0
        in
        let actual =
          match Trace.arg_float "actual" s.Trace.args with Some v -> v | None -> dur
        in
        incr m (Printf.sprintf "cpu.%s_seconds" tag) ~by:actual ();
        incr m "cpu_seconds" ~by:actual ();
        if nominal_done > 0.0 then
          (* paging/GC/fault slowdown actually experienced *)
          observe m "cpu_slowdown_factor" (actual /. nominal_done)
      | "net" ->
        let bytes =
          match Trace.arg_float "bytes" s.Trace.args with Some v -> v | None -> 0.0
        in
        if s.Trace.track = Trace.ether_track then begin
          incr m "ether_transfers" ();
          incr m "ether_bytes" ~by:bytes ();
          observe m "ether_transfer_seconds" dur
        end
        else begin
          incr m "fs_requests" ();
          incr m "fs_bytes" ~by:bytes ();
          observe m "fs_request_seconds" dur
        end
      | "pool" ->
        pool_waits := (s.Trace.t0, s.Trace.t1) :: !pool_waits;
        observe m "pool_wait_seconds" dur
      | "task" -> (
        match s.Trace.name with
        | "fallback" -> incr m "fallback_tasks" ()
        | "spec-commit" -> incr m "spec_committed" ()
        | "spec-abort" -> incr m "spec_rolled_back" ()
        | _ -> ())
      | _ -> ())
    (Trace.spans tr);
  set_gauge m "max_pool_queue_depth"
    (float_of_int (max_overlap (List.rev !pool_waits)));
  let lost = Hashtbl.create 8 in
  List.iter
    (fun (i : Trace.instant) ->
      match (i.Trace.i_cat, i.Trace.i_name) with
      | "task", "retry" -> incr m "retries" ()
      | "task", "spec-dispatch" -> incr m "spec_dispatched" ()
      | "task", "timeout" -> incr m "timeouts" ()
      | "task", "attempt-lost" -> incr m "attempts_lost" ()
      | "task", "wasted" ->
        let cpu =
          match Trace.arg_float "cpu" i.Trace.i_args with Some v -> v | None -> 0.0
        in
        incr m "wasted_cpu_seconds" ~by:cpu ()
      | "fault", ("crash" | "reclaim") ->
        (* A station is lost only if the event fired inside the run. *)
        if i.Trace.at <= elapsed then Hashtbl.replace lost i.Trace.i_track ()
      | _ -> ())
    (Trace.instants tr);
  set_gauge m "stations_lost" (float_of_int (Hashtbl.length lost));
  m
