(* DES-timestamped span tracing for the simulated host.

   A [Trace.t] collects typed spans (an interval on one track) and
   instants (a point event) emitted by the netsim layers and the
   compilation runners.  Timestamps are simulated seconds from the DES
   clock, passed in by the caller — the trace never consults a clock of
   its own, so recording has zero effect on the event schedule.

   Tracks are small integers: workstation ids directly, plus two
   well-known tracks for the shared Ethernet segment and the file
   server.  The disabled sink [none] makes every emit a constant-time
   no-op, so untraced runs cost nothing; callers that would build
   expensive argument lists guard on [enabled].

   Exporters: Chrome trace-event JSON (loadable in chrome://tracing or
   Perfetto, one thread per track) and an ASCII Gantt timeline rendered
   through [Stats.Table]. *)

type span = {
  track : int;
  cat : string;
  name : string;
  t0 : float;
  t1 : float;
  args : (string * string) list;
}

type instant = {
  i_track : int;
  i_cat : string;
  i_name : string;
  at : float;
  i_args : (string * string) list;
}

type t = {
  enabled : bool;
  mutable rev_spans : span list; (* newest first *)
  mutable n_spans : int;
  mutable rev_instants : instant list;
  mutable n_instants : int;
}

let create () =
  { enabled = true; rev_spans = []; n_spans = 0; rev_instants = []; n_instants = 0 }

(* The shared no-op sink.  All emits drop their event immediately. *)
let none =
  { enabled = false; rev_spans = []; n_spans = 0; rev_instants = []; n_instants = 0 }

let enabled t = t.enabled

(* --- well-known tracks --- *)

let ether_track = 900
let fs_track = 901

let track_name = function
  | 900 -> "ethernet"
  | 901 -> "file server"
  | 0 -> "station 0 (master)"
  | n -> Printf.sprintf "station %d" n

(* --- emission --- *)

let span t ~track ~cat ~name ?(args = []) ~t0 ~t1 () =
  if t.enabled then begin
    if t1 < t0 then invalid_arg "Trace.span: negative duration";
    t.rev_spans <- { track; cat; name; t0; t1; args } :: t.rev_spans;
    t.n_spans <- t.n_spans + 1
  end

let instant t ~track ~cat ~name ?(args = []) ~at () =
  if t.enabled then begin
    t.rev_instants <- { i_track = track; i_cat = cat; i_name = name; at; i_args = args }
                      :: t.rev_instants;
    t.n_instants <- t.n_instants + 1
  end

(* Floats in args round-trip exactly through %.17g, so metric
   derivations can reproduce accumulated sums bit for bit. *)
let farg v = Printf.sprintf "%.17g" v

let arg_float s (args : (string * string) list) =
  Option.bind (List.assoc_opt s args) float_of_string_opt

(* --- reading back --- *)

let spans t = List.rev t.rev_spans
let instants t = List.rev t.rev_instants
let span_count t = t.n_spans
let instant_count t = t.n_instants

let clear t =
  t.rev_spans <- [];
  t.n_spans <- 0;
  t.rev_instants <- [];
  t.n_instants <- 0

(* Last span end: the traced run's elapsed time.  Fault-plan spans and
   instants may extend past the useful run, so only non-fault spans
   count. *)
let end_time t =
  List.fold_left
    (fun acc (s : span) -> if s.cat = "fault" then acc else Float.max acc s.t1)
    0.0 t.rev_spans

let used_tracks t =
  let add set track = if List.mem track set then set else track :: set in
  let set = List.fold_left (fun set (s : span) -> add set s.track) [] t.rev_spans in
  let set =
    List.fold_left (fun set (i : instant) -> add set i.i_track) set t.rev_instants
  in
  List.sort compare set

(* --- Chrome trace-event JSON --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      (* Emit numeric-looking values as JSON numbers so Perfetto can
         aggregate them. *)
      match float_of_string_opt v with
      | Some f when Float.is_finite f ->
        Buffer.add_string b (Printf.sprintf "\"%s\": %s" (json_escape k) v)
      | _ ->
        Buffer.add_string b
          (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string b "}"

(* Micro-seconds: the unit of the Chrome trace-event format. *)
let usec t = t *. 1e6

(* Step function of concurrent selected spans over time: +1/-1 edges,
   -1 applying before +1 at equal times (touching intervals do not
   overlap — the Metrics.max_overlap convention), equal-time runs
   collapsed to their final value. *)
let counter_points t select =
  let edges =
    List.concat_map
      (fun (s : span) ->
        if select s && s.t1 > s.t0 then [ (s.t0, 1); (s.t1, -1) ] else [])
      (spans t)
    |> List.sort (fun (a, da) (b, db) -> compare (a, da) (b, db))
  in
  let depth = ref 0 in
  let points = List.map (fun (at, d) -> depth := !depth + d; (at, !depth)) edges in
  let rec squash = function
    | (t1, _) :: ((t2, _) :: _ as rest) when t1 = t2 -> squash rest
    | p :: rest -> p :: squash rest
    | [] -> []
  in
  squash points

let to_chrome_json ?(flows = []) ?(counters = true) t =
  let b = Buffer.create 4096 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "    "
  in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  Buffer.add_string b
    "    {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 0, \"tid\": 0, \
     \"args\": {\"name\": \"warpcc simulated host\"}}";
  first := false;
  List.iteri
    (fun i track ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": %d, \
            \"args\": {\"name\": \"%s\"}}"
           track
           (json_escape (track_name track)));
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 0, \
            \"tid\": %d, \"args\": {\"sort_index\": %d}}"
           track i))
    (used_tracks t);
  List.iter
    (fun (s : span) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": "
           (json_escape s.name) (json_escape s.cat) (usec s.t0)
           (usec (s.t1 -. s.t0))
           s.track);
      add_args b s.args;
      Buffer.add_string b "}")
    (spans t);
  List.iter
    (fun (i : instant) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"i\", \"s\": \"t\", \"name\": \"%s\", \"cat\": \"%s\", \
            \"ts\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": "
           (json_escape i.i_name) (json_escape i.i_cat) (usec i.at) i.i_track);
      add_args b i.i_args;
      Buffer.add_string b "}")
    (instants t);
  (if counters then
     (* Perfetto counter tracks: cluster-wide time series derived from
        the spans, so bottleneck shifts are visible at a glance. *)
     List.iter
       (fun (name, key, select) ->
         List.iter
           (fun (at, v) ->
             sep ();
             Buffer.add_string b
               (Printf.sprintf
                  "{\"ph\": \"C\", \"name\": \"%s\", \"pid\": 0, \"ts\": %.3f, \
                   \"args\": {\"%s\": %d}}"
                  name (usec at) key v))
           (counter_points t select))
       [
         ( "stations-busy", "busy",
           fun (s : span) -> s.cat = "cpu" && s.track < ether_track );
         ("pool-queue-depth", "waiting", fun (s : span) -> s.cat = "pool");
         ( "fs-in-flight", "requests",
           fun (s : span) -> s.cat = "net" && s.track = fs_track );
       ]);
  List.iteri
    (fun i (from_track, from_t, to_track, to_t) ->
      (* A flow arrow: an "s"/"f" pair with a shared id, bound to the
         enclosing slices at each end. *)
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"s\", \"id\": %d, \"name\": \"critical-path\", \"cat\": \
            \"critpath\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f}"
           i from_track (usec from_t));
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\": \"f\", \"bp\": \"e\", \"id\": %d, \"name\": \
            \"critical-path\", \"cat\": \"critpath\", \"pid\": 0, \"tid\": %d, \
            \"ts\": %.3f}"
           i to_track (usec to_t)))
    flows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* --- ASCII Gantt timeline --- *)

(* One row per track; the timeline shows, per time bucket, the dominant
   activity: CPU work (#), network transfer (~), pool/claim waiting (.),
   crash/reclaim aftermath (x), idle (space). *)
let gantt ?(width = 64) t =
  if width <= 0 then invalid_arg "Trace.gantt: width must be positive";
  let finish = end_time t in
  let finish = if finish <= 0.0 then 1.0 else finish in
  let bucket_len = finish /. float_of_int width in
  let tracks = used_tracks t in
  let all_spans = spans t in
  let all_instants = instants t in
  let rows =
    List.map
      (fun track ->
        let line = Bytes.make width ' ' in
        let mark_range priority ch t0 t1 =
          let b0 = max 0 (int_of_float (t0 /. bucket_len)) in
          let b1 =
            min (width - 1) (int_of_float (Float.pred (t1 /. bucket_len)))
          in
          for i = b0 to min (width - 1) (max b0 b1) do
            let cur = Bytes.get line i in
            let rank = function
              | '#' -> 4
              | '~' -> 3
              | '.' -> 2
              | 'x' -> 1
              | _ -> 0
            in
            if priority > rank cur then Bytes.set line i ch
          done
        in
        let dead_from = ref infinity in
        List.iter
          (fun (i : instant) ->
            if
              i.i_track = track && i.i_cat = "fault"
              && (i.i_name = "crash" || i.i_name = "reclaim")
            then dead_from := Float.min !dead_from i.at)
          all_instants;
        if !dead_from < finish then mark_range 1 'x' !dead_from finish;
        let busy = ref 0.0 in
        List.iter
          (fun (s : span) ->
            if s.track = track then
              match s.cat with
              | "cpu" ->
                busy := !busy +. (s.t1 -. s.t0);
                mark_range 4 '#' s.t0 s.t1
              | "net" ->
                (* Net spans live on the named infrastructure tracks
                   (ethernet / file server); their busy column counts
                   transfer/disk seconds instead of CPU. *)
                busy := !busy +. (s.t1 -. s.t0);
                mark_range 3 '~' s.t0 s.t1
              | "pool" -> mark_range 2 '.' s.t0 s.t1
              | _ -> ())
          all_spans;
        (track, !busy, Bytes.to_string line))
      tracks
  in
  let table =
    Stats.Table.make
      ~title:
        (Printf.sprintf
           "Gantt timeline, 0 .. %.1fs ('#' cpu, '~' network, '.' pool wait, \
            'x' dead)"
           finish)
      ~columns:[ "track"; "busy s"; "timeline" ]
  in
  List.fold_left
    (fun table (track, busy, line) ->
      Stats.Table.add_row table
        [ track_name track; Printf.sprintf "%.1f" busy; line ])
    table rows
