(** DES-timestamped span tracing for the simulated host.

    A trace collects typed {!span}s (intervals on a per-workstation
    track) and {!instant}s (point events), timestamped with the
    simulated DES clock by the caller.  Recording never consults a
    clock or schedules an event, so it has zero effect on simulated
    timings; the disabled sink {!none} makes every emit a constant-time
    no-op so untraced runs cost nothing.

    Conventional categories, relied upon by the exporters and by
    [Parallel_cc.Traceview]:
    - ["cpu"]: CPU work from [Host.compute], args [tag] (phase label),
      [nominal] (requested seconds), [done] (nominal seconds actually
      consumed), [actual] (slowed seconds burned), [outcome]
      ([ok]/[crashed]).
    - ["net"]: Ethernet transfers and file-server disk operations, on
      the {!ether_track} and {!fs_track} tracks, args [bytes].
    - ["pool"]: workstation-pool waits (claim to grant).
    - ["task"]: task-lifecycle stages from the runners (claim,
      transfer, parse, phase2/phase3/phase23, write-back, fallback)
      plus [retry]/[timeout]/[attempt-lost]/[wasted] instants.
    - ["fault"]: the fault plan (crash/reclaim instants, slowdown and
      brownout windows).
    - ["make"]: per-module spans of the parallel-make study. *)

type span = {
  track : int;
  cat : string;
  name : string;
  t0 : float;
  t1 : float;
  args : (string * string) list;
}

type instant = {
  i_track : int;
  i_cat : string;
  i_name : string;
  at : float;
  i_args : (string * string) list;
}

type t

val create : unit -> t
(** A fresh, enabled trace. *)

val none : t
(** The shared no-op sink: {!enabled} is false and every emit returns
    immediately without allocating. *)

val enabled : t -> bool
(** Guard for call sites that would build expensive argument lists. *)

val ether_track : int
(** Track id of the shared Ethernet segment (900). *)

val fs_track : int
(** Track id of the file server (901). *)

val track_name : int -> string

val span :
  t ->
  track:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  t0:float ->
  t1:float ->
  unit ->
  unit
(** Record a completed interval.
    @raise Invalid_argument if [t1 < t0]. *)

val instant :
  t ->
  track:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  at:float ->
  unit ->
  unit

val farg : float -> string
(** Format a float argument so that it round-trips exactly
    ([%.17g]) — metric derivations can then reproduce accumulated sums
    bit for bit. *)

val arg_float : string -> (string * string) list -> float option
(** Look up and parse a float argument. *)

val spans : t -> span list
(** All spans in emission order. *)

val instants : t -> instant list
val span_count : t -> int
val instant_count : t -> int
val clear : t -> unit

val end_time : t -> float
(** Latest end of any non-fault span: the traced run's elapsed time
    (fault-plan windows may extend past the useful run). *)

val used_tracks : t -> int list

val counter_points : t -> (span -> bool) -> (float * int) list
(** Step function of concurrently open selected spans over time:
    one [(time, value)] point per change, [-1] edges applying before
    [+1] at equal times (touching intervals do not overlap). *)

val to_chrome_json :
  ?flows:(int * float * int * float) list -> ?counters:bool -> t -> string
(** The trace as Chrome trace-event JSON ([chrome://tracing] or
    Perfetto loadable): one thread per track, spans as ["X"] duration
    events, instants as ["i"] events, numeric-looking args as JSON
    numbers.  With [counters] (default [true]) three derived Perfetto
    counter tracks ride along: [stations-busy] (concurrent CPU spans on
    workstation tracks), [pool-queue-depth] (open claim-to-grant
    waits) and [fs-in-flight] (open file-server operations).  [flows]
    — [(from_track, from_t, to_track, to_t)] hops, e.g.
    [Parallel_cc.Critpath.path_flows] — render as ["s"]/["f"]
    flow-arrow pairs named [critical-path]. *)

val gantt : ?width:int -> t -> Stats.Table.t
(** ASCII Gantt timeline: one row per track — infrastructure tracks
    labelled by name ([ethernet], [file server]) — and [width] time
    buckets (default 64; [warpcc simulate --gantt-width] plumbs this);
    ['#'] CPU, ['~'] network, ['.'] pool wait, ['x'] dead station.
    The busy column counts CPU seconds on workstation tracks and
    transfer/disk seconds on the infrastructure tracks.
    @raise Invalid_argument when [width <= 0]. *)
