(** Metrics registry (counters / gauges / histograms) over the span
    store.

    {!of_trace} is the standard derivation: it recomputes operational
    metrics — pool wait time and queue depth, per-phase CPU,
    paging-slowdown distribution, network and file-server traffic, and
    the recovery counters (retries, timeouts, fallbacks, wasted CPU,
    stations lost) and the speculation counters ([spec_dispatched] /
    [spec_committed] / [spec_rolled_back], from the same spans
    [Parallel_cc.Traceview.recover] reads) — purely from recorded
    spans, so nothing is
    accumulated twice.  [Parallel_cc.Traceview.assert_matches_run]
    asserts the derived recovery counters agree with the [Timings]
    bookkeeping. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_rev_values : float list; (** newest first *)
}

type t

val create : unit -> t
val incr : t -> string -> ?by:float -> unit -> unit
val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit

val counter : t -> string -> float
(** 0 when the counter was never incremented. *)

val gauge : t -> string -> float option
val histogram : t -> string -> histogram option
val mean : histogram -> float

val quantile : histogram -> float -> float
(** Nearest-rank quantile, e.g. [quantile h 0.5] is the median. *)

val to_table : t -> Stats.Table.t
(** Every metric as one row, sorted by kind then name. *)

val max_overlap : (float * float) list -> int
(** Maximum overlap of a set of [(t0, t1)] intervals — how deep the
    pool-wait queue ever got.  Touching intervals do not overlap. *)

val of_trace : Trace.t -> t
(** The standard derivation from a trace (see module description). *)
