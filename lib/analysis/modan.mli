(** Modular cross-module dependence analysis ("modan").

    {!Depan} analyzes one module at a time and stops at the module
    boundary: calls to [import]ed functions stay in effect summaries as
    unresolved names, and nothing orders functions of different
    modules.  This module closes that gap the way a separate compiler
    does — with {e interface summaries} and a {e link-time composer}:

    - {!summarize} analyzes a single-section module against its import
      declarations only and distills the result into a compact
      {!module_summary}: per exported (and internal) function, the
      closed effect summary, the unresolved cross-module calls, the
      content hash, and the abstract-interpretation boundary
      abstractions (array regions, channel protocols, static cost).
      The summary round-trips through a versioned text artifact
      ({!to_artifact}/{!of_artifact}, schema ["warpcc-wsi/1"]), so a
      build system can persist one [.wsi] file per module and re-link
      without re-reading any source.
    - {!compose} loads only summaries and stitches the project-wide
      function-level dependence DAG: module condensation and link
      order, [import_of] edges at call boundaries, [xmodule_global] /
      [xmodule_channel] edges from a cross-module effect closure over
      {e module-qualified} globals, and blanket [summary_limit] pins
      for functions whose closure lost precision.  The composed edge
      set is a superset of what whole-program {!Depan} finds on the
      inlined project ({!inline_project}), so schedules derived from it
      stay conservative.
    - {!compose} also reports the cross-module lints W010 (import
      signature mismatch), W011 (cross-module write to a global
      another module localizes) and W012 (dead export).

    Soundness at the boundary is inherited from {!Absint}: an
    unresolved call havocs the caller's abstract state (all regions,
    top protocols), so per-module refinement can never be {e less}
    conservative than whole-program refinement — composition needs no
    re-refutation pass. *)

(** {1 Interface summaries} *)

type func_summary = {
  ws_name : string;
  ws_loc : W2.Loc.t;
  ws_params : W2.Ast.ty list;
  ws_ret : W2.Ast.ty option;
  ws_exported : bool;
  ws_index : int;  (** position in the section *)
  ws_scc : int;  (** local call-graph SCC id ({!Depan.func_info.fi_scc}) *)
  ws_direct : Depan.effects;  (** the function's own body *)
  ws_effects : Depan.effects;  (** closed over intra-module calls *)
  ws_xcalls : string list;
      (** closed calls with no definition in the module — the imports
          this function (transitively) depends on; sorted *)
  ws_hash : string;  (** {!Depan.func_info.fi_hash} — local content hash *)
  ws_key : string;
      (** cross-module content key: MD5 of [ws_hash] and, recursively,
          the keys of every resolved [ws_xcalls] target — the
          compile-cache ancestry of {!Depan.cache_keys} extended across
          module boundaries, so editing an exported provider function
          invalidates exactly its transitive importers *)
  ws_absint : Absint.summary option;
      (** boundary abstraction (array regions, channel protocols,
          static cost); [None] when absint was off *)
}

type module_summary = {
  ms_module : string;
  ms_file : string;  (** source path, [""] when unknown *)
  ms_section : string;
  ms_cells : int;
  ms_imports : (string * W2.Loc.t * W2.Ast.import_sig list) list;
      (** one entry per [import] declaration: provider module, its
          location, the restated signatures *)
  ms_exports : (string * W2.Loc.t) list;
  ms_globals : string list;  (** section globals, sorted *)
  ms_disjoint : string list;
      (** globals whose write/access pairs the region domain proved
          element-disjoint ({!Depan.section_info.si_disjoint}) — the
          W008 downgrade set, preserved so a link driver lints with
          the same precision as a whole-module run *)
  ms_funcs : func_summary array;  (** in section order *)
  ms_edges : (string * string * Depan.reason list) list;
      (** the module's own dependence edges
          ({!Depan.edges_by_name}) *)
}

val summarize :
  ?deps:module_summary list ->
  ?sound:bool ->
  ?max_tracked:int ->
  ?absint:bool ->
  ?absint_max_intervals:int ->
  ?file:string ->
  W2.Ast.modul ->
  module_summary
(** Separately analyze one semantically checked, single-section module.
    Only [deps] — provider summaries, for resolving [ws_key] ancestry —
    cross the module boundary; sources of other modules are never
    consulted.  The analysis knobs are {!Depan.analyze}'s.
    @raise Invalid_argument unless the module has exactly one
    section. *)

(** {1 The summary artifact} *)

exception Artifact_error of string

val artifact_schema : string
(** ["warpcc-wsi/1"]. *)

val to_artifact : module_summary -> string
(** Versioned, line-oriented text rendering — the [.wsi] file a
    separate build persists per module. *)

val of_artifact : string -> module_summary
(** Inverse of {!to_artifact}.
    @raise Artifact_error on malformed input. *)

(** {1 Link-time composition} *)

exception Link_error of string

type xreason =
  | Local of Depan.reason
      (** an intra-module reason, carried over from the per-module
          analysis *)
  | Import_of
      (** the target directly calls the source across a module
          boundary and must agree with its signature *)
  | Xmodule_global of string
      (** both functions' cross-module closures touch the named
          qualified global (["module.global"]) and at least one writes
          it *)
  | Xmodule_channel of W2.Ast.channel
      (** both closures may operate on the same systolic channel *)
  | Xsummary_limit
      (** blanket pin: one endpoint's closure lost precision (a capped
          local summary, or a call no module of the link resolves) *)

val xreason_to_string : xreason -> string
(** ["import_of"], ["xmodule_global:m.g"], ["xmodule_channel:X"],
    ["summary_limit"], or the {!Depan.reason_to_string} spelling for
    {!Local} reasons. *)

type xedge = {
  x_from : string;  (** function name: compile this first *)
  x_from_module : string;
  x_to : string;
  x_to_module : string;
  x_reasons : xreason list;  (** deduplicated, in display order *)
}

val xedge_confidence : xedge -> Depan.confidence
(** {!Depan.Proven} iff some reason is structural ({!Import_of} or a
    proven {!Local} reason); data over-approximations are
    speculative. *)

type xfunc = {
  xf_name : string;
  xf_module : string;
  xf_rank : int;  (** canonical global rank; edges point low → high *)
  xf_exported : bool;
  xf_limited : bool;  (** the closure carries a {!Xsummary_limit} pin *)
}

type link = {
  lk_modules : module_summary list;  (** as given *)
  lk_order : string list;
      (** module names in condensation topological order: providers
          first, input order breaking ties *)
  lk_sccs : string list list;
      (** import cycles: module SCCs with more than one member *)
  lk_missing : (string * string) list;
      (** (importing module, function name) calls no module of the
          link defines; each makes its callers' closures limited *)
  lk_funcs : xfunc list;  (** in rank order *)
  lk_edges : xedge list;  (** sorted by (source rank, target rank) *)
  lk_levels : string list list;
      (** function antichains of the composed DAG *)
  lk_module_levels : string list list;
      (** antichains of the module condensation *)
  lk_licensed : float;
      (** fraction of unordered function pairs with no path either way
          — the project-wide analogue of
          {!Depan.licensed_fraction} *)
  lk_diags : W2.Diag.t list;  (** W010/W011/W012, in file order *)
}

val compose : module_summary list -> link
(** Stitch the project DAG from summaries alone.  Functions of
    different modules are ordered module-condensation-first (providers
    before importers), then by each module's own canonical function
    rank, so the result is a DAG even though the data reasons are
    symmetric.  Intra-module pairs keep their per-module edges
    (including absint refutations) untouched; the composer only adds
    edges a single module cannot see.
    @raise Link_error on a duplicate module name or a duplicate
    function name across modules. *)

val func_deps : link -> (string * string) list
(** Every composed edge as (before, after) function-name pairs — the
    project-wide [Plan.func_deps] input. *)

val spec_deps : link -> (string * string) list
(** The {!Depan.Speculative} subset of {!func_deps} — the project-wide
    [Plan.spec_edges] input. *)

(** {1 Cross-module lints}

    Produced by {!compose} in [lk_diags]:
    - {b W010} — an import declaration disagrees with the link: the
      provider module is absent, the function is undefined or not
      exported, or the restated signature (arity, parameter types,
      return type) mismatches the definition;
    - {b W011} — a function writes a section global whose name another
      module of the link also localizes: the globals are distinct
      per-module state, so the shared spelling is at best confusing;
    - {b W012} — an exported function no other module of the link
      imports (a dead export). *)

(** {1 Whole-program reference} *)

val inline_project : ?name:string -> W2.Ast.modul list -> W2.Ast.modul
(** Merge a project into one single-section module — the whole-program
    reference the superset theorem compares against, and the input the
    project scheduler compiles.  Section globals are renamed
    ["<module>__<global>"] (respecting function-level shadowing by
    parameters and locals), functions keep their names and input
    order, imports and exports disappear.
    @raise Invalid_argument on a duplicate function name or an empty
    project. *)

(** {1 Output} *)

val report : link -> string
(** Human-readable summary: link order, per-module function and edge
    counts, cross-module edges, levels, licensed fraction, lints. *)

val to_dot : link -> string
(** Graphviz rendering: one cluster per module, cross-module edges
    labeled with their reasons. *)

val to_json : link -> string
(** Machine-readable dump, schema ["warpcc-analyze/3"], kind
    ["project"]. *)
