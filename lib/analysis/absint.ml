(* Abstract interpretation over the W2 AST: array regions, channel
   protocols and static cost, interprocedurally closed with widening.

   Everything over-approximates concrete execution.  Two deliberate
   coarsenings keep the code small without risking soundness of the
   refutations Depan consumes:

   - early [return] is ignored for control flow, and both operands of
     a short-circuit [and]/[or] are interpreted.  Both only *inflate*
     upper bounds (regions, multiplicities, cost); refutations rely on
     upper bounds being sound, never on lower bounds being tight.
   - parameters are unknown (top), so one context-insensitive summary
     per function serves every call site. *)

module Ast = W2.Ast
module SM = Map.Make (String)

(* --- intervals --- *)

type itv = { lo : int option; hi : int option }

let itv_const n = { lo = Some n; hi = Some n }
let itv_top = { lo = None; hi = None }
let itv_zero = itv_const 0
let itv_one = itv_const 1

let min_lo a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> Some (min x y)

let max_hi a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> Some (max x y)

let itv_join a b = { lo = min_lo a.lo b.lo; hi = max_hi a.hi b.hi }

let itv_widen old fresh =
  {
    lo =
      (match (old.lo, fresh.lo) with
      | _, None -> None
      | Some o, Some f when f < o -> None
      | o, _ -> o);
    hi =
      (match (old.hi, fresh.hi) with
      | _, None -> None
      | Some o, Some f when f > o -> None
      | o, _ -> o);
  }

let itv_equal a b = a.lo = b.lo && a.hi = b.hi

let itv_to_string { lo; hi } =
  let l = match lo with Some n -> Printf.sprintf "[%d" n | None -> "(-inf" in
  let h = match hi with Some n -> Printf.sprintf "%d]" n | None -> "+inf)" in
  l ^ "," ^ h

let add_b a b =
  match (a, b) with Some x, Some y -> Some (x + y) | _ -> None

let itv_add a b = { lo = add_b a.lo b.lo; hi = add_b a.hi b.hi }
let itv_neg a = { lo = Option.map ( ~- ) a.hi; hi = Option.map ( ~- ) a.lo }
let itv_sub a b = itv_add a (itv_neg b)

(* Extended bounds for multiplication, where sign handling needs the
   full case analysis.  0 × infinity is 0: the infinite factor is a
   bound of integers actually attained, so the product's bound is 0. *)
type eb = Ninf | Fin of int | Pinf

let eb_neg = function Ninf -> Pinf | Pinf -> Ninf | Fin x -> Fin (-x)

let eb_mul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y -> Fin (x * y)
  | (Ninf | Pinf), Fin y -> if y > 0 then a else eb_neg a
  | Fin x, (Ninf | Pinf) -> if x > 0 then b else eb_neg b
  | Pinf, Pinf | Ninf, Ninf -> Pinf
  | Pinf, Ninf | Ninf, Pinf -> Ninf

let eb_le a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | _, Ninf | Pinf, _ -> false
  | Fin x, Fin y -> x <= y

let itv_mul a b =
  let lo_eb v = match v with Some x -> Fin x | None -> Ninf in
  let hi_eb v = match v with Some x -> Fin x | None -> Pinf in
  let products =
    [
      eb_mul (lo_eb a.lo) (lo_eb b.lo);
      eb_mul (lo_eb a.lo) (hi_eb b.hi);
      eb_mul (hi_eb a.hi) (lo_eb b.lo);
      eb_mul (hi_eb a.hi) (hi_eb b.hi);
    ]
  in
  let mn = List.fold_left (fun m x -> if eb_le x m then x else m) Pinf products in
  let mx = List.fold_left (fun m x -> if eb_le m x then x else m) Ninf products in
  {
    lo = (match mn with Fin x -> Some x | _ -> None);
    hi = (match mx with Fin x -> Some x | _ -> None);
  }

(* [a mod k] with the dividend's sign (the interpreter uses OCaml's
   [mod]): bounded by |k|-1 in magnitude, non-negative when the
   dividend provably is. *)
let itv_mod a b =
  match (b.lo, b.hi) with
  | Some k, Some k' when k = k' && k <> 0 ->
    let m = abs k - 1 in
    if (match a.lo with Some x -> x >= 0 | None -> false) then
      { lo = Some 0; hi = Some (match a.hi with Some h -> min h m | None -> m) }
    else { lo = Some (-m); hi = Some m }
  | _ -> itv_top

(* Non-negative clamp, for trip counts and multiplicities. *)
let itv_clamp_nonneg a =
  {
    lo = Some (match a.lo with Some x -> max 0 x | None -> 0);
    hi = (match a.hi with Some x -> Some (max 0 x) | None -> None);
  }

(* --- tri-state comparisons (booleans are 0/1 intervals) --- *)

let itv_of_truth = function
  | Some true -> itv_const 1
  | Some false -> itv_const 0
  | None -> { lo = Some 0; hi = Some 1 }

let truth v =
  if v.lo = Some 1 && v.hi = Some 1 then Some true
  else if v.lo = Some 0 && v.hi = Some 0 then Some false
  else None

let cmp_lt a b =
  match (a.hi, b.lo) with
  | Some ah, Some bl when ah < bl -> Some true
  | _ -> (
    match (a.lo, b.hi) with
    | Some al, Some bh when al >= bh -> Some false
    | _ -> None)

let cmp_le a b =
  match (a.hi, b.lo) with
  | Some ah, Some bl when ah <= bl -> Some true
  | _ -> (
    match (a.lo, b.hi) with
    | Some al, Some bh when al > bh -> Some false
    | _ -> None)

let cmp_eq a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh when al = ah && bl = bh && al = bl ->
    Some true
  | _ ->
    if
      (match (a.hi, b.lo) with Some ah, Some bl -> ah < bl | _ -> false)
      || match (b.hi, a.lo) with Some bh, Some al -> bh < al | _ -> false
    then Some false
    else None

let truth_not = Option.map not

(* --- regions --- *)

type region = Empty | Slices of itv list | All

let itv_overlaps_or_adjacent x y =
  let before hi lo =
    (* strictly before with a gap: hi + 1 < lo *)
    match (hi, lo) with Some h, Some l -> h + 1 < l | _ -> false
  in
  not (before x.hi y.lo || before y.hi x.lo)

let itv_overlaps x y =
  let before hi lo =
    match (hi, lo) with Some h, Some l -> h < l | _ -> false
  in
  not (before x.hi y.lo || before y.hi x.lo)

let slice_cmp a b =
  let key v = match v with None -> min_int | Some x -> x in
  compare (key a.lo, key a.hi) (key b.lo, key b.hi)

let norm_slices ~max_intervals slices =
  if List.exists (fun s -> s.lo = None && s.hi = None) slices then All
  else begin
    let sorted = List.sort slice_cmp slices in
    let merged =
      List.fold_left
        (fun acc s ->
          match acc with
          | cur :: rest when itv_overlaps_or_adjacent cur s ->
            itv_join cur s :: rest
          | _ -> s :: acc)
        [] sorted
      |> List.rev
    in
    match merged with
    | [] -> Empty
    | _ when List.length merged > max_intervals -> All
    | _ -> Slices merged
  end

let region_union ~max_intervals a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | All, _ | _, All -> All
  | Slices xs, Slices ys -> norm_slices ~max_intervals (xs @ ys)

let regions_disjoint a b =
  match (a, b) with
  | Empty, _ | _, Empty -> true
  | All, _ | _, All -> false
  | Slices xs, Slices ys ->
    not (List.exists (fun x -> List.exists (itv_overlaps x) ys) xs)

let region_equal a b =
  match (a, b) with
  | Empty, Empty | All, All -> true
  | Slices xs, Slices ys ->
    List.length xs = List.length ys && List.for_all2 itv_equal xs ys
  | _ -> false

let region_to_string = function
  | Empty -> "{}"
  | All -> "all"
  | Slices xs -> String.concat "u" (List.map itv_to_string xs)

(* --- summaries --- *)

type chan_use = { cu_send : itv; cu_recv : itv }
type purity = Pure | Read_only | Effectful

let purity_to_string = function
  | Pure -> "pure"
  | Read_only -> "read_only"
  | Effectful -> "effectful"

type summary = {
  s_reads : (string * region) list;
  s_writes : (string * region) list;
  s_x : chan_use;
  s_y : chan_use;
  s_cost : itv;
}

let cu_zero = { cu_send = itv_zero; cu_recv = itv_zero }

let bottom =
  { s_reads = []; s_writes = []; s_x = cu_zero; s_y = cu_zero;
    s_cost = itv_zero }

let lookup_region map g =
  match List.assoc_opt g map with Some r -> r | None -> Empty

let read_region s g = lookup_region s.s_reads g
let write_region s g = lookup_region s.s_writes g

let access_region s g =
  region_union ~max_intervals:max_int (read_region s g) (write_region s g)

let chan_silent s (c : Ast.channel) =
  let cu = match c with Ast.Chan_x -> s.s_x | Ast.Chan_y -> s.s_y in
  cu.cu_send.hi = Some 0 && cu.cu_recv.hi = Some 0

let summary_purity s =
  let silent = chan_silent s Ast.Chan_x && chan_silent s Ast.Chan_y in
  if s.s_writes = [] && silent then
    if s.s_reads = [] then Pure else Read_only
  else Effectful

let global_conflict_refuted a b g =
  regions_disjoint (write_region a g) (access_region b g)
  && regions_disjoint (write_region b g) (access_region a g)

let conflicts a b =
  let globals =
    List.sort_uniq String.compare
      (List.map fst (a.s_reads @ a.s_writes @ b.s_reads @ b.s_writes))
  in
  let gs = List.filter (fun g -> not (global_conflict_refuted a b g)) globals in
  let cs =
    List.filter
      (fun c ->
        let touches s =
          let cu = match c with Ast.Chan_x -> s.s_x | Ast.Chan_y -> s.s_y in
          cu.cu_send.hi <> Some 0 || cu.cu_recv.hi <> Some 0
        in
        touches a && touches b)
      [ Ast.Chan_x; Ast.Chan_y ]
  in
  (gs, cs)

let conflict_free a b = conflicts a b = ([], [])

let cost_units (c : itv) =
  let lo = match c.lo with Some x -> max 0 x | None -> 0 in
  match c.hi with
  | Some hi -> max 1 ((lo + hi + 1) / 2)
  | None -> max 1 (4 * max 1 lo)

let chan_use_to_string c cu =
  Printf.sprintf "%s(send=%s,recv=%s)" c (itv_to_string cu.cu_send)
    (itv_to_string cu.cu_recv)

let summary_to_string s =
  let regions label rs =
    Printf.sprintf "%s{%s}" label
      (String.concat ","
         (List.map (fun (g, r) -> g ^ ":" ^ region_to_string r) rs))
  in
  String.concat " "
    [
      regions "reads" s.s_reads;
      regions "writes" s.s_writes;
      chan_use_to_string "X" s.s_x;
      chan_use_to_string "Y" s.s_y;
      "cost=" ^ itv_to_string s.s_cost;
    ]

(* --- the abstract executor --- *)

(* Channel-op multiplicities and cost are flow-sensitive, so they flow
   through the executor functionally; regions only ever grow by union
   (idempotent), so they accumulate in the context. *)
type usage = { ux : chan_use; uy : chan_use; ucost : itv }

let u_zero = { ux = cu_zero; uy = cu_zero; ucost = itv_zero }

let cu_add a b =
  { cu_send = itv_add a.cu_send b.cu_send;
    cu_recv = itv_add a.cu_recv b.cu_recv }

let cu_join a b =
  { cu_send = itv_join a.cu_send b.cu_send;
    cu_recv = itv_join a.cu_recv b.cu_recv }

let cu_scale a k =
  { cu_send = itv_clamp_nonneg (itv_mul a.cu_send k);
    cu_recv = itv_clamp_nonneg (itv_mul a.cu_recv k) }

let u_add a b =
  { ux = cu_add a.ux b.ux; uy = cu_add a.uy b.uy;
    ucost = itv_add a.ucost b.ucost }

let u_join a b =
  { ux = cu_join a.ux b.ux; uy = cu_join a.uy b.uy;
    ucost = itv_join a.ucost b.ucost }

let u_scale a k =
  { ux = cu_scale a.ux k; uy = cu_scale a.uy k;
    ucost = itv_clamp_nonneg (itv_mul a.ucost k) }

let u_cost n u = { u with ucost = itv_add u.ucost (itv_const n) }

type ctx = {
  garr : (string, bool) Hashtbl.t; (* global name -> is it an array? *)
  sums : (string, summary) Hashtbl.t; (* current interprocedural table *)
  max_intervals : int;
  mutable creads : region SM.t;
  mutable cwrites : region SM.t;
}

let is_global ctx n = Hashtbl.mem ctx.garr n

let record side ctx g r =
  let max_intervals = ctx.max_intervals in
  let upd m =
    SM.update g
      (function
        | None -> Some r
        | Some r0 -> Some (region_union ~max_intervals r0 r))
      m
  in
  match side with
  | `Read -> ctx.creads <- upd ctx.creads
  | `Write -> ctx.cwrites <- upd ctx.cwrites

(* The element region one index interval denotes; an array indexed by
   an unknown value is the whole array, a scalar is always whole. *)
let region_of_access ctx g idx =
  if Hashtbl.find ctx.garr g then
    match idx with
    | Some i when not (i.lo = None && i.hi = None) -> Slices [ i ]
    | _ -> All
  else All

(* A call to something we cannot resolve (defensive; the checker rules
   it out): assume it clobbers every global and both channels. *)
let havoc ctx =
  Hashtbl.iter
    (fun g _ ->
      record `Read ctx g All;
      record `Write ctx g All)
    ctx.garr;
  { ux = { cu_send = itv_clamp_nonneg itv_top; cu_recv = itv_clamp_nonneg itv_top };
    uy = { cu_send = itv_clamp_nonneg itv_top; cu_recv = itv_clamp_nonneg itv_top };
    ucost = itv_clamp_nonneg itv_top }

let apply_call ctx name =
  if Ast.is_builtin name then u_zero
  else
    match Hashtbl.find_opt ctx.sums name with
    | None -> havoc ctx
    | Some s ->
      List.iter (fun (g, r) -> record `Read ctx g r) s.s_reads;
      List.iter (fun (g, r) -> record `Write ctx g r) s.s_writes;
      { ux = s.s_x; uy = s.s_y; ucost = s.s_cost }

(* Environments map locals (and parameters) to intervals; an absent
   binding is top, and top is never stored, so joins are intersections
   of the key sets. *)
let env_set env n v =
  if v.lo = None && v.hi = None then SM.remove n env else SM.add n v env

let env_lookup env n =
  match SM.find_opt n env with Some v -> v | None -> itv_top

let env_merge f a b =
  SM.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y ->
        let v = f x y in
        if v.lo = None && v.hi = None then None else Some v
      | _ -> None)
    a b

let env_join = env_merge itv_join
let env_widen = env_merge itv_widen
let env_equal = SM.equal itv_equal

let rec eval_expr ctx env (x : Ast.expr) : itv * usage =
  match x.e with
  | Ast.Int_lit n -> (itv_const n, u_zero)
  | Ast.Float_lit _ -> (itv_top, u_zero)
  | Ast.Bool_lit b -> (itv_const (if b then 1 else 0), u_zero)
  | Ast.Var n ->
    if is_global ctx n then begin
      record `Read ctx n (region_of_access ctx n None);
      (itv_top, u_zero)
    end
    else (env_lookup env n, u_zero)
  | Ast.Index (n, i) ->
    let iv, u = eval_expr ctx env i in
    if is_global ctx n then record `Read ctx n (region_of_access ctx n (Some iv));
    (itv_top, u)
  | Ast.Unary (Ast.Neg, a) ->
    let v, u = eval_expr ctx env a in
    (itv_neg v, u)
  | Ast.Unary (Ast.Not, a) ->
    let v, u = eval_expr ctx env a in
    (itv_of_truth (truth_not (truth v)), u)
  | Ast.Binary (op, a, b) ->
    let va, ua = eval_expr ctx env a in
    let vb, ub = eval_expr ctx env b in
    let u = u_add ua ub in
    let v =
      match op with
      | Ast.Add -> itv_add va vb
      | Ast.Sub -> itv_sub va vb
      | Ast.Mul -> itv_mul va vb
      | Ast.Div -> itv_top
      | Ast.Mod -> itv_mod va vb
      | Ast.Lt -> itv_of_truth (cmp_lt va vb)
      | Ast.Le -> itv_of_truth (cmp_le va vb)
      | Ast.Gt -> itv_of_truth (cmp_lt vb va)
      | Ast.Ge -> itv_of_truth (cmp_le vb va)
      | Ast.Eq -> itv_of_truth (cmp_eq va vb)
      | Ast.Ne -> itv_of_truth (truth_not (cmp_eq va vb))
      | Ast.And ->
        itv_of_truth
          (match (truth va, truth vb) with
          | Some false, _ | _, Some false -> Some false
          | Some true, Some true -> Some true
          | _ -> None)
      | Ast.Or ->
        itv_of_truth
          (match (truth va, truth vb) with
          | Some true, _ | _, Some true -> Some true
          | Some false, Some false -> Some false
          | _ -> None)
    in
    (v, u)
  | Ast.Call (n, args) ->
    let u =
      List.fold_left
        (fun acc a ->
          let _, ua = eval_expr ctx env a in
          u_add acc ua)
        u_zero args
    in
    (itv_top, u_add u (apply_call ctx n))

let eval_lvalue ctx env = function
  | Ast.Lvar n ->
    if is_global ctx n then
      record `Write ctx n (region_of_access ctx n None);
    u_zero
  | Ast.Lindex (n, i) ->
    let iv, u = eval_expr ctx env i in
    if is_global ctx n then
      record `Write ctx n (region_of_access ctx n (Some iv));
    u

let assign_env env lv v =
  match lv with
  | Ast.Lvar n -> env_set env n v
  | Ast.Lindex _ -> env (* array elements are not value-tracked *)

(* Loop-body fixpoint on the environment.  [pin] re-asserts bindings
   the loop header owns (the counted-loop variable).  Widening kicks in
   after two rounds, so every binding's bounds can move at most a few
   times before jumping to infinity: termination is structural. *)
let rec fix_loop ctx ~pin body env round =
  let env = pin env in
  let env_b, _ = exec_stmts ctx env body in
  let joined = env_join env env_b in
  let joined = if round >= 2 then env_widen env joined else joined in
  if env_equal (pin joined) env then env
  else fix_loop ctx ~pin body joined (round + 1)

and exec_stmts ctx env (stmts : Ast.stmt list) : itv SM.t * usage =
  List.fold_left
    (fun (env, u) s ->
      let env', us = exec_stmt ctx env s in
      (env', u_add u us))
    (env, u_zero) stmts

and exec_stmt ctx env (s : Ast.stmt) : itv SM.t * usage =
  match s.s with
  | Ast.Assign (lv, x) ->
    let v, ux = eval_expr ctx env x in
    let ul = eval_lvalue ctx env lv in
    (assign_env env lv v, u_cost 1 (u_add ux ul))
  | Ast.If (c, t, f) ->
    let cv, uc = eval_expr ctx env c in
    (match truth cv with
    | Some true ->
      let env', ut = exec_stmts ctx env t in
      (env', u_cost 1 (u_add uc ut))
    | Some false ->
      let env', uf = exec_stmts ctx env f in
      (env', u_cost 1 (u_add uc uf))
    | None ->
      let env_t, ut = exec_stmts ctx env t in
      let env_f, uf = exec_stmts ctx env f in
      (env_join env_t env_f, u_cost 1 (u_add uc (u_join ut uf))))
  | Ast.While (c, body) ->
    let cv, uc = eval_expr ctx env c in
    (match truth cv with
    | Some false -> (env, u_cost 1 uc)
    | _ ->
      let env_fix = fix_loop ctx ~pin:(fun e -> e) body env 0 in
      let _, uc_fix = eval_expr ctx env_fix c in
      let _, ub = exec_stmts ctx env_fix body in
      let per_iter = u_cost 1 (u_add uc_fix ub) in
      let trips = { lo = Some 0; hi = None } in
      (env_join env env_fix, u_cost 1 (u_add uc (u_scale per_iter trips))))
  | Ast.For (v, lo, hi, body) ->
    let ilo, ul = eval_expr ctx env lo in
    let ihi, uh = eval_expr ctx env hi in
    let bounds_u = u_cost 1 (u_add ul uh) in
    let trips =
      {
        lo =
          Some
            (match (ihi.lo, ilo.hi) with
            | Some h, Some l -> max 0 (h - l + 1)
            | _ -> 0);
        hi =
          (match (ihi.hi, ilo.lo) with
          | Some h, Some l -> Some (max 0 (h - l + 1))
          | _ -> None);
      }
    in
    if trips.hi = Some 0 then (env_set env v ilo, bounds_u)
    else begin
      let vrange = { lo = ilo.lo; hi = ihi.hi } in
      let pin e = env_set e v vrange in
      let env_fix = fix_loop ctx ~pin body env 0 in
      let _, ub = exec_stmts ctx (pin env_fix) body in
      let after = itv_join ilo (itv_add ihi itv_one) in
      let env' = env_set (env_join env env_fix) v after in
      (env', u_add bounds_u (u_scale (u_cost 1 ub) trips))
    end
  | Ast.Send (c, x) ->
    let _, u = eval_expr ctx env x in
    let bump cu = { cu with cu_send = itv_add cu.cu_send itv_one } in
    let u = u_cost 1 u in
    ( env,
      match c with
      | Ast.Chan_x -> { u with ux = bump u.ux }
      | Ast.Chan_y -> { u with uy = bump u.uy } )
  | Ast.Receive (c, lv) ->
    let ul = eval_lvalue ctx env lv in
    let env = assign_env env lv itv_top in
    let bump cu = { cu with cu_recv = itv_add cu.cu_recv itv_one } in
    let u = u_cost 1 ul in
    ( env,
      match c with
      | Ast.Chan_x -> { u with ux = bump u.ux }
      | Ast.Chan_y -> { u with uy = bump u.uy } )
  | Ast.Return None -> (env, u_cost 1 u_zero)
  | Ast.Return (Some x) ->
    let _, u = eval_expr ctx env x in
    (env, u_cost 1 u)
  | Ast.Call_stmt (n, args) ->
    let u =
      List.fold_left
        (fun acc a ->
          let _, ua = eval_expr ctx env a in
          u_add acc ua)
        u_zero args
    in
    (env, u_cost 1 (u_add u (apply_call ctx n)))

(* --- per-function and interprocedural analysis --- *)

let default_max_intervals = 8

let summarize ctx (f : Ast.func) : summary =
  ctx.creads <- SM.empty;
  ctx.cwrites <- SM.empty;
  (* Locals start default-initialized (ints at 0, like the reference
     interpreter); parameters are unknown. *)
  let env =
    List.fold_left
      (fun env (d : Ast.decl) ->
        match d.dty with
        | Ast.Tint | Ast.Tbool -> env_set env d.dname itv_zero
        | _ -> env)
      SM.empty f.locals
  in
  let _, u = exec_stmts ctx env f.body in
  let dump m =
    SM.bindings m |> List.filter (fun (_, r) -> r <> Empty)
  in
  {
    s_reads = dump ctx.creads;
    s_writes = dump ctx.cwrites;
    s_x = u.ux;
    s_y = u.uy;
    s_cost = itv_clamp_nonneg u.ucost;
  }

let summary_equal a b =
  a.s_reads = b.s_reads && a.s_writes = b.s_writes
  && a.s_x = b.s_x && a.s_y = b.s_y && itv_equal a.s_cost b.s_cost

(* Round-limit widening for the interprocedural fixpoint: a recursive
   cycle grows cost and multiplicities every round, so past the limit
   any still-moving interval jumps to infinity and any still-moving
   region to All, after which the table is stationary. *)
let widen_summary old fresh =
  let widen_regions o f =
    List.map
      (fun (g, r) ->
        (g, if region_equal (lookup_region o g) r then r else All))
      f
  in
  let widen_cu o f =
    { cu_send = itv_widen o.cu_send f.cu_send;
      cu_recv = itv_widen o.cu_recv f.cu_recv }
  in
  {
    s_reads = widen_regions old.s_reads fresh.s_reads;
    s_writes = widen_regions old.s_writes fresh.s_writes;
    s_x = widen_cu old.s_x fresh.s_x;
    s_y = widen_cu old.s_y fresh.s_y;
    s_cost = itv_widen old.s_cost fresh.s_cost;
  }

let analyze_section ?(max_intervals = default_max_intervals)
    (sec : Ast.section) : (string * summary) list =
  let garr = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.decl) ->
      Hashtbl.replace garr d.dname
        (match d.dty with Ast.Tarray _ -> true | _ -> false))
    sec.globals;
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace sums f.fname bottom)
    sec.funcs;
  let ctx =
    { garr; sums; max_intervals; creads = SM.empty; cwrites = SM.empty }
  in
  let limit = (2 * List.length sec.funcs) + 4 in
  let changed = ref true in
  let round = ref 0 in
  while !changed do
    incr round;
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        let old = Hashtbl.find sums f.fname in
        let fresh = summarize ctx f in
        let fresh =
          if !round > limit then widen_summary old fresh else fresh
        in
        if not (summary_equal old fresh) then begin
          Hashtbl.replace sums f.fname fresh;
          changed := true
        end)
      sec.funcs
  done;
  List.map (fun (f : Ast.func) -> (f.fname, Hashtbl.find sums f.fname)) sec.funcs
