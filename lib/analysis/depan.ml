(* Interprocedural dependence analysis over a checked W2 module.

   Everything here is AST-level and runs in the sequential master
   (phase 1), before any task is dispatched: the analyzer charges no
   simulated time, so schedules that ignore its DAG are timed exactly
   as before.

   The core trick is the canonical rank.  Call edges are naturally
   acyclic across SCCs (Tarjan numbers callee SCCs before caller SCCs),
   but global conflicts and channel pairings are symmetric, and a naive
   orientation could cycle with the call edges.  Ranking every function
   by (SCC id, section position) and pointing every edge from lower
   rank to higher makes the result a DAG by construction while keeping
   callees before callers. *)

module Ast = W2.Ast
module SS = Set.Make (String)

type effects = {
  greads : string list;
  gwrites : string list;
  sends : Ast.channel list;
  recvs : Ast.channel list;
  calls : string list;
  limited : bool;
}

let no_effects =
  { greads = []; gwrites = []; sends = []; recvs = []; calls = [];
    limited = false }

type reason =
  | Inline_of
  | Sig_agreement
  | Global_conflict of string
  | Channel_pair of Ast.channel
  | Summary_limit

let reason_to_string = function
  | Inline_of -> "inline_of"
  | Sig_agreement -> "sig_agreement"
  | Global_conflict g -> "global_conflict:" ^ g
  | Channel_pair c -> "channel_pair:" ^ Ast.channel_to_string c
  | Summary_limit -> "summary_limit"

(* Display (and dedup) order: structural reasons first, then data
   reasons, then the conservative catch-all. *)
let reason_key = function
  | Inline_of -> (0, "")
  | Sig_agreement -> (1, "")
  | Global_conflict g -> (2, g)
  | Channel_pair c -> (3, Ast.channel_to_string c)
  | Summary_limit -> (4, "")

type edge = { e_from : int; e_to : int; reasons : reason list }

type confidence = Proven | Speculative

(* Structural reasons are genuine compile-order inputs (the callee's
   body or signature feeds the caller's compilation), so any edge
   carrying one is proven.  Data reasons — global conflicts, channel
   pairings, and the blanket summary-limit pin — are over-approximate:
   the runs they order may be dynamically independent, so edges
   carrying only those are speculative and a dag+spec schedule may
   dispatch past them under the commit protocol. *)
let edge_confidence (e : edge) : confidence =
  if List.exists (function Inline_of | Sig_agreement -> true | _ -> false)
       e.reasons
  then Proven
  else Speculative

let confidence_to_string = function
  | Proven -> "proven"
  | Speculative -> "speculative"

type refuter = Refuted_region | Refuted_protocol

let refuter_to_string = function
  | Refuted_region -> "region"
  | Refuted_protocol -> "protocol"

type pruned = {
  p_from : int;
  p_to : int;
  p_reason : reason;
  p_refuted_by : refuter;
}

type func_info = {
  fi_name : string;
  fi_index : int;
  fi_loc : W2.Loc.t;
  fi_arity : int;
  fi_returns : bool;
  fi_inlinable : bool;
  fi_scc : int;
  fi_direct : effects;
  fi_summary : effects;
  fi_hash : string;
  fi_purity : Absint.purity option;
  fi_cost : Absint.itv option;
}

type section_info = {
  si_name : string;
  si_cells : int;
  si_funcs : func_info array;
  si_edges : edge list;
  si_levels : int list list;
  si_fixpoint_sweeps : int;
  si_pruned : pruned list;
  si_disjoint : string list;
  si_hot : (int * int) list;
}

type t = {
  dp_module : string;
  dp_sound : bool;
  dp_absint : bool;
  dp_sections : section_info list;
}

(* --- effect sets (internal representation) --- *)

type eff = {
  r : SS.t; (* globals read *)
  w : SS.t; (* globals written *)
  sx : bool; (* sends on X *)
  sy : bool;
  rx : bool; (* receives on X *)
  ry : bool;
  cs : SS.t; (* user functions called *)
  lim : bool;
}

let eff_empty =
  { r = SS.empty; w = SS.empty; sx = false; sy = false; rx = false;
    ry = false; cs = SS.empty; lim = false }

let eff_union a b =
  {
    r = SS.union a.r b.r;
    w = SS.union a.w b.w;
    sx = a.sx || b.sx;
    sy = a.sy || b.sy;
    rx = a.rx || b.rx;
    ry = a.ry || b.ry;
    cs = SS.union a.cs b.cs;
    lim = a.lim || b.lim;
  }

let eff_equal a b =
  SS.equal a.r b.r && SS.equal a.w b.w && a.sx = b.sx && a.sy = b.sy
  && a.rx = b.rx && a.ry = b.ry && SS.equal a.cs b.cs && a.lim = b.lim

let effects_of_eff e =
  {
    greads = SS.elements e.r;
    gwrites = SS.elements e.w;
    sends =
      (if e.sx then [ Ast.Chan_x ] else [])
      @ if e.sy then [ Ast.Chan_y ] else [];
    recvs =
      (if e.rx then [ Ast.Chan_x ] else [])
      @ if e.ry then [ Ast.Chan_y ] else [];
    calls = SS.elements e.cs;
    limited = e.lim;
  }

(* Direct effects of one function's body.  [globals] are the section's
   global names; parameters and locals shadow (the checker rejects such
   shadowing, but staying defensive costs nothing). *)
let direct_effects ~globals (f : Ast.func) : eff =
  let bound =
    SS.union
      (SS.of_list (List.map (fun (p : Ast.param) -> p.pname) f.params))
      (SS.of_list (List.map (fun (d : Ast.decl) -> d.dname) f.locals))
  in
  let is_global n = SS.mem n globals && not (SS.mem n bound) in
  let e = ref eff_empty in
  let read n = if is_global n then e := { !e with r = SS.add n !e.r } in
  let write n = if is_global n then e := { !e with w = SS.add n !e.w } in
  let call n =
    if not (Ast.is_builtin n) then e := { !e with cs = SS.add n !e.cs }
  in
  let send = function
    | Ast.Chan_x -> e := { !e with sx = true }
    | Ast.Chan_y -> e := { !e with sy = true }
  in
  let recv = function
    | Ast.Chan_x -> e := { !e with rx = true }
    | Ast.Chan_y -> e := { !e with ry = true }
  in
  let rec expr (x : Ast.expr) =
    match x.e with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> ()
    | Ast.Var n -> read n
    | Ast.Index (n, i) ->
      read n;
      expr i
    | Ast.Unary (_, a) -> expr a
    | Ast.Binary (_, a, b) ->
      expr a;
      expr b
    | Ast.Call (n, args) ->
      call n;
      List.iter expr args
  in
  let lvalue = function
    | Ast.Lvar n -> write n
    | Ast.Lindex (n, i) ->
      write n;
      expr i
  in
  let rec stmt (s : Ast.stmt) =
    match s.s with
    | Ast.Assign (lv, x) ->
      expr x;
      lvalue lv
    | Ast.If (c, t, f) ->
      expr c;
      List.iter stmt t;
      List.iter stmt f
    | Ast.While (c, b) ->
      expr c;
      List.iter stmt b
    | Ast.For (v, lo, hi, b) ->
      write v;
      (* no-op unless v is (illegally) a global *)
      expr lo;
      expr hi;
      List.iter stmt b
    | Ast.Send (c, x) ->
      send c;
      expr x
    | Ast.Receive (c, lv) ->
      recv c;
      lvalue lv
    | Ast.Return None -> ()
    | Ast.Return (Some x) -> expr x
    | Ast.Call_stmt (n, args) ->
      call n;
      List.iter expr args
  in
  List.iter stmt f.body;
  !e

(* Cap the tracked-global footprint.  Keeping the lexicographically
   first [max_tracked] names is arbitrary but deterministic; what
   matters is that [lim] records the truncation so sound mode can add
   conservative edges. *)
let cap_eff ~max_tracked e =
  let tracked = SS.union e.r e.w in
  if SS.cardinal tracked <= max_tracked then e
  else
    let kept =
      SS.elements tracked
      |> List.filteri (fun i _ -> i < max_tracked)
      |> SS.of_list
    in
    { e with r = SS.inter e.r kept; w = SS.inter e.w kept; lim = true }

(* --- Tarjan SCCs over the intra-section call graph --- *)

(* Deterministic: roots are tried in section order and successors are
   visited in sorted-name order, so SCC ids depend only on the source.
   The classic invariant gives us exactly the order we want: when an
   edge caller->callee crosses SCCs, the callee's SCC is numbered
   first. *)
let tarjan (succs : int list array) : int array =
  let n = Array.length succs in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let scc = Array.make n (-1) in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  let rec visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun u ->
        if index.(u) < 0 then begin
          visit u;
          lowlink.(v) <- min lowlink.(v) lowlink.(u)
        end
        else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          on_stack.(u) <- false;
          scc.(u) <- !next_scc;
          if u <> v then pop ()
      in
      pop ();
      incr next_scc
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  scc

(* --- per-section analysis --- *)

(* Canonical one-line rendering of an effect summary; shared by the
   report and the effect-summary hash. *)
let effects_line (e : effects) =
  let part label = function
    | [] -> []
    | items -> [ Printf.sprintf "%s{%s}" label (String.concat "," items) ]
  in
  let chans cs = List.map Ast.channel_to_string cs in
  let parts =
    part "reads" e.greads @ part "writes" e.gwrites
    @ part "sends" (chans e.sends)
    @ part "recvs" (chans e.recvs)
    @ part "calls" e.calls
    @ if e.limited then [ "(limited)" ] else []
  in
  if parts = [] then "pure" else String.concat " " parts

let analyze_section ~sound ~max_tracked (sec : Ast.section) : section_info =
  let funcs = Array.of_list sec.funcs in
  let n = Array.length funcs in
  let globals =
    SS.of_list (List.map (fun (d : Ast.decl) -> d.dname) sec.globals)
  in
  let by_name = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : Ast.func) -> Hashtbl.replace by_name f.fname i)
    funcs;
  let direct =
    Array.map
      (fun f -> cap_eff ~max_tracked (direct_effects ~globals f))
      funcs
  in
  let succs =
    Array.map
      (fun e ->
        SS.elements e.cs
        |> List.filter_map (fun name -> Hashtbl.find_opt by_name name))
      direct
  in
  let scc = tarjan succs in
  let num_sccs = Array.fold_left (fun m s -> max m (s + 1)) 0 scc in
  (* Bottom-up SCC fixpoint: callee SCCs (lower ids) first, then
     iterate each SCC until its members' summaries stop changing. *)
  let sweeps = ref 0 in
  let close ~tally base =
    let summary = Array.copy base in
    for s = 0 to num_sccs - 1 do
      let members =
        List.filter (fun i -> scc.(i) = s) (List.init n (fun i -> i))
      in
      let changed = ref true in
      while !changed do
        changed := false;
        if tally then incr sweeps;
        List.iter
          (fun i ->
            let fresh =
              List.fold_left
                (fun acc j -> eff_union acc summary.(j))
                base.(i) succs.(i)
            in
            if not (eff_equal fresh summary.(i)) then begin
              summary.(i) <- fresh;
              changed := true
            end)
          members
      done
    done;
    summary
  in
  let summary = close ~tally:true direct in
  (* Full-precision closure over the UNCAPPED direct effects (the call
     sets are never capped, so the graph is the same): the commit
     oracle's ground truth for whether a pair actually shares state. *)
  let full_summary =
    close ~tally:false (Array.map (direct_effects ~globals) funcs)
  in
  (* Canonical rank: SCC id first (callees before callers), section
     order second.  Every edge points from lower rank to higher. *)
  let order =
    List.sort
      (fun a b -> compare (scc.(a), a) (scc.(b), b))
      (List.init n (fun i -> i))
  in
  let rankpos = Array.make n 0 in
  List.iteri (fun pos i -> rankpos.(i) <- pos) order;
  let edge_tbl : (int * int, reason list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add_edge i j reason =
    let i, j = if rankpos.(i) <= rankpos.(j) then (i, j) else (j, i) in
    if i <> j then
      match Hashtbl.find_opt edge_tbl (i, j) with
      | Some rs -> rs := reason :: !rs
      | None -> Hashtbl.replace edge_tbl (i, j) (ref [ reason ])
  in
  let inlinable =
    Array.map
      (W2.Inline.inlinable ~max_lines:W2.Inline.default_max_lines)
      funcs
  in
  (* Call edges (cross-SCC): callee before caller. *)
  Array.iteri
    (fun i js ->
      List.iter
        (fun j ->
          if scc.(j) <> scc.(i) then
            add_edge j i (if inlinable.(j) then Inline_of else Sig_agreement))
        js)
    succs;
  (* Same-SCC members genuinely need each other; serialize them as a
     chain in section order (any topological serialization of a cycle
     is equally conservative). *)
  for s = 0 to num_sccs - 1 do
    let members =
      List.filter (fun i -> scc.(i) = s) (List.init n (fun i -> i))
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
        add_edge a b Sig_agreement;
        chain rest
      | _ -> ()
    in
    chain members
  done;
  (* Data coupling, over summarized effects: write/any-access global
     conflicts and shared-channel pairs. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = summary.(i) and b = summary.(j) in
      let conflicts =
        SS.union
          (SS.inter a.w (SS.union b.r b.w))
          (SS.inter (SS.union a.r a.w) b.w)
      in
      SS.iter (fun g -> add_edge i j (Global_conflict g)) conflicts;
      if (a.sx || a.rx) && (b.sx || b.rx) then
        add_edge i j (Channel_pair Ast.Chan_x);
      if (a.sy || a.ry) && (b.sy || b.ry) then
        add_edge i j (Channel_pair Ast.Chan_y)
    done
  done;
  (* Sound mode: a truncated summary could hide any of the couplings
     above, so pin the limited function against every sibling. *)
  if sound then
    for i = 0 to n - 1 do
      if summary.(i).lim then
        for j = 0 to n - 1 do
          if j <> i then add_edge i j Summary_limit
        done
    done;
  let edges =
    Hashtbl.fold
      (fun (i, j) rs acc ->
        let reasons =
          List.sort_uniq (fun a b -> compare (reason_key a) (reason_key b)) !rs
        in
        { e_from = i; e_to = j; reasons } :: acc)
      edge_tbl []
    |> List.sort (fun a b -> compare (a.e_from, a.e_to) (b.e_from, b.e_to))
  in
  (* Hot pairs: pairs whose uncapped summaries really share written
     state or a channel.  A speculative edge over a hot pair aborts at
     commit time; over a cold pair it always commits.  Oriented like
     edges: lower canonical rank first. *)
  let hot = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = full_summary.(i) and b = full_summary.(j) in
      let data =
        not
          (SS.is_empty
             (SS.union
                (SS.inter a.w (SS.union b.r b.w))
                (SS.inter (SS.union a.r a.w) b.w)))
      in
      let chan =
        ((a.sx || a.rx) && (b.sx || b.rx))
        || ((a.sy || a.ry) && (b.sy || b.ry))
      in
      if data || chan then
        hot := (if rankpos.(i) <= rankpos.(j) then (i, j) else (j, i)) :: !hot
    done
  done;
  let si_hot = List.sort compare !hot in
  (* Antichain levels: longest-path depth.  Ranks only grow along
     edges, so one pass in rank order suffices. *)
  let depth = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun e -> if e.e_to = v then depth.(v) <- max depth.(v) (depth.(e.e_from) + 1))
        edges)
    order;
  let max_depth = Array.fold_left max 0 depth in
  let levels =
    List.init (max_depth + 1) (fun d ->
        List.filter (fun i -> depth.(i) = d) (List.init n (fun i -> i)))
    |> List.filter (fun l -> l <> [])
  in
  (* Stable effect-summary hash, the groundwork for content-addressed
     compilation caching: a function's key covers its own rendered
     source, its closed effect summary, and — in rank order, so callees
     are already hashed — the keys of everything it calls.  Members of
     a call cycle reference each other by name (their own source is
     already under the digest, so the cycle stays stable). *)
  let hash = Array.make n "" in
  List.iter
    (fun i ->
      let callee_keys =
        SS.elements direct.(i).cs
        |> List.filter_map (fun name -> Hashtbl.find_opt by_name name)
        |> List.map (fun j ->
               if scc.(j) = scc.(i) then "cycle:" ^ funcs.(j).Ast.fname
               else hash.(j))
      in
      hash.(i) <-
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                (W2.Pretty.func_to_string funcs.(i)
                :: effects_line (effects_of_eff summary.(i))
                :: callee_keys))))
    order;
  let func_info i (f : Ast.func) =
    {
      fi_name = f.fname;
      fi_index = i;
      fi_loc = f.floc;
      fi_arity = List.length f.params;
      fi_returns = f.ret <> None;
      fi_inlinable = inlinable.(i);
      fi_scc = scc.(i);
      fi_direct = effects_of_eff direct.(i);
      fi_summary = effects_of_eff summary.(i);
      fi_hash = hash.(i);
      fi_purity = None;
      fi_cost = None;
    }
  in
  {
    si_name = sec.sname;
    si_cells = sec.cells;
    si_funcs = Array.mapi func_info funcs;
    si_edges = edges;
    si_levels = levels;
    si_fixpoint_sweeps = !sweeps;
    si_pruned = [];
    si_disjoint = [];
    si_hot;
  }

(* --- the abstract-interpretation refinement pass --- *)

(* Which refuter, if any, discharges one reason of an edge between
   functions [a] and [b]?  Structural reasons (inlining, signature
   agreement) are genuine compile-order inputs and are never
   refutable. *)
let refute_reason a b = function
  | Global_conflict g ->
    if Absint.global_conflict_refuted a b g then Some Refuted_region
    else None
  | Channel_pair c ->
    if Absint.chan_silent a c || Absint.chan_silent b c then
      Some Refuted_protocol
    else None
  | Summary_limit -> if Absint.conflict_free a b then Some Refuted_region else None
  | Inline_of | Sig_agreement -> None

let refine_section ~max_intervals (sec : Ast.section) (si : section_info) :
    section_info =
  let sums =
    Array.of_list (List.map snd (Absint.analyze_section ~max_intervals sec))
  in
  let n = Array.length si.si_funcs in
  let pruned = ref [] in
  let edges =
    List.filter_map
      (fun e ->
        let a = sums.(e.e_from) and b = sums.(e.e_to) in
        let keep =
          List.concat_map
            (fun r ->
              match refute_reason a b r with
              | Some by ->
                pruned :=
                  { p_from = e.e_from; p_to = e.e_to; p_reason = r;
                    p_refuted_by = by }
                  :: !pruned;
                []
              | None -> (
                match r with
                | Summary_limit ->
                  (* Not dischargeable, but nameable: replace the
                     blanket reason with the conflicts the abstract
                     interpretation actually finds (it tracks every
                     global, so it sees past the summary cap). *)
                  let gs, cs = Absint.conflicts a b in
                  if gs = [] && cs = [] then [ r ]
                  else
                    List.map (fun g -> Global_conflict g) gs
                    @ List.map (fun c -> Channel_pair c) cs
                | r -> [ r ]))
            e.reasons
          |> List.sort_uniq (fun a b -> compare (reason_key a) (reason_key b))
        in
        if keep = [] then None else Some { e with reasons = keep })
      si.si_edges
  in
  let pruned = List.rev !pruned in
  (* Levels over the pruned DAG, walked in the original canonical rank
     order (edges only ever point forward in it, and deleting edges
     cannot break that). *)
  let order =
    List.sort
      (fun a b ->
        compare
          (si.si_funcs.(a).fi_scc, a)
          (si.si_funcs.(b).fi_scc, b))
      (List.init n (fun i -> i))
  in
  let depth = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun e ->
          if e.e_to = v then depth.(v) <- max depth.(v) (depth.(e.e_from) + 1))
        edges)
    order;
  let max_depth = Array.fold_left max 0 depth in
  let levels =
    List.init (max_depth + 1) (fun d ->
        List.filter (fun i -> depth.(i) = d) (List.init n (fun i -> i)))
    |> List.filter (fun l -> l <> [])
  in
  (* Globals every write/access pair of which is element-disjoint: the
     W008 false-positive fix downgrades their coupling warning to a
     note.  Pairing is over the functions whose direct effects touch
     the global — the same data W008 itself is computed from. *)
  let touches_directly i g =
    let d = si.si_funcs.(i).fi_direct in
    List.mem g d.greads || List.mem g d.gwrites
  in
  let writes_directly i g = List.mem g si.si_funcs.(i).fi_direct.gwrites in
  let disjoint =
    List.filter_map
      (fun (d : Ast.decl) ->
        let g = d.dname in
        let writers = List.filter (fun i -> writes_directly i g) (List.init n (fun i -> i)) in
        let accessors = List.filter (fun i -> touches_directly i g) (List.init n (fun i -> i)) in
        let coupled =
          writers <> []
          && List.exists (fun i -> not (List.mem i writers) || List.length writers > 1) accessors
        in
        let all_refuted =
          List.for_all
            (fun w ->
              List.for_all
                (fun a ->
                  a = w || Absint.global_conflict_refuted sums.(w) sums.(a) g)
                accessors)
            writers
        in
        if coupled && all_refuted then Some g else None)
      sec.globals
  in
  let funcs =
    Array.mapi
      (fun i fi ->
        {
          fi with
          fi_purity = Some (Absint.summary_purity sums.(i));
          fi_cost = Some sums.(i).Absint.s_cost;
        })
      si.si_funcs
  in
  {
    si with
    si_funcs = funcs;
    si_edges = edges;
    si_levels = levels;
    si_pruned = pruned;
    si_disjoint = disjoint;
  }

let analyze ?(sound = true) ?(max_tracked = 64) ?(absint = true)
    ?(absint_max_intervals = Absint.default_max_intervals) (m : Ast.modul) : t
    =
  {
    dp_module = m.mname;
    dp_sound = sound;
    dp_absint = absint;
    dp_sections =
      List.map
        (fun sec ->
          let si = analyze_section ~sound ~max_tracked sec in
          if absint then
            refine_section ~max_intervals:absint_max_intervals sec si
          else si)
        m.sections;
  }

let section t name =
  List.find_opt (fun s -> s.si_name = name) t.dp_sections

(* --- reachability --- *)

let successors (si : section_info) : int list array =
  let adj = Array.make (Array.length si.si_funcs) [] in
  List.iter (fun e -> adj.(e.e_from) <- e.e_to :: adj.(e.e_from)) si.si_edges;
  adj

let reaches adj i j =
  let seen = Array.make (Array.length adj) false in
  let rec go v =
    v = j
    || List.exists
         (fun u ->
           if seen.(u) then false
           else begin
             seen.(u) <- true;
             go u
           end)
         adj.(v)
  in
  go i

let dependent si i j =
  let adj = successors si in
  reaches adj i j || reaches adj j i

let independent si i j = not (dependent si i j)

let licensed_fraction (si : section_info) : float =
  let n = Array.length si.si_funcs in
  if n < 2 then 1.0
  else begin
    let adj = successors si in
    let dependent_pairs = ref 0 in
    for i = 0 to n - 1 do
      let seen = Array.make n false in
      let rec go v =
        List.iter
          (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              incr dependent_pairs;
              go u
            end)
          adj.(v)
      in
      go i
    done;
    (* Edges only point forward in rank, so each dependent unordered
       pair is counted exactly once (from its lower-ranked end). *)
    let total = n * (n - 1) / 2 in
    1.0 -. (float_of_int !dependent_pairs /. float_of_int total)
  end

let edges_by_name (si : section_info) =
  List.map
    (fun e ->
      ( si.si_funcs.(e.e_from).fi_name,
        si.si_funcs.(e.e_to).fi_name,
        e.reasons ))
    si.si_edges

(* --- compile-cache key derivation ---

   A function's compile-cache key must change exactly when its
   phase-2/3 artifact could: when its own resolved source changes
   ([fi_hash] covers the rendered text, the closed summary and the
   callees' hashes), when any dependence predecessor changes (an edge
   means "compile that first" — its output is an input of this
   compilation), or when the compiler configuration changes (the
   salt).  Folding the predecessors' KEYS (not merely their hashes)
   into the digest closes the derivation over the whole [si_edges]
   ancestry, so a one-function edit invalidates precisely the function
   and its transitive dependents — the invalidation contract
   [Parallel_cc.Cache] documents. *)

let cache_salt ~opt_level ~verify_each =
  Printf.sprintf "warpcc-cache/1:-O%d%s" opt_level
    (if verify_each then ":verify-each" else "")

let cache_keys ~salt (si : section_info) : string array =
  let n = Array.length si.si_funcs in
  let preds = Array.make n [] in
  List.iter (fun e -> preds.(e.e_to) <- e.e_from :: preds.(e.e_to)) si.si_edges;
  let keys = Array.make n "" in
  (* [si_edges] form a DAG by construction, so the recursion grounds
     out; predecessor keys are concatenated in ascending index order
     for determinism. *)
  let rec key i =
    if keys.(i) <> "" then keys.(i)
    else begin
      let pk = List.map key (List.sort_uniq compare preds.(i)) in
      let k =
        Digest.to_hex
          (Digest.string
             (String.concat "\x00" (salt :: si.si_funcs.(i).fi_hash :: pk)))
      in
      keys.(i) <- k;
      k
    end
  in
  Array.init n key

let pruned_by_name (si : section_info) =
  List.map
    (fun p ->
      ( si.si_funcs.(p.p_from).fi_name,
        si.si_funcs.(p.p_to).fi_name,
        p.p_reason,
        p.p_refuted_by ))
    si.si_pruned

let spec_edges_by_name (si : section_info) =
  List.filter_map
    (fun e ->
      if edge_confidence e = Speculative then
        Some (si.si_funcs.(e.e_from).fi_name, si.si_funcs.(e.e_to).fi_name)
      else None)
    si.si_edges

let hot_pairs_by_name (si : section_info) =
  List.map
    (fun (i, j) -> (si.si_funcs.(i).fi_name, si.si_funcs.(j).fi_name))
    si.si_hot

(* --- lint bridge (W008/W009) --- *)

let lint_section (si : section_info) : W2.Diag.t list =
  let couplings =
    Array.to_list si.si_funcs
    |> List.map (fun fi ->
           {
             W2.Lint.c_func = fi.fi_name;
             c_loc = fi.fi_loc;
             c_greads = fi.fi_direct.greads;
             c_gwrites = fi.fi_direct.gwrites;
             c_sends = fi.fi_direct.sends;
             c_recvs = fi.fi_direct.recvs;
           })
  in
  W2.Lint.coupling_warnings ~section:si.si_name ~cells:si.si_cells
    ~disjoint:si.si_disjoint couplings

let lint (t : t) : W2.Diag.t list =
  List.concat_map lint_section t.dp_sections |> W2.Diag.sort

(* --- IR cross-check --- *)

let check_ir_calls (si : section_info) (sec : Midend.Ir.section) :
    Midend.Irverify.violation list =
    let by_name = Hashtbl.create 16 in
    Array.iter
      (fun fi -> Hashtbl.replace by_name fi.fi_name fi)
      si.si_funcs;
    let violations = ref [] in
    let bad ~func ~block msg =
      violations :=
        {
          Midend.Irverify.vi_func = func;
          vi_block = block;
          vi_pass = Some "depan";
          vi_msg = msg;
        }
        :: !violations
    in
    List.iter
      (fun (irf : Midend.Ir.func) ->
        let caller = Hashtbl.find_opt by_name irf.name in
        Array.iteri
          (fun bi (blk : Midend.Ir.block) ->
            List.iter
              (function
                | Midend.Ir.Call (dst, callee, args) -> (
                  match Hashtbl.find_opt by_name callee with
                  | None ->
                    bad ~func:irf.name ~block:bi
                      (Printf.sprintf
                         "IR calls '%s', which is not a function of \
                          section '%s'"
                         callee si.si_name)
                  | Some target ->
                    (match caller with
                    | Some c
                      when not (List.mem callee c.fi_direct.calls) ->
                      bad ~func:irf.name ~block:bi
                        (Printf.sprintf
                           "IR calls '%s' but the source of '%s' never \
                            calls it"
                           callee irf.name)
                    | _ -> ());
                    if List.length args <> target.fi_arity then
                      bad ~func:irf.name ~block:bi
                        (Printf.sprintf
                           "call to '%s' passes %d argument(s); its \
                            source declares %d"
                           callee (List.length args) target.fi_arity);
                    if dst <> None && not target.fi_returns then
                      bad ~func:irf.name ~block:bi
                        (Printf.sprintf
                           "call to '%s' uses a result, but '%s' \
                            returns nothing"
                           callee callee))
                | _ -> ())
              blk.instrs)
          irf.blocks)
      sec.funcs;
    List.rev !violations

(* --- rendering --- *)

let report (t : t) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "module %s: %d section(s), %s analysis%s\n" t.dp_module
    (List.length t.dp_sections)
    (if t.dp_sound then "sound" else "best-effort")
    (if t.dp_absint then " + absint" else "");
  List.iter
    (fun si ->
      let n = Array.length si.si_funcs in
      Printf.bprintf b
        "section %s (cells %d): %d function(s), %d edge(s), %d level(s), \
         %d fixpoint sweep(s), licensed %.2f\n"
        si.si_name si.si_cells n (List.length si.si_edges)
        (List.length si.si_levels)
        si.si_fixpoint_sweeps (licensed_fraction si);
      Array.iter
        (fun fi ->
          let purity =
            match fi.fi_purity with
            | Some p -> " " ^ Absint.purity_to_string p
            | None -> ""
          in
          let cost =
            match fi.fi_cost with
            | Some c -> " cost " ^ Absint.itv_to_string c
            | None -> ""
          in
          Printf.bprintf b "  %-12s scc %d%s%s%s  %s\n" fi.fi_name fi.fi_scc
            (if fi.fi_inlinable then " inlinable" else "")
            purity cost
            (effects_line fi.fi_summary))
        si.si_funcs;
      List.iter
        (fun (from_name, to_name, reasons) ->
          Printf.bprintf b "  %s -> %s  [%s]\n" from_name to_name
            (String.concat ", " (List.map reason_to_string reasons)))
        (edges_by_name si);
      List.iter
        (fun (from_name, to_name, reason, by) ->
          Printf.bprintf b "  %s -/> %s  pruned %s (refuted by %s)\n"
            from_name to_name (reason_to_string reason)
            (refuter_to_string by))
        (pruned_by_name si);
      if si.si_disjoint <> [] then
        Printf.bprintf b "  element-disjoint global(s): %s\n"
          (String.concat ", " si.si_disjoint))
    t.dp_sections;
  Buffer.contents b

let to_dot (t : t) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=box];\n"
    t.dp_module;
  List.iteri
    (fun k si ->
      Printf.bprintf b "  subgraph cluster_%d {\n    label=\"%s (cells %d)\";\n"
        k si.si_name si.si_cells;
      Array.iter
        (fun fi ->
          Printf.bprintf b "    \"%s.%s\" [label=\"%s%s\"];\n" si.si_name
            fi.fi_name fi.fi_name
            (if fi.fi_inlinable then "\\n(inlinable)" else ""))
        si.si_funcs;
      List.iter
        (fun (from_name, to_name, reasons) ->
          Printf.bprintf b "    \"%s.%s\" -> \"%s.%s\" [label=\"%s\"];\n"
            si.si_name from_name si.si_name to_name
            (String.concat "\\n" (List.map reason_to_string reasons)))
        (edges_by_name si);
      List.iter
        (fun (from_name, to_name, reason, by) ->
          Printf.bprintf b
            "    \"%s.%s\" -> \"%s.%s\" [style=dashed, color=gray, \
             label=\"pruned %s\\n(%s)\"];\n"
            si.si_name from_name si.si_name to_name (reason_to_string reason)
            (refuter_to_string by))
        (pruned_by_name si);
      Buffer.add_string b "  }\n")
    t.dp_sections;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- JSON (schema warpcc-analyze/3) --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_strings items =
  "[" ^ String.concat ", "
          (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) items)
  ^ "]"

let json_effects (e : effects) =
  Printf.sprintf
    "{\"global_reads\": %s, \"global_writes\": %s, \"sends\": %s, \
     \"recvs\": %s, \"calls\": %s, \"limited\": %b}"
    (json_strings e.greads) (json_strings e.gwrites)
    (json_strings (List.map Ast.channel_to_string e.sends))
    (json_strings (List.map Ast.channel_to_string e.recvs))
    (json_strings e.calls) e.limited

let json_itv (i : Absint.itv) =
  let bound = function Some n -> string_of_int n | None -> "null" in
  Printf.sprintf "{\"lo\": %s, \"hi\": %s}" (bound i.Absint.lo)
    (bound i.Absint.hi)

let to_json (t : t) : string =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"schema\": \"warpcc-analyze/3\",\n  \"kind\": \"module\",\n\
    \  \"module\": \"%s\",\n\
    \  \"sound\": %b,\n  \"absint\": %b,\n  \"sections\": [\n"
    (json_escape t.dp_module) t.dp_sound t.dp_absint;
  let sections =
    List.map
      (fun si ->
        let funcs =
          Array.to_list si.si_funcs
          |> List.map (fun fi ->
                 Printf.sprintf
                   "        {\"name\": \"%s\", \"index\": %d, \"scc\": %d, \
                    \"arity\": %d, \"returns\": %b, \"inlinable\": %b,\n\
                   \         \"purity\": %s, \"summary_hash\": \"%s\", \
                    \"cost\": %s,\n\
                   \         \"direct\": %s,\n\
                   \         \"summary\": %s}"
                   (json_escape fi.fi_name) fi.fi_index fi.fi_scc fi.fi_arity
                   fi.fi_returns fi.fi_inlinable
                   (match fi.fi_purity with
                   | Some p ->
                     Printf.sprintf "\"%s\"" (Absint.purity_to_string p)
                   | None -> "null")
                   fi.fi_hash
                   (match fi.fi_cost with
                   | Some c -> json_itv c
                   | None -> "null")
                   (json_effects fi.fi_direct)
                   (json_effects fi.fi_summary))
          |> String.concat ",\n"
        in
        let edges =
          List.map
            (fun (from_name, to_name, reasons) ->
              Printf.sprintf
                "        {\"from\": \"%s\", \"to\": \"%s\", \"reasons\": %s}"
                (json_escape from_name) (json_escape to_name)
                (json_strings (List.map reason_to_string reasons)))
            (edges_by_name si)
          |> String.concat ",\n"
        in
        let pruned =
          List.map
            (fun (from_name, to_name, reason, by) ->
              Printf.sprintf
                "        {\"from\": \"%s\", \"to\": \"%s\", \"reason\": \
                 \"%s\", \"refuted_by\": \"%s\"}"
                (json_escape from_name) (json_escape to_name)
                (json_escape (reason_to_string reason))
                (refuter_to_string by))
            (pruned_by_name si)
          |> String.concat ",\n"
        in
        let levels =
          List.map
            (fun level ->
              json_strings
                (List.map (fun i -> si.si_funcs.(i).fi_name) level))
            si.si_levels
          |> String.concat ", "
        in
        Printf.sprintf
          "    {\"name\": \"%s\", \"cells\": %d,\n\
          \     \"functions\": [\n%s\n      ],\n\
          \     \"edges\": [\n%s\n      ],\n\
          \     \"pruned\": [\n%s\n      ],\n\
          \     \"disjoint_globals\": %s,\n\
          \     \"levels\": [%s],\n\
          \     \"fixpoint_sweeps\": %d,\n\
          \     \"licensed_fraction\": %.6f}"
          (json_escape si.si_name) si.si_cells funcs
          (if si.si_edges = [] then "" else edges)
          (if si.si_pruned = [] then "" else pruned)
          (json_strings si.si_disjoint) levels si.si_fixpoint_sweeps
          (licensed_fraction si))
      t.dp_sections
  in
  Buffer.add_string b (String.concat ",\n" sections);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
