(** Interprocedural dependence analysis ("depan") over a checked W2
    module.

    The paper's parallel compiler dispatches functions as independent
    tasks; this analyzer computes how independent they actually are.
    Per section (calls are intra-section by construction) it builds:

    - the call graph, including which call sites the inliner would
      expand — an inlined callee is a {e compile-time} input of its
      caller, not merely a link-time one;
    - per-function effect summaries (section globals read/written,
      channel sends/receives), closed over calls by a bottom-up
      fixpoint on the call graph's strongly connected components;
    - a function-level dependence DAG whose edges carry reasons.  Every
      edge [f -> g] means "compile [f] before [g]".

    Edges are oriented by a canonical rank — SCC condensation order
    (callees first), ties broken by section order — so the result is a
    DAG by construction even though some dependence reasons (global
    conflicts, channel pairing) are symmetric.

    The analyzer reads only the AST: it charges no simulated time and
    runs in phase 1, in the sequential master, before tasks are
    dispatched. *)

type effects = {
  greads : string list; (** section globals read, sorted *)
  gwrites : string list; (** section globals written, sorted *)
  sends : W2.Ast.channel list;
  recvs : W2.Ast.channel list;
  calls : string list; (** user functions called, sorted *)
  limited : bool;
      (** the tracked-global cap was hit; the sets above may be
          incomplete (see the [sound] analysis mode) *)
}

val no_effects : effects

type reason =
  | Inline_of
      (** the target inlines the source, so the source's body is a
          compile-time input of the target *)
  | Sig_agreement
      (** the target calls the source (not inlinably) and must agree
          with its signature; also used to serialize the members of a
          call-graph cycle, which need each other's signatures *)
  | Global_conflict of string
      (** both functions touch the named section global and at least
          one writes it *)
  | Channel_pair of W2.Ast.channel
      (** both functions touch the same systolic channel, so their
          send/receive orders are coupled through the cell array *)
  | Summary_limit
      (** conservative edge added in [sound] mode because one
          endpoint's summary hit the tracked-global cap *)

val reason_to_string : reason -> string

type edge = {
  e_from : int; (** index into [si_funcs]: compile this first *)
  e_to : int;
  reasons : reason list; (** deduplicated, in a fixed display order *)
}

type confidence =
  | Proven
      (** the edge carries a structural reason ([Inline_of] /
          [Sig_agreement]): the source's body or signature is a genuine
          compile-time input of the target, so the order is mandatory *)
  | Speculative
      (** every reason is a data over-approximation ([Global_conflict],
          [Channel_pair], or a blanket [Summary_limit]): the pair may
          be dynamically independent, so a [dag+spec] schedule may
          dispatch past the edge under the commit protocol *)

val edge_confidence : edge -> confidence

val confidence_to_string : confidence -> string
(** ["proven"] / ["speculative"]. *)

type refuter =
  | Refuted_region
      (** the array-region domain proved every write/any-access overlap
          element-disjoint (also covers a fully discharged
          [summary_limit]) *)
  | Refuted_protocol
      (** the channel-protocol domain proved one endpoint performs zero
          operations on the paired channel *)

val refuter_to_string : refuter -> string
(** ["region"] / ["protocol"]. *)

type pruned = {
  p_from : int;
  p_to : int;
  p_reason : reason; (** the refuted reason *)
  p_refuted_by : refuter;
}
(** Provenance of one refuted edge reason.  An edge disappears from
    [si_edges] exactly when {e all} of its reasons are refuted;
    partially refuted edges stay, minus the refuted reasons. *)

type func_info = {
  fi_name : string;
  fi_index : int; (** position in the section, = index in [si_funcs] *)
  fi_loc : W2.Loc.t;
  fi_arity : int;
  fi_returns : bool;
  fi_inlinable : bool; (** by {!W2.Inline.inlinable} at the default cap *)
  fi_scc : int; (** SCC id; lower ids are compiled first (callees) *)
  fi_direct : effects; (** effects of this function's own body *)
  fi_summary : effects; (** closed over everything it calls *)
  fi_hash : string;
      (** stable effect-summary hash (MD5 hex over the function's
          rendered source, its closed summary, and its callees' hashes
          in rank order) — the groundwork for content-addressed
          compilation caching *)
  fi_purity : Absint.purity option;
      (** abstract-interpretation verdict; [None] when absint is off *)
  fi_cost : Absint.itv option;
      (** statically bounded statement executions per call; [None] when
          absint is off *)
}

type section_info = {
  si_name : string;
  si_cells : int;
  si_funcs : func_info array;
  si_edges : edge list; (** sorted by ([e_from], [e_to]) *)
  si_levels : int list list;
      (** antichain levels of the DAG: level 0 has no predecessors,
          level [k] depends on something at level [k-1]; functions in
          the same level are mutually unordered *)
  si_fixpoint_sweeps : int;
      (** total summary sweeps until the SCC fixpoints stabilized *)
  si_pruned : pruned list;
      (** edge reasons the abstract interpretation refuted, in edge
          order; empty when absint is off *)
  si_disjoint : string list;
      (** globals whose every write/access pair is element-disjoint —
          the W008 downgrade set *)
  si_hot : (int * int) list;
      (** function pairs whose {e uncapped} closed summaries really
          share written state or a channel, oriented like edges (lower
          canonical rank first) and sorted — the commit oracle's ground
          truth: a speculative edge over a hot pair must abort when the
          attempt overlapped its predecessor, over a cold pair it
          always commits *)
}

type t = {
  dp_module : string;
  dp_sound : bool;
  dp_absint : bool;
  dp_sections : section_info list;
}

val analyze :
  ?sound:bool ->
  ?max_tracked:int ->
  ?absint:bool ->
  ?absint_max_intervals:int ->
  W2.Ast.modul ->
  t
(** Analyze a semantically checked module.  [sound] (default [true])
    adds {!Summary_limit} edges from any function whose summary hit
    [max_tracked] (default 64) distinct globals, so schedules derived
    from the DAG stay conservative at analysis limits; with
    [~sound:false] such functions simply carry truncated summaries.

    [absint] (default [true]) runs the {!Absint} refinement pass after
    the base analysis: refuted edge reasons move to [si_pruned] (with
    their refuter), surviving [summary_limit] reasons are replaced by
    the targeted conflicts the abstract interpretation can actually
    name, levels and licensed fraction are recomputed over the pruned
    DAG, and [fi_purity]/[fi_cost]/[si_disjoint] are filled in.
    [absint_max_intervals] is the region-domain precision knob
    ({!Absint.default_max_intervals}).  With [~absint:false] the result
    — edges, levels, lints, timings downstream — is bit-identical to
    the pre-absint analyzer. *)

val section : t -> string -> section_info option

val dependent : section_info -> int -> int -> bool
(** Is there a directed path between the two functions (either way)? *)

val independent : section_info -> int -> int -> bool
(** No path either way: the pair may compile in either order with
    bit-identical results, and the pair's interpretations commute. *)

val licensed_fraction : section_info -> float
(** Fraction of unordered function pairs the DAG licenses to run in
    parallel ([1.0] for sections with fewer than two functions) — the
    analysis-side bound on the speedup a DAG-aware schedule can keep. *)

val edges_by_name : section_info -> (string * string * reason list) list
(** [si_edges] with indices resolved to function names. *)

val cache_salt : opt_level:int -> verify_each:bool -> string
(** The configuration salt of the content-addressed compile cache: a
    versioned rendering of every compiler knob that shapes a phase-2/3
    artifact (the optimization level and the per-pass verification
    toggle).  Two compilations may share cache entries only when their
    salts are equal; bump the embedded format version whenever the
    artifact encoding itself changes. *)

val cache_keys : salt:string -> section_info -> string array
(** Content-addressed compile-cache key per function, indexed like
    [si_funcs]: the MD5 of the salt, the function's own {!func_info.fi_hash}
    and — recursively — the keys of its [si_edges] predecessors in
    ascending index order.  Because predecessor {e keys} (not just
    hashes) are folded in, a key changes exactly when the function or
    any of its transitive dependence ancestors changes under the same
    salt: editing one function invalidates precisely that function and
    its transitive dependents, nothing else. *)

val pruned_by_name :
  section_info -> (string * string * reason * refuter) list
(** [si_pruned] with indices resolved to function names. *)

val spec_edges_by_name : section_info -> (string * string) list
(** The {!Speculative} subset of [si_edges], indices resolved to
    function names. *)

val hot_pairs_by_name : section_info -> (string * string) list
(** [si_hot] with indices resolved to function names. *)

val lint_section : section_info -> W2.Diag.t list
(** W008/W009 for one section via {!W2.Lint.coupling_warnings}, fed
    from the direct (not summarized) effects so each warning blames
    the function whose source performs the coupled operation. *)

val lint : t -> W2.Diag.t list
(** {!lint_section} over every section, merged in file order. *)

val check_ir_calls :
  section_info -> Midend.Ir.section -> Midend.Irverify.violation list
(** Cross-check lowered IR against the AST-level call analysis: every
    [Call] instruction must name a function of the section that the
    caller's source also calls, with matching arity, and must not use
    a result the callee does not produce.  Optimizations may {e
    delete} calls, so the check is one-sided (IR calls are a subset of
    AST calls).  Violations carry [vi_pass = Some "depan"]. *)

val report : t -> string
(** Human-readable summary (per section: functions, effects, edges,
    levels, licensed fraction). *)

val to_dot : t -> string
(** Graphviz rendering: one cluster per section, edges labeled with
    their reasons. *)

val to_json : t -> string
(** Machine-readable dump, schema ["warpcc-analyze/3"].  /2 added
    per-function ["purity"], ["summary_hash"] and ["cost"], per-section
    ["pruned"] (with ["refuted_by"] provenance) and
    ["disjoint_globals"], and a top-level ["absint"] flag to the /1
    layout; /3 adds the top-level ["kind"] discriminator (["module"]
    here, ["project"] for {!Modan.to_json}).  The absint fields stay
    present under [--no-absint]: ["pruned"] and ["disjoint_globals"]
    are empty arrays, ["purity"] and ["cost"] are [null]. *)
