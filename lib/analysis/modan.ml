(* Modular cross-module dependence analysis: interface summaries, the
   warpcc-wsi/1 artifact, and the link-time DAG composer.  See the
   interface for the architecture; the load-bearing soundness fact is
   that Absint havocs unresolved calls, so a per-module refinement is
   never less conservative than the whole-program one and composition
   needs no re-refutation pass. *)

open W2

let spf = Printf.sprintf
let md5 s = Digest.to_hex (Digest.string s)

module SS = Set.Make (String)

type func_summary = {
  ws_name : string;
  ws_loc : Loc.t;
  ws_params : Ast.ty list;
  ws_ret : Ast.ty option;
  ws_exported : bool;
  ws_index : int;
  ws_scc : int;
  ws_direct : Depan.effects;
  ws_effects : Depan.effects;
  ws_xcalls : string list;
  ws_hash : string;
  ws_key : string;
  ws_absint : Absint.summary option;
}

type module_summary = {
  ms_module : string;
  ms_file : string;
  ms_section : string;
  ms_cells : int;
  ms_imports : (string * Loc.t * Ast.import_sig list) list;
  ms_exports : (string * Loc.t) list;
  ms_globals : string list;
  ms_disjoint : string list;
  ms_funcs : func_summary array;
  ms_edges : (string * string * Depan.reason list) list;
}

(* ---------- separate analysis ---------- *)

let summarize ?(deps = []) ?sound ?max_tracked ?(absint = true)
    ?absint_max_intervals ?(file = "") (m : Ast.modul) =
  (match m.Ast.sections with
  | [ _ ] -> ()
  | _ -> invalid_arg "Modan.summarize: expected exactly one section");
  let sec = List.hd m.Ast.sections in
  let dp = Depan.analyze ?sound ?max_tracked ~absint ?absint_max_intervals m in
  let si = List.hd dp.Depan.dp_sections in
  let ai =
    if absint then
      Absint.analyze_section ?max_intervals:absint_max_intervals sec
    else []
  in
  let local = Hashtbl.create 16 in
  Array.iter
    (fun fi -> Hashtbl.replace local fi.Depan.fi_name ())
    si.Depan.si_funcs;
  let dep_key = Hashtbl.create 64 in
  List.iter
    (fun d ->
      Array.iter (fun w -> Hashtbl.replace dep_key w.ws_name w.ws_key) d.ms_funcs)
    deps;
  let src_funcs = Array.of_list sec.Ast.funcs in
  let funcs =
    Array.mapi
      (fun i (fi : Depan.func_info) ->
        let f = src_funcs.(i) in
        let xcalls =
          List.filter
            (fun c -> not (Hashtbl.mem local c))
            fi.Depan.fi_summary.Depan.calls
        in
        let key =
          md5
            (String.concat "\n"
               (fi.Depan.fi_hash
               :: List.map
                    (fun x ->
                      match Hashtbl.find_opt dep_key x with
                      | Some k -> k
                      | None -> "unresolved:" ^ x)
                    xcalls))
        in
        {
          ws_name = fi.Depan.fi_name;
          ws_loc = fi.Depan.fi_loc;
          ws_params = List.map (fun (p : Ast.param) -> p.Ast.pty) f.Ast.params;
          ws_ret = f.Ast.ret;
          ws_exported = Ast.exports_function m fi.Depan.fi_name;
          ws_index = fi.Depan.fi_index;
          ws_scc = fi.Depan.fi_scc;
          ws_direct = fi.Depan.fi_direct;
          ws_effects = fi.Depan.fi_summary;
          ws_xcalls = xcalls;
          ws_hash = fi.Depan.fi_hash;
          ws_key = key;
          ws_absint = List.assoc_opt fi.Depan.fi_name ai;
        })
      si.Depan.si_funcs
  in
  {
    ms_module = m.Ast.mname;
    ms_file = file;
    ms_section = sec.Ast.sname;
    ms_cells = sec.Ast.cells;
    ms_imports =
      List.map
        (fun (im : Ast.import_decl) ->
          (im.Ast.im_module, im.Ast.im_loc, im.Ast.im_sigs))
        m.Ast.imports;
    ms_exports =
      List.map
        (fun (e : Ast.export_decl) -> (e.Ast.ex_name, e.Ast.ex_loc))
        m.Ast.exports;
    ms_globals =
      List.sort compare (List.map (fun (d : Ast.decl) -> d.Ast.dname) sec.Ast.globals);
    ms_disjoint = si.Depan.si_disjoint;
    ms_funcs = funcs;
    ms_edges = Depan.edges_by_name si;
  }

(* ---------- the warpcc-wsi/1 artifact ---------- *)

exception Artifact_error of string

let artifact_schema = "warpcc-wsi/1"
let afail fmt = Printf.ksprintf (fun s -> raise (Artifact_error s)) fmt

let rec ty_str = function
  | Ast.Tint -> "int"
  | Ast.Tfloat -> "float"
  | Ast.Tbool -> "bool"
  | Ast.Tarray (n, t) -> spf "array:%d:%s" n (ty_str t)

let ty_parse s =
  let rec go = function
    | "int" :: rest -> (Ast.Tint, rest)
    | "float" :: rest -> (Ast.Tfloat, rest)
    | "bool" :: rest -> (Ast.Tbool, rest)
    | "array" :: n :: rest ->
      let n =
        try int_of_string n with _ -> afail "bad array length %S" n
      in
      let t, rest = go rest in
      (Ast.Tarray (n, t), rest)
    | t -> afail "bad type %S" (String.concat ":" t)
  in
  match go (String.split_on_char ':' s) with
  | t, [] -> t
  | _ -> afail "trailing type tokens in %S" s

let params_str = function
  | [] -> "-"
  | ps -> String.concat "," (List.map ty_str ps)

let params_parse = function
  | "-" -> []
  | s -> List.map ty_parse (String.split_on_char ',' s)

let ret_str = function None -> "unit" | Some t -> ty_str t
let ret_parse = function "unit" -> None | s -> Some (ty_parse s)

let chan_str = Ast.channel_to_string

let chan_parse = function
  | "X" -> Ast.Chan_x
  | "Y" -> Ast.Chan_y
  | s -> afail "bad channel %S" s

let itv_str { Absint.lo; hi } =
  spf "[%s,%s]"
    (match lo with Some n -> string_of_int n | None -> "-inf")
    (match hi with Some n -> string_of_int n | None -> "inf")

let itv_parse s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then afail "bad interval %S" s;
  match String.split_on_char ',' (String.sub s 1 (n - 2)) with
  | [ lo; hi ] ->
    let b inf v = if v = inf then None else
        try Some (int_of_string v) with _ -> afail "bad bound %S" v
    in
    { Absint.lo = b "-inf" lo; hi = b "inf" hi }
  | _ -> afail "bad interval %S" s

let region_str = function
  | Absint.Empty -> "empty"
  | Absint.All -> "all"
  | Absint.Slices l -> String.concat "+" (List.map itv_str l)

let region_parse = function
  | "empty" -> Absint.Empty
  | "all" -> Absint.All
  | s -> Absint.Slices (List.map itv_parse (String.split_on_char '+' s))

let names_str = String.concat ","
let names_parse = function "" -> [] | s -> String.split_on_char ',' s

let chans_str cs = String.concat "," (List.map chan_str cs)
let chans_parse s = List.map chan_parse (names_parse s)

let eff_str (e : Depan.effects) =
  spf "r=%s w=%s s=%s v=%s c=%s lim=%d" (names_str e.Depan.greads)
    (names_str e.Depan.gwrites) (chans_str e.Depan.sends)
    (chans_str e.Depan.recvs) (names_str e.Depan.calls)
    (if e.Depan.limited then 1 else 0)

let eff_parse line =
  let field tok tag =
    let tn = String.length tag in
    if String.length tok < tn + 1 || String.sub tok 0 (tn + 1) <> tag ^ "=" then
      afail "expected %s= in effects line %S" tag line
    else String.sub tok (tn + 1) (String.length tok - tn - 1)
  in
  match String.split_on_char ' ' line with
  | [ r; w; s; v; c; lim ] ->
    {
      Depan.greads = names_parse (field r "r");
      gwrites = names_parse (field w "w");
      sends = chans_parse (field s "s");
      recvs = chans_parse (field v "v");
      calls = names_parse (field c "c");
      limited = field lim "lim" = "1";
    }
  | _ -> afail "bad effects line %S" line

let reason_of_string s =
  let prefixed p =
    let pn = String.length p in
    if String.length s > pn + 1 && String.sub s 0 (pn + 1) = p ^ ":" then
      Some (String.sub s (pn + 1) (String.length s - pn - 1))
    else None
  in
  match s with
  | "inline_of" -> Depan.Inline_of
  | "sig_agreement" -> Depan.Sig_agreement
  | "summary_limit" -> Depan.Summary_limit
  | _ -> (
    match prefixed "global_conflict" with
    | Some g -> Depan.Global_conflict g
    | None -> (
      match prefixed "channel_pair" with
      | Some c -> Depan.Channel_pair (chan_parse c)
      | None -> afail "bad edge reason %S" s))

let loc_str (l : Loc.t) = spf "%d %d %S" l.Loc.line l.Loc.col l.Loc.file

let loc_parse line col file =
  try
    Scanf.sscanf file "%S" (fun f ->
        { Loc.file = f; line = int_of_string line; col = int_of_string col })
  with _ -> afail "bad location %s %s %s" line col file

let to_artifact (ms : module_summary) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" artifact_schema;
  line "module %s" ms.ms_module;
  line "file %S" ms.ms_file;
  line "section %s" ms.ms_section;
  line "cells %d" ms.ms_cells;
  List.iter
    (fun (p, loc, sigs) ->
      line "import %s %s" p (loc_str loc);
      List.iter
        (fun (s : Ast.import_sig) ->
          line "isig %s %s %s %s" s.Ast.is_name (params_str s.Ast.is_params)
            (ret_str s.Ast.is_ret) (loc_str s.Ast.is_loc))
        sigs)
    ms.ms_imports;
  List.iter (fun (e, loc) -> line "export %s %s" e (loc_str loc)) ms.ms_exports;
  List.iter (fun g -> line "global %s" g) ms.ms_globals;
  List.iter (fun g -> line "disjoint %s" g) ms.ms_disjoint;
  Array.iter
    (fun w ->
      line "func %s" w.ws_name;
      line "loc %s" (loc_str w.ws_loc);
      line "sig %s %s" (params_str w.ws_params) (ret_str w.ws_ret);
      line "exported %d" (if w.ws_exported then 1 else 0);
      line "index %d" w.ws_index;
      line "scc %d" w.ws_scc;
      line "direct %s" (eff_str w.ws_direct);
      line "closed %s" (eff_str w.ws_effects);
      line "xcalls %s" (names_str w.ws_xcalls);
      line "hash %s" w.ws_hash;
      line "key %s" w.ws_key;
      (match w.ws_absint with
      | None -> line "absint 0"
      | Some s ->
        line "absint 1";
        line "cost %s" (itv_str s.Absint.s_cost);
        line "chanx %s %s" (itv_str s.Absint.s_x.Absint.cu_send)
          (itv_str s.Absint.s_x.Absint.cu_recv);
        line "chany %s %s" (itv_str s.Absint.s_y.Absint.cu_send)
          (itv_str s.Absint.s_y.Absint.cu_recv);
        List.iter
          (fun (g, r) -> line "reads %s %s" g (region_str r))
          s.Absint.s_reads;
        List.iter
          (fun (g, r) -> line "writes %s %s" g (region_str r))
          s.Absint.s_writes);
      line "endfunc")
    ms.ms_funcs;
  List.iter
    (fun (f, t, rs) ->
      line "edge %s %s %s" f t
        (String.concat "," (List.map Depan.reason_to_string rs)))
    ms.ms_edges;
  line "end";
  Buffer.contents buf

let of_artifact text =
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> afail "truncated artifact"
    | l :: rest ->
      lines := rest;
      l
  in
  let peek () = match !lines with [] -> "" | l :: _ -> l in
  (* one line = tag + space-separated operands; locations are the last
     three operands of their line, with the file %S-quoted (it may
     contain spaces, so it must come last) *)
  let tag_of l =
    match String.index_opt l ' ' with
    | None -> (l, "")
    | Some i ->
      (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
  in
  let words s = match s with "" -> [] | s -> String.split_on_char ' ' s in
  let loc_of_words = function
    | line :: col :: (_ :: _ as file) ->
      loc_parse line col (String.concat " " file)
    | w -> afail "bad location %S" (String.concat " " w)
  in
  let expect tag =
    let t, rest = tag_of (next ()) in
    if t <> tag then afail "expected %S, got %S" tag t else rest
  in
  if next () <> artifact_schema then afail "not a %s artifact" artifact_schema;
  let ms_module = expect "module" in
  let ms_file =
    try Scanf.sscanf (expect "file") "%S" (fun f -> f)
    with _ -> afail "bad file line"
  in
  let ms_section = expect "section" in
  let ms_cells =
    try int_of_string (expect "cells") with _ -> afail "bad cells line"
  in
  let imports = ref [] and exports = ref [] and globals = ref [] in
  let disjoint = ref [] and funcs = ref [] and edges = ref [] in
  let parse_func name =
    let loc = loc_of_words (words (expect "loc")) in
    let params, ret =
      match words (expect "sig") with
      | [ p; r ] -> (params_parse p, ret_parse r)
      | _ -> afail "bad sig line"
    in
    let exported = expect "exported" = "1" in
    let index =
      try int_of_string (expect "index") with _ -> afail "bad index"
    in
    let scc = try int_of_string (expect "scc") with _ -> afail "bad scc" in
    let direct = eff_parse (expect "direct") in
    let closed = eff_parse (expect "closed") in
    let xcalls = names_parse (expect "xcalls") in
    let hash = expect "hash" in
    let key = expect "key" in
    let absint =
      match expect "absint" with
      | "0" -> None
      | "1" ->
        let cost = itv_parse (expect "cost") in
        let cu tagname =
          match words (expect tagname) with
          | [ s; r ] -> { Absint.cu_send = itv_parse s; cu_recv = itv_parse r }
          | _ -> afail "bad %s line" tagname
        in
        let x = cu "chanx" in
        let y = cu "chany" in
        let regs tagname =
          let acc = ref [] in
          let continue = ref true in
          while !continue do
            match tag_of (peek ()) with
            | t, rest when t = tagname -> (
              ignore (next ());
              match words rest with
              | [ g; r ] -> acc := (g, region_parse r) :: !acc
              | _ -> afail "bad %s line" tagname)
            | _ -> continue := false
          done;
          List.rev !acc
        in
        let reads = regs "reads" in
        let writes = regs "writes" in
        Some
          {
            Absint.s_reads = reads;
            s_writes = writes;
            s_x = x;
            s_y = y;
            s_cost = cost;
          }
      | s -> afail "bad absint flag %S" s
    in
    (match next () with
    | "endfunc" -> ()
    | l -> afail "expected endfunc, got %S" l);
    {
      ws_name = name;
      ws_loc = loc;
      ws_params = params;
      ws_ret = ret;
      ws_exported = exported;
      ws_index = index;
      ws_scc = scc;
      ws_direct = direct;
      ws_effects = closed;
      ws_xcalls = xcalls;
      ws_hash = hash;
      ws_key = key;
      ws_absint = absint;
    }
  in
  let finished = ref false in
  while not !finished do
    match tag_of (next ()) with
    | "end", _ -> finished := true
    | "import", rest -> (
      match words rest with
      | p :: (_ :: _ :: _ as locw) ->
        let loc = loc_of_words locw in
        let sigs = ref [] in
        let more = ref true in
        while !more do
          match tag_of (peek ()) with
          | "isig", rest -> (
            ignore (next ());
            match words rest with
            | name :: params :: ret :: (_ :: _ :: _ as locw) ->
              sigs :=
                {
                  Ast.is_name = name;
                  is_params = params_parse params;
                  is_ret = ret_parse ret;
                  is_loc = loc_of_words locw;
                }
                :: !sigs
            | _ -> afail "bad isig line")
          | _ -> more := false
        done;
        imports := (p, loc, List.rev !sigs) :: !imports
      | _ -> afail "bad import line")
    | "export", rest -> (
      match words rest with
      | e :: (_ :: _ :: _ as locw) ->
        exports := (e, loc_of_words locw) :: !exports
      | _ -> afail "bad export line")
    | "global", g -> globals := g :: !globals
    | "disjoint", g -> disjoint := g :: !disjoint
    | "func", name -> funcs := parse_func name :: !funcs
    | "edge", rest -> (
      match words rest with
      | [ f; t; rs ] ->
        edges := (f, t, List.map reason_of_string (names_parse rs)) :: !edges
      | [ f; t ] -> edges := (f, t, []) :: !edges
      | _ -> afail "bad edge line")
    | t, _ -> afail "unexpected line tag %S" t
  done;
  {
    ms_module;
    ms_file;
    ms_section;
    ms_cells;
    ms_imports = List.rev !imports;
    ms_exports = List.rev !exports;
    ms_globals = List.rev !globals;
    ms_disjoint = List.rev !disjoint;
    ms_funcs = Array.of_list (List.rev !funcs);
    ms_edges = List.rev !edges;
  }

(* ---------- link-time composition ---------- *)

exception Link_error of string

let lfail fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type xreason =
  | Local of Depan.reason
  | Import_of
  | Xmodule_global of string
  | Xmodule_channel of Ast.channel
  | Xsummary_limit

let xreason_to_string = function
  | Local r -> Depan.reason_to_string r
  | Import_of -> "import_of"
  | Xmodule_global g -> "xmodule_global:" ^ g
  | Xmodule_channel c -> "xmodule_channel:" ^ chan_str c
  | Xsummary_limit -> "summary_limit"

let xreason_rank = function
  | Local Depan.Inline_of -> (0, "")
  | Local Depan.Sig_agreement -> (1, "")
  | Import_of -> (2, "")
  | Local (Depan.Global_conflict g) -> (3, g)
  | Xmodule_global g -> (4, g)
  | Local (Depan.Channel_pair c) -> (5, chan_str c)
  | Xmodule_channel c -> (6, chan_str c)
  | Local Depan.Summary_limit -> (7, "")
  | Xsummary_limit -> (8, "")

let xreason_proven = function
  | Import_of | Local Depan.Inline_of | Local Depan.Sig_agreement -> true
  | Local (Depan.Global_conflict _)
  | Local (Depan.Channel_pair _)
  | Local Depan.Summary_limit | Xmodule_global _ | Xmodule_channel _
  | Xsummary_limit ->
    false

type xedge = {
  x_from : string;
  x_from_module : string;
  x_to : string;
  x_to_module : string;
  x_reasons : xreason list;
}

let xedge_confidence e =
  if List.exists xreason_proven e.x_reasons then Depan.Proven
  else Depan.Speculative

type xfunc = {
  xf_name : string;
  xf_module : string;
  xf_rank : int;
  xf_exported : bool;
  xf_limited : bool;
}

type link = {
  lk_modules : module_summary list;
  lk_order : string list;
  lk_sccs : string list list;
  lk_missing : (string * string) list;
  lk_funcs : xfunc list;
  lk_edges : xedge list;
  lk_levels : string list list;
  lk_module_levels : string list list;
  lk_licensed : float;
  lk_diags : Diag.t list;
}

(* Per-function cross-module closure over module-qualified globals.
   [aug] records whether anything beyond the module-local summary
   flowed in; intra-module pairs whose closures are purely local are
   left to the per-module analysis (which includes its absint
   refutations — re-deriving them here would undo the pruning). *)
type clo = {
  mutable cr : SS.t; (* qualified "module.global" reads *)
  mutable cw : SS.t;
  mutable cx : bool; (* may operate on channel X *)
  mutable cy : bool;
  mutable clim : bool;
  mutable aug : bool;
}

let compose (modules : module_summary list) : link =
  let mods = Array.of_list modules in
  let nm = Array.length mods in
  let mod_idx = Hashtbl.create 64 in
  Array.iteri
    (fun i m ->
      if Hashtbl.mem mod_idx m.ms_module then
        lfail "duplicate module '%s' in the link" m.ms_module;
      Hashtbl.replace mod_idx m.ms_module i)
    mods;
  let def_of = Hashtbl.create 256 in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun j w ->
          if Hashtbl.mem def_of w.ws_name then
            lfail "duplicate function '%s' across the link" w.ws_name;
          Hashtbl.replace def_of w.ws_name (i, j))
        m.ms_funcs)
    mods;
  (* module condensation: Tarjan over importer -> provider edges.  An
     SCC pops only after every SCC it reaches (its providers), so SCC
     ids ascend from providers to importers and double as the
     condensation's topological rank. *)
  let providers i =
    List.filter_map
      (fun (p, _, _) -> Hashtbl.find_opt mod_idx p)
      mods.(i).ms_imports
  in
  let idx = Array.make nm (-1) in
  let low = Array.make nm 0 in
  let onstack = Array.make nm false in
  let scc_of = Array.make nm (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let nscc = ref 0 in
  let sccs_rev = ref [] in
  let rec strongconnect v =
    idx.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if onstack.(w) then low.(v) <- min low.(v) idx.(w))
      (providers v);
    if low.(v) = idx.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          onstack.(w) <- false;
          scc_of.(w) <- !nscc;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      let comp = List.sort compare (pop []) in
      sccs_rev := comp :: !sccs_rev;
      incr nscc
    end
  in
  for v = 0 to nm - 1 do
    if idx.(v) < 0 then strongconnect v
  done;
  let mod_rank = Array.make nm 0 in
  let order =
    List.sort
      (fun a b -> compare (scc_of.(a), a) (scc_of.(b), b))
      (List.init nm (fun i -> i))
  in
  List.iteri (fun r i -> mod_rank.(i) <- r) order;
  let lk_order = List.map (fun i -> mods.(i).ms_module) order in
  let lk_sccs =
    List.filter_map
      (fun comp ->
        if List.length comp > 1 then
          Some (List.map (fun i -> mods.(i).ms_module) comp)
        else None)
      (List.rev !sccs_rev)
  in
  (* global function ranks: modules in condensation order, functions in
     their module's own canonical order (local SCC id, then section
     index) — so every per-module edge already points low -> high *)
  let nfuncs = Array.fold_left (fun a m -> a + Array.length m.ms_funcs) 0 mods in
  let fmod = Array.make nfuncs 0 (* module index *) in
  let fsum = Array.make nfuncs None in
  let rank_of = Hashtbl.create 256 in
  let next_rank = ref 0 in
  List.iter
    (fun i ->
      let locals =
        List.sort
          (fun a b -> compare (a.ws_scc, a.ws_index) (b.ws_scc, b.ws_index))
          (Array.to_list mods.(i).ms_funcs)
      in
      List.iter
        (fun w ->
          fmod.(!next_rank) <- i;
          fsum.(!next_rank) <- Some w;
          Hashtbl.replace rank_of w.ws_name !next_rank;
          incr next_rank)
        locals)
    order;
  let fsum r = match fsum.(r) with Some w -> w | None -> assert false in
  (* cross-module effect closure over qualified globals *)
  let qualify mi names =
    SS.of_list (List.map (fun g -> mods.(mi).ms_module ^ "." ^ g) names)
  in
  let clos =
    Array.init nfuncs (fun r ->
        let w = fsum r in
        let mi = fmod.(r) in
        let e = w.ws_effects in
        let has c l = List.mem c l in
        {
          cr = qualify mi e.Depan.greads;
          cw = qualify mi e.Depan.gwrites;
          cx = has Ast.Chan_x e.Depan.sends || has Ast.Chan_x e.Depan.recvs;
          cy = has Ast.Chan_y e.Depan.sends || has Ast.Chan_y e.Depan.recvs;
          clim = e.Depan.limited;
          aug = false;
        })
  in
  let missing = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    for r = 0 to nfuncs - 1 do
      let w = fsum r in
      let c = clos.(r) in
      List.iter
        (fun x ->
          match Hashtbl.find_opt rank_of x with
          | None ->
            Hashtbl.replace missing (mods.(fmod.(r)).ms_module, x) ();
            if not (c.clim && c.aug) then begin
              c.clim <- true;
              c.aug <- true;
              changed := true
            end
          | Some r' ->
            let d = clos.(r') in
            let before = (SS.cardinal c.cr, SS.cardinal c.cw, c.cx, c.cy, c.clim, c.aug) in
            c.cr <- SS.union c.cr d.cr;
            c.cw <- SS.union c.cw d.cw;
            c.cx <- c.cx || d.cx;
            c.cy <- c.cy || d.cy;
            c.clim <- c.clim || d.clim;
            c.aug <- true;
            if
              before
              <> (SS.cardinal c.cr, SS.cardinal c.cw, c.cx, c.cy, c.clim, c.aug)
            then changed := true)
        w.ws_xcalls
    done
  done;
  let lk_missing =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) missing [])
  in
  (* edge accumulation, keyed and oriented by rank *)
  let edge_tbl : (int * int, xreason list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let add_edge a b reason =
    if a <> b then begin
      let key = if a < b then (a, b) else (b, a) in
      match Hashtbl.find_opt edge_tbl key with
      | Some rs -> if not (List.mem reason !rs) then rs := reason :: !rs
      | None -> Hashtbl.replace edge_tbl key (ref [ reason ])
    end
  in
  (* (a) the modules' own edges, carried over *)
  Array.iter
    (fun m ->
      List.iter
        (fun (f, t, rs) ->
          match (Hashtbl.find_opt rank_of f, Hashtbl.find_opt rank_of t) with
          | Some a, Some b -> List.iter (fun r -> add_edge a b (Local r)) rs
          | _ -> lfail "module '%s' has an edge over unknown functions" m.ms_module)
        m.ms_edges)
    mods;
  (* (b) import_of at direct cross-module call boundaries *)
  for r = 0 to nfuncs - 1 do
    let w = fsum r in
    let local = mods.(fmod.(r)) in
    let defined_here n =
      Array.exists (fun v -> v.ws_name = n) local.ms_funcs
    in
    List.iter
      (fun callee ->
        if not (defined_here callee) then
          match Hashtbl.find_opt rank_of callee with
          | Some r' -> add_edge r' r Import_of
          | None -> ())
      w.ws_direct.Depan.calls
  done;
  (* (c) data conflicts over closed qualified summaries.  Same-module
     pairs are only considered when a closure was augmented — otherwise
     the per-module analysis (absint pruning included) is authoritative
     for the pair. *)
  let consider a b =
    fmod.(a) <> fmod.(b) || clos.(a).aug || clos.(b).aug
  in
  let writers = Hashtbl.create 256 (* qualified global -> rank list *) in
  let accessors = Hashtbl.create 256 in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some l -> l := v :: !l
    | None -> Hashtbl.replace tbl k (ref [ v ])
  in
  for r = 0 to nfuncs - 1 do
    let c = clos.(r) in
    SS.iter
      (fun g ->
        push writers g r;
        push accessors g r)
      c.cw;
    SS.iter (fun g -> if not (SS.mem g c.cw) then push accessors g r) c.cr
  done;
  Hashtbl.iter
    (fun g ws ->
      let accs = match Hashtbl.find_opt accessors g with
        | Some l -> !l
        | None -> []
      in
      List.iter
        (fun w ->
          List.iter
            (fun a ->
              if w <> a && consider w a then
                add_edge w a (Xmodule_global g))
            accs)
        !ws)
    writers;
  let chan_pairs get chan =
    let touchers = ref [] in
    for r = nfuncs - 1 downto 0 do
      if get clos.(r) then touchers := r :: !touchers
    done;
    let ts = !touchers in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if j > i && consider a b then add_edge a b (Xmodule_channel chan))
          ts)
      ts
  in
  chan_pairs (fun c -> c.cx) Ast.Chan_x;
  chan_pairs (fun c -> c.cy) Ast.Chan_y;
  (* (d) blanket pins for limited closures, against every function of
     every other module — the cross-module analogue of sound mode's
     sibling pinning *)
  for r = 0 to nfuncs - 1 do
    if clos.(r).clim && clos.(r).aug then
      for r' = 0 to nfuncs - 1 do
        if fmod.(r') <> fmod.(r) then add_edge r r' Xsummary_limit
      done
  done;
  let lk_edges =
    Hashtbl.fold (fun k rs acc -> (k, !rs) :: acc) edge_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun ((a, b), rs) ->
           let wa = fsum a and wb = fsum b in
           {
             x_from = wa.ws_name;
             x_from_module = mods.(fmod.(a)).ms_module;
             x_to = wb.ws_name;
             x_to_module = mods.(fmod.(b)).ms_module;
             x_reasons =
               List.sort_uniq
                 (fun x y -> compare (xreason_rank x) (xreason_rank y))
                 rs;
           })
  in
  (* levels, licensed fraction, func list *)
  let preds = Array.make nfuncs [] in
  let succs = Array.make nfuncs [] in
  Hashtbl.iter
    (fun (a, b) _ ->
      preds.(b) <- a :: preds.(b);
      succs.(a) <- b :: succs.(a))
    edge_tbl;
  let level = Array.make nfuncs 0 in
  for r = 0 to nfuncs - 1 do
    level.(r) <-
      List.fold_left (fun acc p -> max acc (level.(p) + 1)) 0 preds.(r)
  done;
  let max_level = Array.fold_left max 0 level in
  let lk_levels =
    List.init (max_level + 1) (fun l ->
        let names = ref [] in
        for r = nfuncs - 1 downto 0 do
          if level.(r) = l then names := (fsum r).ws_name :: !names
        done;
        !names)
    |> List.filter (fun l -> l <> [])
  in
  let mlevel = Array.make nm 0 in
  List.iter
    (fun i ->
      mlevel.(i) <-
        List.fold_left
          (fun acc p -> if scc_of.(p) <> scc_of.(i) then max acc (mlevel.(p) + 1) else acc)
          0 (providers i))
    order;
  let max_mlevel = Array.fold_left max 0 mlevel in
  let lk_module_levels =
    List.init (max_mlevel + 1) (fun l ->
        List.filter_map
          (fun i -> if mlevel.(i) = l then Some mods.(i).ms_module else None)
          order)
    |> List.filter (fun l -> l <> [])
  in
  let dependent_pairs = ref 0 in
  let seen = Bytes.create nfuncs in
  for r = 0 to nfuncs - 1 do
    Bytes.fill seen 0 nfuncs '\000';
    let rec visit v =
      List.iter
        (fun s ->
          if Bytes.get seen s = '\000' then begin
            Bytes.set seen s '\001';
            incr dependent_pairs;
            visit s
          end)
        succs.(v)
    in
    visit r
  done;
  let total_pairs = nfuncs * (nfuncs - 1) / 2 in
  let lk_licensed =
    if total_pairs = 0 then 1.0
    else 1.0 -. (float_of_int !dependent_pairs /. float_of_int total_pairs)
  in
  let lk_funcs =
    List.init nfuncs (fun r ->
        let w = fsum r in
        {
          xf_name = w.ws_name;
          xf_module = mods.(fmod.(r)).ms_module;
          xf_rank = r;
          xf_exported = w.ws_exported;
          xf_limited = clos.(r).clim;
        })
  in
  (* ---- cross-module lints ---- *)
  let diags = ref [] in
  let warn ?func ~code ~loc msg =
    diags := Diag.make ?func ~code ~severity:Diag.Warning ~loc msg :: !diags
  in
  (* W010: import declarations vs the link *)
  Array.iter
    (fun m ->
      List.iter
        (fun (p, iloc, sigs) ->
          match Hashtbl.find_opt mod_idx p with
          | None ->
            warn ~code:"W010" ~loc:iloc
              (spf "import from module '%s', which is not part of the link" p)
          | Some pi ->
            List.iter
              (fun (s : Ast.import_sig) ->
                match Hashtbl.find_opt def_of s.Ast.is_name with
                | None ->
                  warn ~code:"W010" ~loc:s.Ast.is_loc
                    (spf "imported function '%s' is not defined by any module of the link"
                       s.Ast.is_name)
                | Some (di, dj) ->
                  let d = mods.(di).ms_funcs.(dj) in
                  if di <> pi then
                    warn ~code:"W010" ~loc:s.Ast.is_loc
                      (spf "imported function '%s' is defined by module '%s', not '%s'"
                         s.Ast.is_name mods.(di).ms_module p)
                  else if not d.ws_exported then
                    warn ~code:"W010" ~loc:s.Ast.is_loc
                      (spf "function '%s' is not exported by module '%s'"
                         s.Ast.is_name p)
                  else if d.ws_params <> s.Ast.is_params || d.ws_ret <> s.Ast.is_ret
                  then
                    warn ~code:"W010" ~loc:s.Ast.is_loc
                      (spf
                         "signature mismatch for '%s': import says (%s) : %s but '%s' defines (%s) : %s"
                         s.Ast.is_name
                         (String.concat ", " (List.map ty_str s.Ast.is_params))
                         (ret_str s.Ast.is_ret) p
                         (String.concat ", " (List.map ty_str d.ws_params))
                         (ret_str d.ws_ret)))
              sigs)
        m.ms_imports)
    mods;
  (* W011: cross-module write to a global another module localizes *)
  let global_owners = Hashtbl.create 64 in
  Array.iteri
    (fun i m -> List.iter (fun g -> push global_owners g i) m.ms_globals)
    mods;
  let w011_seen = Hashtbl.create 16 in
  Array.iteri
    (fun i m ->
      Array.iter
        (fun w ->
          List.iter
            (fun g ->
              match Hashtbl.find_opt global_owners g with
              | Some owners ->
                List.iter
                  (fun o ->
                    if o <> i && not (Hashtbl.mem w011_seen (i, g, o)) then begin
                      Hashtbl.replace w011_seen (i, g, o) ();
                      warn ~func:w.ws_name ~code:"W011" ~loc:w.ws_loc
                        (spf
                           "write to global '%s', which module '%s' also localizes; section globals are per-module state — rename one to avoid confusion"
                           g mods.(o).ms_module)
                    end)
                  (List.rev !owners)
              | None -> ())
            w.ws_direct.Depan.gwrites)
        m.ms_funcs)
    mods;
  (* W012: dead exports *)
  let imported_names = Hashtbl.create 256 in
  Array.iter
    (fun m ->
      List.iter
        (fun (_, _, sigs) ->
          List.iter
            (fun (s : Ast.import_sig) ->
              Hashtbl.replace imported_names s.Ast.is_name ())
            sigs)
        m.ms_imports)
    mods;
  Array.iter
    (fun m ->
      List.iter
        (fun (e, eloc) ->
          if not (Hashtbl.mem imported_names e) then
            warn ~code:"W012" ~loc:eloc
              (spf "exported function '%s' is never imported in this link" e))
        m.ms_exports)
    mods;
  {
    lk_modules = modules;
    lk_order;
    lk_sccs;
    lk_missing;
    lk_funcs;
    lk_edges;
    lk_levels;
    lk_module_levels;
    lk_licensed;
    lk_diags = Diag.sort !diags;
  }

let func_deps link = List.map (fun e -> (e.x_from, e.x_to)) link.lk_edges

let spec_deps link =
  List.filter_map
    (fun e ->
      if xedge_confidence e = Depan.Speculative then Some (e.x_from, e.x_to)
      else None)
    link.lk_edges

(* ---------- whole-program reference ---------- *)

let inline_project ?(name = "linked") (modules : Ast.modul list) : Ast.modul =
  if modules = [] then invalid_arg "Modan.inline_project: empty project";
  List.iter
    (fun (m : Ast.modul) ->
      match m.Ast.sections with
      | [ _ ] -> ()
      | _ ->
        invalid_arg
          (spf "Modan.inline_project: module '%s' must have exactly one section"
             m.Ast.mname))
    modules;
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (m : Ast.modul) ->
      List.iter
        (fun (f : Ast.func) ->
          if Hashtbl.mem seen f.Ast.fname then
            invalid_arg
              (spf "Modan.inline_project: duplicate function '%s'" f.Ast.fname);
          Hashtbl.replace seen f.Ast.fname ())
        (List.hd m.Ast.sections).Ast.funcs)
    modules;
  let rename_func rename (f : Ast.func) =
    (* parameters and locals shadow section globals (W2 scoping is
       function-level: no block scoping, and for-variables are declared
       locals), so shadowed names stay untouched *)
    let shadow =
      SS.of_list
        (List.map (fun (p : Ast.param) -> p.Ast.pname) f.Ast.params
        @ List.map (fun (d : Ast.decl) -> d.Ast.dname) f.Ast.locals)
    in
    let rn v =
      if SS.mem v shadow then v
      else match Hashtbl.find_opt rename v with Some v' -> v' | None -> v
    in
    let rec rx (e : Ast.expr) =
      {
        e with
        Ast.e =
          (match e.Ast.e with
          | Ast.Var v -> Ast.Var (rn v)
          | Ast.Index (v, i) -> Ast.Index (rn v, rx i)
          | Ast.Unary (o, a) -> Ast.Unary (o, rx a)
          | Ast.Binary (o, a, b) -> Ast.Binary (o, rx a, rx b)
          | Ast.Call (f, args) -> Ast.Call (f, List.map rx args)
          | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _) as n -> n);
      }
    in
    let rlv = function
      | Ast.Lvar v -> Ast.Lvar (rn v)
      | Ast.Lindex (v, i) -> Ast.Lindex (rn v, rx i)
    in
    let rec rs (s : Ast.stmt) =
      {
        s with
        Ast.s =
          (match s.Ast.s with
          | Ast.Assign (lv, e) -> Ast.Assign (rlv lv, rx e)
          | Ast.If (c, t, f) -> Ast.If (rx c, List.map rs t, List.map rs f)
          | Ast.While (c, b) -> Ast.While (rx c, List.map rs b)
          | Ast.For (v, lo, hi, b) -> Ast.For (v, rx lo, rx hi, List.map rs b)
          | Ast.Send (c, e) -> Ast.Send (c, rx e)
          | Ast.Receive (c, lv) -> Ast.Receive (c, rlv lv)
          | Ast.Return e -> Ast.Return (Option.map rx e)
          | Ast.Call_stmt (f, args) -> Ast.Call_stmt (f, List.map rx args));
      }
    in
    { f with Ast.body = List.map rs f.Ast.body }
  in
  let globals = ref [] and funcs = ref [] and cells = ref 1 in
  List.iter
    (fun (m : Ast.modul) ->
      let sec = List.hd m.Ast.sections in
      cells := max !cells sec.Ast.cells;
      let rename = Hashtbl.create 8 in
      List.iter
        (fun (d : Ast.decl) ->
          Hashtbl.replace rename d.Ast.dname (m.Ast.mname ^ "__" ^ d.Ast.dname))
        sec.Ast.globals;
      List.iter
        (fun (d : Ast.decl) ->
          globals :=
            { d with Ast.dname = m.Ast.mname ^ "__" ^ d.Ast.dname } :: !globals)
        sec.Ast.globals;
      List.iter (fun f -> funcs := rename_func rename f :: !funcs) sec.Ast.funcs)
    modules;
  {
    Ast.mname = name;
    imports = [];
    exports = [];
    sections =
      [
        {
          Ast.sname = "linked";
          cells = !cells;
          globals = List.rev !globals;
          funcs = List.rev !funcs;
          secloc = Loc.dummy;
        };
      ];
    mloc = Loc.dummy;
  }

(* ---------- output ---------- *)

let report link =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let nfuncs = List.length link.lk_funcs in
  line "link: %d modules, %d functions" (List.length link.lk_modules) nfuncs;
  line "order: %s" (String.concat " " link.lk_order);
  if link.lk_sccs <> [] then
    List.iter
      (fun scc -> line "import cycle: %s" (String.concat " " scc))
      link.lk_sccs;
  List.iter
    (fun (m, f) -> line "missing: %s imports undefined '%s'" m f)
    link.lk_missing;
  List.iter
    (fun (m : module_summary) ->
      line "  module %s: %d functions, %d exports, %d local edges"
        m.ms_module (Array.length m.ms_funcs)
        (List.length m.ms_exports) (List.length m.ms_edges))
    link.lk_modules;
  let cross =
    List.filter (fun e -> e.x_from_module <> e.x_to_module) link.lk_edges
  in
  line "edges: %d (%d cross-module)" (List.length link.lk_edges)
    (List.length cross);
  List.iter
    (fun e ->
      line "  %s -> %s [%s]" e.x_from e.x_to
        (String.concat ", " (List.map xreason_to_string e.x_reasons)))
    cross;
  line "levels: %d (modules: %d)" (List.length link.lk_levels)
    (List.length link.lk_module_levels);
  line "licensed fraction: %.3f" link.lk_licensed;
  List.iter (fun d -> line "%s" (Diag.to_string d)) link.lk_diags;
  Buffer.contents buf

let to_dot link =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "digraph link {";
  line "  rankdir=LR;";
  line "  node [shape=box, fontsize=10];";
  List.iteri
    (fun i (m : module_summary) ->
      line "  subgraph cluster_%d {" i;
      line "    label=%S;" m.ms_module;
      Array.iter
        (fun w ->
          line "    %S [style=%s];" w.ws_name
            (if w.ws_exported then "bold" else "solid"))
        m.ms_funcs;
      line "  }")
    link.lk_modules;
  List.iter
    (fun e ->
      let style =
        if xedge_confidence e = Depan.Speculative then ", style=dashed" else ""
      in
      line "  %S -> %S [label=%S%s];" e.x_from e.x_to
        (String.concat "\\n" (List.map xreason_to_string e.x_reasons))
        style)
    link.lk_edges;
  line "}";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (spf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_strings l =
  "[" ^ String.concat ", " (List.map (fun s -> spf "\"%s\"" (json_escape s)) l) ^ "]"

let to_json link =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"warpcc-analyze/3\",\n  \"kind\": \"project\",\n";
  add "  \"modules\": [\n";
  List.iteri
    (fun i (m : module_summary) ->
      add "    {\"name\": \"%s\", \"file\": \"%s\", \"section\": \"%s\", \"cells\": %d,\n"
        (json_escape m.ms_module) (json_escape m.ms_file)
        (json_escape m.ms_section) m.ms_cells;
      add "     \"globals\": %s,\n" (json_strings m.ms_globals);
      add "     \"exports\": %s,\n"
        (json_strings (List.map fst m.ms_exports));
      add "     \"functions\": [\n";
      Array.iteri
        (fun j w ->
          add
            "       {\"name\": \"%s\", \"exported\": %b, \"xcalls\": %s, \"summary_hash\": \"%s\", \"key\": \"%s\"}%s\n"
            (json_escape w.ws_name) w.ws_exported (json_strings w.ws_xcalls)
            w.ws_hash w.ws_key
            (if j = Array.length m.ms_funcs - 1 then "" else ","))
        m.ms_funcs;
      add "     ],\n";
      add "     \"local_edges\": [%s]}%s\n"
        (String.concat ", "
           (List.map
              (fun (f, t, rs) ->
                spf "{\"from\": \"%s\", \"to\": \"%s\", \"reasons\": %s}"
                  (json_escape f) (json_escape t)
                  (json_strings (List.map Depan.reason_to_string rs)))
              m.ms_edges))
        (if i = List.length link.lk_modules - 1 then "" else ","))
    link.lk_modules;
  add "  ],\n";
  add "  \"order\": %s,\n" (json_strings link.lk_order);
  add "  \"sccs\": [%s],\n"
    (String.concat ", " (List.map json_strings link.lk_sccs));
  add "  \"missing\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun (m, f) -> spf "[\"%s\", \"%s\"]" (json_escape m) (json_escape f))
          link.lk_missing));
  add "  \"edges\": [\n";
  List.iteri
    (fun i e ->
      add
        "    {\"from\": \"%s\", \"from_module\": \"%s\", \"to\": \"%s\", \"to_module\": \"%s\", \"confidence\": \"%s\", \"reasons\": %s}%s\n"
        (json_escape e.x_from) (json_escape e.x_from_module)
        (json_escape e.x_to) (json_escape e.x_to_module)
        (Depan.confidence_to_string (xedge_confidence e))
        (json_strings (List.map xreason_to_string e.x_reasons))
        (if i = List.length link.lk_edges - 1 then "" else ","))
    link.lk_edges;
  add "  ],\n";
  add "  \"levels\": [%s],\n"
    (String.concat ", " (List.map json_strings link.lk_levels));
  add "  \"module_levels\": [%s],\n"
    (String.concat ", " (List.map json_strings link.lk_module_levels));
  add "  \"licensed_fraction\": %.6f,\n" link.lk_licensed;
  add "  \"diagnostics\": [\n";
  List.iteri
    (fun i (d : Diag.t) ->
      add
        "    {\"code\": \"%s\", \"severity\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \"function\": %s, \"message\": \"%s\"}%s\n"
        d.Diag.d_code
        (Diag.severity_to_string d.Diag.d_severity)
        (json_escape d.Diag.d_loc.Loc.file) d.Diag.d_loc.Loc.line
        d.Diag.d_loc.Loc.col
        (match d.Diag.d_func with
        | Some f -> spf "\"%s\"" (json_escape f)
        | None -> "null")
        (json_escape d.Diag.d_message)
        (if i = List.length link.lk_diags - 1 then "" else ","))
    link.lk_diags;
  add "  ]\n}\n";
  Buffer.contents buf
