(** Flow- and field-sensitive abstract interpretation over the W2 AST.

    {!Depan} licenses parallel compilation from flow-{e insensitive}
    effect summaries: any two functions touching the same section
    global draw a [global_conflict] edge even when their accesses are
    provably disjoint, and any two functions whose text mentions a
    channel draw a [channel_pair] edge even when the channel operation
    is dead.  This module sharpens those proofs with three cooperating
    abstract domains:

    - an {b array-region domain} — per-global may-read/may-write
      element sets represented as unions of integer intervals, widened
      on loops — that turns element-disjoint accesses into refuted
      conflicts;
    - a {b channel-protocol domain} — send/receive multiplicity
      intervals per systolic channel — that refutes channel pairings
      whose operations can never execute;
    - a {b static cost domain} — loop-bound × body-cost intervals —
      that bounds how many statement executions a call of the function
      can perform, a statically derived stand-in for the dynamic
      compile-cost signal the scheduler ranks by.

    The interpretation is flow-sensitive (constant conditions prune
    branches, counted loops contribute trip-count intervals) and
    interprocedurally closed by a fixpoint with widening, so recursion
    terminates at [top] instead of diverging.  Everything here
    over-approximates: a refutation ("these regions are disjoint",
    "this channel is silent") holds on every execution, which is what
    lets {!Depan} delete the corresponding edge soundly. *)

(** {1 Intervals} *)

type itv = { lo : int option; hi : int option }
(** Integer interval; [None] bounds are -/+infinity.  Invariant: when
    both bounds are finite, [lo <= hi]. *)

val itv_const : int -> itv
val itv_top : itv
val itv_zero : itv
val itv_join : itv -> itv -> itv
val itv_widen : itv -> itv -> itv
(** [itv_widen old fresh]: bounds that moved since [old] jump to
    infinity, guaranteeing fixpoint termination. *)

val itv_equal : itv -> itv -> bool
val itv_to_string : itv -> string
(** ["[0,7]"], ["[1,+inf)"], ... *)

(** {1 Array regions} *)

type region =
  | Empty  (** no element accessed *)
  | Slices of itv list  (** union of element-index intervals, sorted,
                            non-overlapping, non-adjacent *)
  | All  (** whole object (every scalar access; the widened top) *)

val region_union : max_intervals:int -> region -> region -> region
(** Normalized union; more than [max_intervals] disjoint slices widen
    to {!All} (the [--absint-max-intervals] precision knob). *)

val regions_disjoint : region -> region -> bool
(** No element is in both regions — the refutation {!Depan} needs to
    prune a [global_conflict] edge. *)

val region_equal : region -> region -> bool
val region_to_string : region -> string

(** {1 Function summaries} *)

type chan_use = {
  cu_send : itv;  (** how many sends one call may perform *)
  cu_recv : itv;
}

type purity = Pure | Read_only | Effectful

val purity_to_string : purity -> string
(** ["pure"] / ["read_only"] / ["effectful"]. *)

type summary = {
  s_reads : (string * region) list;
      (** per section global, sorted by name; absent means {!Empty} *)
  s_writes : (string * region) list;
  s_x : chan_use;
  s_y : chan_use;
  s_cost : itv;
      (** abstract statement executions of one call, calls included *)
}

val read_region : summary -> string -> region
val write_region : summary -> string -> region
val access_region : summary -> string -> region
(** Union of read and write regions (already normalized). *)

val chan_silent : summary -> W2.Ast.channel -> bool
(** The function provably performs zero operations on the channel:
    both multiplicity upper bounds are 0.  Refutes [channel_pair]. *)

val summary_purity : summary -> purity
(** {!Pure} when the summary proves no global access and silent
    channels; {!Read_only} when only reads remain. *)

val conflict_free : summary -> summary -> bool
(** No global with a write/any-access overlap between the two
    summaries and no channel both can touch — the targeted discharge
    of a blanket [summary_limit] edge. *)

val conflicts : summary -> summary -> string list * W2.Ast.channel list
(** The couplings that are {e not} refuted: globals whose
    write/any-access overlap survives and channels both functions may
    operate on.  [conflict_free a b] iff both lists are empty. *)

val global_conflict_refuted : summary -> summary -> string -> bool
(** Both write-vs-access overlaps on the named global are refuted by
    disjoint regions. *)

val cost_units : itv -> int
(** A scalar estimate from a cost interval: the midpoint, or [4 × lo]
    when the upper bound is infinite (an unbounded loop still dominates
    a straight line).  Always at least 1. *)

val summary_to_string : summary -> string
(** One-line canonical rendering — also the stable fingerprint input
    for effect-summary hashes. *)

(** {1 Analysis} *)

val default_max_intervals : int
(** 8 — the default [--absint-max-intervals]. *)

val analyze_section :
  ?max_intervals:int -> W2.Ast.section -> (string * summary) list
(** One summary per function, in section order, interprocedurally
    closed over intra-section calls (widened on recursion).  Parameters
    are unknown ([top]), so summaries are context-insensitive and a
    single fixpoint serves every call site. *)
