(** Discrete-event simulation engine with lightweight processes.

    Processes are ordinary OCaml functions running under an effect
    handler; {!delay} suspends a process for simulated time, {!suspend}
    parks it until an explicit wake-up.  Events at equal times fire in
    creation order, so simulations are deterministic.

    The engine knows nothing about networks or workstations — those are
    built on top in {!Sync}, {!Net} and {!Host}. *)

type t
(** A simulation instance: virtual clock plus pending-event queue. *)

val create : unit -> t
(** A fresh simulation at time [0.]. *)

val now : t -> float
(** Current virtual time in seconds. *)

val events_processed : t -> int
(** Events fired so far — a cheap health metric for the observability
    layer (one traced run's simulation effort). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Run a callback at absolute virtual time [at].
    @raise Invalid_argument if [at] is in the past. *)

val delay : float -> unit
(** Suspend the calling process for the given number of simulated
    seconds.  Must be performed inside a process started by {!spawn}.
    @raise Invalid_argument on negative durations. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process; [register] receives a
    [wake] function that resumes it (delivering a value) at the
    simulation time at which [wake] is called.  [wake] must be called
    exactly once. *)

exception Dead_process of string
(** Raised when a process is woken twice. *)

val spawn : t -> (unit -> unit) -> unit
(** Start a new process at the current simulation time. *)

val run : ?until:float -> t -> float
(** Process events until the queue drains (or until the given virtual
    time); returns the final simulation time. *)
