(* Workstations and the cluster.

   A workstation has one CPU (FCFS) and a fixed amount of physical
   memory; processes register their working sets so that CPU work can
   be slowed down by a caller-supplied factor reflecting paging and
   garbage collection (the cost model lives with the compiler driver —
   the host only tracks residency).

   The cluster is the pool of workstations the section masters draw
   from (first-come-first-served, per section 3.3).

   Faults: a cluster can carry a [Fault.plan].  Crashed stations make
   [compute] return [Fault.Station_failed] (checked once per slice, so
   detection latency is bounded by the slice length); crashed and
   owner-reclaimed stations are dropped from the pool by [claim] and
   [release_station].  Station 0 — the master's own workstation — is
   never wired to the plan, so the parallel driver's sequential
   fallback always has a live machine. *)

type workstation = {
  ws_id : int;
  cpu : Sync.resource;
  mem_mb : float;
  mutable resident_mb : float;
  mutable busy_seconds : float; (* accumulated CPU time: the paper's
                                   per-processor "CPU time" metric *)
  mutable crash_at : float; (* [infinity] = never *)
  mutable reclaim_at : float;
  mutable fault_slow : float -> float; (* time -> transient load factor *)
  mutable ws_trace : Trace.t; (* span sink; [Trace.none] = no recording *)
}

let workstation ~id ~mem_mb =
  {
    ws_id = id;
    cpu = Sync.resource 1;
    mem_mb;
    resident_mb = 0.0;
    busy_seconds = 0.0;
    crash_at = infinity;
    reclaim_at = infinity;
    fault_slow = (fun _ -> 1.0);
    ws_trace = Trace.none;
  }

(* Occupancy ratio used by paging models. *)
let memory_pressure ws = ws.resident_mb /. ws.mem_mb

let add_resident ws mb = ws.resident_mb <- ws.resident_mb +. mb
let remove_resident ws mb = ws.resident_mb <- max 0.0 (ws.resident_mb -. mb)

let crashed ws ~now =
  if now >= ws.crash_at then
    Some { Fault.failed_station = ws.ws_id; failed_at = ws.crash_at }
  else None

(* A station that crashed or was reclaimed is gone from the pool. *)
let available ws ~now = now < ws.crash_at && now < ws.reclaim_at

(* Run [seconds] of nominal CPU work on [ws].  The work is executed in
   slices; before each slice [factor] is consulted (e.g. paging or GC
   overhead given current residency) along with the fault plan's
   transient slowdown, so the effective time adapts as other processes
   come and go.  If the station crashes, the partial work is kept in
   [busy_seconds] (it really burned CPU) and the call reports
   [Fault.Station_failed] instead of completing. *)
let compute ?(slice = 1.0) ?(tag = "cpu") sim ws ~factor ~seconds =
  if seconds < 0.0 then invalid_arg "Host.compute: negative work";
  let t0 = Des.now sim in
  let remaining = ref seconds in
  let burned = ref 0.0 in
  let failed = ref None in
  while !failed = None && !remaining > 0.0 do
    match crashed ws ~now:(Des.now sim) with
    | Some f -> failed := Some f
    | None ->
      let nominal = min slice !remaining in
      let f = max 1.0 (factor ws) *. max 1.0 (ws.fault_slow (Des.now sim)) in
      let actual = nominal *. f in
      Sync.use sim ws.cpu actual;
      ws.busy_seconds <- ws.busy_seconds +. actual;
      burned := !burned +. actual;
      remaining := !remaining -. nominal
  done;
  let outcome =
    match !failed with
    | Some f -> Fault.Station_failed f
    | None -> (
      (* The station may have died under the final slice: the work is
         done but its output is lost with the machine. *)
      match crashed ws ~now:(Des.now sim) with
      | Some f -> Fault.Station_failed f
      | None -> Fault.Completed)
  in
  (* One span per compute call: [nominal] is the work requested,
     [done] the nominal seconds actually consumed (less under a
     crash), [actual] the slowed CPU seconds burned.  The mean
     slowdown experienced is actual/done. *)
  if Trace.enabled ws.ws_trace then
    Trace.span ws.ws_trace ~track:ws.ws_id ~cat:"cpu" ~name:tag
      ~args:
        [
          ("tag", tag);
          ("nominal", Trace.farg seconds);
          ("done", Trace.farg (seconds -. !remaining));
          ("actual", Trace.farg !burned);
          ( "outcome",
            match outcome with Fault.Completed -> "ok" | _ -> "crashed" );
        ]
      ~t0 ~t1:(Des.now sim) ();
  outcome

type cluster = {
  stations : workstation array;
  ether : Net.ethernet;
  fs : Net.fileserver;
  free : int Queue.t; (* workstation pool, FCFS *)
  pool_waiters : (int -> unit) Queue.t;
  faults : Fault.plan;
  trace : Trace.t;
}

(* The fault plan is a static schedule, so its events can be traced up
   front; crash/reclaim instants and slowdown windows land on the
   affected station's track, brownouts and degradations on the
   file-server and Ethernet tracks. *)
let trace_fault_plan trace ~stations (faults : Fault.plan) =
  if Trace.enabled trace then
    List.iter
      (fun (e : Fault.event) ->
        let wired s = s > 0 && s < stations in
        match e with
        | Fault.Crash { station; at } when wired station ->
          Trace.instant trace ~track:station ~cat:"fault" ~name:"crash" ~at ()
        | Fault.Reclaim { station; at } when wired station ->
          Trace.instant trace ~track:station ~cat:"fault" ~name:"reclaim" ~at ()
        | Fault.Slowdown { station; from_; until; factor } when wired station ->
          Trace.span trace ~track:station ~cat:"fault" ~name:"slowdown"
            ~args:[ ("factor", Trace.farg factor) ]
            ~t0:from_ ~t1:until ()
        | Fault.Fs_brownout { from_; until; factor } ->
          Trace.span trace ~track:Trace.fs_track ~cat:"fault" ~name:"brownout"
            ~args:[ ("factor", Trace.farg factor) ]
            ~t0:from_ ~t1:until ()
        | Fault.Ether_degrade { from_; until; factor } ->
          Trace.span trace ~track:Trace.ether_track ~cat:"fault" ~name:"degrade"
            ~args:[ ("factor", Trace.farg factor) ]
            ~t0:from_ ~t1:until ()
        | Fault.Crash _ | Fault.Reclaim _ | Fault.Slowdown _ -> ())
      faults.Fault.events

let cluster ?(mem_mb = 16.0) ?ether ?fs ?(faults = Fault.none)
    ?(trace = Trace.none) ~stations () =
  let ether = match ether with Some e -> e | None -> Net.ethernet () in
  let fs = match fs with Some f -> f | None -> Net.fileserver () in
  let ws = Array.init stations (fun id -> workstation ~id ~mem_mb) in
  (* Wire the fault plan; station 0 (the master's own machine) stays
     immune so the degradation ladder always terminates. *)
  Array.iter
    (fun w ->
      w.ws_trace <- trace;
      if w.ws_id > 0 then begin
        w.crash_at <- Fault.crash_time faults ~station:w.ws_id;
        w.reclaim_at <- Fault.reclaim_time faults ~station:w.ws_id;
        w.fault_slow <-
          (fun at -> Fault.station_slowdown faults ~station:w.ws_id ~at)
      end)
    ws;
  ether.Net.degrade <- (fun at -> Fault.ether_factor faults ~at);
  fs.Net.brownout <- (fun at -> Fault.fs_factor faults ~at);
  ether.Net.trace <- trace;
  fs.Net.trace <- trace;
  trace_fault_plan trace ~stations faults;
  let free = Queue.create () in
  Array.iter (fun w -> Queue.push w.ws_id free) ws;
  { stations = ws; ether; fs; free; pool_waiters = Queue.create (); faults; trace }

(* Claim a free workstation (FCFS), blocking while none is available —
   the paper's first-come-first-served task distribution.  Stations
   that died while queued are silently discarded.  The traced
   pool-wait span runs from the request to the grant (zero-length when
   a live station was free), on the granted station's track. *)
let claim sim (c : cluster) : workstation =
  let t0 = Des.now sim in
  let rec go () =
    match Queue.take_opt c.free with
    | Some id ->
      let ws = c.stations.(id) in
      if available ws ~now:(Des.now sim) then ws else go ()
    | None ->
      let id = Des.suspend (fun wake -> Queue.push wake c.pool_waiters) in
      let ws = c.stations.(id) in
      if available ws ~now:(Des.now sim) then ws else go ()
  in
  let ws = go () in
  if Trace.enabled c.trace then
    Trace.span c.trace ~track:ws.ws_id ~cat:"pool" ~name:"pool-wait" ~t0
      ~t1:(Des.now sim) ();
  ws

(* Like [claim], but when several live stations are free, take the one
   [rank] scores highest instead of the head of the queue (FCFS order
   breaks ties, so a rank of constant 0 is exactly [claim]).  Used by
   the locality-aware re-dispatch: a station that already holds the
   task's bytes outranks a cold one.  With no live free station the
   blocking discipline is [claim]'s, unchanged. *)
let claim_prefer ~rank sim (c : cluster) : workstation =
  let now = Des.now sim in
  let live =
    Queue.fold
      (fun acc id -> if available c.stations.(id) ~now then id :: acc else acc)
      [] c.free
    |> List.rev
  in
  match live with
  | [] -> claim sim c
  | first :: rest ->
    let best =
      List.fold_left
        (fun best id ->
          if rank c.stations.(id) > rank c.stations.(best) then id else best)
        first rest
    in
    (* Extract [best]; dead stations stay queued (claim discards them
       when they surface, as always). *)
    let remaining =
      Queue.fold (fun acc id -> if id = best then acc else id :: acc) [] c.free
    in
    Queue.clear c.free;
    List.iter (fun id -> Queue.push id c.free) (List.rev remaining);
    let ws = c.stations.(best) in
    if Trace.enabled c.trace then
      Trace.span c.trace ~track:ws.ws_id ~cat:"pool" ~name:"pool-wait" ~t0:now
        ~t1:(Des.now sim) ();
    ws

(* A crashed or reclaimed station never rejoins the pool. *)
let release_station sim (c : cluster) (ws : workstation) =
  if available ws ~now:(Des.now sim) then
    match Queue.take_opt c.pool_waiters with
    | Some wake -> wake ws.ws_id
    | None -> Queue.push ws.ws_id c.free

(* Stations the fault plan has removed from the pool by [now] (the
   master's station is immune and never counted). *)
let lost_stations (c : cluster) ~now =
  Array.fold_left
    (fun acc w -> if w.ws_id > 0 && not (available w ~now) then acc + 1 else acc)
    0 c.stations

(* Aggregate CPU seconds per station (only stations that worked). *)
let cpu_times (c : cluster) : float list =
  Array.to_list c.stations
  |> List.filter_map (fun w -> if w.busy_seconds > 0.0 then Some w.busy_seconds else None)
