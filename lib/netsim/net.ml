(* Network models: a shared Ethernet segment and an NFS-style file
   server — the host environment of section 3.3 of the paper (diskless
   workstations sharing one file system over a 10 Mbit/s Ethernet).

   Ethernet transfers proceed in chunks; each chunk's effective rate is
   divided by a contention factor that grows with the number of
   concurrent transfers (collisions and exponential backoff).  The file
   server is a FCFS disk with a per-request seek time. *)

type ethernet = {
  bytes_per_sec : float;
  contention_alpha : float; (* extra cost per concurrent transfer *)
  chunk_bytes : float;
  mutable active : int;
  mutable total_bytes : float;
  mutable transfers : int;
  mutable degrade : float -> float; (* fault plan: time -> factor (>= 1) *)
  mutable trace : Trace.t; (* span sink; [Trace.none] = no recording *)
  fetched : (int * string, unit) Hashtbl.t;
      (* transfer history: (client station, file label) pairs already
         fetched over this segment.  Pure bookkeeping — recording never
         touches the event schedule; consulting it is the caller's
         policy decision (locality-aware re-dispatch). *)
}

let ethernet ?(bytes_per_sec = 1.25e6) ?(contention_alpha = 0.6)
    ?(chunk_bytes = 16384.0) () =
  {
    bytes_per_sec;
    contention_alpha;
    chunk_bytes;
    active = 0;
    total_bytes = 0.0;
    transfers = 0;
    degrade = (fun _ -> 1.0);
    trace = Trace.none;
    fetched = Hashtbl.create 64;
  }

(* Has [client] already fetched [file] over this segment (and so holds
   its bytes in local memory)?  Stations leave the pool when they crash
   or are reclaimed, so stale entries are harmless: nobody can claim
   the dead station the entry describes. *)
let cached (e : ethernet) ~client ~file = Hashtbl.mem e.fetched (client, file)

(* Move [bytes] over the segment; blocks the calling process for the
   (contention-dependent) transfer time. *)
let transfer sim (e : ethernet) ~bytes =
  if bytes < 0.0 then invalid_arg "Net.transfer: negative size";
  let t0 = Des.now sim in
  let concurrent = e.active in
  e.active <- e.active + 1;
  e.transfers <- e.transfers + 1;
  e.total_bytes <- e.total_bytes +. bytes;
  let remaining = ref bytes in
  while !remaining > 0.0 do
    let chunk = min e.chunk_bytes !remaining in
    let factor =
      (1.0 +. (e.contention_alpha *. float_of_int (e.active - 1)))
      *. max 1.0 (e.degrade (Des.now sim))
    in
    Des.delay (chunk /. e.bytes_per_sec *. factor);
    remaining := !remaining -. chunk
  done;
  e.active <- e.active - 1;
  if Trace.enabled e.trace then
    Trace.span e.trace ~track:Trace.ether_track ~cat:"net" ~name:"transfer"
      ~args:
        [ ("bytes", Trace.farg bytes); ("concurrent", string_of_int concurrent) ]
      ~t0 ~t1:(Des.now sim) ()

type fileserver = {
  disk : Sync.resource;
  seek_seconds : float;
  disk_bytes_per_sec : float;
  mutable requests : int;
  mutable bytes_served : float;
  mutable brownout : float -> float; (* fault plan: time -> factor (>= 1) *)
  mutable trace : Trace.t; (* span sink; [Trace.none] = no recording *)
}

let fileserver ?(seek_seconds = 0.025) ?(disk_bytes_per_sec = 2.0e6) () =
  {
    disk = Sync.resource 1;
    seek_seconds;
    disk_bytes_per_sec;
    requests = 0;
    bytes_served = 0.0;
    brownout = (fun _ -> 1.0);
    trace = Trace.none;
  }

(* One file-server disk operation (read or write) of [bytes].  The
   traced span covers queueing behind other requests plus service. *)
let disk_io sim (fs : fileserver) ~bytes =
  let t0 = Des.now sim in
  fs.requests <- fs.requests + 1;
  fs.bytes_served <- fs.bytes_served +. bytes;
  let service = fs.seek_seconds +. (bytes /. fs.disk_bytes_per_sec) in
  Sync.use sim fs.disk (service *. max 1.0 (fs.brownout (Des.now sim)));
  if Trace.enabled fs.trace then
    Trace.span fs.trace ~track:Trace.fs_track ~cat:"net" ~name:"disk"
      ~args:[ ("bytes", Trace.farg bytes) ]
      ~t0 ~t1:(Des.now sim) ()

(* Fetch a file from the server to a diskless client: disk read, then
   the transfer over the shared segment.  When the caller identifies
   itself and the file, the pair is remembered in the transfer history
   (an O(1) table insert with no effect on the event schedule). *)
let fetch ?client ?file sim (fs : fileserver) (e : ethernet) ~bytes =
  disk_io sim fs ~bytes;
  transfer sim e ~bytes;
  match (client, file) with
  | Some c, Some f -> Hashtbl.replace e.fetched (c, f) ()
  | _ -> ()

(* Store a file from a client onto the server. *)
let store sim (fs : fileserver) (e : ethernet) ~bytes =
  transfer sim e ~bytes;
  disk_io sim fs ~bytes
