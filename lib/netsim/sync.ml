(* Synchronization primitives on top of the DES engine: mailboxes
   (message queues), counting semaphores / FCFS resources, and join
   counters.  These model UNIX message-based synchronization between
   the master processes of the parallel compiler. *)

(* --- mailbox: unbounded message queue --- *)

type 'a mailbox = {
  messages : 'a Queue.t;
  waiters : ('a -> unit) Queue.t;
}

let mailbox () = { messages = Queue.create (); waiters = Queue.create () }

let send (mb : 'a mailbox) (v : 'a) =
  match Queue.take_opt mb.waiters with
  | Some wake -> wake v
  | None -> Queue.push v mb.messages

(* Blocks until a message is available. *)
let recv (mb : 'a mailbox) : 'a =
  match Queue.take_opt mb.messages with
  | Some v -> v
  | None -> Des.suspend (fun wake -> Queue.push wake mb.waiters)

(* --- FCFS resource with [capacity] servers --- *)

type resource = {
  capacity : int;
  mutable in_use : int;
  queue : (unit -> unit) Queue.t;
  (* instrumentation *)
  mutable total_wait : float;
  mutable total_service : float;
  mutable served : int;
}

let resource capacity =
  if capacity < 1 then invalid_arg "Sync.resource: capacity must be positive";
  {
    capacity;
    in_use = 0;
    queue = Queue.create ();
    total_wait = 0.0;
    total_service = 0.0;
    served = 0;
  }

let acquire sim (r : resource) =
  if r.in_use < r.capacity then r.in_use <- r.in_use + 1
  else begin
    let t0 = Des.now sim in
    Des.suspend (fun wake -> Queue.push (fun () -> wake ()) r.queue);
    r.total_wait <- r.total_wait +. (Des.now sim -. t0)
  end

let release (r : resource) =
  match Queue.take_opt r.queue with
  | Some wake -> wake () (* hand the slot over directly *)
  | None -> r.in_use <- r.in_use - 1

(* Hold the resource for [amount] simulated seconds. *)
let use sim (r : resource) amount =
  acquire sim r;
  Des.delay amount;
  r.total_service <- r.total_service +. amount;
  r.served <- r.served + 1;
  release r

(* --- one-shot event: set once, any number of waiters --- *)

(* The dependence-gated dispatch in [Parrun] parks function masters on
   these.  Both operations are free of DES activity on the fast path:
   [await] on an already-set event returns without suspending, and
   [set] with no waiters is pure bookkeeping — so a DAG with no edges
   leaves the event schedule bit-identical to ungated dispatch. *)

type event = { mutable fired : bool; event_waiters : (unit -> unit) Queue.t }

let event () = { fired = false; event_waiters = Queue.create () }
let is_set (e : event) = e.fired

(* Idempotent: late [set]s (e.g. a straggler attempt finishing after a
   re-dispatch already completed the task) are no-ops. *)
let set (e : event) =
  if not e.fired then begin
    e.fired <- true;
    Queue.iter (fun wake -> wake ()) e.event_waiters;
    Queue.clear e.event_waiters
  end

let await (e : event) =
  if not e.fired then
    Des.suspend (fun wake -> Queue.push (fun () -> wake ()) e.event_waiters)

(* --- join counter: wait until [expected] signals have arrived --- *)

type join = {
  mutable expected : int;
  mutable arrived : int;
  mutable waiter : (unit -> unit) option;
}

let join expected =
  if expected < 0 then invalid_arg "Sync.join: negative count";
  { expected; arrived = 0; waiter = None }

let signal (j : join) =
  j.arrived <- j.arrived + 1;
  if j.arrived >= j.expected then
    match j.waiter with
    | Some wake ->
      j.waiter <- None;
      wake ()
    | None -> ()

(* Blocks until all signals have arrived (returns immediately if they
   already have).  Single waiter, like a UNIX parent waiting for its
   children. *)
let wait (j : join) =
  if j.arrived < j.expected then
    Des.suspend (fun wake ->
        assert (j.waiter = None);
        j.waiter <- Some (fun () -> wake ()))
