(* Deterministic, seed-driven fault plans for the simulated host.

   A plan is a static schedule of station crashes, owner reclaims,
   transient slowdowns, file-server brownouts and Ethernet degradation.
   Because the schedule is fixed up front, every query is a pure
   function of (plan, time): same seed => same faults => same simulated
   run.  The hooks that consume these queries live in [Host] and [Net];
   the recovery protocol lives with the parallel driver.

   Station 0 is by convention the master's own workstation and is never
   faulted (neither by [random] nor by the wiring in [Host.cluster]):
   the sequential-fallback rung of the degradation ladder must always
   be able to terminate there. *)

type event =
  | Crash of { station : int; at : float }
  | Reclaim of { station : int; at : float }
  | Slowdown of { station : int; from_ : float; until : float; factor : float }
  | Fs_brownout of { from_ : float; until : float; factor : float }
  | Ether_degrade of { from_ : float; until : float; factor : float }

type plan = { events : event list }

let none = { events = [] }
let is_none p = p.events = []

let crash_count p =
  List.fold_left
    (fun acc e -> match e with Crash _ | Reclaim _ -> acc + 1 | _ -> acc)
    0 p.events

(* Crashes surface as a value, never as an OCaml exception escaping the
   DES event loop. *)
type failure = { failed_station : int; failed_at : float }
type outcome = Completed | Station_failed of failure

(* --- time-indexed queries --- *)

let crash_time p ~station =
  List.fold_left
    (fun acc e ->
      match e with
      | Crash { station = s; at } when s = station -> Float.min acc at
      | _ -> acc)
    infinity p.events

let reclaim_time p ~station =
  List.fold_left
    (fun acc e ->
      match e with
      | Reclaim { station = s; at } when s = station -> Float.min acc at
      | _ -> acc)
    infinity p.events

let in_window at ~from_ ~until = at >= from_ && at < until

let station_slowdown p ~station ~at =
  List.fold_left
    (fun acc e ->
      match e with
      | Slowdown { station = s; from_; until; factor }
        when s = station && in_window at ~from_ ~until ->
        acc *. factor
      | _ -> acc)
    1.0 p.events

let fs_factor p ~at =
  List.fold_left
    (fun acc e ->
      match e with
      | Fs_brownout { from_; until; factor } when in_window at ~from_ ~until ->
        acc *. factor
      | _ -> acc)
    1.0 p.events

let ether_factor p ~at =
  List.fold_left
    (fun acc e ->
      match e with
      | Ether_degrade { from_; until; factor } when in_window at ~from_ ~until ->
        acc *. factor
      | _ -> acc)
    1.0 p.events

(* --- plan generation --- *)

(* Every random number is drawn whether or not its event fires, so with
   a fixed seed the plan at a higher rate is a superset of the plan at
   a lower rate — elapsed-time inflation is monotone in [rate]. *)
let random ~seed ~stations ~rate ~horizon () =
  if stations < 1 then invalid_arg "Fault.random: need at least one station";
  if horizon <= 0.0 then invalid_arg "Fault.random: non-positive horizon";
  let state = ref (max 1 (seed land 0x3FFFFFFF)) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. 1073741824.0
  in
  let events = ref [] in
  let push e = events := e :: !events in
  for station = 1 to stations - 1 do
    let u_crash = next () and t_crash = next () in
    let u_reclaim = next () and t_reclaim = next () in
    let u_slow = next () and t_slow = next () in
    let d_slow = next () and f_slow = next () in
    if u_crash < rate then
      push (Crash { station; at = (0.05 +. (0.8 *. t_crash)) *. horizon });
    if u_reclaim < 0.5 *. rate then
      push (Reclaim { station; at = (0.05 +. (0.8 *. t_reclaim)) *. horizon });
    if u_slow < rate then begin
      let from_ = 0.8 *. t_slow *. horizon in
      push
        (Slowdown
           {
             station;
             from_;
             until = from_ +. ((0.1 +. (0.4 *. d_slow)) *. horizon);
             factor = 2.0 +. (4.0 *. f_slow);
           })
    end
  done;
  let u_fs = next () and t_fs = next () in
  let d_fs = next () and f_fs = next () in
  let u_e = next () and t_e = next () in
  let d_e = next () and f_e = next () in
  if u_fs < 0.5 *. rate then begin
    let from_ = 0.7 *. t_fs *. horizon in
    push
      (Fs_brownout
         {
           from_;
           until = from_ +. ((0.1 +. (0.3 *. d_fs)) *. horizon);
           factor = 2.0 +. (6.0 *. f_fs);
         })
  end;
  if u_e < 0.5 *. rate then begin
    let from_ = 0.7 *. t_e *. horizon in
    push
      (Ether_degrade
         {
           from_;
           until = from_ +. ((0.1 +. (0.3 *. d_e)) *. horizon);
           factor = 2.0 +. (4.0 *. f_e);
         })
  end;
  { events = List.rev !events }

(* --- reporting --- *)

let event_to_string = function
  | Crash { station; at } -> Printf.sprintf "station %d crashes at %.1fs" station at
  | Reclaim { station; at } ->
    Printf.sprintf "station %d reclaimed by its owner at %.1fs" station at
  | Slowdown { station; from_; until; factor } ->
    Printf.sprintf "station %d slowed %.1fx during [%.1fs, %.1fs)" station factor
      from_ until
  | Fs_brownout { from_; until; factor } ->
    Printf.sprintf "file server %.1fx slower during [%.1fs, %.1fs)" factor from_ until
  | Ether_degrade { from_; until; factor } ->
    Printf.sprintf "ethernet %.1fx slower during [%.1fs, %.1fs)" factor from_ until

let describe p = List.map event_to_string p.events
