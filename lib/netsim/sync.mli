(** Synchronization primitives on top of the DES engine: mailboxes
    (message queues), FCFS resources, and join counters.  These model
    the UNIX message-based synchronization between the master processes
    of the parallel compiler (paper, section 3.3). *)

(** {1 Mailboxes} *)

type 'a mailbox
(** An unbounded FIFO message queue with blocking receive. *)

val mailbox : unit -> 'a mailbox

val send : 'a mailbox -> 'a -> unit
(** Deliver a message; wakes one waiting receiver, never blocks. *)

val recv : 'a mailbox -> 'a
(** Take the oldest message, blocking the calling process while the
    mailbox is empty. *)

(** {1 FCFS resources} *)

type resource = {
  capacity : int;
  mutable in_use : int;
  queue : (unit -> unit) Queue.t;
  mutable total_wait : float; (** accumulated queueing time *)
  mutable total_service : float; (** accumulated service time *)
  mutable served : int; (** completed [use] calls *)
}
(** A server pool with [capacity] slots and a FIFO wait queue. *)

val resource : int -> resource
(** @raise Invalid_argument when the capacity is not positive. *)

val acquire : Des.t -> resource -> unit
(** Take a slot, blocking FCFS while all slots are busy. *)

val release : resource -> unit
(** Free a slot (handing it directly to the oldest waiter, if any). *)

val use : Des.t -> resource -> float -> unit
(** [use sim r seconds] = acquire, hold for [seconds] of virtual time,
    release; updates the instrumentation counters. *)

(** {1 One-shot events} *)

type event
(** A set-once flag with any number of waiting processes — the
    primitive behind dependence-gated dispatch: a task's event is set
    when its output is written back, and dependent tasks {!await} it
    before claiming a station.  Neither operation touches the DES on
    the fast path ([await] on a set event does not suspend; [set] with
    no waiters schedules nothing), so an edge-free DAG leaves the
    event schedule bit-identical to ungated dispatch. *)

val event : unit -> event

val set : event -> unit
(** Fire the event, waking every waiter; idempotent (late calls from
    superseded straggler attempts are no-ops). *)

val await : event -> unit
(** Block until the event fires; returns immediately if it already
    has. *)

val is_set : event -> bool

(** {1 Join counters} *)

type join
(** A parent-waits-for-children barrier: created with an expected
    count, released when that many {!signal}s have arrived. *)

val join : int -> join
(** @raise Invalid_argument on a negative count. *)

val signal : join -> unit
(** One child is done. *)

val wait : join -> unit
(** Block the (single) waiting process until all signals have arrived;
    returns immediately if they already have. *)
