(** Workstations and the cluster pool.

    A workstation has one CPU (FCFS) and a fixed amount of physical
    memory; processes register their working sets so that CPU work can
    be slowed down by a caller-supplied factor reflecting paging and
    garbage collection (the cost model lives with the compiler driver —
    the host only tracks residency).

    A cluster can carry a {!Fault.plan}; crashed stations surface as
    {!Fault.Station_failed} compute outcomes and leave the pool, never
    as exceptions. *)

type workstation = {
  ws_id : int;
  cpu : Sync.resource;
  mem_mb : float;
  mutable resident_mb : float;
  mutable busy_seconds : float;
      (** accumulated CPU time: the paper's per-processor "CPU time" *)
  mutable crash_at : float; (** fault plan: crash time, [infinity] = never *)
  mutable reclaim_at : float; (** fault plan: owner-reclaim time *)
  mutable fault_slow : float -> float;
      (** fault plan: transient load factor at a simulated time *)
  mutable ws_trace : Trace.t;
      (** span sink for CPU work ({!Trace.none} = no recording; wired
          by {!cluster}) *)
}

val workstation : id:int -> mem_mb:float -> workstation

val memory_pressure : workstation -> float
(** Residency divided by physical memory (1.0 = full). *)

val add_resident : workstation -> float -> unit
val remove_resident : workstation -> float -> unit

val crashed : workstation -> now:float -> Fault.failure option
(** [Some failure] when the station's crash time has passed — used by
    fault-aware callers after network operations. *)

val available : workstation -> now:float -> bool
(** False once the station crashed or its owner reclaimed it. *)

val compute :
  ?slice:float ->
  ?tag:string ->
  Des.t ->
  workstation ->
  factor:(workstation -> float) ->
  seconds:float ->
  Fault.outcome
(** Run [seconds] of nominal CPU work.  The work executes in slices;
    before each slice [factor] is consulted (e.g. the GC/paging model
    given current residency) together with the fault plan's transient
    slowdown, so the effective time adapts as other processes come and
    go.  Returns [Fault.Station_failed] if the station crashes under
    the work (partial CPU is still charged to [busy_seconds]); the
    slice length bounds detection latency.

    When the station carries a trace, one ["cpu"] span is recorded per
    call, labelled [tag] (a phase name), with the requested nominal
    seconds, the nominal seconds actually consumed, the slowed CPU
    seconds burned, and the outcome.
    @raise Invalid_argument on negative work. *)

type cluster = {
  stations : workstation array;
  ether : Net.ethernet;
  fs : Net.fileserver;
  free : int Queue.t;
  pool_waiters : (int -> unit) Queue.t;
  faults : Fault.plan;
  trace : Trace.t;
}
(** The workstation pool the section masters draw from, with the shared
    Ethernet and file server and the fault plan wired at creation. *)

val cluster :
  ?mem_mb:float ->
  ?ether:Net.ethernet ->
  ?fs:Net.fileserver ->
  ?faults:Fault.plan ->
  ?trace:Trace.t ->
  stations:int ->
  unit ->
  cluster
(** Station 0 — the master's own workstation — is never wired to the
    fault plan, so a sequential fallback always has a live machine.
    [trace] (default {!Trace.none}) is wired into every station, the
    Ethernet and the file server; the fault plan's own events are
    recorded up front (crash/reclaim instants, slowdown/brownout
    windows) since the schedule is static. *)

val claim : Des.t -> cluster -> workstation
(** Take a free workstation, blocking FCFS while none is available —
    the paper's first-come-first-served task distribution.  Stations
    that crashed or were reclaimed while queued are discarded. *)

val claim_prefer :
  rank:(workstation -> int) -> Des.t -> cluster -> workstation
(** Like {!claim}, but when several live stations are free, take the
    one [rank] scores highest (queue order breaks ties, so a constant
    rank degenerates to {!claim}).  Used by the locality-aware
    re-dispatch: a station that already holds a task's bytes — see
    {!Net.cached} — outranks a cold one.  When nothing is free the
    blocking discipline is exactly {!claim}'s. *)

val release_station : Des.t -> cluster -> workstation -> unit
(** Return a station to the pool (hand-off to a waiter first); a
    crashed or reclaimed station is dropped instead. *)

val lost_stations : cluster -> now:float -> int
(** Stations the fault plan removed from the pool by [now]. *)

val cpu_times : cluster -> float list
(** Busy seconds of every station that did any work. *)
