(** Network models: a shared Ethernet segment and an NFS-style file
    server — the host environment of the paper's section 3.3 (diskless
    workstations sharing one file system over a 10 Mbit/s Ethernet). *)

type ethernet = {
  bytes_per_sec : float;
  contention_alpha : float; (** extra cost per concurrent transfer *)
  chunk_bytes : float;
  mutable active : int; (** transfers currently in flight *)
  mutable total_bytes : float;
  mutable transfers : int;
  mutable degrade : float -> float;
      (** fault plan: extra slowdown factor at a simulated time
          (identity — exactly 1.0 — when no plan is wired) *)
  mutable trace : Trace.t;
      (** span sink for transfers ({!Trace.none} = no recording, the
          default; wired by [Host.cluster]) *)
  fetched : (int * string, unit) Hashtbl.t;
      (** transfer history: (client station, file label) pairs recorded
          by {!fetch} when the caller identifies itself — consult with
          {!cached}.  Bookkeeping only; it never affects the event
          schedule. *)
}
(** A shared segment.  Transfers proceed chunk by chunk; each chunk's
    effective rate is divided by [1 + alpha * (active - 1)] (collisions
    and exponential backoff). *)

val ethernet :
  ?bytes_per_sec:float ->
  ?contention_alpha:float ->
  ?chunk_bytes:float ->
  unit ->
  ethernet
(** Defaults: 1.25 MB/s (10 Mbit/s), alpha 0.6, 16 KiB chunks. *)

val transfer : Des.t -> ethernet -> bytes:float -> unit
(** Move [bytes] over the segment, blocking the calling process for the
    contention-dependent transfer time. *)

type fileserver = {
  disk : Sync.resource;
  seek_seconds : float;
  disk_bytes_per_sec : float;
  mutable requests : int;
  mutable bytes_served : float;
  mutable brownout : float -> float;
      (** fault plan: disk service-time factor at a simulated time *)
  mutable trace : Trace.t;
      (** span sink for disk operations ({!Trace.none} = no recording) *)
}
(** One FCFS disk with a per-request seek. *)

val fileserver :
  ?seek_seconds:float -> ?disk_bytes_per_sec:float -> unit -> fileserver

val disk_io : Des.t -> fileserver -> bytes:float -> unit
(** One disk operation (queued FCFS behind other requests). *)

val cached : ethernet -> client:int -> file:string -> bool
(** Whether [client] already fetched [file] over this segment (and so
    holds its bytes locally).  The basis of the locality-aware
    re-dispatch: a retry placed on such a station can skip the
    re-download. *)

val fetch :
  ?client:int -> ?file:string -> Des.t -> fileserver -> ethernet ->
  bytes:float -> unit
(** Read a file from the server to a diskless client: disk, then wire.
    With both [client] and [file], the pair is added to the transfer
    history (see {!cached}); timing is unaffected either way. *)

val store : Des.t -> fileserver -> ethernet -> bytes:float -> unit
(** Write a file from a client onto the server: wire, then disk. *)
