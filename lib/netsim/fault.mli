(** Deterministic, seed-driven fault plans for the simulated host.

    The paper's host is an Ethernet of borrowed, "hopefully idle"
    diskless SUNs: machines crash, get reclaimed by their owners, or
    slow to a crawl under somebody else's paging.  A {!plan} is a fixed
    schedule of such events — same plan ⇒ same simulated fault
    behaviour — injected through hooks in {!Host} and {!Net} so that
    the recovery protocol of the parallel driver can be studied
    reproducibly.

    Station 0 is by convention the master's own workstation (the
    machine the user sits at) and is never faulted by {!random} nor
    wired by {!Host.cluster}: the sequential-fallback rung of the
    degradation ladder must always be able to terminate there. *)

type event =
  | Crash of { station : int; at : float }
      (** The station dies at [at]: in-flight work on it is lost
          (surfaces as {!Station_failed}), and it never rejoins the
          pool. *)
  | Reclaim of { station : int; at : float }
      (** The owner takes the machine back at [at]: work in flight is
          allowed to finish, but the station cannot be claimed
          afterwards. *)
  | Slowdown of { station : int; from_ : float; until : float; factor : float }
      (** Transient load (someone logged in, paging): CPU work on the
          station is [factor] times slower inside the window. *)
  | Fs_brownout of { from_ : float; until : float; factor : float }
      (** The shared file server degrades: every disk operation takes
          [factor] times longer inside the window. *)
  | Ether_degrade of { from_ : float; until : float; factor : float }
      (** The shared segment degrades (a misbehaving transceiver):
          transfer chunks take [factor] times longer in the window. *)

type plan = { events : event list }

val none : plan
val is_none : plan -> bool

val crash_count : plan -> int
(** Number of stations the plan permanently removes (crash + reclaim). *)

(** {1 Failure outcome}

    Crashes surface as a value — never as an OCaml exception escaping
    the discrete-event simulation. *)

type failure = { failed_station : int; failed_at : float }
type outcome = Completed | Station_failed of failure

(** {1 Time-indexed queries}

    All pure: the plan is a static schedule, so every consumer sees the
    same deterministic answer. *)

val crash_time : plan -> station:int -> float
(** Earliest crash of [station]; [infinity] when it never crashes. *)

val reclaim_time : plan -> station:int -> float

val station_slowdown : plan -> station:int -> at:float -> float
(** Product of the slowdown factors of every window containing [at]
    (>= 1.0). *)

val fs_factor : plan -> at:float -> float
val ether_factor : plan -> at:float -> float

(** {1 Plan generation} *)

val random :
  seed:int -> stations:int -> rate:float -> horizon:float -> unit -> plan
(** A deterministic plan over a pool of [stations] (ids 0..n-1; id 0 is
    never faulted).  [rate] in [0,1] scales how many stations are hit;
    event times fall inside [0, horizon].  Same arguments ⇒ same plan,
    and for a fixed seed the plan at a higher rate is a superset of the
    plan at a lower rate, so elapsed-time inflation can be studied
    monotonically.  [rate = 0.0] yields {!none}. *)

val event_to_string : event -> string
val describe : plan -> string list
