(* Discrete-event simulation engine with lightweight processes.

   Processes are ordinary OCaml functions running under an effect
   handler; [delay] suspends a process for simulated time, [suspend]
   parks it until an explicit wake-up.  Events at equal times fire in
   creation order, so simulations are deterministic.

   The engine knows nothing about networks or workstations — those are
   built on top in [Sync], [Net] and [Host]. *)

type event = { time : float; seq : int; action : unit -> unit }

module Pq = struct
  (* Simple binary heap keyed by (time, seq). *)
  type t = { mutable data : event array; mutable size : int }

  let create () = { data = Array.make 64 { time = 0.0; seq = 0; action = ignore }; size = 0 }
  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) e in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue_ := false
      done;
      Some top
    end
end

type t = {
  mutable now : float;
  mutable seq : int;
  queue : Pq.t;
  mutable events_processed : int;
}

let create () = { now = 0.0; seq = 0; queue = Pq.create (); events_processed = 0 }
let now sim = sim.now
let events_processed sim = sim.events_processed

let schedule sim ~at action =
  if at < sim.now then invalid_arg "Des.schedule: time in the past";
  sim.seq <- sim.seq + 1;
  Pq.push sim.queue { time = at; seq = sim.seq; action }

(* --- process effects --- *)

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let delay dt =
  if dt < 0.0 then invalid_arg "Des.delay: negative delay";
  Effect.perform (Delay dt)

(* [suspend register] parks the caller; [register] receives a [wake]
   function that resumes it (with a value) at the simulation time at
   which it is called.  [wake] must be called exactly once. *)
let suspend register = Effect.perform (Suspend register)

exception Dead_process of string

let spawn sim (body : unit -> unit) : unit =
  let run () =
    Effect.Deep.try_with body ()
      {
        Effect.Deep.effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay dt ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  schedule sim ~at:(sim.now +. dt) (fun () ->
                      Effect.Deep.continue k ()))
            | Suspend register ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  let woken = ref false in
                  register (fun v ->
                      if !woken then raise (Dead_process "double wake");
                      woken := true;
                      schedule sim ~at:sim.now (fun () -> Effect.Deep.continue k v)))
            | _ -> None);
      }
  in
  schedule sim ~at:sim.now run

(* Run until the event queue drains (or [until] simulated seconds).
   Returns the final simulation time. *)
let run ?until sim : float =
  let horizon = Option.value ~default:infinity until in
  let rec loop () =
    match Pq.pop sim.queue with
    | None -> ()
    | Some e ->
      if e.time > horizon then sim.now <- horizon
      else begin
        sim.now <- e.time;
        sim.events_processed <- sim.events_processed + 1;
        e.action ();
        loop ()
      end
  in
  loop ();
  sim.now
