(** Synthetic W2 programs: the paper's test inputs and random programs
    for property-based testing.

    Section 4.1 of the paper derives its test programs from a
    Monte-Carlo style simulation: five functions of 4, 35, 100, 280 and
    360 lines, each a loop nest (deeply nested for the larger sizes).
    All generators are deterministic in their arguments. *)

(** {1 The paper's benchmark sizes (section 4.1)} *)

type size = Tiny | Small | Medium | Large | Huge

val all_sizes : size list

val size_lines : size -> int
(** 4 / 35 / 100 / 280 / 360 lines of code. *)

val size_name : size -> string
(** ["f_tiny"] ... ["f_huge"]. *)

val sized_function : name:string -> size -> Ast.func
(** The Monte-Carlo benchmark function of that exact line count.
    Innermost loop bodies are branchless (like real systolic kernels),
    so they are software-pipelinable. *)

val min_benchmark_lines : int
(** Smallest size the Monte-Carlo skeleton supports. *)

val benchmark_function : name:string -> lines:int -> Ast.func
(** A Monte-Carlo function of exactly [lines] lines.
    @raise Invalid_argument below {!min_benchmark_lines}. *)

val tiny_function : name:string -> Ast.func
(** The literal 4-line function standing in for f_tiny. *)

val function_of_lines : name:string -> int -> Ast.func
(** A function of (approximately, exactly where the skeletons allow)
    the requested line count, down to 4 lines. *)

(** {1 Whole programs} *)

val s_program : ?name:string -> size:size -> count:int -> unit -> Ast.modul
(** The paper's S_n: one section with [count] identical copies of the
    [size] function (equal tasks — "this allows optimal processor
    utilization", section 4.1). *)

val user_program : unit -> Ast.modul
(** The mechanical-engineering application of section 4.3: three
    sections of three functions each — one of ~300 lines plus two small
    ones per section. *)

val helper_program :
  ?drivers:int -> ?helpers_per:int -> ?helper_lines:int -> unit -> Ast.modul
(** The many-small-functions program motivating procedure inlining
    (section 5.1): driver functions calling tiny helpers. *)

val module_of_function : Ast.func -> Ast.modul
(** Wrap a single function as a one-section module. *)

(** {1 Programs exercising the abstract-interpretation refinement} *)

val partitioned_program : ?workers:int -> ?seg:int -> unit -> Ast.modul
(** A partitioned lattice relaxation: [workers] functions each writing
    their own [seg]-element slice of a shared array (literal loop
    bounds), plus a collector that calls every worker and then sums the
    whole array.  Flow-insensitive analysis couples every worker pair
    through the array; the region domain refutes exactly those edges. *)

val histogram_program : ?drivers:int -> unit -> Ast.modul
(** [drivers] counters each owning one literal-indexed bin of a shared
    histogram, all calling the same pure smoothing helper: the
    helper edges survive, the counter-counter conflicts are refuted. *)

val deadchan_program : unit -> Ast.modul
(** Three functions sharing channel X, one of whose sends sits in a
    provably empty loop ([for i := 1 to 0]): the protocol domain prunes
    the dead sender's channel pairings and keeps the live one. *)

(** {1 Programs exercising dag+spec speculation} *)

val speculative_program : ?workers:int -> ?fanout:int -> unit -> Ast.modul
(** [workers] functions each writing only their own [fanout] private
    scalar globals — dynamically independent, but compiled with
    [max_tracked < fanout] (and the abstract interpretation off or
    starved) every summary hits the tracking cap and sound mode pins
    every pair with a [Summary_limit] edge.  dag+lpt serializes the
    section; dag+spec speculates past the cold edges and commits every
    attempt. *)

val racy_program : ?scatters:int -> unit -> Ast.modul
(** [scatters] functions all writing a shared accumulator array through
    data-dependent indices no interval reasoning can separate: every
    pair is a speculative and genuinely conflicting (hot) edge, so
    overlapped dag+spec attempts are guaranteed to roll back, while the
    compiled artifact stays bit-identical to a sequential build. *)

(** {1 Multi-module projects (cross-module analysis)} *)

type shape = Layered | Diamond | Clustered

val all_shapes : shape list

val shape_name : shape -> string
(** ["layered"] / ["diamond"] / ["clustered"]. *)

val shape_of_string : string -> shape option

val project_program :
  ?modules:int -> ?seed:int -> shape:shape -> unit -> Ast.modul list
(** A synthetic [modules]-module W2 project wired by [import]/[export]
    declarations, deterministic in its arguments and returned in
    dependency order (imports only point at earlier modules).  Module
    [i] is ["m<i>"] with the single section ["sec_m<i>"]; its functions
    are ["m<i>_f<j>"] with [f0] the entry; every exported function has
    the signature [(int, int) : float]; a module exports exactly what
    some other module imports.

    [Layered] and [Diamond] projects are lint-clean (safe under
    [--Werror]).  [Clustered] projects group modules into clusters of
    eight around a hub whose single accessor function owns a cluster
    global: the three importing clients really couple on the hub's
    state ([xmodule_global] edges), one client localizes a
    same-named global (the W011 witness — so clustered projects warn
    by design), and every fourth cluster exercises channel X.
    @raise Invalid_argument below 2 modules. *)

(** {1 Random programs for property-based testing} *)

val random_function :
  ?allow_channels:bool -> seed:int -> size:int -> unit -> Ast.func
(** A random but always well-typed, always-terminating function named
    [prop_f] with parameters [(n : int, a : float)].  With
    [allow_channels], statements may send on channel X. *)

(** {1 Edits for the compile-cache experiments} *)

val touch : Ast.func -> Ast.func
(** A behaviour-preserving edit: prepend a dead conditional
    ([if false then end]) to the function's body.  Parses and
    type-checks, changes the rendered source — hence the analyzer's
    content hash and every compile-cache key derived from it — while
    leaving effect summaries, the dependence DAG and the generated
    code's semantics alone. *)

val touch_in : Ast.modul -> string -> Ast.modul
(** {!touch} applied to the named function wherever it occurs.
    @raise Invalid_argument when no function has that name. *)
