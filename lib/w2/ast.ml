(* Abstract syntax of the W2-flavoured language.

   The shape mirrors the source structure described in section 3.1 of the
   paper: a module contains section programs (one per group of Warp
   cells), a section contains one or more functions, and functions are
   the unit of parallel compilation.  [send] and [receive] expose the
   systolic X and Y channels that connect neighbouring cells. *)

type ty = Tint | Tfloat | Tbool | Tarray of int * ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

(* The two systolic data channels of a Warp cell.  A [receive] reads the
   channel coming from the left neighbour; a [send] feeds the right
   neighbour. *)
type channel = Chan_x | Chan_y

type expr = { e : expr_node; eloc : Loc.t }

and expr_node =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of string * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { s : stmt_node; sloc : Loc.t }

and stmt_node =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Send of channel * expr
  | Receive of channel * lvalue
  | Return of expr option
  | Call_stmt of string * expr list

type param = { pname : string; pty : ty; ploc : Loc.t }
type decl = { dname : string; dty : ty; dloc : Loc.t }

type func = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : decl list;
  body : stmt list;
  floc : Loc.t;
}

(* Section-level [globals] declare per-cell static storage visible to
   every function of the section.  The reproduction's backend localizes
   them (each activation gets a default-initialized copy — the cell
   simulator's register-window model has no static segment), so their
   interest is chiefly *compile-time*: functions touching the same
   global are coupled, which the dependence analyzer tracks. *)
type section = {
  sname : string;
  cells : int;
  globals : decl list;
  funcs : func list;
  secloc : Loc.t;
}

(* Cross-module interface declarations.  An [import] names another
   module and the signatures of the functions it pulls in — the
   signature is repeated at the import site so a module can be checked
   (and separately analyzed) without its dependencies' sources, the
   separate-compilation discipline {!Analysis.Modan} builds on.  An
   [export] marks a function as part of the module's interface; only
   exported functions may be imported elsewhere. *)
type import_sig = {
  is_name : string;
  is_params : ty list;
  is_ret : ty option;
  is_loc : Loc.t;
}

type import_decl = {
  im_module : string; (** the providing module *)
  im_sigs : import_sig list;
  im_loc : Loc.t;
}

type export_decl = { ex_name : string; ex_loc : Loc.t }

type modul = {
  mname : string;
  imports : import_decl list;
  exports : export_decl list;
  sections : section list;
  mloc : Loc.t;
}

let imported_sigs (m : modul) : import_sig list =
  List.concat_map (fun im -> im.im_sigs) m.imports

let imports_function (m : modul) name =
  List.exists
    (fun im -> List.exists (fun s -> s.is_name = name) im.im_sigs)
    m.imports

let exports_function (m : modul) name =
  List.exists (fun e -> e.ex_name = name) m.exports

(* Names of the built-in functions understood by the checker, the
   interpreter and the code generator. *)
let builtins =
  [
    ("sqrt", ([ Tfloat ], Tfloat));
    ("abs", ([ Tfloat ], Tfloat));
    ("iabs", ([ Tint ], Tint));
    ("min", ([ Tfloat; Tfloat ], Tfloat));
    ("max", ([ Tfloat; Tfloat ], Tfloat));
    ("imin", ([ Tint; Tint ], Tint));
    ("imax", ([ Tint; Tint ], Tint));
    ("float", ([ Tint ], Tfloat));
    ("trunc", ([ Tfloat ], Tint));
  ]

let is_builtin name = List.mem_assoc name builtins

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tarray (n, t) -> Printf.sprintf "array[%d] of %s" n (ty_to_string t)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let channel_to_string = function Chan_x -> "X" | Chan_y -> "Y"

(* Structural metrics used by the load-balancing heuristic of section 4.3
   ("a combination of lines of code and loop nesting can serve as
   approximation of the compilation time"). *)

let rec stmt_count stmts =
  let node s =
    match s.s with
    | Assign _ | Send _ | Receive _ | Return _ | Call_stmt _ -> 1
    | If (_, t, e) -> 1 + stmt_count t + stmt_count e
    | While (_, b) -> 1 + stmt_count b
    | For (_, _, _, b) -> 1 + stmt_count b
  in
  List.fold_left (fun acc s -> acc + node s) 0 stmts

let rec max_loop_nesting stmts =
  let node s =
    match s.s with
    | Assign _ | Send _ | Receive _ | Return _ | Call_stmt _ -> 0
    | If (_, t, e) -> max (max_loop_nesting t) (max_loop_nesting e)
    | While (_, b) | For (_, _, _, b) -> 1 + max_loop_nesting b
  in
  List.fold_left (fun acc s -> max acc (node s)) 0 stmts

(* Approximate source lines of a function: declarations plus statements
   plus the header/footer lines the pretty printer emits.  The generator
   targets this metric when synthesising the f_tiny..f_huge programs. *)
let func_lines f = 2 + List.length f.locals + stmt_count f.body

let section_lines sec =
  List.fold_left
    (fun acc f -> acc + func_lines f)
    (2 + List.length sec.globals)
    sec.funcs

let module_lines m =
  List.fold_left
    (fun acc s -> acc + section_lines s)
    (2 + List.length m.imports + List.length m.exports)
    m.sections

let func_count m =
  List.fold_left (fun acc s -> acc + List.length s.funcs) 0 m.sections

let find_function m ~section ~name =
  List.find_opt (fun s -> s.sname = section) m.sections
  |> Option.map (fun s -> List.find_opt (fun f -> f.fname = name) s.funcs)
  |> Option.join
