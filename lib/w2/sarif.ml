(* SARIF 2.1.0 rendering of Diag diagnostics. *)

let version = "2.1.0"
let spf = Printf.sprintf

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (spf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Short rule descriptions, stable across runs so SARIF consumers can
   key fingerprints off them. *)
let rule_description = function
  | "W001" -> "Unused variable"
  | "W002" -> "Unused parameter"
  | "W003" -> "Dead store"
  | "W004" -> "Unreachable statement after a return"
  | "W005" -> "Assignment into an enclosing for-loop variable"
  | "W006" -> "Constant condition"
  | "W007" -> "Function never called from its section"
  | "W008" -> "Section global written by one function and accessed by a sibling"
  | "W009" -> "Channel with sends but no receives"
  | "W010" -> "Import declaration disagrees with the link"
  | "W011" -> "Cross-module write to a global another module localizes"
  | "W012" -> "Exported function never imported"
  | code when String.length code > 0 && code.[0] = 'V' ->
    "Intermediate-representation verifier finding"
  | _ -> "warpcc diagnostic"

let level_of = function
  | Diag.Note -> "note"
  | Diag.Warning -> "warning"
  | Diag.Error -> "error"

let is_dummy (l : Loc.t) = l.Loc.file = "" && l.Loc.line = 0

let to_string ?(tool_name = "warpcc") ?(tool_version = "1.0.0") diags =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let codes =
    List.sort_uniq compare (List.map (fun d -> d.Diag.d_code) diags)
  in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"%s\",\n" version;
  add "  \"runs\": [\n    {\n";
  add "      \"tool\": {\n        \"driver\": {\n";
  add "          \"name\": \"%s\",\n" (escape tool_name);
  add "          \"version\": \"%s\",\n" (escape tool_version);
  add "          \"informationUri\": \"https://github.com/warpcc/warpcc\",\n";
  add "          \"rules\": [\n";
  List.iteri
    (fun i code ->
      add
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}%s\n"
        (escape code)
        (escape (rule_description code))
        (if i = List.length codes - 1 then "" else ","))
    codes;
  add "          ]\n        }\n      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i (d : Diag.t) ->
      add "        {\n";
      add "          \"ruleId\": \"%s\",\n" (escape d.Diag.d_code);
      add "          \"level\": \"%s\",\n" (level_of d.Diag.d_severity);
      add "          \"message\": {\"text\": \"%s\"}%s\n"
        (escape
           (match d.Diag.d_func with
           | Some f -> spf "[%s] %s" f d.Diag.d_message
           | None -> d.Diag.d_message))
        (if is_dummy d.Diag.d_loc then "" else ",");
      if not (is_dummy d.Diag.d_loc) then begin
        add "          \"locations\": [\n";
        add "            {\"physicalLocation\": {\n";
        add "              \"artifactLocation\": {\"uri\": \"%s\"},\n"
          (escape d.Diag.d_loc.Loc.file);
        add "              \"region\": {\"startLine\": %d, \"startColumn\": %d}\n"
          (max 1 d.Diag.d_loc.Loc.line)
          (max 1 d.Diag.d_loc.Loc.col);
        add "            }}\n          ]\n"
      end;
      add "        }%s\n" (if i = List.length diags - 1 then "" else ","))
    diags;
  add "      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
