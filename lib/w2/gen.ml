(* Synthetic W2 programs.

   Section 4.1 of the paper derives its test programs from a Monte-Carlo
   style simulation: five functions of 4, 35, 100, 280 and 360 lines of
   code, each "a loop nest (with deeply nested loop bodies in the case
   of the larger programs)".  [benchmark_function] reconstructs that
   series: a pseudo-random float kernel inside a loop nest whose depth
   grows with the size, padded to hit the requested line count exactly
   (as counted by [Pretty.func_loc]).

   [random_function] produces arbitrary—but always well-typed and
   terminating—functions for property-based tests. *)

let dummy = Loc.dummy

(* --- tiny AST-building DSL --- *)

let ex e = { Ast.e; eloc = dummy }
let st s = { Ast.s; sloc = dummy }
let int n = ex (Ast.Int_lit n)
let flt f = ex (Ast.Float_lit f)
let var name = ex (Ast.Var name)
let idx name i = ex (Ast.Index (name, i))
let bin op a b = ex (Ast.Binary (op, a, b))
let call name args = ex (Ast.Call (name, args))
let assign name value = st (Ast.Assign (Ast.Lvar name, value))
let store name i value = st (Ast.Assign (Ast.Lindex (name, i), value))
let for_ v lo hi body = st (Ast.For (v, int lo, int hi, body))
let if_ cond t e = st (Ast.If (cond, t, e))
let return_ value = st (Ast.Return (Some value))

let decl name ty = { Ast.dname = name; dty = ty; dloc = dummy }
let param name ty = { Ast.pname = name; pty = ty; ploc = dummy }

(* --- deterministic statement stream --- *)

(* A tiny LCG drives the choice of kernel statements so that a given
   (name, size) pair always produces the same function. *)
type rng = { mutable state : int }

let rng_make seed = { state = (seed * 2654435761) land 0x3FFFFFFF }

let rng_next rng bound =
  rng.state <- ((rng.state * 1103515245) + 12345) land 0x3FFFFFFF;
  rng.state mod bound

(* One-line kernel statements over the float variables in scope.  Every
   template is non-expanding (coefficient sums stay below 1), so however
   many of them the padding emits, all values remain bounded and the
   interpreter result stays finite. *)
let kernel_stmt rng ~floats ~index_var =
  let pick xs = List.nth xs (rng_next rng (List.length xs)) in
  let f1 = pick floats and f2 = pick floats in
  let c = 0.0625 *. float_of_int (1 + rng_next rng 7) in
  let damped a b = bin Ast.Add (bin Ast.Mul a (flt 0.5)) (bin Ast.Mul b (flt c)) in
  match rng_next rng 6 with
  | 0 -> assign f1 (damped (var f1) (var f2))
  | 1 -> assign f1 (bin Ast.Mul (var f1) (flt 0.5))
  | 2 -> assign f1 (bin Ast.Sub (bin Ast.Mul (bin Ast.Add (var f1) (var f2)) (flt 0.5)) (flt c))
  | 3 -> assign f1 (call "max" [ bin Ast.Mul (var f1) (flt 0.5); bin Ast.Mul (var f2) (flt c) ])
  | 4 -> assign f1 (damped (var f1) (call "abs" [ var f2 ]))
  | 5 ->
    store "tbl" (bin Ast.Mod (var index_var) (int 16))
      (damped (idx "tbl" (bin Ast.Mod (var index_var) (int 16))) (var f1))
  | _ -> assert false

let floats_in_scope = [ "acc"; "x"; "y"; "t0"; "t1" ]

(* Purely scalar one-line statements; used where no table is in scope.
   Non-expanding, like [kernel_stmt]. *)
let scalar_kernel_stmt rng ~floats =
  let pick xs = List.nth xs (rng_next rng (List.length xs)) in
  let f1 = pick floats and f2 = pick floats in
  let c = 0.0625 *. float_of_int (1 + rng_next rng 7) in
  match rng_next rng 4 with
  | 0 -> assign f1 (bin Ast.Add (bin Ast.Mul (var f1) (flt 0.5)) (bin Ast.Mul (var f2) (flt c)))
  | 1 -> assign f1 (bin Ast.Mul (var f1) (flt 0.5))
  | 2 -> assign f1 (bin Ast.Sub (bin Ast.Mul (bin Ast.Add (var f1) (var f2)) (flt 0.5)) (flt c))
  | _ -> assign f1 (call "max" [ bin Ast.Mul (var f1) (flt 0.5); bin Ast.Mul (var f2) (flt c) ])

(* The Monte-Carlo step: advance the integer pseudo-random state [s] and
   derive a sample in [0, 1). *)
let monte_carlo_step =
  [
    assign "s" (bin Ast.Mod (bin Ast.Add (bin Ast.Mul (var "s") (int 1103)) (int 12345)) (int 65536));
    assign "x" (bin Ast.Div (call "float" [ bin Ast.Mod (var "s") (int 1024) ]) (flt 1024.0));
    assign "y" (bin Ast.Add (bin Ast.Mul (var "y") (flt 0.75)) (var "x"));
  ]

(* Build a loop nest of the given depth whose innermost body is
   [innermost]; every level contributes a little computation so that the
   flowgraph has realistic structure. *)
let rec loop_nest rng depth ~level innermost =
  if depth = 0 then innermost
  else
    let v = Printf.sprintf "i%d" level in
    let body =
      kernel_stmt rng ~floats:floats_in_scope ~index_var:v
      :: loop_nest rng (depth - 1) ~level:(level + 1) innermost
    in
    [ for_ v 0 3 body ]

let benchmark_locals =
  [
    decl "s" Ast.Tint;
    decl "i0" Ast.Tint;
    decl "i1" Ast.Tint;
    decl "i2" Ast.Tint;
    decl "i3" Ast.Tint;
    decl "acc" Ast.Tfloat;
    decl "x" Ast.Tfloat;
    decl "y" Ast.Tfloat;
    decl "t0" Ast.Tfloat;
    decl "t1" Ast.Tfloat;
    decl "tbl" (Ast.Tarray (16, Ast.Tfloat));
  ]

let benchmark_inits =
  [
    assign "s" (var "seed");
    assign "acc" (flt 0.0);
    assign "x" (flt 0.0);
    assign "y" (flt 1.0);
    assign "t0" (flt 0.25);
    assign "t1" (flt 0.5);
  ]

(* A function of exactly [lines] lines (as counted by [Pretty.func_loc]),
   provided [lines] is at least [min_benchmark_lines]. *)
let min_benchmark_lines = 33

let benchmark_function ~name ~lines =
  if lines < min_benchmark_lines then
    invalid_arg
      (Printf.sprintf "Gen.benchmark_function: need at least %d lines"
         min_benchmark_lines);
  let rng = rng_make (Hashtbl.hash (name, lines)) in
  let depth = if lines < 60 then 1 else if lines < 150 then 2 else 3 in
  let make fill =
    let fillers =
      List.init fill (fun _ ->
          kernel_stmt rng ~floats:floats_in_scope ~index_var:"i0")
    in
    (* Innermost loop bodies are branchless (like real systolic kernels),
       which keeps them software-pipelinable; the conditional sits after
       the nest so every function still has interesting control flow. *)
    let inner =
      monte_carlo_step
      @ [ assign "acc" (bin Ast.Add (var "acc") (bin Ast.Mul (var "x") (flt 0.25))) ]
      @ fillers
    in
    let body =
      benchmark_inits
      @ loop_nest rng depth ~level:0 inner
      @ [
          if_
            (bin Ast.Lt (var "acc") (flt 8.0))
            [ assign "acc" (bin Ast.Add (var "acc") (var "y")) ]
            [ assign "acc" (bin Ast.Mul (var "acc") (flt 0.5)) ];
          return_ (bin Ast.Add (var "acc") (idx "tbl" (int 0)));
        ]
    in
    {
      Ast.fname = name;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = benchmark_locals;
      body;
      floc = dummy;
    }
  in
  (* The skeleton has a fixed line count; each filler statement adds one
     line, so one measurement gives the exact fill. *)
  let base = Pretty.func_loc (make 0) in
  let fill = lines - base in
  if fill < 0 then
    invalid_arg
      (Printf.sprintf
         "Gen.benchmark_function: %d lines requested but skeleton needs %d"
         lines base)
  else make fill

(* A function in the spirit of f_tiny, exactly 4 lines of code:
   header, begin, one statement, end. *)
let tiny_function ~name =
  {
    Ast.fname = name;
    params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
    ret = Some Ast.Tfloat;
    locals = [];
    body =
      [ return_ (bin Ast.Add (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.5)) (flt 1.0)) ];
    floc = dummy;
  }

(* The five paper sizes (section 4.1). *)
type size = Tiny | Small | Medium | Large | Huge

let all_sizes = [ Tiny; Small; Medium; Large; Huge ]

let size_lines = function
  | Tiny -> 4
  | Small -> 35
  | Medium -> 100
  | Large -> 280
  | Huge -> 360

let size_name = function
  | Tiny -> "f_tiny"
  | Small -> "f_small"
  | Medium -> "f_medium"
  | Large -> "f_large"
  | Huge -> "f_huge"

let sized_function ~name size =
  match size with
  | Tiny -> tiny_function ~name
  | Small | Medium | Large | Huge ->
    benchmark_function ~name ~lines:(size_lines size)

(* Function of an arbitrary line count (used by Figure 7's size sweep and
   by the user program).  Below the Monte-Carlo minimum we fall back on a
   literal small function padded with one-line statements. *)
let function_of_lines ~name lines =
  if lines >= min_benchmark_lines then benchmark_function ~name ~lines
  else if lines <= 5 then begin
    (* Pad the 4-line tiny skeleton with integer updates. *)
    let base = tiny_function ~name in
    let fill = max 0 (lines - 4) in
    let fillers = List.init fill (fun _ -> assign "n" (bin Ast.Add (var "n") (int 1))) in
    { base with Ast.body = fillers @ base.Ast.body }
  end
  else begin
    (* Six-line scalar skeleton padded with one-line kernel statements. *)
    let rng = rng_make (Hashtbl.hash (name, lines)) in
    let fill = lines - 6 in
    let fillers =
      List.init fill (fun _ -> scalar_kernel_stmt rng ~floats:[ "x" ])
    in
    {
      Ast.fname = name;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "x" Ast.Tfloat ];
      body =
        (assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.5)) :: fillers)
        @ [ return_ (bin Ast.Add (var "x") (flt 1.0)) ];
      floc = dummy;
    }
  end

(* S_n of the paper: one section with [count] copies of the same
   function. *)
let s_program ?(name = "S") ~size ~count () =
  let funcs =
    List.init count (fun i ->
        sized_function ~name:(Printf.sprintf "%s_%d" (size_name size) (i + 1)) size)
  in
  {
    Ast.mname = Printf.sprintf "%s%d_%s" name count (size_name size);
    sections = [ { Ast.sname = "sec1"; cells = 10; globals = []; funcs; secloc = dummy } ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* The mechanical-engineering application of section 4.3: three sections
   of three functions each; per section one function of about 300 lines
   (19-22 sequential minutes) and two of 5-45 lines (2-6 minutes). *)
let user_program () =
  let section i =
    let big = function_of_lines ~name:(Printf.sprintf "solve_%d" i) 300 in
    let small1 = function_of_lines ~name:(Printf.sprintf "prep_%d" i) (30 + (5 * i)) in
    let small2 = function_of_lines ~name:(Printf.sprintf "post_%d" i) (45 - (7 * i)) in
    {
      Ast.sname = Printf.sprintf "stage%d" i;
      cells = 3;
      globals = [];
      funcs = [ big; small1; small2 ];
      secloc = dummy;
    }
  in
  {
    Ast.mname = "mech_eng_app";
    sections = [ section 1; section 2; section 3 ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* --- random functions for property-based testing --- *)

(* Always well-typed, always terminating: loops are constant-bounded
   [for] loops, conditions compare float expressions, and there are no
   calls (call-graph properties are tested separately). *)
let random_function ?(allow_channels = false) ~seed ~size () =
  let rng = rng_make seed in
  let size = max 1 (size mod 40) in
  let ints = [ "n"; "k" ] in
  let floats = [ "a"; "b"; "c" ] in
  let rec random_fexpr depth =
    if depth = 0 then
      match rng_next rng 3 with
      | 0 -> flt (0.25 *. float_of_int (rng_next rng 32))
      | 1 -> var (List.nth floats (rng_next rng 3))
      | _ -> idx "arr" (bin Ast.Mod (var "n") (int 8))
    else
      match rng_next rng 6 with
      | 0 -> bin Ast.Add (random_fexpr (depth - 1)) (random_fexpr (depth - 1))
      | 1 -> bin Ast.Sub (random_fexpr (depth - 1)) (random_fexpr (depth - 1))
      | 2 -> bin Ast.Mul (random_fexpr (depth - 1)) (flt 0.5)
      | 3 -> call "abs" [ random_fexpr (depth - 1) ]
      | 4 -> call "max" [ random_fexpr (depth - 1); random_fexpr (depth - 1) ]
      | _ -> random_fexpr (depth - 1)
  in
  let random_iexpr () =
    match rng_next rng 3 with
    | 0 -> int (rng_next rng 16)
    | 1 -> var (List.nth ints (rng_next rng 2))
    | _ -> bin Ast.Add (var (List.nth ints (rng_next rng 2))) (int (rng_next rng 8))
  in
  let rec random_stmt depth =
    match rng_next rng (if depth = 0 then 4 else if allow_channels then 8 else 7) with
    | 0 -> assign (List.nth floats (rng_next rng 3)) (random_fexpr 2)
    | 1 -> assign (List.nth ints (rng_next rng 2)) (bin Ast.Mod (random_iexpr ()) (int 13))
    | 2 -> store "arr" (bin Ast.Mod (random_iexpr ()) (int 8)) (random_fexpr 1)
    | 3 -> assign "a" (call "sqrt" [ call "abs" [ random_fexpr 1 ] ])
    | 4 ->
      if_
        (bin Ast.Lt (random_fexpr 1) (random_fexpr 1))
        (random_stmts (depth - 1) (1 + rng_next rng 3))
        (if rng_next rng 2 = 0 then []
         else random_stmts (depth - 1) (1 + rng_next rng 2))
    | 5 ->
      for_
        (Printf.sprintf "l%d" depth)
        0
        (rng_next rng 5)
        (random_stmts (depth - 1) (1 + rng_next rng 3))
    | 6 ->
      st
        (Ast.While
           ( bin Ast.Gt (var "w") (int 0),
             random_stmts (depth - 1) (1 + rng_next rng 2)
             @ [ assign "w" (bin Ast.Sub (var "w") (int 1)) ] ))
    | _ ->
      (* Channel traffic: send a float, so array cells stay floats. *)
      st (Ast.Send (Ast.Chan_x, random_fexpr 1))
  and random_stmts depth count = List.init count (fun _ -> random_stmt depth)
  in
  let body = random_stmts 2 size in
  {
    Ast.fname = "prop_f";
    params = [ param "n" Ast.Tint; param "a" Ast.Tfloat ];
    ret = Some Ast.Tfloat;
    locals =
      [
        decl "k" Ast.Tint;
        decl "w" Ast.Tint;
        decl "b" Ast.Tfloat;
        decl "c" Ast.Tfloat;
        decl "l0" Ast.Tint;
        decl "l1" Ast.Tint;
        decl "l2" Ast.Tint;
        decl "arr" (Ast.Tarray (8, Ast.Tfloat));
      ];
    body = (assign "w" (bin Ast.Mod (var "n") (int 7))) :: body @ [ return_ (bin Ast.Add (var "a") (var "b")) ];
    floc = dummy;
  }

(* Wrap a lone function as a single-section module. *)
let module_of_function f =
  {
    Ast.mname = "m_" ^ f.Ast.fname;
    sections = [ { Ast.sname = "sec1"; cells = 1; globals = []; funcs = [ f ]; secloc = dummy } ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* A program in the style that motivates procedure inlining (section
   5.1): a few driver functions, each calling several small helpers.
   Compiled as-is, the parallel grain is tiny; after [Inline.expand] the
   drivers absorb their helpers and the grain grows. *)
let helper_program ?(drivers = 6) ?(helpers_per = 3) ?(helper_lines = 8) () =
  let helper_name d h = Printf.sprintf "help_%d_%d" d h
  in
  let driver d =
    let calls =
      List.init helpers_per (fun h ->
          assign "acc"
            (bin Ast.Add (var "acc")
               (bin Ast.Mul
                  (call (helper_name d h) [ bin Ast.Add (var "seed") (var "i"); var "i" ])
                  (flt 0.5))))
    in
    {
      Ast.fname = Printf.sprintf "driver_%d" d;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "acc" Ast.Tfloat ];
      body =
        [ assign "acc" (flt 0.0); for_ "i" 0 7 calls; return_ (var "acc") ];
      floc = dummy;
    }
  in
  let funcs =
    List.concat
      (List.init drivers (fun d ->
           driver d
           :: List.init helpers_per (fun h ->
                  function_of_lines ~name:(helper_name d h) helper_lines)))
  in
  {
    Ast.mname = "many_small_functions";
    sections = [ { Ast.sname = "sec1"; cells = 4; globals = []; funcs; secloc = dummy } ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* --- programs exercising the abstract-interpretation refinement --- *)

(* A partitioned lattice relaxation: every worker writes its own
   contiguous slice of the shared lattice (literal loop bounds, so the
   region domain sees exact slices), and a collector sums the whole
   array after calling every worker.  Flow-insensitive analysis draws a
   global-conflict edge between every pair of workers; the region
   domain refutes all of them, leaving only the genuine worker ->
   collector dependences. *)
let partitioned_program ?(workers = 4) ?(seg = 4) () =
  let cells = workers * seg in
  let worker k =
    let lo = k * seg and hi = (k * seg) + seg - 1 in
    {
      Ast.fname = Printf.sprintf "worker_%d" k;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "x" Ast.Tfloat ];
      body =
        [
          assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.0625));
          for_ "i" lo hi
            [
              store "lattice" (var "i")
                (bin Ast.Add
                   (bin Ast.Mul (var "x") (flt 0.5))
                   (bin Ast.Mul (call "float" [ var "i" ]) (flt 0.0625)));
            ];
          return_ (var "x");
        ];
      floc = dummy;
    }
  in
  let collect =
    let acc_calls =
      List.init workers (fun k ->
          assign "acc"
            (bin Ast.Add (var "acc")
               (call
                  (Printf.sprintf "worker_%d" k)
                  [ bin Ast.Add (var "seed") (int k); var "n" ])))
    in
    {
      Ast.fname = "collect";
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "acc" Ast.Tfloat ];
      body =
        (assign "acc" (flt 0.0) :: acc_calls)
        @ [
            for_ "i" 0 (cells - 1)
              [
                assign "acc"
                  (bin Ast.Add
                     (bin Ast.Mul (var "acc") (flt 0.5))
                     (idx "lattice" (var "i")));
              ];
            return_ (var "acc");
          ];
      floc = dummy;
    }
  in
  {
    Ast.mname = "partitioned_lattice";
    sections =
      [
        {
          Ast.sname = "lattice_sec";
          cells = workers;
          globals = [ decl "lattice" (Ast.Tarray (cells, Ast.Tfloat)) ];
          funcs = List.init workers worker @ [ collect ];
          secloc = dummy;
        };
      ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* A histogram with a shared pure helper: every counter owns exactly
   one literal-indexed bin of the shared [hist] array, and all of them
   call the same smoothing helper.  The helper edges (inline/signature)
   are genuine and survive; the counter-counter global-conflict edges
   are refuted element-wise, and the helper itself is judged pure. *)
let histogram_program ?(drivers = 4) () =
  let helper =
    {
      Ast.fname = "smooth";
      params = [ param "v" Ast.Tfloat ];
      ret = Some Ast.Tfloat;
      locals = [];
      body =
        [ return_ (bin Ast.Add (bin Ast.Mul (var "v") (flt 0.5)) (flt 0.0625)) ];
      floc = dummy;
    }
  in
  let driver d =
    {
      Ast.fname = Printf.sprintf "count_%d" d;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "x" Ast.Tfloat ];
      body =
        [
          assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.0625));
          for_ "i" 0 7
            [
              assign "x"
                (call "smooth"
                   [ bin Ast.Add (var "x") (call "float" [ var "i" ]) ]);
            ];
          store "hist" (int d) (var "x");
          return_ (var "x");
        ];
      floc = dummy;
    }
  in
  {
    Ast.mname = "histogram";
    sections =
      [
        {
          Ast.sname = "hist_sec";
          cells = drivers;
          globals = [ decl "hist" (Ast.Tarray (drivers, Ast.Tfloat)) ];
          funcs = helper :: List.init drivers driver;
          secloc = dummy;
        };
      ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* --- programs exercising the dag+spec speculation machinery --- *)

(* Dynamically independent workers the analyzer cannot prove apart:
   worker [k] writes only its own [fanout] private scalar globals, so
   the pairs share no state — but compiled with [max_tracked] below
   [fanout] every summary hits the tracking cap, and sound mode pins
   every worker pair with a [Summary_limit] edge.  dag+lpt serializes
   the section; dag+spec speculates past the (cold) edges and every
   attempt commits.  Compile with [~absint:false] (or a conservative
   interval budget) so the refinement cannot discharge the limit. *)
let speculative_program ?(workers = 4) ?(fanout = 24) () =
  let gname k j = Printf.sprintf "g_%d_%d" k j in
  let worker k =
    let writes =
      List.init fanout (fun j ->
          assign (gname k j)
            (bin Ast.Add
               (bin Ast.Mul (var "x") (flt 0.5))
               (bin Ast.Mul (call "float" [ int j ]) (flt 0.0625))))
    in
    {
      Ast.fname = Printf.sprintf "stage_%d" k;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "x" Ast.Tfloat ];
      body =
        [
          assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.0625));
          for_ "i" 0 7
            [
              assign "x"
                (bin Ast.Add (bin Ast.Mul (var "x") (flt 0.5)) (flt 0.125));
            ];
        ]
        @ writes
        @ [ return_ (var "x") ];
      floc = dummy;
    }
  in
  let globals =
    List.concat
      (List.init workers (fun k ->
           List.init fanout (fun j -> decl (gname k j) Ast.Tfloat)))
  in
  {
    Ast.mname = "speculative_stages";
    sections =
      [
        {
          Ast.sname = "spec_sec";
          cells = workers;
          globals;
          funcs = List.init workers worker;
          secloc = dummy;
        };
      ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* Deliberately racy: every scatter function writes the shared
   accumulator array through a data-dependent index (derived from its
   seed parameter), which no interval reasoning can split into disjoint
   regions.  The unrefuted global conflicts make every pair a
   speculative {e and} genuinely hot edge, so dag+spec attempts that
   overlap a predecessor are rolled back by the commit oracle — the
   guaranteed-misspeculation input.  The compiled artifact is
   schedule-independent, so its output must match a sequential build
   bit for bit no matter how many rollbacks the run takes. *)
let racy_program ?(scatters = 3) () =
  let scatter k =
    {
      Ast.fname = Printf.sprintf "scatter_%d" k;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals = [ decl "i" Ast.Tint; decl "s" Ast.Tint; decl "x" Ast.Tfloat ];
      body =
        [
          assign "s" (bin Ast.Mod (var "seed") (int 8));
          assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.0625));
          for_ "i" 0 7
            [
              assign "s"
                (bin Ast.Mod
                   (bin Ast.Add (bin Ast.Mul (var "s") (int 5)) (int (3 + k)))
                   (int 8));
              store "acc"
                (var "s")
                (bin Ast.Add
                   (bin Ast.Mul (idx "acc" (var "s")) (flt 0.5))
                   (var "x"));
            ];
          return_ (bin Ast.Add (var "x") (idx "acc" (int 0)));
        ];
      floc = dummy;
    }
  in
  {
    Ast.mname = "racy_scatter";
    sections =
      [
        {
          Ast.sname = "racy_sec";
          cells = scatters;
          globals = [ decl "acc" (Ast.Tarray (8, Ast.Tfloat)) ];
          funcs = List.init scatters scatter;
          secloc = dummy;
        };
      ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* Channel traffic with one provably dead sender: [probe]'s send sits
   in a loop whose range is empty ([for i := 1 to 0]), so its X
   multiplicity is exactly [0,0] and the protocol domain prunes its
   channel pairings with the live [pump]/[drain] pair (which keeps its
   edge: those two really do share the cell array's X stream). *)
let deadchan_program () =
  let ffun name body locals =
    {
      Ast.fname = name;
      params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
      ret = Some Ast.Tfloat;
      locals;
      body;
      floc = dummy;
    }
  in
  let probe =
    ffun "probe"
      [
        assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.5));
        for_ "i" 1 0 [ st (Ast.Send (Ast.Chan_x, var "x")) ];
        return_ (var "x");
      ]
      [ decl "i" Ast.Tint; decl "x" Ast.Tfloat ]
  in
  let pump =
    ffun "pump"
      [
        assign "x" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.25));
        for_ "i" 0 3
          [ st (Ast.Send (Ast.Chan_x, bin Ast.Mul (var "x") (flt 0.5))) ];
        return_ (var "x");
      ]
      [ decl "i" Ast.Tint; decl "x" Ast.Tfloat ]
  in
  let drain =
    ffun "drain"
      [
        assign "x" (flt 0.0);
        for_ "i" 0 3
          [
            st (Ast.Receive (Ast.Chan_x, Ast.Lvar "y"));
            assign "x" (bin Ast.Add (bin Ast.Mul (var "x") (flt 0.5)) (var "y"));
          ];
        return_ (var "x");
      ]
      [ decl "i" Ast.Tint; decl "x" Ast.Tfloat; decl "y" Ast.Tfloat ]
  in
  {
    Ast.mname = "deadchan";
    sections =
      [
        {
          Ast.sname = "chan_sec";
          cells = 4;
          globals = [];
          funcs = [ probe; pump; drain ];
          secloc = dummy;
        };
      ];
    imports = [];
    exports = [];
    mloc = dummy;
  }

(* --- multi-module projects for the modular cross-module analysis --- *)

type shape = Layered | Diamond | Clustered

let all_shapes = [ Layered; Diamond; Clustered ]

let shape_name = function
  | Layered -> "layered"
  | Diamond -> "diamond"
  | Clustered -> "clustered"

let shape_of_string = function
  | "layered" -> Some Layered
  | "diamond" -> Some Diamond
  | "clustered" -> Some Clustered
  | _ -> None

(* A worker function of roughly [lines] lines that uses both parameters
   (unlike [function_of_lines], whose small skeletons leave [n] unused
   and would trip W002 in a -Werror project gate).  Every kernel
   statement reads the variable it assigns, so there are no dead
   stores either: the workers are lint-clean by construction. *)
let project_worker ~name ~lines rng =
  let fill = max 0 (lines - 7) in
  let fillers =
    List.init fill (fun _ -> scalar_kernel_stmt rng ~floats:[ "x"; "y" ])
  in
  {
    Ast.fname = name;
    params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
    ret = Some Ast.Tfloat;
    locals = [ decl "x" Ast.Tfloat; decl "y" Ast.Tfloat ];
    body =
      assign "x"
        (bin Ast.Mul
           (call "float" [ bin Ast.Add (var "seed") (bin Ast.Mod (var "n") (int 5)) ])
           (flt 0.0625))
      :: assign "y" (flt 0.5)
      :: fillers
      @ [ return_ (bin Ast.Add (var "x") (var "y")) ];
    floc = dummy;
  }

(* The entry function of a project module: folds every local worker and
   every imported function into an accumulator (damped, so interpreted
   values stay bounded).  [extra] statements run after the calls —
   hooks for the private-global and channel couplings below. *)
let project_main ~name ~callees ~extra ~extra_locals =
  let calls =
    List.mapi
      (fun k callee ->
        assign "acc"
          (bin Ast.Mul
             (bin Ast.Add (var "acc")
                (call callee [ bin Ast.Add (var "seed") (int k); var "n" ]))
             (flt 0.5)))
      callees
  in
  {
    Ast.fname = name;
    params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
    ret = Some Ast.Tfloat;
    locals = decl "acc" Ast.Tfloat :: extra_locals;
    body =
      (assign "acc" (bin Ast.Mul (call "float" [ var "seed" ]) (flt 0.25)) :: calls)
      @ extra
      @ [ return_ (var "acc") ];
    floc = dummy;
  }

(* A synthetic multi-module W2 project: [modules] single-section
   modules wired by [import]/[export] declarations, deterministic in
   (shape, modules, seed).

   Conventions (what [Analysis.Modan] and the link experiments rely
   on): module [i] is named "m<i>", its section "sec_m<i>"; function
   [j] of module [i] is "m<i>_f<j>" (globally unique); "m<i>_f0" is the
   module's entry and calls every local sibling and every import, so
   W007 never fires; a module exports exactly the functions some other
   module imports, so W012 never fires; every import restates the
   actual (int, int) : float signature, so W010 never fires.  The list
   is returned in dependency order: imports only point at
   earlier modules.

   - [Layered]: four layers; each module of layer L > 0 imports the
     worker of one or two modules of layer L-1.  Lint-clean.
   - [Diamond]: one root; middles import the root's worker; the last
     module imports up to 32 middle workers (and the root directly
     when there are no middles).  Lint-clean.
   - [Clustered]: clusters of eight.  Each cluster's hub owns a
     cluster global [cg_c<c>] behind a single accessor function that
     three client members import and call, so their composed summaries
     really couple on the hub's state; the first client also localizes
     a private global of the {e same name}, the W011 witness.  Every
     fourth cluster routes one client through channel X (matched
     send/receive, so W009 stays quiet).  Trips W011 by design;
     otherwise clean. *)
let project_program ?(modules = 100) ?(seed = 1) ~shape () : Ast.modul list =
  if modules < 2 then
    invalid_arg "Gen.project_program: need at least 2 modules";
  let n = modules in
  let rng = rng_make (Hashtbl.hash (shape_name shape, n, seed)) in
  let mname i = Printf.sprintf "m%d" i in
  let fname i j = Printf.sprintf "m%d_f%d" i j in
  let worker_lines () =
    [| 4; 6; 10; 18; 35 |].(rng_next rng 5)
  in
  let cluster = 8 in
  (* Imports of module [i], as (provider index, provider function
     index) pairs; computed for every module in order so the rng
     stream is deterministic. *)
  let layer i = i * 4 / n in
  let layer_range l =
    (* first (inclusive) and last (exclusive) module index of layer l *)
    let lo = (l * n + 3) / 4 in
    (* invert [layer]: smallest i with i*4/n = l *)
    let lo = if layer lo = l then lo else lo + 1 in
    let rec first j = if j > 0 && layer (j - 1) = l then first (j - 1) else j in
    let lo = first lo in
    let rec last j = if j < n && layer j = l then last (j + 1) else j in
    (lo, last lo)
  in
  let imports_of i =
    match shape with
    | Layered ->
      let l = layer i in
      if l = 0 then []
      else begin
        let lo, hi = layer_range (l - 1) in
        let width = hi - lo in
        let p1 = lo + rng_next rng width in
        let two = width > 1 && rng_next rng 2 = 0 in
        if two then begin
          let p2 = lo + rng_next rng width in
          if p2 = p1 then [ (p1, 1) ] else [ (p1, 1); (p2, 1) ]
        end
        else [ (p1, 1) ]
      end
    | Diamond ->
      if i = 0 then []
      else if i < n - 1 then [ (0, 1) ]
      else if n = 2 then [ (0, 1) ]
      else List.init (min 32 (n - 2)) (fun k -> (1 + k, 1))
    | Clustered ->
      let c = i / cluster and pos = i mod cluster in
      let hub = c * cluster in
      if pos = 0 then []
      else if pos <= 3 then [ (hub, 0) ] (* the hub's accessor *)
      else [ (i - 1, 1) ] (* chain through the previous member *)
  in
  let imports = Array.init n imports_of in
  (* Exports: exactly the functions somebody imports. *)
  let exported = Hashtbl.create 64 in
  Array.iter
    (List.iter (fun (p, j) -> Hashtbl.replace exported (fname p j) ()))
    imports;
  let modul_of i =
    let is_clustered_hub = shape = Clustered && i mod cluster = 0 in
    let c = i / cluster and pos = i mod cluster in
    let cg = Printf.sprintf "cg_c%d" c in
    let funcs, globals =
      if is_clustered_hub then begin
        (* Single accessor owning the cluster global: reads and writes
           it, and is the section's first function, so neither W007 nor
           W008 fires. *)
        let acc =
          {
            Ast.fname = fname i 0;
            params = [ param "seed" Ast.Tint; param "n" Ast.Tint ];
            ret = Some Ast.Tfloat;
            locals = [ decl "x" Ast.Tfloat ];
            body =
              [
                assign "x"
                  (bin Ast.Mul
                     (call "float"
                        [ bin Ast.Add (var "seed") (bin Ast.Mod (var "n") (int 3)) ])
                     (flt 0.125));
                assign cg (bin Ast.Add (bin Ast.Mul (var cg) (flt 0.5)) (var "x"));
                return_ (var cg);
              ];
            floc = dummy;
          }
        in
        ([ acc ], [ decl cg Ast.Tfloat ])
      end
      else begin
        let w1 = project_worker ~name:(fname i 1) ~lines:(worker_lines ()) rng in
        let w2 = project_worker ~name:(fname i 2) ~lines:(worker_lines ()) rng in
        let g = Printf.sprintf "g_m%d" i in
        (* The first clustered client localizes a global of the same
           name as the hub's cluster global — the W011 witness; every
           fourth cluster's second client exercises channel X. *)
        let w011_witness = shape = Clustered && pos = 1 in
        let channels = shape = Clustered && pos = 2 && c mod 4 = 3 in
        let private_global = if w011_witness then cg else g in
        let extra =
          [
            assign private_global (bin Ast.Mul (var "acc") (flt 0.5));
            assign "acc"
              (bin Ast.Mul
                 (bin Ast.Add (var "acc") (var private_global))
                 (flt 0.5));
          ]
          @
          if channels then
            [
              st (Ast.Send (Ast.Chan_x, bin Ast.Mul (var "acc") (flt 0.5)));
              st (Ast.Receive (Ast.Chan_x, Ast.Lvar "tmp"));
              assign "acc"
                (bin Ast.Mul (bin Ast.Add (var "acc") (var "tmp")) (flt 0.5));
            ]
          else []
        in
        let extra_locals = if channels then [ decl "tmp" Ast.Tfloat ] else [] in
        let callees =
          [ fname i 1; fname i 2 ]
          @ List.map (fun (p, j) -> fname p j) imports.(i)
        in
        let main =
          project_main ~name:(fname i 0) ~callees ~extra ~extra_locals
        in
        ([ main; w1; w2 ], [ decl private_global Ast.Tfloat ])
      end
    in
    let import_decls =
      (* One declaration per provider, in provider order. *)
      let by_provider = Hashtbl.create 4 in
      let providers = ref [] in
      List.iter
        (fun (p, j) ->
          if not (Hashtbl.mem by_provider p) then begin
            Hashtbl.replace by_provider p [];
            providers := p :: !providers
          end;
          Hashtbl.replace by_provider p (j :: Hashtbl.find by_provider p))
        imports.(i);
      List.rev_map
        (fun p ->
          {
            Ast.im_module = mname p;
            im_sigs =
              List.rev_map
                (fun j ->
                  {
                    Ast.is_name = fname p j;
                    is_params = [ Ast.Tint; Ast.Tint ];
                    is_ret = Some Ast.Tfloat;
                    is_loc = dummy;
                  })
                (Hashtbl.find by_provider p);
            im_loc = dummy;
          })
        !providers
    in
    let export_decls =
      List.filter_map
        (fun (f : Ast.func) ->
          if Hashtbl.mem exported f.Ast.fname then
            Some { Ast.ex_name = f.Ast.fname; ex_loc = dummy }
          else None)
        funcs
    in
    {
      Ast.mname = mname i;
      imports = import_decls;
      exports = export_decls;
      sections =
        [
          {
            Ast.sname = Printf.sprintf "sec_m%d" i;
            cells = 1;
            globals;
            funcs;
            secloc = dummy;
          };
        ];
      mloc = dummy;
    }
  in
  List.init n modul_of

(* --- the compile-cache experiments' "programmer edit" --- *)

(* A behaviour-preserving edit of one function: prepend a dead
   conditional to its body.  It parses and type-checks, changes the
   rendered source — hence the analyzer's content hash and every
   compile-cache key derived from it — while leaving the effect
   summaries, the dependence DAG and the generated code's semantics
   alone.  That makes it the minimal model of a programmer touching one
   function: exactly the touched function and its transitive dependence
   dependents must recompile, nothing else. *)
let touch (f : Ast.func) : Ast.func =
  { f with Ast.body = st (Ast.If (ex (Ast.Bool_lit false), [], [])) :: f.Ast.body }

let touch_in (m : Ast.modul) name : Ast.modul =
  let hits = ref 0 in
  let edited =
    {
      m with
      Ast.sections =
        List.map
          (fun (sec : Ast.section) ->
            {
              sec with
              Ast.funcs =
                List.map
                  (fun (f : Ast.func) ->
                    if f.Ast.fname = name then begin
                      incr hits;
                      touch f
                    end
                    else f)
                  sec.Ast.funcs;
            })
          m.Ast.sections;
    }
  in
  if !hits = 0 then
    invalid_arg (Printf.sprintf "Gen.touch_in: no function %S in module %s" name m.Ast.mname);
  edited
