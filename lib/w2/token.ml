(* Tokens of the W2-flavoured source language. *)

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | MODULE
  | IMPORT
  | EXPORT
  | SECTION
  | CELLS
  | FUNCTION
  | BEGIN
  | END
  | VAR
  | IF
  | THEN
  | ELSE
  | WHILE
  | DO
  | FOR
  | TO
  | RETURN
  | SEND
  | RECEIVE
  | TRUE
  | FALSE
  | AND
  | OR
  | NOT
  | MOD
  | TINT
  | TFLOAT
  | TBOOL
  | ARRAY
  | OF
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | ASSIGN (* := *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE (* <> *)
  | LT
  | LE
  | GT
  | GE
  | EOF

let keyword_table =
  [
    ("module", MODULE);
    ("import", IMPORT);
    ("export", EXPORT);
    ("section", SECTION);
    ("cells", CELLS);
    ("function", FUNCTION);
    ("begin", BEGIN);
    ("end", END);
    ("var", VAR);
    ("if", IF);
    ("then", THEN);
    ("else", ELSE);
    ("while", WHILE);
    ("do", DO);
    ("for", FOR);
    ("to", TO);
    ("return", RETURN);
    ("send", SEND);
    ("receive", RECEIVE);
    ("true", TRUE);
    ("false", FALSE);
    ("and", AND);
    ("or", OR);
    ("not", NOT);
    ("mod", MOD);
    ("int", TINT);
    ("float", TFLOAT);
    ("bool", TBOOL);
    ("array", ARRAY);
    ("of", OF);
  ]

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | MODULE -> "module"
  | IMPORT -> "import"
  | EXPORT -> "export"
  | SECTION -> "section"
  | CELLS -> "cells"
  | FUNCTION -> "function"
  | BEGIN -> "begin"
  | END -> "end"
  | VAR -> "var"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | WHILE -> "while"
  | DO -> "do"
  | FOR -> "for"
  | TO -> "to"
  | RETURN -> "return"
  | SEND -> "send"
  | RECEIVE -> "receive"
  | TRUE -> "true"
  | FALSE -> "false"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | MOD -> "mod"
  | TINT -> "int"
  | TFLOAT -> "float"
  | TBOOL -> "bool"
  | ARRAY -> "array"
  | OF -> "of"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | ASSIGN -> ":="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
