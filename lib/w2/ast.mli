(** Abstract syntax of the W2-flavoured language.

    The shape mirrors the source structure of the paper's section 3.1:
    a module contains section programs (one per group of Warp cells),
    a section contains one or more functions, and functions are the
    unit of parallel compilation.  [send]/[receive] expose the systolic
    X and Y channels connecting neighbouring cells. *)

type ty = Tint | Tfloat | Tbool | Tarray of int * ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And (** short-circuit *)
  | Or (** short-circuit *)

type unop = Neg | Not

type channel = Chan_x | Chan_y
(** The two systolic data channels of a cell.  X flows left to right
    through the array; Y flows right to left. *)

type expr = { e : expr_node; eloc : Loc.t }

and expr_node =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of string * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list (** user function or builtin *)

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { s : stmt_node; sloc : Loc.t }

and stmt_node =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** counted loop; bounds evaluate once, the variable may not be
          assigned in the body and is [hi+1] after a completed loop *)
  | Send of channel * expr
  | Receive of channel * lvalue
  | Return of expr option
  | Call_stmt of string * expr list

type param = { pname : string; pty : ty; ploc : Loc.t }
type decl = { dname : string; dty : ty; dloc : Loc.t }

type func = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : decl list;
  body : stmt list;
  floc : Loc.t;
}

(** Section-level [globals] declare per-cell static storage visible to
    every function of the section.  The backend localizes them — each
    activation starts from a default-initialized copy — so their main
    significance is compile-time coupling between sibling functions,
    which {!module:Analysis.Depan} (in the analysis library) tracks. *)
type section = {
  sname : string;
  cells : int;
  globals : decl list;
  funcs : func list;
  secloc : Loc.t;
}

(** One imported-function signature, restated at the import site so the
    module can be checked — and separately analyzed — without its
    dependencies' sources ({!module:Analysis.Modan} builds on this). *)
type import_sig = {
  is_name : string;
  is_params : ty list;
  is_ret : ty option;
  is_loc : Loc.t;
}

type import_decl = {
  im_module : string;  (** the providing module *)
  im_sigs : import_sig list;
  im_loc : Loc.t;
}

type export_decl = { ex_name : string; ex_loc : Loc.t }

type modul = {
  mname : string;
  imports : import_decl list;
  exports : export_decl list;
  sections : section list;
  mloc : Loc.t;
}

val imported_sigs : modul -> import_sig list
(** Every imported signature, in declaration order. *)

val imports_function : modul -> string -> bool
val exports_function : modul -> string -> bool

val builtins : (string * (ty list * ty)) list
(** Built-in functions with their signatures: [sqrt], [abs], [iabs],
    [min], [max], [imin], [imax], [float] (int→float), [trunc]. *)

val is_builtin : string -> bool

val ty_to_string : ty -> string
val binop_to_string : binop -> string
val channel_to_string : channel -> string

(** {1 Structural metrics}

    Inputs to the load-balancing heuristic of the paper's section 4.3
    ("a combination of lines of code and loop nesting can serve as
    approximation of the compilation time"). *)

val stmt_count : stmt list -> int
(** Statements, counted recursively. *)

val max_loop_nesting : stmt list -> int
(** Depth of the deepest loop nest. *)

val func_lines : func -> int
(** Approximate source lines of a function (see {!Pretty.func_loc} for
    the exact rendered count). *)

val section_lines : section -> int
val module_lines : modul -> int

val func_count : modul -> int
(** Total functions over all sections: the parallel task count. *)

val find_function : modul -> section:string -> name:string -> func option
