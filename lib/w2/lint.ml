(* Source linter — phase 1, running in the master alongside [Semcheck].

   Unlike the semantic checker, nothing here rejects a program: every
   finding is a [Diag.Warning].  The checks need whole-section context
   (the never-called analysis resolves calls between the functions of a
   section), which is exactly why the paper keeps phase 1 sequential in
   the master process.

   Codes:
     W001  unused variable           W006  constant condition
     W002  unused parameter          W007  function never called in its section
     W003  dead store                W008  global written by one sibling,
     W004  unreachable statement           touched by another
     W005  assignment to a          W009  channel sent but never received
           for-loop variable              in a multi-cell section *)

let warn out ?func ~code ~loc message =
  out (Diag.make ?func ~code ~severity:Diag.Warning ~loc message)

(* --- expression reads --- *)

let rec expr_reads f (expr : Ast.expr) =
  match expr.e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> ()
  | Ast.Var name -> f name
  | Ast.Index (name, index) ->
    f name;
    expr_reads f index
  | Ast.Unary (_, operand) -> expr_reads f operand
  | Ast.Binary (_, left, right) ->
    expr_reads f left;
    expr_reads f right
  | Ast.Call (_, args) -> List.iter (expr_reads f) args

(* Is an expression a compile-time constant?  Calls are excluded even
   for builtins: sqrt(-1.0) is a runtime error, not a constant. *)
let rec is_constant (expr : Ast.expr) =
  match expr.e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> true
  | Ast.Unary (_, operand) -> is_constant operand
  | Ast.Binary (_, left, right) -> is_constant left && is_constant right
  | Ast.Var _ | Ast.Index _ | Ast.Call _ -> false

(* --- per-function analysis --- *)

type usage = { mutable reads : int; mutable writes : int }

let lint_func out (f : Ast.func) =
  let func = f.fname in
  let usage = Hashtbl.create 16 in
  let slot name =
    match Hashtbl.find_opt usage name with
    | Some u -> u
    | None ->
      let u = { reads = 0; writes = 0 } in
      Hashtbl.add usage name u;
      u
  in
  List.iter (fun (p : Ast.param) -> ignore (slot p.pname)) f.params;
  List.iter (fun (d : Ast.decl) -> ignore (slot d.dname)) f.locals;
  let read name = (slot name).reads <- (slot name).reads + 1 in
  let write name = (slot name).writes <- (slot name).writes + 1 in
  let lvalue_write = function
    | Ast.Lvar name -> write name
    | Ast.Lindex (name, index) ->
      write name;
      expr_reads read index
  in
  (* Straight-line dead stores: a scalar assigned twice with no
     intervening read.  [pending] maps a variable to the location of its
     last unread store; any control flow (or the end of the list) drops
     all pending entries — the conservative choice, so the check never
     fires across joins. *)
  let rec walk_stmts ~loop_vars stmts =
    let pending : (string, Loc.t) Hashtbl.t = Hashtbl.create 8 in
    let read_clears name = Hashtbl.remove pending name in
    let reads_of_expr e = expr_reads (fun n -> read n; read_clears n) e in
    let unreachable_reported = ref false in
    let returned = ref false in
    List.iter
      (fun (stmt : Ast.stmt) ->
        if !returned && not !unreachable_reported then begin
          unreachable_reported := true;
          warn out ~func ~code:"W004" ~loc:stmt.sloc
            "unreachable statement (a preceding statement always returns)"
        end;
        if Semcheck.always_returns [ stmt ] then returned := true;
        match stmt.s with
        | Ast.Assign (lv, value) ->
          reads_of_expr value;
          (match lv with
          | Ast.Lvar name ->
            if List.mem name loop_vars then
              warn out ~func ~code:"W005" ~loc:stmt.sloc
                ("assignment to enclosing for-loop variable '" ^ name ^ "'");
            (match Hashtbl.find_opt pending name with
            | Some first ->
              warn out ~func ~code:"W003" ~loc:first
                ("dead store: '" ^ name ^ "' is overwritten at "
                ^ Loc.to_string stmt.sloc ^ " before being read")
            | None -> ());
            Hashtbl.replace pending name stmt.sloc
          | Ast.Lindex (name, index) ->
            expr_reads (fun n -> read n; read_clears n) index;
            read_clears name (* array cells are not tracked individually *));
          lvalue_write lv
        | Ast.If (cond, then_branch, else_branch) ->
          reads_of_expr cond;
          if is_constant cond then
            warn out ~func ~code:"W006" ~loc:cond.eloc "'if' condition is constant";
          Hashtbl.reset pending;
          walk_stmts ~loop_vars then_branch;
          walk_stmts ~loop_vars else_branch
        | Ast.While (cond, body) ->
          reads_of_expr cond;
          if is_constant cond then
            warn out ~func ~code:"W006" ~loc:cond.eloc "'while' condition is constant";
          Hashtbl.reset pending;
          walk_stmts ~loop_vars body
        | Ast.For (var, lo, hi, body) ->
          reads_of_expr lo;
          reads_of_expr hi;
          (* The loop owns its variable: it both writes and reads it. *)
          write var;
          read var;
          Hashtbl.reset pending;
          walk_stmts ~loop_vars:(var :: loop_vars) body
        | Ast.Send (_, value) -> reads_of_expr value
        | Ast.Receive (_, target) ->
          (match target with
          | Ast.Lvar name ->
            if List.mem name loop_vars then
              warn out ~func ~code:"W005" ~loc:stmt.sloc
                ("receive into enclosing for-loop variable '" ^ name ^ "'");
            Hashtbl.replace pending name stmt.sloc
          | Ast.Lindex (name, index) ->
            expr_reads (fun n -> read n; read_clears n) index;
            read_clears name);
          lvalue_write target
        | Ast.Return None -> returned := true
        | Ast.Return (Some value) ->
          reads_of_expr value;
          returned := true
        | Ast.Call_stmt (_, args) ->
          List.iter reads_of_expr args;
          Hashtbl.reset pending)
      stmts
  in
  walk_stmts ~loop_vars:[] f.body;
  (* Whole-function usage. *)
  List.iter
    (fun (p : Ast.param) ->
      let u = slot p.pname in
      if u.reads = 0 then
        warn out ~func ~code:"W002" ~loc:p.ploc
          ("unused parameter '" ^ p.pname ^ "'"))
    f.params;
  List.iter
    (fun (d : Ast.decl) ->
      let u = slot d.dname in
      if u.reads = 0 && u.writes = 0 then
        warn out ~func ~code:"W001" ~loc:d.dloc
          ("unused variable '" ^ d.dname ^ "'")
      else if u.reads = 0 then
        warn out ~func ~code:"W003" ~loc:d.dloc
          ("variable '" ^ d.dname ^ "' is assigned but never read"))
    f.locals

(* --- section-level analysis --- *)

let rec stmt_calls f (stmt : Ast.stmt) =
  let expr e = expr_calls f e in
  match stmt.s with
  | Ast.Assign (lv, value) ->
    lvalue_calls f lv;
    expr value
  | Ast.If (cond, t, e) ->
    expr cond;
    List.iter (stmt_calls f) t;
    List.iter (stmt_calls f) e
  | Ast.While (cond, body) ->
    expr cond;
    List.iter (stmt_calls f) body
  | Ast.For (_, lo, hi, body) ->
    expr lo;
    expr hi;
    List.iter (stmt_calls f) body
  | Ast.Send (_, value) -> expr value
  | Ast.Receive (_, target) -> lvalue_calls f target
  | Ast.Return None -> ()
  | Ast.Return (Some value) -> expr value
  | Ast.Call_stmt (name, args) ->
    f name;
    List.iter expr args

and expr_calls f (expr : Ast.expr) =
  match expr.e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> ()
  | Ast.Index (_, index) -> expr_calls f index
  | Ast.Unary (_, operand) -> expr_calls f operand
  | Ast.Binary (_, left, right) ->
    expr_calls f left;
    expr_calls f right
  | Ast.Call (name, args) ->
    f name;
    List.iter (expr_calls f) args

and lvalue_calls f = function
  | Ast.Lvar _ -> ()
  | Ast.Lindex (_, index) -> expr_calls f index

(* The first function of a section is its entry point by convention
   (any function can be invoked from the host, but the download module
   needs at least the first one); helpers beyond it should be reachable
   from some other function of the section. *)
let lint_section out (sec : Ast.section) =
  List.iter (lint_func out) sec.funcs;
  let called = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (stmt_calls (fun name -> Hashtbl.replace called name ()))
        f.body)
    sec.funcs;
  match sec.funcs with
  | [] -> ()
  | _entry :: rest ->
    List.iter
      (fun (f : Ast.func) ->
        if not (Hashtbl.mem called f.fname) then
          warn out ~func:f.fname ~code:"W007" ~loc:f.floc
            (Printf.sprintf
               "function '%s' is never called from section '%s' (and is not its entry function)"
               f.fname sec.sname))
      rest

(* Lint a whole module; warnings in file order. *)
let lint_module (m : Ast.modul) : Diag.t list =
  let acc = ref [] in
  let out d = acc := d :: !acc in
  List.iter (lint_section out) m.sections;
  Diag.sort !acc

(* Coupling warnings (W008/W009).  The per-function effect data comes
   from the interprocedural analyzer, which sits above this library;
   the linter only owns the judgment calls — what counts as a coupling
   worth warning about — so every warning of the compiler is still
   born here. *)

type coupling = {
  c_func : string;
  c_loc : Loc.t;
  c_greads : string list;
  c_gwrites : string list;
  c_sends : Ast.channel list;
  c_recvs : Ast.channel list;
}

let coupling_warnings ~section ~cells ?(disjoint = []) (cs : coupling list) :
    Diag.t list =
  let acc = ref [] in
  let out d = acc := d :: !acc in
  let note ?func ~code ~loc message =
    out (Diag.make ?func ~code ~severity:Diag.Note ~loc message)
  in
  (* W008: a write to a section global that a sibling also touches is
     almost certainly meant as shared state, which the localized
     semantics (fresh copy per activation) does not provide. *)
  let globals = Hashtbl.create 8 in
  let touch g kind c =
    let reads, writes = try Hashtbl.find globals g with Not_found -> ([], []) in
    let entry = (c.c_func, c.c_loc) in
    Hashtbl.replace globals g
      (match kind with
      | `Read -> (entry :: reads, writes)
      | `Write -> (reads, entry :: writes))
  in
  List.iter
    (fun c ->
      List.iter (fun g -> touch g `Read c) c.c_greads;
      List.iter (fun g -> touch g `Write c) c.c_gwrites)
    cs;
  let names ps = List.sort_uniq String.compare (List.map fst ps) in
  Hashtbl.fold (fun g (reads, writes) keys -> (g, reads, writes) :: keys)
    globals []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  |> List.iter (fun (g, reads, writes) ->
         match List.rev writes with
         | [] -> ()
         | (wf, wloc) :: _ ->
           let others =
             List.filter (( <> ) wf) (names (reads @ writes))
           in
           if others <> [] then
             if List.mem g disjoint then
               (* The analyzer's region domain proved every
                  write/access pair element-disjoint: the siblings
                  partition the global rather than sharing it, so the
                  "unobserved write" warning would be a false positive.
                  Keep a note so the coupling stays visible. *)
               note ~func:wf ~code:"W008" ~loc:wloc
                 (Printf.sprintf
                    "global '%s' is written by '%s' and touched by \
                     sibling function%s %s of section '%s', but all \
                     accesses are element-disjoint (each function owns \
                     its own slice)"
                    g wf
                    (if List.length others > 1 then "s" else "")
                    (String.concat ", "
                       (List.map (Printf.sprintf "'%s'") others))
                    section)
             else
               warn out ~func:wf ~code:"W008" ~loc:wloc
                 (Printf.sprintf
                    "global '%s' is written by '%s' but every activation \
                     starts from a fresh copy; sibling function%s %s of \
                     section '%s' never observe%s the write"
                    g wf
                    (if List.length others > 1 then "s" else "")
                    (String.concat ", "
                       (List.map (Printf.sprintf "'%s'") others))
                    section
                    (if List.length others > 1 then "" else "s")));
  (* W009: with more than one cell only the boundary cell of a channel
     reaches the host, so a channel that is sent on but never received
     within the section silently drops every inner cell's values. *)
  if cells > 1 then
    List.iter
      (fun chan ->
        let sends =
          List.filter (fun c -> List.mem chan c.c_sends) cs
        in
        let recvs =
          List.exists (fun c -> List.mem chan c.c_recvs) cs
        in
        match (sends, recvs) with
        | first :: _, false ->
          warn out ~func:first.c_func ~code:"W009" ~loc:first.c_loc
            (Printf.sprintf
               "section '%s' sends on %s but no function receives it; \
                with %d cells only the boundary cell's sends reach the \
                host and inner-cell values are dropped"
               section
               (Ast.channel_to_string chan)
               cells)
        | _ -> ())
      [ Ast.Chan_x; Ast.Chan_y ];
  Diag.sort !acc
