(* Semantic checker — phase 1 of the compiler (together with parsing).

   As in the paper, this phase needs the complete section program: it
   resolves calls between functions of the same section and checks the
   agreement between a function's return type and its uses at call
   sites.  It therefore runs sequentially in the master process, before
   the per-function work is farmed out. *)

type error = { msg : string; loc : Loc.t }

let error_to_string { msg; loc } = Printf.sprintf "%s: %s" (Loc.to_string loc) msg

exception Failed of error list

type env = {
  vars : (string, Ast.ty) Hashtbl.t;
  (* Functions visible in the current section: name -> signature. *)
  funcs : (string, Ast.ty list * Ast.ty option) Hashtbl.t;
  mutable errors : error list;
  mutable current_ret : Ast.ty option;
  mutable loop_vars : string list; (* variables of enclosing for loops *)
}

let add_error env msg loc = env.errors <- { msg; loc } :: env.errors

let scalar = function Ast.Tint | Ast.Tfloat | Ast.Tbool -> true | Ast.Tarray _ -> false
let numeric = function Ast.Tint | Ast.Tfloat -> true | Ast.Tbool | Ast.Tarray _ -> false

let type_mismatch env ~expected ~actual loc what =
  add_error env
    (Printf.sprintf "%s has type %s but %s was expected" what
       (Ast.ty_to_string actual) (Ast.ty_to_string expected))
    loc

(* Type of an expression; reports errors and falls back on a best guess
   so that checking can continue and report further problems. *)
let rec check_expr env (expr : Ast.expr) : Ast.ty =
  match expr.e with
  | Ast.Int_lit _ -> Ast.Tint
  | Ast.Float_lit _ -> Ast.Tfloat
  | Ast.Bool_lit _ -> Ast.Tbool
  | Ast.Var name -> (
    match Hashtbl.find_opt env.vars name with
    | Some ty -> ty
    | None ->
      add_error env ("undeclared variable '" ^ name ^ "'") expr.eloc;
      Ast.Tint)
  | Ast.Index (name, index) -> (
    let index_ty = check_expr env index in
    (if index_ty <> Ast.Tint then
       type_mismatch env ~expected:Ast.Tint ~actual:index_ty index.eloc
         "array index");
    (match index.e with
    | Ast.Int_lit n when n < 0 ->
      add_error env "array index is negative" index.eloc
    | _ -> ());
    match Hashtbl.find_opt env.vars name with
    | Some (Ast.Tarray (size, elt)) ->
      (match index.e with
      | Ast.Int_lit n when n >= size ->
        add_error env
          (Printf.sprintf "index %d out of bounds for array of size %d" n size)
          index.eloc
      | _ -> ());
      elt
    | Some other ->
      add_error env
        (Printf.sprintf "'%s' has type %s and cannot be indexed" name
           (Ast.ty_to_string other))
        expr.eloc;
      Ast.Tint
    | None ->
      add_error env ("undeclared variable '" ^ name ^ "'") expr.eloc;
      Ast.Tint)
  | Ast.Unary (Ast.Neg, operand) ->
    let ty = check_expr env operand in
    if not (numeric ty) then
      add_error env
        ("operand of unary '-' must be numeric, found " ^ Ast.ty_to_string ty)
        operand.eloc;
    ty
  | Ast.Unary (Ast.Not, operand) ->
    let ty = check_expr env operand in
    if ty <> Ast.Tbool then
      type_mismatch env ~expected:Ast.Tbool ~actual:ty operand.eloc
        "operand of 'not'";
    Ast.Tbool
  | Ast.Binary (op, left, right) -> check_binary env expr.eloc op left right
  | Ast.Call (name, args) -> check_call env expr.eloc name args ~statement:false

and check_binary env loc op left right =
  let lty = check_expr env left in
  let rty = check_expr env right in
  let require_same () =
    if lty <> rty then
      add_error env
        (Printf.sprintf "operands of '%s' have different types (%s and %s)"
           (Ast.binop_to_string op) (Ast.ty_to_string lty) (Ast.ty_to_string rty))
        loc
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    require_same ();
    if not (numeric lty) then
      add_error env
        (Printf.sprintf "operands of '%s' must be numeric" (Ast.binop_to_string op))
        loc;
    lty
  | Ast.Mod ->
    require_same ();
    if lty <> Ast.Tint then
      add_error env "operands of 'mod' must be int" loc;
    Ast.Tint
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    require_same ();
    if not (scalar lty) then
      add_error env "comparison operands must be scalar" loc;
    Ast.Tbool
  | Ast.And | Ast.Or ->
    if lty <> Ast.Tbool then
      type_mismatch env ~expected:Ast.Tbool ~actual:lty left.eloc
        ("left operand of '" ^ Ast.binop_to_string op ^ "'");
    if rty <> Ast.Tbool then
      type_mismatch env ~expected:Ast.Tbool ~actual:rty right.eloc
        ("right operand of '" ^ Ast.binop_to_string op ^ "'");
    Ast.Tbool

and check_call env loc name args ~statement =
  let arg_tys = List.map (check_expr env) args in
  let check_sig (param_tys, ret) =
    (if List.length param_tys <> List.length arg_tys then
       add_error env
         (Printf.sprintf "'%s' expects %d argument(s) but got %d" name
            (List.length param_tys) (List.length arg_tys))
         loc
     else
       List.iteri
         (fun i (expected, actual) ->
           if expected <> actual then
             type_mismatch env ~expected ~actual loc
               (Printf.sprintf "argument %d of '%s'" (i + 1) name))
         (List.combine param_tys arg_tys));
    ret
  in
  match List.assoc_opt name Ast.builtins with
  | Some (param_tys, ret) -> (
    match check_sig (param_tys, Some ret) with Some ty -> ty | None -> Ast.Tint)
  | None -> (
    match Hashtbl.find_opt env.funcs name with
    | Some (param_tys, ret) -> (
      match check_sig (param_tys, ret) with
      | Some ty -> ty
      | None ->
        if not statement then
          add_error env
            ("'" ^ name ^ "' returns no value and cannot be used in an expression")
            loc;
        Ast.Tint)
    | None ->
      add_error env ("call to undefined function '" ^ name ^ "'") loc;
      Ast.Tint)

let check_lvalue env loc = function
  | Ast.Lvar name -> (
    match Hashtbl.find_opt env.vars name with
    | Some ty -> ty
    | None ->
      add_error env ("undeclared variable '" ^ name ^ "'") loc;
      Ast.Tint)
  | Ast.Lindex (name, index) ->
    check_expr env { Ast.e = Ast.Index (name, index); eloc = loc }

(* Loop variables are owned by their loop: assigning or receiving into
   one inside the body is rejected (the compiler's counted-loop
   transformations depend on it). *)
let check_not_loop_var env loc = function
  | Ast.Lvar name when List.mem name env.loop_vars ->
    add_error env
      ("cannot assign to '" ^ name ^ "' inside its own for loop")
      loc
  | Ast.Lvar _ | Ast.Lindex _ -> ()

let rec check_stmt env (stmt : Ast.stmt) =
  match stmt.s with
  | Ast.Assign (lv, value) ->
    check_not_loop_var env stmt.sloc lv;
    let target_ty = check_lvalue env stmt.sloc lv in
    let value_ty = check_expr env value in
    if scalar target_ty && target_ty <> value_ty then
      type_mismatch env ~expected:target_ty ~actual:value_ty stmt.sloc
        "right-hand side of assignment";
    if not (scalar target_ty) then
      add_error env "cannot assign to a whole array" stmt.sloc
  | Ast.If (cond, then_branch, else_branch) ->
    let cond_ty = check_expr env cond in
    if cond_ty <> Ast.Tbool then
      type_mismatch env ~expected:Ast.Tbool ~actual:cond_ty cond.eloc
        "'if' condition";
    List.iter (check_stmt env) then_branch;
    List.iter (check_stmt env) else_branch
  | Ast.While (cond, body) ->
    let cond_ty = check_expr env cond in
    if cond_ty <> Ast.Tbool then
      type_mismatch env ~expected:Ast.Tbool ~actual:cond_ty cond.eloc
        "'while' condition";
    List.iter (check_stmt env) body
  | Ast.For (var, lo, hi, body) ->
    (match Hashtbl.find_opt env.vars var with
    | Some Ast.Tint -> ()
    | Some other ->
      add_error env
        (Printf.sprintf "loop variable '%s' must be int, found %s" var
           (Ast.ty_to_string other))
        stmt.sloc
    | None -> add_error env ("undeclared loop variable '" ^ var ^ "'") stmt.sloc);
    let lo_ty = check_expr env lo in
    let hi_ty = check_expr env hi in
    if lo_ty <> Ast.Tint then
      type_mismatch env ~expected:Ast.Tint ~actual:lo_ty lo.eloc "loop bound";
    if hi_ty <> Ast.Tint then
      type_mismatch env ~expected:Ast.Tint ~actual:hi_ty hi.eloc "loop bound";
    if List.mem var env.loop_vars then
      add_error env
        ("'" ^ var ^ "' is already the variable of an enclosing for loop")
        stmt.sloc;
    env.loop_vars <- var :: env.loop_vars;
    List.iter (check_stmt env) body;
    env.loop_vars <- List.tl env.loop_vars
  | Ast.Send (_, value) ->
    let ty = check_expr env value in
    if not (numeric ty) then
      add_error env
        ("sent value must be numeric, found " ^ Ast.ty_to_string ty)
        value.eloc
  | Ast.Receive (_, target) ->
    check_not_loop_var env stmt.sloc target;
    let ty = check_lvalue env stmt.sloc target in
    if not (numeric ty) then
      add_error env
        ("receive target must be numeric, found " ^ Ast.ty_to_string ty)
        stmt.sloc
  | Ast.Return None ->
    if env.current_ret <> None then
      add_error env "this function must return a value" stmt.sloc
  | Ast.Return (Some value) -> (
    let ty = check_expr env value in
    match env.current_ret with
    | None ->
      add_error env "this function does not return a value" stmt.sloc
    | Some expected ->
      if expected <> ty then
        type_mismatch env ~expected ~actual:ty stmt.sloc "returned value")
  | Ast.Call_stmt (name, args) ->
    ignore (check_call env stmt.sloc name args ~statement:true)

(* Conservative "all control paths return" analysis. *)
let rec always_returns stmts =
  List.exists
    (fun (stmt : Ast.stmt) ->
      match stmt.s with
      | Ast.Return _ -> true
      | Ast.If (_, t, e) -> always_returns t && always_returns e
      | Ast.Assign _ | Ast.While _ | Ast.For _ | Ast.Send _ | Ast.Receive _
      | Ast.Call_stmt _ ->
        false)
    stmts

let check_function env ~(globals : Ast.decl list) (f : Ast.func) =
  Hashtbl.reset env.vars;
  env.current_ret <- f.ret;
  (* Section globals are visible in every function; parameters and
     locals may not shadow them (the dependence analyzer relies on a
     global's name meaning the same storage in every sibling). *)
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace env.vars d.dname d.dty) globals;
  let declare name ty loc =
    if List.exists (fun (d : Ast.decl) -> d.dname = name) globals then
      add_error env ("'" ^ name ^ "' shadows a section global") loc
    else if Hashtbl.mem env.vars name then
      add_error env ("duplicate declaration of '" ^ name ^ "'") loc
    else if Ast.is_builtin name then
      add_error env ("'" ^ name ^ "' shadows a builtin function") loc
    else Hashtbl.add env.vars name ty
  in
  List.iter (fun (p : Ast.param) -> declare p.pname p.pty p.ploc) f.params;
  List.iter (fun (d : Ast.decl) -> declare d.dname d.dty d.dloc) f.locals;
  List.iter
    (fun (d : Ast.decl) ->
      match d.dty with
      | Ast.Tarray (n, elt) ->
        if n <= 0 then add_error env "array size must be positive" d.dloc;
        if not (scalar elt) then
          add_error env "arrays of arrays are not supported" d.dloc
      | Ast.Tint | Ast.Tfloat | Ast.Tbool -> ())
    (f.locals
    @ List.map (fun (p : Ast.param) -> { Ast.dname = p.pname; dty = p.pty; dloc = p.ploc }) f.params);
  List.iter (check_stmt env) f.body;
  match f.ret with
  | Some _ when not (always_returns f.body) ->
    add_error env
      ("function '" ^ f.fname ^ "' does not return a value on every path")
      f.floc
  | Some _ | None -> ()

let check_globals env (sec : Ast.section) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.decl) ->
      if Hashtbl.mem seen d.dname then
        add_error env ("duplicate declaration of global '" ^ d.dname ^ "'") d.dloc
      else Hashtbl.add seen d.dname ();
      if Ast.is_builtin d.dname then
        add_error env ("'" ^ d.dname ^ "' shadows a builtin function") d.dloc;
      match d.dty with
      | Ast.Tarray (n, elt) ->
        if n <= 0 then add_error env "array size must be positive" d.dloc;
        if not (scalar elt) then
          add_error env "arrays of arrays are not supported" d.dloc
      | Ast.Tint | Ast.Tfloat | Ast.Tbool -> ())
    sec.globals

let check_section env ?(imported : Ast.import_sig list = []) (sec : Ast.section)
    =
  if sec.cells < 1 then
    add_error env "a section needs at least one cell" sec.secloc;
  check_globals env sec;
  Hashtbl.reset env.funcs;
  (* Imported signatures are callable from every section of the module;
     the bodies live elsewhere, so only the restated signature is
     available for call typing. *)
  List.iter
    (fun (s : Ast.import_sig) ->
      Hashtbl.replace env.funcs s.is_name (s.is_params, s.is_ret))
    imported;
  List.iter
    (fun (f : Ast.func) ->
      if List.exists (fun (s : Ast.import_sig) -> s.is_name = f.fname) imported
      then
        add_error env
          ("function '" ^ f.fname ^ "' is also imported")
          f.floc
      else if Hashtbl.mem env.funcs f.fname then
        add_error env ("duplicate function '" ^ f.fname ^ "'") f.floc
      else if Ast.is_builtin f.fname then
        add_error env ("function '" ^ f.fname ^ "' shadows a builtin") f.floc
      else
        Hashtbl.add env.funcs f.fname
          (List.map (fun (p : Ast.param) -> p.pty) f.params, f.ret))
    sec.funcs;
  List.iter (check_function env ~globals:sec.globals) sec.funcs

(* Cross-module interface hygiene: imports may not name the module
   itself or restate a name twice, exports must name locally defined
   functions, and neither may collide with the builtins. *)
let check_interface env (m : Ast.modul) =
  let defined name =
    List.exists
      (fun (sec : Ast.section) ->
        List.exists (fun (f : Ast.func) -> f.fname = name) sec.funcs)
      m.sections
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (im : Ast.import_decl) ->
      if im.im_module = m.mname then
        add_error env
          ("module '" ^ m.mname ^ "' imports itself")
          im.im_loc;
      List.iter
        (fun (s : Ast.import_sig) ->
          if Ast.is_builtin s.is_name then
            add_error env
              ("import '" ^ s.is_name ^ "' shadows a builtin")
              s.is_loc
          else if Hashtbl.mem seen s.is_name then
            add_error env
              ("function '" ^ s.is_name ^ "' is imported twice")
              s.is_loc
          else Hashtbl.add seen s.is_name ())
        im.im_sigs)
    m.imports;
  let exported = Hashtbl.create 16 in
  List.iter
    (fun (e : Ast.export_decl) ->
      if Hashtbl.mem exported e.ex_name then
        add_error env
          ("function '" ^ e.ex_name ^ "' is exported twice")
          e.ex_loc
      else Hashtbl.add exported e.ex_name ();
      if not (defined e.ex_name) then
        add_error env
          ("exported function '" ^ e.ex_name ^ "' is not defined in this module")
          e.ex_loc)
    m.exports

(* Check a whole module; returns the list of errors, oldest first. *)
let check_module (m : Ast.modul) : error list =
  let env =
    {
      vars = Hashtbl.create 64;
      funcs = Hashtbl.create 16;
      errors = [];
      current_ret = None;
      loop_vars = [];
    }
  in
  check_interface env m;
  let imported = Ast.imported_sigs m in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (sec : Ast.section) ->
      if Hashtbl.mem seen sec.sname then
        add_error env ("duplicate section '" ^ sec.sname ^ "'") sec.secloc
      else Hashtbl.add seen sec.sname ();
      check_section env ~imported sec)
    m.sections;
  List.rev env.errors

(* Raise [Failed] if the module does not check: the behaviour of the
   master process, which aborts the compilation on phase-1 errors. *)
let check_module_exn m =
  match check_module m with [] -> () | errors -> raise (Failed errors)
