(** SARIF 2.1.0 export of {!Diag} diagnostics.

    SARIF (Static Analysis Results Interchange Format) is the
    interchange format code hosts and editors ingest for static
    analysis findings; exporting it lets [warpcc analyze] results
    surface as annotations in CI.  One run, one tool ([warpcc]), one
    rule per distinct diagnostic code (the linter's W001–W009, the
    cross-module W010–W012, and the IR verifier's V-codes pass through
    with a generic description). *)

val version : string
(** ["2.1.0"]. *)

val to_string : ?tool_name:string -> ?tool_version:string -> Diag.t list -> string
(** A complete SARIF log: rule metadata for every code that occurs,
    one result per diagnostic with its physical location (omitted for
    diagnostics at the dummy location), severities mapped
    [Note]→[note], [Warning]→[warning], [Error]→[error].  Valid (with
    an empty [results] array) even for an empty diagnostic list. *)
