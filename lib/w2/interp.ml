(* Reference interpreter for W2 functions.

   It defines the semantics against which every later stage is tested:
   the IR after each optimization pass and the code executed by the Warp
   cell simulator must agree with this interpreter on all inputs.

   Channels are provided by the caller, so a function can be run either
   stand-alone (with scripted channel data) or as one cell of a systolic
   array (with channels wired to the neighbouring cells). *)

type value = Vint of int | Vfloat of float | Vbool of bool | Varray of value array

exception Runtime_error of string * Loc.t
exception Out_of_fuel

(* Channel hooks.  [recv] may raise to model an empty input. *)
type channels = {
  recv : Ast.channel -> value;
  send : Ast.channel -> value -> unit;
}

let null_channels =
  {
    recv = (fun _ -> raise (Runtime_error ("receive on unconnected channel", Loc.dummy)));
    send = (fun _ _ -> ());
  }

(* Channels backed by queues: scripted input, recorded output. *)
let queue_channels ~input_x ~input_y =
  let qx = Queue.of_seq (List.to_seq input_x) in
  let qy = Queue.of_seq (List.to_seq input_y) in
  let out_x = Queue.create () in
  let out_y = Queue.create () in
  let recv = function
    | Ast.Chan_x ->
      if Queue.is_empty qx then
        raise (Runtime_error ("receive on empty channel X", Loc.dummy))
      else Queue.pop qx
    | Ast.Chan_y ->
      if Queue.is_empty qy then
        raise (Runtime_error ("receive on empty channel Y", Loc.dummy))
      else Queue.pop qy
  in
  let send chan v =
    match chan with
    | Ast.Chan_x -> Queue.push v out_x
    | Ast.Chan_y -> Queue.push v out_y
  in
  let outputs () =
    (List.of_seq (Queue.to_seq out_x), List.of_seq (Queue.to_seq out_y))
  in
  ({ recv; send }, outputs)

type state = {
  vars : (string, value) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t; (* functions of the section *)
  globals : Ast.decl list; (* section globals, localized per activation *)
  channels : channels;
  mutable fuel : int; (* statement budget, guards property tests *)
}

exception Return_exc of value option

let default_value = function
  | Ast.Tint -> Vint 0
  | Ast.Tfloat -> Vfloat 0.0
  | Ast.Tbool -> Vbool false
  | Ast.Tarray (n, elt) ->
    let dflt =
      match elt with
      | Ast.Tint -> Vint 0
      | Ast.Tfloat -> Vfloat 0.0
      | Ast.Tbool -> Vbool false
      | Ast.Tarray _ -> Vint 0
    in
    Varray (Array.make n dflt)

let value_to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%.6g" f
  | Vbool b -> string_of_bool b
  | Varray a -> Printf.sprintf "<array[%d]>" (Array.length a)

let type_error loc what = raise (Runtime_error ("type error: " ^ what, loc))

let as_int loc = function Vint n -> n | _ -> type_error loc "int expected"
let as_bool loc = function Vbool b -> b | _ -> type_error loc "bool expected"

let as_array loc = function
  | Varray a -> a
  | _ -> type_error loc "array expected"

let spend state loc =
  if state.fuel <= 0 then raise Out_of_fuel;
  state.fuel <- state.fuel - 1;
  ignore loc

let apply_builtin loc name args =
  match (name, args) with
  | "sqrt", [ Vfloat f ] ->
    if f < 0.0 then raise (Runtime_error ("sqrt of negative value", loc));
    Vfloat (sqrt f)
  | "abs", [ Vfloat f ] -> Vfloat (abs_float f)
  | "iabs", [ Vint n ] -> Vint (abs n)
  | "min", [ Vfloat a; Vfloat b ] -> Vfloat (min a b)
  | "max", [ Vfloat a; Vfloat b ] -> Vfloat (max a b)
  | "imin", [ Vint a; Vint b ] -> Vint (min a b)
  | "imax", [ Vint a; Vint b ] -> Vint (max a b)
  | "float", [ Vint n ] -> Vfloat (float_of_int n)
  | "trunc", [ Vfloat f ] -> Vint (int_of_float f)
  | _ -> type_error loc ("bad builtin application of '" ^ name ^ "'")

let eval_binop loc op left right =
  match (op, left, right) with
  | Ast.Add, Vint a, Vint b -> Vint (a + b)
  | Ast.Sub, Vint a, Vint b -> Vint (a - b)
  | Ast.Mul, Vint a, Vint b -> Vint (a * b)
  | Ast.Div, Vint a, Vint b ->
    if b = 0 then raise (Runtime_error ("division by zero", loc));
    Vint (a / b)
  | Ast.Mod, Vint a, Vint b ->
    if b = 0 then raise (Runtime_error ("mod by zero", loc));
    Vint (a mod b)
  | Ast.Add, Vfloat a, Vfloat b -> Vfloat (a +. b)
  | Ast.Sub, Vfloat a, Vfloat b -> Vfloat (a -. b)
  | Ast.Mul, Vfloat a, Vfloat b -> Vfloat (a *. b)
  | Ast.Div, Vfloat a, Vfloat b ->
    if b = 0.0 then raise (Runtime_error ("division by zero", loc));
    Vfloat (a /. b)
  | Ast.Eq, a, b -> Vbool (a = b)
  | Ast.Ne, a, b -> Vbool (a <> b)
  | Ast.Lt, Vint a, Vint b -> Vbool (a < b)
  | Ast.Le, Vint a, Vint b -> Vbool (a <= b)
  | Ast.Gt, Vint a, Vint b -> Vbool (a > b)
  | Ast.Ge, Vint a, Vint b -> Vbool (a >= b)
  | Ast.Lt, Vfloat a, Vfloat b -> Vbool (a < b)
  | Ast.Le, Vfloat a, Vfloat b -> Vbool (a <= b)
  | Ast.Gt, Vfloat a, Vfloat b -> Vbool (a > b)
  | Ast.Ge, Vfloat a, Vfloat b -> Vbool (a >= b)
  | Ast.And, Vbool a, Vbool b -> Vbool (a && b)
  | Ast.Or, Vbool a, Vbool b -> Vbool (a || b)
  | _ -> type_error loc ("bad operands for '" ^ Ast.binop_to_string op ^ "'")

let rec eval_expr state (expr : Ast.expr) : value =
  match expr.e with
  | Ast.Int_lit n -> Vint n
  | Ast.Float_lit f -> Vfloat f
  | Ast.Bool_lit b -> Vbool b
  | Ast.Var name -> (
    match Hashtbl.find_opt state.vars name with
    | Some v -> v
    | None -> raise (Runtime_error ("unbound variable '" ^ name ^ "'", expr.eloc)))
  | Ast.Index (name, index) ->
    let arr =
      match Hashtbl.find_opt state.vars name with
      | Some v -> as_array expr.eloc v
      | None -> raise (Runtime_error ("unbound variable '" ^ name ^ "'", expr.eloc))
    in
    let i = as_int index.eloc (eval_expr state index) in
    if i < 0 || i >= Array.length arr then
      raise (Runtime_error (Printf.sprintf "index %d out of bounds" i, index.eloc));
    arr.(i)
  | Ast.Unary (Ast.Neg, operand) -> (
    match eval_expr state operand with
    | Vint n -> Vint (-n)
    | Vfloat f -> Vfloat (-.f)
    | _ -> type_error operand.eloc "numeric operand expected for unary '-'")
  | Ast.Unary (Ast.Not, operand) ->
    Vbool (not (as_bool operand.eloc (eval_expr state operand)))
  | Ast.Binary (Ast.And, left, right) ->
    (* Short-circuit, matching the code generator's branching scheme. *)
    if as_bool left.eloc (eval_expr state left) then eval_expr state right
    else Vbool false
  | Ast.Binary (Ast.Or, left, right) ->
    if as_bool left.eloc (eval_expr state left) then Vbool true
    else eval_expr state right
  | Ast.Binary (op, left, right) ->
    let l = eval_expr state left in
    let r = eval_expr state right in
    eval_binop expr.eloc op l r
  | Ast.Call (name, args) -> (
    let arg_values = List.map (eval_expr state) args in
    if Ast.is_builtin name then apply_builtin expr.eloc name arg_values
    else
      match call_function state name arg_values expr.eloc with
      | Some v -> v
      | None ->
        raise (Runtime_error ("function '" ^ name ^ "' returned no value", expr.eloc)))

and call_function state name arg_values loc : value option =
  let f =
    match Hashtbl.find_opt state.funcs name with
    | Some f -> f
    | None -> raise (Runtime_error ("undefined function '" ^ name ^ "'", loc))
  in
  if List.length f.params <> List.length arg_values then
    raise (Runtime_error ("arity mismatch calling '" ^ name ^ "'", loc));
  (* Fresh frame sharing the section's function table and channels.
     Globals are localized: every activation starts them from their
     default values, matching the backend's register-window model. *)
  let frame =
    {
      vars = Hashtbl.create 16;
      funcs = state.funcs;
      globals = state.globals;
      channels = state.channels;
      fuel = state.fuel;
    }
  in
  List.iter
    (fun (d : Ast.decl) -> Hashtbl.replace frame.vars d.dname (default_value d.dty))
    state.globals;
  List.iter2
    (fun (p : Ast.param) v -> Hashtbl.replace frame.vars p.pname v)
    f.params arg_values;
  List.iter
    (fun (d : Ast.decl) -> Hashtbl.replace frame.vars d.dname (default_value d.dty))
    f.locals;
  let result =
    try
      exec_stmts frame f.body;
      None
    with Return_exc v -> v
  in
  state.fuel <- frame.fuel;
  result

and assign state loc lv value =
  match lv with
  | Ast.Lvar name ->
    if not (Hashtbl.mem state.vars name) then
      raise (Runtime_error ("unbound variable '" ^ name ^ "'", loc));
    Hashtbl.replace state.vars name value
  | Ast.Lindex (name, index) ->
    let arr =
      match Hashtbl.find_opt state.vars name with
      | Some v -> as_array loc v
      | None -> raise (Runtime_error ("unbound variable '" ^ name ^ "'", loc))
    in
    let i = as_int index.eloc (eval_expr state index) in
    if i < 0 || i >= Array.length arr then
      raise (Runtime_error (Printf.sprintf "index %d out of bounds" i, index.eloc));
    arr.(i) <- value

and exec_stmt state (stmt : Ast.stmt) =
  spend state stmt.sloc;
  match stmt.s with
  | Ast.Assign (lv, value) -> assign state stmt.sloc lv (eval_expr state value)
  | Ast.If (cond, then_branch, else_branch) ->
    if as_bool cond.eloc (eval_expr state cond) then exec_stmts state then_branch
    else exec_stmts state else_branch
  | Ast.While (cond, body) ->
    while as_bool cond.eloc (eval_expr state cond) do
      spend state stmt.sloc;
      exec_stmts state body
    done
  | Ast.For (var, lo, hi, body) ->
    (* Counted loops have while-loop semantics: the variable is [lo]
       before the first test and [hi + 1] after a completed loop — the
       checker forbids assigning it in the body, so this matches the
       lowered code exactly. *)
    let lo = as_int lo.eloc (eval_expr state lo) in
    let hi = as_int hi.eloc (eval_expr state hi) in
    Hashtbl.replace state.vars var (Vint lo);
    let rec loop i =
      if i <= hi then begin
        spend state stmt.sloc;
        exec_stmts state body;
        Hashtbl.replace state.vars var (Vint (i + 1));
        loop (i + 1)
      end
    in
    loop lo
  | Ast.Send (chan, value) -> state.channels.send chan (eval_expr state value)
  | Ast.Receive (chan, target) ->
    assign state stmt.sloc target (state.channels.recv chan)
  | Ast.Return v -> raise (Return_exc (Option.map (eval_expr state) v))
  | Ast.Call_stmt (name, args) ->
    let arg_values = List.map (eval_expr state) args in
    if Ast.is_builtin name then ignore (apply_builtin stmt.sloc name arg_values)
    else ignore (call_function state name arg_values stmt.sloc)

and exec_stmts state stmts = List.iter (exec_stmt state) stmts

(* Run [func] of [section] with the given argument values.  Returns the
   function result (if any) and the final values of its locals, which the
   differential tests compare against the compiled code. *)
let run_function ?(fuel = 2_000_000) ?(channels = null_channels)
    (sec : Ast.section) ~name ~args =
  let funcs = Hashtbl.create 8 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace funcs f.fname f) sec.funcs;
  let state =
    { vars = Hashtbl.create 16; funcs; globals = sec.globals; channels; fuel }
  in
  call_function state name args Loc.dummy
