(** Source linter — phase 1, running in the master alongside
    {!Semcheck}.  Every finding is a {!Diag.Warning}; nothing here
    rejects a program.

    Codes:
    - [W001] unused variable
    - [W002] unused parameter
    - [W003] dead store (a value written and overwritten or never read)
    - [W004] unreachable statement after a return
    - [W005] assignment or receive into an enclosing [for]-loop variable
    - [W006] constant [if]/[while] condition
    - [W007] function never called from its section (excluding the
      section's first function, its entry point by convention)
    - [W008] section global written by one function and accessed by a
      sibling — every activation starts from a fresh default-initialized
      copy, so the sibling never observes the write
    - [W009] channel with sends but no receives anywhere in a
      multi-cell section — only the boundary cell's sends reach the
      host, so inner-cell values are silently dropped

    W008/W009 need whole-section effect summaries, which the linter
    does not compute itself: the interprocedural analyzer
    ([Analysis.Depan], a layer above this library) distills its
    per-function effects into {!coupling} records and calls
    {!coupling_warnings}. *)

val lint_func : (Diag.t -> unit) -> Ast.func -> unit
(** Per-function checks (W001-W006), emitted through the callback. *)

val lint_section : (Diag.t -> unit) -> Ast.section -> unit
(** Per-function checks for every function plus the section-level
    never-called analysis (W007). *)

val lint_module : Ast.modul -> Diag.t list
(** All warnings for a module, in file order.  Does not include
    W008/W009 (see {!coupling_warnings}). *)

type coupling = {
  c_func : string;
  c_loc : Loc.t;
  c_greads : string list; (** section globals the function reads *)
  c_gwrites : string list; (** section globals the function writes *)
  c_sends : Ast.channel list;
  c_recvs : Ast.channel list;
}
(** One function's externally visible effects, as distilled by the
    interprocedural analyzer (direct effects, not call-summarized ones,
    so each warning blames the function whose source text contains the
    coupled operation). *)

val coupling_warnings :
  section:string ->
  cells:int ->
  ?disjoint:string list ->
  coupling list ->
  Diag.t list
(** W008/W009 over one section's couplings (given in section order).
    W008 fires once per global that some function writes while a
    distinct sibling also reads or writes it; W009 fires once per
    channel that is sent on but never received in a section with more
    than one cell.

    [disjoint] names globals whose every write/access pair the
    analyzer's region domain proved element-disjoint: their W008
    downgrades from a warning to a {!Diag.Note} (the siblings partition
    the global, so the "write nobody observes" reading is a false
    positive), which survives [-Werror]. *)
