(** Source linter — phase 1, running in the master alongside
    {!Semcheck}.  Every finding is a {!Diag.Warning}; nothing here
    rejects a program.

    Codes:
    - [W001] unused variable
    - [W002] unused parameter
    - [W003] dead store (a value written and overwritten or never read)
    - [W004] unreachable statement after a return
    - [W005] assignment or receive into an enclosing [for]-loop variable
    - [W006] constant [if]/[while] condition
    - [W007] function never called from its section (excluding the
      section's first function, its entry point by convention) *)

val lint_func : (Diag.t -> unit) -> Ast.func -> unit
(** Per-function checks (W001-W006), emitted through the callback. *)

val lint_section : (Diag.t -> unit) -> Ast.section -> unit
(** Per-function checks for every function plus the section-level
    never-called analysis (W007). *)

val lint_module : Ast.modul -> Diag.t list
(** All warnings for a module, in file order. *)
