(* Procedure inlining (section 5.1 of the paper).

   "Procedure inlining is an important optimization that should be
   included in the compiler if the source programs consist of many
   small functions.  Not only will procedure inlining allow the code
   generator to perform a better job, the increase in size of each
   function operated upon will also improve the speedup obtained by the
   parallel compiler."

   A callee is inlinable when it is small, has no calls of its own, and
   returns only as its last statement.  A call site is expanded when its
   evaluation point is unconditional within its statement: anywhere in
   an assignment right-hand side, a return, a send, an if condition or
   for bounds (all evaluated exactly once, in source order) — but not
   under the short-circuit right operand of and/or, and not in a while
   condition (re-evaluated every iteration).

   Expansion hoists the argument expressions into fresh temporaries,
   splices the renamed callee body, and replaces the call by the
   temporary holding the return value. *)

type stats = { mutable inlined : int; mutable skipped : int }

let dummy = Loc.dummy

(* --- inlinability --- *)

let rec has_calls_stmts stmts = List.exists has_calls_stmt stmts

and has_calls_stmt (s : Ast.stmt) =
  match s.s with
  | Ast.Assign (lv, e) -> has_calls_lvalue lv || has_calls_expr e
  | Ast.If (c, a, b) -> has_calls_expr c || has_calls_stmts a || has_calls_stmts b
  | Ast.While (c, b) -> has_calls_expr c || has_calls_stmts b
  | Ast.For (_, lo, hi, b) ->
    has_calls_expr lo || has_calls_expr hi || has_calls_stmts b
  | Ast.Send (_, e) -> has_calls_expr e
  | Ast.Receive (_, lv) -> has_calls_lvalue lv
  | Ast.Return (Some e) -> has_calls_expr e
  | Ast.Return None -> false
  | Ast.Call_stmt _ -> true

and has_calls_expr (e : Ast.expr) =
  match e.e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> false
  | Ast.Index (_, i) -> has_calls_expr i
  | Ast.Unary (_, x) -> has_calls_expr x
  | Ast.Binary (_, a, b) -> has_calls_expr a || has_calls_expr b
  | Ast.Call (name, args) ->
    (not (Ast.is_builtin name)) || List.exists has_calls_expr args

and has_calls_lvalue = function
  | Ast.Lvar _ -> false
  | Ast.Lindex (_, i) -> has_calls_expr i

(* Returns appear only as the very last statement. *)
let rec no_early_returns = function
  | [] -> true
  | [ { Ast.s = Ast.Return _; _ } ] -> true
  | stmt :: rest ->
    let clean (s : Ast.stmt) =
      match s.Ast.s with
      | Ast.Return _ -> false
      | Ast.If (_, a, b) -> no_returns a && no_returns b
      | Ast.While (_, b) | Ast.For (_, _, _, b) -> no_returns b
      | Ast.Assign _ | Ast.Send _ | Ast.Receive _ | Ast.Call_stmt _ -> true
    in
    clean stmt && no_early_returns rest

and no_returns stmts =
  List.for_all
    (fun (s : Ast.stmt) ->
      match s.Ast.s with
      | Ast.Return _ -> false
      | Ast.If (_, a, b) -> no_returns a && no_returns b
      | Ast.While (_, b) | Ast.For (_, _, _, b) -> no_returns b
      | Ast.Assign _ | Ast.Send _ | Ast.Receive _ | Ast.Call_stmt _ -> true)
    stmts

(* A variable mentioned by the body that is neither a parameter nor a
   local must be a section global (semcheck admits nothing else). *)
let has_free_vars (f : Ast.func) =
  let bound = Hashtbl.create 8 in
  List.iter (fun (p : Ast.param) -> Hashtbl.replace bound p.pname ()) f.params;
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace bound d.dname ()) f.locals;
  let free = ref false in
  let name n = if not (Hashtbl.mem bound n) then free := true in
  let rec expr (e : Ast.expr) =
    match e.e with
    | Ast.Var v -> name v
    | Ast.Index (v, i) ->
      name v;
      expr i
    | Ast.Unary (_, x) -> expr x
    | Ast.Binary (_, a, b) ->
      expr a;
      expr b
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> ()
  and lvalue = function
    | Ast.Lvar v -> name v
    | Ast.Lindex (v, i) ->
      name v;
      expr i
  and stmt (s : Ast.stmt) =
    match s.s with
    | Ast.Assign (lv, e) ->
      lvalue lv;
      expr e
    | Ast.If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Ast.While (c, b) ->
      expr c;
      List.iter stmt b
    | Ast.For (v, lo, hi, b) ->
      name v;
      expr lo;
      expr hi;
      List.iter stmt b
    | Ast.Send (_, e) -> expr e
    | Ast.Receive (_, lv) -> lvalue lv
    | Ast.Return (Some e) -> expr e
    | Ast.Return None -> ()
    | Ast.Call_stmt (_, args) -> List.iter expr args
  in
  List.iter stmt f.body;
  !free

let inlinable ~max_lines (f : Ast.func) =
  Ast.func_lines f <= max_lines
  && (not (has_calls_stmts f.body))
  && no_early_returns f.body
  (* Array locals would need per-activation zeroing loops at every
     splice point; such callees stay out of line. *)
  && List.for_all
       (fun (d : Ast.decl) ->
         match d.dty with
         | Ast.Tint | Ast.Tfloat | Ast.Tbool -> true
         | Ast.Tarray _ -> false)
       f.locals
  (* Globals are localized per activation; splicing the body into a
     caller would silently merge the two activations' copies. *)
  && not (has_free_vars f)

(* --- renaming --- *)

let rec rename_expr table (e : Ast.expr) : Ast.expr =
  let node =
    match e.e with
    | Ast.Var v -> Ast.Var (try Hashtbl.find table v with Not_found -> v)
    | Ast.Index (v, i) ->
      Ast.Index ((try Hashtbl.find table v with Not_found -> v), rename_expr table i)
    | Ast.Unary (op, x) -> Ast.Unary (op, rename_expr table x)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, rename_expr table a, rename_expr table b)
    | Ast.Call (name, args) -> Ast.Call (name, List.map (rename_expr table) args)
    | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _) as lit -> lit
  in
  { e with Ast.e = node }

let rename_lvalue table = function
  | Ast.Lvar v -> Ast.Lvar (try Hashtbl.find table v with Not_found -> v)
  | Ast.Lindex (v, i) ->
    Ast.Lindex ((try Hashtbl.find table v with Not_found -> v), rename_expr table i)

let rec rename_stmt table (s : Ast.stmt) : Ast.stmt =
  let node =
    match s.s with
    | Ast.Assign (lv, e) -> Ast.Assign (rename_lvalue table lv, rename_expr table e)
    | Ast.If (c, a, b) ->
      Ast.If (rename_expr table c, List.map (rename_stmt table) a, List.map (rename_stmt table) b)
    | Ast.While (c, b) -> Ast.While (rename_expr table c, List.map (rename_stmt table) b)
    | Ast.For (v, lo, hi, b) ->
      Ast.For
        ( (try Hashtbl.find table v with Not_found -> v),
          rename_expr table lo,
          rename_expr table hi,
          List.map (rename_stmt table) b )
    | Ast.Send (c, e) -> Ast.Send (c, rename_expr table e)
    | Ast.Receive (c, lv) -> Ast.Receive (c, rename_lvalue table lv)
    | Ast.Return e -> Ast.Return (Option.map (rename_expr table) e)
    | Ast.Call_stmt (name, args) -> Ast.Call_stmt (name, List.map (rename_expr table) args)
  in
  { s with Ast.s = node }

(* --- expansion --- *)

type ctx = {
  callees : (string, Ast.func) Hashtbl.t; (* inlinable functions *)
  mutable new_locals : Ast.decl list; (* reversed *)
  mutable counter : int;
  stats : stats;
}

let fresh ctx base ty =
  let name = Printf.sprintf "__inl%d_%s" ctx.counter base in
  ctx.counter <- ctx.counter + 1;
  ctx.new_locals <- { Ast.dname = name; dty = ty; dloc = dummy } :: ctx.new_locals;
  name

(* Expand the body of [callee] at a call site.  Returns the statements
   to prepend and the variable holding the result. *)
let expand_call ctx (callee : Ast.func) (args : Ast.expr list) :
    Ast.stmt list * string =
  ctx.stats.inlined <- ctx.stats.inlined + 1;
  let table = Hashtbl.create 8 in
  (* Arguments are bound to fresh temporaries in call order. *)
  let arg_stmts =
    List.map2
      (fun (p : Ast.param) arg ->
        let tmp = fresh ctx p.pname p.pty in
        Hashtbl.replace table p.pname tmp;
        { Ast.s = Ast.Assign (Ast.Lvar tmp, arg); sloc = dummy })
      callee.params args
  in
  (* Locals become caller temporaries, re-zeroed at every splice point:
     the call site may sit in a loop, and each activation of the callee
     starts from fresh (zero) locals. *)
  let local_inits =
    List.map
      (fun (d : Ast.decl) ->
        let tmp = fresh ctx d.dname d.dty in
        Hashtbl.replace table d.dname tmp;
        let zero =
          match d.dty with
          | Ast.Tint -> Ast.Int_lit 0
          | Ast.Tfloat -> Ast.Float_lit 0.0
          | Ast.Tbool -> Ast.Bool_lit false
          | Ast.Tarray _ -> assert false (* excluded by [inlinable] *)
        in
        { Ast.s = Ast.Assign (Ast.Lvar tmp, { Ast.e = zero; eloc = dummy }); sloc = dummy })
      callee.locals
  in
  let result =
    fresh ctx ("ret_" ^ callee.fname) (Option.value ~default:Ast.Tint callee.ret)
  in
  let body = List.map (rename_stmt table) callee.body in
  (* The last statement is the (only) return; turn it into an
     assignment to the result temporary. *)
  let rec replace_tail = function
    | [ { Ast.s = Ast.Return (Some e); _ } ] ->
      [ { Ast.s = Ast.Assign (Ast.Lvar result, e); sloc = dummy } ]
    | [ { Ast.s = Ast.Return None; _ } ] -> []
    | stmt :: rest -> stmt :: replace_tail rest
    | [] -> []
  in
  (arg_stmts @ local_inits @ replace_tail body, result)

(* Rewrite an expression in an unconditionally-evaluated position:
   user-function calls to inlinable callees become references to result
   temporaries; the spliced statements accumulate in [out] (in
   evaluation order). *)
let rec expand_expr ctx out (e : Ast.expr) : Ast.expr =
  let node =
    match e.e with
    | Ast.Call (name, args) when not (Ast.is_builtin name) -> (
      (* Arguments are evaluated left to right before the call. *)
      let args = List.map (expand_expr ctx out) args in
      match Hashtbl.find_opt ctx.callees name with
      | Some callee when List.length callee.Ast.params = List.length args ->
        let stmts, result = expand_call ctx callee args in
        out := !out @ stmts;
        Ast.Var result
      | Some _ | None ->
        ctx.stats.skipped <- ctx.stats.skipped + 1;
        Ast.Call (name, args))
    | Ast.Call (name, args) -> Ast.Call (name, List.map (expand_expr ctx out) args)
    | Ast.Binary (((Ast.And | Ast.Or) as op), left, right) ->
      (* The right operand is conditionally evaluated: inline inside the
         left only. *)
      Ast.Binary (op, expand_expr ctx out left, right)
    | Ast.Binary (op, a, b) ->
      (* Bind explicitly: hoisted statements must follow the left-to-
         right evaluation order of the language. *)
      let a = expand_expr ctx out a in
      let b = expand_expr ctx out b in
      Ast.Binary (op, a, b)
    | Ast.Unary (op, x) -> Ast.Unary (op, expand_expr ctx out x)
    | Ast.Index (v, i) -> Ast.Index (v, expand_expr ctx out i)
    | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _) as leaf -> leaf
  in
  { e with Ast.e = node }

let rec expand_stmt ctx (s : Ast.stmt) : Ast.stmt list =
  let hoisted = ref [] in
  let node =
    match s.s with
    | Ast.Assign (lv, e) ->
      (* Right-hand side evaluates before an indexed target's index. *)
      let e = expand_expr ctx hoisted e in
      let lv =
        match lv with
        | Ast.Lvar _ -> lv
        | Ast.Lindex (v, i) -> Ast.Lindex (v, expand_expr ctx hoisted i)
      in
      Some (Ast.Assign (lv, e))
    | Ast.If (c, a, b) ->
      let c = expand_expr ctx hoisted c in
      Some (Ast.If (c, expand_stmts ctx a, expand_stmts ctx b))
    | Ast.While (c, b) ->
      (* The condition re-evaluates every iteration: no expansion in it. *)
      Some (Ast.While (c, expand_stmts ctx b))
    | Ast.For (v, lo, hi, b) ->
      let lo = expand_expr ctx hoisted lo in
      let hi = expand_expr ctx hoisted hi in
      Some (Ast.For (v, lo, hi, expand_stmts ctx b))
    | Ast.Send (c, e) -> Some (Ast.Send (c, expand_expr ctx hoisted e))
    | Ast.Receive _ -> Some s.s
    | Ast.Return (Some e) -> Some (Ast.Return (Some (expand_expr ctx hoisted e)))
    | Ast.Return None -> Some s.s
    | Ast.Call_stmt (name, args) when not (Ast.is_builtin name) -> (
      let args = List.map (expand_expr ctx hoisted) args in
      match Hashtbl.find_opt ctx.callees name with
      | Some callee when List.length callee.Ast.params = List.length args ->
        let stmts, _result = expand_call ctx callee args in
        hoisted := !hoisted @ stmts;
        None
      | Some _ | None ->
        ctx.stats.skipped <- ctx.stats.skipped + 1;
        Some (Ast.Call_stmt (name, args)))
    | Ast.Call_stmt (name, args) ->
      Some (Ast.Call_stmt (name, List.map (expand_expr ctx hoisted) args))
  in
  !hoisted @ (match node with Some n -> [ { s with Ast.s = n } ] | None -> [])

and expand_stmts ctx stmts = List.concat_map (expand_stmt ctx) stmts

(* --- top level --- *)

let default_max_lines = 45

(* Expand calls to small leaf functions throughout a section.  Inlined
   callees are kept (they may still be called from skipped sites or be
   entry points). *)
let expand_section ?(max_lines = default_max_lines) (sec : Ast.section) :
    Ast.section * stats =
  let stats = { inlined = 0; skipped = 0 } in
  let callees = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.func) ->
      if inlinable ~max_lines f then Hashtbl.replace callees f.fname f)
    sec.funcs;
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        if Hashtbl.mem callees f.fname then f (* leaf callees stay as-is *)
        else begin
          let ctx = { callees; new_locals = []; counter = 0; stats } in
          let body = expand_stmts ctx f.body in
          { f with Ast.locals = f.locals @ List.rev ctx.new_locals; body }
        end)
      sec.funcs
  in
  ({ sec with Ast.funcs }, stats)

let expand_module ?max_lines (m : Ast.modul) : Ast.modul * stats =
  let total = { inlined = 0; skipped = 0 } in
  let sections =
    List.map
      (fun sec ->
        let sec, stats = expand_section ?max_lines sec in
        total.inlined <- total.inlined + stats.inlined;
        total.skipped <- total.skipped + stats.skipped;
        sec)
      m.sections
  in
  ({ m with Ast.sections }, total)

(* Drop functions unreachable from [roots] (by direct calls).  Useful
   after expansion: helpers that were inlined everywhere need not be
   compiled at all — exactly the grain-coarsening effect section 5.1 is
   after. *)
let prune_section ~roots (sec : Ast.section) : Ast.section =
  let by_name = Hashtbl.create 8 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace by_name f.fname f) sec.funcs;
  let live = Hashtbl.create 8 in
  let rec visit name =
    if not (Hashtbl.mem live name) then begin
      Hashtbl.replace live name ();
      match Hashtbl.find_opt by_name name with
      | None -> ()
      | Some f -> List.iter visit (called_names f)
    end
  and called_names (f : Ast.func) =
    let acc = ref [] in
    let rec expr (e : Ast.expr) =
      match e.e with
      | Ast.Call (name, args) ->
        if not (Ast.is_builtin name) then acc := name :: !acc;
        List.iter expr args
      | Ast.Binary (_, a, b) ->
        expr a;
        expr b
      | Ast.Unary (_, x) | Ast.Index (_, x) -> expr x
      | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> ()
    and lvalue = function
      | Ast.Lvar _ -> ()
      | Ast.Lindex (_, i) -> expr i
    and stmt (s : Ast.stmt) =
      match s.s with
      | Ast.Assign (lv, e) ->
        lvalue lv;
        expr e
      | Ast.If (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
      | Ast.While (c, b) ->
        expr c;
        List.iter stmt b
      | Ast.For (_, lo, hi, b) ->
        expr lo;
        expr hi;
        List.iter stmt b
      | Ast.Send (_, e) -> expr e
      | Ast.Receive (_, lv) -> lvalue lv
      | Ast.Return (Some e) -> expr e
      | Ast.Return None -> ()
      | Ast.Call_stmt (name, args) ->
        if not (Ast.is_builtin name) then acc := name :: !acc;
        List.iter expr args
    in
    List.iter stmt f.body;
    !acc
  in
  List.iter visit roots;
  { sec with Ast.funcs = List.filter (fun (f : Ast.func) -> Hashtbl.mem live f.fname) sec.funcs }
