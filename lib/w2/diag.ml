(* Shared diagnostics: the structured findings that static checks
   produce and that the parallel host carries around.

   Phase 1 (the master) emits lint warnings alongside the semantic
   checker; phases 2/3 (the function masters) emit IR-verifier findings.
   Each diagnostic records which function it belongs to so that a
   section master can merge per-function diagnostics back into file
   order when it "combines results and diagnostics" — the byte size of
   the rendered findings is what the network simulation charges for
   that write-back. *)

type severity = Note | Warning | Error

type t = {
  d_code : string; (* stable short code, e.g. "W003" or "V101" *)
  d_severity : severity;
  d_loc : Loc.t;
  d_func : string option; (* originating function, if any *)
  d_message : string;
}

let make ?func ~code ~severity ~loc message =
  { d_code = code; d_severity = severity; d_loc = loc; d_func = func; d_message = message }

let severity_to_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let to_string d =
  Printf.sprintf "%s: %s: %s [%s]" (Loc.to_string d.d_loc)
    (severity_to_string d.d_severity) d.d_message d.d_code

(* File order, as the section masters merge them. *)
let compare a b =
  match Loc.compare a.d_loc b.d_loc with
  | 0 -> Stdlib.compare (a.d_code, a.d_message) (b.d_code, b.d_message)
  | c -> c

let sort ds = List.sort compare ds

let is_error d = d.d_severity = Error
let has_errors ds = List.exists is_error ds
let count severity ds = List.length (List.filter (fun d -> d.d_severity = severity) ds)

(* -Werror: promote warnings (notes stay notes). *)
let promote_warnings ds =
  List.map
    (fun d -> if d.d_severity = Warning then { d with d_severity = Error } else d)
    ds

(* Diagnostics belonging to one function, in file order. *)
let for_func name ds = List.filter (fun d -> d.d_func = Some name) ds

(* Bytes a diagnostic occupies in the function master's write-back
   message: the rendered line plus a little framing.  The cost model
   adds these to the per-task output traffic. *)
let framing_bytes = 16
let encoded_size d = String.length (to_string d) + framing_bytes
let encoded_bytes ds = List.fold_left (fun acc d -> acc + encoded_size d) 0 ds
