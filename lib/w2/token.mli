(** Tokens of the W2-flavoured source language. *)

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | MODULE
  | IMPORT
  | EXPORT
  | SECTION
  | CELLS
  | FUNCTION
  | BEGIN
  | END
  | VAR
  | IF
  | THEN
  | ELSE
  | WHILE
  | DO
  | FOR
  | TO
  | RETURN
  | SEND
  | RECEIVE
  | TRUE
  | FALSE
  | AND
  | OR
  | NOT
  | MOD
  | TINT (** the keyword [int] *)
  | TFLOAT (** the keyword [float] (also the conversion builtin) *)
  | TBOOL (** the keyword [bool] *)
  | ARRAY
  | OF
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | ASSIGN (** [:=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE (** [<>] *)
  | LT
  | LE
  | GT
  | GE
  | EOF

val keyword_table : (string * t) list
(** Lower-case keyword spellings (the lexer folds case). *)

val to_string : t -> string
(** The source spelling (diagnostics). *)
