(** Shared diagnostics: structured findings produced by the static
    checks (the {!Lint} source linter in phase 1, the midend IR
    verifier in phase 2) and carried through the compilation hierarchy.

    Each diagnostic records the function it belongs to so a section
    master can merge per-function diagnostics back into file order when
    it combines results; {!encoded_bytes} is what the network
    simulation charges for that write-back. *)

type severity = Note | Warning | Error

type t = {
  d_code : string; (** stable short code, e.g. ["W003"] or ["V100"] *)
  d_severity : severity;
  d_loc : Loc.t;
  d_func : string option; (** originating function, if any *)
  d_message : string;
}

val make :
  ?func:string -> code:string -> severity:severity -> loc:Loc.t -> string -> t

val severity_to_string : severity -> string
val to_string : t -> string

val compare : t -> t -> int
(** File order — the order in which section masters merge. *)

val sort : t list -> t list
val is_error : t -> bool
val has_errors : t list -> bool
val count : severity -> t list -> int

val promote_warnings : t list -> t list
(** [-Werror]: warnings become errors; notes are untouched. *)

val for_func : string -> t list -> t list
(** Diagnostics attributed to one function. *)

val encoded_size : t -> int
(** Bytes one diagnostic occupies in a function master's write-back
    message (rendered line plus framing). *)

val encoded_bytes : t list -> int
