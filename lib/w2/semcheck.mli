(** Semantic checker — phase 1 of the compiler, together with parsing.

    As in the paper, this phase needs the complete section program: it
    resolves calls between functions of the same section and checks the
    agreement between a function's return type and its uses at call
    sites.  It therefore runs sequentially in the master process,
    before the per-function work is farmed out.

    Checked invariants the rest of the compiler relies on: every name
    is declared before use, assignments and calls are type-correct,
    value-returning functions return on all paths, statically-constant
    array indices are in bounds, and the variable of a [for] loop is
    never assigned inside its own body (the counted-loop
    transformations depend on it). *)

type error = { msg : string; loc : Loc.t }

val error_to_string : error -> string

exception Failed of error list

val always_returns : Ast.stmt list -> bool
(** Conservative "all control paths return" analysis; shared with the
    {!Lint} unreachable-statement check. *)

val check_module : Ast.modul -> error list
(** All diagnostics, oldest first; [[]] means the module is valid input
    for {!Midend.Lower} and {!Interp}. *)

val check_module_exn : Ast.modul -> unit
(** @raise Failed with the diagnostics when the module does not check —
    the master's behaviour on phase-1 errors. *)
