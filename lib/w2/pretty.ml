(* Pretty printer producing valid W2 source.  Round-tripping through
   [Parser.module_of_string] is a test invariant, and the line count of
   the rendered text is the "lines of code" metric of section 4.1. *)

open Format

let rec pp_ty fmt = function
  | Ast.Tint -> pp_print_string fmt "int"
  | Ast.Tfloat -> pp_print_string fmt "float"
  | Ast.Tbool -> pp_print_string fmt "bool"
  | Ast.Tarray (n, elt) -> fprintf fmt "array[%d] of %a" n pp_ty elt

(* Expressions are printed fully parenthesised except at the top level of
   each operand; this keeps the printer simple and the output unambiguous
   for the round-trip test. *)
let rec pp_expr fmt (expr : Ast.expr) =
  match expr.e with
  | Ast.Int_lit n -> if n < 0 then fprintf fmt "(0 - %d)" (-n) else pp_print_int fmt n
  | Ast.Float_lit f ->
    if f < 0.0 then fprintf fmt "(0.0 - %s)" (float_repr (-.f))
    else pp_print_string fmt (float_repr f)
  | Ast.Bool_lit b -> pp_print_bool fmt b
  | Ast.Var name -> pp_print_string fmt name
  | Ast.Index (name, index) -> fprintf fmt "%s[%a]" name pp_expr index
  | Ast.Unary (Ast.Neg, operand) -> fprintf fmt "(-%a)" pp_expr operand
  | Ast.Unary (Ast.Not, operand) -> fprintf fmt "(not %a)" pp_expr operand
  | Ast.Binary (op, left, right) ->
    fprintf fmt "(%a %s %a)" pp_expr left (Ast.binop_to_string op) pp_expr right
  | Ast.Call (name, args) ->
    fprintf fmt "%s(%a)" name
      (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_expr)
      args

(* Render a float so that the lexer reads it back exactly. *)
and float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let pp_lvalue fmt = function
  | Ast.Lvar name -> pp_print_string fmt name
  | Ast.Lindex (name, index) -> fprintf fmt "%s[%a]" name pp_expr index

let rec pp_stmt ~indent fmt (stmt : Ast.stmt) =
  let pad = String.make indent ' ' in
  match stmt.s with
  | Ast.Assign (lv, value) ->
    fprintf fmt "%s%a := %a;\n" pad pp_lvalue lv pp_expr value
  | Ast.If (cond, then_branch, []) ->
    fprintf fmt "%sif %a then\n%a%send;\n" pad pp_expr cond
      (pp_stmts ~indent:(indent + 2))
      then_branch pad
  | Ast.If (cond, then_branch, else_branch) ->
    fprintf fmt "%sif %a then\n%a%selse\n%a%send;\n" pad pp_expr cond
      (pp_stmts ~indent:(indent + 2))
      then_branch pad
      (pp_stmts ~indent:(indent + 2))
      else_branch pad
  | Ast.While (cond, body) ->
    fprintf fmt "%swhile %a do\n%a%send;\n" pad pp_expr cond
      (pp_stmts ~indent:(indent + 2))
      body pad
  | Ast.For (var, lo, hi, body) ->
    fprintf fmt "%sfor %s := %a to %a do\n%a%send;\n" pad var pp_expr lo pp_expr
      hi
      (pp_stmts ~indent:(indent + 2))
      body pad
  | Ast.Send (chan, value) ->
    fprintf fmt "%ssend(%s, %a);\n" pad (Ast.channel_to_string chan) pp_expr value
  | Ast.Receive (chan, target) ->
    fprintf fmt "%sreceive(%s, %a);\n" pad
      (Ast.channel_to_string chan)
      pp_lvalue target
  | Ast.Return None -> fprintf fmt "%sreturn;\n" pad
  | Ast.Return (Some value) -> fprintf fmt "%sreturn %a;\n" pad pp_expr value
  | Ast.Call_stmt (name, args) ->
    fprintf fmt "%s%s(%a);\n" pad name
      (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_expr)
      args

and pp_stmts ~indent fmt stmts = List.iter (pp_stmt ~indent fmt) stmts

let pp_func ~indent fmt (f : Ast.func) =
  let pad = String.make indent ' ' in
  let pp_param fmt (p : Ast.param) = fprintf fmt "%s: %a" p.pname pp_ty p.pty in
  fprintf fmt "%sfunction %s(%a)" pad f.fname
    (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_param)
    f.params;
  (match f.ret with
  | None -> ()
  | Some ty -> fprintf fmt " : %a" pp_ty ty);
  pp_print_string fmt "\n";
  List.iter
    (fun (d : Ast.decl) -> fprintf fmt "%s  var %s : %a;\n" pad d.dname pp_ty d.dty)
    f.locals;
  fprintf fmt "%sbegin\n%a%send\n" pad
    (pp_stmts ~indent:(indent + 2))
    f.body pad

let pp_section fmt (sec : Ast.section) =
  fprintf fmt "  section %s cells %d\n" sec.sname sec.cells;
  List.iter
    (fun (d : Ast.decl) -> fprintf fmt "  var %s : %a;\n" d.dname pp_ty d.dty)
    sec.globals;
  List.iter (fun f -> pp_func ~indent:2 fmt f) sec.funcs;
  fprintf fmt "  end\n"

let pp_import_sig fmt (s : Ast.import_sig) =
  fprintf fmt "%s(%a)" s.is_name
    (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_ty)
    s.is_params;
  match s.is_ret with
  | None -> ()
  | Some ty -> fprintf fmt " : %a" pp_ty ty

let pp_import fmt (im : Ast.import_decl) =
  fprintf fmt "  import %s (%a);\n" im.im_module
    (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_import_sig)
    im.im_sigs

let pp_module fmt (m : Ast.modul) =
  fprintf fmt "module %s\n" m.mname;
  List.iter (pp_import fmt) m.imports;
  List.iter
    (fun (e : Ast.export_decl) -> fprintf fmt "  export %s;\n" e.ex_name)
    m.exports;
  List.iter (pp_section fmt) m.sections;
  fprintf fmt "end\n"

let module_to_string m = Format.asprintf "%a" pp_module m
let func_to_string f = Format.asprintf "%a" (pp_func ~indent:0) f
let expr_to_string e = Format.asprintf "%a" pp_expr e

(* Physical line count of the rendered source: the LoC metric quoted
   throughout section 4. *)
let source_lines text =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 text

let module_loc m = source_lines (module_to_string m)
let func_loc f = source_lines (func_to_string f)
